module godpm

go 1.24
