// Kernel determinism pin: the discrete-event kernel is single-threaded and
// fully deterministic, so two runs of the same configuration — and any
// reimplementation of the scheduler — must reproduce results bit for bit.
// The golden numbers below were captured from the container/heap-based
// kernel before the allocation-free rewrite (PR 2); they pin the rewrite to
// the old scheduler's exact behaviour: energy, temperature, the Table 2
// inputs and the delta-cycle count (a scheduling checksum) all byte-equal.
//
// The goldens are exact float64 values captured on linux/amd64. Go does not
// fuse floating-point expressions on amd64; on architectures where the
// compiler emits FMA (e.g. arm64) low-order bits can differ, so the exact
// comparison is gated to amd64 while the run-to-run identity check runs
// everywhere.
package godpm_test

import (
	"context"
	"runtime"
	"testing"

	"godpm/internal/engine"
	"godpm/internal/experiments"
	"godpm/internal/soc"
)

// golden is the deterministic signature of one scenario run.
type golden struct {
	EnergyJ    float64
	AvgTempC   float64
	PeakTempC  float64
	Duration   int64
	Deltas     uint64
	TasksDone  int
	FinalSoC   float64
	BusEnergyJ float64
}

func capture(t *testing.T, s experiments.Scenario) (golden, *soc.Result) {
	t.Helper()
	return captureWith(t, s, soc.RunOptions{})
}

func captureWith(t *testing.T, s experiments.Scenario, opts soc.RunOptions) (golden, *soc.Result) {
	t.Helper()
	res, err := soc.RunWith(context.Background(), s.Config, opts)
	if err != nil {
		t.Fatalf("%s: %v", s.ID, err)
	}
	return golden{
		EnergyJ:    res.EnergyJ,
		AvgTempC:   res.AvgTempC,
		PeakTempC:  res.PeakTempC,
		Duration:   int64(res.Duration),
		Deltas:     res.Deltas,
		TasksDone:  res.TasksDone,
		FinalSoC:   res.FinalSoC,
		BusEnergyJ: res.BusEnergyJ,
	}, res
}

// kernelGoldens: pre-rewrite kernel outputs for the benchmark tuning
// (60 tasks) of the paper's single-IP scenario A1 and four-IP GEM
// scenario B.
var kernelGoldens = map[string]golden{
	"A1": {EnergyJ: 0.3838353266466375, AvgTempC: 51.7615679965159, PeakTempC: 66.561637781754555, Duration: 1421028339243, Deltas: 239, TasksDone: 60, FinalSoC: 0.90338321606273431, BusEnergyJ: 9.6000000000000052e-08},
	"B":  {EnergyJ: 0.99183030226785407, AvgTempC: 50.329014089615349, PeakTempC: 74.411734162888322, Duration: 4655316094027, Deltas: 963, TasksDone: 240, FinalSoC: 0.3010436831784718, BusEnergyJ: 3.8400000000000047e-07},
}

// TestKernelDeterminism runs each pinned scenario twice (the suite runs
// race-enabled in CI), asserts run-to-run bit-identity of the full result
// digest, and on amd64 asserts exact equality with the pre-rewrite golden.
func TestKernelDeterminism(t *testing.T) {
	tun := experiments.DefaultTuning()
	tun.NumTasks = 60
	for _, s := range []experiments.Scenario{experiments.A1(tun), experiments.B(tun)} {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			g1, r1 := capture(t, s)
			g2, r2 := capture(t, s)
			if g1 != g2 {
				t.Errorf("run-to-run mismatch:\n  first  %+v\n  second %+v", g1, g2)
			}
			if d1, d2 := engine.ResultDigest(r1), engine.ResultDigest(r2); d1 != d2 {
				t.Errorf("result digests differ across runs: %s vs %s", d1, d2)
			}
			// The idle fast-forward (on by default) must be invisible: a
			// ticked run of the same scenario reproduces the golden bit for
			// bit, including the delta-cycle scheduling checksum.
			gt, rt := captureWith(t, s, soc.RunOptions{NoFastForward: true})
			if gt != g1 {
				t.Errorf("ticked (NoFastForward) run diverges from fast-forwarded run:\n  ticked       %+v\n  fastforward  %+v", gt, g1)
			}
			if d1, dt := engine.ResultDigest(r1), engine.ResultDigest(rt); d1 != dt {
				t.Errorf("ticked result digest differs: fastforward %s, ticked %s", d1, dt)
			}
			want, ok := kernelGoldens[s.ID]
			if !ok {
				t.Fatalf("no golden recorded for %s", s.ID)
			}
			if runtime.GOARCH != "amd64" {
				t.Skipf("golden comparison pinned to amd64 (GOARCH=%s may fuse FMA)", runtime.GOARCH)
			}
			if g1 != want {
				t.Errorf("golden mismatch (kernel behaviour changed):\n  got  %+v\n  want %+v", g1, want)
			}
		})
	}
}
