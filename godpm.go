package godpm

import (
	"context"
	"io"
	"time"

	"godpm/internal/chaos"
	"godpm/internal/engine"
	"godpm/internal/experiments"
	"godpm/internal/journal"
	"godpm/internal/rules"
	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/stats"
	"godpm/internal/sweep"
	"godpm/internal/trace"
	"godpm/internal/workload"
)

// Version identifies the library release. 2.x is the observer-based run
// API: Config carries no output hooks, instrumentation attaches through
// RunWith/RunOptions.
const Version = "2.0.0"

// Simulated time. One Time unit is a picosecond; use the unit constants to
// build durations (Horizon: 60 * godpm.Sec).
type Time = sim.Time

// Time units.
const (
	Ns  = sim.Ns
	Us  = sim.Us
	Ms  = sim.Ms
	Sec = sim.Sec
)

// Configuration and result types.
type (
	// Config describes a complete SoC simulation. It is pure value data:
	// hashable, cacheable, and free of output hooks — attach those through
	// RunOptions.
	Config = soc.Config
	// IPSpec describes one IP block.
	IPSpec = soc.IPSpec
	// Result carries measurements of one run.
	Result = soc.Result
	// PolicyKind selects the energy-management policy (see the Policy
	// constants).
	PolicyKind = soc.PolicyKind
	// BatteryConfig selects the battery model.
	BatteryConfig = soc.BatteryConfig
	// LEMOptions tunes the local energy managers.
	LEMOptions = soc.LEMOptions
	// Scenario is one of the paper's experiments.
	Scenario = experiments.Scenario
	// Row is one measured Table 2 line.
	Row = experiments.Row
	// Tuning sets experiment-wide workload knobs.
	Tuning = experiments.Tuning
)

// Policy kinds.
const (
	PolicyDPM      = soc.PolicyDPM
	PolicyAlwaysOn = soc.PolicyAlwaysOn
	PolicyTimeout  = soc.PolicyTimeout
	PolicyGreedy   = soc.PolicyGreedy
	PolicyOracle   = soc.PolicyOracle
)

// LEM predictor kinds.
const (
	PredictorEWMA     = soc.PredictorEWMA
	PredictorLast     = soc.PredictorLast
	PredictorPerfect  = soc.PredictorPerfect
	PredictorAdaptive = soc.PredictorAdaptive
	PredictorQuantile = soc.PredictorQuantile
)

// Run simulates the configured SoC to completion or to the horizon.
func Run(cfg Config) (*Result, error) { return soc.Run(cfg) }

// RunWith simulates like Run, with run-time options: streaming observers
// and early-stop conditions. Cancellation via ctx is polled at every
// sample tick.
func RunWith(ctx context.Context, cfg Config, opts RunOptions) (*Result, error) {
	return soc.RunWith(ctx, cfg, opts)
}

// Instrumentation: the observer API.
type (
	// Observer receives streaming callbacks during a run (PSM state
	// changes, task completions, periodic samples, battery/thermal class
	// transitions, run end). Embed NopObserver and override what you need.
	Observer = soc.Observer
	// NopObserver implements every Observer callback as a no-op.
	NopObserver = soc.NopObserver
	// RunInfo describes the run an observer is attached to.
	RunInfo = soc.RunInfo
	// Sample is one periodic temperature/power/state-of-charge sample.
	Sample = soc.Sample
	// RunOptions carries observers and stop conditions for RunWith.
	RunOptions = soc.RunOptions
	// StopCondition ends a run early (see the StopOn constructors).
	StopCondition = soc.StopCondition
	// Probe is the live view a StopCondition evaluates against.
	Probe = soc.Probe
	// VCDObserver writes the run's waveforms as a GTKWave-compatible VCD.
	VCDObserver = trace.VCDObserver
	// CSVObserver writes one CSV row per periodic sample.
	CSVObserver = trace.CSVObserver
)

// NewVCDObserver returns an observer streaming the PSM/battery/thermal
// waveforms to w in VCD format.
func NewVCDObserver(w io.Writer) *VCDObserver { return trace.NewVCDObserver(w) }

// NewCSVObserver returns an observer writing sampled scalars (temperature,
// state of charge, per-IP power) to w as CSV.
func NewCSVObserver(w io.Writer) *CSVObserver { return trace.NewCSVObserver(w) }

// Early-stop conditions for RunOptions.StopWhen.
var (
	// StopOnBatteryEmpty ends the run when the battery class hits Empty.
	StopOnBatteryEmpty = soc.StopOnBatteryEmpty
	// StopOnTemperature ends the run at a die-temperature ceiling.
	StopOnTemperature = soc.StopOnTemperature
	// StopOnEnergyBudget ends the run once a total energy budget is spent.
	StopOnEnergyBudget = soc.StopOnEnergyBudget
	// StopOnSoC ends the run when the state of charge reaches a floor.
	StopOnSoC = soc.StopOnSoC
	// StopOnWallClock ends the run after a host-time budget (volatile:
	// such jobs are never cached by the engine).
	StopOnWallClock = soc.StopOnWallClock
)

// DefaultBattery returns the experiments' battery at the given state of
// charge.
func DefaultBattery(initialSoC float64) BatteryConfig { return soc.DefaultBattery(initialSoC) }

// Scenarios returns the paper's six Table 2 experiments.
func Scenarios(t Tuning) []Scenario { return experiments.All(t) }

// Extensions returns the beyond-the-paper scenarios (per-IP thermal
// network, open-loop arrivals, regulator losses).
func Extensions(t Tuning) []Scenario { return experiments.Extensions(t) }

// ScenarioByID returns one named paper experiment (A1..A4, B, C).
func ScenarioByID(id string, t Tuning) (Scenario, error) { return experiments.ByID(id, t) }

// ExtensionByID returns one named extension scenario.
func ExtensionByID(id string, t Tuning) (Scenario, error) { return experiments.ExtensionByID(id, t) }

// DefaultTuning returns the experiments' default workload knobs.
func DefaultTuning() Tuning { return experiments.DefaultTuning() }

// RunScenario executes a scenario and its always-on baseline and computes
// the Table 2 row.
func RunScenario(s Scenario) (Row, error) { return experiments.RunScenario(s) }

// Baseline derives the always-on reference configuration of a scenario.
func Baseline(s Scenario) Config { return experiments.Baseline(s) }

// FormatTable2 renders measured rows next to the paper's numbers.
func FormatTable2(rows []Row) string { return experiments.FormatTable2(rows) }

// Topology renders a scenario's Fig. 1 component graph.
func Topology(s Scenario) string { return experiments.Topology(s) }

// Batch engine: the concurrent, cached execution layer for scenario
// grids, sweeps and replicated runs.
type (
	// Engine shards simulation jobs across a worker pool with result
	// caching.
	Engine = engine.Engine
	// EngineOptions configures workers, cache and progress callbacks.
	EngineOptions = engine.Options
	// EngineStats are the engine's cumulative hit/miss/run counters.
	EngineStats = engine.Stats
	// Plan is an ordered list of simulation jobs.
	Plan = engine.Plan
	// Job is one unit of work: a Config plus optional RunOptions.
	Job = engine.Job
	// JobResult is one job's outcome (result, cache hit, error).
	JobResult = engine.JobResult
	// Cache stores records by fingerprint (see NewLRUCache/NewDiskCache).
	// Records handed out by Cache.Get are shared across jobs, engines and
	// — under dpmserve — HTTP requests: treat them as strictly immutable.
	Cache = engine.Cache
	// CacheRecord is the unit every cache tier stores and every server
	// serves: one result's pre-encoded canonical bytes (versioned binary
	// container, compressed body, checksum, cached content digest) plus
	// the lazily-decoded Result. See NewCacheRecord/DecodeCacheRecord.
	CacheRecord = engine.Record
	// CacheCodec identifies a record body's compression (the container's
	// codec byte).
	CacheCodec = engine.Codec
	// LRUCache is the sharded, bounded in-memory cache (the engine's
	// default when EngineOptions.Cache is nil).
	LRUCache = engine.LRU
	// LRUOptions bounds an LRUCache (entry cap, approximate byte cap,
	// shard count).
	LRUOptions = engine.LRUOptions
	// DiskCache is the directory-backed record cache (bounded memory
	// front + one binary record container per fingerprint). It also
	// serves as the store behind a BlobServer.
	DiskCache = engine.Disk
	// DiskCacheOptions bounds a disk cache (on-disk byte cap with
	// LRU-by-mtime GC, front-memory bounds).
	DiskCacheOptions = engine.DiskOptions
	// CacheStats are a cache's occupancy and eviction counters, folded
	// into EngineStats for caches that report them.
	CacheStats = engine.CacheStats
	// TierStats are one cache tier's hit/miss/occupancy counters,
	// surfaced in EngineStats.Tiers for caches that report them.
	TierStats = engine.TierStats
)

// Distributed cache tier: a fleet of processes sharing one dpmremote
// hash-addressed result store, so each distinct simulation happens once
// fleet-wide.
type (
	// RemoteCache is a client cache tier backed by a dpmremote server.
	// It fails open: a down, slow or corrupt remote degrades to a miss,
	// never to a request failure.
	RemoteCache = engine.Remote
	// RemoteCacheOptions configures a RemoteCache (base URL, per-op
	// timeout, retries, breaker, connection pool bound).
	RemoteCacheOptions = engine.RemoteOptions
	// TieredCache composes caches fastest-first with read-through
	// promotion and write-behind Puts to async tiers.
	TieredCache = engine.Tiered
	// CacheTier is one layer of a TieredCache.
	CacheTier = engine.Tier
	// TieredCacheOptions tunes a TieredCache (write-behind queue bound,
	// warm-up fetch concurrency).
	TieredCacheOptions = engine.TieredOptions
	// BlobServer is the server side of the dpmremote protocol: an
	// http.Handler serving HEAD/GET/PUT /v1/blob/{fingerprint} and the
	// batched POST /v1/stat over a result store.
	BlobServer = engine.BlobServer
	// BlobServerOptions bounds a BlobServer (max blob bytes, max stat
	// batch).
	BlobServerOptions = engine.BlobServerOptions
	// BlobServerStats are a BlobServer's request counters plus store
	// occupancy.
	BlobServerStats = engine.BlobServerStats
)

// Tier names used in TierStats by the built-in caches.
const (
	TierMemory = engine.TierMemory
	TierDisk   = engine.TierDisk
	TierRemote = engine.TierRemote
)

// Record body codecs (see DiskCacheOptions.Codec for the string knob).
const (
	// CodecRaw stores canonical JSON uncompressed.
	CodecRaw = engine.CodecRaw
	// CodecFlate (the default) compresses bodies with DEFLATE.
	CodecFlate = engine.CodecFlate
)

// NewCacheRecord builds a cache record from a computed result,
// marshalling it exactly once; DecodeCacheRecord parses (and checksums)
// an encoded container without decompressing its body.
func NewCacheRecord(key string, r *Result) (*CacheRecord, error) { return engine.NewRecord(key, r) }

// DecodeCacheRecord parses a binary record container (see CacheRecord).
func DecodeCacheRecord(data []byte) (*CacheRecord, error) { return engine.DecodeRecord(data) }

// Deterministic fault injection: seed-driven chaos schedules for proving
// the cache fleet's failure contracts (see internal/chaos).
type (
	// ChaosPlan is a complete seeded fault schedule — one ChaosSpec per
	// seam (cache tier, HTTP transport, disk filesystem). A pure value:
	// hashable, and two equal plans inject bit-identical schedules.
	ChaosPlan = chaos.Plan
	// ChaosSpec sets one seam's fault probabilities (latency, transient/
	// permanent errors, corruption, torn writes, outage window).
	ChaosSpec = chaos.Spec
	// CacheFS is the filesystem seam a DiskCache's writes go through
	// (DiskCacheOptions.FS); wrap it to inject filesystem faults.
	CacheFS = engine.FS
)

// DefaultChaosPlan returns the stock chaos schedule the serving
// commands' -chaos-seed flags apply.
func DefaultChaosPlan(seed WorkloadSeed) ChaosPlan { return chaos.DefaultPlan(seed) }

// OSCacheFS is the real filesystem for DiskCacheOptions.FS (the default
// when FS is nil); chaos plans wrap it.
var OSCacheFS CacheFS = engine.OSFS

// NewRemoteCache builds a client for a dpmremote shared result store,
// usable directly as an engine cache or (canonically) as the last tier
// of NewTieredCache.
func NewRemoteCache(opts RemoteCacheOptions) (*RemoteCache, error) {
	return engine.NewRemote(opts)
}

// NewTieredCache composes caches fastest-first (memory→disk→remote)
// with read-through promotion; tiers marked AsyncPut receive stores
// write-behind. Call Close on the result to flush the write-behind
// queue on shutdown.
func NewTieredCache(tiers ...CacheTier) *TieredCache { return engine.NewTiered(tiers...) }

// NewTieredCacheWith composes a tiered cache with explicit options.
func NewTieredCacheWith(opts TieredCacheOptions, tiers ...CacheTier) *TieredCache {
	return engine.NewTieredWith(opts, tiers...)
}

// NewBlobServer builds the dpmremote protocol handler over a result
// store (canonically a size-capped disk cache).
func NewBlobServer(store Cache, opts BlobServerOptions) *BlobServer {
	return engine.NewBlobServer(store, opts)
}

// NewEngine builds a batch engine (Workers == 0 means NumCPU).
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// NewLRUCache builds a sharded bounded in-memory result cache; the zero
// LRUOptions selects the defaults the engine itself uses.
func NewLRUCache(opts LRUOptions) *LRUCache { return engine.NewLRU(opts) }

// NewDiskCache opens a directory-backed result cache for EngineOptions,
// sweeping temp files abandoned by crashed writers.
func NewDiskCache(dir string) (*DiskCache, error) { return engine.NewDisk(dir) }

// NewDiskCacheWith opens a disk cache with explicit bounds.
func NewDiskCacheWith(dir string, opts DiskCacheOptions) (*DiskCache, error) {
	return engine.NewDiskWith(dir, opts)
}

// Fingerprint returns the canonical content hash of a configuration (the
// engine's cache key).
func Fingerprint(cfg Config) (string, error) { return engine.Fingerprint(cfg) }

// ResultDigest hashes the deterministic content of a Result (everything
// except host-timing fields), for determinism checks across runs.
func ResultDigest(r *Result) string { return engine.ResultDigest(r) }

// ScenarioPlan lays scenarios out as dpm/baseline job pairs.
func ScenarioPlan(scenarios []Scenario) Plan { return experiments.Plan(scenarios) }

// ReplicatedScenarioPlan fans scenarios out across workload seeds; rebuild
// regenerates a scenario for one seed.
func ReplicatedScenarioPlan(scenarios []Scenario, seeds []int64, rebuild func(s Scenario, seed int64) Scenario) Plan {
	return experiments.ReplicatedPlan(scenarios, seeds, rebuild)
}

// RunScenarios executes scenarios on the engine and returns Table 2 rows.
func RunScenarios(ctx context.Context, eng *Engine, scenarios []Scenario) ([]Row, error) {
	return experiments.RunScenarios(ctx, eng, scenarios)
}

// Parameter sweeps.
type (
	// Sweep varies one parameter over a base configuration.
	Sweep = sweep.Sweep
	// SweepPoint is one measured sweep sample.
	SweepPoint = sweep.Point
)

// Studies returns the built-in parameter studies (timeout, activity,
// alpha) keyed by name.
func Studies(seed int64, numTasks int) map[string]Sweep { return sweep.Studies(seed, numTasks) }

// Rule tables (the paper's Table 1 policy language).

// RuleTable is a power-state selection policy table.
type RuleTable = rules.Table

// Table1 returns the paper's power-state selection policy.
func Table1() *RuleTable { return rules.Table1() }

// Table1DSL is the same policy in the natural-language rule form.
const Table1DSL = rules.Table1DSL

// ParseRules parses a policy script in the natural-language rule form.
func ParseRules(script string) (*RuleTable, error) { return rules.Parse(script) }

// Workload generation.
type (
	// WorkloadProfile parameterises a synthetic traffic generator.
	WorkloadProfile = workload.Profile
	// Sequence is a closed-loop workload (task, then idle gap).
	Sequence = workload.Sequence
	// ArrivalSequence is an open-loop workload (absolute request times).
	ArrivalSequence = workload.ArrivalSequence
	// WorkloadSeed is the splittable deterministic PRNG seed driving the
	// stochastic generators; split it per scenario and per IP.
	WorkloadSeed = workload.Seed
	// GenSpec describes a workload generator as pure value data. Placed
	// on IPSpec.Gen it is materialized during normalization and folds
	// into the engine's cache key.
	GenSpec = workload.Spec
	// BurstProfile generates closed-loop geometric ON/OFF bursts.
	BurstProfile = workload.BurstProfile
	// MMPPProfile generates open-loop Markov-modulated (ON/OFF) arrivals.
	MMPPProfile = workload.MMPPProfile
	// PeriodicProfile generates open-loop periodic arrivals with jitter.
	PeriodicProfile = workload.PeriodicProfile
	// HeavyTailProfile generates closed-loop Pareto (heavy-tailed) idle
	// gaps.
	HeavyTailProfile = workload.HeavyTailProfile
)

// HighActivity returns a busy workload profile (short idle gaps).
func HighActivity(seed int64, numTasks int) WorkloadProfile {
	return workload.HighActivity(seed, numTasks)
}

// LowActivity returns an idle-heavy workload profile.
func LowActivity(seed int64, numTasks int) WorkloadProfile {
	return workload.LowActivity(seed, numTasks)
}

// NewSeed wraps a raw value as a splittable workload seed.
func NewSeed(n uint64) WorkloadSeed { return workload.NewSeed(n) }

// DefaultBurst returns the bursty closed-loop profile preset.
func DefaultBurst(seed int64, numTasks int) BurstProfile {
	return workload.DefaultBurst(seed, numTasks)
}

// DefaultMMPP returns the ON/OFF Markov-modulated arrival preset.
func DefaultMMPP(seed WorkloadSeed, numTasks int) MMPPProfile {
	return workload.DefaultMMPP(seed, numTasks)
}

// DefaultPeriodic returns the periodic-with-jitter arrival preset.
func DefaultPeriodic(seed WorkloadSeed, numTasks int) PeriodicProfile {
	return workload.DefaultPeriodic(seed, numTasks)
}

// DefaultHeavyTail returns the Pareto idle-gap preset.
func DefaultHeavyTail(seed WorkloadSeed, numTasks int) HeavyTailProfile {
	return workload.DefaultHeavyTail(seed, numTasks)
}

// Generator spec constructors for IPSpec.Gen.
var (
	// ClosedGen wraps a WorkloadProfile as a generator spec.
	ClosedGen = workload.ClosedSpec
	// BurstGen wraps a BurstProfile as a generator spec.
	BurstGen = workload.BurstSpec
	// MMPPGen wraps an MMPPProfile as a generator spec.
	MMPPGen = workload.MMPPSpec
	// PeriodicGen wraps a PeriodicProfile as a generator spec.
	PeriodicGen = workload.PeriodicSpec
	// HeavyTailGen wraps a HeavyTailProfile as a generator spec.
	HeavyTailGen = workload.HeavyTailSpec
	// TraceGen wraps a literal sequence (e.g. from ImportWorkloadCSV) as
	// a replay spec.
	TraceGen = workload.TraceSpec
)

// ExportWorkloadCSV writes a sequence as CSV for later replay.
func ExportWorkloadCSV(w io.Writer, s Sequence) error { return workload.ExportCSV(w, s) }

// ImportWorkloadCSV reads a sequence written by ExportWorkloadCSV.
func ImportWorkloadCSV(r io.Reader) (Sequence, error) { return workload.ImportCSV(r) }

// Policy tournaments: cross policies × generated scenarios × seeds on the
// batch engine and rank the aggregate leaderboard.
type (
	// Tournament crosses Policies × Scenarios × Seeds.
	Tournament = engine.Tournament
	// TournamentScenario is one named configuration template.
	TournamentScenario = engine.NamedConfig
	// TournamentPolicy is one named entrant transformation.
	TournamentPolicy = engine.PolicyVariant
	// TournamentResult carries cells, the ranked leaderboard and engine
	// counters.
	TournamentResult = engine.TournamentResult
	// TournamentCell is one (scenario, policy) aggregate over seeds.
	TournamentCell = engine.Cell
	// Standing is one ranked leaderboard row.
	Standing = engine.Standing
	// Summary is a replicate aggregate: mean, stddev, 95% CI, extremes.
	Summary = stats.Summary
)

// RunTournament executes the tournament on the engine and aggregates the
// ranked leaderboard.
func RunTournament(ctx context.Context, eng *Engine, t Tournament) (*TournamentResult, error) {
	return engine.RunTournament(ctx, eng, t)
}

// StandardPolicies returns the built-in policy lineup (dpm, alwayson,
// timeout, greedy, oracle) as tournament entrants.
func StandardPolicies() []TournamentPolicy { return engine.StandardPolicies() }

// ArenaScenarios returns the built-in generated-scenario catalog (steady,
// bursty, mmpp, periodic, heavytail), numTasks tasks each.
func ArenaScenarios(numTasks int) []TournamentScenario { return engine.ArenaScenarios(numTasks) }

// Summarize aggregates replicate measurements into mean/stddev/95% CI.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// MissedDeadlines counts ledger tasks whose service time exceeds the
// deadline (0 disables).
func MissedDeadlines(l *Ledger, deadline Time) int { return stats.MissedDeadlines(l, deadline) }

// Measurement helpers.
type (
	// Ledger records per-task timings across a run.
	Ledger = stats.Ledger
	// TaskRecord is one executed task's ledger entry.
	TaskRecord = stats.TaskRecord
)

// EnergySavingPct computes the paper's energy-saving metric (% vs the
// baseline energy).
func EnergySavingPct(baseJ, dpmJ float64) (float64, error) {
	return stats.EnergySavingPct(baseJ, dpmJ)
}

// DelayOverheadPct computes the paper's delay-overhead metric from two
// ledgers of the same workload.
func DelayOverheadPct(base, dpm *Ledger) (float64, error) {
	return stats.DelayOverheadPct(base, dpm)
}

// Observability: the HDR-style latency sketch, rolling rate counters and
// the request journal shared by dpmserve, dpmremote, the loadgen,
// dpmbench and the dpmtop dashboard (see README "Observability").
type (
	// Histogram is a fixed-memory log-bucketed sketch with lock-free
	// concurrent Record; the zero value is ready to use.
	Histogram = stats.Histogram
	// HistogramSnapshot is a point-in-time, mergeable, JSON-encodable
	// histogram; quantile error is bounded by HistRelError.
	HistogramSnapshot = stats.HistSnapshot
	// LatencySummary is the shared headline-quantile shape (p50/p90/p99/
	// max in milliseconds over microsecond observations).
	LatencySummary = stats.LatencySummary
	// Latency pairs a LatencySummary with the sketch it came from — the
	// per-endpoint /statsz shape aggregators merge exactly.
	Latency = stats.Latency
	// RateWindow rolls one cumulative counter into a per-second rate.
	RateWindow = stats.RateWindow
	// RateSet rolls a named family of cumulative counters (the /statsz
	// "rates_per_s" object).
	RateSet = stats.RateSet

	// JournalRecord is one journaled request.
	JournalRecord = journal.Record
	// JournalWriter appends size-cap-rotated NDJSON journal files.
	JournalWriter = journal.Writer
	// JournalOptions configures OpenJournal.
	JournalOptions = journal.Options
	// JournalReader iterates a journal, skipping torn lines.
	JournalReader = journal.Reader
)

// HistRelError is the histogram sketch's worst-case relative quantile
// value error.
const HistRelError = stats.HistRelError

// Journal endpoint and outcome labels.
const (
	JournalEndpointSimulate   = journal.EndpointSimulate
	JournalEndpointTournament = journal.EndpointTournament
	JournalOutcomeHit         = journal.OutcomeHit
	JournalOutcomeRun         = journal.OutcomeRun
	JournalOutcomeError       = journal.OutcomeError
	JournalOutcomeCanceled    = journal.OutcomeCanceled
	JournalOutcomeThrottled   = journal.OutcomeThrottled
)

// LatencyOf pairs a histogram snapshot with its headline summary.
func LatencyOf(s HistogramSnapshot) Latency { return stats.LatencyOf(s) }

// NewRateSet builds a rate set whose windows span the given duration (≤0
// selects the 60s default).
func NewRateSet(window time.Duration) *RateSet { return stats.NewRateSet(window) }

// OpenJournal creates (or truncates) a request journal at path.
func OpenJournal(path string, opts JournalOptions) (*JournalWriter, error) {
	return journal.Open(path, opts)
}

// NewJournalReader wraps an NDJSON journal stream.
func NewJournalReader(r io.Reader) *JournalReader { return journal.NewReader(r) }

// ReadJournal loads every record of the journal at path, reporting how
// many torn/malformed lines were skipped.
func ReadJournal(path string) (recs []JournalRecord, skipped int, err error) {
	return journal.ReadFile(path)
}
