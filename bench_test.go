// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the documented ablations and kernel micro-benchmarks backing
// the simulation-speed comparison.
//
// Paper artefacts:
//   - Table 1  → BenchmarkTable1RuleEval (policy evaluation over the full
//     input space; the table itself prints via cmd/dpmtable)
//   - Fig. 1   → BenchmarkFigure1Topology (SoC assembly of the architecture)
//   - Table 2  → BenchmarkTable2/{A1,A2,A3,A4,B,C} — each iteration runs the
//     DPM scenario and its always-on baseline and reports the three Table 2
//     columns as custom metrics (energy_saving_%, temp_reduction_%,
//     delay_overhead_%)
//   - simulation speed (35 Kcycle/s sim A, 7.5 Kcycle/s sim B/C on the
//     paper's 2005 host) → BenchmarkSimSpeed/{A,BC} reporting Kcycle/s
package godpm_test

import (
	"context"
	"fmt"
	"testing"

	"godpm/internal/battery"
	"godpm/internal/engine"
	"godpm/internal/experiments"
	"godpm/internal/rules"
	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/task"
	"godpm/internal/thermal"
	"godpm/internal/workload"
)

// benchTuning keeps a full scenario pair around a second of wall time.
func benchTuning() experiments.Tuning {
	t := experiments.DefaultTuning()
	t.NumTasks = 60
	return t
}

// BenchmarkTable1RuleEval measures the LEM policy evaluation (Table 1) over
// the complete quantised input space.
func BenchmarkTable1RuleEval(b *testing.B) {
	tbl := rules.Table1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for p := task.Priority(0); int(p) < task.NumPriorities; p++ {
			for bt := battery.Status(0); int(bt) < battery.NumStatuses; bt++ {
				for tc := thermal.Class(0); int(tc) < thermal.NumClasses; tc++ {
					if _, _, ok := tbl.Select(p, bt, tc); !ok {
						b.Fatal("table not total")
					}
				}
			}
		}
	}
}

// BenchmarkFigure1Topology measures assembling the Fig. 1 architecture (the
// four-IP GEM variant) and rendering its component graph.
func BenchmarkFigure1Topology(b *testing.B) {
	t := benchTuning()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := experiments.B(t)
		if out := experiments.Topology(s); len(out) == 0 {
			b.Fatal("empty topology")
		}
	}
}

// runScenarioBench runs one Table 2 row per iteration and reports the
// paper's three columns as metrics.
func runScenarioBench(b *testing.B, id string) {
	b.Helper()
	t := benchTuning()
	s, err := experiments.ByID(id, t)
	if err != nil {
		b.Fatal(err)
	}
	var row experiments.Row
	for i := 0; i < b.N; i++ {
		row, err = experiments.RunScenario(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.EnergySavingPct, "energy_saving_%")
	b.ReportMetric(row.TempReductionPct, "temp_reduction_%")
	b.ReportMetric(row.DelayOverheadPct, "delay_overhead_%")
}

func BenchmarkTable2(b *testing.B) {
	for _, id := range []string{"A1", "A2", "A3", "A4", "B", "C"} {
		b.Run(id, func(b *testing.B) { runScenarioBench(b, id) })
	}
}

// BenchmarkSimSpeed reports the kernel's simulated-cycles-per-wall-second
// throughput in the paper's unit (Kcycle/s), for the single-IP (sim A) and
// the four-IP GEM (sim B/C) configurations.
func BenchmarkSimSpeed(b *testing.B) {
	bench := func(b *testing.B, s experiments.Scenario) {
		var kcps float64
		for i := 0; i < b.N; i++ {
			res, err := soc.Run(s.Config)
			if err != nil {
				b.Fatal(err)
			}
			kcps = res.KCyclesPerSec()
		}
		b.ReportMetric(kcps, "Kcycle/s")
	}
	b.Run("A", func(b *testing.B) { bench(b, experiments.A1(benchTuning())) })
	b.Run("BC", func(b *testing.B) { bench(b, experiments.B(benchTuning())) })
}

// idleHeavyConfig is an ON/OFF workload dominated by idle time: ~40 ms
// bursts at 200 req/s separated by ~1.6 s lulls at 0.5 req/s, the regime
// DPM exists for — and the one where a ticked kernel wastes almost all
// of its wall clock sampling an idle SoC.
func idleHeavyConfig(seed uint64, numTasks int) soc.Config {
	p := workload.DefaultMMPP(workload.NewSeed(seed), numTasks)
	p.QuietRate = 0.5
	p.MeanQuiet = 1600 * sim.Ms
	return soc.Config{
		IPs:     []soc.IPSpec{{Name: "ip0", Arrivals: p.MustGenerate()}},
		Battery: soc.DefaultBattery(0.95),
		Policy:  soc.PolicyDPM,
	}
}

// BenchmarkSimSpeedIdle pins the idle fast-forward speedup: the same
// idle-heavy scenario through the default kernel (which jumps the clock
// across provably-idle gaps) and through a ticked run (NoFastForward).
// The fastforward/ticked Kcycle/s ratio is the committed evidence for
// the event-horizon optimisation; the determinism and fork-equivalence
// tests pin that the results are bit-identical.
func BenchmarkSimSpeedIdle(b *testing.B) {
	cfg := idleHeavyConfig(11, 40)
	bench := func(b *testing.B, opts soc.RunOptions) {
		var kcps float64
		for i := 0; i < b.N; i++ {
			res, err := soc.RunWith(context.Background(), cfg, opts)
			if err != nil {
				b.Fatal(err)
			}
			kcps = res.KCyclesPerSec()
		}
		b.ReportMetric(kcps, "Kcycle/s")
	}
	b.Run("fastforward", func(b *testing.B) { bench(b, soc.RunOptions{}) })
	b.Run("ticked", func(b *testing.B) { bench(b, soc.RunOptions{NoFastForward: true}) })
}

// BenchmarkEngine runs the full six-scenario Table 2 grid (12 simulations:
// each scenario plus its always-on baseline) through the batch engine.
//
//   - workers=N sub-benchmarks run the grid cold (caching disabled) on an
//     N-wide pool; jobs are independent single-goroutine simulations, so
//     on a multi-core host wall time shrinks near-linearly with N (up to
//     the number of physical cores — a 1-CPU host shows parity, not
//     speedup).
//   - cached primes an engine once, then re-runs the same grid; every
//     iteration must be served entirely from the cache (cache_hits == 12,
//     simulated == 0), demonstrating that repeated experiment invocations
//     skip already-computed points.
func BenchmarkEngine(b *testing.B) {
	t := benchTuning()
	plan := experiments.Plan(experiments.All(t))

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.New(engine.Options{Workers: workers, NoCache: true})
				if _, err := eng.Run(context.Background(), plan); err != nil {
					b.Fatal(err)
				}
				if st := eng.Stats(); st.Runs != int64(plan.Len()) {
					b.Fatalf("expected %d cold simulations, got %+v", plan.Len(), st)
				}
			}
			b.ReportMetric(float64(plan.Len())/b.Elapsed().Seconds()*float64(b.N), "jobs/s")
		})
	}

	b.Run("cached", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: 4})
		if _, err := eng.Run(context.Background(), plan); err != nil {
			b.Fatal(err) // prime
		}
		primed := eng.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), plan); err != nil {
				b.Fatal(err)
			}
		}
		st := eng.Stats()
		if st.Runs != primed.Runs {
			b.Fatalf("cached invocation re-simulated: %d new runs", st.Runs-primed.Runs)
		}
		wantHits := primed.Hits + int64(b.N*plan.Len())
		if st.Hits != wantHits {
			b.Fatalf("cache hits = %d, want %d", st.Hits, wantHits)
		}
		b.ReportMetric(float64(st.Hits-primed.Hits)/float64(b.N), "cache_hits/op")
		b.ReportMetric(0, "simulated/op")
	})
}

// ---- Ablations (the design choices README.md calls out) ----

// reportRun reports a run's headline numbers as metrics.
func reportRun(b *testing.B, res *soc.Result) {
	b.Helper()
	b.ReportMetric(res.EnergyJ*1000, "energy_mJ")
	b.ReportMetric(res.Duration.Seconds()*1000, "sim_ms")
	b.ReportMetric(res.AvgTempC, "avg_temp_C")
}

// BenchmarkAblationPredictor compares the idle-time predictors feeding the
// LEM's break-even sleep selection.
func BenchmarkAblationPredictor(b *testing.B) {
	for _, kind := range []soc.PredictorKind{
		soc.PredictorEWMA, soc.PredictorLast, soc.PredictorPerfect,
		soc.PredictorAdaptive, soc.PredictorQuantile,
	} {
		b.Run(string(kind), func(b *testing.B) {
			s := experiments.A1(benchTuning())
			s.Config.LEM.Predictor = kind
			var res *soc.Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = soc.Run(s.Config); err != nil {
					b.Fatal(err)
				}
			}
			reportRun(b, res)
		})
	}
}

// BenchmarkAblationBreakEven compares break-even-gated sleeping against
// always-deepest-sleep.
func BenchmarkAblationBreakEven(b *testing.B) {
	for _, gated := range []bool{true, false} {
		name := "gated"
		if !gated {
			name = "ungated"
		}
		b.Run(name, func(b *testing.B) {
			s := experiments.A1(benchTuning())
			s.Config.LEM.DisableBreakEven = !gated
			var res *soc.Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = soc.Run(s.Config); err != nil {
					b.Fatal(err)
				}
			}
			reportRun(b, res)
		})
	}
}

// BenchmarkAblationBattery compares the KiBaM battery (with its recovery
// effect, which drives scenario B's GEM dynamics) against the linear model.
// It needs the full 120-task runs: shorter ones never push the sensed
// charge across the Low/Medium boundary, making the models look identical.
func BenchmarkAblationBattery(b *testing.B) {
	t := experiments.DefaultTuning()
	configs := map[string]soc.BatteryConfig{
		"kibam": experiments.B(t).Config.Battery,
		"linear": {
			Kind: "linear", CapacityJ: 500, InitialSoC: 0.303,
		},
	}
	for name, batt := range configs {
		b.Run(name, func(b *testing.B) {
			s := experiments.B(t)
			s.Config.Battery = batt
			var res *soc.Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = soc.Run(s.Config); err != nil {
					b.Fatal(err)
				}
			}
			reportRun(b, res)
			b.ReportMetric(res.FinalSoC, "final_soc")
		})
	}
}

// BenchmarkAblationGEM compares the four-IP scenario with and without the
// global manager.
func BenchmarkAblationGEM(b *testing.B) {
	for _, withGEM := range []bool{true, false} {
		name := "with"
		if !withGEM {
			name = "without"
		}
		b.Run(name, func(b *testing.B) {
			s := experiments.B(experiments.DefaultTuning())
			s.Config.UseGEM = withGEM
			var res *soc.Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = soc.Run(s.Config); err != nil {
					b.Fatal(err)
				}
			}
			reportRun(b, res)
		})
	}
}

// ---- Kernel micro-benchmarks ----
//
// These three pin the kernel's per-event cost (the paper's simulation
// speed is dominated by it): timed notification, delta cycles and signal
// writes. All must report 0 allocs/op — the internal/sim allocation tests
// enforce the same bound as a hard test. cmd/dpmbench turns their output
// into BENCH_2.json and gates CI on >10% regressions.

// BenchmarkNotifyTimed measures the timed notify→fire→activate path: one
// method process re-notifying its own event, one kernel instant per event.
// The churn variant supersedes a second event's notification every cycle,
// adding the stale-entry bookkeeping and lazy compaction to the measured
// path.
func BenchmarkNotifyTimed(b *testing.B) {
	run := func(b *testing.B, churn bool) {
		k := sim.NewKernel()
		e := k.NewEvent("tick")
		c := k.NewEvent("churn")
		n := 0
		k.Method("m", func() {
			n++
			e.Notify(10 * sim.Ns)
			if churn {
				c.Notify(30 * sim.Ns)
				c.Notify(20 * sim.Ns) // earlier wins: strands a stale entry
			}
		}).Sensitive(e)
		b.ReportAllocs()
		b.ResetTimer()
		if err := k.Run(sim.Time(b.N) * 10 * sim.Ns); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("pure", func(b *testing.B) { run(b, false) })
	b.Run("churn", func(b *testing.B) { run(b, true) })
}

// BenchmarkDeltaCycle measures pure delta-cycle throughput: one method
// re-notifying itself with SC_ZERO_TIME semantics, never advancing time.
func BenchmarkDeltaCycle(b *testing.B) {
	k := sim.NewKernel()
	k.MaxDeltasPerInstant = 1 << 60
	e := k.NewEvent("d")
	n := 0
	k.Method("m", func() {
		n++
		if n < b.N {
			e.NotifyDelta()
		}
	}).Sensitive(e)
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
	if n < b.N {
		b.Fatalf("ran %d delta cycles, want %d", n, b.N)
	}
}

// BenchmarkSignalWrite measures the full signal path — write, update
// phase, change notification, sensitive-process activation — one delta
// cycle per write.
func BenchmarkSignalWrite(b *testing.B) {
	k := sim.NewKernel()
	k.MaxDeltasPerInstant = 1 << 60
	s := sim.NewSignal(k, "s", 0)
	i := 0
	k.Method("w", func() {
		i++
		if i <= b.N {
			s.Write(i) // always a change: re-activates via s.Changed()
		}
	}).Sensitive(s.Changed())
	reads := 0
	k.Method("r", func() { reads++ }).Sensitive(s.Changed()).DontInitialize()
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
	if s.Read() < b.N {
		b.Fatalf("wrote %d values, want %d", s.Read(), b.N)
	}
}

// BenchmarkKernelThreadSwitch measures thread suspend/resume round trips.
func BenchmarkKernelThreadSwitch(b *testing.B) {
	k := sim.NewKernel()
	k.Thread("t", func(c *sim.Ctx) {
		for i := 0; i < b.N; i++ {
			c.WaitTime(1 * sim.Ns)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(sim.MaxTime); err != nil {
		b.Fatal(err)
	}
	k.Shutdown()
}

// BenchmarkKernelFifo measures producer/consumer handoffs through a FIFO.
func BenchmarkKernelFifo(b *testing.B) {
	k := sim.NewKernel()
	// The whole handoff runs in delta cycles at t=0; that's the point of
	// the benchmark, so lift the livelock guard.
	k.MaxDeltasPerInstant = 1 << 60
	f := sim.NewFifo[int](k, "f", 16)
	k.Thread("prod", func(c *sim.Ctx) {
		for i := 0; i < b.N; i++ {
			f.Put(c, i)
		}
	})
	k.Thread("cons", func(c *sim.Ctx) {
		for i := 0; i < b.N; i++ {
			f.Get(c)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(sim.MaxTime); err != nil {
		b.Fatal(err)
	}
	k.Shutdown()
}
