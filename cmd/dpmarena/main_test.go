package main

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"godpm"
)

// TestArenaEndToEnd pins the acceptance contract on the CLI's own plan
// builder: a 4-policy × 5-scenario × 5-seed tournament runs end-to-end,
// a rerun on the same engine is fully cache-served, and identical seeds
// reproduce the identical leaderboard on a fresh engine.
func TestArenaEndToEnd(t *testing.T) {
	tour, err := buildTournament("dpm,alwayson,timeout,greedy", "all", 5, 1, 8,
		30*time.Millisecond, "alwayson")
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Policies) < 3 || len(tour.Scenarios) < 4 || len(tour.Seeds) < 5 {
		t.Fatalf("fixture too small: %d policies, %d scenarios, %d seeds",
			len(tour.Policies), len(tour.Scenarios), len(tour.Seeds))
	}
	ctx := context.Background()

	eng := godpm.NewEngine(godpm.EngineOptions{})
	res, err := godpm.RunTournament(ctx, eng, tour)
	if err != nil {
		t.Fatal(err)
	}
	jobs := len(tour.Policies) * len(tour.Scenarios) * len(tour.Seeds)
	if st := eng.Stats(); st.Runs != int64(jobs) || st.Errors != 0 {
		t.Fatalf("first run stats %+v, want %d runs", st, jobs)
	}

	// Rerun on the same engine: zero new simulations.
	res2, err := godpm.RunTournament(ctx, eng, tour)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Runs != int64(jobs) || st.Hits != int64(jobs) {
		t.Fatalf("rerun stats %+v, want %d runs and %d hits", st, jobs, jobs)
	}
	if !reflect.DeepEqual(res.Leaderboard, res2.Leaderboard) {
		t.Fatal("cache-served rerun changed the leaderboard")
	}

	// Identical seeds on a fresh engine reproduce the leaderboard and the
	// cells bit for bit.
	res3, err := godpm.RunTournament(ctx, godpm.NewEngine(godpm.EngineOptions{Workers: 4}), tour)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Leaderboard, res3.Leaderboard) || !reflect.DeepEqual(res.Cells, res3.Cells) {
		t.Fatal("identical seeds did not reproduce the leaderboard")
	}

	// And the rendered outputs are identical too (what the user sees).
	var a, b bytes.Buffer
	if err := res.WriteLeaderboardCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := res3.WriteLeaderboardCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("rendered leaderboards differ")
	}
	if res.FormatLeaderboard() != res3.FormatLeaderboard() {
		t.Fatal("formatted leaderboards differ")
	}
}

func TestBuildTournamentFlagErrors(t *testing.T) {
	cases := []struct {
		policies, scenarios string
		seeds               int
		tasks               int
		baseline            string
	}{
		{"nosuch", "all", 2, 8, ""},
		{"dpm", "nosuch", 2, 8, ""},
		{"dpm,alwayson", "all", 0, 8, "alwayson"},
		{"dpm,alwayson", "all", 2, 0, "alwayson"},
		{"dpm,greedy", "all", 2, 8, "alwayson"}, // baseline not selected
	}
	for i, c := range cases {
		if _, err := buildTournament(c.policies, c.scenarios, c.seeds, 1, c.tasks, 0, c.baseline); err == nil {
			t.Errorf("case %d built but should not", i)
		}
	}
	// 'all' policies and an empty baseline are accepted.
	tour, err := buildTournament("all", "mmpp,periodic", 2, 1, 8, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Policies) != 5 || len(tour.Scenarios) != 2 || tour.Baseline != "" {
		t.Fatalf("tournament = %d policies, %d scenarios, baseline %q",
			len(tour.Policies), len(tour.Scenarios), tour.Baseline)
	}
	// The baseline flag normalizes exactly like -policies entries: mixed
	// case and stray spaces still name the selected policy.
	tour, err = buildTournament("DPM, AlwaysOn", "all", 2, 1, 8, 0, " AlwaysOn ")
	if err != nil {
		t.Fatal(err)
	}
	if tour.Baseline != "alwayson" {
		t.Fatalf("baseline normalized to %q", tour.Baseline)
	}
}
