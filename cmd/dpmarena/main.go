// Command dpmarena runs policy tournaments: it crosses energy-management
// policies × generated workload scenarios × replicate seeds through the
// concurrent batch engine, aggregates each cell (mean, stddev, 95% CI,
// paired deltas against the baseline policy) and prints a ranked
// leaderboard (energy, deadline misses, average temperature).
//
// Scenarios come from the built-in generator catalog (steady, bursty,
// mmpp, periodic, heavytail), each driven by a splittable workload seed,
// so every run is reproducible bit for bit: the same -seed always yields
// the same leaderboard, and with -cache DIR a rerun is served entirely
// from the result cache.
//
// Usage:
//
//	dpmarena [-policies all|dpm,timeout,...] [-scenarios all|mmpp,...]
//	         [-seeds N] [-seed BASE] [-tasks N] [-deadline DUR]
//	         [-baseline POLICY] [-workers N] [-cache DIR]
//	         [-format table|csv|json] [-cells] [-v]
//
// Examples:
//
//	dpmarena
//	dpmarena -policies dpm,timeout,greedy -scenarios mmpp,heavytail -seeds 10
//	dpmarena -format csv -cells -cache /tmp/dpmcache
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"godpm"
)

func main() {
	var (
		policies  = flag.String("policies", "dpm,alwayson,timeout,greedy", "comma list of policies, or 'all'")
		scenarios = flag.String("scenarios", "all", "comma list of scenarios, or 'all'")
		seeds     = flag.Int("seeds", 5, "replicate seeds per (scenario, policy)")
		seedBase  = flag.Uint64("seed", 1, "base seed; replicate k uses seed+k")
		tasks     = flag.Int("tasks", 60, "tasks per generated workload")
		deadline  = flag.Duration("deadline", 30*time.Millisecond, "per-task service deadline for the miss column (0 disables)")
		baseline  = flag.String("baseline", "alwayson", "policy paired deltas are computed against")
		workers   = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		cacheDir  = flag.String("cache", "", "result cache directory ('' = in-memory only)")
		format    = flag.String("format", "table", "output format: table, csv or json")
		cells     = flag.Bool("cells", false, "also print per-(scenario, policy) cells (table/csv formats)")
		verbose   = flag.Bool("v", false, "log every job completion to stderr")
	)
	flag.Parse()

	tour, err := buildTournament(*policies, *scenarios, *seeds, *seedBase, *tasks, *deadline, *baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var cache godpm.Cache
	if *cacheDir != "" {
		if cache, err = godpm.NewDiskCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	opts := godpm.EngineOptions{Workers: *workers, Cache: cache}
	if *verbose {
		plan, err := tour.Plan()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		done := 0
		opts.OnResult = func(i int, jr godpm.JobResult) {
			status := "ran"
			if jr.CacheHit {
				status = "cached"
			}
			if jr.Err != nil {
				status = "error: " + jr.Err.Error()
			}
			done++
			fmt.Fprintf(os.Stderr, "[%d/%d] %-28s %s\n", done, plan.Len(), jr.Job.ID, status)
		}
	}
	eng := godpm.NewEngine(opts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, runErr := godpm.RunTournament(ctx, eng, tour)
	if res == nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
	if err := writeResult(os.Stdout, *format, *cells, res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "%d policies × %d scenarios × %d seeds on %d workers: %d simulated, %d cache hits, %d errors\n",
		len(tour.Policies), len(tour.Scenarios), len(tour.Seeds), eng.Workers(), st.Runs, st.Hits, st.Errors)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
}

// buildTournament resolves the flag spec into a Tournament.
func buildTournament(policySpec, scenarioSpec string, seeds int, seedBase uint64,
	tasks int, deadline time.Duration, baseline string) (godpm.Tournament, error) {
	var t godpm.Tournament
	if seeds < 1 {
		return t, fmt.Errorf("need at least one seed")
	}
	if tasks < 1 {
		return t, fmt.Errorf("need at least one task")
	}

	all := godpm.StandardPolicies()
	byName := make(map[string]godpm.TournamentPolicy, len(all))
	var names []string
	for _, p := range all {
		byName[p.Name] = p
		names = append(names, p.Name)
	}
	if strings.EqualFold(policySpec, "all") {
		t.Policies = all
	} else {
		for _, part := range strings.Split(policySpec, ",") {
			part = strings.TrimSpace(strings.ToLower(part))
			if part == "" {
				continue
			}
			p, ok := byName[part]
			if !ok {
				return t, fmt.Errorf("unknown policy %q; available: %v", part, names)
			}
			t.Policies = append(t.Policies, p)
		}
	}

	catalog := godpm.ArenaScenarios(tasks)
	if strings.EqualFold(scenarioSpec, "all") {
		t.Scenarios = catalog
	} else {
		byScen := make(map[string]godpm.TournamentScenario, len(catalog))
		var scens []string
		for _, s := range catalog {
			byScen[s.Name] = s
			scens = append(scens, s.Name)
		}
		for _, part := range strings.Split(scenarioSpec, ",") {
			part = strings.TrimSpace(strings.ToLower(part))
			if part == "" {
				continue
			}
			s, ok := byScen[part]
			if !ok {
				return t, fmt.Errorf("unknown scenario %q; available: %v", part, scens)
			}
			t.Scenarios = append(t.Scenarios, s)
		}
	}

	for k := 0; k < seeds; k++ {
		t.Seeds = append(t.Seeds, godpm.NewSeed(seedBase+uint64(k)))
	}
	t.Deadline = godpm.Time(deadline.Nanoseconds()) * godpm.Ns
	t.Baseline = ""
	if baseline = strings.TrimSpace(strings.ToLower(baseline)); baseline != "" {
		for _, p := range t.Policies {
			if p.Name == baseline {
				t.Baseline = baseline
			}
		}
		if t.Baseline == "" {
			return t, fmt.Errorf("baseline %q is not among the selected policies", baseline)
		}
	}
	return t, t.Validate()
}

func writeResult(w *os.File, format string, cells bool, res *godpm.TournamentResult) error {
	switch format {
	case "table":
		if _, err := fmt.Fprint(w, res.FormatLeaderboard()); err != nil {
			return err
		}
		if cells {
			fmt.Fprintln(w)
			return res.WriteCellsCSV(w)
		}
		return nil
	case "csv":
		if err := res.WriteLeaderboardCSV(w); err != nil {
			return err
		}
		if cells {
			fmt.Fprintln(w)
			return res.WriteCellsCSV(w)
		}
		return nil
	case "json":
		return res.WriteJSON(w)
	default:
		return fmt.Errorf("unknown format %q (want table, csv or json)", format)
	}
}
