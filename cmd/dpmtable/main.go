// Command dpmtable reproduces the paper's Table 1: it prints the power-state
// selection policy in the paper's layout, the full decision table over the
// quantised input space, and the coverage analysis of the literal paper
// table (its dead row and its undecided region — see internal/rules).
//
// Usage:
//
//	dpmtable [-decisions] [-coverage] [-dsl]
package main

import (
	"flag"
	"fmt"

	"godpm/internal/battery"
	"godpm/internal/rules"
	"godpm/internal/task"
	"godpm/internal/thermal"
)

func main() {
	var (
		decisions = flag.Bool("decisions", false, "print the decision for every input combination")
		coverage  = flag.Bool("coverage", false, "print the coverage analysis of the literal paper table")
		dsl       = flag.Bool("dsl", false, "print the natural-language rule script")
	)
	flag.Parse()

	fmt.Println("Table 1 — Power state selection algorithm")
	fmt.Print(rules.Table1().Format())

	if *dsl {
		fmt.Println("\nNatural-language rule form (rules.Table1DSL):")
		fmt.Print(rules.Table1DSL)
	}

	if *decisions {
		fmt.Println("\nFull decision table (first-match rule index in brackets, -1 = default):")
		tbl := rules.Table1()
		for p := task.Priority(0); int(p) < task.NumPriorities; p++ {
			for b := battery.Status(0); int(b) < battery.NumStatuses; b++ {
				for tc := thermal.Class(0); int(tc) < thermal.NumClasses; tc++ {
					state, idx, _ := tbl.Select(p, b, tc)
					fmt.Printf("  priority=%-8s battery=%-6s temp=%-6s -> %-7s [%d]\n",
						p, b, tc, state, idx)
				}
			}
		}
	}

	if *coverage {
		fmt.Println("\nCoverage of the literal paper table (before completion):")
		cov := rules.NewTable(rules.Table1Rules()).Analyze()
		fmt.Printf("  dead rules: %v\n", cov.DeadRules)
		for _, i := range cov.DeadRules {
			fmt.Printf("    rule %d: %s\n", i, rules.Table1Rules()[i].Source)
		}
		fmt.Printf("  undecided combinations: %d\n", len(cov.Unmatched))
		for _, c := range cov.Unmatched {
			fmt.Printf("    %s\n", c)
		}
		fmt.Println("  (the shipped table adds 'default ON3' for the undecided region)")
	}
}
