// Command dpmsim reproduces the paper's evaluation: it runs the Table 2
// scenarios (A1–A4, B, C) against their always-on baselines and prints the
// measured energy saving, temperature reduction and delay overhead next to
// the paper's numbers. It can also print the instantiated Fig. 1 topology
// of each scenario.
//
// Usage:
//
//	dpmsim [-run all|A1|A2|A3|A4|B|C] [-tasks N] [-seed N] [-topology] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"godpm"
)

func main() {
	var (
		run      = flag.String("run", "all", "scenario to run: all, A1..A4, B, C")
		tasks    = flag.Int("tasks", 0, "tasks per IP (0 = default tuning)")
		seed     = flag.Int64("seed", 0, "workload seed (0 = default tuning)")
		topology = flag.Bool("topology", false, "print the Fig. 1 component graph instead of simulating")
		ext      = flag.Bool("ext", false, "also run the extension scenarios (per-IP thermal, open-loop, regulator)")
		verbose  = flag.Bool("v", false, "print per-run details")
	)
	flag.Parse()

	tuning := godpm.DefaultTuning()
	if *tasks > 0 {
		tuning.NumTasks = *tasks
	}
	if *seed != 0 {
		tuning.Seed = *seed
	}

	var scenarios []godpm.Scenario
	if strings.EqualFold(*run, "all") {
		scenarios = godpm.Scenarios(tuning)
		if *ext {
			scenarios = append(scenarios, godpm.Extensions(tuning)...)
		}
	} else {
		s, err := godpm.ScenarioByID(strings.ToUpper(*run), tuning)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		scenarios = []godpm.Scenario{s}
	}

	if *topology {
		for _, s := range scenarios {
			fmt.Println(godpm.Topology(s))
		}
		return
	}

	var rows []godpm.Row
	for _, s := range scenarios {
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", s.ID, s.Description)
		row, err := godpm.RunScenario(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.ID, err)
			os.Exit(1)
		}
		rows = append(rows, row)
		if *verbose {
			printDetails(row)
		}
	}

	fmt.Println("Table 2 — Performances of the DPM in the different simulations")
	fmt.Print(godpm.FormatTable2(rows))
	fmt.Println("\n(shape comparison: absolute numbers depend on the synthetic")
	fmt.Println(" power/battery/thermal characterisation; see README.md)")
	for _, row := range rows {
		fmt.Printf("sim speed %-3s: DPM %.1f Kcycle/s, baseline %.1f Kcycle/s\n",
			row.ID, row.DPM.KCyclesPerSec(), row.Base.KCyclesPerSec())
	}
}

func printDetails(row godpm.Row) {
	d, b := row.DPM, row.Base
	fmt.Printf("  %s: dpm %.4f J in %v (%d tasks, completed=%v)\n",
		row.ID, d.EnergyJ, d.Duration, d.TasksDone, d.Completed)
	fmt.Printf("      base %.4f J in %v\n", b.EnergyJ, b.Duration)
	fmt.Printf("      temp avg %.1f°C peak %.1f°C (base avg %.1f°C peak %.1f°C)\n",
		d.AvgTempC, d.PeakTempC, b.AvgTempC, b.PeakTempC)
	fmt.Printf("      battery final SoC %.3f (%v)\n", d.FinalSoC, d.FinalBatteryStatus)
	for name, st := range d.LEMStats {
		fmt.Printf("      %s: on=%v sleep=%v parks=%d parked=%v\n",
			name, st.OnDecisions, st.SleepEntries, st.ParkEvents, st.ParkedTime)
	}
	if d.GEMEvaluations > 0 {
		fmt.Printf("      gem: %d evaluations, %d fan switches\n", d.GEMEvaluations, d.FanSwitches)
	}
	if d.BusOccupancy > 0 {
		fmt.Printf("      bus occupancy %.2f%%\n", 100*d.BusOccupancy)
	}
}
