// Command dpmbatch runs a grid of simulations — Table 2 scenarios,
// extension scenarios, seed replicates and the built-in parameter studies —
// through the concurrent batch engine (internal/engine) and writes one
// record per job as CSV or JSON.
//
// Every job is content-addressed: with -cache DIR, results persist across
// invocations and a re-run of the same grid is served from the cache
// without simulating (the summary on stderr reports hits/misses/runs).
//
// Usage:
//
//	dpmbatch [-scenarios all|ext|A1,B,...] [-study timeout|activity|alpha]
//	         [-replicates N] [-tasks N] [-seed N]
//	         [-workers N] [-cache DIR] [-remote-url URL] [-format csv|json] [-v]
//
// Examples:
//
//	dpmbatch -scenarios all -workers 8
//	dpmbatch -scenarios B,C -replicates 5 -format json
//	dpmbatch -study timeout -cache /tmp/dpmcache
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"godpm"
)

func main() {
	var (
		scenarios  = flag.String("scenarios", "", "comma list of scenario IDs; 'all' = A1..C, 'ext' = extensions")
		study      = flag.String("study", "", "parameter study to add: timeout, activity, alpha")
		replicates = flag.Int("replicates", 1, "seed replicates per scenario (seeds seed..seed+N-1)")
		tasks      = flag.Int("tasks", 0, "tasks per IP (0 = default tuning)")
		seed       = flag.Int64("seed", 0, "base workload seed (0 = default tuning)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		cacheDir   = flag.String("cache", "", "result cache directory ('' = in-memory only)")
		remoteURL  = flag.String("remote-url", "", "dpmremote shared result store base URL ('' = local tiers only)")
		format     = flag.String("format", "csv", "output format: csv or json")
		verbose    = flag.Bool("v", false, "log every job completion to stderr")
	)
	flag.Parse()

	if *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want csv or json)\n", *format)
		os.Exit(2)
	}

	tuning := godpm.DefaultTuning()
	if *tasks > 0 {
		tuning.NumTasks = *tasks
	}
	if *seed != 0 {
		tuning.Seed = *seed
	}

	plan, err := buildPlan(*scenarios, *study, *replicates, tuning)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if plan.Len() == 0 {
		fmt.Fprintln(os.Stderr, "empty grid: pass -scenarios and/or -study (see -h)")
		os.Exit(2)
	}

	var cache godpm.Cache
	if *cacheDir != "" {
		if cache, err = godpm.NewDiskCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// A shared dpmremote store layers behind the local tiers: grids some
	// other process (or a previous invocation on another machine) already
	// ran are fetched instead of simulated, and fresh results replicate
	// to the fleet via write-behind PUTs.
	var tiered *godpm.TieredCache
	if *remoteURL != "" {
		if cache == nil {
			cache = godpm.NewLRUCache(godpm.LRUOptions{})
		}
		remote, err := godpm.NewRemoteCache(godpm.RemoteCacheOptions{BaseURL: *remoteURL})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		tiered = godpm.NewTieredCache(
			godpm.CacheTier{Name: "local", Cache: cache},
			godpm.CacheTier{Name: godpm.TierRemote, Cache: remote, AsyncPut: true},
		)
		cache = tiered
	}
	opts := godpm.EngineOptions{Workers: *workers, Cache: cache}
	if *verbose {
		// OnStart/OnResult calls are serialised by the engine, so plain
		// counters are safe; together they stream the live grid progress.
		started, done := 0, 0
		opts.OnStart = func(i int, job godpm.Job) {
			started++
			fmt.Fprintf(os.Stderr, "[%d/%d] %-24s start\n", started, plan.Len(), job.ID)
		}
		opts.OnResult = func(i int, jr godpm.JobResult) {
			status := "ran"
			if jr.CacheHit {
				status = "cached"
			}
			if jr.Err != nil {
				status = "error: " + jr.Err.Error()
			}
			done++
			fmt.Fprintf(os.Stderr, "[%d/%d] %-24s %s\n", done, plan.Len(), jr.Job.ID, status)
		}
	}
	eng := godpm.NewEngine(opts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	results, runErr := eng.Run(ctx, plan)
	if err := writeResults(os.Stdout, *format, results, eng.Stats()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tiered != nil {
		// Flush the write-behind queue so this grid's fresh results reach
		// the shared store before the process exits.
		tiered.Close()
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "%d jobs on %d workers: %d simulated, %d cache hits (%d deduped), %d errors, %d canceled\n",
		plan.Len(), eng.Workers(), st.Runs, st.Hits, st.Deduped, st.Errors, st.Canceled)
	if len(st.Tiers) > 0 {
		parts := make([]string, len(st.Tiers))
		for i, tier := range st.Tiers {
			parts[i] = fmt.Sprintf("%s %d/%d", tier.Tier, tier.Hits, tier.Hits+tier.Misses)
		}
		fmt.Fprintf(os.Stderr, "cache tiers [hits/lookups]: %s\n", strings.Join(parts, ", "))
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
}

// buildPlan assembles the grid: scenarios × seed replicates, plus an
// optional parameter study.
func buildPlan(scenarioSpec, studyName string, replicates int, tuning godpm.Tuning) (godpm.Plan, error) {
	var plan godpm.Plan
	if replicates < 1 {
		replicates = 1
	}

	if scenarioSpec != "" {
		ids, err := expandScenarioIDs(scenarioSpec, tuning)
		if err != nil {
			return plan, err
		}
		scenarios := make([]godpm.Scenario, len(ids))
		for i, id := range ids {
			if scenarios[i], err = scenarioByAnyID(id, tuning); err != nil {
				return plan, err
			}
		}
		seeds := make([]int64, replicates)
		for r := range seeds {
			seeds[r] = tuning.Seed + int64(r)
		}
		plan = godpm.ReplicatedScenarioPlan(scenarios, seeds, func(s godpm.Scenario, seed int64) godpm.Scenario {
			t := tuning
			t.Seed = seed
			r, err := scenarioByAnyID(s.ID, t)
			if err != nil {
				// Unreachable: the ID resolved above with the same resolver.
				return s
			}
			return r
		})
	}

	if studyName != "" {
		studies := godpm.Studies(tuning.Seed, tuning.NumTasks)
		st, ok := studies[studyName]
		if !ok {
			names := make([]string, 0, len(studies))
			for n := range studies {
				names = append(names, n)
			}
			sort.Strings(names)
			return plan, fmt.Errorf("unknown study %q; available: %v", studyName, names)
		}
		plan.Jobs = append(plan.Jobs, st.Plan().Jobs...)
	}
	return plan, nil
}

// expandScenarioIDs resolves the -scenarios spec to concrete IDs.
func expandScenarioIDs(spec string, t godpm.Tuning) ([]string, error) {
	var ids []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		switch {
		case part == "":
		case strings.EqualFold(part, "all"):
			for _, s := range godpm.Scenarios(t) {
				ids = append(ids, s.ID)
			}
		case strings.EqualFold(part, "ext"):
			for _, s := range godpm.Extensions(t) {
				ids = append(ids, s.ID)
			}
		default:
			if _, err := scenarioByAnyID(part, t); err != nil {
				return nil, err
			}
			ids = append(ids, part)
		}
	}
	return ids, nil
}

// scenarioByAnyID resolves paper scenarios and extensions alike.
func scenarioByAnyID(id string, t godpm.Tuning) (godpm.Scenario, error) {
	if s, err := godpm.ScenarioByID(strings.ToUpper(id), t); err == nil {
		return s, nil
	}
	if s, err := godpm.ExtensionByID(id, t); err == nil {
		return s, nil
	}
	known := make([]string, 0, 9)
	for _, s := range godpm.Scenarios(t) {
		known = append(known, s.ID)
	}
	for _, s := range godpm.Extensions(t) {
		known = append(known, s.ID)
	}
	return godpm.Scenario{}, fmt.Errorf("unknown scenario %q; available: %v", id, known)
}

// record is the flat per-job output row.
type record struct {
	ID          string  `json:"id"`
	Key         string  `json:"key"`
	CacheHit    bool    `json:"cache_hit"`
	Error       string  `json:"error,omitempty"`
	EnergyJ     float64 `json:"energy_j"`
	DurationS   float64 `json:"duration_s"`
	AvgTempC    float64 `json:"avg_temp_c"`
	PeakTempC   float64 `json:"peak_temp_c"`
	TasksDone   int     `json:"tasks_done"`
	Completed   bool    `json:"completed"`
	FinalSoC    float64 `json:"final_soc"`
	KCyclesPerS float64 `json:"kcycles_per_s"`
}

func toRecord(jr godpm.JobResult) record {
	rec := record{ID: jr.Job.ID, Key: jr.Key, CacheHit: jr.CacheHit}
	if jr.Err != nil {
		rec.Error = jr.Err.Error()
		return rec
	}
	r := jr.Result
	rec.EnergyJ = r.EnergyJ
	rec.DurationS = r.Duration.Seconds()
	rec.AvgTempC = r.AvgTempC
	rec.PeakTempC = r.PeakTempC
	rec.TasksDone = r.TasksDone
	rec.Completed = r.Completed
	rec.FinalSoC = r.FinalSoC
	rec.KCyclesPerS = r.KCyclesPerSec()
	return rec
}

func writeResults(w *os.File, format string, results []godpm.JobResult, st godpm.EngineStats) error {
	switch format {
	case "json":
		recs := make([]record, len(results))
		for i, jr := range results {
			recs[i] = toRecord(jr)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Jobs  []record          `json:"jobs"`
			Stats godpm.EngineStats `json:"stats"`
		}{recs, st})
	case "csv":
		if _, err := fmt.Fprintln(w, "id,key,cache_hit,error,energy_j,duration_s,avg_temp_c,peak_temp_c,tasks_done,completed,final_soc,kcycles_per_s"); err != nil {
			return err
		}
		for _, jr := range results {
			rec := toRecord(jr)
			if _, err := fmt.Fprintf(w, "%s,%s,%v,%s,%.6g,%.6g,%.4g,%.4g,%d,%v,%.4g,%.4g\n",
				rec.ID, shortKey(rec.Key), rec.CacheHit, csvQuote(rec.Error),
				rec.EnergyJ, rec.DurationS, rec.AvgTempC, rec.PeakTempC,
				rec.TasksDone, rec.Completed, rec.FinalSoC, rec.KCyclesPerS); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", format)
	}
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

func csvQuote(s string) string {
	if s == "" {
		return ""
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
