// dpmbench turns `go test -bench` output into a committed JSON baseline and
// gates changes against it: parse benchmark text from stdin (or -in), emit
// the parsed numbers as JSON with -emit, and compare them against a
// baseline file with -baseline, exiting non-zero when a throughput metric
// regresses by more than -max-regress percent.
//
// Typical use (see the README's Performance section and the CI bench job):
//
//	go test -run '^$' -bench 'BenchmarkSimSpeed|BenchmarkNotifyTimed|BenchmarkDeltaCycle|BenchmarkSignalWrite' \
//	    -benchmem -count 3 . | go run ./cmd/dpmbench -emit BENCH_2.json
//
//	go test -run '^$' -bench ... -benchmem -count 3 . | \
//	    go run ./cmd/dpmbench -baseline BENCH_2.json -max-regress 10
//
// Comparison rules, per benchmark present in both runs:
//
//   - ns/op: higher is worse; fails beyond the threshold.
//   - Kcycle/s and jobs/s: higher is better; fails when the new value drops
//     below (100−threshold)% of the baseline.
//   - allocs/op: a zero baseline is a hard contract — any new allocation
//     fails regardless of threshold; non-zero baselines use the threshold.
//   - everything else (energy_mJ, cache_hits/op, …) is informational.
//
// Wall-clock metrics are only comparable when baseline and current ran on
// the same hardware. When they did not — a committed baseline checked on a
// CI runner — pass -gate allocs: the hardware-independent allocs/op
// contract still gates hard, while ns/op and rate metrics are reported
// informationally only.
//
// Duplicate lines (from -count N) are aggregated noise-robustly before
// comparison or emission: best-of-N for time and rate metrics (host noise
// only ever makes a run slower, never faster), worst-of-N for allocs/op
// (one allocating run must not hide behind the mean), mean for
// informational metrics. Run with -count 3 or more so one descheduled run
// cannot fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"godpm"
)

// benchFile is the JSON schema committed as BENCH_<n>.json.
type benchFile struct {
	Schema     string                `json:"schema"`
	Go         string                `json:"go"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// NsPerOp summarises the per-run ns/op samples (-count N gives N of
	// them) through the same histogram sketch and quantile definitions
	// as the serving layer's /statsz latency, so "p99 in the baseline"
	// and "p99 on the dashboard" mean the same thing. Informational —
	// gating still uses the aggregated Metrics.
	NsPerOp *godpm.LatencySummary `json:"ns_per_op,omitempty"`
}

const schemaID = "godpm-bench-v1"

// benchLine matches one benchmark result line:
//
//	BenchmarkSimSpeed/A-8   20   1578713 ns/op   203249981 Kcycle/s   999608 B/op   417 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// aggregate folds the values one benchmark reported for one unit across
// -count N runs into the number that gets compared: the best run for time
// and rate metrics, the worst run for allocs/op, the mean for
// informational metrics.
func aggregate(unit string, vals []float64) float64 {
	agg := vals[0]
	switch {
	case unit == "allocs/op":
		for _, v := range vals[1:] {
			agg = math.Max(agg, v)
		}
	case direction(unit) < 0, unit == "B/op":
		for _, v := range vals[1:] {
			agg = math.Min(agg, v)
		}
	case direction(unit) > 0:
		for _, v := range vals[1:] {
			agg = math.Max(agg, v)
		}
	default:
		for _, v := range vals[1:] {
			agg += v
		}
		agg /= float64(len(vals))
	}
	return agg
}

// parse reads `go test -bench` text and aggregates duplicate benchmark
// names (see aggregate).
func parse(r io.Reader) (map[string]benchEntry, error) {
	raw := map[string]map[string][]float64{}
	iters := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, iterStr, rest := m[1], m[2], m[3]
		it, err := strconv.Atoi(iterStr)
		if err != nil {
			return nil, fmt.Errorf("dpmbench: bad iteration count in %q: %v", sc.Text(), err)
		}
		fields := strings.Fields(rest)
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("dpmbench: odd value/unit pairing in %q", sc.Text())
		}
		if raw[name] == nil {
			raw[name] = map[string][]float64{}
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dpmbench: bad value %q in %q: %v", fields[i], sc.Text(), err)
			}
			raw[name][fields[i+1]] = append(raw[name][fields[i+1]], v)
		}
		iters[name] = it
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]benchEntry, len(raw))
	for name, units := range raw {
		e := benchEntry{Iterations: iters[name], Metrics: make(map[string]float64, len(units))}
		for unit, vals := range units {
			e.Metrics[unit] = aggregate(unit, vals)
		}
		if vals := units["ns/op"]; len(vals) > 0 {
			var h godpm.Histogram
			for _, v := range vals {
				h.RecordDuration(time.Duration(v))
			}
			s := godpm.LatencyOf(h.Snapshot()).LatencySummary
			e.NsPerOp = &s
		}
		out[name] = e
	}
	return out, nil
}

// direction classifies a metric: +1 higher-is-better, -1 lower-is-better,
// 0 informational.
func direction(unit string) int {
	switch unit {
	case "ns/op":
		return -1
	case "Kcycle/s", "jobs/s":
		return +1
	case "allocs/op":
		return -1
	default:
		return 0
	}
}

// regression describes one failed comparison.
type regression struct {
	bench, unit       string
	baseline, current float64
	changePct         float64
}

// compare evaluates current against baseline under the threshold (percent)
// and returns the regressions plus a human-readable report of every gated
// metric. With gateTimes false, only hardware-independent metrics
// (allocs/op) can fail; ns/op and rate metrics are reported but never
// gate — the right mode when baseline and current ran on different
// machines (CI runners vs the machine that committed the baseline).
func compare(baseline, current map[string]benchEntry, thresholdPct float64, gateTimes bool) (regs []regression, report []string) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		if _, ok := current[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		base, cur := baseline[name], current[name]
		units := make([]string, 0, len(base.Metrics))
		for unit := range base.Metrics {
			if _, ok := cur.Metrics[unit]; ok && direction(unit) != 0 {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			b, c := base.Metrics[unit], cur.Metrics[unit]
			var changePct float64
			if b != 0 {
				changePct = (c - b) / b * 100
			}
			bad := false
			switch {
			case unit == "allocs/op" && b == 0:
				bad = c > 0 // zero-alloc contract: no threshold grace
			case unit != "allocs/op" && !gateTimes:
				bad = false // cross-machine mode: time/rate rows are informational
			case b == 0:
				bad = false
			case direction(unit) < 0:
				bad = c > b*(1+thresholdPct/100)
			default:
				bad = c < b*(1-thresholdPct/100)
			}
			mark := "ok  "
			if bad {
				mark = "FAIL"
				regs = append(regs, regression{bench: name, unit: unit, baseline: b, current: c, changePct: changePct})
			}
			report = append(report, fmt.Sprintf("%s %-40s %-10s %14.4g -> %-14.4g (%+.1f%%)", mark, name, unit, b, c, changePct))
		}
	}
	return regs, report
}

func readBaseline(path string) (map[string]benchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("dpmbench: %s: %v", path, err)
	}
	if f.Schema != schemaID {
		return nil, fmt.Errorf("dpmbench: %s: unknown schema %q (want %q)", path, f.Schema, schemaID)
	}
	return f.Benchmarks, nil
}

func writeJSON(path string, benches map[string]benchEntry) error {
	f := benchFile{Schema: schemaID, Go: runtime.Version(), Benchmarks: benches}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	in := flag.String("in", "", "read benchmark text from this file instead of stdin")
	emit := flag.String("emit", "", "write the parsed benchmarks to this JSON file")
	baseline := flag.String("baseline", "", "compare against this committed JSON baseline")
	maxRegress := flag.Float64("max-regress", 10, "fail when a throughput metric regresses by more than this percent")
	gate := flag.String("gate", "all", `which metrics can fail the comparison: "all" (same-machine baselines) or "allocs" (hardware-independent only — use when the baseline was measured on different hardware, e.g. CI)`)
	flag.Parse()
	if *gate != "all" && *gate != "allocs" {
		fmt.Fprintf(os.Stderr, "dpmbench: -gate must be \"all\" or \"allocs\", got %q\n", *gate)
		os.Exit(2)
	}

	if *emit == "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "dpmbench: nothing to do: pass -emit and/or -baseline")
		flag.Usage()
		os.Exit(2)
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpmbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	benches, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpmbench:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "dpmbench: no benchmark lines found in input")
		os.Exit(1)
	}

	if *emit != "" {
		if err := writeJSON(*emit, benches); err != nil {
			fmt.Fprintln(os.Stderr, "dpmbench:", err)
			os.Exit(1)
		}
		fmt.Printf("dpmbench: wrote %d benchmarks to %s\n", len(benches), *emit)
	}

	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpmbench:", err)
			os.Exit(1)
		}
		regs, report := compare(base, benches, *maxRegress, *gate == "all")
		for _, line := range report {
			fmt.Println(line)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "dpmbench: %d metric(s) regressed beyond %.0f%% of %s\n", len(regs), *maxRegress, *baseline)
			os.Exit(1)
		}
		fmt.Printf("dpmbench: %d benchmarks within %.0f%% of %s\n", len(benches), *maxRegress, *baseline)
	}
}
