package main

import (
	"strings"
	"testing"

	"godpm"
)

const sample = `goos: linux
goarch: amd64
pkg: godpm
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSimSpeed/A-8         	      20	   1578713 ns/op	 203249981 Kcycle/s	  999608 B/op	     417 allocs/op
BenchmarkSimSpeed/A-8         	      20	   1478713 ns/op	 213249981 Kcycle/s	  999608 B/op	     417 allocs/op
BenchmarkNotifyTimed/pure-8   	  300000	        33.65 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	godpm	0.046s
`

func TestParseAggregatesDuplicates(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	a := got["BenchmarkSimSpeed/A"]
	if a.Metrics["ns/op"] != 1478713 {
		t.Errorf("ns/op = %v, want best-of-N 1478713", a.Metrics["ns/op"])
	}
	if a.Metrics["Kcycle/s"] != 213249981 {
		t.Errorf("Kcycle/s = %v, want best-of-N 213249981", a.Metrics["Kcycle/s"])
	}
	if a.Iterations != 20 {
		t.Errorf("iterations = %d, want 20", a.Iterations)
	}
	nt := got["BenchmarkNotifyTimed/pure"]
	if nt.Metrics["allocs/op"] != 0 || nt.Metrics["ns/op"] != 33.65 {
		t.Errorf("NotifyTimed parsed as %+v", nt)
	}
}

func TestAggregateWorstCaseAllocs(t *testing.T) {
	// One allocating run must not hide behind the others.
	if got := aggregate("allocs/op", []float64{0, 3, 0}); got != 3 {
		t.Errorf("allocs/op aggregate = %v, want worst-of-N 3", got)
	}
	if got := aggregate("energy_mJ", []float64{1, 2, 3}); got != 2 {
		t.Errorf("informational aggregate = %v, want mean 2", got)
	}
}

func entry(metrics map[string]float64) benchEntry {
	return benchEntry{Iterations: 1, Metrics: metrics}
}

func TestCompareThresholds(t *testing.T) {
	base := map[string]benchEntry{
		"B/slow":   entry(map[string]float64{"ns/op": 100, "Kcycle/s": 1000, "allocs/op": 0}),
		"B/allocs": entry(map[string]float64{"ns/op": 100, "allocs/op": 5}),
		"B/info":   entry(map[string]float64{"energy_mJ": 42}),
	}

	t.Run("within threshold passes", func(t *testing.T) {
		cur := map[string]benchEntry{
			"B/slow":   entry(map[string]float64{"ns/op": 109, "Kcycle/s": 920, "allocs/op": 0}),
			"B/allocs": entry(map[string]float64{"ns/op": 95, "allocs/op": 5}),
			"B/info":   entry(map[string]float64{"energy_mJ": 999}), // informational: never gated
		}
		if regs, _ := compare(base, cur, 10, true); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %+v", regs)
		}
	})

	t.Run("slower ns/op fails", func(t *testing.T) {
		cur := map[string]benchEntry{"B/slow": entry(map[string]float64{"ns/op": 115, "Kcycle/s": 1000, "allocs/op": 0})}
		regs, _ := compare(base, cur, 10, true)
		if len(regs) != 1 || regs[0].unit != "ns/op" {
			t.Fatalf("regressions = %+v, want one ns/op failure", regs)
		}
	})

	t.Run("lower Kcycle/s fails", func(t *testing.T) {
		cur := map[string]benchEntry{"B/slow": entry(map[string]float64{"ns/op": 100, "Kcycle/s": 880, "allocs/op": 0})}
		regs, _ := compare(base, cur, 10, true)
		if len(regs) != 1 || regs[0].unit != "Kcycle/s" {
			t.Fatalf("regressions = %+v, want one Kcycle/s failure", regs)
		}
	})

	t.Run("zero-alloc contract is strict", func(t *testing.T) {
		cur := map[string]benchEntry{"B/slow": entry(map[string]float64{"ns/op": 100, "Kcycle/s": 1000, "allocs/op": 1})}
		regs, _ := compare(base, cur, 10, true)
		if len(regs) != 1 || regs[0].unit != "allocs/op" {
			t.Fatalf("regressions = %+v, want one allocs/op failure", regs)
		}
	})

	t.Run("nonzero allocs use the threshold", func(t *testing.T) {
		cur := map[string]benchEntry{"B/allocs": entry(map[string]float64{"ns/op": 100, "allocs/op": 5.4})}
		if regs, _ := compare(base, cur, 10, true); len(regs) != 0 {
			t.Fatalf("5 -> 5.4 allocs within 10%% should pass, got %+v", regs)
		}
		cur["B/allocs"] = entry(map[string]float64{"ns/op": 100, "allocs/op": 6})
		regs, _ := compare(base, cur, 10, true)
		if len(regs) != 1 || regs[0].unit != "allocs/op" {
			t.Fatalf("5 -> 6 allocs should fail, got %+v", regs)
		}
	})

	t.Run("missing benchmarks are ignored", func(t *testing.T) {
		cur := map[string]benchEntry{"B/new": entry(map[string]float64{"ns/op": 1})}
		if regs, _ := compare(base, cur, 10, true); len(regs) != 0 {
			t.Fatalf("disjoint sets must not regress, got %+v", regs)
		}
	})
}

func TestCompareAllocsOnlyGate(t *testing.T) {
	base := map[string]benchEntry{
		"B": entry(map[string]float64{"ns/op": 100, "Kcycle/s": 1000, "allocs/op": 0}),
	}
	// Three times slower (different hardware) but still zero allocs: passes.
	cur := map[string]benchEntry{
		"B": entry(map[string]float64{"ns/op": 300, "Kcycle/s": 330, "allocs/op": 0}),
	}
	if regs, _ := compare(base, cur, 10, false); len(regs) != 0 {
		t.Fatalf("cross-machine mode must not gate wall-clock metrics, got %+v", regs)
	}
	// A new allocation fails even in cross-machine mode.
	cur["B"] = entry(map[string]float64{"ns/op": 100, "Kcycle/s": 1000, "allocs/op": 2})
	regs, _ := compare(base, cur, 10, false)
	if len(regs) != 1 || regs[0].unit != "allocs/op" {
		t.Fatalf("zero-alloc contract must still gate, got %+v", regs)
	}
}

// TestParseEmitsSharedQuantileSummary pins the /statsz-shared latency
// summary: per-run ns/op samples flow through the same sketch and
// quantile definitions the serving layer reports.
func TestParseEmitsSharedQuantileSummary(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	q := got["BenchmarkSimSpeed/A"].NsPerOp
	if q == nil || q.Count != 2 {
		t.Fatalf("ns_per_op summary = %+v, want 2 samples", q)
	}
	// Units are the shared convention's: milliseconds. The two runs took
	// ~1.48ms and ~1.58ms, so max must land between them and 2ms, within
	// the sketch's relative error.
	if q.MaxMs < 1.57 || q.MaxMs > 1.58*(1+godpm.HistRelError)+0.01 {
		t.Fatalf("max_ms = %v, want ≈1.58", q.MaxMs)
	}
	if q.P50Ms <= 0 || q.P50Ms > q.MaxMs {
		t.Fatalf("p50_ms = %v out of range (max %v)", q.P50Ms, q.MaxMs)
	}

	// A reference computed directly from the sketch matches what parse
	// stored — same definitions, not merely similar ones.
	var h godpm.Histogram
	h.RecordDuration(1578713)
	h.RecordDuration(1478713)
	want := godpm.LatencyOf(h.Snapshot()).LatencySummary
	if *q != want {
		t.Fatalf("summary %+v != reference %+v", *q, want)
	}
}
