package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// simulateOnce POSTs one simulate request straight at the handler and
// returns the recorder.
func simulateOnce(t testing.TB, s *server, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.handleSimulate(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("simulate: %d %s", w.Code, w.Body.String())
	}
	return w
}

// TestSimulateHitServesPreEncodedBytes pins the hit fast path's output
// contract: the hit response is byte-identical to the miss response
// except for the cache_hit flag — the same pre-encoded fragment serves
// both — decodes to the same result fields, and carries an explicit
// Content-Length.
func TestSimulateHitServesPreEncodedBytes(t *testing.T) {
	s, err := newServer(serverOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	body, _ := json.Marshal(simulateRequest{Scenario: "A1", Tasks: 20, Seed: 7})

	miss := simulateOnce(t, s, body)
	hit := simulateOnce(t, s, body)

	var mr, hr simulateResponse
	if err := json.Unmarshal(miss.Body.Bytes(), &mr); err != nil {
		t.Fatalf("miss response: %v", err)
	}
	if err := json.Unmarshal(hit.Body.Bytes(), &hr); err != nil {
		t.Fatalf("hit response: %v", err)
	}
	if mr.CacheHit || !hr.CacheHit {
		t.Fatalf("cache_hit flags: miss=%v hit=%v", mr.CacheHit, hr.CacheHit)
	}
	if hr.Key != mr.Key || hr.EnergyJ != mr.EnergyJ || hr.Digest != mr.Digest ||
		hr.TasksDone != mr.TasksDone || hr.PeakTempC != mr.PeakTempC {
		t.Fatalf("hit response diverged from miss:\n%s\nvs\n%s", miss.Body, hit.Body)
	}

	// Same bytes modulo the per-request prefix (id + flag): both
	// responses came from one pre-encoded fragment.
	tailOf := func(body string) string {
		i := strings.Index(body, `"key":`)
		if i < 0 {
			t.Fatalf("response without key field: %s", body)
		}
		return body[i:]
	}
	if tailOf(miss.Body.String()) != tailOf(hit.Body.String()) {
		t.Fatalf("hit tail is not the pre-encoded miss tail:\n%s\nvs\n%s", miss.Body, hit.Body)
	}

	if cl := hit.Header().Get("Content-Length"); cl != strconv.Itoa(hit.Body.Len()) {
		t.Fatalf("Content-Length %q, body %d bytes", cl, hit.Body.Len())
	}
	if ct := hit.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	if !bytes.HasSuffix(hit.Body.Bytes(), []byte("}\n")) {
		t.Fatalf("response not newline-terminated: %q", hit.Body.String())
	}
}

// TestAppendJSONString pins the fast path's ID escaper against the
// reference encoder for metacharacters and control bytes.
func TestAppendJSONString(t *testing.T) {
	for _, id := range []string{"A1#3", `a"b\c`, "tab\tnl\n", "plain", ""} {
		want, _ := json.Marshal(id)
		var got string
		if err := json.Unmarshal(appendJSONString(nil, id), &got); err != nil || got != id {
			t.Fatalf("appendJSONString(%q) = %q (decode err %v), reference %s", id, got, err, want)
		}
	}
}

// TestSimulateHitPathAllocations pins "no re-marshal on the hit path"
// as an allocation budget. A cache-hit serve measured ~640 allocs/op
// when every hit re-marshalled the result, and ~370 on the pre-encoded
// fragment path (~490 under the race detector's bookkeeping); of the
// remainder, ~270 is request resolution (workload generation +
// fingerprinting), which keying requires. The budget sits between the
// two in both modes, so reintroducing a per-hit result marshal (~270
// allocs on a 20-task run, far more on ledger-heavy ones) fails.
func TestSimulateHitPathAllocations(t *testing.T) {
	s, err := newServer(serverOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	body, _ := json.Marshal(simulateRequest{Scenario: "A1", Tasks: 20, Seed: 7})
	simulateOnce(t, s, body) // warm: the one miss
	simulateOnce(t, s, body) // builds + caches the fragment

	allocs := testing.AllocsPerRun(200, func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.handleSimulate(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("hit failed: %d", w.Code)
		}
	})
	if allocs > 560 {
		t.Fatalf("hit path costs %.0f allocs/op, want ≤ 560 (no result re-marshal)", allocs)
	}
}

// TestReplayRejectsNonPositiveSpeedup pins the loadgen flag fix: a zero
// or negative -speedup used to be silently coerced and replay at the
// wrong rate; it must be refused with a clear error instead.
func TestReplayRejectsNonPositiveSpeedup(t *testing.T) {
	for _, bad := range []float64{0, -1, -0.5} {
		_, err := runReplay(replayOptions{Path: "nope.ndjson", Targets: []string{"http://127.0.0.1:1"}, Speedup: bad})
		if err == nil {
			t.Fatalf("speedup %g accepted", bad)
		}
		if !strings.Contains(err.Error(), "speedup") {
			t.Fatalf("speedup %g error %q does not name the flag", bad, err)
		}
	}
}

// TestTournamentAbortedStreamCounted pins the done-trailer fix's
// counters: a client that disconnects mid-tournament cancels the run and
// shows up in /statsz as an aborted stream, not a silent drop.
func TestTournamentAbortedStreamCounted(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{MaxInflight: 4, Workers: 2})

	// A tournament big enough to still be running when we hang up.
	body := `{"tasks":200,"seeds":[1,2,3,4,5,6],"policies":["dpm","alwayson","oracle"]}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/tournament", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Headers are flushed before the run starts, so once Do returns the
	// tournament is in flight. Hanging up now exercises the abort path.
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for s.tourAborts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("aborted stream never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := getStatsz(t, ts.URL); st.TournamentAborts < 1 {
		t.Fatalf("statsz tournament_aborted_streams = %d, want ≥ 1", st.TournamentAborts)
	}

	// A completed stream is not miscounted as aborted.
	before := s.tourAborts.Load()
	resp2, data := postJSON(t, ts.URL+"/v1/tournament",
		`{"tasks":10,"seeds":[1],"policies":["dpm","alwayson"],"scenarios":["steady"]}`)
	if resp2.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"done":true`)) {
		t.Fatalf("clean tournament failed: %d %s", resp2.StatusCode, data)
	}
	if got := s.tourAborts.Load(); got != before {
		t.Fatalf("clean stream counted as aborted: %d → %d", before, got)
	}
}

// BenchmarkHitServe measures a cache-hit /v1/simulate serve end to end at
// the handler: request decode, engine probe, pre-encoded fragment copy.
// The allocs/op number is gated in CI against the committed baseline
// (see the README's Performance section).
func BenchmarkHitServe(b *testing.B) {
	s, err := newServer(serverOptions{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.close()
	body, _ := json.Marshal(simulateRequest{Scenario: "A1", Tasks: 20, Seed: 7})
	simulateOnce(b, s, body) // warm: one miss populates the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.handleSimulate(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("hit request failed: %d", w.Code)
		}
	}
}
