package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"godpm"
)

func newTestServer(t *testing.T, o serverOptions) (*server, *httptest.Server) {
	t.Helper()
	if o.Workers == 0 {
		o.Workers = 8
	}
	s, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.close)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getStatsz(t *testing.T, base string) statszResponse {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestConcurrentDuplicatePOSTsShareOneSimulation is the serving half of
// the stampede acceptance: concurrent duplicate /v1/simulate requests are
// all answered, from exactly one simulation.
func TestConcurrentDuplicatePOSTsShareOneSimulation(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{MaxInflight: 64})
	const clients = 16
	body := `{"scenario":"A1","tasks":15,"seed":3}`

	var wg sync.WaitGroup
	codes := make([]int, clients)
	keys := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
			codes[i] = resp.StatusCode
			var sr simulateResponse
			if json.Unmarshal(data, &sr) == nil {
				keys[i] = sr.Key
			}
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("client %d: status %d", i, code)
		}
		if keys[i] == "" || keys[i] != keys[0] {
			t.Fatalf("client %d: key %q differs from %q", i, keys[i], keys[0])
		}
	}
	st := getStatsz(t, ts.URL)
	if st.Runs != 1 {
		t.Fatalf("%d duplicate requests simulated %d times, want 1", clients, st.Runs)
	}
	if st.Hits != clients-1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want %d hits / 1 miss", st.EngineStats, clients-1)
	}
}

// slowBody is a request sized to simulate for a few hundred ms — long
// enough to observe the server in its in-flight state.
func slowBody(seed int) string {
	return fmt.Sprintf(`{"scenario":"A1","tasks":20000,"seed":%d}`, seed)
}

// waitInflight polls statsz until the server reports n in-flight
// requests; reports whether it got there before the deadline.
func waitInflight(base string, n int, deadline time.Duration) bool {
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		resp, err := http.Get(base + "/statsz")
		if err == nil {
			var st statszResponse
			ok := json.NewDecoder(resp.Body).Decode(&st) == nil
			resp.Body.Close()
			if ok && st.Inflight >= n {
				return true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// TestSaturationReturns429 pins the backpressure contract: with the
// in-flight bound reached, a further request is refused with 429 and a
// Retry-After header rather than queued.
func TestSaturationReturns429(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{Workers: 2, MaxInflight: 1})

	for attempt := 0; attempt < 5; attempt++ {
		done := make(chan int, 1)
		go func(seed int) {
			resp, _ := postJSON(t, ts.URL+"/v1/simulate", slowBody(100+seed))
			done <- resp.StatusCode
		}(attempt)
		if !waitInflight(ts.URL, 1, 2*time.Second) {
			t.Fatal("slow request never became in-flight")
		}
		resp, _ := postJSON(t, ts.URL+"/v1/simulate", `{"scenario":"A1","tasks":10}`)
		slowCode := <-done
		if slowCode != http.StatusOK {
			t.Fatalf("slow request failed: %d", slowCode)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			// Saturation is transient: once drained, the server accepts
			// work again.
			resp2, _ := postJSON(t, ts.URL+"/v1/simulate", `{"scenario":"A1","tasks":10}`)
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("server stuck saturated: %d", resp2.StatusCode)
			}
			return
		}
		// The slow request finished before we fired — retry the race.
	}
	t.Fatal("never observed a 429 while saturated")
}

// TestWorkGateCancelUnblocksQueue pins the gate's cancellation path: a
// wide waiter abandoning the head of the queue must immediately unblock
// a satisfiable narrower waiter behind it, without waiting for the next
// release.
func TestWorkGateCancelUnblocksQueue(t *testing.T) {
	g := newWorkGate(2)
	if !g.acquire(context.Background(), 1) {
		t.Fatal("initial acquire failed")
	}
	queued := func(n int) bool {
		stop := time.Now().Add(2 * time.Second)
		for time.Now().Before(stop) {
			g.mu.Lock()
			l := len(g.queue)
			g.mu.Unlock()
			if l == n {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		return false
	}
	// Wide waiter (needs 2 > avail 1) parks at the head...
	wideCtx, cancelWide := context.WithCancel(context.Background())
	wideDone := make(chan bool, 1)
	go func() { wideDone <- g.acquire(wideCtx, 2) }()
	if !queued(1) {
		t.Fatal("wide waiter never queued")
	}
	// ...then a narrow waiter (needs 1 == avail) queues FIFO behind it.
	narrowDone := make(chan bool, 1)
	go func() { narrowDone <- g.acquire(context.Background(), 1) }()
	if !queued(2) {
		t.Fatal("narrow waiter never queued (or jumped the FIFO queue)")
	}
	select {
	case <-narrowDone:
		t.Fatal("narrow waiter granted while queued behind the head")
	default:
	}

	cancelWide()
	if got := <-wideDone; got {
		t.Fatal("canceled waiter claims success")
	}
	select {
	case got := <-narrowDone:
		if !got {
			t.Fatal("narrow waiter failed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("narrow waiter still blocked after the head abandoned the queue")
	}
	g.release(1)
	g.release(1)
	if b := g.busy(2); b != 0 {
		t.Fatalf("gate leaks %d units", b)
	}
}

// TestWorkerSlotsBoundSimulationConcurrency pins the execution bound:
// with one worker, many admitted concurrent requests never run more
// than one engine invocation at a time (busy_workers ≤ workers), while
// admission (inflight) rises above it.
func TestWorkerSlotsBoundSimulationConcurrency(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{Workers: 1, MaxInflight: 8})
	const clients = 4
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/simulate", slowBody(200+i))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	sawQueued := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatsz(t, ts.URL)
		if st.BusyWorkers > 1 {
			t.Fatalf("busy_workers = %d with 1 worker", st.BusyWorkers)
		}
		if st.Inflight > st.BusyWorkers {
			sawQueued = true
		}
		if st.Inflight == 0 && st.Runs >= clients {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	if !sawQueued {
		t.Log("note: never observed admitted requests queued for a work slot (timing)")
	}
	st := getStatsz(t, ts.URL)
	if st.Runs != clients {
		t.Fatalf("runs = %d, want %d distinct simulations", st.Runs, clients)
	}
}

// TestGracefulDrain pins the shutdown contract: Shutdown while a request
// is in flight completes that request with 200 and returns cleanly.
func TestGracefulDrain(t *testing.T) {
	s, err := newServer(serverOptions{Workers: 2, MaxInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	type outcome struct {
		code int
		hit  bool
	}
	done := make(chan outcome, 1)
	go func() {
		resp, data := postJSON(t, base+"/v1/simulate", slowBody(7))
		var sr simulateResponse
		_ = json.Unmarshal(data, &sr)
		done <- outcome{resp.StatusCode, sr.CacheHit}
	}()
	if !waitInflight(base, 1, 2*time.Second) {
		t.Fatal("request never became in-flight")
	}

	s.draining.Store(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	out := <-done
	if out.code != http.StatusOK {
		t.Fatalf("in-flight request got %d during drain, want 200", out.code)
	}
	if out.hit {
		t.Fatal("in-flight request claims cache hit on a cold key")
	}
	// Once draining, the health endpoint reports unavailability (and the
	// listener is closed, so new connections fail outright).
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestHealthzReportsDraining pins the load-balancer signal without a full
// server: the handler answers 503 once draining starts.
func TestHealthzReportsDraining(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{MaxInflight: 2})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
}

// TestTournamentStreamsNDJSON parses the leaderboard stream: one JSON row
// per standing, ranked 1..n, then a done trailer carrying the counters.
func TestTournamentStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{MaxInflight: 4})
	resp, data := postJSON(t, ts.URL+"/v1/tournament",
		`{"tasks":10,"seeds":[1],"policies":["dpm","alwayson"],"scenarios":["steady"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var rows []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 3 {
		t.Fatalf("%d NDJSON lines, want 2 standings + trailer", len(rows))
	}
	for i, row := range rows[:2] {
		if rank, _ := row["rank"].(float64); int(rank) != i+1 {
			t.Fatalf("row %d has rank %v", i, row["rank"])
		}
		if _, ok := row["policy"].(string); !ok {
			t.Fatalf("row %d missing policy: %v", i, row)
		}
	}
	trailer := rows[2]
	if done, _ := trailer["done"].(bool); !done {
		t.Fatalf("trailer not done: %v", trailer)
	}
	if _, ok := trailer["stats"].(map[string]any); !ok {
		t.Fatalf("trailer missing stats: %v", trailer)
	}
}

// TestBadRequests exercises the validation edges.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{MaxInflight: 2})
	for name, tc := range map[string]struct {
		path, body string
		want       int
	}{
		"no scenario":      {"/v1/simulate", `{}`, http.StatusBadRequest},
		"unknown scenario": {"/v1/simulate", `{"scenario":"Z9"}`, http.StatusBadRequest},
		"both forms":       {"/v1/simulate", `{"scenario":"A1","config":{}}`, http.StatusBadRequest},
		"bad json":         {"/v1/simulate", `{`, http.StatusBadRequest},
		"unknown field":    {"/v1/simulate", `{"scenaro":"A1"}`, http.StatusBadRequest},
		"unknown policy":   {"/v1/tournament", `{"policies":["nope"]}`, http.StatusBadRequest},
		"unknown arena":    {"/v1/tournament", `{"scenarios":["nope"]}`, http.StatusBadRequest},
	} {
		resp, _ := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET simulate = %d, want 405", resp.StatusCode)
	}
}

// TestLoadgenDedupRatioAndBoundedCache drives the built-in load
// generator at an in-process server: a mixed duplicate/distinct stream
// must be served from exactly `distinct` simulations, and the cache
// occupancy must respect its configured bound.
func TestLoadgenDedupRatioAndBoundedCache(t *testing.T) {
	const (
		requests    = 60
		distinct    = 4
		cacheBound  = 64
		concurrency = 8
	)
	_, ts := newTestServer(t, serverOptions{MaxInflight: 32, CacheEntries: cacheBound})
	rep, err := runLoadgen(loadgenOptions{
		Targets:     []string{ts.URL},
		Requests:    requests,
		Distinct:    distinct,
		Concurrency: concurrency,
		Tasks:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.OK != requests {
		t.Fatalf("report %+v: %d of %d ok", rep, rep.OK, requests)
	}
	if rep.Stats.Runs != distinct {
		t.Fatalf("server simulated %d times for %d distinct configs", rep.Stats.Runs, distinct)
	}
	wantRatio := float64(requests-distinct) / float64(requests)
	if rep.DedupRatio < wantRatio {
		t.Fatalf("dedup ratio %.3f < %.3f", rep.DedupRatio, wantRatio)
	}
	if rep.Stats.CacheEntries > cacheBound {
		t.Fatalf("cache grew past its bound: %d > %d", rep.Stats.CacheEntries, cacheBound)
	}
}

// TestFleetSharedRemoteStore is the horizontal-scaling proof in-process:
// two replicas sharing nothing but a dpmremote-protocol store run each
// distinct configuration once fleet-wide, and the second replica's
// lookups are served by the store.
func TestFleetSharedRemoteStore(t *testing.T) {
	const distinct = 5 // coprime with 2 replicas: every replica sees every seed

	store := godpm.NewLRUCache(godpm.LRUOptions{})
	blob := godpm.NewBlobServer(store, godpm.BlobServerOptions{})
	bs := httptest.NewServer(blob)
	defer bs.Close()

	_, ts1 := newTestServer(t, serverOptions{MaxInflight: 32, RemoteURL: bs.URL})
	_, ts2 := newTestServer(t, serverOptions{MaxInflight: 32, RemoteURL: bs.URL})

	// Phase 1: warm the fleet store through replica 1 only.
	rep, err := runLoadgen(loadgenOptions{
		Targets: []string{ts1.URL}, Requests: 20, Distinct: distinct, Concurrency: 4, Tasks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Stats.Runs != distinct {
		t.Fatalf("warm phase: %+v", rep)
	}
	// Write-behind PUTs are asynchronous; wait for them to land.
	deadline := time.Now().Add(5 * time.Second)
	for blob.Stats().Store.Entries < distinct {
		if time.Now().After(deadline) {
			t.Fatalf("store holds %d entries, want %d", blob.Stats().Store.Entries, distinct)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: the same stream across both replicas. Replica 2 is cold
	// locally but must not simulate anything — the store serves it.
	rep, err = runLoadgen(loadgenOptions{
		Targets: []string{ts1.URL, ts2.URL}, Requests: 30, Distinct: distinct, Concurrency: 4, Tasks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("fleet phase: %d failed requests", rep.Failed)
	}
	if rep.FleetRuns != distinct {
		t.Fatalf("fleet ran %d simulations for %d distinct configs across 2 replicas", rep.FleetRuns, distinct)
	}
	if rep.RemoteHits == 0 {
		t.Fatalf("no remote-tier hits; the shared store served nothing:\n%s", rep.String())
	}
	if len(rep.Replicas) != 2 || rep.Replicas[1].Runs != 0 {
		t.Fatalf("replica 2 simulated instead of fetching: %+v", rep.Replicas)
	}
}

// TestFleetRemoteDownFailsOpen points a replica at a dead store: every
// request must still succeed from local compute and local tiers.
func TestFleetRemoteDownFailsOpen(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	_, ts := newTestServer(t, serverOptions{
		MaxInflight: 32, RemoteURL: dead, RemoteTimeout: 200 * time.Millisecond,
	})
	rep, err := runLoadgen(loadgenOptions{
		Targets: []string{ts.URL}, Requests: 24, Distinct: 4, Concurrency: 4, Tasks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("dead remote caused %d request failures, want 0:\n%s", rep.Failed, rep.String())
	}
	if rep.Stats.Runs != 4 {
		t.Fatalf("server simulated %d times for 4 distinct configs", rep.Stats.Runs)
	}
}

// TestStatszReportsTiers checks the per-tier counters surface end to
// end: a remote-wired replica's /statsz names all three counters'
// tiers, and the plain one reports memory only.
func TestStatszReportsTiers(t *testing.T) {
	store := godpm.NewLRUCache(godpm.LRUOptions{})
	bs := httptest.NewServer(godpm.NewBlobServer(store, godpm.BlobServerOptions{}))
	defer bs.Close()

	_, ts := newTestServer(t, serverOptions{MaxInflight: 8, RemoteURL: bs.URL})
	if resp, _ := postJSON(t, ts.URL+"/v1/simulate", slowBody(1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", resp.StatusCode)
	}
	tiers := make(map[string]bool)
	for _, tier := range getStatsz(t, ts.URL).Tiers {
		tiers[tier.Tier] = true
	}
	if !tiers[godpm.TierMemory] || !tiers[godpm.TierRemote] {
		t.Fatalf("remote-wired /statsz tiers = %v, want memory and remote", tiers)
	}

	_, plain := newTestServer(t, serverOptions{MaxInflight: 8})
	if resp, _ := postJSON(t, plain.URL+"/v1/simulate", slowBody(1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", resp.StatusCode)
	}
	st := getStatsz(t, plain.URL)
	if len(st.Tiers) != 1 || st.Tiers[0].Tier != godpm.TierMemory {
		t.Fatalf("plain /statsz tiers = %+v, want exactly one memory tier", st.Tiers)
	}
}

// TestStatszV2Envelope checks the observability schema: version, service
// identity, start time, rolling rates, and per-endpoint latency sketches
// whose counts match the traffic served.
func TestStatszV2Envelope(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{MaxInflight: 8, RateInterval: 10 * time.Millisecond})
	for i := 0; i < 3; i++ {
		if resp, _ := postJSON(t, ts.URL+"/v1/simulate", `{"scenario":"A1","tasks":3,"seed":7}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate: status %d", resp.StatusCode)
		}
	}
	time.Sleep(40 * time.Millisecond) // let the rate sampler observe the counters

	st := getStatsz(t, ts.URL)
	if st.Version != statszVersion || st.Service != "dpmserve" {
		t.Fatalf("envelope = v%d %q, want v%d dpmserve", st.Version, st.Service, statszVersion)
	}
	if st.StartUnixMs <= 0 || st.UptimeS <= 0 {
		t.Fatalf("start_unix_ms=%d uptime_s=%f, want both positive", st.StartUnixMs, st.UptimeS)
	}
	lat, ok := st.Latency[godpm.JournalEndpointSimulate]
	if !ok || lat.Count != 3 {
		t.Fatalf("latency[simulate] = %+v (present=%v), want count 3", lat, ok)
	}
	if lat.MaxMs < lat.P50Ms || lat.Hist.Count != 3 {
		t.Fatalf("latency summary inconsistent with sketch: %+v", lat)
	}
	if _, ok := st.RatesPerS["requests"]; !ok {
		t.Fatalf("rates_per_s missing requests counter: %v", st.RatesPerS)
	}
}

// TestJournalRecordsRequests checks every handled request lands in the
// journal with its outcome, fingerprint and latency, and that hits and
// runs are distinguished.
func TestJournalRecordsRequests(t *testing.T) {
	path := filepath.Join(t.TempDir(), "req.journal")
	s, ts := newTestServer(t, serverOptions{MaxInflight: 8, JournalPath: path})

	for i := 0; i < 2; i++ { // second request is a cache hit
		if resp, _ := postJSON(t, ts.URL+"/v1/simulate", `{"scenario":"A1","tasks":3,"seed":9}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate: status %d", resp.StatusCode)
		}
	}
	// Malformed traffic (an unresolvable scenario) is refused before the
	// journal: it carries nothing replayable.
	if resp, _ := postJSON(t, ts.URL+"/v1/simulate", `{"scenario":"no-such","tasks":3}`); resp.StatusCode == http.StatusOK {
		t.Fatal("unknown scenario should fail")
	}
	s.close()

	recs, skipped, err := godpm.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d skipped lines in a cleanly closed journal", skipped)
	}
	var outcomes []string
	for _, r := range recs {
		outcomes = append(outcomes, r.Outcome)
	}
	if len(recs) != 2 {
		t.Fatalf("journal has %d records (%v), want 2 (bad requests are not journaled)", len(recs), outcomes)
	}
	if recs[0].Outcome != godpm.JournalOutcomeRun || recs[1].Outcome != godpm.JournalOutcomeHit {
		t.Fatalf("outcomes = %v, want [run hit]", outcomes)
	}
	if recs[0].Fingerprint == "" || recs[0].Fingerprint != recs[1].Fingerprint {
		t.Fatalf("duplicate requests journaled different fingerprints: %q vs %q",
			recs[0].Fingerprint, recs[1].Fingerprint)
	}
	for i, r := range recs[:2] {
		if !r.Replayable() || r.Scenario != "A1" || r.Seed != 9 || r.LatencyMs < 0 || r.T < 0 {
			t.Fatalf("record %d not replayable or malformed: %+v", i, r)
		}
	}
	if recs[1].T < recs[0].T {
		t.Fatalf("journal offsets not monotone: %f then %f", recs[0].T, recs[1].T)
	}
}

// TestRecordThenReplayDeterminism is the acceptance loop: record a
// loadgen run's journal, replay it against a fresh replica, and require
// the replay to reproduce the journal's distinct fingerprint set and
// dedup behaviour.
func TestRecordThenReplayDeterminism(t *testing.T) {
	path := filepath.Join(t.TempDir(), "req.journal")
	s, ts := newTestServer(t, serverOptions{MaxInflight: 32, JournalPath: path})
	orig, err := runLoadgen(loadgenOptions{
		Targets: []string{ts.URL}, Requests: 24, Distinct: 4, Concurrency: 4, Tasks: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if orig.Failed > 0 || orig.OK != 24 {
		t.Fatalf("recording run: %+v", orig)
	}
	if orig.Latency.Count != int64(orig.OK) || orig.Latency.MaxMs <= 0 {
		t.Fatalf("loadgen latency summary not populated: %+v", orig.Latency)
	}
	s.close()

	_, fresh := newTestServer(t, serverOptions{MaxInflight: 32})
	rep, err := runReplay(replayOptions{Path: path, Speedup: 1000, Targets: []string{fresh.URL}, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 24 || rep.Failed > 0 {
		t.Fatalf("replay: %+v", rep)
	}
	if rep.JournalDistinct != 4 || rep.ServedDistinct != 4 || !rep.ReplayFingerprintsHit {
		t.Fatalf("replay did not reproduce the working set: journal=%d served=%d hit=%v missing=%v",
			rep.JournalDistinct, rep.ServedDistinct, rep.ReplayFingerprintsHit, rep.MissingFingerprints)
	}
	// Same mix against a fresh cache ⇒ the same dedup shape: one run per
	// distinct configuration, everything else served without simulating.
	if rep.Stats.Runs != 4 {
		t.Fatalf("replay ran %d simulations, want 4 (one per distinct config)", rep.Stats.Runs)
	}
	if rep.DedupRatio < orig.DedupRatio {
		t.Fatalf("replay dedup ratio %f < recording's %f", rep.DedupRatio, orig.DedupRatio)
	}
}

// TestReplayPreservesArrivalSpacing pins the replay scheduler: records
// journaled at offsets spanning 0.6s take at least that long to re-issue
// at speedup 1, and proportionally less when sped up.
func TestReplayPreservesArrivalSpacing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spaced.journal")
	w, err := godpm.OpenJournal(path, godpm.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, offset := range []float64{0, 0.3, 0.6} {
		err := w.Append(godpm.JournalRecord{
			T: offset, Endpoint: godpm.JournalEndpointSimulate,
			Scenario: "A1", Tasks: 3, Seed: int64(i + 1),
			Outcome: godpm.JournalOutcomeRun,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, serverOptions{MaxInflight: 8})
	t0 := time.Now()
	rep, err := runReplay(replayOptions{Path: path, Speedup: 1, Targets: []string{ts.URL}, Concurrency: 3})
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 3 || rep.Failed > 0 {
		t.Fatalf("replay: %+v", rep)
	}
	// The last record must not fire before its 0.6s offset; the upper
	// bound is generous (scheduling + the requests themselves).
	if elapsed < 550*time.Millisecond {
		t.Fatalf("replay finished in %v — arrival spacing not preserved (last offset 0.6s)", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("replay took %v, far beyond the journal's 0.6s span", elapsed)
	}

	_, fresh := newTestServer(t, serverOptions{MaxInflight: 8})
	t0 = time.Now()
	if _, err := runReplay(replayOptions{Path: path, Speedup: 6, Targets: []string{fresh.URL}, Concurrency: 3}); err != nil {
		t.Fatal(err)
	}
	if sped := time.Since(t0); sped >= 550*time.Millisecond {
		t.Fatalf("speedup 6 replay took %v, want well under the 0.6s real-time span", sped)
	}
}

// TestStatszTournamentProgress pins the tournament progress gauges: the
// progress callback moves cells_done and the leader while a run is in
// flight, the end hook reclaims the run's cells, and a real tournament
// leaves the gauges at zero once its stream completes.
func TestStatszTournamentProgress(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{MaxInflight: 4})

	progress, end := s.tourStart(36)
	progress(9, 36, "dpm")
	st := getStatsz(t, ts.URL)
	if st.TournamentActive != 1 || st.TournamentCellsDone != 9 ||
		st.TournamentCellsTotal != 36 || st.TournamentLeader != "dpm" {
		t.Fatalf("mid-run gauges: active=%d done=%d total=%d leader=%q",
			st.TournamentActive, st.TournamentCellsDone, st.TournamentCellsTotal, st.TournamentLeader)
	}
	// A second concurrent run's cells add; its end subtracts only its own.
	progress2, end2 := s.tourStart(4)
	progress2(4, 4, "timeout")
	end2()
	st = getStatsz(t, ts.URL)
	if st.TournamentActive != 1 || st.TournamentCellsDone != 9 || st.TournamentCellsTotal != 36 {
		t.Fatalf("after 2nd run retired: active=%d done=%d total=%d",
			st.TournamentActive, st.TournamentCellsDone, st.TournamentCellsTotal)
	}
	end()
	st = getStatsz(t, ts.URL)
	if st.TournamentActive != 0 || st.TournamentCellsDone != 0 ||
		st.TournamentCellsTotal != 0 || st.TournamentLeader != "" {
		t.Fatalf("gauges not reclaimed: active=%d done=%d total=%d leader=%q",
			st.TournamentActive, st.TournamentCellsDone, st.TournamentCellsTotal, st.TournamentLeader)
	}

	// End to end: a finished tournament run leaves everything at zero too.
	resp, data := postJSON(t, ts.URL+"/v1/tournament",
		`{"tasks":10,"seeds":[1],"policies":["dpm","alwayson"],"scenarios":["steady"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	st = getStatsz(t, ts.URL)
	if st.TournamentActive != 0 || st.TournamentCellsDone != 0 || st.TournamentCellsTotal != 0 {
		t.Fatalf("post-run gauges not reclaimed: active=%d done=%d total=%d",
			st.TournamentActive, st.TournamentCellsDone, st.TournamentCellsTotal)
	}
}
