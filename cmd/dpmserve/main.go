// Command dpmserve is the long-running serving layer over the godpm
// batch engine: an HTTP service that answers simulation and tournament
// requests from a shared, bounded, deduplicated result cache, so heavy
// repeated scenario traffic costs one simulation per distinct
// configuration.
//
// Endpoints:
//
//	POST /v1/simulate    {"scenario":"A1","tasks":40,"seed":7} or
//	                     {"config":{...}} → one JSON result record
//	POST /v1/tournament  {"scenarios":[...],"policies":[...],"seeds":[1,2],
//	                     "tasks":30} → NDJSON leaderboard rows + trailer
//	GET  /healthz        liveness (503 while draining)
//	GET  /statsz         engine counters, hit/dedup/eviction rates
//
// In-flight work is bounded (-max-inflight); excess requests are refused
// with 429 and a Retry-After header rather than queued without bound. On
// SIGTERM/SIGINT the server stops accepting work and drains in-flight
// requests gracefully (-drain-timeout).
//
// A built-in load generator hammers a running server with a mixed
// duplicate/distinct scenario stream and reports (optionally asserts)
// the dedup ratio and cache occupancy:
//
//	dpmserve -loadgen -target http://127.0.0.1:8080 \
//	         -requests 200 -distinct 8 -concurrency 16
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"godpm"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers      = flag.Int("workers", 0, "simulation worker pool (0 = NumCPU)")
		cacheDir     = flag.String("cache", "", "disk cache directory ('' = memory only)")
		cacheEntries = flag.Int("cache-entries", 0, "in-memory cache entry cap (0 = default)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "in-memory cache byte cap, exact record accounting (0 = unbounded)")
		diskBytes    = flag.Int64("disk-bytes", 0, "disk cache size cap in bytes (0 = unbounded)")
		cacheCodec   = flag.String("cache-codec", "", "disk cache record compression: flate (default) or none")
		remoteURL    = flag.String("remote-url", "", "dpmremote shared result store base URL ('' = local tiers only)")
		remoteTO     = flag.Duration("remote-timeout", 2*time.Second, "per-operation remote store timeout")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrent requests before 429 (0 = 4×workers)")
		chaosSeed    = flag.Uint64("chaos-seed", 0, "inject a deterministic fault schedule into the cache tiers and remote transport (0 = off; testing only)")
		journalPath  = flag.String("journal", "", "append one NDJSON record per handled request to this file ('' = off; see README Observability)")
		journalMax   = flag.Int64("journal-max-bytes", 0, "rotate the journal when it would exceed this size (0 = 64 MiB; one rotation kept)")
		drainGrace   = flag.Duration("drain-grace", 2*time.Second, "healthz-503 window before the listener closes (lets load balancers stop routing)")
		drainTO      = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget after the grace window")

		loadgen     = flag.Bool("loadgen", false, "run the load generator instead of serving")
		target      = flag.String("target", "http://127.0.0.1:8080", "loadgen: server base URL")
		replicas    = flag.String("replicas", "", "loadgen: comma-separated replica base URLs to round-robin across (overrides -target)")
		requests    = flag.Int("requests", 200, "loadgen: total simulate requests")
		distinct    = flag.Int("distinct", 8, "loadgen: distinct configurations in the stream")
		concurrency = flag.Int("concurrency", 16, "loadgen: concurrent clients")
		lgTasks     = flag.Int("tasks", 20, "loadgen: tasks per request's scenario")
		replayPath  = flag.String("replay", "", "loadgen: replay this request journal instead of the synthetic mix (original request mix and arrival spacing)")
		speedup     = flag.Float64("speedup", 1, "loadgen replay: divide the journal's arrival spacing by this factor")
		assertRFp   = flag.Bool("assert-replay-fingerprints", false, "loadgen replay: fail unless every distinct fingerprint in the journal was served by the replay")
		assertDedup = flag.Float64("assert-dedup", -1, "loadgen: fail unless served-without-simulation ratio ≥ this (-1 = report only)")
		assertEnt   = flag.Int64("assert-max-entries", 0, "loadgen: fail if any replica's cache_entries exceeds this (0 = report only)")
		assertRuns  = flag.Int64("assert-fleet-runs", 0, "loadgen: fail if the summed simulations across replicas exceed this (0 = report only)")
		assertRHits = flag.Int64("assert-remote-hits", 0, "loadgen: fail unless summed remote-tier hits across replicas ≥ this (0 = report only)")
	)
	flag.Parse()

	if *loadgen {
		if *replayPath != "" && *speedup <= 0 {
			fmt.Fprintf(os.Stderr, "loadgen: -speedup must be > 0 (got %g)\n", *speedup)
			os.Exit(2)
		}
		targets := []string{*target}
		if *replicas != "" {
			targets = targets[:0]
			for _, t := range strings.Split(*replicas, ",") {
				if t = strings.TrimSpace(t); t != "" {
					targets = append(targets, t)
				}
			}
		}
		var rep loadReport
		var err error
		if *replayPath != "" {
			rep, err = runReplay(replayOptions{
				Path:        *replayPath,
				Speedup:     *speedup,
				Targets:     targets,
				Concurrency: *concurrency,
			})
		} else {
			rep, err = runLoadgen(loadgenOptions{
				Targets:     targets,
				Requests:    *requests,
				Distinct:    *distinct,
				Concurrency: *concurrency,
				Tasks:       *lgTasks,
			})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		fail := false
		if rep.Failed > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %d requests failed\n", rep.Failed)
			fail = true
		}
		if rep.Poisoned > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %d poisoned responses (digest mismatch for an already-seen key)\n", rep.Poisoned)
			fail = true
		}
		if *assertDedup >= 0 && rep.DedupRatio < *assertDedup {
			fmt.Fprintf(os.Stderr, "assert-dedup: ratio %.3f < %.3f\n", rep.DedupRatio, *assertDedup)
			fail = true
		}
		if *assertEnt > 0 {
			for i, st := range rep.Replicas {
				if st.CacheEntries > *assertEnt {
					fmt.Fprintf(os.Stderr, "assert-max-entries: replica %d: %d > %d\n", i, st.CacheEntries, *assertEnt)
					fail = true
				}
			}
		}
		if *assertRuns > 0 && rep.FleetRuns > *assertRuns {
			fmt.Fprintf(os.Stderr, "assert-fleet-runs: %d simulations across %d replicas > %d — fleet dedup is not holding\n",
				rep.FleetRuns, len(rep.Replicas), *assertRuns)
			fail = true
		}
		if *assertRHits > 0 && rep.RemoteHits < *assertRHits {
			fmt.Fprintf(os.Stderr, "assert-remote-hits: %d < %d — the shared store served nothing\n", rep.RemoteHits, *assertRHits)
			fail = true
		}
		if *assertRFp && !rep.ReplayFingerprintsHit {
			fmt.Fprintf(os.Stderr, "assert-replay-fingerprints: journal's %d distinct fingerprints not all served (missing %v)\n",
				rep.JournalDistinct, rep.MissingFingerprints)
			fail = true
		}
		if fail {
			os.Exit(1)
		}
		return
	}

	s, err := newServer(serverOptions{
		Workers:        *workers,
		CacheDir:       *cacheDir,
		CacheCodec:     *cacheCodec,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		DiskBytes:      *diskBytes,
		RemoteURL:      *remoteURL,
		RemoteTimeout:  *remoteTO,
		MaxInflight:    *maxInflight,
		ChaosSeed:      *chaosSeed,
		JournalPath:    *journalPath,
		JournalMaxByte: *journalMax,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Header/read/idle timeouts keep slow clients from parking goroutines
	// outside the in-flight bound; no WriteTimeout because tournament
	// responses stream for as long as the plan runs.
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("dpmserve listening on http://%s (workers=%d, max-inflight=%d)",
		ln.Addr(), s.eng.Workers(), s.maxInflight)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain, two phases. First flip healthz to 503 while the
	// listener stays open, so load balancers observe the signal and stop
	// routing before connections start being refused; then stop accepting
	// and finish the in-flight requests.
	s.draining.Store(true)
	log.Printf("draining: healthz now 503, closing listener in %s", *drainGrace)
	time.Sleep(*drainGrace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		os.Exit(1)
	}
	// Flush the write-behind queue so results computed moments before
	// SIGTERM still reach the shared store for the rest of the fleet,
	// then stop the rate sampler and seal the request journal.
	if s.tiered != nil {
		_ = s.tiered.Close()
	}
	s.close()
	st := s.eng.Stats()
	log.Printf("drained cleanly: %d runs, %d hits (%d deduped), %d evictions, %d errors, %d canceled",
		st.Runs, st.Hits, st.Deduped, st.Evictions, st.Errors, st.Canceled)
}

// serverOptions configures the serving layer.
type serverOptions struct {
	Workers      int
	CacheDir     string
	CacheEntries int
	CacheBytes   int64
	DiskBytes    int64
	// CacheCodec selects the disk cache's record body compression
	// ("flate" default, "none"); only meaningful with CacheDir.
	CacheCodec    string
	RemoteURL     string
	RemoteTimeout time.Duration
	MaxInflight   int
	// ChaosSeed, when non-zero, wraps the local cache and the remote
	// transport in the seed's deterministic fault schedule, so the
	// fail-open and anti-poisoning guarantees can be exercised against a
	// live replica. Testing only.
	ChaosSeed uint64
	// JournalPath, when non-empty, appends one NDJSON record per handled
	// request (see internal/journal); JournalMaxByte caps the file before
	// rotation (0 = default).
	JournalPath    string
	JournalMaxByte int64
	// RateInterval is the counter-sampling period behind the /statsz
	// rolling rates; 0 means one second. Tests shrink it.
	RateInterval time.Duration
}

// server is the HTTP serving layer over one shared engine. The engine's
// cache and singleflight dedup are what make concurrent duplicate
// requests cheap: they collapse to one simulation.
//
// Two bounds stack: inflight admits at most maxInflight requests (the
// rest get 429), and gate — a weighted semaphore of -workers units —
// bounds how much simulation the admitted requests run at once. A
// simulate request weighs one unit; a tournament request weighs as many
// units as the engine pool it fans out over, so simulation concurrency
// never exceeds -workers no matter how requests mix. Admitted requests
// queue FIFO (bounded by maxInflight) for their units.
type server struct {
	eng         *godpm.Engine
	tiered      *godpm.TieredCache // non-nil when a remote tier is wired in
	inflight    chan struct{}
	gate        *workGate
	maxInflight int
	seq         atomic.Int64
	draining    atomic.Bool
	start       time.Time

	// The observability surface: per-endpoint latency sketches, rolling
	// counter rates (fed by a 1s sampler goroutine) and the optional
	// request journal.
	latSim    *godpm.Histogram
	latTour   *godpm.Histogram
	rates     *godpm.RateSet
	stopRates func()
	requests  atomic.Int64
	journal   *godpm.JournalWriter

	// tourAborts counts tournament NDJSON streams cut short by the
	// client: a disconnect detected mid-run (the run is cancelled so
	// abandoned work stops burning workers) or a failed row/trailer
	// write. Surfaced in /statsz.
	tourAborts atomic.Int64

	// Live tournament progress, surfaced in /statsz and rendered by
	// dpmtop: how many tournaments are in flight, cells done/total summed
	// across them, and the provisional energy leader most recently
	// reported by any of them.
	tourMu     sync.Mutex
	tourActive int
	tourDone   int
	tourTotal  int
	tourLeader string
}

// tourStart registers an in-flight tournament of total cells. It returns
// the per-run progress callback that keeps the /statsz snapshot current,
// and the end function that retires the run — subtracting its cells so
// finished tournaments don't leave done/total inflated.
func (s *server) tourStart(total int) (progress func(done, total int, leader string), end func()) {
	s.tourMu.Lock()
	s.tourActive++
	s.tourTotal += total
	s.tourMu.Unlock()
	prev := 0
	progress = func(done, _ int, leader string) {
		s.tourMu.Lock()
		s.tourDone += done - prev
		prev = done
		if leader != "" {
			s.tourLeader = leader
		}
		s.tourMu.Unlock()
	}
	end = func() {
		s.tourMu.Lock()
		s.tourActive--
		s.tourTotal -= total
		s.tourDone -= prev
		if s.tourActive == 0 {
			s.tourLeader = ""
		}
		s.tourMu.Unlock()
	}
	return progress, end
}

func newServer(o serverOptions) (*server, error) {
	var cache godpm.Cache
	var err error
	if o.CacheDir != "" {
		cache, err = godpm.NewDiskCacheWith(o.CacheDir, godpm.DiskCacheOptions{
			MaxBytes: o.DiskBytes,
			Memory:   godpm.LRUOptions{MaxEntries: o.CacheEntries, MaxBytes: o.CacheBytes},
			Codec:    o.CacheCodec,
		})
	} else {
		cache = godpm.NewLRUCache(godpm.LRUOptions{MaxEntries: o.CacheEntries, MaxBytes: o.CacheBytes})
	}
	if err != nil {
		return nil, err
	}
	// The chaos seams: faults injected above the local cache (misses and
	// put errors) and inside the remote transport (latency, flapping,
	// corrupt and truncated bodies). The engine must shrug all of it off.
	var plan godpm.ChaosPlan
	if o.ChaosSeed != 0 {
		plan = godpm.DefaultChaosPlan(godpm.NewSeed(o.ChaosSeed))
		cache = plan.WrapCache(cache)
		log.Printf("chaos: injecting fault schedule %s (seed %d) into cache and transport", plan.Hash()[:12], o.ChaosSeed)
	}
	// A remote store layers behind the local tiers: read-through with
	// promotion, write-behind PUTs, and fail-open degradation — a dead
	// dpmremote makes this replica self-sufficient, never broken.
	var tiered *godpm.TieredCache
	if o.RemoteURL != "" {
		ropts := godpm.RemoteCacheOptions{
			BaseURL: o.RemoteURL,
			Timeout: o.RemoteTimeout,
			Logf:    log.Printf,
		}
		if o.ChaosSeed != 0 {
			ropts.WrapTransport = plan.WrapTransport
		}
		remote, err := godpm.NewRemoteCache(ropts)
		if err != nil {
			return nil, err
		}
		tiered = godpm.NewTieredCache(
			godpm.CacheTier{Name: "local", Cache: cache},
			godpm.CacheTier{Name: godpm.TierRemote, Cache: remote, AsyncPut: true},
		)
		cache = tiered
	}
	eng := godpm.NewEngine(godpm.EngineOptions{Workers: o.Workers, Cache: cache})
	maxInflight := o.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 4 * eng.Workers()
	}
	s := &server{
		eng:         eng,
		tiered:      tiered,
		inflight:    make(chan struct{}, maxInflight),
		gate:        newWorkGate(eng.Workers()),
		maxInflight: maxInflight,
		start:       time.Now(),
		latSim:      &godpm.Histogram{},
		latTour:     &godpm.Histogram{},
		rates:       godpm.NewRateSet(0),
	}
	if o.JournalPath != "" {
		jw, err := godpm.OpenJournal(o.JournalPath, godpm.JournalOptions{MaxBytes: o.JournalMaxByte, Start: s.start})
		if err != nil {
			return nil, err
		}
		s.journal = jw
		log.Printf("journaling requests to %s", o.JournalPath)
	}
	s.stopRates = s.rates.Sample(o.RateInterval, func() map[string]float64 {
		st := eng.Stats()
		return map[string]float64{
			"requests":  float64(s.requests.Load()),
			"hits":      float64(st.Hits),
			"deduped":   float64(st.Deduped),
			"runs":      float64(st.Runs),
			"evictions": float64(st.Evictions),
			"errors":    float64(st.Errors),
		}
	})
	return s, nil
}

// close stops the rate sampler and seals the journal; the handler itself
// needs no teardown.
func (s *server) close() {
	s.stopRates()
	if s.journal != nil {
		_ = s.journal.Close()
	}
}

// observe books one handled request into the endpoint's latency sketch
// and the journal. Arrival time is t0, so journal offsets reproduce
// arrival spacing; throttled refusals are journaled (they are part of the
// traffic shape) but excluded from the latency sketch (they measure the
// refusal, not the service).
func (s *server) observe(t0 time.Time, rec godpm.JournalRecord) {
	d := time.Since(t0)
	if rec.Outcome != godpm.JournalOutcomeThrottled {
		switch rec.Endpoint {
		case godpm.JournalEndpointSimulate:
			s.latSim.RecordDuration(d)
		case godpm.JournalEndpointTournament:
			s.latTour.RecordDuration(d)
		}
	}
	if s.journal != nil {
		rec.T = s.journal.Offset(t0)
		rec.LatencyMs = float64(d.Microseconds()) / 1000
		if err := s.journal.Append(rec); err != nil {
			log.Printf("journal: %v", err)
		}
	}
}

// workGate is a weighted semaphore with FIFO handoff: wide acquisitions
// (tournaments needing the whole engine pool) are not starved by a
// stream of 1-unit simulate requests, and the head waiter is always
// eventually satisfiable because every grant is released.
type workGate struct {
	mu    sync.Mutex
	avail int
	queue []*gateWaiter
}

type gateWaiter struct {
	need  int
	ready chan struct{}
}

func newWorkGate(capacity int) *workGate { return &workGate{avail: capacity} }

// acquire claims need units, waiting FIFO; it reports false (claiming
// nothing) if ctx dies first.
func (g *workGate) acquire(ctx context.Context, need int) bool {
	g.mu.Lock()
	if len(g.queue) == 0 && g.avail >= need {
		g.avail -= need
		g.mu.Unlock()
		return true
	}
	w := &gateWaiter{need: need, ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.mu.Unlock()
	select {
	case <-w.ready:
		return true
	case <-ctx.Done():
		g.mu.Lock()
		for i, q := range g.queue {
			if q == w {
				g.queue = append(g.queue[:i], g.queue[i+1:]...)
				// A wide waiter leaving the head can unblock narrower
				// waiters behind it right now — re-run the grant loop.
				g.grantLocked()
				g.mu.Unlock()
				return false
			}
		}
		g.mu.Unlock()
		// Lost the race: the grant landed while ctx was dying. Give the
		// units back.
		<-w.ready
		g.release(need)
		return false
	}
}

func (g *workGate) release(units int) {
	g.mu.Lock()
	g.avail += units
	g.grantLocked()
	g.mu.Unlock()
}

// grantLocked hands available units to queued waiters in FIFO order;
// callers hold g.mu.
func (g *workGate) grantLocked() {
	for len(g.queue) > 0 && g.queue[0].need <= g.avail {
		w := g.queue[0]
		g.queue = g.queue[1:]
		g.avail -= w.need
		close(w.ready)
	}
}

// busy returns the units currently claimed.
func (g *workGate) busy(capacity int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return capacity - g.avail
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	mux.HandleFunc("/v1/tournament", s.handleTournament)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return mux
}

// acquire claims an in-flight slot, or answers 429 and reports false.
// Backpressure is refuse-not-queue: a saturated server tells the client
// to retry instead of stacking unbounded goroutines.
func (s *server) acquire(w http.ResponseWriter) bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server saturated: max in-flight requests reached", http.StatusTooManyRequests)
		return false
	}
}

func (s *server) release() { <-s.inflight }

// simulateRequest selects a configuration: either a named paper/extension
// scenario (with optional tasks/seed tuning) or an inline Config.
type simulateRequest struct {
	Scenario string        `json:"scenario,omitempty"`
	Tasks    int           `json:"tasks,omitempty"`
	Seed     int64         `json:"seed,omitempty"`
	Config   *godpm.Config `json:"config,omitempty"`
}

// simulateResponse is the flat result record (a cache-served request has
// CacheHit true and reports the shared entry's measurements).
type simulateResponse struct {
	ID        string  `json:"id"`
	CacheHit  bool    `json:"cache_hit"`
	Key       string  `json:"key"`
	EnergyJ   float64 `json:"energy_j"`
	DurationS float64 `json:"duration_s"`
	AvgTempC  float64 `json:"avg_temp_c"`
	PeakTempC float64 `json:"peak_temp_c"`
	TasksDone int     `json:"tasks_done"`
	Completed bool    `json:"completed"`
	FinalSoC  float64 `json:"final_soc"`
	// Digest is the result's content hash — clients (and the load
	// generator) can cross-check that every replica serves byte-identical
	// measurements for the same key.
	Digest string `json:"digest"`
}

// simulateTail is the cacheable suffix of simulateResponse: every field
// derived from the cache record alone, nothing per-request. It is
// marshalled once per record and attached to it (Record.Aux), so a cache
// hit serves pre-encoded bytes — no json.Marshal, no digest computation —
// prefixed only with the request's own id and cache_hit flag. Field
// order must mirror simulateResponse after ID and CacheHit.
type simulateTail struct {
	Key       string  `json:"key"`
	EnergyJ   float64 `json:"energy_j"`
	DurationS float64 `json:"duration_s"`
	AvgTempC  float64 `json:"avg_temp_c"`
	PeakTempC float64 `json:"peak_temp_c"`
	TasksDone int     `json:"tasks_done"`
	Completed bool    `json:"completed"`
	FinalSoC  float64 `json:"final_soc"`
	Digest    string  `json:"digest"`
}

// simulateFragment returns the record's pre-encoded response tail — the
// bytes after the opening '{' of a marshalled simulateTail, built on the
// record's first serve and cached on it (evicted together).
func simulateFragment(rec *godpm.CacheRecord, key string, res *godpm.Result) ([]byte, error) {
	if frag := rec.Aux(); frag != nil {
		return frag, nil
	}
	tail, err := json.Marshal(simulateTail{
		Key:       key,
		EnergyJ:   res.EnergyJ,
		DurationS: res.Duration.Seconds(),
		AvgTempC:  res.AvgTempC,
		PeakTempC: res.PeakTempC,
		TasksDone: res.TasksDone,
		Completed: res.Completed,
		FinalSoC:  res.FinalSoC,
		Digest:    rec.Digest(),
	})
	if err != nil {
		return nil, err
	}
	frag := tail[1:]
	rec.SetAux(frag)
	return frag, nil
}

// writeSimulateResponse assembles `{"id":…,"cache_hit":…,` + frag in one
// buffer and writes it with an explicit Content-Length. This is the
// /v1/simulate hot path: a cache hit's cost is appending ~30 bytes to a
// pre-encoded fragment and one socket write.
func writeSimulateResponse(w http.ResponseWriter, id string, hit bool, frag []byte) {
	buf := make([]byte, 0, 32+len(id)+len(frag)+1)
	buf = append(buf, `{"id":`...)
	buf = appendJSONString(buf, id)
	buf = append(buf, `,"cache_hit":`...)
	buf = strconv.AppendBool(buf, hit)
	buf = append(buf, ',')
	buf = append(buf, frag...)
	buf = append(buf, '\n')
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
}

// appendJSONString appends s as a JSON string literal. IDs are
// scenario/extension names plus a sequence number (ASCII), so only the
// mandatory escapes are handled; anything ≥ 0x20 passes through, which
// is valid JSON for valid UTF-8 input.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req simulateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cfg, id, err := resolveConfig(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// One journal record per resolvable request from here on — refusals
	// included, because an incident's traffic shape includes its 429s.
	s.requests.Add(1)
	rec := godpm.JournalRecord{Endpoint: godpm.JournalEndpointSimulate, Tasks: req.Tasks, Seed: req.Seed}
	if req.Config == nil {
		rec.Scenario = id
	}
	if !s.acquire(w) {
		rec.Outcome, rec.Status = godpm.JournalOutcomeThrottled, http.StatusTooManyRequests
		s.observe(t0, rec)
		return
	}
	defer s.release()
	if !s.gate.acquire(r.Context(), 1) {
		http.Error(w, "client went away", http.StatusRequestTimeout)
		rec.Outcome, rec.Status = godpm.JournalOutcomeCanceled, http.StatusRequestTimeout
		s.observe(t0, rec)
		return
	}
	defer s.gate.release(1)

	var plan godpm.Plan
	plan.Add(fmt.Sprintf("%s#%d", id, s.seq.Add(1)), cfg)
	results, runErr := s.eng.Run(r.Context(), plan)
	jr := results[0]
	rec.Fingerprint = jr.Key
	if req.Config != nil {
		rec.ConfigDigest = jr.Key
	}
	if jr.Err != nil {
		status := http.StatusUnprocessableEntity
		rec.Outcome = godpm.JournalOutcomeError
		if errors.Is(jr.Err, context.Canceled) {
			status = http.StatusRequestTimeout
			rec.Outcome = godpm.JournalOutcomeCanceled
		}
		http.Error(w, jr.Err.Error(), status)
		rec.Status = status
		s.observe(t0, rec)
		return
	}
	_ = runErr // per-job error already handled
	rec.Outcome, rec.Status = godpm.JournalOutcomeRun, http.StatusOK
	if jr.CacheHit {
		rec.Outcome = godpm.JournalOutcomeHit
	}
	defer s.observe(t0, rec)
	res := jr.Result
	if jr.Record != nil {
		// Cached job: the response tail is pre-encoded on the record (built
		// on its first serve), so a hit never re-marshals the result or
		// recomputes its digest.
		if frag, err := simulateFragment(jr.Record, jr.Key, res); err == nil {
			writeSimulateResponse(w, jr.Job.ID, jr.CacheHit, frag)
			return
		}
	}
	// Uncached (volatile/NoCache) jobs have no record to pin bytes to;
	// marshal per request.
	writeJSON(w, simulateResponse{
		ID:        jr.Job.ID,
		CacheHit:  jr.CacheHit,
		Key:       jr.Key,
		EnergyJ:   res.EnergyJ,
		DurationS: res.Duration.Seconds(),
		AvgTempC:  res.AvgTempC,
		PeakTempC: res.PeakTempC,
		TasksDone: res.TasksDone,
		Completed: res.Completed,
		FinalSoC:  res.FinalSoC,
		Digest:    godpm.ResultDigest(res),
	})
}

// resolveConfig turns a simulate request into a runnable Config and an ID.
func resolveConfig(req simulateRequest) (godpm.Config, string, error) {
	if req.Config != nil {
		if req.Scenario != "" {
			return godpm.Config{}, "", fmt.Errorf("pass scenario or config, not both")
		}
		return *req.Config, "inline", nil
	}
	if req.Scenario == "" {
		return godpm.Config{}, "", fmt.Errorf("missing scenario (or inline config)")
	}
	t := godpm.DefaultTuning()
	if req.Tasks > 0 {
		t.NumTasks = req.Tasks
	}
	if req.Seed != 0 {
		t.Seed = req.Seed
	}
	if sc, err := godpm.ScenarioByID(strings.ToUpper(req.Scenario), t); err == nil {
		return sc.Config, sc.ID, nil
	}
	if sc, err := godpm.ExtensionByID(req.Scenario, t); err == nil {
		return sc.Config, sc.ID, nil
	}
	// Paper scenarios resolve case-insensitively above; give extensions
	// the same leniency.
	for _, sc := range godpm.Extensions(t) {
		if strings.EqualFold(sc.ID, req.Scenario) {
			return sc.Config, sc.ID, nil
		}
	}
	return godpm.Config{}, "", fmt.Errorf("unknown scenario %q", req.Scenario)
}

// tournamentRequest selects entrants and scenarios from the built-in
// catalogs (empty = all) and the replicate seeds.
type tournamentRequest struct {
	Policies   []string `json:"policies,omitempty"`
	Scenarios  []string `json:"scenarios,omitempty"`
	Seeds      []uint64 `json:"seeds,omitempty"`
	Tasks      int      `json:"tasks,omitempty"`
	DeadlineMs float64  `json:"deadline_ms,omitempty"`
}

// handleTournament streams the ranked leaderboard as NDJSON: one object
// per standing, then a trailer {"done":true,...} with the engine
// counters.
func (s *server) handleTournament(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req tournamentRequest
	if err := decodeJSON(w, r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tour, err := buildTournament(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.requests.Add(1)
	rec := godpm.JournalRecord{Endpoint: godpm.JournalEndpointTournament}
	if !s.acquire(w) {
		rec.Outcome, rec.Status = godpm.JournalOutcomeThrottled, http.StatusTooManyRequests
		s.observe(t0, rec)
		return
	}
	defer s.release()
	// A tournament fans out over the engine's whole worker pool, so it
	// weighs as many gate units as the pool goroutines it will spawn.
	weight := len(tour.Policies) * len(tour.Scenarios) * len(tour.Seeds)
	if weight > s.eng.Workers() {
		weight = s.eng.Workers()
	}
	if weight < 1 {
		weight = 1
	}
	if !s.gate.acquire(r.Context(), weight) {
		http.Error(w, "client went away", http.StatusRequestTimeout)
		rec.Outcome, rec.Status = godpm.JournalOutcomeCanceled, http.StatusRequestTimeout
		s.observe(t0, rec)
		return
	}
	defer s.gate.release(weight)

	// Publish live progress (cells done / total, provisional leader) to
	// /statsz for the duration of the run; the end hook reclaims this
	// run's cells so finished tournaments don't inflate the gauges.
	cells := len(tour.Policies) * len(tour.Scenarios) * len(tour.Seeds)
	progress, endProgress := s.tourStart(cells)
	tour.Progress = progress
	defer endProgress()

	// Commit the response before running: ranking needs every result, so
	// rows only exist at the end — flushing headers now keeps proxies and
	// clients from timing out on a byte-less connection meanwhile. Errors
	// after this point are reported in-band on the trailer line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	// The run gets its own cancellable context so an abandoned stream can
	// stop it: r.Context() already dies when the client disconnects
	// mid-run, and cancelTour extends that to disconnects the server only
	// notices when a row or trailer write fails.
	ctx, cancelTour := context.WithCancel(r.Context())
	defer cancelTour()
	res, err := godpm.RunTournament(ctx, s.eng, tour)
	defer func() { s.observe(t0, rec) }()
	if err != nil && res == nil {
		if r.Context().Err() != nil {
			// The client went away mid-run and the context cancellation
			// aborted the tournament — an abandoned stream, not a failure.
			s.tourAborts.Add(1)
			rec.Outcome, rec.Status = godpm.JournalOutcomeCanceled, http.StatusOK
			return
		}
		_ = enc.Encode(struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}{false, err.Error()})
		rec.Outcome, rec.Status = godpm.JournalOutcomeError, http.StatusOK
		return
	}
	rec.Outcome, rec.Status = godpm.JournalOutcomeRun, http.StatusOK
	if err != nil {
		rec.Outcome = godpm.JournalOutcomeError
	}
	aborted := false
	for _, standing := range res.Leaderboard {
		if encErr := enc.Encode(standing); encErr != nil {
			aborted = true
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if !aborted {
		trailer := struct {
			Done     bool              `json:"done"`
			Baseline string            `json:"baseline"`
			Stats    godpm.EngineStats `json:"stats"`
			Error    string            `json:"error,omitempty"`
		}{Done: true, Baseline: res.Baseline, Stats: res.Stats}
		if err != nil {
			trailer.Error = err.Error()
		}
		// A failed trailer write is the same client disconnect a failed row
		// write is — without it the client cannot tell a complete
		// leaderboard from a truncated one, so it must count as an aborted
		// stream, not be dropped on the floor.
		if encErr := enc.Encode(trailer); encErr != nil {
			aborted = true
		}
	}
	if aborted {
		cancelTour()
		s.tourAborts.Add(1)
		rec.Outcome = godpm.JournalOutcomeCanceled
	}
}

func buildTournament(req tournamentRequest) (godpm.Tournament, error) {
	tasks := req.Tasks
	if tasks <= 0 {
		tasks = 30
	}
	policies, err := pickByName(godpm.StandardPolicies(), req.Policies,
		func(p godpm.TournamentPolicy) string { return p.Name })
	if err != nil {
		return godpm.Tournament{}, err
	}
	scenarios, err := pickByName(godpm.ArenaScenarios(tasks), req.Scenarios,
		func(s godpm.TournamentScenario) string { return s.Name })
	if err != nil {
		return godpm.Tournament{}, err
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	t := godpm.Tournament{Policies: policies, Scenarios: scenarios,
		Deadline: godpm.Time(req.DeadlineMs * float64(godpm.Ms))}
	for _, s := range seeds {
		t.Seeds = append(t.Seeds, godpm.NewSeed(s))
	}
	return t, nil
}

// pickByName filters the catalog to the named subset (nil/empty = all).
func pickByName[T any](all []T, names []string, name func(T) string) ([]T, error) {
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]T, len(all))
	known := make([]string, 0, len(all))
	for _, x := range all {
		byName[name(x)] = x
		known = append(known, name(x))
	}
	out := make([]T, 0, len(names))
	for _, n := range names {
		x, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown name %q; available: %v", n, known)
		}
		out = append(out, x)
	}
	return out, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// statszVersion is the /statsz schema version: bumped when fields change
// meaning or disappear (additions don't bump it). Version 2 added the
// version/service/start fields, per-endpoint latency sketches, rolling
// rates and the journal block.
const statszVersion = 2

// statszResponse is the engine snapshot plus derived serving rates,
// rolling per-second rates, and per-endpoint latency — the schema dpmtop
// aggregates.
type statszResponse struct {
	Version     int    `json:"version"`
	Service     string `json:"service"`
	StartUnixMs int64  `json:"start_unix_ms"`
	godpm.EngineStats
	HitRate     float64 `json:"hit_rate"`
	DedupRate   float64 `json:"dedup_rate"`
	Inflight    int     `json:"inflight"`
	MaxInflight int     `json:"max_inflight"`
	BusyWorkers int     `json:"busy_workers"`
	Workers     int     `json:"workers"`
	UptimeS     float64 `json:"uptime_s"`
	// TournamentAborts counts NDJSON tournament streams the client
	// abandoned (disconnect mid-run or failed row/trailer write); the
	// run's context is cancelled when that happens, so this is also a
	// count of tournaments whose remaining work was reclaimed.
	TournamentAborts int64 `json:"tournament_aborted_streams"`
	// Tournament progress: gauges over the tournaments currently running
	// on this replica (cells = policy × scenario × seed simulations, done
	// as results land, leader = provisional lowest-mean-energy policy).
	// All zero / empty when no tournament is in flight.
	TournamentActive     int    `json:"tournament_active"`
	TournamentCellsDone  int    `json:"tournament_cells_done"`
	TournamentCellsTotal int    `json:"tournament_cells_total"`
	TournamentLeader     string `json:"tournament_leader,omitempty"`
	// RatesPerS are rolling per-second rates over the last minute
	// (requests, hits, deduped, runs, evictions, errors), sampled from
	// the cumulative counters once a second.
	RatesPerS map[string]float64 `json:"rates_per_s,omitempty"`
	// Latency maps endpoint → headline quantiles + the mergeable sketch
	// they were computed from (simulate, tournament; the engine's own
	// run_latency lives inside the embedded EngineStats).
	Latency map[string]godpm.Latency `json:"latency,omitempty"`
	Journal *journalStatus           `json:"journal,omitempty"`
}

// journalStatus reports the request journal's health in /statsz.
type journalStatus struct {
	Path     string `json:"path"`
	Appended int64  `json:"appended"`
	Rotated  int64  `json:"rotated"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	resp := statszResponse{
		Version:          statszVersion,
		Service:          "dpmserve",
		StartUnixMs:      s.start.UnixMilli(),
		EngineStats:      st,
		Inflight:         len(s.inflight),
		MaxInflight:      s.maxInflight,
		BusyWorkers:      s.gate.busy(s.eng.Workers()),
		Workers:          s.eng.Workers(),
		UptimeS:          time.Since(s.start).Seconds(),
		TournamentAborts: s.tourAborts.Load(),
		RatesPerS:        s.rates.Rates(),
		Latency:          map[string]godpm.Latency{},
	}
	s.tourMu.Lock()
	resp.TournamentActive = s.tourActive
	resp.TournamentCellsDone = s.tourDone
	resp.TournamentCellsTotal = s.tourTotal
	resp.TournamentLeader = s.tourLeader
	s.tourMu.Unlock()
	if snap := s.latSim.Snapshot(); snap.Count > 0 {
		resp.Latency[godpm.JournalEndpointSimulate] = godpm.LatencyOf(snap)
	}
	if snap := s.latTour.Snapshot(); snap.Count > 0 {
		resp.Latency[godpm.JournalEndpointTournament] = godpm.LatencyOf(snap)
	}
	if s.journal != nil {
		appended, rotated := s.journal.Stats()
		resp.Journal = &journalStatus{Path: s.journal.Path(), Appended: appended, Rotated: rotated}
	}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		resp.HitRate = float64(st.Hits) / float64(lookups)
	}
	if st.Hits > 0 {
		resp.DedupRate = float64(st.Deduped) / float64(st.Hits)
	}
	writeJSON(w, resp)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// loadgenOptions parameterises the load generator.
type loadgenOptions struct {
	// Targets are the replica base URLs; requests round-robin across
	// them by request index, so duplicates of one configuration land on
	// every replica and fleet-wide dedup (via a shared dpmremote store)
	// is actually exercised.
	Targets     []string
	Requests    int
	Distinct    int
	Concurrency int
	Tasks       int
}

// loadReport summarises one loadgen run.
type loadReport struct {
	Requests int
	OK       int
	TooMany  int // 429 responses (retried)
	Failed   int
	Hits     int // responses served from cache/dedup
	// Poisoned counts responses whose digest contradicted an earlier
	// response for the same key — a corrupt result reached a client.
	// Always a failure; there is no threshold flag because the only
	// acceptable value is zero.
	Poisoned int
	// DedupRatio is the fraction of successful requests served without a
	// fresh simulation.
	DedupRatio float64
	// Stats is the first replica's snapshot; Replicas has all of them.
	Stats    statszResponse
	Replicas []statszResponse
	// FleetRuns sums simulations across replicas: with a shared store,
	// a duplicate-heavy fleet-wide stream keeps it at the number of
	// distinct configurations.
	FleetRuns int64
	// RemoteHits sums the replicas' remote-tier cache hits — lookups
	// served by the shared store, i.e. simulations some other replica
	// ran.
	RemoteHits int64
	// Latency summarises client-observed latency of successful requests
	// (the final attempt only — 429 backoff is backpressure, not service
	// time), with the same quantile definitions as the servers' /statsz.
	Latency godpm.LatencySummary
	// Replay-mode fields (zero in synthetic mode): Replayed counts
	// records re-issued, SkippedRecords counts journal records that were
	// not replayable (inline-config, throttled, torn lines),
	// JournalDistinct/ServedDistinct count distinct fingerprints in the
	// journal vs observed during replay, and ReplayFingerprintsHit is
	// whether every journal fingerprint was served (MissingFingerprints
	// lists up to a few that were not).
	Replayed              int
	SkippedRecords        int
	JournalDistinct       int
	ServedDistinct        int
	ReplayFingerprintsHit bool
	MissingFingerprints   []string
}

func (r loadReport) String() string {
	s := fmt.Sprintf(
		"loadgen: %d requests → %d ok, %d retried (429), %d failed\n"+
			"served without simulation: %d/%d (ratio %.3f)\n",
		r.Requests, r.OK, r.TooMany, r.Failed,
		r.Hits, r.OK, r.DedupRatio)
	if r.Latency.Count > 0 {
		s += fmt.Sprintf("latency: p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms (n=%d)\n",
			r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms, r.Latency.MaxMs, r.Latency.Count)
	}
	if r.Replayed > 0 {
		s += fmt.Sprintf("replay: %d records re-issued (%d skipped), fingerprints served %d/%d\n",
			r.Replayed, r.SkippedRecords, r.JournalDistinct-len(r.MissingFingerprints), r.JournalDistinct)
	}
	for i, st := range r.Replicas {
		s += fmt.Sprintf("replica %d: runs=%d hits=%d deduped=%d evictions=%d cache_entries=%d cache_bytes=%d%s\n",
			i, st.Runs, st.Hits, st.Deduped, st.Evictions,
			st.CacheEntries, st.CacheBytes, tierSummary(st.Tiers))
	}
	if len(r.Replicas) > 1 {
		s += fmt.Sprintf("fleet: %d simulations across %d replicas, %d remote hits\n",
			r.FleetRuns, len(r.Replicas), r.RemoteHits)
	}
	return s
}

// tierSummary renders per-tier hit counters compactly.
func tierSummary(tiers []godpm.TierStats) string {
	if len(tiers) == 0 {
		return ""
	}
	parts := make([]string, len(tiers))
	for i, t := range tiers {
		parts[i] = fmt.Sprintf("%s %d/%d", t.Tier, t.Hits, t.Hits+t.Misses)
	}
	return " tiers[hits/lookups]: " + strings.Join(parts, ", ")
}

// runLoadgen hammers the targets with a mixed duplicate/distinct
// simulate stream: request i uses seed 1+i%distinct against target
// i%len(targets), so duplicates dominate when requests ≫ distinct and
// every replica sees every configuration when distinct and the replica
// count are coprime. 429s are retried with backoff (they are
// backpressure, not failures).
func runLoadgen(o loadgenOptions) (loadReport, error) {
	if len(o.Targets) == 0 {
		return loadReport{}, fmt.Errorf("loadgen: no targets")
	}
	if o.Distinct < 1 {
		o.Distinct = 1
	}
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	client := &http.Client{Timeout: 120 * time.Second}
	rep := loadReport{Requests: o.Requests}

	var mu sync.Mutex
	var wg sync.WaitGroup
	var lat godpm.Histogram
	// First-seen digest per key: every replica must serve byte-identical
	// measurements for the same configuration, chaos or not. A mismatch
	// means a poisoned result reached a client.
	seen := make(map[string]string)
	next := make(chan int)
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				body, _ := json.Marshal(simulateRequest{
					Scenario: "A1",
					Tasks:    o.Tasks,
					Seed:     int64(1 + i%o.Distinct),
				})
				ok, hit, retries, key, digest, took := postSimulate(client, o.Targets[i%len(o.Targets)], body)
				mu.Lock()
				rep.TooMany += retries
				if ok {
					rep.OK++
					lat.RecordDuration(took)
					if hit {
						rep.Hits++
					}
					if prev, dup := seen[key]; dup && prev != digest {
						rep.Poisoned++
					} else if !dup {
						seen[key] = digest
					}
				} else {
					rep.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < o.Requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	if rep.OK > 0 {
		rep.DedupRatio = float64(rep.Hits) / float64(rep.OK)
	}
	rep.Latency = godpm.LatencyOf(lat.Snapshot()).LatencySummary
	if err := collectReplicas(client, o.Targets, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// collectReplicas appends each target's /statsz snapshot to the report
// and folds the fleet aggregates (shared by synthetic and replay modes).
func collectReplicas(client *http.Client, targets []string, rep *loadReport) error {
	for _, target := range targets {
		resp, err := client.Get(target + "/statsz")
		if err != nil {
			return fmt.Errorf("statsz %s: %w", target, err)
		}
		var st statszResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("statsz %s: %w", target, err)
		}
		rep.Replicas = append(rep.Replicas, st)
		rep.FleetRuns += st.Runs
		for _, t := range st.Tiers {
			if t.Tier == godpm.TierRemote {
				rep.RemoteHits += t.Hits
			}
		}
	}
	rep.Stats = rep.Replicas[0]
	return nil
}

// replayOptions configures a journal replay run.
type replayOptions struct {
	Path        string
	Speedup     float64
	Targets     []string
	Concurrency int
}

// runReplay re-issues a recorded request journal against the targets:
// the same scenario/tasks/seed mix in arrival order, sleeping so each
// request fires at its original offset from the run's start (divided by
// Speedup). Inline-config and throttled records cannot be re-issued and
// are counted as skipped. The report's fingerprint fields verify the
// replay reproduced the journal's distinct working set.
func runReplay(o replayOptions) (loadReport, error) {
	if len(o.Targets) == 0 {
		return loadReport{}, fmt.Errorf("replay: no targets")
	}
	if o.Speedup <= 0 {
		// The speedup divides arrival offsets; zero or negative would turn
		// the schedule into NaN/negative due-times — refuse loudly rather
		// than silently substituting a default.
		return loadReport{}, fmt.Errorf("replay: -speedup must be > 0 (got %g)", o.Speedup)
	}
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	recs, torn, err := godpm.ReadJournal(o.Path)
	if err != nil {
		return loadReport{}, fmt.Errorf("replay: %w", err)
	}
	journalFp := make(map[string]bool)
	var todo []godpm.JournalRecord
	skipped := torn
	for _, rec := range recs {
		if rec.Fingerprint != "" {
			journalFp[rec.Fingerprint] = true
		}
		if rec.Replayable() {
			todo = append(todo, rec)
		} else {
			skipped++
		}
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i].T < todo[j].T })
	if len(todo) == 0 {
		return loadReport{}, fmt.Errorf("replay: %s has no replayable records (%d skipped)", o.Path, skipped)
	}

	client := &http.Client{Timeout: 120 * time.Second}
	rep := loadReport{Requests: len(todo), Replayed: len(todo), SkippedRecords: skipped, JournalDistinct: len(journalFp)}

	var mu sync.Mutex
	var wg sync.WaitGroup
	var lat godpm.Histogram
	seen := make(map[string]string)
	served := make(map[string]bool)
	next := make(chan int)
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rec := todo[i]
				body, _ := json.Marshal(simulateRequest{
					Scenario: rec.Scenario,
					Tasks:    rec.Tasks,
					Seed:     rec.Seed,
				})
				ok, hit, retries, key, digest, took := postSimulate(client, o.Targets[i%len(o.Targets)], body)
				mu.Lock()
				rep.TooMany += retries
				if ok {
					rep.OK++
					lat.RecordDuration(took)
					served[key] = true
					if hit {
						rep.Hits++
					}
					if prev, dup := seen[key]; dup && prev != digest {
						rep.Poisoned++
					} else if !dup {
						seen[key] = digest
					}
				} else {
					rep.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	// The dispatcher reproduces arrival spacing: record i is released at
	// its journal offset (scaled by 1/speedup) from the replay's start.
	// Offsets are relative to the journal's first record, so replaying a
	// journal whose traffic began an hour into serving does not start
	// with an hour of silence.
	start := time.Now()
	base := todo[0].T
	for i := range todo {
		due := start.Add(time.Duration((todo[i].T - base) / o.Speedup * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		next <- i
	}
	close(next)
	wg.Wait()

	if rep.OK > 0 {
		rep.DedupRatio = float64(rep.Hits) / float64(rep.OK)
	}
	rep.Latency = godpm.LatencyOf(lat.Snapshot()).LatencySummary
	rep.ServedDistinct = len(served)
	rep.ReplayFingerprintsHit = true
	for fp := range journalFp {
		if !served[fp] {
			rep.ReplayFingerprintsHit = false
			if len(rep.MissingFingerprints) < 5 {
				rep.MissingFingerprints = append(rep.MissingFingerprints, fp)
			}
		}
	}
	sort.Strings(rep.MissingFingerprints)
	if err := collectReplicas(client, o.Targets, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// postSimulate sends one simulate request, retrying 429 backpressure.
// It returns success, whether the response was cache-served, how many
// 429s it absorbed, the response's key and content digest (for the
// cross-replica consistency check), and the latency of the final
// attempt (backoff excluded — 429s are backpressure, not service time).
func postSimulate(client *http.Client, target string, body []byte) (ok, hit bool, retries int, key, digest string, took time.Duration) {
	for attempt := 0; attempt < 50; attempt++ {
		t0 := time.Now()
		resp, err := client.Post(target+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			return false, false, retries, "", "", 0
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			retries++
			time.Sleep(time.Duration(10+10*attempt) * time.Millisecond)
			continue
		}
		var sr simulateResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil {
			return false, false, retries, "", "", 0
		}
		return true, sr.CacheHit, retries, sr.Key, sr.Digest, time.Since(t0)
	}
	return false, false, retries, "", "", 0
}
