// Command dpmsweep runs one of the built-in parameter studies (timeout,
// activity, alpha) and writes a CSV series to stdout — the figure-style
// companion to cmd/dpmsim's Table 2.
//
// Usage:
//
//	dpmsweep -study timeout [-tasks 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"godpm/internal/sweep"
)

func main() {
	var (
		study = flag.String("study", "timeout", "study to run: timeout, activity, alpha")
		tasks = flag.Int("tasks", 40, "tasks per IP")
		seed  = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	studies := sweep.Studies(*seed, *tasks)
	s, ok := studies[*study]
	if !ok {
		names := make([]string, 0, len(studies))
		for n := range studies {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "unknown study %q; available: %v\n", *study, names)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "running study %s over %s = %v...\n", s.Name, s.Param, s.Values)
	pts, err := s.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := sweep.WriteCSV(os.Stdout, s.Param, pts, s.BuildBaseline != nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
