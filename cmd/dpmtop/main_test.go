package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"godpm"
)

// fakeStatsz serves a mutable /statsz payload, mimicking one serving
// process.
type fakeStatsz struct {
	payload atomic.Pointer[map[string]any]
}

func (f *fakeStatsz) set(p map[string]any) { f.payload.Store(&p) }

func (f *fakeStatsz) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/statsz" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(*f.payload.Load())
	})
}

// latencyFor builds a realistic latency blob by recording durations into
// the real sketch.
func latencyFor(ms ...int) godpm.Latency {
	var h godpm.Histogram
	for _, m := range ms {
		h.RecordDuration(time.Duration(m) * time.Millisecond)
	}
	return godpm.LatencyOf(h.Snapshot())
}

func serveStatsz(t *testing.T, payload map[string]any) (*fakeStatsz, string) {
	t.Helper()
	f := &fakeStatsz{}
	f.set(payload)
	ts := httptest.NewServer(f.handler())
	t.Cleanup(ts.Close)
	return f, ts.URL
}

func dpmservePayload(hits, runs int64, lat godpm.Latency) map[string]any {
	return map[string]any{
		"version": 2, "service": "dpmserve", "start_unix_ms": 1700000000000,
		"uptime_s": 12.5, "hits": hits, "misses": 3, "runs": runs,
		"deduped": 2, "evictions": 1, "errors": 0,
		"cache_entries": 4, "cache_bytes": 4096,
		"hit_rate": 0.8, "dedup_rate": 0.25,
		"inflight": 1, "max_inflight": 32,
		"rates_per_s": map[string]float64{"requests": 10.5, "hits": 8.4},
		"latency":     map[string]godpm.Latency{"simulate": lat},
	}
}

func dpmremotePayload(lat godpm.Latency) map[string]any {
	return map[string]any{
		"version": 2, "service": "dpmremote", "start_unix_ms": 1700000000000,
		"uptime_s": 99.0, "gets": 40, "get_hits": 30, "heads": 5,
		"puts": 10, "put_rejects": 0, "stat_batches": 2,
		"inflight": 0, "max_inflight": 256,
		"rates_per_s": map[string]float64{"gets": 4.0},
		"latency":     map[string]godpm.Latency{"blob_get": lat},
	}
}

func TestRenderBothServices(t *testing.T) {
	_, serveURL := serveStatsz(t, dpmservePayload(12, 5, latencyFor(1, 2, 3, 40)))
	_, remoteURL := serveStatsz(t, dpmremotePayload(latencyFor(1, 1, 2)))

	states := []*targetState{{URL: serveURL}, {URL: remoteURL}}
	pollAll(http.DefaultClient, states)

	var b strings.Builder
	render(&b, states, false)
	out := b.String()
	for _, want := range []string{
		"dpmserve (statsz v2)", "dpmremote (statsz v2)",
		"runs 5", "hits 12", "gets 40", "get_hits 30",
		"requests 10.5/s", "simulate:", "blob_get:",
		"cache:  entries 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	// One dpmserve + one dpmremote target share no endpoint names, but
	// two latency-reporting targets still produce a fleet section.
	if !strings.Contains(out, "fleet") {
		t.Fatalf("no fleet section with two latency-reporting targets:\n%s", out)
	}
}

func TestDeltasAfterSecondPoll(t *testing.T) {
	f, url := serveStatsz(t, dpmservePayload(10, 5, latencyFor(2)))
	states := []*targetState{{URL: url}}
	pollAll(http.DefaultClient, states)
	f.set(dpmservePayload(17, 6, latencyFor(2, 3)))
	pollAll(http.DefaultClient, states)

	var b strings.Builder
	render(&b, states, false)
	if !strings.Contains(b.String(), "hits 17 (+7)") {
		t.Fatalf("want delta column 'hits 17 (+7)' in:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "runs 6 (+1)") {
		t.Fatalf("want delta column 'runs 6 (+1)' in:\n%s", b.String())
	}
}

func TestFleetMergeIsExact(t *testing.T) {
	a := latencyFor(1, 2, 3)
	c := latencyFor(100, 200, 300)
	_, urlA := serveStatsz(t, dpmservePayload(1, 1, a))
	_, urlB := serveStatsz(t, dpmservePayload(1, 1, c))
	states := []*targetState{{URL: urlA}, {URL: urlB}}
	pollAll(http.DefaultClient, states)

	fleet := fleetLatency(states)
	got, ok := fleet["simulate"]
	if !ok {
		t.Fatalf("fleet merge missing simulate endpoint: %v", fleet)
	}
	want, err := a.Hist.Merge(c.Hist)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 6 || got.Hist.Count != want.Count || got.Hist.Sum != want.Sum {
		t.Fatalf("fleet merge not exact: got count=%d sum=%d, want count=%d sum=%d",
			got.Hist.Count, got.Hist.Sum, want.Count, want.Sum)
	}
	if got.P99Ms != godpm.LatencyOf(want).P99Ms {
		t.Fatalf("fleet p99 %v != direct merge p99 %v", got.P99Ms, godpm.LatencyOf(want).P99Ms)
	}
}

func TestRenderJSONParses(t *testing.T) {
	_, serveURL := serveStatsz(t, dpmservePayload(12, 5, latencyFor(1, 5)))
	_, remoteURL := serveStatsz(t, dpmremotePayload(latencyFor(1)))
	states := []*targetState{{URL: serveURL}, {URL: remoteURL}}
	pollAll(http.DefaultClient, states)

	var b strings.Builder
	renderJSON(&b, states)
	var out jsonOut
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, b.String())
	}
	if len(out.Targets) != 2 || out.Targets[0].Statsz == nil {
		t.Fatalf("unexpected -json shape: %+v", out)
	}
	if out.Targets[0].Statsz.Hits != 12 {
		t.Fatalf("hits = %d, want 12", out.Targets[0].Statsz.Hits)
	}
	if out.Targets[1].Statsz.GetHits != 30 {
		t.Fatalf("get_hits = %d, want 30", out.Targets[1].Statsz.GetHits)
	}
	if out.Targets[0].Statsz.Latency["simulate"].Count != 2 {
		t.Fatalf("simulate latency count = %d, want 2", out.Targets[0].Statsz.Latency["simulate"].Count)
	}
}

func TestUnreachableTargetRendersError(t *testing.T) {
	_, okURL := serveStatsz(t, dpmservePayload(1, 1, latencyFor(1)))
	states := []*targetState{
		{URL: okURL},
		{URL: "http://127.0.0.1:1"}, // nothing listens on port 1
	}
	pollAll(http.DefaultClient, states)
	if allFailed(states) {
		t.Fatal("allFailed true with one healthy target")
	}
	var b strings.Builder
	render(&b, states, false)
	if !strings.Contains(b.String(), "UNREACHABLE") {
		t.Fatalf("dead target not flagged:\n%s", b.String())
	}

	states = states[1:2]
	pollAll(http.DefaultClient, states)
	if !allFailed(states) {
		t.Fatal("allFailed false with zero healthy targets")
	}
}

func TestHistBars(t *testing.T) {
	if got := histBars(godpm.HistogramSnapshot{}, 6, 24); got != nil {
		t.Fatalf("empty sketch should render no bars, got %v", got)
	}
	l := latencyFor(1, 1, 1, 1, 50, 400)
	bars := histBars(l.Hist, 3, 10)
	if len(bars) == 0 || len(bars) > 3 {
		t.Fatalf("want 1..3 bars, got %d: %v", len(bars), bars)
	}
	var total int
	for _, line := range bars {
		if !strings.Contains(line, "ms") || !strings.Contains(line, "#") {
			t.Fatalf("bar line missing unit or bar: %q", line)
		}
		total += strings.Count(line, "#")
	}
	if total == 0 {
		t.Fatal("no bar mass rendered")
	}
}

func TestTournamentProgressLine(t *testing.T) {
	idle := dpmservePayload(1, 1, latencyFor(1))
	_, idleURL := serveStatsz(t, idle)

	busy := dpmservePayload(2, 2, latencyFor(1))
	busy["tournament_active"] = 1
	busy["tournament_cells_done"] = 9
	busy["tournament_cells_total"] = 36
	busy["tournament_leader"] = "dpm"
	_, busyURL := serveStatsz(t, busy)

	states := []*targetState{{URL: idleURL}, {URL: busyURL}}
	pollAll(http.DefaultClient, states)

	var b strings.Builder
	render(&b, states, false)
	out := b.String()
	if !strings.Contains(out, "tourney: 1 running, cells 9/36 (25%), leader dpm") {
		t.Fatalf("missing per-target tournament line:\n%s", out)
	}
	// Two reachable targets with one tournament somewhere → fleet line too.
	if !strings.Contains(out, "fleet") {
		t.Fatalf("no fleet section:\n%s", out)
	}
	if got := fleetTournament(states); got != "tourney: 1 running, cells 9/36 (25%), leader dpm" {
		t.Fatalf("fleet tournament line = %q", got)
	}

	// Idle everywhere → no tournament lines at all.
	states = []*targetState{{URL: idleURL}}
	pollAll(http.DefaultClient, states)
	b.Reset()
	render(&b, states, false)
	if strings.Contains(b.String(), "tourney:") {
		t.Fatalf("idle replica rendered a tournament line:\n%s", b.String())
	}
}
