// Command dpmtop is a live terminal dashboard over the serving fleet's
// /statsz endpoints — point it at any mix of dpmserve replicas and
// dpmremote stores and it renders, per poll interval: cumulative
// counters with deltas since the previous poll, rolling per-second
// rates, cache/store gauges, and per-endpoint latency quantiles with an
// ASCII histogram of the underlying sketch. When more than one target
// reports the same endpoint, a fleet section merges the replicas'
// latency sketches exactly (bucket counts add — see internal/stats)
// instead of averaging percentiles.
//
//	dpmtop -targets http://127.0.0.1:8080,http://127.0.0.1:8081
//
// For scripts and CI there is a non-interactive mode:
//
//	dpmtop -targets ... -once -json   # one poll, machine-readable JSON
//	dpmtop -targets ... -once        # one poll, the normal rendering
//
// In a TTY the screen is redrawn in place each interval; piped output
// appends one rendering per poll instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"godpm"
)

func main() {
	var (
		targetsFlag = flag.String("targets", "http://127.0.0.1:8080", "comma-separated /statsz base URLs (dpmserve and/or dpmremote)")
		interval    = flag.Duration("interval", 2*time.Second, "poll interval")
		once        = flag.Bool("once", false, "poll once, render once, exit (exit 1 if every target failed)")
		asJSON      = flag.Bool("json", false, "render machine-readable JSON instead of the dashboard")
		timeout     = flag.Duration("timeout", 3*time.Second, "per-target poll timeout")
	)
	flag.Parse()

	var targets []string
	for _, t := range strings.Split(*targetsFlag, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, strings.TrimRight(t, "/"))
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "dpmtop: no targets")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	states := make([]*targetState, len(targets))
	for i, t := range targets {
		states[i] = &targetState{URL: t}
	}

	clear := !*once && isTTY(os.Stdout)
	for {
		pollAll(client, states)
		if *asJSON {
			renderJSON(os.Stdout, states)
		} else {
			render(os.Stdout, states, clear)
		}
		if *once {
			if allFailed(states) {
				fmt.Fprintln(os.Stderr, "dpmtop: every target failed")
				os.Exit(1)
			}
			return
		}
		time.Sleep(*interval)
	}
}

// snapshot decodes either service's /statsz: the shared envelope
// (version/service/start/uptime/rates/latency) plus each service's
// counters — absent fields simply stay zero, so one struct covers both.
type snapshot struct {
	Version     int                      `json:"version"`
	Service     string                   `json:"service"`
	StartUnixMs int64                    `json:"start_unix_ms"`
	UptimeS     float64                  `json:"uptime_s"`
	RatesPerS   map[string]float64       `json:"rates_per_s"`
	Latency     map[string]godpm.Latency `json:"latency"`

	// dpmserve counters and gauges.
	Hits         int64          `json:"hits"`
	Misses       int64          `json:"misses"`
	Runs         int64          `json:"runs"`
	Forked       int64          `json:"forked"`
	Errors       int64          `json:"errors"`
	Deduped      int64          `json:"deduped"`
	Evictions    int64          `json:"evictions"`
	CacheEntries int64          `json:"cache_entries"`
	CacheBytes   int64          `json:"cache_bytes"`
	HitRate      float64        `json:"hit_rate"`
	DedupRate    float64        `json:"dedup_rate"`
	RunLatency   *godpm.Latency `json:"run_latency"`

	// dpmserve tournament progress gauges (zero when idle).
	TournamentActive     int    `json:"tournament_active"`
	TournamentCellsDone  int    `json:"tournament_cells_done"`
	TournamentCellsTotal int    `json:"tournament_cells_total"`
	TournamentLeader     string `json:"tournament_leader"`

	// dpmremote counters.
	Gets        int64 `json:"gets"`
	GetHits     int64 `json:"get_hits"`
	Heads       int64 `json:"heads"`
	Puts        int64 `json:"puts"`
	PutRejects  int64 `json:"put_rejects"`
	StatBatches int64 `json:"stat_batches"`

	// Shared gauges.
	Inflight    int `json:"inflight"`
	MaxInflight int `json:"max_inflight"`
	Workers     int `json:"workers"`
}

// targetState is one polled endpoint's rolling state: the latest
// snapshot, the previous one (for deltas), and the last error.
type targetState struct {
	URL  string
	Err  string
	Snap snapshot
	Prev snapshot
	// HasPrev guards the delta column until two polls have landed.
	HasPrev bool
}

// poll fetches and decodes one target's /statsz.
func poll(client *http.Client, url string) (snapshot, error) {
	resp, err := client.Get(url + "/statsz")
	if err != nil {
		return snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return snapshot{}, fmt.Errorf("statsz: HTTP %d", resp.StatusCode)
	}
	var s snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return snapshot{}, fmt.Errorf("statsz: %w", err)
	}
	return s, nil
}

// pollAll refreshes every target, shifting the previous snapshot into
// the delta slot.
func pollAll(client *http.Client, states []*targetState) {
	for _, st := range states {
		s, err := poll(client, st.URL)
		if err != nil {
			st.Err = err.Error()
			continue
		}
		if st.Err == "" && st.Snap.Service != "" {
			st.Prev, st.HasPrev = st.Snap, true
		} else {
			st.HasPrev = false
		}
		st.Snap, st.Err = s, ""
	}
}

func allFailed(states []*targetState) bool {
	for _, st := range states {
		if st.Err == "" {
			return false
		}
	}
	return true
}

// kv is one labelled counter, paired for the delta column.
type kv struct {
	Name string
	V    int64
}

// counters picks the service-appropriate counter row.
func counters(s snapshot) []kv {
	if s.Service == "dpmremote" || (s.Service == "" && s.Gets+s.Puts > 0) {
		return []kv{
			{"gets", s.Gets}, {"get_hits", s.GetHits}, {"heads", s.Heads},
			{"puts", s.Puts}, {"put_rejects", s.PutRejects}, {"stat_batches", s.StatBatches},
		}
	}
	return []kv{
		{"runs", s.Runs}, {"hits", s.Hits}, {"misses", s.Misses},
		{"forked", s.Forked}, {"deduped", s.Deduped},
		{"evictions", s.Evictions}, {"errors", s.Errors},
	}
}

// render draws the dashboard. With clear set it repaints the terminal in
// place (ANSI home+erase); otherwise renderings append.
func render(w io.Writer, states []*targetState, clear bool) {
	var b strings.Builder
	if clear {
		b.WriteString("\x1b[H\x1b[2J")
	}
	fmt.Fprintf(&b, "dpmtop — %d target(s), %s\n", len(states), time.Now().Format("15:04:05"))
	for _, st := range states {
		b.WriteString("\n")
		if st.Err != "" {
			fmt.Fprintf(&b, "▌ %s — UNREACHABLE: %s\n", st.URL, st.Err)
			continue
		}
		s := st.Snap
		fmt.Fprintf(&b, "▌ %s — %s (statsz v%d), up %s, inflight %d/%d\n",
			st.URL, orUnknown(s.Service), s.Version, fmtDur(s.UptimeS), s.Inflight, s.MaxInflight)

		cs := counters(s)
		prev := map[string]int64{}
		if st.HasPrev {
			for _, c := range counters(st.Prev) {
				prev[c.Name] = c.V
			}
		}
		parts := make([]string, len(cs))
		for i, c := range cs {
			parts[i] = fmt.Sprintf("%s %d", c.Name, c.V)
			if st.HasPrev {
				parts[i] += fmt.Sprintf(" (+%d)", c.V-prev[c.Name])
			}
		}
		fmt.Fprintf(&b, "  totals: %s\n", strings.Join(parts, "  "))
		if s.Service == "dpmserve" {
			fmt.Fprintf(&b, "  cache:  entries %d, bytes %d, hit_rate %.3f, dedup_rate %.3f\n",
				s.CacheEntries, s.CacheBytes, s.HitRate, s.DedupRate)
		}
		if line := tournamentLine(s); line != "" {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		if len(s.RatesPerS) > 0 {
			names := sortedKeys(s.RatesPerS)
			rp := make([]string, 0, len(names))
			for _, n := range names {
				rp = append(rp, fmt.Sprintf("%s %.1f/s", n, s.RatesPerS[n]))
			}
			fmt.Fprintf(&b, "  rates:  %s\n", strings.Join(rp, "  "))
		}
		lat := s.Latency
		if s.RunLatency != nil {
			if lat == nil {
				lat = map[string]godpm.Latency{}
			}
			lat["engine_run"] = *s.RunLatency
		}
		for _, ep := range sortedLatKeys(lat) {
			writeLatency(&b, "  ", ep, lat[ep])
		}
	}
	fleet := fleetLatency(states)
	fleetTour := fleetTournament(states)
	if len(fleet) > 0 || fleetTour != "" {
		fmt.Fprintf(&b, "\n▌ fleet (exact sketch merge across targets)\n")
		if fleetTour != "" {
			fmt.Fprintf(&b, "  %s\n", fleetTour)
		}
		for _, ep := range sortedLatKeys(fleet) {
			writeLatency(&b, "  ", ep, fleet[ep])
		}
	}
	io.WriteString(w, b.String())
}

// tournamentLine renders one replica's live tournament progress, or ""
// when the replica has none in flight.
func tournamentLine(s snapshot) string {
	if s.TournamentActive == 0 {
		return ""
	}
	line := fmt.Sprintf("tourney: %d running, cells %d/%d",
		s.TournamentActive, s.TournamentCellsDone, s.TournamentCellsTotal)
	if s.TournamentCellsTotal > 0 {
		line += fmt.Sprintf(" (%.0f%%)",
			100*float64(s.TournamentCellsDone)/float64(s.TournamentCellsTotal))
	}
	if s.TournamentLeader != "" {
		line += ", leader " + s.TournamentLeader
	}
	return line
}

// fleetTournament sums tournament progress across replicas (cells add;
// the leader shown is the one reported by the replica with the most
// cells done). Returns "" unless at least two targets are reachable and
// a tournament is running somewhere.
func fleetTournament(states []*targetState) string {
	var sum snapshot
	reachable, bestDone := 0, -1
	for _, st := range states {
		if st.Err != "" {
			continue
		}
		reachable++
		s := st.Snap
		sum.TournamentActive += s.TournamentActive
		sum.TournamentCellsDone += s.TournamentCellsDone
		sum.TournamentCellsTotal += s.TournamentCellsTotal
		if s.TournamentActive > 0 && s.TournamentCellsDone > bestDone {
			bestDone, sum.TournamentLeader = s.TournamentCellsDone, s.TournamentLeader
		}
	}
	if reachable < 2 || sum.TournamentActive == 0 {
		return ""
	}
	return tournamentLine(sum)
}

// writeLatency renders one endpoint's quantile line and sketch bars.
func writeLatency(b *strings.Builder, indent, name string, l godpm.Latency) {
	fmt.Fprintf(b, "%s%-11s %s\n", indent, name+":", l.LatencySummary.String())
	for _, line := range histBars(l.Hist, 6, 24) {
		fmt.Fprintf(b, "%s  %s\n", indent, line)
	}
}

// histBars collapses a sketch's occupied buckets into at most bins rows
// "≤ 12ms ######## 42", scaling bars to width.
func histBars(h godpm.HistogramSnapshot, bins, width int) []string {
	if h.Count == 0 || len(h.Bucket) == 0 {
		return nil
	}
	per := (len(h.Bucket) + bins - 1) / bins
	type bar struct {
		upper int64
		n     int64
	}
	var bars []bar
	for i := 0; i < len(h.Bucket); i += per {
		end := i + per
		if end > len(h.Bucket) {
			end = len(h.Bucket)
		}
		var n int64
		for j := i; j < end; j++ {
			n += h.N[j]
		}
		bars = append(bars, bar{upper: h.UpperBound(end - 1), n: n})
	}
	var peak int64
	for _, bb := range bars {
		if bb.n > peak {
			peak = bb.n
		}
	}
	out := make([]string, len(bars))
	for i, bb := range bars {
		w := int(bb.n * int64(width) / peak)
		if w == 0 && bb.n > 0 {
			w = 1
		}
		out[i] = fmt.Sprintf("≤%8.1fms %-*s %d", float64(bb.upper)/1000, width, strings.Repeat("#", w), bb.n)
	}
	return out
}

// fleetLatency merges every reachable target's latency sketches per
// endpoint name — exact, order-independent aggregation (the property the
// sketch's Merge tests pin down). Returns nil unless at least two
// targets contribute.
func fleetLatency(states []*targetState) map[string]godpm.Latency {
	merged := map[string]godpm.HistogramSnapshot{}
	contributors := 0
	for _, st := range states {
		if st.Err != "" || len(st.Snap.Latency) == 0 {
			continue
		}
		contributors++
		for ep, l := range st.Snap.Latency {
			m, err := merged[ep].Merge(l.Hist)
			if err != nil {
				// A corrupt peer sketch must not poison the fleet view;
				// skip it (Validate guards the merge).
				continue
			}
			merged[ep] = m
		}
	}
	if contributors < 2 {
		return nil
	}
	out := make(map[string]godpm.Latency, len(merged))
	for ep, m := range merged {
		out[ep] = godpm.LatencyOf(m)
	}
	return out
}

// jsonOut is the -json rendering: every target's raw snapshot plus the
// fleet merge — stable input for CI assertions.
type jsonOut struct {
	Targets []jsonTarget             `json:"targets"`
	Fleet   map[string]godpm.Latency `json:"fleet_latency,omitempty"`
}

type jsonTarget struct {
	URL    string    `json:"url"`
	Error  string    `json:"error,omitempty"`
	Statsz *snapshot `json:"statsz,omitempty"`
}

func renderJSON(w io.Writer, states []*targetState) {
	out := jsonOut{Fleet: fleetLatency(states)}
	for _, st := range states {
		jt := jsonTarget{URL: st.URL, Error: st.Err}
		if st.Err == "" {
			snap := st.Snap
			jt.Statsz = &snap
		}
		out.Targets = append(out.Targets, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedLatKeys(m map[string]godpm.Latency) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown service (statsz v1?)"
	}
	return s
}

// fmtDur renders an uptime compactly (2h3m, 14m2s, 9.1s).
func fmtDur(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	if d < 10*time.Second {
		return fmt.Sprintf("%.1fs", seconds)
	}
	return d.Truncate(time.Second).String()
}

// isTTY reports whether f is an interactive terminal (drives the
// repaint-in-place vs append rendering choice).
func isTTY(f *os.File) bool {
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
