// Command dpmreport runs the full Table 2 reproduction and writes a
// Markdown report (comparison table, shape checks, per-scenario details) —
// the mechanical regeneration of the README's measured Table 2 content.
//
// Usage:
//
//	dpmreport [-tasks N] [-seed N] [-o report.md] [-details]
package main

import (
	"flag"
	"fmt"
	"os"

	"godpm"
	"godpm/internal/report"
)

func main() {
	var (
		tasks   = flag.Int("tasks", 0, "tasks per IP (0 = default tuning)")
		seed    = flag.Int64("seed", 0, "workload seed (0 = default tuning)")
		out     = flag.String("o", "", "output path (default stdout)")
		details = flag.Bool("details", true, "include per-scenario details")
	)
	flag.Parse()

	tuning := godpm.DefaultTuning()
	if *tasks > 0 {
		tuning.NumTasks = *tasks
	}
	if *seed != 0 {
		tuning.Seed = *seed
	}

	var rows []godpm.Row
	for _, s := range godpm.Scenarios(tuning) {
		fmt.Fprintf(os.Stderr, "running %s...\n", s.ID)
		row, err := godpm.RunScenario(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rows = append(rows, row)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	opt := report.Options{
		Title:   "godpm — Table 2 reproduction (Conti, DATE 2005)",
		Details: *details,
	}
	if err := report.Write(w, rows, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !report.AllPass(report.ShapeChecks(rows)) {
		fmt.Fprintln(os.Stderr, "WARNING: some shape checks failed")
		os.Exit(3)
	}
}
