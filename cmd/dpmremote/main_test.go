package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"godpm"
)

func newTestServer(t *testing.T, opts serverOptions) (*server, *httptest.Server) {
	t.Helper()
	if opts.StoreDir == "" {
		opts.StoreDir = t.TempDir()
	}
	s, err := newServer(opts)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	t.Cleanup(s.close)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func do(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestProtocolRoundtrip(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{})
	key := strings.Repeat("ab", 32)
	blob, err := json.Marshal(&godpm.Result{EnergyJ: 3.5, TasksDone: 7, Completed: true})
	if err != nil {
		t.Fatal(err)
	}

	if resp := do(t, http.MethodHead, ts.URL+"/v1/blob/"+key, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD before PUT: status %d, want 404", resp.StatusCode)
	}
	if resp := do(t, http.MethodGet, ts.URL+"/v1/blob/"+key, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT: status %d, want 404", resp.StatusCode)
	}
	if resp := do(t, http.MethodPut, ts.URL+"/v1/blob/"+key, blob); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: status %d, want 204", resp.StatusCode)
	}
	if resp := do(t, http.MethodHead, ts.URL+"/v1/blob/"+key, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD after PUT: status %d, want 200", resp.StatusCode)
	}
	resp := do(t, http.MethodGet, ts.URL+"/v1/blob/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT: status %d, want 200", resp.StatusCode)
	}
	var got godpm.Result
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode GET body: %v", err)
	}
	if got.EnergyJ != 3.5 || got.TasksDone != 7 || !got.Completed {
		t.Fatalf("roundtripped result = %+v", got)
	}

	st := s.blob.Stats()
	if st.Puts != 1 || st.GetHits != 1 || st.HeadHits != 1 || st.Store.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 put / 1 get hit / 1 head hit / 1 entry", st)
	}
}

func TestProtocolRefusals(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{MaxBlob: 256})
	key := strings.Repeat("cd", 32)

	if resp := do(t, http.MethodGet, ts.URL+"/v1/blob/"+strings.Repeat("G", 64), nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid fingerprint: status %d, want 400", resp.StatusCode)
	}
	if resp := do(t, http.MethodPut, ts.URL+"/v1/blob/"+key, []byte("not json")); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("undecodable PUT: status %d, want 422", resp.StatusCode)
	}
	big := bytes.Repeat([]byte("x"), 1024)
	if resp := do(t, http.MethodPut, ts.URL+"/v1/blob/"+key, big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT: status %d, want 413", resp.StatusCode)
	}
	if resp := do(t, http.MethodDelete, ts.URL+"/v1/blob/"+key, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: status %d, want 405", resp.StatusCode)
	}
	if resp := do(t, http.MethodGet, ts.URL+"/v1/stat", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET stat: status %d, want 405", resp.StatusCode)
	}
	// The refused PUTs must not have stored anything.
	if resp := do(t, http.MethodHead, ts.URL+"/v1/blob/"+key, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("refused PUT left an entry behind")
	}
}

func TestStatBatch(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{})
	present := strings.Repeat("ef", 32)
	absent := strings.Repeat("01", 32)
	blob, _ := json.Marshal(&godpm.Result{})
	if resp := do(t, http.MethodPut, ts.URL+"/v1/blob/"+present, blob); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{"keys": []string{present, absent, "bogus"}})
	resp := do(t, http.MethodPost, ts.URL+"/v1/stat", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stat: status %d, want 200", resp.StatusCode)
	}
	var sr struct {
		Present []string `json:"present"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Present) != 1 || sr.Present[0] != present {
		t.Fatalf("stat present = %v, want exactly [%s]", sr.Present, present)
	}
}

func TestHealthzFlipsWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, serverOptions{})
	if resp := do(t, http.MethodGet, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", resp.StatusCode)
	}
	s.draining.Store(true)
	if resp := do(t, http.MethodGet, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", resp.StatusCode)
	}
	// The protocol keeps serving while healthz steers routers away.
	if resp := do(t, http.MethodGet, ts.URL+"/v1/blob/"+strings.Repeat("ab", 32), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("draining GET: status %d, want 404 (still served)", resp.StatusCode)
	}
}

func TestStatszReportsCounters(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{MaxInflight: 7})
	do(t, http.MethodGet, ts.URL+"/v1/blob/"+strings.Repeat("ab", 32), nil)

	resp := do(t, http.MethodGet, ts.URL+"/statsz", nil)
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Gets != 1 || st.MaxInflight != 7 {
		t.Fatalf("statsz = %+v, want 1 get and max_inflight 7", st)
	}
}

func TestAdmissionRefusesExcessLoad(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{MaxInflight: 1})
	key := strings.Repeat("ab", 32)

	// Occupy the single slot with a PUT whose body stalls mid-transfer.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/blob/"+key, pr)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(&godpm.Result{})
	done := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			done <- resp
		} else {
			done <- nil
		}
	}()
	// Pipe writes block until the transport reads them, so this cannot
	// run before Do is in flight.
	if _, err := pw.Write(blob[:4]); err != nil {
		t.Fatal(err)
	}

	// With the slot held, the next request is refused with 429.
	var saw429 bool
	for i := 0; i < 200 && !saw429; i++ {
		resp := do(t, http.MethodGet, ts.URL+"/v1/blob/"+key, nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without Retry-After")
			}
			saw429 = true
		}
	}
	if !saw429 {
		t.Fatalf("no request was refused while the only slot was held")
	}

	// Finish the stalled upload; the slot frees and service resumes.
	pw.Write(blob[4:])
	pw.Close()
	if resp := <-done; resp == nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("stalled PUT did not complete cleanly: %v", resp)
	}
	if resp := do(t, http.MethodHead, ts.URL+"/v1/blob/"+key, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD after freed slot: status %d, want 200", resp.StatusCode)
	}
}

// TestStatszV2Envelope checks the shared observability schema on the
// store side: version/service/start identity, per-endpoint-class latency
// sketches fed by the admit wrapper, and the rolling rate family.
func TestStatszV2Envelope(t *testing.T) {
	_, ts := newTestServer(t, serverOptions{RateInterval: 10 * time.Millisecond})
	key := strings.Repeat("ab", 32)
	blob, _ := json.Marshal(&godpm.Result{EnergyJ: 1, Completed: true})
	if resp := do(t, http.MethodPut, ts.URL+"/v1/blob/"+key, blob); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: status %d", resp.StatusCode)
	}
	for i := 0; i < 2; i++ {
		if resp := do(t, http.MethodGet, ts.URL+"/v1/blob/"+key, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET: status %d", resp.StatusCode)
		}
	}
	time.Sleep(40 * time.Millisecond) // let the rate sampler observe the counters

	resp := do(t, http.MethodGet, ts.URL+"/statsz", nil)
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Version != statszVersion || st.Service != "dpmremote" || st.StartUnixMs <= 0 {
		t.Fatalf("envelope = v%d %q start=%d, want v%d dpmremote with a start time",
			st.Version, st.Service, st.StartUnixMs, statszVersion)
	}
	if got := st.Latency["blob_put"].Count; got != 1 {
		t.Fatalf("latency[blob_put].count = %d, want 1", got)
	}
	if got := st.Latency["blob_get"].Count; got != 2 {
		t.Fatalf("latency[blob_get].count = %d, want 2", got)
	}
	if _, ok := st.Latency["stat"]; ok {
		t.Fatal("latency[stat] present with no stat traffic")
	}
	if _, ok := st.RatesPerS["gets"]; !ok {
		t.Fatalf("rates_per_s missing gets counter: %v", st.RatesPerS)
	}
}
