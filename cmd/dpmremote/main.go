// Command dpmremote serves a shared hash-addressed result store to a
// fleet of dpmserve replicas (and any godpm engine configured with a
// RemoteCache tier), so each distinct simulation fingerprint is
// computed once fleet-wide instead of once per process.
//
// The protocol is content-addressed over the engine's fingerprint
// space — a small versioned HTTP surface:
//
//	HEAD /v1/blob/{fingerprint}   exists?       200 | 404
//	GET  /v1/blob/{fingerprint}   fetch result  200 JSON | 404
//	PUT  /v1/blob/{fingerprint}   store result  204 (413/422 refused)
//	POST /v1/stat {"keys":[...]}  batched HEAD for plan warm-up
//	GET  /healthz                 liveness (503 while draining)
//	GET  /statsz                  request counters + store occupancy
//
// The store is the hardened engine disk cache: atomic writes, crashed-
// writer temp sweeping, corrupt-entry healing, an LRU-by-mtime size cap
// (-disk-bytes) and a bounded in-memory front (-mem-entries/-mem-bytes),
// so the server's footprint is bounded no matter what the fleet uploads.
// Admission is bounded per request too: -max-inflight refuses excess
// requests with 429, and oversized or undecodable PUT bodies are
// refused before they touch the store.
//
// On SIGTERM/SIGINT the server drains like dpmserve: healthz flips to
// 503 for -drain-grace so load balancers stop routing, then the
// listener closes and in-flight requests finish within -drain-timeout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"godpm"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8081", "listen address")
		storeDir    = flag.String("store", "", "store directory (required)")
		diskBytes   = flag.Int64("disk-bytes", 0, "store size cap in bytes (0 = unbounded)")
		memEntries  = flag.Int("mem-entries", 0, "in-memory front entry cap (0 = default)")
		memBytes    = flag.Int64("mem-bytes", 0, "approximate in-memory front byte cap (0 = unbounded)")
		maxBlob     = flag.Int64("max-blob-bytes", 0, "per-PUT body cap in bytes (0 = 32 MiB)")
		maxInflight = flag.Int("max-inflight", 256, "max concurrent requests before 429")
		drainGrace  = flag.Duration("drain-grace", 2*time.Second, "healthz-503 window before the listener closes")
		drainTO     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget after the grace window")
		fsync       = flag.Bool("fsync", true, "crash-consistent store writes (fsync payload before rename, directory after)")
		codec       = flag.String("codec", "", "store record compression: flate (default) or none")
		chaosSeed   = flag.Uint64("chaos-seed", 0, "inject a deterministic fault schedule into the store's filesystem (0 = off; testing only)")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "dpmremote: -store DIR is required")
		os.Exit(2)
	}

	s, err := newServer(serverOptions{
		StoreDir:    *storeDir,
		DiskBytes:   *diskBytes,
		MemEntries:  *memEntries,
		MemBytes:    *memBytes,
		MaxBlob:     *maxBlob,
		MaxInflight: *maxInflight,
		Sync:        *fsync,
		Codec:       *codec,
		ChaosSeed:   *chaosSeed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("dpmremote serving store %s on http://%s (max-inflight=%d)",
		*storeDir, ln.Addr(), *maxInflight)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Two-phase drain, mirroring dpmserve: flip healthz first so load
	// balancers stop routing, then stop accepting and finish in-flight
	// requests.
	s.draining.Store(true)
	log.Printf("draining: healthz now 503, closing listener in %s", *drainGrace)
	time.Sleep(*drainGrace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		os.Exit(1)
	}
	s.close()
	st := s.blob.Stats()
	log.Printf("drained cleanly: %d gets (%d hits), %d puts (%d rejected), %d stat batches, store %d entries / %d bytes",
		st.Gets, st.GetHits, st.Puts, st.PutRejects, st.StatBatch, st.Store.Entries, st.Store.Bytes)
}

type serverOptions struct {
	StoreDir    string
	DiskBytes   int64
	MemEntries  int
	MemBytes    int64
	MaxBlob     int64
	MaxInflight int
	// Sync selects crash-consistent store writes; recommended (and the
	// flag default) for a store a whole fleet depends on.
	Sync bool
	// Codec selects the store's record body compression ("" = flate).
	Codec string
	// ChaosSeed, when non-zero, injects the seed's deterministic fault
	// schedule into the store's filesystem writes — torn writes and
	// transient errors the protocol must absorb. Testing only.
	ChaosSeed uint64
	// RateInterval is the rolling-rate sampling cadence (0 = 1s; tests
	// shrink it).
	RateInterval time.Duration
}

// server wraps the protocol handler with admission control and the
// operational endpoints.
type server struct {
	blob        *godpm.BlobServer
	inflight    chan struct{}
	maxInflight int
	draining    atomic.Bool
	start       time.Time
	// Per-endpoint-class latency sketches (same format as dpmserve's, so
	// dpmtop merges them with the same code path).
	latGet, latHead, latPut, latStat godpm.Histogram
	rates                            *godpm.RateSet
	stopRates                        func()
}

func newServer(o serverOptions) (*server, error) {
	opts := godpm.DiskCacheOptions{
		MaxBytes: o.DiskBytes,
		Memory:   godpm.LRUOptions{MaxEntries: o.MemEntries, MaxBytes: o.MemBytes},
		Sync:     o.Sync,
		Codec:    o.Codec,
	}
	if o.ChaosSeed != 0 {
		plan := godpm.DefaultChaosPlan(godpm.NewSeed(o.ChaosSeed))
		opts.FS = plan.WrapFS(godpm.OSCacheFS)
		log.Printf("chaos: injecting fault schedule %s (seed %d) into store filesystem", plan.Hash()[:12], o.ChaosSeed)
	}
	store, err := godpm.NewDiskCacheWith(o.StoreDir, opts)
	if err != nil {
		return nil, err
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	s := &server{
		blob:        godpm.NewBlobServer(store, godpm.BlobServerOptions{MaxBlobBytes: o.MaxBlob}),
		inflight:    make(chan struct{}, o.MaxInflight),
		maxInflight: o.MaxInflight,
		start:       time.Now(),
		rates:       godpm.NewRateSet(0),
	}
	s.stopRates = s.rates.Sample(o.RateInterval, func() map[string]float64 {
		st := s.blob.Stats()
		return map[string]float64{
			"gets":         float64(st.Gets),
			"get_hits":     float64(st.GetHits),
			"heads":        float64(st.Heads),
			"puts":         float64(st.Puts),
			"put_rejects":  float64(st.PutRejects),
			"stat_batches": float64(st.StatBatch),
		}
	})
	return s, nil
}

// close stops the background rate sampler.
func (s *server) close() { s.stopRates() }

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/", s.admit(s.blob))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return mux
}

// admit bounds concurrent protocol requests; excess load is refused
// with 429 and Retry-After (clients fail open to their local tiers)
// rather than queued without bound. Admitted requests are timed into the
// per-endpoint-class latency sketch (refusals are not — 429 is
// backpressure, not service).
func (s *server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			if h := s.latFor(r); h != nil {
				t0 := time.Now()
				defer func() { h.RecordDuration(time.Since(t0)) }()
			}
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "store saturated: max in-flight requests reached", http.StatusTooManyRequests)
		}
	})
}

// latFor classifies a protocol request into its latency sketch (nil for
// requests outside the known surface).
func (s *server) latFor(r *http.Request) *godpm.Histogram {
	if strings.HasPrefix(r.URL.Path, "/v1/blob/") {
		switch r.Method {
		case http.MethodGet:
			return &s.latGet
		case http.MethodHead:
			return &s.latHead
		case http.MethodPut:
			return &s.latPut
		}
		return nil
	}
	if r.URL.Path == "/v1/stat" {
		return &s.latStat
	}
	return nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// statszVersion matches dpmserve's /statsz schema version: both services
// share the version/service/start/rates/latency envelope so dpmtop can
// aggregate them uniformly.
const statszVersion = 2

// statszResponse is the blob-server snapshot plus serving gauges,
// rolling per-second rates, and per-endpoint-class latency.
type statszResponse struct {
	Version     int    `json:"version"`
	Service     string `json:"service"`
	StartUnixMs int64  `json:"start_unix_ms"`
	godpm.BlobServerStats
	Inflight    int                      `json:"inflight"`
	MaxInflight int                      `json:"max_inflight"`
	UptimeS     float64                  `json:"uptime_s"`
	RatesPerS   map[string]float64       `json:"rates_per_s,omitempty"`
	Latency     map[string]godpm.Latency `json:"latency,omitempty"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := statszResponse{
		Version:         statszVersion,
		Service:         "dpmremote",
		StartUnixMs:     s.start.UnixMilli(),
		BlobServerStats: s.blob.Stats(),
		Inflight:        len(s.inflight),
		MaxInflight:     s.maxInflight,
		UptimeS:         time.Since(s.start).Seconds(),
		RatesPerS:       s.rates.Rates(),
		Latency:         map[string]godpm.Latency{},
	}
	for name, h := range map[string]*godpm.Histogram{
		"blob_get": &s.latGet, "blob_head": &s.latHead,
		"blob_put": &s.latPut, "stat": &s.latStat,
	} {
		if snap := h.Snapshot(); snap.Count > 0 {
			resp.Latency[name] = godpm.LatencyOf(snap)
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
