// Command dpmtrace runs one scenario with waveform tracing enabled and
// writes a VCD file (PSM states, battery class, temperature class — open it
// in GTKWave) and a CSV file (sampled temperature, state of charge and
// per-IP power) — the signals the paper's SystemC study inspected.
//
// Usage:
//
//	dpmtrace [-scenario A1] [-tasks 30] [-vcd out.vcd] [-csv out.csv] [-baseline]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"godpm/internal/core"
)

func main() {
	var (
		scenario = flag.String("scenario", "A1", "scenario to trace: A1..A4, B, C")
		tasks    = flag.Int("tasks", 30, "tasks per IP")
		vcdPath  = flag.String("vcd", "dpm.vcd", "VCD output path")
		csvPath  = flag.String("csv", "dpm.csv", "CSV output path")
		baseline = flag.Bool("baseline", false, "trace the always-on baseline instead of the DPM run")
	)
	flag.Parse()

	tuning := core.DefaultTuning()
	if *tasks > 0 {
		tuning.NumTasks = *tasks
	}
	s, err := core.ScenarioByID(strings.ToUpper(*scenario), tuning)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := s.Config
	if *baseline {
		cfg = core.Baseline(s)
	}

	vcdFile, err := os.Create(*vcdPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer vcdFile.Close()
	csvFile, err := os.Create(*csvPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer csvFile.Close()

	cfg.TraceVCD = vcdFile
	cfg.TraceCSV = csvFile

	res, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d tasks in %v, %.4f J, avg %.1f°C (completed=%v)\n",
		s.ID, res.TasksDone, res.Duration, res.EnergyJ, res.AvgTempC, res.Completed)
	fmt.Printf("wrote %s and %s\n", *vcdPath, *csvPath)
}
