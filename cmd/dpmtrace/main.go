// Command dpmtrace runs one scenario with waveform observers attached and
// writes a VCD file (PSM states, battery class, temperature class — open it
// in GTKWave) and a CSV file (sampled temperature, state of charge and
// per-IP power) — the signals the paper's SystemC study inspected.
//
// Usage:
//
//	dpmtrace [-scenario A1] [-tasks 30] [-vcd out.vcd] [-csv out.csv] [-baseline]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"godpm"
)

func main() {
	var (
		scenario = flag.String("scenario", "A1", "scenario to trace: A1..A4, B, C")
		tasks    = flag.Int("tasks", 30, "tasks per IP")
		vcdPath  = flag.String("vcd", "dpm.vcd", "VCD output path")
		csvPath  = flag.String("csv", "dpm.csv", "CSV output path")
		baseline = flag.Bool("baseline", false, "trace the always-on baseline instead of the DPM run")
	)
	flag.Parse()

	tuning := godpm.DefaultTuning()
	if *tasks > 0 {
		tuning.NumTasks = *tasks
	}
	s, err := godpm.ScenarioByID(strings.ToUpper(*scenario), tuning)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := s.Config
	if *baseline {
		cfg = godpm.Baseline(s)
	}

	vcdFile, err := os.Create(*vcdPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer vcdFile.Close()
	csvFile, err := os.Create(*csvPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer csvFile.Close()

	res, err := godpm.RunWith(context.Background(), cfg, godpm.RunOptions{
		Observers: []godpm.Observer{
			godpm.NewVCDObserver(vcdFile),
			godpm.NewCSVObserver(csvFile),
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d tasks in %v, %.4f J, avg %.1f°C (completed=%v)\n",
		s.ID, res.TasksDone, res.Duration, res.EnergyJ, res.AvgTempC, res.Completed)
	fmt.Printf("wrote %s and %s\n", *vcdPath, *csvPath)
}
