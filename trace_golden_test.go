// Golden tests pinning the observer-based tracers to the exact bytes the
// pre-observer Config.TraceVCD/TraceCSV writer fields produced: the API
// moved, the files must not. testdata/A1.{vcd,csv} and testdata/B.vcd were
// captured from cmd/dpmtrace before the refactor; scenario B's CSV is 1.4 MB
// and is pinned by hash instead of by committed bytes.
package godpm_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"godpm"
)

// traceScenario runs one scenario exactly as cmd/dpmtrace does (default
// tuning, 30 tasks per IP) with both tracing observers attached.
func traceScenario(t *testing.T, id string) (vcd, csv []byte) {
	t.Helper()
	tuning := godpm.DefaultTuning()
	tuning.NumTasks = 30
	s, err := godpm.ScenarioByID(id, tuning)
	if err != nil {
		t.Fatal(err)
	}
	var vcdBuf, csvBuf bytes.Buffer
	_, err = godpm.RunWith(context.Background(), s.Config, godpm.RunOptions{
		Observers: []godpm.Observer{
			godpm.NewVCDObserver(&vcdBuf),
			godpm.NewCSVObserver(&csvBuf),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return vcdBuf.Bytes(), csvBuf.Bytes()
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTraceGoldenA1(t *testing.T) {
	vcd, csv := traceScenario(t, "A1")
	if want := readGolden(t, "A1.vcd"); !bytes.Equal(vcd, want) {
		t.Errorf("A1 VCD diverged from pre-observer output (%d vs %d bytes)", len(vcd), len(want))
	}
	if want := readGolden(t, "A1.csv"); !bytes.Equal(csv, want) {
		t.Errorf("A1 CSV diverged from pre-observer output (%d vs %d bytes)", len(csv), len(want))
	}
}

func TestTraceGoldenB(t *testing.T) {
	vcd, csv := traceScenario(t, "B") // multi-IP: several PSM variable pairs
	if want := readGolden(t, "B.vcd"); !bytes.Equal(vcd, want) {
		t.Errorf("B VCD diverged from pre-observer output (%d vs %d bytes)", len(vcd), len(want))
	}
	const wantCSV = "7f5cb32ae55e242b32f910115886db068eabaa2656bc39f4bce0345040a91cf8"
	sum := sha256.Sum256(csv)
	if got := hex.EncodeToString(sum[:]); got != wantCSV {
		t.Errorf("B CSV hash = %s, want %s (%d bytes)", got, wantCSV, len(csv))
	}
}
