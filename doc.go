// Package godpm is a pure-Go reproduction of "SystemC Analysis of a New
// Dynamic Power Management Architecture" (Massimo Conti, DATE 2005): an
// ACPI-style dynamic power management architecture for systems-on-chip —
// a Power State Machine and Local Energy Manager per IP block, an optional
// Global Energy Manager arbitrating on battery status, chip temperature and
// static priorities — rebuilt on a SystemC-like discrete-event kernel.
//
// This root package is the public façade: it re-exports everything needed
// to assemble and run a DPM-managed SoC, watch it through streaming
// Observers, cut runs short with StopCondition, regenerate the paper's
// Table 2 scenarios, generate seeded stochastic workloads (bursty, MMPP,
// periodic-with-jitter, heavy-tailed, CSV trace replay — see GenSpec and
// WorkloadSeed), execute grids on the concurrent cached batch engine, and
// rank policies across generated scenarios with RunTournament (the
// cmd/dpmarena CLI). Runs fast-forward across provably idle stretches by
// default — the kernel executes the periodic accounting directly instead
// of scheduling every empty instant, bit-identical to classic ticked
// execution (RunOptions.NoFastForward forces the latter for comparison).
// The engine's cache is a sharded bounded LRU with singleflight dedup
// (concurrent identical jobs collapse to one simulation), which is what
// the long-running cmd/dpmserve HTTP service builds on to serve
// simulation and tournament traffic. Plans whose jobs differ only in
// Horizon warm-start from a shared snapshot-forked session: the common
// trajectory prefix simulates once and each job's result is cut at its
// own horizon (Stats.Forked counts the replicates served this way),
// while every job keeps its own cache key. Caches compose
// into tiers (NewTieredCache): memory → disk → a shared hash-addressed
// result store served by cmd/dpmremote (NewRemoteCache speaks its
// versioned blob protocol), so a fleet of dpmserve replicas runs each
// distinct configuration once fleet-wide. Every tier stores one
// currency, CacheRecord: a versioned, checksummed, flate-compressed
// binary container of the result's canonical JSON, so cache hits and
// blob transfers copy pre-encoded bytes instead of re-marshalling, byte
// caps account exactly, and old JSON disk entries heal by
// re-simulation (see the README's "Cache format"). The serving fleet is
// observable end to end: both servers expose mergeable latency sketches
// and rolling rates on /statsz (internal/stats, watched live with
// cmd/dpmtop), and dpmserve can journal every handled request to an
// append-only NDJSON file (internal/journal) that the loadgen's -replay
// mode re-issues with the original request mix and arrival spacing:
//
//	cfg := godpm.Config{
//	    IPs:    []godpm.IPSpec{{Name: "cpu", Sequence: seq}},
//	    Policy: godpm.PolicyDPM,
//	}
//	res, err := godpm.RunWith(ctx, cfg, godpm.RunOptions{
//	    Observers: []godpm.Observer{godpm.NewVCDObserver(f)},
//	    StopWhen:  []godpm.StopCondition{godpm.StopOnBatteryEmpty()},
//	})
//
// See README.md for the package map, the scenario catalog, the experiment
// harness and the migration notes from the pre-2.0 Config.TraceVCD/
// TraceCSV fields. The implementation packages remain under internal/
// (sim, acpi, lem, gem, battery, thermal, rules, workload, bus, soc,
// engine, experiments, stats, journal), commands under cmd/ (dpmsim,
// dpmbatch, dpmarena, dpmserve, dpmremote, dpmtop, dpmtable, dpmsweep,
// dpmtrace, dpmreport, dpmbench) and runnable examples under examples/.
package godpm
