// Package godpm is a pure-Go reproduction of "SystemC Analysis of a New
// Dynamic Power Management Architecture" (Massimo Conti, DATE 2005): an
// ACPI-style dynamic power management architecture for systems-on-chip —
// a Power State Machine and Local Energy Manager per IP block, an optional
// Global Energy Manager arbitrating on battery status, chip temperature and
// static priorities — rebuilt on a SystemC-like discrete-event kernel.
//
// The public entry point is internal/core; the experiment harness that
// regenerates the paper's Table 1 and Table 2 lives in internal/experiments
// and is exercised by the benchmarks in bench_test.go. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package godpm
