// Tests of the tournament and generator surface of the public godpm
// façade: seeded stochastic workload generation, the scenario catalog and
// RunTournament must be fully usable without internal imports.
package godpm_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"godpm"
)

func TestGeneratorFacade(t *testing.T) {
	seed := godpm.NewSeed(21)
	if seed.Split("a") == seed.Split("b") {
		t.Fatal("seed splitting collapsed")
	}

	mm := godpm.DefaultMMPP(seed, 12)
	per := godpm.DefaultPeriodic(seed, 12)
	ht := godpm.DefaultHeavyTail(seed, 12)
	bu := godpm.DefaultBurst(3, 12)
	lo := godpm.LowActivity(3, 12)

	cfg := godpm.Config{
		IPs: []godpm.IPSpec{
			{Name: "mm", Gen: godpm.MMPPGen(mm)},
			{Name: "per", Gen: godpm.PeriodicGen(per)},
			{Name: "ht", Gen: godpm.HeavyTailGen(ht)},
			{Name: "bu", Gen: godpm.BurstGen(bu)},
			{Name: "lo", Gen: godpm.ClosedGen(lo)},
		},
		Policy: godpm.PolicyDPM,
	}
	r1, err := godpm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := godpm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if godpm.ResultDigest(r1) != godpm.ResultDigest(r2) {
		t.Fatal("generated config is not reproducible through the façade")
	}
	if r1.TasksDone != 5*12 {
		t.Fatalf("TasksDone = %d, want 60", r1.TasksDone)
	}
	// MissedDeadlines is consistent between disabled and tight deadlines.
	if godpm.MissedDeadlines(r1.Ledger, 0) != 0 {
		t.Error("disabled deadline reported misses")
	}
	if godpm.MissedDeadlines(r1.Ledger, godpm.Ns) != r1.Ledger.Len() {
		t.Error("1ns deadline did not miss every task")
	}
}

func TestWorkloadCSVFacade(t *testing.T) {
	seq := godpm.DefaultHeavyTail(godpm.NewSeed(4), 20).MustGenerate()
	var buf bytes.Buffer
	if err := godpm.ExportWorkloadCSV(&buf, seq); err != nil {
		t.Fatal(err)
	}
	back, err := godpm.ImportWorkloadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, back) {
		t.Fatal("CSV round trip altered the sequence")
	}
	// A replayed trace is a valid generated scenario.
	res, err := godpm.Run(godpm.Config{
		IPs: []godpm.IPSpec{{Name: "trace", Gen: godpm.TraceGen(back)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 20 {
		t.Fatalf("trace replay ran %d tasks, want 20", res.TasksDone)
	}
}

func TestSummarizeFacade(t *testing.T) {
	s := godpm.Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" || godpm.Summarize(nil).String() != "n/a" {
		t.Fatal("summary rendering broken")
	}
}

func TestTournamentFacade(t *testing.T) {
	pols := godpm.StandardPolicies()
	if len(pols) != 5 {
		t.Fatalf("standard lineup has %d policies", len(pols))
	}
	scens := godpm.ArenaScenarios(6)
	if len(scens) < 4 {
		t.Fatalf("catalog has %d scenarios", len(scens))
	}
	tour := godpm.Tournament{
		Scenarios: scens[:4],
		Policies:  []godpm.TournamentPolicy{pols[1], pols[0], pols[2]}, // alwayson, dpm, timeout
		Seeds:     []godpm.WorkloadSeed{godpm.NewSeed(1), godpm.NewSeed(2)},
		Baseline:  "alwayson",
		Deadline:  30 * godpm.Ms,
	}
	eng := godpm.NewEngine(godpm.EngineOptions{})
	res, err := godpm.RunTournament(context.Background(), eng, tour)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaderboard) != 3 || len(res.Cells) != 12 {
		t.Fatalf("leaderboard %d rows, %d cells", len(res.Leaderboard), len(res.Cells))
	}
	if res.Baseline != "alwayson" {
		t.Fatalf("baseline = %q", res.Baseline)
	}

	// All three renderings produce non-trivial output naming each policy.
	var lb, cells, js bytes.Buffer
	if err := res.WriteLeaderboardCSV(&lb); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCellsCSV(&cells); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	table := res.FormatLeaderboard()
	for _, out := range []string{lb.String(), cells.String(), js.String(), table} {
		for _, p := range []string{"dpm", "alwayson", "timeout"} {
			if !strings.Contains(out, p) {
				t.Fatalf("output misses policy %q:\n%s", p, out)
			}
		}
	}
	if lines := strings.Count(lb.String(), "\n"); lines != 4 {
		t.Fatalf("leaderboard CSV has %d lines, want header + 3 rows", lines)
	}
	if lines := strings.Count(cells.String(), "\n"); lines != 13 {
		t.Fatalf("cells CSV has %d lines, want header + 12 rows", lines)
	}
}
