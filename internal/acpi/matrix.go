package acpi

import (
	"fmt"
	"strings"

	"godpm/internal/power"
	"godpm/internal/sim"
)

// TransitionCostEntry is one cell of the full state-transition cost matrix.
type TransitionCostEntry struct {
	From, To State
	Latency  sim.Time
	EnergyJ  float64
}

// TransitionTable computes the complete NumStates×NumStates cost matrix for
// a profile — the "cost in terms of delay and power dissipation of the
// transition between two power states" the paper's DPM algorithm considers.
// Entries are ordered row-major by (From, To).
func TransitionTable(prof *power.Profile) []TransitionCostEntry {
	// A scratch PSM carries the cost model; the kernel is never run.
	k := sim.NewKernel()
	psm := NewPSM(k, "scratch", prof, ON1)
	out := make([]TransitionCostEntry, 0, NumStates*NumStates)
	for _, from := range AllStates() {
		for _, to := range AllStates() {
			lat, e := psm.TransitionCost(from, to)
			out = append(out, TransitionCostEntry{From: from, To: to, Latency: lat, EnergyJ: e})
		}
	}
	return out
}

// FormatTransitionMatrix renders the latency matrix as a text table
// (energies available via TransitionTable).
func FormatTransitionMatrix(prof *power.Profile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", "from\\to")
	for _, to := range AllStates() {
		fmt.Fprintf(&sb, " %9s", to)
	}
	sb.WriteString("\n")
	k := sim.NewKernel()
	psm := NewPSM(k, "scratch", prof, ON1)
	for _, from := range AllStates() {
		fmt.Fprintf(&sb, "%-8s", from)
		for _, to := range AllStates() {
			lat, _ := psm.TransitionCost(from, to)
			fmt.Fprintf(&sb, " %9s", lat)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
