package acpi

import (
	"strings"
	"testing"
	"testing/quick"

	"godpm/internal/power"
	"godpm/internal/sim"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		SoftOff: "SoftOff",
		SL4:     "SL4", SL3: "SL3", SL2: "SL2", SL1: "SL1",
		ON4: "ON4", ON3: "ON3", ON2: "ON2", ON1: "ON1",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), name)
		}
	}
}

func TestParseStateRoundTrip(t *testing.T) {
	for _, s := range AllStates() {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("ParseState(%q) = %v,%v", s.String(), got, err)
		}
	}
	if _, err := ParseState("ON9"); err == nil {
		t.Error("ParseState accepted bogus name")
	}
}

func TestStateClassification(t *testing.T) {
	for _, s := range AllStates() {
		if s.IsOn() && s.IsSleep() {
			t.Errorf("%s both on and sleep", s)
		}
	}
	if !ON1.IsOn() || !ON4.IsOn() || SL1.IsOn() || SoftOff.IsOn() {
		t.Error("IsOn misclassifies")
	}
	if !SL1.IsSleep() || !SL4.IsSleep() || ON1.IsSleep() || SoftOff.IsSleep() {
		t.Error("IsSleep misclassifies")
	}
}

func TestIndexRoundTrips(t *testing.T) {
	for i := 0; i < 4; i++ {
		if OnState(i).OnIndex() != i {
			t.Errorf("OnState(%d).OnIndex() = %d", i, OnState(i).OnIndex())
		}
	}
	for i := 0; i < 5; i++ {
		if SleepStateByIndex(i).SleepIndex() != i {
			t.Errorf("SleepStateByIndex(%d).SleepIndex() = %d", i, SleepStateByIndex(i).SleepIndex())
		}
	}
	if OnState(0) != ON1 || OnState(3) != ON4 {
		t.Error("OnState mapping wrong")
	}
	if SleepStateByIndex(0) != SL1 || SleepStateByIndex(4) != SoftOff {
		t.Error("SleepStateByIndex mapping wrong")
	}
}

func TestOnIndexPanicsForSleep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SL1.OnIndex()
}

func TestSleepIndexPanicsForOn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ON2.SleepIndex()
}

func newTestPSM(t *testing.T) (*sim.Kernel, *PSM) {
	t.Helper()
	k := sim.NewKernel()
	return k, NewPSM(k, "ip0", power.DefaultProfile(), ON1)
}

func TestPSMInitialState(t *testing.T) {
	_, p := newTestPSM(t)
	if p.State() != ON1 {
		t.Fatalf("initial state %v, want ON1", p.State())
	}
	if p.Transitioning().Read() {
		t.Fatal("new PSM should not be transitioning")
	}
}

func TestPSMTransitionLatencyAndState(t *testing.T) {
	k, p := newTestPSM(t)
	lat, err := p.Request(SL2)
	if err != nil {
		t.Fatal(err)
	}
	want := power.DefaultProfile().Sleep[SL2.SleepIndex()].EnterLatency
	if lat != want {
		t.Fatalf("latency %v, want %v", lat, want)
	}
	if err := k.Run(lat - 1); err != nil {
		t.Fatal(err)
	}
	if p.State() != ON1 || !p.Transitioning().Read() {
		t.Fatalf("mid-transition: state=%v transitioning=%v", p.State(), p.Transitioning().Read())
	}
	if err := k.Run(lat + 1); err != nil {
		t.Fatal(err)
	}
	if p.State() != SL2 || p.Transitioning().Read() {
		t.Fatalf("after transition: state=%v transitioning=%v", p.State(), p.Transitioning().Read())
	}
	if p.TransitionCount() != 1 {
		t.Fatalf("TransitionCount = %d", p.TransitionCount())
	}
}

func TestPSMRequestWhileTransitioningFails(t *testing.T) {
	k, p := newTestPSM(t)
	if _, err := p.Request(SL3); err != nil {
		t.Fatal(err)
	}
	// Before the transition completes, a second request must fail. The
	// check happens inside a process at a time strictly before completion.
	var second error
	e := k.NewEvent("probe")
	k.Method("probe", func() { _, second = p.Request(ON2) }).Sensitive(e).DontInitialize()
	e.Notify(1 * sim.Ns)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if second == nil {
		t.Fatal("Request during transition did not fail")
	}
}

func TestPSMRequestSameStateCompletesImmediately(t *testing.T) {
	k, p := newTestPSM(t)
	doneFired := false
	k.Method("w", func() { doneFired = true }).Sensitive(p.Done()).DontInitialize()
	lat, err := p.Request(ON1)
	if err != nil || lat != 0 {
		t.Fatalf("Request(same) = %v,%v", lat, err)
	}
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if !doneFired {
		t.Fatal("Done did not fire for degenerate request")
	}
	if p.TransitionCount() != 0 {
		t.Fatal("degenerate request counted as transition")
	}
}

func TestPSMInvalidTargetFails(t *testing.T) {
	_, p := newTestPSM(t)
	if _, err := p.Request(State(99)); err == nil {
		t.Fatal("invalid state accepted")
	}
}

func TestTransitionCostSymmetryAndClasses(t *testing.T) {
	_, p := newTestPSM(t)
	prof := power.DefaultProfile()

	// ON↔ON: per-step scaling cost, symmetric.
	lat12, e12 := p.TransitionCost(ON1, ON2)
	lat21, e21 := p.TransitionCost(ON2, ON1)
	if lat12 != lat21 || e12 != e21 {
		t.Error("ON↔ON cost not symmetric")
	}
	lat14, _ := p.TransitionCost(ON1, ON4)
	if lat14 != 3*prof.VScaleLatency {
		t.Errorf("ON1→ON4 latency %v, want 3 scaling steps", lat14)
	}

	// ON→sleep uses enter cost; sleep→ON uses wake cost.
	latEnter, eEnter := p.TransitionCost(ON1, SL3)
	if latEnter != prof.Sleep[2].EnterLatency || eEnter != prof.Sleep[2].EnterEnergy {
		t.Error("ON→SL3 cost mismatch")
	}
	latWake, eWake := p.TransitionCost(SL3, ON2)
	if latWake != prof.Sleep[2].WakeLatency || eWake != prof.Sleep[2].WakeEnergy {
		t.Error("SL3→ON cost mismatch")
	}

	// sleep→sleep passes through ON.
	latSS, eSS := p.TransitionCost(SL1, SL4)
	if latSS != prof.Sleep[0].WakeLatency+prof.Sleep[3].EnterLatency {
		t.Errorf("SL1→SL4 latency %v", latSS)
	}
	if eSS != prof.Sleep[0].WakeEnergy+prof.Sleep[3].EnterEnergy {
		t.Errorf("SL1→SL4 energy %v", eSS)
	}

	// Identity is free.
	if l, e := p.TransitionCost(ON3, ON3); l != 0 || e != 0 {
		t.Error("identity transition not free")
	}
}

func TestPSMEnergyAccounting(t *testing.T) {
	k, p := newTestPSM(t)
	var sunk float64
	p.OnEnergy(func(j float64) { sunk += j })
	if _, err := p.Request(SL1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	wantE := power.DefaultProfile().Sleep[0].EnterEnergy
	if p.TransitionEnergy() != wantE || sunk != wantE {
		t.Fatalf("energy accounted %v / sunk %v, want %v", p.TransitionEnergy(), sunk, wantE)
	}
}

func TestPSMContextLossThroughSoftOff(t *testing.T) {
	k, p := newTestPSM(t)
	if _, err := p.Request(SoftOff); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if !p.ContextLost() {
		t.Fatal("soft-off did not set ContextLost")
	}
	p.ClearContextLost()
	if p.ContextLost() {
		t.Fatal("ClearContextLost did not clear")
	}
}

func TestPSMStatePower(t *testing.T) {
	k, p := newTestPSM(t)
	prof := power.DefaultProfile()
	if p.StatePower() != prof.IdlePower(prof.On[0]) {
		t.Fatal("ON1 state power should be ON1 idle power")
	}
	if _, err := p.Request(SL4); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if p.StatePower() != prof.Sleep[3].Power {
		t.Fatal("SL4 state power mismatch")
	}
}

func TestPSMOperatingPoint(t *testing.T) {
	_, p := newTestPSM(t)
	if p.OperatingPoint().Name != "ON1" {
		t.Fatalf("OperatingPoint = %v", p.OperatingPoint().Name)
	}
}

// Property: any random walk over valid states keeps the PSM consistent —
// after each completed transition the state equals the request, the
// transitioning flag is clear, and accumulated energy equals the sum of the
// per-transition costs.
func TestPSMPropertyRandomWalk(t *testing.T) {
	f := func(steps []uint8) bool {
		if len(steps) > 30 {
			steps = steps[:30]
		}
		k := sim.NewKernel()
		p := NewPSM(k, "ip", power.DefaultProfile(), ON1)
		var wantEnergy float64
		cur := ON1
		ok := true
		k.Thread("driver", func(c *sim.Ctx) {
			for _, s := range steps {
				target := State(int(s) % NumStates)
				_, e := p.TransitionCost(cur, target)
				if _, err := p.Request(target); err != nil {
					ok = false
					return
				}
				c.Wait(p.Done())
				if p.State() != target || p.Transitioning().Read() {
					ok = false
					return
				}
				if target != cur {
					wantEnergy += e
				}
				cur = target
			}
		})
		if err := k.Run(sim.MaxTime); err != nil {
			return false
		}
		diff := p.TransitionEnergy() - wantEnergy
		if diff < 0 {
			diff = -diff
		}
		return ok && diff < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitionTableComplete(t *testing.T) {
	prof := power.DefaultProfile()
	entries := TransitionTable(prof)
	if len(entries) != NumStates*NumStates {
		t.Fatalf("entries = %d, want %d", len(entries), NumStates*NumStates)
	}
	seen := map[[2]State]bool{}
	for _, e := range entries {
		key := [2]State{e.From, e.To}
		if seen[key] {
			t.Fatalf("duplicate entry %v→%v", e.From, e.To)
		}
		seen[key] = true
		if e.From == e.To {
			if e.Latency != 0 || e.EnergyJ != 0 {
				t.Errorf("identity %v not free", e.From)
			}
			continue
		}
		if e.Latency <= 0 {
			t.Errorf("%v→%v has non-positive latency", e.From, e.To)
		}
		if e.EnergyJ <= 0 {
			t.Errorf("%v→%v has non-positive energy", e.From, e.To)
		}
	}
}

func TestTransitionTableDeeperSleepCostsMoreToWake(t *testing.T) {
	prof := power.DefaultProfile()
	entries := TransitionTable(prof)
	cost := func(from, to State) sim.Time {
		for _, e := range entries {
			if e.From == from && e.To == to {
				return e.Latency
			}
		}
		t.Fatalf("missing %v→%v", from, to)
		return 0
	}
	if !(cost(SL1, ON1) < cost(SL2, ON1) && cost(SL2, ON1) < cost(SL3, ON1) &&
		cost(SL3, ON1) < cost(SL4, ON1) && cost(SL4, ON1) < cost(SoftOff, ON1)) {
		t.Fatal("wake latency not increasing with sleep depth")
	}
}

func TestFormatTransitionMatrix(t *testing.T) {
	out := FormatTransitionMatrix(power.DefaultProfile())
	for _, want := range []string{"from\\to", "SoftOff", "ON1", "SL4"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q", want)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != NumStates+1 {
		t.Errorf("matrix has %d lines, want %d", lines, NumStates+1)
	}
}
