package acpi

import (
	"fmt"

	"godpm/internal/power"
	"godpm/internal/sim"
)

// PSM is the Power State Machine attached to one IP block. It owns the
// authoritative power state, models the latency and energy of every state
// transition, and exposes the state (and a "transition in progress" flag)
// as signals the functional block and the LEM are sensitive to.
type PSM struct {
	k    *sim.Kernel
	name string
	prof *power.Profile

	state         *sim.Signal[State]
	transitioning *sim.Signal[bool]
	done          *sim.Event
	fire          *sim.Event
	target        State

	transitions      int
	transitionEnergy float64
	contextLost      bool

	// onEnergy, if set, is invoked for every quantum of transition energy;
	// the SoC wires it to the energy meter / battery / thermal models.
	onEnergy func(joules float64)
}

// NewPSM creates a PSM in the given initial state.
func NewPSM(k *sim.Kernel, name string, prof *power.Profile, initial State) *PSM {
	p := &PSM{
		k: k, name: name, prof: prof,
		state:         sim.NewSignal(k, name+".state", initial),
		transitioning: sim.NewSignal(k, name+".transitioning", false),
		done:          k.NewEvent(name + ".transition_done"),
		fire:          k.NewEvent(name + ".transition_fire"),
	}
	k.Method(name+".psm", p.completeTransition).Sensitive(p.fire).DontInitialize()
	return p
}

// Name returns the PSM name.
func (p *PSM) Name() string { return p.name }

// State returns the current stable state. During a transition it still
// reads the origin state; use Transitioning to distinguish.
func (p *PSM) State() State { return p.state.Read() }

// StateSignal exposes the state for sensitivity and tracing.
func (p *PSM) StateSignal() *sim.Signal[State] { return p.state }

// Transitioning exposes the transition-in-progress flag.
func (p *PSM) Transitioning() *sim.Signal[bool] { return p.transitioning }

// Done fires (delta-notified) when a requested transition completes,
// including the degenerate request to the current state.
func (p *PSM) Done() *sim.Event { return p.done }

// OnEnergy registers the sink for transition energy.
func (p *PSM) OnEnergy(fn func(joules float64)) { p.onEnergy = fn }

// TransitionCount returns how many real transitions completed.
func (p *PSM) TransitionCount() int { return p.transitions }

// TransitionEnergy returns the total joules spent in transitions.
func (p *PSM) TransitionEnergy() float64 { return p.transitionEnergy }

// ContextLost reports whether the IP passed through soft-off since the last
// ClearContextLost (the functional block must then restore state).
func (p *PSM) ContextLost() bool { return p.contextLost }

// ClearContextLost acknowledges a context loss.
func (p *PSM) ClearContextLost() { p.contextLost = false }

// TransitionCost returns the latency and energy of moving between two
// states, per the profile's characterisation:
//
//   - ON_i → ON_j: one voltage/frequency scaling step per level crossed;
//   - ON → sleep: the sleep state's enter cost;
//   - sleep → ON: the sleep state's wake cost;
//   - sleep → sleep (or soft-off): wake from the first plus enter of the
//     second (the hardware passes through an ON state).
func (p *PSM) TransitionCost(from, to State) (sim.Time, float64) {
	if from == to {
		return 0, 0
	}
	switch {
	case from.IsOn() && to.IsOn():
		steps := from.OnIndex() - to.OnIndex()
		if steps < 0 {
			steps = -steps
		}
		return p.prof.VScaleLatency * sim.Time(steps), p.prof.VScaleEnergy * float64(steps)
	case from.IsOn():
		s := p.prof.Sleep[to.SleepIndex()]
		return s.EnterLatency, s.EnterEnergy
	case to.IsOn():
		s := p.prof.Sleep[from.SleepIndex()]
		return s.WakeLatency, s.WakeEnergy
	default:
		a := p.prof.Sleep[from.SleepIndex()]
		b := p.prof.Sleep[to.SleepIndex()]
		return a.WakeLatency + b.EnterLatency, a.WakeEnergy + b.EnterEnergy
	}
}

// Request begins a transition to target. It returns the transition latency.
// Requesting the current state completes immediately (Done still fires, as
// a delta notification). Requesting while a transition is in progress is a
// protocol violation by the LEM and returns an error.
func (p *PSM) Request(target State) (sim.Time, error) {
	if int(target) < 0 || int(target) >= NumStates {
		return 0, fmt.Errorf("acpi: %s: invalid target state %d", p.name, int(target))
	}
	if p.transitioning.Read() {
		return 0, fmt.Errorf("acpi: %s: transition already in progress", p.name)
	}
	cur := p.state.Read()
	if target == cur {
		p.done.NotifyDelta()
		return 0, nil
	}
	lat, _ := p.TransitionCost(cur, target)
	p.target = target
	p.transitioning.Write(true)
	if lat == 0 {
		p.fire.NotifyDelta()
	} else {
		p.fire.Notify(lat)
	}
	return lat, nil
}

// completeTransition lands in the target state and accounts the energy.
func (p *PSM) completeTransition() {
	cur := p.state.Read()
	_, energy := p.TransitionCost(cur, p.target)
	p.transitions++
	p.transitionEnergy += energy
	if p.onEnergy != nil && energy > 0 {
		p.onEnergy(energy)
	}
	if cur == SoftOff || p.target == SoftOff {
		p.contextLost = true
	}
	p.state.Write(p.target)
	p.transitioning.Write(false)
	p.done.NotifyDelta()
}

// OperatingPoint returns the power profile's operating point for the
// current state; it panics when the PSM is not in an ON state.
func (p *PSM) OperatingPoint() power.OperatingPoint {
	return p.prof.On[p.State().OnIndex()]
}

// StatePower returns the residual power of the current state when idle: the
// profile's idle power for ON states, the sleep-state power otherwise.
func (p *PSM) StatePower() float64 {
	s := p.State()
	if s.IsOn() {
		return p.prof.IdlePower(p.prof.On[s.OnIndex()])
	}
	return p.prof.Sleep[s.SleepIndex()].Power
}

// Profile returns the power characterisation this PSM uses.
func (p *PSM) Profile() *power.Profile { return p.prof }
