// Package acpi defines the ACPI-style power states of the paper's Power
// State Machine (PSM) — soft-off, four sleep states SL1..SL4 and four
// execution states ON1..ON4 with decreasing speed and power — and the PSM
// component that owns the state, enforces transition costs and reports the
// actual state to the functional block.
package acpi

import "fmt"

// State is one ACPI power state. Ordering is by increasing capability:
// SoftOff < SL4 < ... < SL1 < ON4 < ... < ON1.
type State int

// The ten states of the paper's PSM.
const (
	SoftOff State = iota
	SL4
	SL3
	SL2
	SL1
	ON4
	ON3
	ON2
	ON1
	NumStates = int(ON1) + 1
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case SoftOff:
		return "SoftOff"
	case SL4, SL3, SL2, SL1:
		return fmt.Sprintf("SL%d", 5-int(s))
	case ON4, ON3, ON2, ON1:
		return fmt.Sprintf("ON%d", int(ON1)-int(s)+1)
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// IsOn reports whether the state is an execution state.
func (s State) IsOn() bool { return s >= ON4 && s <= ON1 }

// IsSleep reports whether the state is one of SL1..SL4.
func (s State) IsSleep() bool { return s >= SL4 && s <= SL1 }

// OnIndex returns 0..3 for ON1..ON4; it panics for non-ON states.
func (s State) OnIndex() int {
	if !s.IsOn() {
		panic("acpi: OnIndex on non-ON state " + s.String())
	}
	return int(ON1) - int(s)
}

// SleepIndex returns 0..4 for SL1..SL4 and soft-off (matching
// power.Profile.Sleep); it panics for ON states.
func (s State) SleepIndex() int {
	switch {
	case s.IsSleep():
		return int(SL1) - int(s)
	case s == SoftOff:
		return 4
	default:
		panic("acpi: SleepIndex on ON state " + s.String())
	}
}

// OnState returns the execution state with the given index (0 → ON1).
func OnState(index int) State {
	if index < 0 || index > 3 {
		panic(fmt.Sprintf("acpi: OnState index %d out of range", index))
	}
	return State(int(ON1) - index)
}

// SleepStateByIndex returns SL1..SL4 for 0..3 and SoftOff for 4.
func SleepStateByIndex(index int) State {
	switch {
	case index >= 0 && index <= 3:
		return State(int(SL1) - index)
	case index == 4:
		return SoftOff
	default:
		panic(fmt.Sprintf("acpi: SleepStateByIndex %d out of range", index))
	}
}

// ParseState converts a paper-style name ("ON3", "SL1", "SoftOff") to a
// State.
func ParseState(name string) (State, error) {
	for s := State(0); int(s) < NumStates; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("acpi: unknown state %q", name)
}

// AllStates returns every state in capability order (SoftOff first).
func AllStates() []State {
	out := make([]State, NumStates)
	for i := range out {
		out[i] = State(i)
	}
	return out
}
