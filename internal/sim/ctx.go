package sim

// Ctx is the blocking interface handed to thread processes. All methods must
// be called from the owning thread goroutine.
type Ctx struct {
	k *Kernel
	p *process
}

// Now returns the current simulation time.
func (c *Ctx) Now() Time { return c.k.now }

// Kernel returns the owning kernel (for creating events on the fly).
func (c *Ctx) Kernel() *Kernel { return c.k }

// Name returns the name of the running thread process.
func (c *Ctx) Name() string { return c.p.name }

// yieldToKernel parks the goroutine and returns when the kernel resumes it,
// panicking with killError if the kernel is shutting the thread down.
func (c *Ctx) yieldToKernel() {
	c.p.yield <- struct{}{}
	<-c.p.resume
	if c.p.killed {
		panic(killError{name: c.p.name})
	}
}

// Wait blocks until ev fires.
func (c *Ctx) Wait(ev *Event) {
	ev.subscribeDynamic(c.p)
	c.p.waitSet = append(c.p.waitSet, ev)
	c.yieldToKernel()
}

// WaitAny blocks until any of the events fires and returns the one that did.
func (c *Ctx) WaitAny(evs ...*Event) *Event {
	if len(evs) == 0 {
		panic("sim: WaitAny with no events")
	}
	for _, e := range evs {
		e.subscribeDynamic(c.p)
		c.p.waitSet = append(c.p.waitSet, e)
	}
	c.yieldToKernel()
	return c.p.lastTrigger
}

// WaitAll blocks until every one of the events has fired at least once
// (in any order), like SystemC's wait(e1 & e2). Events that fire multiple
// times before the last one arrives still count once.
func (c *Ctx) WaitAll(evs ...*Event) {
	if len(evs) == 0 {
		panic("sim: WaitAll with no events")
	}
	pending := make(map[*Event]bool, len(evs))
	for _, e := range evs {
		pending[e] = true
	}
	for len(pending) > 0 {
		remaining := make([]*Event, 0, len(pending))
		for e := range pending {
			remaining = append(remaining, e)
		}
		fired := c.WaitAny(remaining...)
		delete(pending, fired)
	}
}

// WaitTime blocks for the given simulated duration. A non-positive duration
// panics: a zero-length wait would not advance the scheduler deterministically.
func (c *Ctx) WaitTime(d Time) {
	if d <= 0 {
		panic("sim: WaitTime with non-positive duration")
	}
	if c.p.timer == nil {
		c.p.timer = c.k.NewEvent(c.p.name + ".timer")
	}
	c.p.timer.Notify(d)
	c.Wait(c.p.timer)
}

// WaitDelta blocks for one delta cycle.
func (c *Ctx) WaitDelta() {
	if c.p.timer == nil {
		c.p.timer = c.k.NewEvent(c.p.name + ".timer")
	}
	c.p.timer.NotifyDelta()
	c.Wait(c.p.timer)
}

// WaitUntil repeatedly waits on ev until cond() is true. cond is checked
// before the first wait, so it returns immediately when already satisfied.
func (c *Ctx) WaitUntil(ev *Event, cond func() bool) {
	for !cond() {
		c.Wait(ev)
	}
}
