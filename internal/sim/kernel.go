package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Kernel owns simulated time, the event queues and every process, event and
// signal of one simulation. It is not safe for concurrent use; all model
// code runs on the kernel's scheduling thread.
type Kernel struct {
	now Time

	timed      timedHeap // future timed notifications
	deltaQueue []*Event  // events notified for the next delta cycle
	runnable   []*process
	updates    []updater // signals with a pending update this delta

	procs  []*process
	events []*Event

	stopRequested bool
	started       bool
	deltaCount    uint64
	threadPanic   error

	// MaxDeltasPerInstant guards against delta-cycle livelock (two method
	// processes re-notifying each other forever at the same time). Zero
	// means the default of 1,000,000.
	MaxDeltasPerInstant int

	// onUpdate hooks run after each update phase; the trace package uses
	// them to sample changed signals.
	onUpdate []func(Time)
}

// updater is implemented by signals: apply the pending write and notify the
// changed event if the value actually changed.
type updater interface{ applyUpdate() }

// NewKernel returns a kernel at time zero with empty queues.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// DeltaCount returns the number of delta cycles executed so far; useful in
// tests asserting scheduling behaviour.
func (k *Kernel) DeltaCount() uint64 { return k.deltaCount }

// NewEvent creates a named event owned by this kernel.
func (k *Kernel) NewEvent(name string) *Event {
	e := &Event{k: k, name: name, id: len(k.events), pendingAt: pendingNone}
	k.events = append(k.events, e)
	return e
}

// Method registers a method process: fn is invoked once per activation and
// must not block. Sensitivity is configured on the returned handle.
func (k *Kernel) Method(name string, fn func()) *Proc {
	p := &process{k: k, name: name, id: len(k.procs), kind: kindMethod, methodFn: fn}
	k.procs = append(k.procs, p)
	return &Proc{p: p}
}

// Thread registers a thread process: fn runs on its own goroutine,
// co-operatively scheduled, and may block via the Ctx wait primitives.
// When fn returns the process terminates.
func (k *Kernel) Thread(name string, fn func(*Ctx)) *Proc {
	p := &process{
		k: k, name: name, id: len(k.procs), kind: kindThread, threadFn: fn,
		resume: make(chan struct{}), yield: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	return &Proc{p: p}
}

// Stop requests the simulation to halt at the end of the current delta
// cycle; Run returns normally.
func (k *Kernel) Stop() { k.stopRequested = true }

// ErrDeltaLivelock is returned by Run when one simulated instant exceeds
// MaxDeltasPerInstant delta cycles.
var ErrDeltaLivelock = errors.New("sim: delta-cycle livelock detected")

// Run advances the simulation until (and including) time `until`, until the
// event queues drain, or until Stop is called. It may be called repeatedly
// to continue the same simulation. On the first call every process without
// DontInitialize is activated once at the current time.
func (k *Kernel) Run(until Time) error {
	if !k.started {
		k.started = true
		for _, p := range k.procs {
			if !p.dontInit {
				k.makeRunnable(p)
			}
		}
	}
	k.stopRequested = false

	maxDeltas := k.MaxDeltasPerInstant
	if maxDeltas <= 0 {
		maxDeltas = 1_000_000
	}

	deltasThisInstant := 0
	for {
		// Evaluation phase.
		if len(k.runnable) > 0 {
			run := k.runnable
			k.runnable = nil
			for _, p := range run {
				p.runnable = false
				if p.terminated {
					continue
				}
				p.run()
				if k.threadPanic != nil {
					err := k.threadPanic
					k.threadPanic = nil
					return err
				}
			}
		}

		// Update phase.
		if len(k.updates) > 0 {
			ups := k.updates
			k.updates = nil
			for _, u := range ups {
				u.applyUpdate()
			}
			for _, h := range k.onUpdate {
				h(k.now)
			}
		}

		// Delta-notification phase.
		if len(k.deltaQueue) > 0 {
			k.deltaCount++
			deltasThisInstant++
			if deltasThisInstant > maxDeltas {
				return fmt.Errorf("%w at t=%s", ErrDeltaLivelock, k.now)
			}
			dq := k.deltaQueue
			k.deltaQueue = nil
			for _, e := range dq {
				if e.pendingDelta { // not cancelled meanwhile
					e.fire()
				}
			}
		}

		if k.stopRequested {
			return nil
		}
		if len(k.runnable) > 0 {
			continue // more work in this instant
		}

		// Advance time to the next valid timed notification group.
		nextAt, ok := k.peekValidTimed()
		if !ok {
			// Queues drained: park time at the requested horizon (unless the
			// caller asked for "run forever", where the drain time stands).
			if until < MaxTime && until > k.now {
				k.now = until
			}
			return nil
		}
		if nextAt > until {
			// Park time at `until` so Now() reflects the requested horizon.
			if until > k.now {
				k.now = until
			}
			return nil
		}
		k.now = nextAt
		deltasThisInstant = 0
		for {
			ent, ok := k.popValidTimedAt(nextAt)
			if !ok {
				break
			}
			ent.fire()
		}
	}
}

// makeRunnable queues p for the current/next evaluation phase, once.
func (k *Kernel) makeRunnable(p *process) {
	if p.runnable || p.terminated {
		return
	}
	p.runnable = true
	k.runnable = append(k.runnable, p)
}

// scheduleUpdate queues a signal for the update phase.
func (k *Kernel) scheduleUpdate(u updater) {
	k.updates = append(k.updates, u)
}

// AfterUpdate registers a hook invoked after every update phase. Intended
// for tracing infrastructure.
func (k *Kernel) AfterUpdate(h func(Time)) { k.onUpdate = append(k.onUpdate, h) }

// Shutdown unwinds every live thread goroutine. Call it when a kernel is
// abandoned before its threads have returned, e.g. via defer in tests.
// After Shutdown the kernel must not be run again.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		if p.kind == kindThread && p.started && !p.terminated {
			p.killed = true
			p.resume <- struct{}{}
			<-p.yield
		}
	}
}

// ---- timed notification heap ----

type timedEntry struct {
	at  Time
	seq uint64 // FIFO tiebreak for equal times
	gen uint64 // matches Event.pendingGen or the entry is stale
	ev  *Event
}

type timedHeap struct {
	entries []timedEntry
	seq     uint64
}

func (h *timedHeap) Len() int { return len(h.entries) }
func (h *timedHeap) Less(i, j int) bool {
	if h.entries[i].at != h.entries[j].at {
		return h.entries[i].at < h.entries[j].at
	}
	return h.entries[i].seq < h.entries[j].seq
}
func (h *timedHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *timedHeap) Push(x any)    { h.entries = append(h.entries, x.(timedEntry)) }
func (h *timedHeap) Pop() any {
	old := h.entries
	n := len(old)
	x := old[n-1]
	h.entries = old[:n-1]
	return x
}

func (k *Kernel) scheduleTimed(e *Event, at Time, gen uint64) {
	k.timed.seq++
	heap.Push(&k.timed, timedEntry{at: at, seq: k.timed.seq, gen: gen, ev: e})
}

// peekValidTimed skips stale heap entries and returns the next valid time.
func (k *Kernel) peekValidTimed() (Time, bool) {
	for k.timed.Len() > 0 {
		top := k.timed.entries[0]
		if top.ev.pendingGen == top.gen && top.ev.pendingAt == top.at {
			return top.at, true
		}
		heap.Pop(&k.timed)
	}
	return 0, false
}

// popValidTimedAt pops the next valid entry if it is scheduled exactly at t.
func (k *Kernel) popValidTimedAt(t Time) (*Event, bool) {
	for k.timed.Len() > 0 {
		top := k.timed.entries[0]
		valid := top.ev.pendingGen == top.gen && top.ev.pendingAt == top.at
		if !valid {
			heap.Pop(&k.timed)
			continue
		}
		if top.at != t {
			return nil, false
		}
		heap.Pop(&k.timed)
		return top.ev, true
	}
	return nil, false
}
