package sim

import (
	"errors"
	"fmt"
)

// Kernel owns simulated time, the event queues and every process, event and
// signal of one simulation. It is not safe for concurrent use; all model
// code runs on the kernel's scheduling thread.
//
// The scheduling hot path is allocation-free in steady state: the timed
// queue is a concrete value-slice heap (timedQueue), and the runnable,
// delta and update queues each ping-pong between two retained buffers
// instead of re-allocating every cycle, so per-event and per-delta cost is
// pure pointer work once the buffers have grown to the model's working set.
type Kernel struct {
	now Time

	timed timedQueue // future timed notifications

	// Phase queues with their retained spares. Each phase swaps the active
	// queue for the (emptied) spare before draining, so appends made while
	// draining land in the other buffer and neither is ever re-allocated.
	deltaQueue []*Event // events notified for the next delta cycle
	deltaSpare []*Event
	runnable   []*process
	runSpare   []*process
	updates    []updater // signals with a pending update this delta
	updSpare   []updater

	procs  []*process
	events []*Event

	stopRequested bool
	started       bool
	deltaCount    uint64
	threadPanic   error

	// MaxDeltasPerInstant guards against delta-cycle livelock (two method
	// processes re-notifying each other forever at the same time). Zero
	// means the default of 1,000,000.
	MaxDeltasPerInstant int

	// onUpdate hooks run after each update phase; the trace package uses
	// them to sample changed signals.
	onUpdate []func(Time)

	// gap is the registered idle fast-forward subscriber (GapPeriodic);
	// ffInstants counts the instants executed through the gap path.
	gap        gapSub
	ffInstants uint64
}

// gapSub is a periodic process that opted into idle fast-forward: while its
// tick event is the only live timed notification, the kernel calls body at
// interval steps directly instead of going through the heap/fire/eval
// machinery for every empty instant.
type gapSub struct {
	ev       *Event
	interval Time
	body     func()
}

// updater is implemented by signals: apply the pending write and notify the
// changed event if the value actually changed. Implementations are pointers
// (so queueing one is a boxing-free interface conversion) and must not
// allocate — the hot-path allocation tests pin this.
type updater interface{ applyUpdate() }

// NewKernel returns a kernel at time zero with empty queues.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// DeltaCount returns the number of delta cycles executed so far; useful in
// tests asserting scheduling behaviour.
func (k *Kernel) DeltaCount() uint64 { return k.deltaCount }

// NewEvent creates a named event owned by this kernel.
func (k *Kernel) NewEvent(name string) *Event {
	e := &Event{k: k, name: name, id: len(k.events), pendingAt: pendingNone}
	k.events = append(k.events, e)
	return e
}

// Method registers a method process: fn is invoked once per activation and
// must not block. Sensitivity is configured on the returned handle.
func (k *Kernel) Method(name string, fn func()) *Proc {
	p := &process{k: k, name: name, id: len(k.procs), kind: kindMethod, methodFn: fn}
	k.procs = append(k.procs, p)
	return &Proc{p: p}
}

// Thread registers a thread process: fn runs on its own goroutine,
// co-operatively scheduled, and may block via the Ctx wait primitives.
// When fn returns the process terminates.
func (k *Kernel) Thread(name string, fn func(*Ctx)) *Proc {
	p := &process{
		k: k, name: name, id: len(k.procs), kind: kindThread, threadFn: fn,
		resume: make(chan struct{}), yield: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	return &Proc{p: p}
}

// Stop requests the simulation to halt at the end of the current delta
// cycle; Run returns normally.
func (k *Kernel) Stop() { k.stopRequested = true }

// GapPeriodic opts a periodic method process into idle fast-forward. The
// registered event must re-notify itself every `interval` from its own
// method body, have that method as its only subscriber, and no dynamic
// waiters. Whenever the event is the sole live timed notification at an
// instant — no process runnable, no delta pending, nothing else scheduled
// at or before it — the kernel stops round-tripping through the heap and
// instead calls body at interval steps in a tight loop (the "gap"),
// applying signal updates inline after each call. The loop exits, exactly
// reproducing the ticked phase order, as soon as a call makes a process
// runnable, queues a delta, schedules a timed notification, requests a
// stop, or the next step would reach another live notification or the run
// horizon; on exit the event is re-notified at interval so the heap state
// matches a ticked run's.
//
// body must perform the same work as the event's method except the
// self re-notification (which the kernel takes over during the gap).
// Results are then bit-identical to a ticked run: the same calls happen at
// the same instants in the same order — only the per-instant scheduling
// machinery is skipped. At most one subscriber can register.
func (k *Kernel) GapPeriodic(ev *Event, interval Time, body func()) {
	if k.gap.ev != nil {
		panic("sim: GapPeriodic registered twice")
	}
	if ev == nil || interval <= 0 || body == nil {
		panic("sim: GapPeriodic needs an event, a positive interval and a body")
	}
	k.gap = gapSub{ev: ev, interval: interval, body: body}
}

// FastForwardedInstants returns how many instants were executed through
// the gap fast-forward path (0 when no GapPeriodic subscriber is
// registered or the model never went quiescent).
func (k *Kernel) FastForwardedInstants() uint64 { return k.ffInstants }

// QuiescentUntil returns the earliest live timed notification other than
// the gap subscriber's tick — the horizon up to which the kernel can prove
// nothing but the periodic subscriber will run — and MaxTime when no such
// notification is pending. Diagnostic; O(n) over the timed queue.
func (k *Kernel) QuiescentUntil() Time {
	return k.timed.minLiveExcept(k.gap.ev)
}

// ErrDeltaLivelock is returned by Run when one simulated instant exceeds
// MaxDeltasPerInstant delta cycles.
var ErrDeltaLivelock = errors.New("sim: delta-cycle livelock detected")

// Run advances the simulation until (and including) time `until`, until the
// event queues drain, or until Stop is called. It may be called repeatedly
// to continue the same simulation. On the first call every process without
// DontInitialize is activated once at the current time.
func (k *Kernel) Run(until Time) error {
	if !k.started {
		k.started = true
		for _, p := range k.procs {
			if !p.dontInit {
				k.makeRunnable(p)
			}
		}
	}
	k.stopRequested = false

	maxDeltas := k.MaxDeltasPerInstant
	if maxDeltas <= 0 {
		maxDeltas = 1_000_000
	}

	deltasThisInstant := 0
	// skipEval makes one iteration resume at the update phase: the gap
	// fast-forward sets it when a catch-up body left processes runnable, so
	// the pending updates and deltas of that instant are processed before
	// those processes run — exactly the ticked phase order.
	skipEval := false
	for {
		// Evaluation phase.
		if len(k.runnable) > 0 && !skipEval {
			run := k.runnable
			k.runnable = k.runSpare[:0]
			for _, p := range run {
				p.runnable = false
				if p.terminated {
					continue
				}
				p.run()
				if k.threadPanic != nil {
					err := k.threadPanic
					k.threadPanic = nil
					k.runSpare = run[:0]
					return err
				}
			}
			k.runSpare = run[:0]
		}
		skipEval = false

		// Update phase.
		if len(k.updates) > 0 {
			k.applyUpdates()
		}

		// Delta-notification phase.
		if len(k.deltaQueue) > 0 {
			k.deltaCount++
			deltasThisInstant++
			if deltasThisInstant > maxDeltas {
				return fmt.Errorf("%w at t=%s", ErrDeltaLivelock, k.now)
			}
			dq := k.deltaQueue
			k.deltaQueue = k.deltaSpare[:0]
			for _, e := range dq {
				if e.pendingDelta { // not cancelled meanwhile
					e.fire()
				}
			}
			k.deltaSpare = dq[:0]
		}

		if k.stopRequested {
			return nil
		}
		if len(k.runnable) > 0 {
			continue // more work in this instant
		}

		// Advance time to the next live timed notification group. nextTime
		// prunes dead entries and validates the top once; the pop loop then
		// takes entries straight off the root without re-validating them —
		// the merged peek/pop path.
		nextAt, ok := k.timed.nextTime()
		if !ok {
			// Queues drained: park time at the requested horizon (unless the
			// caller asked for "run forever", where the drain time stands).
			if until < MaxTime && until > k.now {
				k.now = until
			}
			return nil
		}
		if nextAt > until {
			// Park time at `until` so Now() reflects the requested horizon.
			if until > k.now {
				k.now = until
			}
			return nil
		}
		k.now = nextAt
		deltasThisInstant = 0
		first := k.timed.popTop().ev
		// Clear the pending notification *before* fire: the entry has
		// already left the heap, so fire must not count it stale.
		first.pendingAt = pendingNone
		if first == k.gap.ev && k.gap.body != nil {
			if t2, live := k.timed.nextTime(); !live || t2 > nextAt {
				// The gap subscriber owns this instant exclusively: run the
				// idle fast-forward instead of firing through the heap.
				skipEval = k.fastForward(t2, live, until)
				continue
			}
		}
		first.fire()
		for {
			at, ok := k.timed.nextTime()
			if !ok || at != nextAt {
				break
			}
			ev := k.timed.popTop().ev
			ev.pendingAt = pendingNone
			ev.fire()
		}
	}
}

// fastForward executes the gap subscriber's catch-up body at interval
// steps starting at the current instant, strictly before the next other
// live notification (`t2` when live) and never past `until`. The
// subscriber's pending notification has already been popped; on every
// exit path the event is re-notified at interval, restoring the heap
// state a ticked run would have. It returns true when the breaking body
// call left processes runnable, in which case the caller must resume at
// the update phase so the instant's phases complete in ticked order.
//
// The loop is the skip-path the 0-alloc test pins: per instant it is one
// indirect call, the inline update phase and a handful of compares.
func (k *Kernel) fastForward(t2 Time, live bool, until Time) (skipEval bool) {
	g := &k.gap
	seq0 := k.timed.seqCount()
	for {
		g.body()
		k.ffInstants++
		if len(k.runnable) > 0 || k.stopRequested || k.timed.seqCount() != seq0 ||
			len(k.deltaQueue) > 0 {
			// The body did more than write signals: leave its updates
			// unapplied and let the main loop run the update/delta/stop
			// phases of this instant (eval is skipped when something is
			// runnable, so phase order matches a ticked instant).
			skipEval = len(k.runnable) > 0
			break
		}
		if len(k.updates) > 0 {
			k.applyUpdates()
			if len(k.deltaQueue) > 0 {
				// A signal actually changed value: fire its delta through
				// the main loop (eval and update are empty, so resuming at
				// the top is the ticked order).
				break
			}
		}
		next := k.now + g.interval
		if next > until || (live && next >= t2) {
			// The next step is no longer exclusively ours.
			break
		}
		k.now = next
	}
	g.ev.Notify(g.interval)
	return skipEval
}

// applyUpdates drains the update queue — the update phase, shared by the
// main loop and the gap fast-forward so both apply writes identically.
func (k *Kernel) applyUpdates() {
	ups := k.updates
	k.updates = k.updSpare[:0]
	for _, u := range ups {
		u.applyUpdate()
	}
	for _, h := range k.onUpdate {
		h(k.now)
	}
	k.updSpare = ups[:0]
}

// makeRunnable queues p for the current/next evaluation phase, once.
func (k *Kernel) makeRunnable(p *process) {
	if p.runnable || p.terminated {
		return
	}
	p.runnable = true
	k.runnable = append(k.runnable, p)
}

// scheduleUpdate queues a signal for the update phase.
func (k *Kernel) scheduleUpdate(u updater) {
	k.updates = append(k.updates, u)
}

// scheduleTimed queues a timed notification for e.
func (k *Kernel) scheduleTimed(e *Event, at Time, gen uint64) {
	k.timed.push(at, gen, e)
}

// timedLen reports the number of entries (live + dead) in the timed queue;
// the compaction regression tests assert it stays bounded under churn.
func (k *Kernel) timedLen() int { return k.timed.len() }

// AfterUpdate registers a hook invoked after every update phase. Intended
// for tracing infrastructure.
func (k *Kernel) AfterUpdate(h func(Time)) { k.onUpdate = append(k.onUpdate, h) }

// Shutdown unwinds every live thread goroutine. Call it when a kernel is
// abandoned before its threads have returned, e.g. via defer in tests.
// After Shutdown the kernel must not be run again.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		if p.kind == kindThread && p.started && !p.terminated {
			p.killed = true
			p.resume <- struct{}{}
			<-p.yield
		}
	}
}
