package sim

import (
	"errors"
	"fmt"
)

// Kernel owns simulated time, the event queues and every process, event and
// signal of one simulation. It is not safe for concurrent use; all model
// code runs on the kernel's scheduling thread.
//
// The scheduling hot path is allocation-free in steady state: the timed
// queue is a concrete value-slice heap (timedQueue), and the runnable,
// delta and update queues each ping-pong between two retained buffers
// instead of re-allocating every cycle, so per-event and per-delta cost is
// pure pointer work once the buffers have grown to the model's working set.
type Kernel struct {
	now Time

	timed timedQueue // future timed notifications

	// Phase queues with their retained spares. Each phase swaps the active
	// queue for the (emptied) spare before draining, so appends made while
	// draining land in the other buffer and neither is ever re-allocated.
	deltaQueue []*Event // events notified for the next delta cycle
	deltaSpare []*Event
	runnable   []*process
	runSpare   []*process
	updates    []updater // signals with a pending update this delta
	updSpare   []updater

	procs  []*process
	events []*Event

	stopRequested bool
	started       bool
	deltaCount    uint64
	threadPanic   error

	// MaxDeltasPerInstant guards against delta-cycle livelock (two method
	// processes re-notifying each other forever at the same time). Zero
	// means the default of 1,000,000.
	MaxDeltasPerInstant int

	// onUpdate hooks run after each update phase; the trace package uses
	// them to sample changed signals.
	onUpdate []func(Time)
}

// updater is implemented by signals: apply the pending write and notify the
// changed event if the value actually changed. Implementations are pointers
// (so queueing one is a boxing-free interface conversion) and must not
// allocate — the hot-path allocation tests pin this.
type updater interface{ applyUpdate() }

// NewKernel returns a kernel at time zero with empty queues.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// DeltaCount returns the number of delta cycles executed so far; useful in
// tests asserting scheduling behaviour.
func (k *Kernel) DeltaCount() uint64 { return k.deltaCount }

// NewEvent creates a named event owned by this kernel.
func (k *Kernel) NewEvent(name string) *Event {
	e := &Event{k: k, name: name, id: len(k.events), pendingAt: pendingNone}
	k.events = append(k.events, e)
	return e
}

// Method registers a method process: fn is invoked once per activation and
// must not block. Sensitivity is configured on the returned handle.
func (k *Kernel) Method(name string, fn func()) *Proc {
	p := &process{k: k, name: name, id: len(k.procs), kind: kindMethod, methodFn: fn}
	k.procs = append(k.procs, p)
	return &Proc{p: p}
}

// Thread registers a thread process: fn runs on its own goroutine,
// co-operatively scheduled, and may block via the Ctx wait primitives.
// When fn returns the process terminates.
func (k *Kernel) Thread(name string, fn func(*Ctx)) *Proc {
	p := &process{
		k: k, name: name, id: len(k.procs), kind: kindThread, threadFn: fn,
		resume: make(chan struct{}), yield: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	return &Proc{p: p}
}

// Stop requests the simulation to halt at the end of the current delta
// cycle; Run returns normally.
func (k *Kernel) Stop() { k.stopRequested = true }

// ErrDeltaLivelock is returned by Run when one simulated instant exceeds
// MaxDeltasPerInstant delta cycles.
var ErrDeltaLivelock = errors.New("sim: delta-cycle livelock detected")

// Run advances the simulation until (and including) time `until`, until the
// event queues drain, or until Stop is called. It may be called repeatedly
// to continue the same simulation. On the first call every process without
// DontInitialize is activated once at the current time.
func (k *Kernel) Run(until Time) error {
	if !k.started {
		k.started = true
		for _, p := range k.procs {
			if !p.dontInit {
				k.makeRunnable(p)
			}
		}
	}
	k.stopRequested = false

	maxDeltas := k.MaxDeltasPerInstant
	if maxDeltas <= 0 {
		maxDeltas = 1_000_000
	}

	deltasThisInstant := 0
	for {
		// Evaluation phase.
		if len(k.runnable) > 0 {
			run := k.runnable
			k.runnable = k.runSpare[:0]
			for _, p := range run {
				p.runnable = false
				if p.terminated {
					continue
				}
				p.run()
				if k.threadPanic != nil {
					err := k.threadPanic
					k.threadPanic = nil
					k.runSpare = run[:0]
					return err
				}
			}
			k.runSpare = run[:0]
		}

		// Update phase.
		if len(k.updates) > 0 {
			ups := k.updates
			k.updates = k.updSpare[:0]
			for _, u := range ups {
				u.applyUpdate()
			}
			for _, h := range k.onUpdate {
				h(k.now)
			}
			k.updSpare = ups[:0]
		}

		// Delta-notification phase.
		if len(k.deltaQueue) > 0 {
			k.deltaCount++
			deltasThisInstant++
			if deltasThisInstant > maxDeltas {
				return fmt.Errorf("%w at t=%s", ErrDeltaLivelock, k.now)
			}
			dq := k.deltaQueue
			k.deltaQueue = k.deltaSpare[:0]
			for _, e := range dq {
				if e.pendingDelta { // not cancelled meanwhile
					e.fire()
				}
			}
			k.deltaSpare = dq[:0]
		}

		if k.stopRequested {
			return nil
		}
		if len(k.runnable) > 0 {
			continue // more work in this instant
		}

		// Advance time to the next live timed notification group. nextTime
		// prunes dead entries and validates the top once; the pop loop then
		// takes entries straight off the root without re-validating them —
		// the merged peek/pop path.
		nextAt, ok := k.timed.nextTime()
		if !ok {
			// Queues drained: park time at the requested horizon (unless the
			// caller asked for "run forever", where the drain time stands).
			if until < MaxTime && until > k.now {
				k.now = until
			}
			return nil
		}
		if nextAt > until {
			// Park time at `until` so Now() reflects the requested horizon.
			if until > k.now {
				k.now = until
			}
			return nil
		}
		k.now = nextAt
		deltasThisInstant = 0
		for {
			ev := k.timed.popTop().ev
			// Clear the pending notification *before* fire: the entry has
			// already left the heap, so fire must not count it stale.
			ev.pendingAt = pendingNone
			ev.fire()
			at, ok := k.timed.nextTime()
			if !ok || at != nextAt {
				break
			}
		}
	}
}

// makeRunnable queues p for the current/next evaluation phase, once.
func (k *Kernel) makeRunnable(p *process) {
	if p.runnable || p.terminated {
		return
	}
	p.runnable = true
	k.runnable = append(k.runnable, p)
}

// scheduleUpdate queues a signal for the update phase.
func (k *Kernel) scheduleUpdate(u updater) {
	k.updates = append(k.updates, u)
}

// scheduleTimed queues a timed notification for e.
func (k *Kernel) scheduleTimed(e *Event, at Time, gen uint64) {
	k.timed.push(at, gen, e)
}

// timedLen reports the number of entries (live + dead) in the timed queue;
// the compaction regression tests assert it stays bounded under churn.
func (k *Kernel) timedLen() int { return k.timed.len() }

// AfterUpdate registers a hook invoked after every update phase. Intended
// for tracing infrastructure.
func (k *Kernel) AfterUpdate(h func(Time)) { k.onUpdate = append(k.onUpdate, h) }

// Shutdown unwinds every live thread goroutine. Call it when a kernel is
// abandoned before its threads have returned, e.g. via defer in tests.
// After Shutdown the kernel must not be run again.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		if p.kind == kindThread && p.started && !p.terminated {
			p.killed = true
			p.resume <- struct{}{}
			<-p.yield
		}
	}
}
