package sim

// Mutex is a co-operative mutex for thread processes, equivalent to
// sc_mutex. Lock order among contending threads follows wake-up order,
// which the kernel keeps deterministic.
type Mutex struct {
	locked   bool
	owner    string
	unlocked *Event
}

// NewMutex creates an unlocked mutex.
func NewMutex(k *Kernel, name string) *Mutex {
	return &Mutex{unlocked: k.NewEvent(name + ".unlocked")}
}

// Lock blocks the calling thread until the mutex is acquired.
func (m *Mutex) Lock(c *Ctx) {
	for m.locked {
		c.Wait(m.unlocked)
	}
	m.locked = true
	m.owner = c.Name()
}

// TryLock acquires the mutex without blocking, reporting success.
func (m *Mutex) TryLock(c *Ctx) bool {
	if m.locked {
		return false
	}
	m.locked = true
	m.owner = c.Name()
	return true
}

// Unlock releases the mutex. Unlocking a mutex the caller does not hold
// panics, mirroring sc_mutex's error behaviour.
func (m *Mutex) Unlock(c *Ctx) {
	if !m.locked || m.owner != c.Name() {
		panic("sim: Unlock of mutex not held by caller " + c.Name())
	}
	m.locked = false
	m.owner = ""
	m.unlocked.NotifyDelta()
}

// Semaphore is a counting semaphore for thread processes, equivalent to
// sc_semaphore.
type Semaphore struct {
	count  int
	posted *Event
}

// NewSemaphore creates a semaphore with the given initial count (>= 0).
func NewSemaphore(k *Kernel, name string, initial int) *Semaphore {
	if initial < 0 {
		panic("sim: semaphore initial count must be >= 0")
	}
	return &Semaphore{count: initial, posted: k.NewEvent(name + ".posted")}
}

// Value returns the current count.
func (s *Semaphore) Value() int { return s.count }

// Wait blocks until the count is positive, then decrements it.
func (s *Semaphore) Wait(c *Ctx) {
	for s.count == 0 {
		c.Wait(s.posted)
	}
	s.count--
}

// TryWait decrements the count without blocking, reporting success.
func (s *Semaphore) TryWait() bool {
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Post increments the count and wakes waiters.
func (s *Semaphore) Post() {
	s.count++
	s.posted.NotifyDelta()
}
