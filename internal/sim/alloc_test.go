package sim

import "testing"

// The scheduling hot paths must be allocation-free in steady state: timed
// notification (queue push/pop), delta notification, signal write/update
// and process activation all run on retained buffers. Each test warms the
// kernel until every buffer has reached its working-set capacity, then
// pins the per-cycle allocation count to exactly zero.

const allocWarmup = 256

// measure runs f allocWarmup times to grow the kernel's buffers, then
// asserts testing.AllocsPerRun reports zero.
func measure(t *testing.T, name string, f func()) {
	t.Helper()
	for i := 0; i < allocWarmup; i++ {
		f()
	}
	if got := testing.AllocsPerRun(1000, f); got != 0 {
		t.Errorf("%s: %v allocs per cycle, want 0", name, got)
	}
}

func TestNotifyTimedAllocFree(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("tick")
	fired := 0
	k.Method("m", func() { fired++ }).Sensitive(e).DontInitialize()
	measure(t, "Event.Notify(timed)+Run", func() {
		e.Notify(10 * Ns)
		if err := k.Run(k.Now() + 10*Ns); err != nil {
			t.Fatal(err)
		}
	})
	if fired == 0 {
		t.Fatal("event never fired")
	}
}

func TestNotifyTimedChurnAllocFree(t *testing.T) {
	// Superseding notifications (the stale-entry path, including lazy
	// compaction) must not allocate either.
	k := NewKernel()
	e := k.NewEvent("tick")
	fired := 0
	k.Method("m", func() { fired++ }).Sensitive(e).DontInitialize()
	measure(t, "Event.Notify supersede+Run", func() {
		e.Notify(30 * Ns)
		e.Notify(20 * Ns) // earlier wins: makes the first entry stale
		if err := k.Run(k.Now() + 20*Ns); err != nil {
			t.Fatal(err)
		}
	})
	if fired == 0 {
		t.Fatal("event never fired")
	}
}

func TestNotifyDeltaAllocFree(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("d")
	fired := 0
	k.Method("m", func() { fired++ }).Sensitive(e).DontInitialize()
	measure(t, "Event.NotifyDelta+Run", func() {
		e.NotifyDelta()
		if err := k.Run(k.Now()); err != nil {
			t.Fatal(err)
		}
	})
	if fired == 0 {
		t.Fatal("event never fired")
	}
}

func TestSignalWriteAllocFree(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	reads := 0
	k.Method("r", func() { reads++ }).Sensitive(s.Changed()).DontInitialize()
	i := 0
	measure(t, "Signal.Write+update+Run", func() {
		i++
		s.Write(i) // always a change: full write→update→notify→activate path
		if err := k.Run(k.Now()); err != nil {
			t.Fatal(err)
		}
	})
	if reads == 0 {
		t.Fatal("reader never activated")
	}
	if s.Read() != i {
		t.Fatalf("signal = %d, want %d", s.Read(), i)
	}
}

func TestCancelAllocFree(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("c")
	measure(t, "Notify+Cancel", func() {
		e.Notify(10 * Ns)
		e.Cancel()
	})
}
