// Package sim implements a discrete-event simulation kernel modelled on the
// SystemC 2.0 scheduler: simulated time with delta cycles, events with
// earliest-wins timed notification, method processes with static/dynamic
// sensitivity, goroutine-backed thread processes with blocking waits, typed
// signals with evaluate/update semantics, clocks, bounded FIFO channels and
// mutex/semaphore primitives.
//
// The kernel is single-threaded and deterministic: within one evaluation
// phase, runnable processes execute in ascending creation order, and thread
// processes are co-operatively scheduled (exactly one goroutine runs at a
// time).
package sim

import "fmt"

// Time is a point in simulated time, measured in picoseconds.
//
// The zero Time is the simulation epoch. Negative values are only used as
// sentinels inside the kernel and are never observable via Kernel.Now.
type Time int64

// Time unit constants. A Duration passed to Event.Notify or Ctx.WaitTime is
// simply a Time interpreted as a span.
const (
	Ps  Time = 1
	Ns  Time = 1000 * Ps
	Us  Time = 1000 * Ns
	Ms  Time = 1000 * Us
	Sec Time = 1000 * Ms
)

// MaxTime is the largest representable simulation time; Run(MaxTime) runs
// until the event queue drains.
const MaxTime Time = 1<<63 - 1

// String renders the time with the largest unit that divides it cleanly,
// e.g. "150ns", "2.5us", "0s".
func (t Time) String() string {
	if t == 0 {
		return "0s"
	}
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	type unit struct {
		div  Time
		name string
	}
	units := []unit{{Sec, "s"}, {Ms, "ms"}, {Us, "us"}, {Ns, "ns"}, {Ps, "ps"}}
	for _, u := range units {
		if t >= u.div {
			whole := t / u.div
			frac := t % u.div
			if frac == 0 {
				return fmt.Sprintf("%s%d%s", neg, whole, u.name)
			}
			// Render with a decimal fraction, trimming trailing zeros.
			f := float64(t) / float64(u.div)
			return fmt.Sprintf("%s%g%s", neg, f, u.name)
		}
	}
	return fmt.Sprintf("%s%dps", neg, t)
}

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Sec) }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest picosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Sec) + 0.5) }
