package sim

import "testing"

func TestWaitAllGathersEveryEvent(t *testing.T) {
	k := NewKernel()
	a := k.NewEvent("a")
	b := k.NewEvent("b")
	c := k.NewEvent("c")
	var done Time = -1
	k.Thread("t", func(ctx *Ctx) {
		ctx.WaitAll(a, b, c)
		done = ctx.Now()
	})
	a.Notify(1 * Ns)
	c.Notify(5 * Ns)
	b.Notify(9 * Ns)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if done != 9*Ns {
		t.Fatalf("WaitAll completed at %v, want 9ns (last event)", done)
	}
}

func TestWaitAllRepeatFiresCountOnce(t *testing.T) {
	k := NewKernel()
	a := k.NewEvent("a")
	b := k.NewEvent("b")
	var done Time = -1
	k.Thread("t", func(ctx *Ctx) {
		ctx.WaitAll(a, b)
		done = ctx.Now()
	})
	// a fires repeatedly; b only at 20ns.
	n := 0
	drv := k.NewEvent("drv")
	k.Method("d", func() {
		n++
		a.NotifyDelta()
		if n < 5 {
			drv.Notify(2 * Ns)
		}
	}).Sensitive(drv)
	b.Notify(20 * Ns)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if done != 20*Ns {
		t.Fatalf("WaitAll completed at %v, want 20ns", done)
	}
}

func TestWaitAllEmptyPanics(t *testing.T) {
	k := NewKernel()
	recovered := false
	k.Thread("t", func(ctx *Ctx) {
		defer func() {
			if recover() != nil {
				recovered = true
				panic(killError{name: "t"})
			}
		}()
		ctx.WaitAll()
	})
	_ = k.Run(MaxTime)
	if !recovered {
		t.Fatal("WaitAll() did not panic")
	}
}

func TestNotifyNowRunsInSameEvaluation(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	var order []string
	k.Method("late", func() { order = append(order, "late") }).Sensitive(e).DontInitialize()
	k.Method("driver", func() {
		order = append(order, "driver")
		e.NotifyNow()
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[1] != "late" {
		t.Fatalf("order = %v", order)
	}
	if k.DeltaCount() != 0 {
		t.Fatalf("immediate notification consumed %d delta cycles", k.DeltaCount())
	}
}

func TestCancelDeltaNotification(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	fired := false
	k.Method("w", func() { fired = true }).Sensitive(e).DontInitialize()
	k.Method("driver", func() {
		e.NotifyDelta()
		e.Cancel()
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled delta notification fired")
	}
}

func TestTimedNotifyAfterDeltaIsIgnored(t *testing.T) {
	// A pending delta notification beats any timed one.
	k := NewKernel()
	e := k.NewEvent("e")
	var times []Time
	k.Method("w", func() { times = append(times, k.Now()) }).Sensitive(e).DontInitialize()
	k.Method("driver", func() {
		e.NotifyDelta()
		e.Notify(10 * Ns) // must be ignored
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(times) != 1 || times[0] != 0 {
		t.Fatalf("times = %v, want single delta fire at 0", times)
	}
}

func TestTerminatedThreadIgnoresLateEvents(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	runs := 0
	k.Thread("t", func(ctx *Ctx) {
		runs++
		ctx.Wait(e)
		runs++
	})
	e.Notify(1 * Ns)
	e.Notify(1 * Ns) // earliest-wins: still a single fire
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	e.Notify(1 * Ns) // after termination
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("thread body advanced %d times, want 2", runs)
	}
}

func TestSignalWriteOutsideProcessAppliesOnRun(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 1)
	s.Write(7)
	if s.Read() != 1 {
		t.Fatal("write applied before update phase")
	}
	if err := k.Run(k.Now() + 1); err != nil {
		t.Fatal(err)
	}
	if s.Read() != 7 {
		t.Fatalf("Read = %d after settle", s.Read())
	}
}

func TestManyEventsSameInstantAllFire(t *testing.T) {
	k := NewKernel()
	const n = 100
	fired := 0
	for i := 0; i < n; i++ {
		e := k.NewEvent("e")
		k.Method("m", func() {
			if k.Now() > 0 {
				fired++
			}
		}).Sensitive(e)
		e.Notify(5 * Ns)
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if fired != n {
		t.Fatalf("fired = %d, want %d", fired, n)
	}
}

func TestEventNamesPreserved(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("my.event")
	if e.Name() != "my.event" {
		t.Fatalf("Name = %q", e.Name())
	}
	p := k.Method("proc", func() {})
	if p.Name() != "proc" {
		t.Fatalf("proc Name = %q", p.Name())
	}
}
