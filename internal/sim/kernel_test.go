package sim

import (
	"testing"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
}

func TestRunEmptyKernelReturns(t *testing.T) {
	k := NewKernel()
	if err := k.Run(MaxTime); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if k.Now() != 0 {
		t.Fatalf("time advanced with no events: %v", k.Now())
	}
}

func TestTimedNotifyAdvancesTime(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	var fired Time = -1
	k.Method("m", func() {
		if k.Now() > 0 {
			fired = k.Now()
		}
	}).Sensitive(e)
	e.Notify(10 * Ns)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if fired != 10*Ns {
		t.Fatalf("fired at %v, want 10ns", fired)
	}
}

func TestMethodInitialActivation(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.Method("m", func() { ran++ })
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("method ran %d times at init, want 1", ran)
	}
}

func TestDontInitializeSuppressesInitialRun(t *testing.T) {
	k := NewKernel()
	ran := 0
	e := k.NewEvent("e")
	k.Method("m", func() { ran++ }).Sensitive(e).DontInitialize()
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Fatalf("method ran %d times despite DontInitialize", ran)
	}
	e.Notify(1 * Ns)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("method ran %d times after notify, want 1", ran)
	}
}

func TestEarliestWinsNotification(t *testing.T) {
	// A pending later notification is replaced by an earlier one; a pending
	// earlier notification suppresses a later one.
	k := NewKernel()
	e := k.NewEvent("e")
	var times []Time
	k.Method("m", func() {
		if k.Now() > 0 {
			times = append(times, k.Now())
		}
	}).Sensitive(e)
	e.Notify(100 * Ns)
	e.Notify(10 * Ns) // earlier wins, 100ns cancelled
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(times) != 1 || times[0] != 10*Ns {
		t.Fatalf("fire times = %v, want [10ns]", times)
	}

	e.Notify(10 * Ns)
	e.Notify(100 * Ns) // later is ignored
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[1] != 20*Ns {
		t.Fatalf("fire times = %v, want second at 20ns", times)
	}
}

func TestCancelRemovesPending(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	fired := false
	k.Method("m", func() {
		if k.Now() > 0 {
			fired = true
		}
	}).Sensitive(e)
	e.Notify(5 * Ns)
	if !e.Pending() {
		t.Fatal("event should be pending after Notify")
	}
	e.Cancel()
	if e.Pending() {
		t.Fatal("event still pending after Cancel")
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestDeltaNotification(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	order := []string{}
	k.Method("a", func() {
		order = append(order, "a")
		if len(order) == 1 {
			e.NotifyDelta()
		}
	})
	k.Method("b", func() { order = append(order, "b") }).Sensitive(e).DontInitialize()
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
	if k.Now() != 0 {
		t.Fatalf("delta notification advanced time to %v", k.Now())
	}
}

func TestDeltaBeatsTimedNotification(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	var at Time = -1
	cnt := 0
	k.Method("m", func() { at = k.Now(); cnt++ }).Sensitive(e).DontInitialize()
	e.Notify(50 * Ns)
	e.NotifyDelta() // cancels the timed notification
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if cnt != 1 || at != 0 {
		t.Fatalf("cnt=%d at=%v, want one delta fire at t=0", cnt, at)
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	fired := false
	k.Method("m", func() {
		if k.Now() > 0 {
			fired = true
		}
	}).Sensitive(e)
	e.Notify(100 * Ns)
	if err := k.Run(50 * Ns); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if k.Now() != 50*Ns {
		t.Fatalf("Now()=%v, want parked at 50ns", k.Now())
	}
	if err := k.Run(200 * Ns); err != nil {
		t.Fatal(err)
	}
	if !fired || k.Now() != 200*Ns {
		t.Fatalf("fired=%v Now=%v, want fired at horizon 200ns", fired, k.Now())
	}
}

func TestStopHaltsSimulation(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	count := 0
	k.Method("m", func() {
		count++
		if count == 3 {
			k.Stop()
		}
		e.Notify(1 * Ns)
	}).Sensitive(e)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3 (stopped)", count)
	}
}

func TestDeterministicProcessOrder(t *testing.T) {
	// Processes triggered in the same delta run in creation order.
	k := NewKernel()
	e := k.NewEvent("e")
	var order []string
	for _, n := range []string{"p0", "p1", "p2", "p3"} {
		name := n
		k.Method(name, func() {
			if k.Now() > 0 {
				order = append(order, name)
			}
		}).Sensitive(e)
	}
	e.Notify(1 * Ns)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0", "p1", "p2", "p3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimeFIFOGrouping(t *testing.T) {
	// Two different events notified for the same instant both fire at that
	// instant (single time advance, possibly multiple deltas).
	k := NewKernel()
	e1 := k.NewEvent("e1")
	e2 := k.NewEvent("e2")
	var at []Time
	k.Method("m1", func() {
		if k.Now() > 0 {
			at = append(at, k.Now())
		}
	}).Sensitive(e1)
	k.Method("m2", func() {
		if k.Now() > 0 {
			at = append(at, k.Now())
		}
	}).Sensitive(e2)
	e1.Notify(7 * Ns)
	e2.Notify(7 * Ns)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 7*Ns || at[1] != 7*Ns {
		t.Fatalf("fire times = %v, want both at 7ns", at)
	}
}

func TestDeltaLivelockDetected(t *testing.T) {
	k := NewKernel()
	k.MaxDeltasPerInstant = 100
	a := k.NewEvent("a")
	b := k.NewEvent("b")
	k.Method("pa", func() { b.NotifyDelta() }).Sensitive(a)
	k.Method("pb", func() { a.NotifyDelta() }).Sensitive(b)
	err := k.Run(MaxTime)
	if err == nil {
		t.Fatal("expected livelock error")
	}
}

func TestDeltaCountAdvances(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	n := 0
	k.Method("m", func() {
		n++
		if n < 5 {
			e.NotifyDelta()
		}
	}).Sensitive(e)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if k.DeltaCount() < 4 {
		t.Fatalf("DeltaCount=%d, want >= 4", k.DeltaCount())
	}
}

func TestNotifyNegativePanics(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	e.Notify(-1)
}

func TestMultipleRunsContinue(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	count := 0
	k.Method("m", func() {
		if k.Now() > 0 {
			count++
			if count < 10 {
				e.Notify(10 * Ns)
			}
		}
	}).Sensitive(e)
	e.Notify(10 * Ns)
	for i := 0; i < 10; i++ {
		if err := k.Run(k.Now() + 10*Ns); err != nil {
			t.Fatal(err)
		}
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10 across chunked runs", count)
	}
}
