package sim

import "fmt"

// procKind distinguishes method processes (plain callbacks, SC_METHOD) from
// thread processes (goroutines with blocking waits, SC_THREAD).
type procKind int

const (
	kindMethod procKind = iota
	kindThread
)

// process is the kernel-internal representation of a schedulable process.
type process struct {
	k    *Kernel
	name string
	id   int
	kind procKind

	methodFn func()
	threadFn func(*Ctx)

	// static sensitivity list; fires make the process runnable.
	sensitivity []*Event

	// dynamic one-shot wait set (thread Wait/WaitAny, method NextTrigger).
	waitSet []*Event

	runnable   bool
	terminated bool

	// thread machinery: the kernel resumes the goroutine by sending on
	// resume and waits for it to yield (block in Wait or return) on yield.
	resume  chan struct{}
	yield   chan struct{}
	started bool
	killed  bool

	// timer is a private event backing WaitTime; allocated lazily.
	timer *Event

	// dontInit suppresses the initial run at simulation start.
	dontInit bool

	// lastTrigger records the event that most recently woke the process
	// from a dynamic wait (nil after a timed or initial activation).
	lastTrigger *Event
}

// killError is panicked inside a thread goroutine to unwind it at shutdown.
type killError struct{ name string }

func (k killError) Error() string { return "sim: thread killed: " + k.name }

// Proc is the public handle to a process.
type Proc struct{ p *process }

// Name returns the process name.
func (pr *Proc) Name() string { return pr.p.name }

// Terminated reports whether the process has returned (threads) or will
// never be triggered again (never true for methods).
func (pr *Proc) Terminated() bool { return pr.p.terminated }

// Sensitive appends events to the process's static sensitivity list.
func (pr *Proc) Sensitive(evs ...*Event) *Proc {
	for _, e := range evs {
		e.static = append(e.static, pr.p)
		pr.p.sensitivity = append(pr.p.sensitivity, e)
	}
	return pr
}

// DontInitialize suppresses the implicit activation at simulation start
// (the process first runs when its sensitivity triggers).
func (pr *Proc) DontInitialize() *Proc {
	pr.p.dontInit = true
	return pr
}

// clearDynamicWait is called when event e fires while p is in the wait set.
// It removes p from all sibling events of a WaitAny and reports whether the
// process should be made runnable.
func (p *process) clearDynamicWait(fired *Event) bool {
	if len(p.waitSet) == 0 {
		return false
	}
	for _, e := range p.waitSet {
		if e != fired {
			e.unsubscribeDynamic(p)
		}
	}
	p.waitSet = p.waitSet[:0]
	p.lastTrigger = fired
	return true
}

// run executes one activation of the process in the evaluation phase.
func (p *process) run() {
	switch p.kind {
	case kindMethod:
		p.methodFn()
	case kindThread:
		p.resumeThread()
	}
}

// resumeThread hands control to the thread goroutine and blocks until it
// yields (waits again or terminates).
func (p *process) resumeThread() {
	if p.terminated {
		return
	}
	if !p.started {
		p.started = true
		go p.threadBody()
	} else {
		p.resume <- struct{}{}
	}
	<-p.yield
}

func (p *process) threadBody() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killError); !ok {
				// Re-panic on the kernel side with context: stash and let
				// the kernel re-raise so tests see the original panic.
				p.k.threadPanic = fmt.Errorf("sim: thread %q panicked: %v", p.name, r)
			}
		}
		p.terminated = true
		p.yield <- struct{}{}
	}()
	ctx := &Ctx{k: p.k, p: p}
	p.threadFn(ctx)
}
