package sim

// timedEntry is one scheduled notification in the timed queue. An entry is
// live iff its event still agrees with it: the event's pendingGen matches
// the generation the entry was pushed under and its pendingAt still names
// the entry's time. Everything else is a dead remnant of a cancelled or
// superseded notification.
type timedEntry struct {
	at  Time
	seq uint64 // FIFO tiebreak for equal times
	gen uint64 // matches Event.pendingGen or the entry is dead
	ev  *Event
}

// live reports whether the entry is its event's current notification.
func (e *timedEntry) live() bool {
	return e.ev.pendingGen == e.gen && e.ev.pendingAt == e.at
}

// timedQueue is a binary min-heap of timed notifications ordered by
// (time, insertion sequence), stored as a value slice with hand-inlined
// sift operations: no container/heap, no interface boxing, no per-push
// allocation beyond amortised slice growth. Since (at, seq) is a strict
// total order, pop order is independent of the heap's internal layout —
// which is what lets compaction rebuild the heap freely.
//
// Dead entries are removed lazily on two paths: nextTime prunes them off
// the top as they surface, and noteStale — called by the kernel each time
// a live notification is cancelled or superseded — compacts the whole
// queue once dead entries outnumber live ones, so churn-heavy models
// (periodic re-notification, timeouts that rarely expire) keep the queue
// proportional to the number of pending notifications rather than the
// number of notify calls.
type timedQueue struct {
	entries []timedEntry
	seq     uint64
	stale   int // dead entries still in the heap
}

// compactMin is the queue size below which compaction is not worth the
// O(n) filter+heapify; dead tops are cheap to prune at this scale.
const compactMin = 64

func (q *timedQueue) len() int { return len(q.entries) }

func (q *timedQueue) less(i, j int) bool {
	a, b := &q.entries[i], &q.entries[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push schedules ev at time at under generation gen.
func (q *timedQueue) push(at Time, gen uint64, ev *Event) {
	q.seq++
	q.entries = append(q.entries, timedEntry{at: at, seq: q.seq, gen: gen, ev: ev})
	q.siftUp(len(q.entries) - 1)
}

func (q *timedQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.entries[i], q.entries[parent] = q.entries[parent], q.entries[i]
		i = parent
	}
}

func (q *timedQueue) siftDown(i int) {
	n := len(q.entries)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q.less(r, l) {
			least = r
		}
		if !q.less(least, i) {
			break
		}
		q.entries[i], q.entries[least] = q.entries[least], q.entries[i]
		i = least
	}
}

// popTop removes and returns the root entry. The caller must know the root
// exists — and, on the kernel's merged peek/pop path, that it is live:
// nextTime has already pruned dead tops, so no re-validation happens here.
func (q *timedQueue) popTop() timedEntry {
	top := q.entries[0]
	n := len(q.entries) - 1
	q.entries[0] = q.entries[n]
	q.entries[n] = timedEntry{} // drop the *Event reference
	q.entries = q.entries[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

// seqCount returns the number of pushes so far. The gap fast-forward
// snapshots it to detect whether a catch-up body scheduled a timed
// notification (nothing else moves the counter).
func (q *timedQueue) seqCount() uint64 { return q.seq }

// minLiveExcept returns the time of the earliest live entry whose event is
// not `skip`, or MaxTime when there is none. O(n); diagnostic use only.
func (q *timedQueue) minLiveExcept(skip *Event) Time {
	min := MaxTime
	for i := range q.entries {
		e := &q.entries[i]
		if e.ev != skip && e.live() && e.at < min {
			min = e.at
		}
	}
	return min
}

// nextTime prunes dead entries off the top and returns the time of the
// earliest live notification. After it returns ok==true the root is live,
// so the kernel pops it with popTop without validating it a second time.
func (q *timedQueue) nextTime() (Time, bool) {
	for len(q.entries) > 0 {
		top := &q.entries[0]
		if top.live() {
			return top.at, true
		}
		q.popTop()
		q.stale--
	}
	return 0, false
}

// noteStale records that one previously-live entry just died (its
// notification was cancelled, superseded or fired out of band) and
// compacts once dead entries outnumber live ones. Callers must update the
// event's pendingGen/pendingAt to their new values *before* calling, so
// the compaction filter sees the entry as dead.
func (q *timedQueue) noteStale() {
	q.stale++
	if n := len(q.entries); n >= compactMin && q.stale > n/2 {
		q.compact()
	}
}

// compact filters dead entries in place and re-establishes the heap
// invariant bottom-up, O(n) total.
func (q *timedQueue) compact() {
	live := q.entries[:0]
	for i := range q.entries {
		if q.entries[i].live() {
			live = append(live, q.entries[i])
		}
	}
	for i := len(live); i < len(q.entries); i++ {
		q.entries[i] = timedEntry{} // release dropped *Event references
	}
	q.entries = live
	q.stale = 0
	for i := len(q.entries)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}
