package sim

// Fifo is a bounded FIFO channel with blocking Put/Get for thread processes
// and non-blocking TryPut/TryGet for method processes, equivalent to
// sc_fifo. Writes become visible to readers immediately (unlike signals,
// FIFOs are not delta-delayed; this matches sc_fifo's read/write events
// being delta-notified while the data moves at once).
type Fifo[T any] struct {
	k       *Kernel
	name    string
	buf     []T
	cap     int
	written *Event // fired (delta) after a Put
	read    *Event // fired (delta) after a Get
}

// NewFifo creates a FIFO with the given capacity (must be >= 1).
func NewFifo[T any](k *Kernel, name string, capacity int) *Fifo[T] {
	if capacity < 1 {
		panic("sim: fifo capacity must be >= 1")
	}
	return &Fifo[T]{
		k: k, name: name, cap: capacity,
		written: k.NewEvent(name + ".written"),
		read:    k.NewEvent(name + ".read"),
	}
}

// Name returns the FIFO name.
func (f *Fifo[T]) Name() string { return f.name }

// Len returns the number of buffered items.
func (f *Fifo[T]) Len() int { return len(f.buf) }

// Cap returns the capacity.
func (f *Fifo[T]) Cap() int { return f.cap }

// TryPut appends v if space is available, reporting success.
func (f *Fifo[T]) TryPut(v T) bool {
	if len(f.buf) >= f.cap {
		return false
	}
	f.buf = append(f.buf, v)
	f.written.NotifyDelta()
	return true
}

// TryGet removes and returns the oldest item, if any.
func (f *Fifo[T]) TryGet() (T, bool) {
	var zero T
	if len(f.buf) == 0 {
		return zero, false
	}
	v := f.buf[0]
	f.buf = f.buf[1:]
	f.read.NotifyDelta()
	return v, true
}

// Put blocks the calling thread until space is available, then appends v.
func (f *Fifo[T]) Put(c *Ctx, v T) {
	for !f.TryPut(v) {
		c.Wait(f.read)
	}
}

// Get blocks the calling thread until an item is available and returns it.
func (f *Fifo[T]) Get(c *Ctx) T {
	for {
		if v, ok := f.TryGet(); ok {
			return v
		}
		c.Wait(f.written)
	}
}

// WrittenEvent fires (delta-notified) after every successful put.
func (f *Fifo[T]) WrittenEvent() *Event { return f.written }

// ReadEvent fires (delta-notified) after every successful get.
func (f *Fifo[T]) ReadEvent() *Event { return f.read }
