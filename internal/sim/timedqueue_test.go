package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTimedQueueBoundedUnderChurn is the stale-entry-leak regression test:
// re-notifying one event N times (each notification superseding the last)
// must not leave N dead entries in the heap. The old container/heap kernel
// only dropped dead entries when they bubbled to the top, so the queue grew
// to N; with stale-counting compaction its length stays bounded by a small
// multiple of the compaction threshold regardless of N.
func TestTimedQueueBoundedUnderChurn(t *testing.T) {
	const n = 10_000
	k := NewKernel()
	e := k.NewEvent("churn")
	// Each notify is earlier than the last, so each supersedes and strands
	// one dead entry.
	for i := 0; i < n; i++ {
		e.Notify(Time(2*n-i) * Ns)
	}
	if got := k.timedLen(); got > 2*compactMin {
		t.Fatalf("timed queue holds %d entries after %d re-notifications, want <= %d", got, n, 2*compactMin)
	}
	// The one live notification must still fire, exactly once, at the
	// earliest (last-notified) time.
	fired := 0
	var at Time
	k.Method("m", func() { fired++; at = k.Now() }).Sensitive(e).DontInitialize()
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	if want := Time(2*n-(n-1)) * Ns; at != want {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	if got := k.timedLen(); got != 0 {
		t.Fatalf("queue not drained: %d entries", got)
	}
}

// TestTimedQueueCancelChurnBounded: the same leak via Cancel instead of
// supersession.
func TestTimedQueueCancelChurnBounded(t *testing.T) {
	const n = 10_000
	k := NewKernel()
	e := k.NewEvent("c")
	for i := 0; i < n; i++ {
		e.Notify(Time(i+1) * Us)
		e.Cancel()
	}
	if got := k.timedLen(); got > 2*compactMin {
		t.Fatalf("timed queue holds %d entries after %d notify/cancel pairs, want <= %d", got, n, 2*compactMin)
	}
}

// TestTimedQueuePopOrder: pops come out ordered by (time, insertion
// sequence) — FIFO among equal times — and compaction must not disturb
// that order, since (at, seq) is a strict total order independent of the
// heap's internal layout.
func TestTimedQueuePopOrder(t *testing.T) {
	k := NewKernel()
	rng := rand.New(rand.NewSource(7))
	type sched struct {
		at  Time
		seq int // creation order = expected FIFO rank within equal times
		ev  *Event
	}
	var want []sched
	const n = 500
	for i := 0; i < n; i++ {
		// Few distinct times so equal-time FIFO ordering is exercised hard.
		at := Time(1+rng.Intn(8)) * Us
		e := k.NewEvent("e")
		e.Notify(at)
		want = append(want, sched{at: at, seq: i, ev: e})
	}
	// Churn a disjoint set of events to force at least one compaction
	// while the n live entries are queued.
	c := k.NewEvent("churn")
	for i := 0; i < 4*n; i++ {
		c.Notify(Time(2*4*n-i) * Us)
	}
	c.Cancel()

	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	var got []*Event
	for {
		at, ok := k.timed.nextTime()
		if !ok {
			break
		}
		ent := k.timed.popTop()
		if ent.at != at {
			t.Fatalf("popped entry at %v after nextTime reported %v", ent.at, at)
		}
		ent.ev.pendingAt = pendingNone
		got = append(got, ent.ev)
	}
	if len(got) != n {
		t.Fatalf("popped %d live entries, want %d", len(got), n)
	}
	for i, s := range want {
		if got[i] != s.ev {
			t.Fatalf("pop %d: got event scheduled #%d, want #%d (at=%v)", i, got[i].id, s.ev.id, s.at)
		}
	}
}

// TestTimedQueueStaleCountExact: the stale counter must exactly track dead
// entries through every invalidation path (supersede, cancel, delta
// override, out-of-band fire), or compaction would trigger early/late.
func TestTimedQueueStaleCountExact(t *testing.T) {
	k := NewKernel()
	check := func(label string, wantStale int) {
		t.Helper()
		dead := 0
		for i := range k.timed.entries {
			if !k.timed.entries[i].live() {
				dead++
			}
		}
		if dead != k.timed.stale {
			t.Fatalf("%s: counter says %d stale, heap holds %d dead entries", label, k.timed.stale, dead)
		}
		if k.timed.stale != wantStale {
			t.Fatalf("%s: stale = %d, want %d", label, k.timed.stale, wantStale)
		}
	}

	a, b, c, d := k.NewEvent("a"), k.NewEvent("b"), k.NewEvent("c"), k.NewEvent("d")
	a.Notify(10 * Us)
	b.Notify(10 * Us)
	c.Notify(10 * Us)
	d.Notify(10 * Us)
	check("after scheduling", 0)

	a.Notify(5 * Us) // supersede
	check("after supersede", 1)
	a.Notify(7 * Us) // later than pending: no-op
	check("after no-op notify", 1)

	b.Cancel()
	check("after cancel", 2)
	b.Cancel() // second cancel: nothing pending, no double count
	check("after double cancel", 2)

	c.NotifyDelta() // delta beats timed
	check("after delta override", 3)

	d.NotifyNow() // out-of-band fire kills the queued entry
	check("after immediate fire", 4)
}
