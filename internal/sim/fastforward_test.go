package sim

import "testing"

// The idle fast-forward (GapPeriodic) is a scheduling shortcut, not a new
// semantics: while the periodic subscriber's tick is the only live timed
// notification, the kernel calls its catch-up body in a tight loop instead
// of round-tripping the heap per instant. These tests pin the contract at
// kernel level: the trajectory is bit-identical to a ticked run, and the
// skip path itself never allocates.

// gapModel is a sampler plus a bursty disturber, small enough to run twice
// (ticked and fast-forwarded) and compare trajectories exactly.
type gapModel struct {
	k    *Kernel
	tick *Event

	// Sampler trajectory: loadSum and tSum checksum the value and the
	// instant of every sample, count the number of samples.
	loadSum int64
	tSum    int64
	count   int64

	// The disturber toggles load at irregular instants, creating both
	// quiescent gaps (fast-forwardable) and shared instants (not).
	load  *Signal[int64]
	burst int
}

// burstDelays are the disturber's re-notification intervals: long gaps the
// sampler alone owns, one interval that is an exact multiple of the tick
// (the disturber then lands ON a sample instant — the tie case), and one
// short interval below the tick period.
var burstDelays = []Time{1730 * Ns, 500 * Ns, 4000 * Ns, 7 * Ns, 2641 * Ns, 990 * Ns}

const gapTick = 10 * Ns

// newGapModel wires the model; fastForward opts the sampler into
// GapPeriodic. The method body and the catch-up body share sample() —
// the catch-up body is the method minus the self re-notification, exactly
// the GapPeriodic contract.
func newGapModel(fastForward bool) *gapModel {
	m := &gapModel{k: NewKernel()}
	m.tick = m.k.NewEvent("tick")
	m.load = NewSignal[int64](m.k, "load", 0)
	m.k.Method("sampler", func() {
		m.sample()
		m.tick.Notify(gapTick)
	}).Sensitive(m.tick).DontInitialize()
	if fastForward {
		m.k.GapPeriodic(m.tick, gapTick, m.sample)
	}
	m.tick.Notify(gapTick)

	burstEv := m.k.NewEvent("burst")
	m.k.Method("disturber", func() {
		m.load.Write(m.load.Read() + 1)
		burstEv.Notify(burstDelays[m.burst%len(burstDelays)])
		m.burst++
	}).Sensitive(burstEv).DontInitialize()
	burstEv.Notify(burstDelays[0])
	return m
}

func (m *gapModel) sample() {
	m.loadSum += m.load.Read()
	m.tSum += int64(m.k.Now())
	m.count++
}

// TestGapFastForwardBitIdentical runs the model ticked and fast-forwarded
// to the same horizon and asserts the full trajectory checksum matches:
// same samples at the same instants reading the same values, same
// delta-cycle count (the scheduling checksum), same final time. Only the
// fast-forwarded kernel may report skipped instants.
func TestGapFastForwardBitIdentical(t *testing.T) {
	const until = 200 * Us // ~20k samples, ~60 bursts
	ticked, fast := newGapModel(false), newGapModel(true)
	if err := ticked.k.Run(until); err != nil {
		t.Fatal(err)
	}
	if err := fast.k.Run(until); err != nil {
		t.Fatal(err)
	}
	if ticked.count != fast.count || ticked.loadSum != fast.loadSum || ticked.tSum != fast.tSum {
		t.Errorf("trajectories diverge:\n  ticked count=%d loadSum=%d tSum=%d\n  fast   count=%d loadSum=%d tSum=%d",
			ticked.count, ticked.loadSum, ticked.tSum, fast.count, fast.loadSum, fast.tSum)
	}
	if ticked.k.DeltaCount() != fast.k.DeltaCount() {
		t.Errorf("delta counts diverge: ticked %d, fast %d", ticked.k.DeltaCount(), fast.k.DeltaCount())
	}
	if ticked.k.Now() != fast.k.Now() {
		t.Errorf("final times diverge: ticked %s, fast %s", ticked.k.Now(), fast.k.Now())
	}
	if got := ticked.k.FastForwardedInstants(); got != 0 {
		t.Errorf("ticked kernel fast-forwarded %d instants, want 0", got)
	}
	if fast.k.FastForwardedInstants() == 0 {
		t.Error("fast kernel never fast-forwarded despite idle gaps")
	}
	// Continuing past the horizon must stay aligned too: the fast kernel's
	// re-notification state after a gap matches a ticked run's heap.
	if err := ticked.k.Run(until + 50*Us); err != nil {
		t.Fatal(err)
	}
	if err := fast.k.Run(until + 50*Us); err != nil {
		t.Fatal(err)
	}
	if ticked.count != fast.count || ticked.tSum != fast.tSum || ticked.k.DeltaCount() != fast.k.DeltaCount() {
		t.Errorf("trajectories diverge after resume: ticked count=%d tSum=%d deltas=%d, fast count=%d tSum=%d deltas=%d",
			ticked.count, ticked.tSum, ticked.k.DeltaCount(), fast.count, fast.tSum, fast.k.DeltaCount())
	}
}

// TestGapFastForwardAllocFree pins the skip path at zero allocations: a
// kernel whose only activity is the gap subscriber must cross arbitrarily
// long idle stretches without touching the heap.
func TestGapFastForwardAllocFree(t *testing.T) {
	k := NewKernel()
	tick := k.NewEvent("tick")
	steady := NewSignal[int](k, "steady", 1)
	count := 0
	body := func() {
		count++
		steady.Write(1) // unchanged re-write: must not schedule an update
	}
	k.Method("sampler", func() {
		body()
		tick.Notify(gapTick)
	}).Sensitive(tick).DontInitialize()
	k.GapPeriodic(tick, gapTick, body)
	tick.Notify(gapTick)

	before := k.FastForwardedInstants()
	measure(t, "gap fast-forward", func() {
		if err := k.Run(k.Now() + 1000*gapTick); err != nil {
			t.Fatal(err)
		}
	})
	if count == 0 {
		t.Fatal("sampler never ran")
	}
	if k.FastForwardedInstants() <= before {
		t.Fatalf("no instants were fast-forwarded (got %d)", k.FastForwardedInstants())
	}
}

// TestQuiescentUntil pins the diagnostic: with only the gap tick pending
// the kernel is quiescent forever; another live notification bounds it.
func TestQuiescentUntil(t *testing.T) {
	k := NewKernel()
	tick := k.NewEvent("tick")
	k.Method("sampler", func() { tick.Notify(gapTick) }).Sensitive(tick).DontInitialize()
	k.GapPeriodic(tick, gapTick, func() {})
	tick.Notify(gapTick)
	if got := k.QuiescentUntil(); got != MaxTime {
		t.Errorf("QuiescentUntil with only the gap tick = %s, want MaxTime", got)
	}
	other := k.NewEvent("other")
	k.Method("m", func() {}).Sensitive(other).DontInitialize()
	other.Notify(5 * Us)
	if got := k.QuiescentUntil(); got != 5*Us {
		t.Errorf("QuiescentUntil = %s, want %s", got, 5*Us)
	}
	other.Cancel()
	if got := k.QuiescentUntil(); got != MaxTime {
		t.Errorf("QuiescentUntil after cancel = %s, want MaxTime", got)
	}
}

// TestGapPeriodicValidation pins the registration guards.
func TestGapPeriodicValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	k := NewKernel()
	ev := k.NewEvent("tick")
	mustPanic("nil event", func() { k.GapPeriodic(nil, gapTick, func() {}) })
	mustPanic("zero interval", func() { k.GapPeriodic(ev, 0, func() {}) })
	mustPanic("nil body", func() { k.GapPeriodic(ev, gapTick, nil) })
	k.GapPeriodic(ev, gapTick, func() {})
	mustPanic("double registration", func() { k.GapPeriodic(ev, gapTick, func() {}) })
}
