package sim

import (
	"testing"
	"testing/quick"
)

func TestClockEdges(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", 10*Ns)
	var posTimes, negTimes []Time
	k.Method("p", func() { posTimes = append(posTimes, k.Now()) }).
		Sensitive(clk.Posedge()).DontInitialize()
	k.Method("n", func() { negTimes = append(negTimes, k.Now()) }).
		Sensitive(clk.Negedge()).DontInitialize()
	if err := k.Run(35 * Ns); err != nil {
		t.Fatal(err)
	}
	// period 10ns: pos at 5,15,25,35; neg at 10,20,30.
	wantPos := []Time{5 * Ns, 15 * Ns, 25 * Ns, 35 * Ns}
	if len(posTimes) != len(wantPos) {
		t.Fatalf("posedges at %v, want %v", posTimes, wantPos)
	}
	for i := range wantPos {
		if posTimes[i] != wantPos[i] {
			t.Fatalf("posedges at %v, want %v", posTimes, wantPos)
		}
	}
	if len(negTimes) != 3 || negTimes[0] != 10*Ns {
		t.Fatalf("negedges at %v", negTimes)
	}
	if clk.Cycles() != 4 {
		t.Fatalf("Cycles() = %d, want 4", clk.Cycles())
	}
}

func TestClockLevelSignal(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", 4*Ns)
	if err := k.Run(2 * Ns); err != nil { // just past first posedge
		t.Fatal(err)
	}
	if !clk.Level().Read() {
		t.Fatal("clock level should be high after first posedge")
	}
	if err := k.Run(4 * Ns); err != nil { // past first negedge
		t.Fatal(err)
	}
	if clk.Level().Read() {
		t.Fatal("clock level should be low after negedge")
	}
}

func TestClockHaltDrainsQueue(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", 2*Ns)
	k.Method("halter", func() {
		if clk.Cycles() >= 5 {
			clk.Halt()
		}
	}).Sensitive(clk.Posedge()).DontInitialize()
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if clk.Cycles() < 5 || clk.Cycles() > 6 {
		t.Fatalf("Cycles() = %d after halt, want ~5", clk.Cycles())
	}
}

func TestClockBadPeriodPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for period < 2")
		}
	}()
	NewClock(k, "clk", 1)
}

func TestFifoThreadProducerConsumer(t *testing.T) {
	k := NewKernel()
	f := NewFifo[int](k, "f", 2)
	var got []int
	k.Thread("prod", func(c *Ctx) {
		for i := 1; i <= 10; i++ {
			f.Put(c, i)
			// Producer is faster than consumer: it must block on the full
			// FIFO rather than dropping items.
		}
	})
	k.Thread("cons", func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.WaitTime(3 * Ns)
			got = append(got, f.Get(c))
		}
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("consumed %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v, want 1..10 in order", got)
		}
	}
}

func TestFifoTryOps(t *testing.T) {
	k := NewKernel()
	f := NewFifo[string](k, "f", 1)
	if _, ok := f.TryGet(); ok {
		t.Fatal("TryGet on empty fifo succeeded")
	}
	if !f.TryPut("x") {
		t.Fatal("TryPut on empty fifo failed")
	}
	if f.TryPut("y") {
		t.Fatal("TryPut on full fifo succeeded")
	}
	v, ok := f.TryGet()
	if !ok || v != "x" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
	if f.Len() != 0 || f.Cap() != 1 {
		t.Fatalf("Len=%d Cap=%d", f.Len(), f.Cap())
	}
}

func TestFifoZeroCapacityPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFifo[int](k, "f", 0)
}

func TestMutexExclusion(t *testing.T) {
	k := NewKernel()
	m := NewMutex(k, "m")
	inCrit := 0
	maxInCrit := 0
	worker := func(c *Ctx) {
		for i := 0; i < 5; i++ {
			m.Lock(c)
			inCrit++
			if inCrit > maxInCrit {
				maxInCrit = inCrit
			}
			c.WaitTime(2 * Ns)
			inCrit--
			m.Unlock(c)
			c.WaitTime(1 * Ns)
		}
	}
	k.Thread("w1", worker)
	k.Thread("w2", worker)
	k.Thread("w3", worker)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if maxInCrit != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInCrit)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	k := NewKernel()
	m := NewMutex(k, "m")
	var recovered bool
	k.Thread("a", func(c *Ctx) { m.Lock(c); c.WaitTime(10 * Ns); m.Unlock(c) })
	k.Thread("b", func(c *Ctx) {
		c.WaitTime(1 * Ns)
		defer func() {
			if recover() != nil {
				recovered = true
				panic(killError{name: "b"})
			}
		}()
		m.Unlock(c)
	})
	_ = k.Run(MaxTime)
	if !recovered {
		t.Fatal("Unlock by non-owner did not panic")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, "s", 2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		k.Thread("w", func(c *Ctx) {
			s.Wait(c)
			active++
			if active > maxActive {
				maxActive = active
			}
			c.WaitTime(5 * Ns)
			active--
			s.Post()
		})
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if maxActive != 2 {
		t.Fatalf("max active = %d, want 2", maxActive)
	}
}

func TestSemaphoreTryWait(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, "s", 1)
	if !s.TryWait() {
		t.Fatal("TryWait with count 1 failed")
	}
	if s.TryWait() {
		t.Fatal("TryWait with count 0 succeeded")
	}
	s.Post()
	if s.Value() != 1 {
		t.Fatalf("Value = %d, want 1", s.Value())
	}
}

// Property: a FIFO preserves order and loses nothing for any item count and
// capacity.
func TestFifoPropertyOrderPreserved(t *testing.T) {
	f := func(n uint8, capacity uint8) bool {
		items := int(n%100) + 1
		cp := int(capacity%8) + 1
		k := NewKernel()
		fifo := NewFifo[int](k, "f", cp)
		var got []int
		k.Thread("prod", func(c *Ctx) {
			for i := 0; i < items; i++ {
				fifo.Put(c, i)
			}
		})
		k.Thread("cons", func(c *Ctx) {
			for i := 0; i < items; i++ {
				got = append(got, fifo.Get(c))
			}
		})
		if err := k.Run(MaxTime); err != nil {
			return false
		}
		if len(got) != items {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{5 * Ns, "5ns"},
		{1500 * Ps, "1.5ns"},
		{2 * Us, "2us"},
		{3 * Ms, "3ms"},
		{1 * Sec, "1s"},
		{-5 * Ns, "-5ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeSecondsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		tm := Time(ms) * Ms
		return FromSeconds(tm.Seconds()) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
