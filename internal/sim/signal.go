package sim

import "fmt"

// Signal is a typed signal with SystemC evaluate/update semantics: a Write
// during the evaluation phase becomes visible only after the update phase,
// and sensitive processes run in the following delta cycle. The last Write
// within one evaluation phase wins.
type Signal[T comparable] struct {
	k       *Kernel
	name    string
	cur     T
	next    T
	hasNext bool
	changed *Event

	// onChange hooks fire inside the update phase (used by tracing).
	onChange []func(t Time, v T)
}

// NewSignal creates a signal initialised to init. Reading it before any
// write returns init.
func NewSignal[T comparable](k *Kernel, name string, init T) *Signal[T] {
	return &Signal[T]{k: k, name: name, cur: init, changed: k.NewEvent(name + ".changed")}
}

// Name returns the signal name.
func (s *Signal[T]) Name() string { return s.name }

// Read returns the current (post-update) value.
func (s *Signal[T]) Read() T { return s.cur }

// Write schedules v to become the signal value in the update phase of the
// current delta cycle. Writing the current value is a no-op for sensitivity
// (no change event fires) — and, with no update already pending, schedules
// nothing at all: applying it would compare-and-return, so skipping the
// queue round-trip is unobservable (same value, no change event, no delta)
// and keeps periodic re-writes of a steady value off the update phase.
func (s *Signal[T]) Write(v T) {
	if !s.hasNext {
		if v == s.cur {
			return
		}
		s.hasNext = true
		s.k.scheduleUpdate(s)
	}
	s.next = v
}

// Set writes v and returns whether that differs from the current value —
// convenience for conditional logging in models.
func (s *Signal[T]) Set(v T) bool {
	changed := v != s.cur
	s.Write(v)
	return changed
}

// Changed returns the event fired (as a delta notification) whenever the
// signal's value actually changes.
func (s *Signal[T]) Changed() *Event { return s.changed }

// OnChange registers a hook invoked during the update phase whenever the
// value changes. Hooks must not write signals.
func (s *Signal[T]) OnChange(h func(t Time, v T)) { s.onChange = append(s.onChange, h) }

func (s *Signal[T]) applyUpdate() {
	s.hasNext = false
	if s.next == s.cur {
		return
	}
	s.cur = s.next
	s.changed.NotifyDelta()
	for _, h := range s.onChange {
		h(s.k.now, s.cur)
	}
}

// String renders name=value for diagnostics.
func (s *Signal[T]) String() string { return fmt.Sprintf("%s=%v", s.name, s.cur) }
