package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// refEntry is the naive reference model of one live notification: the
// queue must pop entries in ascending (time, push order).
type refEntry struct {
	at    Time
	order uint64
	ev    *Event
}

// refModel is the brute-force reference queue: a flat slice scanned for
// the minimum on every pop.
type refModel struct {
	entries []refEntry
	pushes  uint64
}

func (m *refModel) find(ev *Event) int {
	for i := range m.entries {
		if m.entries[i].ev == ev {
			return i
		}
	}
	return -1
}

func (m *refModel) remove(i int) {
	m.entries = append(m.entries[:i], m.entries[i+1:]...)
}

func (m *refModel) min() (refEntry, bool) {
	if len(m.entries) == 0 {
		return refEntry{}, false
	}
	best := 0
	for i := 1; i < len(m.entries); i++ {
		e, b := m.entries[i], m.entries[best]
		if e.at < b.at || (e.at == b.at && e.order < b.order) {
			best = i
		}
	}
	return m.entries[best], true
}

// propHarness drives a timedQueue and the reference model through the
// kernel's three mutation paths (notify, cancel, pop), checking agreement
// and the stale-count invariant after every operation.
type propHarness struct {
	t     *testing.T
	q     timedQueue
	model refModel
	evs   []*Event
}

func newPropHarness(t *testing.T, nEvents int) *propHarness {
	h := &propHarness{t: t}
	h.evs = make([]*Event, nEvents)
	for i := range h.evs {
		h.evs[i] = &Event{pendingAt: pendingNone}
	}
	return h
}

// notify mimics Event.Notify's earlier-wins bookkeeping against the queue.
func (h *propHarness) notify(ev *Event, at Time) {
	if i := h.model.find(ev); i >= 0 {
		if h.model.entries[i].at <= at {
			return // earlier-wins: later notification is a no-op
		}
		// Supersede: the old heap entry dies.
		ev.pendingGen++
		ev.pendingAt = at
		h.q.noteStale()
		h.model.remove(i)
	} else {
		ev.pendingGen++
		ev.pendingAt = at
	}
	h.q.push(at, ev.pendingGen, ev)
	h.model.pushes++
	h.model.entries = append(h.model.entries, refEntry{at: at, order: h.model.pushes, ev: ev})
	h.check()
}

// cancel mimics Event.Cancel.
func (h *propHarness) cancel(ev *Event) {
	i := h.model.find(ev)
	if i < 0 {
		return
	}
	ev.pendingGen++
	ev.pendingAt = pendingNone
	h.q.noteStale()
	h.model.remove(i)
	h.check()
}

// pop mimics the kernel's merged peek/pop path and checks it against the
// model's minimum.
func (h *propHarness) pop() {
	at, ok := h.q.nextTime()
	want, wantOK := h.model.min()
	if ok != wantOK {
		h.t.Fatalf("nextTime ok = %v, model has %d live entries", ok, len(h.model.entries))
	}
	if !ok {
		h.check()
		return
	}
	if at != want.at {
		h.t.Fatalf("nextTime = %v, model min = %v", at, want.at)
	}
	top := h.q.popTop()
	if !top.live() {
		h.t.Fatal("popTop returned a dead entry after nextTime")
	}
	if top.ev != want.ev || top.at != want.at {
		h.t.Fatalf("popped (%v, %s-ish) but model expected (%v)", top.at, "event", want.at)
	}
	// The kernel clears pendingAt before firing, so the popped entry never
	// counts as stale.
	top.ev.pendingAt = pendingNone
	h.model.remove(h.model.find(top.ev))
	h.check()
}

// check asserts the stale-count bookkeeping — every heap slot is either
// one of the model's live entries or a dead entry the queue has been told
// about — and the compaction guarantee: the heap stays proportional to
// the number of live notifications, never to the number of notify calls.
// (Dead entries can transiently exceed half the heap, because compaction
// triggers only inside noteStale while pops shrink the heap without
// re-checking; the proportional bound is what the kernel relies on.)
func (h *propHarness) check() {
	h.t.Helper()
	live := len(h.model.entries)
	if got := h.q.len() - h.q.stale; got != live {
		h.t.Fatalf("queue believes %d live entries, model has %d", got, live)
	}
	if n := h.q.len(); n > 2*live+compactMin {
		h.t.Fatalf("heap not compacted: %d slots for %d live entries", n, live)
	}
}

// drain pops everything, asserting full agreement to emptiness.
func (h *propHarness) drain() {
	for {
		_, ok := h.q.nextTime()
		if !ok {
			if len(h.model.entries) != 0 {
				h.t.Fatalf("queue empty, model still has %d entries", len(h.model.entries))
			}
			if h.q.len() != 0 {
				h.t.Fatalf("no live entries but %d heap slots remain", h.q.len())
			}
			return
		}
		h.pop()
	}
}

// TestTimedQueueModelRandomOps drives random push/supersede/cancel/pop
// mixes against the reference model across several seeds and op counts,
// covering the lazy top-pruning and the stale-majority compaction path.
func TestTimedQueueModelRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		h := newPropHarness(t, 48)
		const ops = 4000
		for op := 0; op < ops; op++ {
			ev := h.evs[rng.Intn(len(h.evs))]
			switch r := rng.Float64(); {
			case r < 0.55:
				// Times collide often (16 buckets) to exercise the FIFO
				// tiebreak, and occasionally re-notify earlier/later to
				// exercise both supersede and the earlier-wins no-op.
				h.notify(ev, Time(1+rng.Intn(16))*Us)
			case r < 0.8:
				h.cancel(ev)
			default:
				h.pop()
			}
		}
		h.drain()
	}
}

// TestTimedQueueCompactionShrinksHeap pins the compaction path directly:
// burying a majority of dead entries in a large heap must shrink it
// without disturbing pop order.
func TestTimedQueueCompactionShrinksHeap(t *testing.T) {
	h := newPropHarness(t, 256)
	for i, ev := range h.evs {
		h.notify(ev, Time(i+1)*Us)
	}
	if h.q.len() != 256 {
		t.Fatalf("heap has %d entries, want 256", h.q.len())
	}
	// Cancel three quarters; compaction must have filtered the heap well
	// below the raw push count.
	for i, ev := range h.evs {
		if i%4 != 0 {
			h.cancel(ev)
		}
	}
	if h.q.len() >= 128 {
		t.Fatalf("heap still has %d slots after mass cancellation", h.q.len())
	}
	// The survivors drain in exactly ascending order.
	var got []Time
	for {
		at, ok := h.q.nextTime()
		if !ok {
			break
		}
		got = append(got, at)
		h.pop()
	}
	if len(got) != 64 {
		t.Fatalf("drained %d entries, want 64", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("compacted heap popped out of order")
	}
}

// TestTimedQueueFIFOOnEqualTimes pins the (time, push order) tiebreak:
// entries notified for the same instant pop in notify order, including
// after supersedes pushed them back in a different heap layout.
func TestTimedQueueFIFOOnEqualTimes(t *testing.T) {
	h := newPropHarness(t, 16)
	// Notify all at 10us, then supersede half of them to 5us (dead + new
	// entries interleaved in the heap array).
	for _, ev := range h.evs {
		h.notify(ev, 10*Us)
	}
	for i, ev := range h.evs {
		if i%2 == 0 {
			h.notify(ev, 5*Us)
		}
	}
	var order []*Event
	for {
		_, ok := h.q.nextTime()
		if !ok {
			break
		}
		top := h.q.popTop()
		top.ev.pendingAt = pendingNone
		h.model.remove(h.model.find(top.ev))
		order = append(order, top.ev)
	}
	if len(order) != 16 {
		t.Fatalf("popped %d, want 16", len(order))
	}
	// First the 5us group in supersede order (evs 0,2,4,...), then the
	// 10us group in original notify order (evs 1,3,5,...).
	for i := 0; i < 8; i++ {
		if order[i] != h.evs[2*i] {
			t.Fatalf("5us pop %d was not event %d", i, 2*i)
		}
		if order[8+i] != h.evs[2*i+1] {
			t.Fatalf("10us pop %d was not event %d", i, 2*i+1)
		}
	}
}
