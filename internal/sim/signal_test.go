package sim

import (
	"testing"
	"testing/quick"
)

func TestSignalInitialValue(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 42)
	if s.Read() != 42 {
		t.Fatalf("Read() = %d, want 42", s.Read())
	}
}

func TestSignalWriteIsDeltaDelayed(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	var seenDuringEval, seenAfter int
	k.Method("w", func() {
		s.Write(7)
		seenDuringEval = s.Read() // must still be old value
	})
	k.Method("r", func() { seenAfter = s.Read() }).Sensitive(s.Changed()).DontInitialize()
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if seenDuringEval != 0 {
		t.Fatalf("value visible during evaluation phase: %d", seenDuringEval)
	}
	if seenAfter != 7 {
		t.Fatalf("reader saw %d, want 7", seenAfter)
	}
}

func TestSignalLastWriteWins(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	k.Method("w", func() {
		s.Write(1)
		s.Write(2)
		s.Write(3)
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if s.Read() != 3 {
		t.Fatalf("Read() = %d, want 3 (last write)", s.Read())
	}
}

func TestSignalNoChangeNoEvent(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 5)
	fires := 0
	k.Method("w", func() { s.Write(5) }) // same value
	k.Method("r", func() { fires++ }).Sensitive(s.Changed()).DontInitialize()
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if fires != 0 {
		t.Fatalf("changed event fired %d times for a no-op write", fires)
	}
}

func TestSignalSetReportsChange(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 1)
	var a, b bool
	k.Method("w", func() {
		a = s.Set(1) // no change
		b = s.Set(2) // change
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if a || !b {
		t.Fatalf("Set results a=%v b=%v, want false,true", a, b)
	}
}

func TestSignalOnChangeHook(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	var got []int
	s.OnChange(func(_ Time, v int) { got = append(got, v) })
	e := k.NewEvent("tick")
	n := 0
	k.Method("w", func() {
		n++
		s.Write(n)
		if n < 3 {
			e.Notify(1 * Ns)
		}
	}).Sensitive(e)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("OnChange saw %v, want [1 2 3]", got)
	}
}

func TestSignalStringType(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "state", "idle")
	k.Method("w", func() { s.Write("busy") })
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if s.Read() != "busy" {
		t.Fatalf("Read() = %q, want busy", s.Read())
	}
}

// Property: for any sequence of written values, after the update phase the
// signal holds the last written value, and the change-event count equals the
// number of transitions between distinct consecutive *applied* values.
func TestSignalPropertyLastWriteWins(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		k := NewKernel()
		s := NewSignal(k, "s", int32(0))
		e := k.NewEvent("tick")
		i := 0
		changes := 0
		k.Method("r", func() { changes++ }).Sensitive(s.Changed()).DontInitialize()
		k.Method("w", func() {
			s.Write(int32(vals[i]))
			i++
			if i < len(vals) {
				e.Notify(1 * Ns)
			}
		}).Sensitive(e)
		if err := k.Run(MaxTime); err != nil {
			return false
		}
		// Expected change count: transitions in the applied sequence.
		want := 0
		prev := int32(0)
		for _, v := range vals {
			if int32(v) != prev {
				want++
				prev = int32(v)
			}
		}
		return s.Read() == int32(vals[len(vals)-1]) && changes == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
