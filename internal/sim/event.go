package sim

// Event is a kernel notification primitive, equivalent to sc_event.
//
// Processes become runnable when an event they are sensitive to (statically
// or via a dynamic wait) fires. Events may be notified immediately (within
// the current evaluation phase), for the next delta cycle, or after a timed
// delay. Like SystemC, a pending timed notification is overridden only by an
// *earlier* one: notifying an event that already has a pending notification
// at an earlier or equal time is a no-op.
type Event struct {
	k    *Kernel
	name string
	id   int

	// static subscribers (processes whose sensitivity list includes this
	// event) and dynamic waiters (threads blocked in Wait, methods with a
	// NextTrigger) — dynamic waiters are cleared when the event fires.
	static  []*process
	dynamic []*process

	// pendingAt is the simulation time of the outstanding timed
	// notification, or pendingNone. pendingGen invalidates stale heap
	// entries after an earlier notify or a cancel.
	pendingAt    Time
	pendingGen   uint64
	pendingDelta bool
}

const pendingNone Time = -1

// Name returns the diagnostic name given at creation.
func (e *Event) Name() string { return e.name }

// Notify schedules the event to fire after delay. A zero delay schedules a
// delta-cycle notification (SystemC SC_ZERO_TIME semantics). If a timed
// notification is already pending at an earlier or equal time the call has
// no effect; a later pending notification is cancelled and replaced.
func (e *Event) Notify(delay Time) {
	if delay < 0 {
		panic("sim: Event.Notify with negative delay")
	}
	if delay == 0 {
		e.NotifyDelta()
		return
	}
	if e.pendingDelta {
		return // delta notification beats any timed one
	}
	at := e.k.now + delay
	hadPending := e.pendingAt != pendingNone
	if hadPending && e.pendingAt <= at {
		return
	}
	e.pendingGen++
	e.pendingAt = at
	if hadPending {
		// The later notification's heap entry just died (gen moved on);
		// tell the queue so it can compact under churn.
		e.k.timed.noteStale()
	}
	e.k.scheduleTimed(e, at, e.pendingGen)
}

// NotifyDelta schedules the event to fire in the next delta cycle,
// cancelling any pending timed notification.
func (e *Event) NotifyDelta() {
	if e.pendingDelta {
		return
	}
	if e.pendingAt != pendingNone {
		e.pendingGen++ // invalidate the timed entry
		e.pendingAt = pendingNone
		e.k.timed.noteStale()
	}
	e.pendingDelta = true
	e.k.deltaQueue = append(e.k.deltaQueue, e)
}

// NotifyNow fires the event immediately: processes sensitive to it become
// runnable within the current evaluation phase. Use sparingly; immediate
// notification is order-sensitive just as in SystemC.
func (e *Event) NotifyNow() {
	e.fire()
}

// Cancel removes any pending (timed or delta) notification.
func (e *Event) Cancel() {
	if e.pendingAt != pendingNone {
		e.pendingGen++
		e.pendingAt = pendingNone
		e.k.timed.noteStale()
	}
	e.pendingDelta = false // delta entry becomes a no-op when drained
}

// Pending reports whether a timed or delta notification is outstanding.
func (e *Event) Pending() bool { return e.pendingDelta || e.pendingAt != pendingNone }

// fire makes every subscribed process runnable and clears dynamic waiters.
// A pending timed notification still set here means the event fired out of
// band (NotifyNow) while its heap entry is still queued — count that entry
// stale. The kernel's timed pop path clears pendingAt before calling fire,
// so entries that left the heap are never double-counted.
func (e *Event) fire() {
	if e.pendingAt != pendingNone {
		e.pendingAt = pendingNone
		e.k.timed.noteStale()
	}
	e.pendingDelta = false
	for _, p := range e.static {
		e.k.makeRunnable(p)
	}
	if len(e.dynamic) > 0 {
		dyn := e.dynamic
		e.dynamic = e.dynamic[:0]
		for _, p := range dyn {
			if p.clearDynamicWait(e) {
				e.k.makeRunnable(p)
			}
		}
	}
}

// subscribeDynamic registers p as a one-shot waiter.
func (e *Event) subscribeDynamic(p *process) {
	e.dynamic = append(e.dynamic, p)
}

// unsubscribeDynamic removes p from the one-shot waiter list (used when a
// WaitAny fires on a sibling event).
func (e *Event) unsubscribeDynamic(p *process) {
	for i, q := range e.dynamic {
		if q == p {
			e.dynamic = append(e.dynamic[:i], e.dynamic[i+1:]...)
			return
		}
	}
}
