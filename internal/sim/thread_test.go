package sim

import (
	"testing"
	"testing/quick"
)

func TestThreadWaitTime(t *testing.T) {
	k := NewKernel()
	var marks []Time
	k.Thread("t", func(c *Ctx) {
		marks = append(marks, c.Now())
		c.WaitTime(10 * Ns)
		marks = append(marks, c.Now())
		c.WaitTime(5 * Ns)
		marks = append(marks, c.Now())
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10 * Ns, 15 * Ns}
	if len(marks) != 3 {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestThreadWaitEvent(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("go")
	var woke Time = -1
	k.Thread("t", func(c *Ctx) {
		c.Wait(e)
		woke = c.Now()
	})
	e.Notify(42 * Ns)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if woke != 42*Ns {
		t.Fatalf("woke at %v, want 42ns", woke)
	}
}

func TestThreadWaitAnyReturnsTrigger(t *testing.T) {
	k := NewKernel()
	a := k.NewEvent("a")
	b := k.NewEvent("b")
	var got *Event
	k.Thread("t", func(c *Ctx) {
		got = c.WaitAny(a, b)
	})
	b.Notify(5 * Ns)
	a.Notify(50 * Ns)
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("WaitAny returned %v, want b", got)
	}
	// The thread terminated; the pending a-notification must not crash.
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
}

func TestThreadTermination(t *testing.T) {
	k := NewKernel()
	p := k.Thread("t", func(c *Ctx) { c.WaitTime(1 * Ns) })
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if !p.Terminated() {
		t.Fatal("thread should have terminated")
	}
}

func TestTwoThreadsPingPong(t *testing.T) {
	k := NewKernel()
	ping := k.NewEvent("ping")
	pong := k.NewEvent("pong")
	var seq []string
	k.Thread("A", func(c *Ctx) {
		for i := 0; i < 3; i++ {
			ping.Notify(1 * Ns)
			c.Wait(pong)
			seq = append(seq, "A")
		}
	})
	k.Thread("B", func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.Wait(ping)
			seq = append(seq, "B")
			pong.Notify(1 * Ns)
		}
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	want := []string{"B", "A", "B", "A", "B", "A"}
	if len(seq) != len(want) {
		t.Fatalf("seq = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}

func TestThreadWaitUntil(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "level", 0)
	e := k.NewEvent("tick")
	n := 0
	k.Method("drv", func() {
		n++
		s.Write(n)
		if n < 10 {
			e.Notify(1 * Ns)
		}
	}).Sensitive(e)
	var reached Time = -1
	k.Thread("t", func(c *Ctx) {
		c.WaitUntil(s.Changed(), func() bool { return s.Read() >= 5 })
		reached = c.Now()
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if reached != 4*Ns {
		t.Fatalf("condition reached at %v, want 4ns (5th write)", reached)
	}
}

func TestShutdownUnwindsBlockedThreads(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("never")
	cleanedUp := false
	k.Thread("t", func(c *Ctx) {
		defer func() { cleanedUp = true }()
		c.Wait(e) // never fires
	})
	if err := k.Run(1 * Us); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !cleanedUp {
		t.Fatal("deferred cleanup did not run on Shutdown")
	}
}

func TestThreadPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Thread("t", func(c *Ctx) { panic("boom") })
	err := k.Run(MaxTime)
	if err == nil {
		t.Fatal("expected error from panicking thread")
	}
}

func TestWaitDelta(t *testing.T) {
	k := NewKernel()
	var before, after uint64
	k.Thread("t", func(c *Ctx) {
		before = k.DeltaCount()
		c.WaitDelta()
		after = k.DeltaCount()
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("WaitDelta did not advance delta count: %d -> %d", before, after)
	}
	if k.Now() != 0 {
		t.Fatalf("WaitDelta advanced time to %v", k.Now())
	}
}

func TestWaitTimeNonPositivePanics(t *testing.T) {
	k := NewKernel()
	var recovered bool
	k.Thread("t", func(c *Ctx) {
		defer func() {
			if recover() != nil {
				recovered = true
				panic(killError{name: "t"}) // unwind quietly
			}
		}()
		c.WaitTime(0)
	})
	_ = k.Run(MaxTime)
	if !recovered {
		t.Fatal("WaitTime(0) did not panic")
	}
}

// Property: N threads each waiting a distinct pseudo-random duration all wake
// exactly at their requested times, regardless of creation order.
func TestThreadPropertyWakeTimes(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 50 {
			return true
		}
		k := NewKernel()
		woke := make([]Time, len(durs))
		for i, d := range durs {
			i, d := i, Time(d)+1 // durations >= 1ps
			k.Thread("t", func(c *Ctx) {
				c.WaitTime(d)
				woke[i] = c.Now()
			})
		}
		if err := k.Run(MaxTime); err != nil {
			return false
		}
		for i, d := range durs {
			if woke[i] != Time(d)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
