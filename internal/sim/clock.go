package sim

// Clock is a free-running periodic clock built on the kernel primitives,
// equivalent to sc_clock. It exposes posedge/negedge events, the boolean
// level as a signal, and a rising-edge cycle counter (used by the
// simulation-speed benchmarks that mirror the paper's Kcycle/s metric).
type Clock struct {
	k      *Kernel
	name   string
	period Time
	level  *Signal[bool]
	pos    *Event
	neg    *Event
	cycles uint64
	halt   bool
}

// NewClock creates a clock with the given full period (high for period/2,
// low for period/2), starting low; the first posedge occurs after period/2.
func NewClock(k *Kernel, name string, period Time) *Clock {
	if period < 2 {
		panic("sim: clock period must be at least 2ps")
	}
	c := &Clock{
		k: k, name: name, period: period,
		level: NewSignal(k, name+".level", false),
		pos:   k.NewEvent(name + ".posedge"),
		neg:   k.NewEvent(name + ".negedge"),
	}
	tick := k.NewEvent(name + ".tick")
	half := period / 2
	k.Method(name+".driver", func() {
		if c.halt {
			return
		}
		if c.level.Read() {
			c.level.Write(false)
			c.neg.Notify(0)
		} else {
			c.level.Write(true)
			c.cycles++
			c.pos.Notify(0)
		}
		tick.Notify(half)
	}).Sensitive(tick).DontInitialize()
	tick.Notify(half)
	return c
}

// Name returns the clock name.
func (c *Clock) Name() string { return c.name }

// Period returns the clock period.
func (c *Clock) Period() Time { return c.period }

// Posedge returns the event fired on every rising edge.
func (c *Clock) Posedge() *Event { return c.pos }

// Negedge returns the event fired on every falling edge.
func (c *Clock) Negedge() *Event { return c.neg }

// Level returns the clock level signal.
func (c *Clock) Level() *Signal[bool] { return c.level }

// Cycles returns the number of rising edges generated so far.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Halt permanently stops the clock; pending edges are not generated. A
// halted clock lets Run drain the event queue in clock-driven models.
func (c *Clock) Halt() { c.halt = true }
