package power

import (
	"math"
	"testing"
	"testing/quick"

	"godpm/internal/sim"
)

func TestDefaultProfileValidates(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	mut := []func(*Profile){
		func(p *Profile) { p.CeffF = 0 },
		func(p *Profile) { p.IdleFactor = 1.5 },
		func(p *Profile) { p.On[1].FreqHz = p.On[0].FreqHz },
		func(p *Profile) { p.On[3].Vdd = p.On[2].Vdd },
		func(p *Profile) { p.Sleep[1].Power = p.Sleep[0].Power + 1 },
		func(p *Profile) { p.InstrWeight[InstrALU] = 0 },
	}
	for i, m := range mut {
		p := DefaultProfile()
		m(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestPowerOrdering(t *testing.T) {
	p := DefaultProfile()
	for i := 0; i < 3; i++ {
		if p.ActivePower(p.On[i]) <= p.ActivePower(p.On[i+1]) {
			t.Errorf("ActivePower(ON%d) <= ActivePower(ON%d)", i+1, i+2)
		}
		if p.IdlePower(p.On[i]) <= p.IdlePower(p.On[i+1]) {
			t.Errorf("IdlePower(ON%d) <= IdlePower(ON%d)", i+1, i+2)
		}
	}
	for i := range p.On {
		if p.IdlePower(p.On[i]) >= p.ActivePower(p.On[i]) {
			t.Errorf("IdlePower >= ActivePower at ON%d", i+1)
		}
	}
}

func TestDynamicPowerFormula(t *testing.T) {
	p := DefaultProfile()
	op := OperatingPoint{Name: "X", FreqHz: 100e6, Vdd: 1.0}
	want := 1e-9 * 1.0 * 1.0 * 100e6 // C·V²·f = 0.1 W
	if got := p.DynamicPower(op); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DynamicPower = %v, want %v", got, want)
	}
}

func TestTaskDurationScalesWithFrequency(t *testing.T) {
	p := DefaultProfile()
	d1 := p.TaskDuration(1000, p.On[0])
	d4 := p.TaskDuration(1000, p.On[3])
	ratio := float64(d4) / float64(d1)
	if math.Abs(ratio-4.0) > 0.01 {
		t.Fatalf("ON4/ON1 duration ratio = %v, want 4 (paper's ≈300%% delay overhead)", ratio)
	}
}

func TestTaskEnergyLowerAtLowerVoltage(t *testing.T) {
	p := DefaultProfile()
	e1 := p.TaskEnergy(100000, InstrALU, p.On[0])
	e4 := p.TaskEnergy(100000, InstrALU, p.On[3])
	if e4 >= e1 {
		t.Fatalf("TaskEnergy ON4 (%v) >= ON1 (%v): voltage scaling must save energy", e4, e1)
	}
	// Dynamic part scales with V²: (0.9/1.8)² = 0.25.
	if e4 > 0.5*e1 {
		t.Fatalf("ON4 energy %v should be well under half of ON1's %v", e4, e1)
	}
}

func TestInstructionClassWeights(t *testing.T) {
	p := DefaultProfile()
	prev := 0.0
	for c := InstructionClass(0); c < NumInstrClasses; c++ {
		e := p.EnergyPerCycle(p.On[0], c)
		if e <= prev {
			t.Fatalf("EnergyPerCycle not increasing with class %s", c)
		}
		prev = e
	}
}

func TestInstructionClassString(t *testing.T) {
	want := map[InstructionClass]string{
		InstrALU: "ALU", InstrMemory: "MEM", InstrMultiply: "MUL", InstrIO: "IO",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if InstructionClass(99).String() != "InstructionClass(99)" {
		t.Errorf("out-of-range String() = %q", InstructionClass(99).String())
	}
}

func TestBreakEvenOrdering(t *testing.T) {
	// Deeper sleep states must have larger break-even times against the
	// same idle power: that's the whole point of having several.
	p := DefaultProfile()
	pIdle := p.IdlePower(p.On[0])
	prev := sim.Time(0)
	for i := 0; i < 5; i++ {
		tbe, ok := p.BreakEven(pIdle, p.Sleep[i])
		if !ok {
			t.Fatalf("no break-even for %s against idle power %v", p.Sleep[i].Name, pIdle)
		}
		if tbe <= prev {
			t.Fatalf("break-even for %s (%v) not greater than shallower state's (%v)",
				p.Sleep[i].Name, tbe, prev)
		}
		prev = tbe
	}
}

func TestBreakEvenAtLeastTransitionLatency(t *testing.T) {
	p := DefaultProfile()
	for i := range p.Sleep {
		s := p.Sleep[i]
		tbe, ok := p.BreakEven(10.0 /* huge idle power */, s)
		if !ok {
			t.Fatalf("no break-even for %s", s.Name)
		}
		if tbe < s.EnterLatency+s.WakeLatency {
			t.Fatalf("%s break-even %v below transition latency %v",
				s.Name, tbe, s.EnterLatency+s.WakeLatency)
		}
	}
}

func TestBreakEvenImpossibleWhenSleepHungrier(t *testing.T) {
	p := DefaultProfile()
	s := SleepState{Name: "bogus", Power: 1.0}
	if _, ok := p.BreakEven(0.5, s); ok {
		t.Fatal("break-even reported for a sleep state hungrier than idle")
	}
}

func TestBreakEvenEnergyInequality(t *testing.T) {
	// Property: for T > Tbe, sleeping costs strictly less energy than
	// idling; for Ttr <= T < Tbe it costs at least as much.
	p := DefaultProfile()
	pIdle := p.IdlePower(p.On[0])
	for i := range p.Sleep {
		s := p.Sleep[i]
		tbe, ok := p.BreakEven(pIdle, s)
		if !ok {
			t.Fatalf("no break-even for %s", s.Name)
		}
		sleepCost := func(T sim.Time) float64 {
			return s.EnterEnergy + s.WakeEnergy + s.Power*(T-s.EnterLatency-s.WakeLatency).Seconds()
		}
		idleCost := func(T sim.Time) float64 { return pIdle * T.Seconds() }
		above := tbe * 2
		if sleepCost(above) >= idleCost(above) {
			t.Errorf("%s: sleeping for 2×Tbe not cheaper than idling", s.Name)
		}
		ttr := s.EnterLatency + s.WakeLatency
		if tbe > ttr {
			below := ttr + (tbe-ttr)/2
			if sleepCost(below) < idleCost(below)-1e-12 {
				t.Errorf("%s: sleeping below Tbe already cheaper — Tbe too conservative", s.Name)
			}
		}
	}
}

func TestClockPeriod(t *testing.T) {
	op := OperatingPoint{Name: "X", FreqHz: 100e6, Vdd: 1.0}
	if got := op.ClockPeriod(); got != 10*sim.Ns {
		t.Fatalf("ClockPeriod = %v, want 10ns", got)
	}
}

func TestClockPeriodZeroFreqPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OperatingPoint{}.ClockPeriod()
}

func TestAlphaPowerLawPlausibility(t *testing.T) {
	// The default profile's lower operating points must not exceed what the
	// alpha-power law permits at their voltage (alpha=1.6, Vt=0.4V).
	p := DefaultProfile()
	for i := 1; i < 4; i++ {
		fmax := p.AlphaPowerFreq(p.On[i].Vdd, 0.4, 1.6)
		if p.On[i].FreqHz > fmax*1.05 {
			t.Errorf("%s at %.2gHz exceeds alpha-power bound %.3g",
				p.On[i].Name, p.On[i].FreqHz, fmax)
		}
	}
	if p.AlphaPowerFreq(0.3, 0.4, 1.6) != 0 {
		t.Error("frequency below threshold voltage should be 0")
	}
}

// Property: task energy is monotonically non-decreasing in instruction count
// and duration is exactly linear in instruction count.
func TestTaskEnergyProperty(t *testing.T) {
	p := DefaultProfile()
	f := func(a, b uint16) bool {
		na, nb := int64(a)+1, int64(a)+1+int64(b)
		for i := range p.On {
			if p.TaskEnergy(nb, InstrALU, p.On[i]) < p.TaskEnergy(na, InstrALU, p.On[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
