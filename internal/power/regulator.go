package power

import (
	"fmt"
	"math"

	"godpm/internal/sim"
)

// Regulator models the DC-DC converter between the battery and the
// voltage-scaled core — the supply path the paper's variable-voltage
// technique implies. A buck converter's efficiency falls both at light
// load (fixed switching losses dominate) and at heavy load (conduction
// losses grow with the square of the current); the battery must supply
// P_load / η(P_load).
//
// The model is the standard loss decomposition
//
//	P_in = P_load + P_fixed + k_cond·P_load²
//
// with η = P_load / P_in, plus an optional efficiency derating when the
// conversion ratio V_out/V_in departs from the converter's sweet spot.
type Regulator struct {
	// FixedLossW is the load-independent switching/control loss.
	FixedLossW float64
	// CondLossPerW scales the conduction loss: P_cond = CondLossPerW·P².
	CondLossPerW float64
	// RatioPenalty derates efficiency per unit of |Vout/Vin − SweetRatio|
	// (0 disables). Voltage scaling to low Vdd costs extra here: the
	// paper's ON4 supply sits far from the converter's optimum.
	RatioPenalty float64
	SweetRatio   float64
	// VinNominal is the battery-side voltage used for the ratio derating.
	VinNominal float64
}

// DefaultRegulator returns a converter characteristic typical of a small
// SoC buck regulator: 2 mW fixed loss, ~4%/W conduction slope, sweet spot
// at half the input voltage.
func DefaultRegulator() *Regulator {
	return &Regulator{
		FixedLossW:   2e-3,
		CondLossPerW: 0.04,
		RatioPenalty: 0.05,
		SweetRatio:   0.5,
		VinNominal:   3.6,
	}
}

// Validate checks the characteristic.
func (r *Regulator) Validate() error {
	if r.FixedLossW < 0 || r.CondLossPerW < 0 || r.RatioPenalty < 0 {
		return fmt.Errorf("power: regulator losses must be non-negative")
	}
	if r.RatioPenalty > 0 {
		if r.VinNominal <= 0 {
			return fmt.Errorf("power: regulator VinNominal must be positive with ratio derating")
		}
		if r.SweetRatio <= 0 || r.SweetRatio >= 1 {
			return fmt.Errorf("power: regulator SweetRatio %v outside (0,1)", r.SweetRatio)
		}
	}
	return nil
}

// InputPower returns the battery-side power for a given load power at the
// given output voltage. Zero load still costs the fixed loss.
func (r *Regulator) InputPower(loadW, vout float64) float64 {
	if loadW < 0 {
		loadW = 0
	}
	in := loadW + r.FixedLossW + r.CondLossPerW*loadW*loadW
	if r.RatioPenalty > 0 && loadW > 0 {
		ratio := vout / r.VinNominal
		dev := ratio - r.SweetRatio
		if dev < 0 {
			dev = -dev
		}
		// Derating shows up as extra loss proportional to the load.
		in += r.RatioPenalty * dev * loadW
	}
	return in
}

// Efficiency returns η = load/input at the given operating condition; it is
// zero at zero load (fixed losses with nothing delivered).
func (r *Regulator) Efficiency(loadW, vout float64) float64 {
	if loadW <= 0 {
		return 0
	}
	return loadW / r.InputPower(loadW, vout)
}

// PeakEfficiencyLoad returns the load power at which efficiency peaks (for
// a fixed ratio derating the optimum of P/(P + F + kP² + cP) is √(F/k)).
func (r *Regulator) PeakEfficiencyLoad() float64 {
	if r.CondLossPerW == 0 {
		return 0 // efficiency is monotone increasing in load
	}
	return math.Sqrt(r.FixedLossW / r.CondLossPerW)
}

// EnergyOverhead integrates the converter's loss for a constant load over a
// duration: E_loss = (P_in − P_load)·t.
func (r *Regulator) EnergyOverhead(loadW, vout float64, d sim.Time) float64 {
	return (r.InputPower(loadW, vout) - math.Max(loadW, 0)) * d.Seconds()
}
