package power

import (
	"math"
	"testing"
	"testing/quick"

	"godpm/internal/sim"
)

func TestRegulatorValidate(t *testing.T) {
	if err := DefaultRegulator().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Regulator{
		{FixedLossW: -1},
		{CondLossPerW: -0.1},
		{RatioPenalty: -0.1},
		{RatioPenalty: 0.1, VinNominal: 0},
		{RatioPenalty: 0.1, VinNominal: 3.6, SweetRatio: 1.0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad regulator %d accepted", i)
		}
	}
}

func TestRegulatorInputAlwaysAboveLoad(t *testing.T) {
	r := DefaultRegulator()
	for _, p := range []float64{0, 0.01, 0.1, 0.5, 1, 5} {
		in := r.InputPower(p, 1.8)
		if in < p {
			t.Fatalf("input %v below load %v — free energy", in, p)
		}
	}
}

func TestRegulatorZeroLoadCostsFixedLoss(t *testing.T) {
	r := DefaultRegulator()
	if got := r.InputPower(0, 1.8); got != r.FixedLossW {
		t.Fatalf("zero-load input %v, want fixed loss %v", got, r.FixedLossW)
	}
	if r.Efficiency(0, 1.8) != 0 {
		t.Fatal("zero-load efficiency should be 0")
	}
}

func TestRegulatorEfficiencyPeak(t *testing.T) {
	r := DefaultRegulator()
	r.RatioPenalty = 0 // isolate the fixed/conduction trade-off
	pPeak := r.PeakEfficiencyLoad()
	if pPeak <= 0 {
		t.Fatal("no peak load")
	}
	ePeak := r.Efficiency(pPeak, 1.8)
	for _, p := range []float64{pPeak / 4, pPeak * 4} {
		if r.Efficiency(p, 1.8) >= ePeak {
			t.Fatalf("efficiency at %v not below peak at %v", p, pPeak)
		}
	}
	if ePeak <= 0.5 || ePeak >= 1 {
		t.Fatalf("peak efficiency %v implausible", ePeak)
	}
}

func TestRegulatorRatioDerating(t *testing.T) {
	r := DefaultRegulator()
	// Sweet spot at 1.8 V out of 3.6 V; 0.9 V (the ON4 supply) is worse.
	atSweet := r.Efficiency(0.2, 1.8)
	atLow := r.Efficiency(0.2, 0.9)
	if atLow >= atSweet {
		t.Fatalf("low-ratio efficiency %v not below sweet-spot %v", atLow, atSweet)
	}
}

func TestRegulatorEnergyOverhead(t *testing.T) {
	r := &Regulator{FixedLossW: 0.01}
	got := r.EnergyOverhead(1.0, 1.8, 2*sim.Sec)
	if math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("EnergyOverhead = %v, want 0.02 J", got)
	}
}

func TestRegulatorNegativeLoadClamped(t *testing.T) {
	r := DefaultRegulator()
	if got := r.InputPower(-1, 1.8); got != r.FixedLossW {
		t.Fatalf("negative load input %v", got)
	}
}

// Property: efficiency is always in [0,1) and input power is monotone in
// load.
func TestRegulatorMonotoneProperty(t *testing.T) {
	r := DefaultRegulator()
	f := func(a, b uint16) bool {
		pa, pb := float64(a)/1000, float64(b)/1000
		if pa > pb {
			pa, pb = pb, pa
		}
		if r.InputPower(pb, 1.2) < r.InputPower(pa, 1.2) {
			return false
		}
		eff := r.Efficiency(pb, 1.2)
		return eff >= 0 && eff < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
