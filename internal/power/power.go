// Package power models the energy/performance characterisation of an IP
// block: the variable-voltage operating points behind the ACPI execution
// states ON1..ON4, the sleep-state power and transition costs behind
// SL1..SL4 and soft-off, and the break-even-time analysis the LEM uses to
// decide whether entering a sleep state pays off.
//
// The paper's IPs are characterised by "an average energy dissipation
// associated to each power state and type of instruction"; this package is
// the Go equivalent of that characterisation, parameterised by standard
// CMOS scaling laws (dynamic power C·V²·f, alpha-power-law delay).
package power

import (
	"fmt"
	"math"

	"godpm/internal/sim"
)

// OperatingPoint is one (frequency, supply voltage) pair of the
// variable-voltage technique: ON1 is fastest/hungriest, ON4 slowest/most
// frugal.
type OperatingPoint struct {
	Name   string
	FreqHz float64 // clock frequency at this point
	Vdd    float64 // supply voltage in volts
}

// ClockPeriod returns the clock period at this operating point.
func (op OperatingPoint) ClockPeriod() sim.Time {
	if op.FreqHz <= 0 {
		panic("power: operating point with non-positive frequency")
	}
	return sim.Time(float64(sim.Sec)/op.FreqHz + 0.5)
}

// SleepState characterises one ACPI sleep (or soft-off) state: residual
// power, and the latency/energy costs of entering and leaving it.
type SleepState struct {
	Name         string
	Power        float64  // residual power while asleep, watts
	EnterLatency sim.Time // time to reach the state from an ON state
	EnterEnergy  float64  // joules dissipated entering
	WakeLatency  sim.Time // time to return to an ON state
	WakeEnergy   float64  // joules dissipated waking
	LosesContext bool     // true for soft-off: state must be restored
}

// InstructionClass weights the per-cycle energy by the kind of instruction
// executing, mirroring the paper's per-instruction-type characterisation.
type InstructionClass int

// Instruction classes ordered by increasing energy weight.
const (
	InstrALU InstructionClass = iota
	InstrMemory
	InstrMultiply
	InstrIO
	NumInstrClasses
)

// String returns the mnemonic for the class.
func (c InstructionClass) String() string {
	switch c {
	case InstrALU:
		return "ALU"
	case InstrMemory:
		return "MEM"
	case InstrMultiply:
		return "MUL"
	case InstrIO:
		return "IO"
	default:
		return fmt.Sprintf("InstructionClass(%d)", int(c))
	}
}

// Profile is the complete power characterisation of one IP block.
type Profile struct {
	// CeffF is the effective switched capacitance per clock cycle (farads);
	// dynamic power is CeffF·Vdd²·f.
	CeffF float64
	// LeakWPerV is the leakage coefficient: leakage power = LeakWPerV·Vdd.
	LeakWPerV float64
	// IdleFactor is the fraction of dynamic power burned while clocked but
	// idle (imperfect clock gating).
	IdleFactor float64
	// CyclesPerInstr converts instructions to clock cycles.
	CyclesPerInstr float64
	// InstrWeight scales per-cycle energy by instruction class.
	InstrWeight [NumInstrClasses]float64
	// On holds the execution points ON1..ON4 (index 0 = ON1).
	On [4]OperatingPoint
	// Sleep holds SL1..SL4 then soft-off (index 0 = SL1, 4 = soft-off).
	Sleep [5]SleepState
	// VScaleLatency and VScaleEnergy cost one ON↔ON voltage/frequency step.
	VScaleLatency sim.Time
	VScaleEnergy  float64
}

// DefaultProfile returns the reference characterisation used throughout the
// experiments: a 200 MHz, 1.8 V core with four voltage-scaled execution
// points (the ON4 clock is 4× slower than ON1, so ON4-dominated runs show
// the ≈300% delay overheads of the paper's Table 2) and five sleep states
// of decreasing residual power and increasing wake cost.
func DefaultProfile() *Profile {
	return &Profile{
		CeffF:          1e-9,
		LeakWPerV:      5.5e-3,
		IdleFactor:     0.50,
		CyclesPerInstr: 1.0,
		InstrWeight:    [NumInstrClasses]float64{1.0, 1.2, 1.35, 1.5},
		On: [4]OperatingPoint{
			{Name: "ON1", FreqHz: 200e6, Vdd: 1.8},
			{Name: "ON2", FreqHz: 150e6, Vdd: 1.5},
			{Name: "ON3", FreqHz: 100e6, Vdd: 1.2},
			{Name: "ON4", FreqHz: 50e6, Vdd: 0.9},
		},
		Sleep: [5]SleepState{
			{Name: "SL1", Power: 5e-3, EnterLatency: 1 * sim.Us, EnterEnergy: 0.5e-6, WakeLatency: 2 * sim.Us, WakeEnergy: 1e-6},
			{Name: "SL2", Power: 1e-3, EnterLatency: 5 * sim.Us, EnterEnergy: 1e-6, WakeLatency: 20 * sim.Us, WakeEnergy: 4e-6},
			{Name: "SL3", Power: 0.2e-3, EnterLatency: 20 * sim.Us, EnterEnergy: 2e-6, WakeLatency: 200 * sim.Us, WakeEnergy: 20e-6},
			{Name: "SL4", Power: 0.05e-3, EnterLatency: 100 * sim.Us, EnterEnergy: 5e-6, WakeLatency: 2 * sim.Ms, WakeEnergy: 100e-6},
			{Name: "SoftOff", Power: 0, EnterLatency: 1 * sim.Ms, EnterEnergy: 10e-6, WakeLatency: 20 * sim.Ms, WakeEnergy: 1e-3, LosesContext: true},
		},
		VScaleLatency: 10 * sim.Us,
		VScaleEnergy:  0.2e-6,
	}
}

// Validate checks internal consistency (monotonic frequencies and voltages,
// positive coefficients, sleep states ordered by decreasing power).
func (p *Profile) Validate() error {
	if p.CeffF <= 0 || p.CyclesPerInstr <= 0 {
		return fmt.Errorf("power: non-positive CeffF or CyclesPerInstr")
	}
	if p.IdleFactor < 0 || p.IdleFactor > 1 {
		return fmt.Errorf("power: IdleFactor %v outside [0,1]", p.IdleFactor)
	}
	for i := 0; i < 3; i++ {
		if p.On[i].FreqHz <= p.On[i+1].FreqHz {
			return fmt.Errorf("power: ON%d freq not greater than ON%d", i+1, i+2)
		}
		if p.On[i].Vdd <= p.On[i+1].Vdd {
			return fmt.Errorf("power: ON%d vdd not greater than ON%d", i+1, i+2)
		}
	}
	for i := 0; i < 4; i++ {
		if p.Sleep[i].Power < p.Sleep[i+1].Power {
			return fmt.Errorf("power: sleep state %s less frugal than %s",
				p.Sleep[i+1].Name, p.Sleep[i].Name)
		}
	}
	for c := InstructionClass(0); c < NumInstrClasses; c++ {
		if p.InstrWeight[c] <= 0 {
			return fmt.Errorf("power: non-positive instruction weight for %s", c)
		}
	}
	return nil
}

// DynamicPower returns C·V²·f at the given point, in watts.
func (p *Profile) DynamicPower(op OperatingPoint) float64 {
	return p.CeffF * op.Vdd * op.Vdd * op.FreqHz
}

// LeakagePower returns the leakage power at the given supply voltage.
func (p *Profile) LeakagePower(vdd float64) float64 { return p.LeakWPerV * vdd }

// ActivePower is the total power while executing at op.
func (p *Profile) ActivePower(op OperatingPoint) float64 {
	return p.DynamicPower(op) + p.LeakagePower(op.Vdd)
}

// IdlePower is the power while clocked but idle at op.
func (p *Profile) IdlePower(op OperatingPoint) float64 {
	return p.IdleFactor*p.DynamicPower(op) + p.LeakagePower(op.Vdd)
}

// EnergyPerCycle returns the dynamic energy of one clock cycle at op for the
// given instruction class.
func (p *Profile) EnergyPerCycle(op OperatingPoint, c InstructionClass) float64 {
	return p.InstrWeight[c] * p.CeffF * op.Vdd * op.Vdd
}

// TaskDuration returns the wall-clock time to execute `instructions`
// instructions at op.
func (p *Profile) TaskDuration(instructions int64, op OperatingPoint) sim.Time {
	cycles := float64(instructions) * p.CyclesPerInstr
	return sim.Time(cycles/op.FreqHz*float64(sim.Sec) + 0.5)
}

// TaskEnergy returns the total energy (dynamic + leakage over the task
// duration) of executing `instructions` instructions of class c at op.
func (p *Profile) TaskEnergy(instructions int64, c InstructionClass, op OperatingPoint) float64 {
	cycles := float64(instructions) * p.CyclesPerInstr
	dyn := cycles * p.EnergyPerCycle(op, c)
	leak := p.LeakagePower(op.Vdd) * p.TaskDuration(instructions, op).Seconds()
	return dyn + leak
}

// BreakEven returns the minimum idle duration for which entering sleep state
// s (from an ON point with idle power pIdle) reduces total energy, and
// whether such a duration exists at all (it does not when the sleep state's
// residual power exceeds the idle power).
//
// Derivation: staying idle for T costs pIdle·T; sleeping costs
// EnterEnergy + WakeEnergy + s.Power·(T − EnterLatency − WakeLatency).
// The break-even is where the two are equal, clamped to at least the total
// transition latency.
func (p *Profile) BreakEven(pIdle float64, s SleepState) (sim.Time, bool) {
	if pIdle <= s.Power {
		return 0, false
	}
	etr := s.EnterEnergy + s.WakeEnergy
	ttr := s.EnterLatency + s.WakeLatency
	num := etr - s.Power*ttr.Seconds()
	tbe := sim.FromSeconds(num / (pIdle - s.Power))
	if tbe < ttr {
		tbe = ttr
	}
	return tbe, true
}

// AlphaPowerFreq estimates the maximum frequency at supply voltage vdd using
// the alpha-power law f ∝ (Vdd−Vt)^alpha / Vdd, normalised so that the ON1
// point maps to its nominal frequency. It is used to validate that a
// profile's operating points are physically plausible.
func (p *Profile) AlphaPowerFreq(vdd, vt, alpha float64) float64 {
	ref := p.On[0]
	norm := ref.FreqHz / (math.Pow(ref.Vdd-vt, alpha) / ref.Vdd)
	if vdd <= vt {
		return 0
	}
	return norm * math.Pow(vdd-vt, alpha) / vdd
}
