package task

import (
	"testing"

	"godpm/internal/power"
)

func TestPriorityStringsAndParse(t *testing.T) {
	want := map[Priority]string{
		Low: "Low", Medium: "Medium", High: "High", VeryHigh: "VeryHigh",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
		got, err := ParsePriority(s)
		if err != nil || got != p {
			t.Errorf("ParsePriority(%q) = %v,%v", s, got, err)
		}
	}
	if _, err := ParsePriority("Urgent"); err == nil {
		t.Error("bogus priority parsed")
	}
	if Priority(9).String() != "Priority(9)" {
		t.Errorf("out-of-range String() = %q", Priority(9).String())
	}
}

func TestPriorityOrdering(t *testing.T) {
	if !(Low < Medium && Medium < High && High < VeryHigh) {
		t.Fatal("priority ordering broken")
	}
	if NumPriorities != 4 {
		t.Fatalf("NumPriorities = %d", NumPriorities)
	}
}

func TestTaskValidate(t *testing.T) {
	good := Task{ID: 1, Instructions: 100, Class: power.InstrALU, Priority: Medium}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Task{
		{ID: 2, Instructions: 0, Class: power.InstrALU, Priority: Low},
		{ID: 3, Instructions: -5, Class: power.InstrALU, Priority: Low},
		{ID: 4, Instructions: 10, Class: power.InstructionClass(99), Priority: Low},
		{ID: 5, Instructions: 10, Class: power.InstrALU, Priority: Priority(-1)},
		{ID: 6, Instructions: 10, Class: power.InstrALU, Priority: Priority(7)},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("task %d accepted", b.ID)
		}
	}
}
