// Package task defines the unit of work a functional IP executes — the
// paper groups instructions into "tasks" issued on external service
// requests — and the four-class task priority the LEM receives.
package task

import (
	"fmt"

	"godpm/internal/power"
	"godpm/internal/sim"
)

// Priority is the task priority, coded in the paper's four classes.
type Priority int

// Priorities in increasing urgency.
const (
	Low Priority = iota
	Medium
	High
	VeryHigh
	NumPriorities = int(VeryHigh) + 1
)

// String returns the paper's name for the priority.
func (p Priority) String() string {
	switch p {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	case VeryHigh:
		return "VeryHigh"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// ParsePriority converts a name (as in Table 1: "Low", "Medium", "High",
// "VeryHigh") to a Priority.
func ParsePriority(name string) (Priority, error) {
	for p := Priority(0); int(p) < NumPriorities; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("task: unknown priority %q", name)
}

// Task is one sequence of instructions the IP executes on a service request.
type Task struct {
	ID           int
	Instructions int64
	Class        power.InstructionClass
	Priority     Priority
	// Release is when the service request arrives at the IP.
	Release sim.Time
}

// Validate checks the task is executable.
func (t Task) Validate() error {
	if t.Instructions <= 0 {
		return fmt.Errorf("task %d: non-positive instruction count", t.ID)
	}
	if t.Class < 0 || t.Class >= power.NumInstrClasses {
		return fmt.Errorf("task %d: invalid instruction class %d", t.ID, int(t.Class))
	}
	if t.Priority < 0 || Priority(int(t.Priority)) > VeryHigh {
		return fmt.Errorf("task %d: invalid priority %d", t.ID, int(t.Priority))
	}
	return nil
}
