// Package rules implements the LEM's power-state selection policy — the
// paper's Table 1 — as an ordered, first-match rule table over the three
// quantised inputs (task priority, battery status, temperature class).
//
// The paper presents the rules as "expressions of the natural language, as
// in the fuzzy rules": this package therefore ships both a data encoding of
// Table 1 and a small DSL that parses exactly that natural-language form
// ("if the priority is high and the battery is empty then the power state
// is ON4"); a test proves the two encodings agree on the entire input
// space. A coverage analyser reports unmatched input combinations and
// shadowed (dead) rules, which Table 1 taken literally has.
package rules

import (
	"fmt"
	"strings"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/task"
	"godpm/internal/thermal"
)

// PrioritySet, BatterySet and TempSet are wildcard-capable condition sets,
// one bit per class. The zero value matches nothing; use the Any* constants
// for the paper's "-" wildcard.
type (
	PrioritySet uint8
	BatterySet  uint8
	TempSet     uint8
)

// Set constructors.
func P(ps ...task.Priority) PrioritySet {
	var s PrioritySet
	for _, p := range ps {
		s |= 1 << uint(p)
	}
	return s
}

// B builds a battery condition set.
func B(bs ...battery.Status) BatterySet {
	var s BatterySet
	for _, b := range bs {
		s |= 1 << uint(b)
	}
	return s
}

// T builds a temperature condition set.
func T(ts ...thermal.Class) TempSet {
	var s TempSet
	for _, t := range ts {
		s |= 1 << uint(t)
	}
	return s
}

// Wildcards matching every class ("-" in Table 1).
var (
	AnyPriority = P(task.Low, task.Medium, task.High, task.VeryHigh)
	AnyBattery  = B(battery.Empty, battery.Low, battery.Medium, battery.High, battery.Full, battery.Mains)
	AnyTemp     = T(thermal.LowTemp, thermal.MediumTemp, thermal.HighTemp)
)

// Has reports set membership.
func (s PrioritySet) Has(p task.Priority) bool { return s&(1<<uint(p)) != 0 }

// Has reports set membership.
func (s BatterySet) Has(b battery.Status) bool { return s&(1<<uint(b)) != 0 }

// Has reports set membership.
func (s TempSet) Has(t thermal.Class) bool { return s&(1<<uint(t)) != 0 }

// Rule is one row of the policy: a conjunctive condition over the three
// inputs and the power state selected when it matches.
type Rule struct {
	Priority PrioritySet
	Battery  BatterySet
	Temp     TempSet
	Target   acpi.State
	// Source preserves the rule's original text (DSL) or a synthesised
	// description (data encoding), for diagnostics.
	Source string
}

// Matches reports whether the rule's condition holds for the given inputs.
func (r Rule) Matches(p task.Priority, b battery.Status, t thermal.Class) bool {
	return r.Priority.Has(p) && r.Battery.Has(b) && r.Temp.Has(t)
}

// Table is an ordered first-match rule list with an optional default state
// used when no rule matches.
type Table struct {
	rules      []Rule
	def        acpi.State
	hasDefault bool
}

// NewTable builds a table from rules in priority order (first match wins).
func NewTable(rules []Rule) *Table {
	cp := make([]Rule, len(rules))
	copy(cp, rules)
	return &Table{rules: cp}
}

// WithDefault sets the state returned when no rule matches.
func (t *Table) WithDefault(s acpi.State) *Table {
	t.def = s
	t.hasDefault = true
	return t
}

// Default returns the state applied when no rule matches, and whether one
// is configured.
func (t *Table) Default() (acpi.State, bool) { return t.def, t.hasDefault }

// Rules returns a copy of the rule list.
func (t *Table) Rules() []Rule {
	cp := make([]Rule, len(t.rules))
	copy(cp, t.rules)
	return cp
}

// Len returns the number of rules (excluding the default).
func (t *Table) Len() int { return len(t.rules) }

// Select returns the state chosen for the inputs and the index of the
// matching rule (-1 when the default applied). ok is false when nothing
// matched and no default is configured.
func (t *Table) Select(p task.Priority, b battery.Status, tc thermal.Class) (state acpi.State, ruleIndex int, ok bool) {
	for i, r := range t.rules {
		if r.Matches(p, b, tc) {
			return r.Target, i, true
		}
	}
	if t.hasDefault {
		return t.def, -1, true
	}
	return 0, -1, false
}

// Coverage analyses the table over the full 4×6×3 input space.
type Coverage struct {
	// Unmatched lists input combinations no rule (ignoring the default)
	// matches.
	Unmatched []Combo
	// DeadRules lists indices of rules that are never the first match.
	DeadRules []int
	// Hits counts, per rule index, how many input combinations it decides.
	Hits []int
}

// Combo is one point of the quantised input space.
type Combo struct {
	Priority task.Priority
	Battery  battery.Status
	Temp     thermal.Class
}

// String renders the combo as in the paper's table.
func (c Combo) String() string {
	return fmt.Sprintf("(%s,%s,%s)", c.Priority, c.Battery, c.Temp)
}

// Analyze computes coverage of the rule list over the whole input space.
func (t *Table) Analyze() Coverage {
	cov := Coverage{Hits: make([]int, len(t.rules))}
	for p := task.Priority(0); int(p) < task.NumPriorities; p++ {
		for b := battery.Status(0); int(b) < battery.NumStatuses; b++ {
			for tc := thermal.Class(0); int(tc) < thermal.NumClasses; tc++ {
				_, idx, ok := t.selectNoDefault(p, b, tc)
				if !ok {
					cov.Unmatched = append(cov.Unmatched, Combo{p, b, tc})
					continue
				}
				cov.Hits[idx]++
			}
		}
	}
	for i, h := range cov.Hits {
		if h == 0 {
			cov.DeadRules = append(cov.DeadRules, i)
		}
	}
	return cov
}

func (t *Table) selectNoDefault(p task.Priority, b battery.Status, tc thermal.Class) (acpi.State, int, bool) {
	for i, r := range t.rules {
		if r.Matches(p, b, tc) {
			return r.Target, i, true
		}
	}
	return 0, -1, false
}

// Total reports whether every input combination is decided (directly or via
// the default).
func (t *Table) Total() bool {
	if t.hasDefault {
		return true
	}
	return len(t.Analyze().Unmatched) == 0
}

// Format renders the table in the paper's four-column layout.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-22s %-14s %s\n", "Task priority", "Battery", "Temperature", "Selected State")
	for _, r := range t.rules {
		fmt.Fprintf(&sb, "%-22s %-22s %-14s %s\n",
			formatPrioritySet(r.Priority), formatBatterySet(r.Battery), formatTempSet(r.Temp), r.Target)
	}
	if t.hasDefault {
		fmt.Fprintf(&sb, "%-22s %-22s %-14s %s\n", "-", "-", "-", t.def)
	}
	return sb.String()
}

func formatPrioritySet(s PrioritySet) string {
	if s == AnyPriority {
		return "-"
	}
	abbrev := map[task.Priority]string{task.VeryHigh: "V", task.High: "H", task.Medium: "M", task.Low: "L"}
	var parts []string
	for _, p := range []task.Priority{task.VeryHigh, task.High, task.Medium, task.Low} {
		if s.Has(p) {
			parts = append(parts, abbrev[p])
		}
	}
	return strings.Join(parts, ", ")
}

func formatBatterySet(s BatterySet) string {
	if s == AnyBattery {
		return "-"
	}
	abbrev := map[battery.Status]string{
		battery.Full: "F", battery.High: "H", battery.Medium: "M",
		battery.Low: "L", battery.Empty: "E", battery.Mains: "Power supply",
	}
	var parts []string
	for _, b := range []battery.Status{battery.Mains, battery.Full, battery.High, battery.Medium, battery.Low, battery.Empty} {
		if s.Has(b) {
			parts = append(parts, abbrev[b])
		}
	}
	return strings.Join(parts, ", ")
}

func formatTempSet(s TempSet) string {
	if s == AnyTemp {
		return "-"
	}
	abbrev := map[thermal.Class]string{thermal.HighTemp: "H", thermal.MediumTemp: "M", thermal.LowTemp: "L"}
	var parts []string
	for _, t := range []thermal.Class{thermal.HighTemp, thermal.MediumTemp, thermal.LowTemp} {
		if s.Has(t) {
			parts = append(parts, abbrev[t])
		}
	}
	return strings.Join(parts, ", ")
}
