package rules

import (
	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/task"
	"godpm/internal/thermal"
)

// Table1Rules is the paper's Table 1 ("Power state selection algorithm")
// encoded row by row, in table order, with first-match semantics.
// Abbreviations as in the paper: priorities V/H/M/L; battery E(mpty),
// L(ow), M(edium), H(igh), F(ull) and "Power supply" (mains); temperature
// L/M/H; "-" is a wildcard.
func Table1Rules() []Rule {
	V, H, M, L := task.VeryHigh, task.High, task.Medium, task.Low
	bE, bL, bM, bH, bF := battery.Empty, battery.Low, battery.Medium, battery.High, battery.Full
	tL, tM, tH := thermal.LowTemp, thermal.MediumTemp, thermal.HighTemp
	return []Rule{
		// V  E  -  → ON4
		{P(V), B(bE), AnyTemp, acpi.ON4, "row1: V,E,- -> ON4"},
		// V  -  H  → ON4
		{P(V), AnyBattery, T(tH), acpi.ON4, "row2: V,-,H -> ON4"},
		// H,M,L  E  -  → SL1
		{P(H, M, L), B(bE), AnyTemp, acpi.SL1, "row3: HML,E,- -> SL1"},
		// H,M,L  -  H  → SL1
		{P(H, M, L), AnyBattery, T(tH), acpi.SL1, "row4: HML,-,H -> SL1"},
		// -  L  M,L  → ON4
		{AnyPriority, B(bL), T(tM, tL), acpi.ON4, "row5: -,L,ML -> ON4"},
		// -  E  M  → ON4   (dead: rows 1 and 3 already cover battery Empty)
		{AnyPriority, B(bE), T(tM), acpi.ON4, "row6: -,E,M -> ON4 (shadowed)"},
		// V  M,H  L  → ON1
		{P(V), B(bM, bH), T(tL), acpi.ON1, "row7: V,MH,L -> ON1"},
		// H  M,H  L  → ON2
		{P(H), B(bM, bH), T(tL), acpi.ON2, "row8: H,MH,L -> ON2"},
		// M  M,H  L  → ON3
		{P(M), B(bM, bH), T(tL), acpi.ON3, "row9: M,MH,L -> ON3"},
		// L  M,H  L  → ON4
		{P(L), B(bM, bH), T(tL), acpi.ON4, "row10: L,MH,L -> ON4"},
		// V,H,M  F  L  → ON1
		{P(V, H, M), B(bF), T(tL), acpi.ON1, "row11: VHM,F,L -> ON1"},
		// L  F  L  → ON2
		{P(L), B(bF), T(tL), acpi.ON2, "row12: L,F,L -> ON2"},
		// -  Power supply  M,L  → ON1
		{AnyPriority, B(battery.Mains), T(tM, tL), acpi.ON1, "row13: -,Mains,ML -> ON1"},
	}
}

// Table1 returns the paper's table completed with the documented default
// (→ ON3) for the input region Table 1 leaves undecided: battery Medium/
// High/Full with temperature Medium (rows 7–12 require temperature Low).
// ON3 is the mid-speed compromise consistent with the table's intent of
// slowing down as conditions degrade.
func Table1() *Table {
	return NewTable(Table1Rules()).WithDefault(acpi.ON3)
}

// Table1DSL is the same policy expressed in the natural-language rule form
// the paper alludes to ("If the priority is high and the battery is empty
// then the power state is ON4"). Parsing this text must yield a table that
// agrees with Table1() on every input.
const Table1DSL = `
# Table 1 - Power state selection algorithm (Conti, DATE 2005)
if the priority is veryhigh and the battery is empty then the power state is ON4
if the priority is veryhigh and the temperature is high then the power state is ON4
if the priority is high or medium or low and the battery is empty then the power state is SL1
if the priority is high or medium or low and the temperature is high then the power state is SL1
if the battery is low and the temperature is medium or low then the power state is ON4
if the battery is empty and the temperature is medium then the power state is ON4
if the priority is veryhigh and the battery is medium or high and the temperature is low then the power state is ON1
if the priority is high and the battery is medium or high and the temperature is low then the power state is ON2
if the priority is medium and the battery is medium or high and the temperature is low then the power state is ON3
if the priority is low and the battery is medium or high and the temperature is low then the power state is ON4
if the priority is veryhigh or high or medium and the battery is full and the temperature is low then the power state is ON1
if the priority is low and the battery is full and the temperature is low then the power state is ON2
if the battery is mains and the temperature is medium or low then the power state is ON1
default ON3
`
