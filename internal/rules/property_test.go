package rules

import (
	"math/rand"
	"testing"
	"testing/quick"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/task"
	"godpm/internal/thermal"
)

// randomTable builds an arbitrary rule table from a seed.
func randomTable(seed int64, nRules int) *Table {
	rng := rand.New(rand.NewSource(seed))
	randSet := func(width int) uint8 {
		for {
			s := uint8(rng.Intn(1 << width))
			if s != 0 {
				return s
			}
		}
	}
	rules := make([]Rule, nRules)
	for i := range rules {
		rules[i] = Rule{
			Priority: PrioritySet(randSet(task.NumPriorities)),
			Battery:  BatterySet(randSet(battery.NumStatuses)),
			Temp:     TempSet(randSet(thermal.NumClasses)),
			Target:   acpi.State(rng.Intn(acpi.NumStates)),
		}
	}
	return NewTable(rules)
}

// Property: for any random table, the coverage analysis is internally
// consistent — hits over all rules plus unmatched combos equals the input
// space, dead rules have zero hits, and every unmatched combo really has
// no matching rule.
func TestAnalyzeConsistencyProperty(t *testing.T) {
	const space = task.NumPriorities * battery.NumStatuses * thermal.NumClasses
	f := func(seed int64, n uint8) bool {
		tbl := randomTable(seed, int(n%10)+1)
		cov := tbl.Analyze()
		total := len(cov.Unmatched)
		for _, h := range cov.Hits {
			total += h
		}
		if total != space {
			return false
		}
		for _, idx := range cov.DeadRules {
			if cov.Hits[idx] != 0 {
				return false
			}
		}
		rs := tbl.Rules()
		for _, c := range cov.Unmatched {
			for _, r := range rs {
				if r.Matches(c.Priority, c.Battery, c.Temp) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a default makes any table total, and the default is
// only used on previously unmatched combos.
func TestDefaultOnlyFillsGapsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		bare := randomTable(seed, int(n%6)+1)
		cov := bare.Analyze()
		withDef := NewTable(bare.Rules()).WithDefault(acpi.ON3)
		if !withDef.Total() {
			return false
		}
		unmatched := make(map[Combo]bool, len(cov.Unmatched))
		for _, c := range cov.Unmatched {
			unmatched[c] = true
		}
		for p := task.Priority(0); int(p) < task.NumPriorities; p++ {
			for b := battery.Status(0); int(b) < battery.NumStatuses; b++ {
				for tc := thermal.Class(0); int(tc) < thermal.NumClasses; tc++ {
					s1, i1, ok1 := bare.Select(p, b, tc)
					s2, i2, ok2 := withDef.Select(p, b, tc)
					if !ok2 {
						return false
					}
					if ok1 {
						// Rule-decided inputs are unchanged by the default.
						if s2 != s1 || i2 != i1 {
							return false
						}
					} else {
						// Gap inputs get exactly the default.
						if s2 != acpi.ON3 || i2 != -1 || !unmatched[Combo{p, b, tc}] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
