package rules

import (
	"fmt"
	"strings"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/task"
	"godpm/internal/thermal"
)

// Parse reads a rule script in the paper's natural-language form, one rule
// per line:
//
//	if the priority is high and the battery is empty then the power state is ON4
//	if the battery is low and the temperature is medium or low then ON4
//	default ON3
//
// Recognised fields are "priority", "battery" and "temperature"; values are
// the class names (priority: low/medium/high/veryhigh or "very high";
// battery: empty/low/medium/high/full/mains or "power supply";
// temperature: low/medium/high). "or" builds value sets, "and" joins field
// conditions, the article "the" is noise, and "# ..." comments and blank
// lines are skipped. A field not mentioned in a rule is a wildcard. At most
// one "default STATE" line is allowed.
func Parse(script string) (*Table, error) {
	var rules []Rule
	var def acpi.State
	hasDefault := false

	for lineNo, raw := range strings.Split(script, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		toks := lex(line)
		if len(toks) == 0 {
			// The line held only noise words ("the", stray punctuation);
			// treat it like a blank line rather than indexing into nothing.
			continue
		}
		switch toks[0] {
		case "default":
			if hasDefault {
				return nil, fmt.Errorf("rules: line %d: duplicate default", lineNo+1)
			}
			if len(toks) != 2 {
				return nil, fmt.Errorf("rules: line %d: default wants exactly one state", lineNo+1)
			}
			s, err := parseState(toks[1])
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %v", lineNo+1, err)
			}
			def = s
			hasDefault = true
		case "if":
			r, err := parseRule(toks[1:])
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %v", lineNo+1, err)
			}
			r.Source = strings.TrimSpace(raw)
			rules = append(rules, r)
		default:
			return nil, fmt.Errorf("rules: line %d: expected 'if' or 'default', got %q", lineNo+1, toks[0])
		}
	}
	t := NewTable(rules)
	if hasDefault {
		t.WithDefault(def)
	}
	return t, nil
}

// MustParse is Parse that panics on error, for compiled-in rule scripts.
func MustParse(script string) *Table {
	t, err := Parse(script)
	if err != nil {
		panic(err)
	}
	return t
}

// lex lowercases, drops the article "the", and merges the two-word values
// "very high" → "veryhigh" and "power supply" → "mains".
func lex(line string) []string {
	words := strings.Fields(strings.ToLower(line))
	var toks []string
	for i := 0; i < len(words); i++ {
		w := strings.Trim(words[i], ",.")
		switch {
		case w == "the" || w == "":
			continue
		case w == "very" && i+1 < len(words) && strings.Trim(words[i+1], ",.") == "high":
			toks = append(toks, "veryhigh")
			i++
		case w == "power" && i+1 < len(words) && strings.Trim(words[i+1], ",.") == "supply":
			toks = append(toks, "mains")
			i++
		default:
			toks = append(toks, w)
		}
	}
	return toks
}

// parseRule parses the token stream after "if".
func parseRule(toks []string) (Rule, error) {
	r := Rule{Priority: AnyPriority, Battery: AnyBattery, Temp: AnyTemp}
	// Split at "then".
	thenIdx := -1
	for i, t := range toks {
		if t == "then" {
			thenIdx = i
			break
		}
	}
	if thenIdx < 0 {
		return r, fmt.Errorf("missing 'then'")
	}
	cond, action := toks[:thenIdx], toks[thenIdx+1:]

	// Action: optional "power state is" noise, then the state name.
	var stateTok string
	for _, t := range action {
		switch t {
		case "power", "state", "is":
			continue
		default:
			if stateTok != "" {
				return r, fmt.Errorf("unexpected token %q after state", t)
			}
			stateTok = t
		}
	}
	if stateTok == "" {
		return r, fmt.Errorf("missing target state after 'then'")
	}
	st, err := parseState(stateTok)
	if err != nil {
		return r, err
	}
	r.Target = st

	// Condition: FIELD is VALUE (or VALUE)* (and FIELD is ...)*.
	i := 0
	seen := map[string]bool{}
	for i < len(cond) {
		field := cond[i]
		if field != "priority" && field != "battery" && field != "temperature" {
			return r, fmt.Errorf("unknown field %q", field)
		}
		if seen[field] {
			return r, fmt.Errorf("field %q conditioned twice", field)
		}
		seen[field] = true
		i++
		if i >= len(cond) || cond[i] != "is" {
			return r, fmt.Errorf("expected 'is' after %q", field)
		}
		i++
		var vals []string
		for {
			if i >= len(cond) {
				break
			}
			vals = append(vals, cond[i])
			i++
			if i < len(cond) && cond[i] == "or" {
				i++
				continue
			}
			break
		}
		if len(vals) == 0 {
			return r, fmt.Errorf("no values for field %q", field)
		}
		if err := applyFieldValues(&r, field, vals); err != nil {
			return r, err
		}
		if i < len(cond) {
			if cond[i] != "and" {
				return r, fmt.Errorf("expected 'and' between conditions, got %q", cond[i])
			}
			i++
			if i >= len(cond) {
				return r, fmt.Errorf("dangling 'and'")
			}
		}
	}
	if len(seen) == 0 {
		return r, fmt.Errorf("empty condition")
	}
	return r, nil
}

func applyFieldValues(r *Rule, field string, vals []string) error {
	switch field {
	case "priority":
		var s PrioritySet
		for _, v := range vals {
			p, err := parsePriorityValue(v)
			if err != nil {
				return err
			}
			s |= P(p)
		}
		r.Priority = s
	case "battery":
		var s BatterySet
		for _, v := range vals {
			b, err := parseBatteryValue(v)
			if err != nil {
				return err
			}
			s |= B(b)
		}
		r.Battery = s
	case "temperature":
		var s TempSet
		for _, v := range vals {
			t, err := parseTempValue(v)
			if err != nil {
				return err
			}
			s |= T(t)
		}
		r.Temp = s
	}
	return nil
}

func parsePriorityValue(v string) (task.Priority, error) {
	switch v {
	case "low":
		return task.Low, nil
	case "medium":
		return task.Medium, nil
	case "high":
		return task.High, nil
	case "veryhigh":
		return task.VeryHigh, nil
	default:
		return 0, fmt.Errorf("unknown priority value %q", v)
	}
}

func parseBatteryValue(v string) (battery.Status, error) {
	switch v {
	case "empty":
		return battery.Empty, nil
	case "low":
		return battery.Low, nil
	case "medium":
		return battery.Medium, nil
	case "high":
		return battery.High, nil
	case "full":
		return battery.Full, nil
	case "mains", "powersupply":
		return battery.Mains, nil
	default:
		return 0, fmt.Errorf("unknown battery value %q", v)
	}
}

func parseTempValue(v string) (thermal.Class, error) {
	switch v {
	case "low":
		return thermal.LowTemp, nil
	case "medium":
		return thermal.MediumTemp, nil
	case "high":
		return thermal.HighTemp, nil
	default:
		return 0, fmt.Errorf("unknown temperature value %q", v)
	}
}

// parseState accepts case-insensitive state names: on1..on4, sl1..sl4,
// softoff (also "soft-off").
func parseState(tok string) (acpi.State, error) {
	norm := strings.ReplaceAll(strings.ToLower(tok), "-", "")
	switch norm {
	case "on1":
		return acpi.ON1, nil
	case "on2":
		return acpi.ON2, nil
	case "on3":
		return acpi.ON3, nil
	case "on4":
		return acpi.ON4, nil
	case "sl1":
		return acpi.SL1, nil
	case "sl2":
		return acpi.SL2, nil
	case "sl3":
		return acpi.SL3, nil
	case "sl4":
		return acpi.SL4, nil
	case "softoff":
		return acpi.SoftOff, nil
	default:
		return 0, fmt.Errorf("unknown state %q", tok)
	}
}
