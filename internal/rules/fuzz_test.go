package rules

import (
	"fmt"
	"strings"
	"testing"

	"godpm/internal/battery"
	"godpm/internal/task"
	"godpm/internal/thermal"
)

// FuzzParseRules throws arbitrary scripts at the natural-language parser.
// For every script the parser must return without panicking; for every
// script it accepts, the resulting table must (a) survive a full Select /
// Analyze / Format sweep and (b) round-trip: re-parsing the rules'
// recorded Source lines plus the default must reproduce a semantically
// identical table.
func FuzzParseRules(f *testing.F) {
	f.Add(Table1DSL)
	f.Add("if the priority is high and the battery is empty then the power state is ON4")
	f.Add("if the battery is low and the temperature is medium or low then ON4\ndefault ON3")
	f.Add("if the priority is very high and the battery is power supply then soft-off")
	f.Add("default SL2")
	f.Add("the")
	f.Add(", . the the ,")
	f.Add("# just a comment\n\nif temperature is high then SL1")
	f.Add("if the priority is high then")
	f.Add("if battery is nosuch then ON1")
	f.Add("if priority is high and priority is low then ON1")
	f.Add("if priority is high or then ON1")
	f.Add("default ON1\ndefault ON2")

	f.Fuzz(func(t *testing.T, script string) {
		tab, err := Parse(script)
		if err != nil {
			return // rejected input: only panics are failures
		}
		// The accepted table is fully usable over the whole input space.
		for p := task.Priority(0); int(p) < task.NumPriorities; p++ {
			for b := battery.Status(0); int(b) < battery.NumStatuses; b++ {
				for tc := thermal.Class(0); int(tc) < thermal.NumClasses; tc++ {
					tab.Select(p, b, tc)
				}
			}
		}
		tab.Analyze()
		tab.Total()
		_ = tab.Format()

		// Round-trip through the recorded rule sources.
		var sb strings.Builder
		for _, r := range tab.Rules() {
			sb.WriteString(r.Source)
			sb.WriteByte('\n')
		}
		if def, ok := tab.Default(); ok {
			fmt.Fprintf(&sb, "default %s\n", def)
		}
		tab2, err := Parse(sb.String())
		if err != nil {
			t.Fatalf("accepted script did not round-trip: %v\nrebuilt:\n%s", err, sb.String())
		}
		r1, r2 := tab.Rules(), tab2.Rules()
		if len(r1) != len(r2) {
			t.Fatalf("round trip changed rule count: %d != %d", len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].Priority != r2[i].Priority || r1[i].Battery != r2[i].Battery ||
				r1[i].Temp != r2[i].Temp || r1[i].Target != r2[i].Target {
				t.Fatalf("round trip changed rule %d: %+v != %+v", i, r1[i], r2[i])
			}
		}
		d1, ok1 := tab.Default()
		d2, ok2 := tab2.Default()
		if ok1 != ok2 || d1 != d2 {
			t.Fatalf("round trip changed default: (%v,%v) != (%v,%v)", d1, ok1, d2, ok2)
		}
	})
}

// TestParseNoiseOnlyLine pins the crasher FuzzParseRules found: a line of
// pure noise words lexes to zero tokens and must be skipped, not indexed.
func TestParseNoiseOnlyLine(t *testing.T) {
	for _, script := range []string{"the", ", . the the ,", "the\nthe the\n"} {
		tab, err := Parse(script)
		if err != nil {
			t.Fatalf("%q: %v", script, err)
		}
		if tab.Len() != 0 {
			t.Fatalf("%q parsed to %d rules", script, tab.Len())
		}
	}
	// A noise-only line between real rules is skipped like a blank one.
	tab, err := Parse("the ,\nif the priority is high then ON1\n. the\ndefault ON3\n")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Fatalf("got %d rules, want 1", tab.Len())
	}
	if def, ok := tab.Default(); !ok || def.String() != "ON3" {
		t.Fatalf("default = %v, %v", def, ok)
	}
}
