package rules

import (
	"strings"
	"testing"
	"testing/quick"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/task"
	"godpm/internal/thermal"
)

func TestSetsAndWildcards(t *testing.T) {
	s := P(task.High, task.Low)
	if !s.Has(task.High) || !s.Has(task.Low) || s.Has(task.Medium) {
		t.Fatal("priority set membership wrong")
	}
	for p := task.Priority(0); int(p) < task.NumPriorities; p++ {
		if !AnyPriority.Has(p) {
			t.Fatalf("AnyPriority misses %v", p)
		}
	}
	for b := battery.Status(0); int(b) < battery.NumStatuses; b++ {
		if !AnyBattery.Has(b) {
			t.Fatalf("AnyBattery misses %v", b)
		}
	}
	for c := thermal.Class(0); int(c) < thermal.NumClasses; c++ {
		if !AnyTemp.Has(c) {
			t.Fatalf("AnyTemp misses %v", c)
		}
	}
}

func TestTable1SpotChecks(t *testing.T) {
	tbl := Table1()
	cases := []struct {
		p    task.Priority
		b    battery.Status
		tc   thermal.Class
		want acpi.State
	}{
		// Row 1: very-high priority with empty battery still runs, slowly.
		{task.VeryHigh, battery.Empty, thermal.LowTemp, acpi.ON4},
		// Row 2: very-high priority at high temperature runs at ON4.
		{task.VeryHigh, battery.Full, thermal.HighTemp, acpi.ON4},
		// Row 3: anyone else with empty battery is parked in SL1.
		{task.High, battery.Empty, thermal.LowTemp, acpi.SL1},
		{task.Low, battery.Empty, thermal.HighTemp, acpi.SL1},
		// Row 4: anyone else at high temperature is parked in SL1.
		{task.Medium, battery.Full, thermal.HighTemp, acpi.SL1},
		// Row 5: low battery, mild temperature → ON4 regardless of priority.
		{task.VeryHigh, battery.Low, thermal.LowTemp, acpi.ON4},
		{task.Low, battery.Low, thermal.MediumTemp, acpi.ON4},
		// Rows 7..10: battery M/H, temp low → ON state tracks priority.
		{task.VeryHigh, battery.Medium, thermal.LowTemp, acpi.ON1},
		{task.High, battery.High, thermal.LowTemp, acpi.ON2},
		{task.Medium, battery.Medium, thermal.LowTemp, acpi.ON3},
		{task.Low, battery.High, thermal.LowTemp, acpi.ON4},
		// Rows 11/12: full battery is generous.
		{task.Medium, battery.Full, thermal.LowTemp, acpi.ON1},
		{task.Low, battery.Full, thermal.LowTemp, acpi.ON2},
		// Row 13: mains power → ON1 except at high temperature.
		{task.Low, battery.Mains, thermal.LowTemp, acpi.ON1},
		{task.Low, battery.Mains, thermal.MediumTemp, acpi.ON1},
		// Completion default: battery M/H/F with temp Medium → ON3.
		{task.VeryHigh, battery.Medium, thermal.MediumTemp, acpi.ON3},
		{task.Low, battery.Full, thermal.MediumTemp, acpi.ON3},
	}
	for _, c := range cases {
		got, _, ok := tbl.Select(c.p, c.b, c.tc)
		if !ok {
			t.Errorf("Select(%v,%v,%v): no decision", c.p, c.b, c.tc)
			continue
		}
		if got != c.want {
			t.Errorf("Select(%v,%v,%v) = %v, want %v", c.p, c.b, c.tc, got, c.want)
		}
	}
}

func TestTable1IsTotal(t *testing.T) {
	if !Table1().Total() {
		t.Fatal("completed Table 1 must decide every input")
	}
}

func TestTable1CoverageFindings(t *testing.T) {
	// The literal paper table has exactly one dead row (row 6, index 5) and
	// leaves the battery∈{M,H,F} ∧ temp=Medium region unmatched.
	tbl := NewTable(Table1Rules())
	cov := tbl.Analyze()
	if len(cov.DeadRules) != 1 || cov.DeadRules[0] != 5 {
		t.Errorf("DeadRules = %v, want [5] (paper row 6)", cov.DeadRules)
	}
	for _, c := range cov.Unmatched {
		if c.Temp != thermal.MediumTemp {
			t.Errorf("unexpected unmatched combo %v", c)
		}
		if c.Battery != battery.Medium && c.Battery != battery.High && c.Battery != battery.Full {
			t.Errorf("unexpected unmatched combo %v", c)
		}
	}
	// 3 battery classes × 4 priorities at temp Medium.
	if len(cov.Unmatched) != 12 {
		t.Errorf("unmatched count = %d, want 12", len(cov.Unmatched))
	}
}

func TestFirstMatchOrder(t *testing.T) {
	// A specific rule placed after a wildcard rule must never fire.
	tbl := NewTable([]Rule{
		{AnyPriority, AnyBattery, AnyTemp, acpi.ON1, "catch-all"},
		{P(task.Low), AnyBattery, AnyTemp, acpi.ON4, "specific"},
	})
	got, idx, ok := tbl.Select(task.Low, battery.Full, thermal.LowTemp)
	if !ok || got != acpi.ON1 || idx != 0 {
		t.Fatalf("Select = %v idx=%d, want catch-all ON1", got, idx)
	}
	cov := tbl.Analyze()
	if len(cov.DeadRules) != 1 || cov.DeadRules[0] != 1 {
		t.Fatalf("DeadRules = %v, want [1]", cov.DeadRules)
	}
}

func TestNoMatchWithoutDefault(t *testing.T) {
	tbl := NewTable([]Rule{{P(task.Low), B(battery.Empty), T(thermal.LowTemp), acpi.SL1, ""}})
	if _, _, ok := tbl.Select(task.High, battery.Full, thermal.HighTemp); ok {
		t.Fatal("unmatched input decided without default")
	}
	if tbl.Total() {
		t.Fatal("partial table reported total")
	}
}

func TestDSLParsesAndAgreesWithData(t *testing.T) {
	parsed, err := Parse(Table1DSL)
	if err != nil {
		t.Fatal(err)
	}
	data := Table1()
	if parsed.Len() != data.Len() {
		t.Fatalf("parsed %d rules, data has %d", parsed.Len(), data.Len())
	}
	for p := task.Priority(0); int(p) < task.NumPriorities; p++ {
		for b := battery.Status(0); int(b) < battery.NumStatuses; b++ {
			for tc := thermal.Class(0); int(tc) < thermal.NumClasses; tc++ {
				s1, i1, ok1 := parsed.Select(p, b, tc)
				s2, i2, ok2 := data.Select(p, b, tc)
				if ok1 != ok2 || s1 != s2 || i1 != i2 {
					t.Fatalf("DSL vs data disagree at (%v,%v,%v): %v/%d vs %v/%d",
						p, b, tc, s1, i1, s2, i2)
				}
			}
		}
	}
}

func TestParseSingleRuleForms(t *testing.T) {
	cases := []struct {
		src  string
		p    task.Priority
		b    battery.Status
		tc   thermal.Class
		want acpi.State
	}{
		{"if the priority is very high and the battery is empty then the power state is ON4",
			task.VeryHigh, battery.Empty, thermal.LowTemp, acpi.ON4},
		{"if battery is power supply then ON1",
			task.Low, battery.Mains, thermal.HighTemp, acpi.ON1},
		{"if temperature is high then sl1",
			task.Medium, battery.Full, thermal.HighTemp, acpi.SL1},
		{"if priority is low or medium and temperature is low then soft-off",
			task.Low, battery.Full, thermal.LowTemp, acpi.SoftOff},
	}
	for _, c := range cases {
		tbl, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got, _, ok := tbl.Select(c.p, c.b, c.tc)
		if !ok || got != c.want {
			t.Errorf("Parse(%q).Select = %v,%v, want %v", c.src, got, ok, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"if priority is low ON4",                             // missing then
		"if priority low then ON4",                           // missing is
		"if turbo is low then ON4",                           // unknown field
		"if priority is turbo then ON4",                      // unknown value
		"if battery is high then ON9",                        // unknown state
		"if priority is low and then ON4",                    // dangling and
		"if then ON4",                                        // empty condition
		"default",                                            // default without state
		"default ON1\ndefault ON2",                           // duplicate default
		"banana",                                             // junk line
		"if priority is low then ON1 ON2",                    // two states
		"if priority is low and priority is high then X",     // duplicate field
		"if battery is empty and temperature is medium then", // missing state
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorMentionsLine(t *testing.T) {
	_, err := Parse("if priority is low then ON1\nif priority is bogus then ON2")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v should mention line 2", err)
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("garbage")
}

func TestCommentsAndBlankLines(t *testing.T) {
	tbl, err := Parse("# header\n\n  if priority is low then ON4 # trailing\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestFormatContainsRows(t *testing.T) {
	out := Table1().Format()
	for _, want := range []string{"ON4", "SL1", "ON1", "Power supply", "Selected State", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 15 { // header + 13 rules + default
		t.Errorf("Format() has %d lines, want 15", lines)
	}
}

func TestRulesReturnsCopy(t *testing.T) {
	tbl := Table1()
	rs := tbl.Rules()
	rs[0].Target = acpi.SoftOff
	got, _, _ := tbl.Select(task.VeryHigh, battery.Empty, thermal.LowTemp)
	if got != acpi.ON4 {
		t.Fatal("mutating Rules() copy affected the table")
	}
}

// Property: Select is deterministic and the returned rule index, when >= 0,
// actually matches the inputs.
func TestSelectConsistencyProperty(t *testing.T) {
	tbl := Table1()
	f := func(p, b, tc uint8) bool {
		pr := task.Priority(p % 4)
		ba := battery.Status(b % 6)
		te := thermal.Class(tc % 3)
		s1, i1, ok1 := tbl.Select(pr, ba, te)
		s2, i2, ok2 := tbl.Select(pr, ba, te)
		if s1 != s2 || i1 != i2 || ok1 != ok2 || !ok1 {
			return false
		}
		if i1 >= 0 {
			return tbl.Rules()[i1].Matches(pr, ba, te)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for every input the selected rule is the first matching rule.
func TestFirstMatchProperty(t *testing.T) {
	tbl := Table1()
	rs := tbl.Rules()
	f := func(p, b, tc uint8) bool {
		pr := task.Priority(p % 4)
		ba := battery.Status(b % 6)
		te := thermal.Class(tc % 3)
		_, idx, ok := tbl.Select(pr, ba, te)
		if !ok {
			return false
		}
		for i := 0; i < len(rs); i++ {
			if rs[i].Matches(pr, ba, te) {
				return idx == i
			}
		}
		return idx == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
