package trace

import (
	"fmt"
	"io"
	"strings"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/thermal"
)

// VCDObserver is a soc.Observer that streams the run's waveforms — per-IP
// PSM state and transition flag, battery class, temperature class — as an
// IEEE 1364 VCD file viewable in GTKWave. It replaces the former
// soc.Config.TraceVCD writer field with byte-identical output:
//
//	res, err := soc.RunWith(ctx, cfg, soc.RunOptions{
//	    Observers: []soc.Observer{trace.NewVCDObserver(f)},
//	})
type VCDObserver struct {
	soc.NopObserver
	v        *VCD
	stateIDs []string
	transIDs []string
	battID   string
	thermID  string
}

// NewVCDObserver creates a VCD waveform observer writing to w with the
// default soc scope and nanosecond timescale.
func NewVCDObserver(w io.Writer) *VCDObserver {
	return &VCDObserver{v: NewVCD(w, "soc", sim.Ns)}
}

// RunStart registers the variables (per IP: state, transitioning; then
// battery class, then temperature class — the historical declaration
// order) and writes the VCD header with the t=0 values.
func (o *VCDObserver) RunStart(info *soc.RunInfo) {
	o.stateIDs = make([]string, len(info.IPs))
	o.transIDs = make([]string, len(info.IPs))
	for i, name := range info.IPs {
		// The PSM publishes its signals as <name>.state and
		// <name>.transitioning (see acpi.NewPSM).
		o.stateIDs[i] = o.registerString(name+".state", info.InitialStates[i].String())
		o.transIDs[i] = o.registerBool(name+".transitioning", false)
	}
	o.battID = o.registerString(info.BatterySignal, info.InitialBattery.String())
	o.thermID = o.registerString(info.ThermalSignal, info.InitialThermal.String())
	o.v.WriteHeader()
}

// registerString declares a string-valued variable (rendered as a VCD real
// of 16 characters, as AttachStringer does) with its initial value.
func (o *VCDObserver) registerString(name, initial string) string {
	id := o.v.register(sanitize(name), "real", 8*16, "")
	o.v.vars[len(o.v.vars)-1].initial = "s" + vcdString(initial) + " " + id
	return id
}

// registerBool declares a 1-bit wire with its initial value.
func (o *VCDObserver) registerBool(name string, initial bool) string {
	id := o.v.register(sanitize(name), "wire", 1, "")
	o.v.vars[len(o.v.vars)-1].initial = boolBit(initial) + id
	return id
}

// PSMState implements soc.Observer.
func (o *VCDObserver) PSMState(t sim.Time, ip int, s acpi.State) {
	o.v.change(t, "s"+vcdString(s.String())+" "+o.stateIDs[ip])
}

// PSMTransition implements soc.Observer.
func (o *VCDObserver) PSMTransition(t sim.Time, ip int, active bool) {
	o.v.change(t, boolBit(active)+o.transIDs[ip])
}

// BatteryStatus implements soc.Observer.
func (o *VCDObserver) BatteryStatus(t sim.Time, st battery.Status) {
	o.v.change(t, "s"+vcdString(st.String())+" "+o.battID)
}

// ThermalClass implements soc.Observer.
func (o *VCDObserver) ThermalClass(t sim.Time, c thermal.Class) {
	o.v.change(t, "s"+vcdString(c.String())+" "+o.thermID)
}

// Err implements soc.Observer: the first write error, if any.
func (o *VCDObserver) Err() error { return o.v.Err() }

// CSVObserver is a soc.Observer that writes one CSV row per periodic
// sample: time_s,temp_c,soc,<ip>_w,... It replaces the former
// soc.Config.TraceCSV writer field with byte-identical output.
type CSVObserver struct {
	soc.NopObserver
	w    io.Writer
	rows int
	err  error
}

// NewCSVObserver creates a sampled-scalar CSV observer writing to w.
func NewCSVObserver(w io.Writer) *CSVObserver {
	return &CSVObserver{w: w}
}

// RunStart writes the header row.
func (o *CSVObserver) RunStart(info *soc.RunInfo) {
	var b strings.Builder
	b.WriteString("time_s,temp_c,soc")
	for _, name := range info.IPs {
		b.WriteString("," + name + "_w")
	}
	if _, err := fmt.Fprintln(o.w, b.String()); err != nil {
		o.err = err
	}
}

// Sample writes one data row.
func (o *CSVObserver) Sample(t sim.Time, s *soc.Sample) {
	if o.err != nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%.9f", t.Seconds())
	fmt.Fprintf(&b, ",%.6g", s.TempC)
	fmt.Fprintf(&b, ",%.6g", s.SoC)
	for _, p := range s.PowerW {
		fmt.Fprintf(&b, ",%.6g", p)
	}
	if _, err := fmt.Fprintln(o.w, b.String()); err != nil {
		o.err = err
		return
	}
	o.rows++
}

// Rows returns the number of data rows written so far.
func (o *CSVObserver) Rows() int { return o.rows }

// Err implements soc.Observer: the first write error, if any.
func (o *CSVObserver) Err() error { return o.err }
