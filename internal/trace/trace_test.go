package trace

import (
	"strings"
	"testing"

	"godpm/internal/sim"
)

func TestIDCodeUniqueAndPrintable(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		id := idCode(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for _, r := range id {
			if r < 33 || r > 126 {
				t.Fatalf("non-printable rune in id %q", id)
			}
		}
	}
}

func TestBinstr(t *testing.T) {
	cases := []struct {
		v    uint64
		w    int
		want string
	}{
		{0, 4, "0000"},
		{5, 4, "0101"},
		{255, 8, "11111111"},
		{1, 1, "1"},
		{6, 3, "110"},
	}
	for _, c := range cases {
		if got := binstr(c.v, c.w); got != c.want {
			t.Errorf("binstr(%d,%d) = %q, want %q", c.v, c.w, got, c.want)
		}
	}
}

func TestVCDHeaderAndChanges(t *testing.T) {
	k := sim.NewKernel()
	var sb strings.Builder
	v := NewVCD(&sb, "soc", sim.Ns)
	b := sim.NewSignal(k, "enable", false)
	n := sim.NewSignal(k, "count", 0)
	r := sim.NewSignal(k, "power", 0.0)
	v.AttachBool(b)
	AttachInt(v, n, 8)
	v.AttachReal(r)
	if err := v.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	e := k.NewEvent("tick")
	i := 0
	k.Method("drv", func() {
		i++
		b.Write(i%2 == 1)
		n.Write(i)
		r.Write(float64(i) * 0.5)
		if i < 3 {
			e.Notify(10 * sim.Ns)
		}
	}).Sensitive(e)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1 ns $end",
		"$scope module soc $end",
		"$var wire 1 ! enable $end",
		"$var wire 8 \" count $end",
		"$var real 64 # power $end",
		"$dumpvars",
		"#0",
		"1!",
		"b00000001 \"",
		"r0.5 #",
		"#10",
		"#20",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD output missing %q\n---\n%s", want, out)
		}
	}
	if v.Err() != nil {
		t.Fatalf("VCD error: %v", v.Err())
	}
}

func TestVCDStringerAttachment(t *testing.T) {
	k := sim.NewKernel()
	var sb strings.Builder
	v := NewVCD(&sb, "m", sim.Ns)
	s := sim.NewSignal(k, "state", "idle state")
	AttachStringer(v, s, func(x string) string { return x })
	if err := v.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	k.Method("drv", func() { s.Write("busy") })
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sidle_state") {
		t.Errorf("initial string value not escaped/dumped:\n%s", out)
	}
	if !strings.Contains(out, "sbusy") {
		t.Errorf("string change not dumped:\n%s", out)
	}
}

func TestVCDRegisterAfterHeaderPanics(t *testing.T) {
	k := sim.NewKernel()
	var sb strings.Builder
	v := NewVCD(&sb, "m", sim.Ns)
	if err := v.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.AttachBool(sim.NewSignal(k, "late", false))
}

func TestVCDTimestampMonotonic(t *testing.T) {
	k := sim.NewKernel()
	var sb strings.Builder
	v := NewVCD(&sb, "m", sim.Ns)
	s := sim.NewSignal(k, "x", 0)
	AttachInt(v, s, 4)
	if err := v.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	e := k.NewEvent("t")
	i := 0
	k.Method("d", func() {
		i++
		s.Write(i)
		if i < 5 {
			e.Notify(3 * sim.Ns)
		}
	}).Sensitive(e)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := fmtSscanf(line, &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts < last {
				t.Fatalf("timestamps not monotonic: %d after %d", ts, last)
			}
			last = ts
		}
	}
}

func fmtSscanf(line string, ts *int64) (int, error) {
	var n int64
	var count int
	for _, r := range line[1:] {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int64(r-'0')
		count++
	}
	*ts = n
	if count == 0 {
		return 0, errNoDigits
	}
	return 1, nil
}

var errNoDigits = &parseError{}

type parseError struct{}

func (*parseError) Error() string { return "no digits" }
