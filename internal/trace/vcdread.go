package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"godpm/internal/sim"
)

// VCDFile is a parsed value change dump: the declared variables and the
// ordered list of changes. The reader understands the subset the VCD
// writer emits (single scope, wire/real variables, scalar/vector/real/
// string value changes) — enough for round-trip tests and for post-
// processing dumped waveforms programmatically.
type VCDFile struct {
	Timescale sim.Time
	Module    string
	Vars      []VCDVar
	Changes   []VCDChange
}

// VCDVar is one declared variable.
type VCDVar struct {
	ID    string
	Name  string
	Kind  string
	Width int
}

// VCDChange is one value change record.
type VCDChange struct {
	Time  sim.Time // absolute, in Timescale units already multiplied out
	ID    string
	Value string // "0"/"1", binary vector, real literal, or string payload
}

// VarByName finds a declared variable.
func (f *VCDFile) VarByName(name string) (VCDVar, bool) {
	for _, v := range f.Vars {
		if v.Name == name {
			return v, true
		}
	}
	return VCDVar{}, false
}

// ChangesOf returns the changes of one variable id, in order.
func (f *VCDFile) ChangesOf(id string) []VCDChange {
	var out []VCDChange
	for _, c := range f.Changes {
		if c.ID == id {
			out = append(out, c)
		}
	}
	return out
}

// ValueAt returns the last value of a variable at or before t (ok reports
// whether any change applied by then).
func (f *VCDFile) ValueAt(id string, t sim.Time) (string, bool) {
	val, ok := "", false
	for _, c := range f.Changes {
		if c.Time > t {
			break
		}
		if c.ID == id {
			val, ok = c.Value, true
		}
	}
	return val, ok
}

// ReadVCD parses a VCD stream produced by this package's writer.
func ReadVCD(r io.Reader) (*VCDFile, error) {
	f := &VCDFile{Timescale: sim.Ns}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	inDefs := true
	var now sim.Time
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$timescale"):
			ts, err := parseTimescale(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			f.Timescale = ts
		case strings.HasPrefix(line, "$scope"):
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				f.Module = fields[2]
			}
		case strings.HasPrefix(line, "$var"):
			v, err := parseVar(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			f.Vars = append(f.Vars, v)
		case strings.HasPrefix(line, "$enddefinitions"):
			inDefs = false
		case strings.HasPrefix(line, "$"):
			// $date/$version/$upscope/$dumpvars/$end blocks: payload lines
			// that are not value changes are skipped below.
			continue
		case strings.HasPrefix(line, "#"):
			n, err := strconv.ParseInt(line[1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad timestamp %q", lineNo, line)
			}
			now = sim.Time(n) * f.Timescale
		default:
			if inDefs && !strings.HasPrefix(line, "$") && f.Module == "" {
				continue // header free text ($date/$version payloads)
			}
			ch, ok := parseChange(line, now)
			if ok {
				f.Changes = append(f.Changes, ch)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

func parseTimescale(line string) (sim.Time, error) {
	fields := strings.Fields(line)
	// "$timescale 1 ns $end"
	if len(fields) < 3 {
		return 0, fmt.Errorf("bad timescale %q", line)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, fmt.Errorf("bad timescale multiplier %q", fields[1])
	}
	var unit sim.Time
	switch fields[2] {
	case "ps":
		unit = sim.Ps
	case "ns":
		unit = sim.Ns
	case "us":
		unit = sim.Us
	case "ms":
		unit = sim.Ms
	case "s":
		unit = sim.Sec
	default:
		return 0, fmt.Errorf("unknown timescale unit %q", fields[2])
	}
	return sim.Time(n) * unit, nil
}

func parseVar(line string) (VCDVar, error) {
	// "$var wire 8 ! name $end"
	fields := strings.Fields(line)
	if len(fields) < 6 {
		return VCDVar{}, fmt.Errorf("bad $var line %q", line)
	}
	width, err := strconv.Atoi(fields[2])
	if err != nil {
		return VCDVar{}, fmt.Errorf("bad width in %q", line)
	}
	return VCDVar{Kind: fields[1], Width: width, ID: fields[3], Name: fields[4]}, nil
}

// parseChange decodes a value-change line; non-change lines (header prose)
// return ok=false.
func parseChange(line string, now sim.Time) (VCDChange, bool) {
	switch line[0] {
	case '0', '1', 'x', 'z':
		return VCDChange{Time: now, ID: line[1:], Value: string(line[0])}, true
	case 'b', 'B':
		parts := strings.Fields(line)
		if len(parts) != 2 {
			return VCDChange{}, false
		}
		return VCDChange{Time: now, ID: parts[1], Value: parts[0][1:]}, true
	case 'r', 'R':
		parts := strings.Fields(line)
		if len(parts) != 2 {
			return VCDChange{}, false
		}
		return VCDChange{Time: now, ID: parts[1], Value: parts[0][1:]}, true
	case 's', 'S':
		parts := strings.Fields(line)
		if len(parts) != 2 {
			return VCDChange{}, false
		}
		return VCDChange{Time: now, ID: parts[1], Value: parts[0][1:]}, true
	default:
		return VCDChange{}, false
	}
}
