package trace

import (
	"strings"
	"testing"

	"godpm/internal/sim"
)

// buildDump runs a tiny simulation with three traced signals and returns
// the VCD text.
func buildDump(t *testing.T) string {
	t.Helper()
	k := sim.NewKernel()
	var sb strings.Builder
	v := NewVCD(&sb, "soc", sim.Ns)
	b := sim.NewSignal(k, "enable", false)
	n := sim.NewSignal(k, "count", 0)
	r := sim.NewSignal(k, "power", 0.0)
	s := sim.NewSignal(k, "state", "idle")
	v.AttachBool(b)
	AttachInt(v, n, 8)
	v.AttachReal(r)
	AttachStringer(v, s, func(x string) string { return x })
	if err := v.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	e := k.NewEvent("tick")
	i := 0
	k.Method("drv", func() {
		i++
		b.Write(i%2 == 1)
		n.Write(i)
		r.Write(float64(i) / 2)
		if i == 2 {
			s.Write("busy")
		}
		if i < 4 {
			e.Notify(10 * sim.Ns)
		}
	}).Sensitive(e)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestVCDRoundTrip(t *testing.T) {
	dump := buildDump(t)
	f, err := ReadVCD(strings.NewReader(dump))
	if err != nil {
		t.Fatalf("ReadVCD: %v\n---\n%s", err, dump)
	}
	if f.Module != "soc" || f.Timescale != sim.Ns {
		t.Fatalf("module %q timescale %v", f.Module, f.Timescale)
	}
	if len(f.Vars) != 4 {
		t.Fatalf("vars = %+v", f.Vars)
	}
	en, ok := f.VarByName("enable")
	if !ok || en.Width != 1 || en.Kind != "wire" {
		t.Fatalf("enable var %+v ok=%v", en, ok)
	}
	cnt, ok := f.VarByName("count")
	if !ok || cnt.Width != 8 {
		t.Fatalf("count var %+v", cnt)
	}

	// The $dumpvars initial value (0) is recorded first, then the signal
	// toggles every 10 ns starting at t=0: 1,0,1,0.
	changes := f.ChangesOf(en.ID)
	if len(changes) != 5 {
		t.Fatalf("enable changes = %+v", changes)
	}
	wantVals := []string{"0", "1", "0", "1", "0"}
	wantTimes := []sim.Time{0, 0, 10 * sim.Ns, 20 * sim.Ns, 30 * sim.Ns}
	for i, c := range changes {
		if c.Value != wantVals[i] || c.Time != wantTimes[i] {
			t.Fatalf("enable change %d = %+v, want %q at %v", i, c, wantVals[i], wantTimes[i])
		}
	}

	// count at 25 ns should be the value written at 20 ns: 3 → 00000011.
	val, ok := f.ValueAt(cnt.ID, 25*sim.Ns)
	if !ok || val != "00000011" {
		t.Fatalf("count at 25ns = %q,%v", val, ok)
	}

	// real and string payloads survive.
	pow, _ := f.VarByName("power")
	if v, ok := f.ValueAt(pow.ID, 5*sim.Ns); !ok || v != "0.5" {
		t.Fatalf("power at 5ns = %q,%v", v, ok)
	}
	st, _ := f.VarByName("state")
	if v, ok := f.ValueAt(st.ID, 30*sim.Ns); !ok || v != "busy" {
		t.Fatalf("state at 30ns = %q,%v", v, ok)
	}
}

func TestVCDValueAtBeforeFirstChange(t *testing.T) {
	dump := buildDump(t)
	f, err := ReadVCD(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	// $dumpvars initial values are recorded at t=0 before the first
	// timestamp; they count as changes at time 0.
	en, _ := f.VarByName("enable")
	if _, ok := f.ValueAt(en.ID, 0); !ok {
		t.Fatal("initial value not visible at t=0")
	}
}

func TestVCDReadRejectsBadTimestamp(t *testing.T) {
	src := "$enddefinitions $end\n#abc\n"
	if _, err := ReadVCD(strings.NewReader(src)); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}

func TestVCDReadTimescales(t *testing.T) {
	for unit, want := range map[string]sim.Time{
		"ps": sim.Ps, "ns": sim.Ns, "us": sim.Us, "ms": sim.Ms, "s": sim.Sec,
	} {
		src := "$timescale 1 " + unit + " $end\n$enddefinitions $end\n"
		f, err := ReadVCD(strings.NewReader(src))
		if err != nil || f.Timescale != want {
			t.Errorf("unit %s: %v,%v", unit, f.Timescale, err)
		}
	}
	if _, err := ReadVCD(strings.NewReader("$timescale 1 fortnight $end\n")); err == nil {
		t.Error("bad unit accepted")
	}
}

func TestVCDReadBadVarLine(t *testing.T) {
	src := "$var wire $end\n"
	if _, err := ReadVCD(strings.NewReader(src)); err == nil {
		t.Fatal("bad $var accepted")
	}
}

func TestVCDChangesMonotoneAfterRead(t *testing.T) {
	dump := buildDump(t)
	f, err := ReadVCD(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	last := sim.Time(-1)
	for _, c := range f.Changes {
		if c.Time < last {
			t.Fatalf("changes out of order: %v after %v", c.Time, last)
		}
		last = c.Time
	}
}
