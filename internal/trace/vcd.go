// Package trace records simulation waveforms: a VCD (value change dump)
// writer compatible with GTKWave and similar EDA viewers, and a CSV sampler
// for scalar quantities such as power, temperature and battery charge. The
// paper's SystemC study inspected exactly these waveforms (power state,
// supply voltage, temperature) to validate the DPM architecture.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"godpm/internal/sim"
)

// VCD streams value changes in IEEE 1364 VCD format. Register variables
// before the simulation starts, then call Attach-style helpers which hook
// signal OnChange callbacks; Flush after the run emits nothing further but
// reports any accumulated write error.
type VCD struct {
	w         io.Writer
	timescale sim.Time
	module    string
	vars      []*vcdVar
	headerOut bool
	lastStamp sim.Time
	stamped   bool
	err       error
}

type vcdVar struct {
	id      string
	name    string
	width   int
	kind    string // "wire" or "real"
	initial string
}

// NewVCD creates a VCD writer. timescale is the unit one VCD tick
// represents (typically sim.Ns); module names the enclosing scope.
func NewVCD(w io.Writer, module string, timescale sim.Time) *VCD {
	if timescale <= 0 {
		timescale = sim.Ns
	}
	return &VCD{w: w, timescale: timescale, module: module}
}

// idCode generates the printable-ASCII short identifier for variable n.
func idCode(n int) string {
	const lo, hi = 33, 126
	base := hi - lo + 1
	var b []byte
	for {
		b = append(b, byte(lo+n%base))
		n = n/base - 1
		if n < 0 {
			break
		}
	}
	// reverse
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// register allocates a VCD variable and returns its id code.
func (v *VCD) register(name, kind string, width int, initial string) string {
	if v.headerOut {
		panic("trace: cannot register VCD variables after the header was written")
	}
	id := idCode(len(v.vars))
	v.vars = append(v.vars, &vcdVar{id: id, name: name, width: width, kind: kind, initial: initial})
	return id
}

// AttachBool traces a boolean signal as a 1-bit wire.
func (v *VCD) AttachBool(s *sim.Signal[bool]) {
	id := v.register(sanitize(s.Name()), "wire", 1, "")
	v.vars[len(v.vars)-1].initial = boolBit(s.Read()) + id
	s.OnChange(func(t sim.Time, val bool) { v.change(t, boolBit(val)+id) })
}

// AttachInt traces an integer signal as a width-bit binary vector.
func AttachInt[T ~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64](v *VCD, s *sim.Signal[T], width int) {
	if width <= 0 || width > 64 {
		panic("trace: AttachInt width must be 1..64")
	}
	id := v.register(sanitize(s.Name()), "wire", width, "")
	v.vars[len(v.vars)-1].initial = "b" + binstr(uint64(s.Read()), width) + " " + id
	s.OnChange(func(t sim.Time, val T) { v.change(t, "b"+binstr(uint64(val), width)+" "+id) })
}

// AttachReal traces a float signal as a VCD real variable.
func (v *VCD) AttachReal(s *sim.Signal[float64]) {
	id := v.register(sanitize(s.Name()), "real", 64, "")
	v.vars[len(v.vars)-1].initial = fmt.Sprintf("r%g %s", s.Read(), id)
	s.OnChange(func(t sim.Time, val float64) { v.change(t, fmt.Sprintf("r%g %s", val, id)) })
}

// AttachStringer traces any comparable signal (e.g. an enum with a String
// method) as a real-width string variable rendered via format.
func AttachStringer[T comparable](v *VCD, s *sim.Signal[T], format func(T) string) {
	id := v.register(sanitize(s.Name()), "real", 8*16, "")
	v.vars[len(v.vars)-1].initial = "s" + vcdString(format(s.Read())) + " " + id
	s.OnChange(func(t sim.Time, val T) { v.change(t, "s"+vcdString(format(val))+" "+id) })
}

// WriteHeader emits the declaration section and initial values. It must be
// called after all variables are attached and before the simulation runs.
func (v *VCD) WriteHeader() error {
	if v.headerOut {
		return nil
	}
	v.headerOut = true
	var b strings.Builder
	fmt.Fprintf(&b, "$date\n  godpm simulation\n$end\n")
	fmt.Fprintf(&b, "$version\n  godpm VCD writer\n$end\n")
	fmt.Fprintf(&b, "$timescale %s $end\n", timescaleString(v.timescale))
	fmt.Fprintf(&b, "$scope module %s $end\n", v.module)
	for _, x := range v.vars {
		fmt.Fprintf(&b, "$var %s %d %s %s $end\n", x.kind, x.width, x.id, x.name)
	}
	fmt.Fprintf(&b, "$upscope $end\n$enddefinitions $end\n")
	fmt.Fprintf(&b, "$dumpvars\n")
	for _, x := range v.vars {
		if x.initial != "" {
			fmt.Fprintf(&b, "%s\n", x.initial)
		}
	}
	fmt.Fprintf(&b, "$end\n")
	_, err := io.WriteString(v.w, b.String())
	v.err = err
	return err
}

// change emits a timestamp (if time moved) and one value-change record.
func (v *VCD) change(t sim.Time, record string) {
	if v.err != nil {
		return
	}
	if !v.headerOut {
		if err := v.WriteHeader(); err != nil {
			return
		}
	}
	if !v.stamped || t != v.lastStamp {
		v.stamped = true
		v.lastStamp = t
		if _, err := fmt.Fprintf(v.w, "#%d\n", int64(t/v.timescale)); err != nil {
			v.err = err
			return
		}
	}
	if _, err := fmt.Fprintln(v.w, record); err != nil {
		v.err = err
	}
}

// Err returns the first write error encountered, if any.
func (v *VCD) Err() error { return v.err }

func boolBit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func binstr(v uint64, width int) string {
	b := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		if v&1 == 1 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
		v >>= 1
	}
	return string(b)
}

func vcdString(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return '_'
		}
		return r
	}, s)
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}

func timescaleString(t sim.Time) string {
	switch {
	case t >= sim.Ms:
		return fmt.Sprintf("%d ms", t/sim.Ms)
	case t >= sim.Us:
		return fmt.Sprintf("%d us", t/sim.Us)
	case t >= sim.Ns:
		return fmt.Sprintf("%d ns", t/sim.Ns)
	default:
		return fmt.Sprintf("%d ps", t)
	}
}

// SortVarsByName is exposed for deterministic golden tests on header output.
func (v *VCD) SortVarsByName() {
	if v.headerOut {
		panic("trace: cannot sort after header written")
	}
	sort.Slice(v.vars, func(i, j int) bool { return v.vars[i].name < v.vars[j].name })
}
