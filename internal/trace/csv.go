package trace

import (
	"fmt"
	"io"
	"strings"

	"godpm/internal/sim"
)

// CSV samples a set of scalar probes at a fixed simulated interval and
// writes one row per sample: time_s,probe1,probe2,... The SystemC study
// plotted exactly this kind of sampled data (temperature, battery charge,
// dissipated power over time).
type CSV struct {
	w        io.Writer
	k        *sim.Kernel
	interval sim.Time
	names    []string
	probes   []func() float64
	started  bool
	rows     int
	err      error
}

// NewCSV creates a sampler that, once Start is called, emits a row every
// interval of simulated time.
func NewCSV(w io.Writer, k *sim.Kernel, interval sim.Time) *CSV {
	if interval <= 0 {
		panic("trace: CSV interval must be positive")
	}
	return &CSV{w: w, k: k, interval: interval}
}

// Probe registers a named scalar source. All probes must be registered
// before Start.
func (c *CSV) Probe(name string, fn func() float64) *CSV {
	if c.started {
		panic("trace: Probe after Start")
	}
	c.names = append(c.names, name)
	c.probes = append(c.probes, fn)
	return c
}

// Start writes the header row and installs the sampling process. The first
// sample is taken at t = interval (models typically initialise during the
// first instant).
func (c *CSV) Start() {
	if c.started {
		return
	}
	c.started = true
	hdr := "time_s," + strings.Join(c.names, ",")
	if _, err := fmt.Fprintln(c.w, hdr); err != nil {
		c.err = err
		return
	}
	tick := c.k.NewEvent("csv.tick")
	c.k.Method("csv.sampler", func() {
		c.sample()
		tick.Notify(c.interval)
	}).Sensitive(tick).DontInitialize()
	tick.Notify(c.interval)
}

func (c *CSV) sample() {
	if c.err != nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%.9f", c.k.Now().Seconds())
	for _, p := range c.probes {
		fmt.Fprintf(&b, ",%.6g", p())
	}
	if _, err := fmt.Fprintln(c.w, b.String()); err != nil {
		c.err = err
		return
	}
	c.rows++
}

// Rows returns the number of data rows written so far.
func (c *CSV) Rows() int { return c.rows }

// Err returns the first write error encountered, if any.
func (c *CSV) Err() error { return c.err }
