// Package bus models the shared interconnect of Fig. 1: IP blocks receive
// their service requests over a bus whose occupation is one of the SoC
// resources the GEM may consult. The model is transaction level: a
// requester acquires the bus (FIFO arbitration), holds it for the transfer
// duration (words ÷ bus frequency), and releases it; occupancy and
// per-master statistics are tracked, and each transferred word costs a
// configurable energy.
package bus

import (
	"fmt"

	"godpm/internal/sim"
)

// Arbitration selects how contending masters are ordered.
type Arbitration int

// Arbitration modes.
const (
	// FIFO grants the bus in request order (the default).
	FIFO Arbitration = iota
	// PriorityOrder grants the waiting master with the smallest priority
	// number first (ties broken by request order) — matching the GEM's
	// static IP priorities.
	PriorityOrder
)

// Config parameterises the bus.
type Config struct {
	// FreqHz is the bus clock; one word transfers per cycle.
	FreqHz float64
	// EnergyPerWord is the joules dissipated per transferred word.
	EnergyPerWord float64
	// Arbitration orders contending masters (default FIFO).
	Arbitration Arbitration
}

// DefaultConfig returns a 100 MHz bus at 50 pJ/word.
func DefaultConfig() Config {
	return Config{FreqHz: 100e6, EnergyPerWord: 50e-12}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FreqHz <= 0 {
		return fmt.Errorf("bus: non-positive frequency")
	}
	if c.EnergyPerWord < 0 {
		return fmt.Errorf("bus: negative energy per word")
	}
	return nil
}

// Bus is the shared interconnect component.
type Bus struct {
	k   *sim.Kernel
	cfg Config

	busy     bool
	owner    string
	released *sim.Event
	queue    []*pending
	seq      int

	busyTime   sim.Time
	lastAcq    sim.Time
	totalWords int64
	perMaster  map[string]int64
	energy     float64

	// onEnergy, if set, receives each transaction's energy (wired to the
	// SoC energy meter).
	onEnergy func(j float64)
}

// pending is one queued bus request.
type pending struct {
	master   string
	priority int
	seq      int
}

// New creates a bus on the kernel.
func New(k *sim.Kernel, name string, cfg Config) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{
		k: k, cfg: cfg,
		released:  k.NewEvent(name + ".released"),
		perMaster: make(map[string]int64),
	}
}

// OnEnergy registers the transaction energy sink.
func (b *Bus) OnEnergy(fn func(j float64)) { b.onEnergy = fn }

// TransferDuration returns the bus time for a word count.
func (b *Bus) TransferDuration(words int) sim.Time {
	if words <= 0 {
		return 0
	}
	return sim.Time(float64(words)/b.cfg.FreqHz*float64(sim.Sec) + 0.5)
}

// Transfer performs a blocking transaction with neutral priority; see
// TransferPri.
func (b *Bus) Transfer(c *sim.Ctx, master string, words int) sim.Time {
	return b.TransferPri(c, master, words, 0)
}

// TransferPri performs a blocking transaction: the calling thread waits
// for the bus (ordered by the configured arbitration; priority matters
// only in PriorityOrder mode, smaller wins), holds it for the transfer
// duration, and releases it. It returns the time spent waiting for
// arbitration.
func (b *Bus) TransferPri(c *sim.Ctx, master string, words, priority int) sim.Time {
	if words <= 0 {
		return 0
	}
	reqAt := c.Now()
	b.seq++
	me := &pending{master: master, priority: priority, seq: b.seq}
	b.queue = append(b.queue, me)
	for b.busy || b.head() != me {
		c.Wait(b.released)
	}
	b.dequeue(me)
	b.busy = true
	b.owner = master
	b.lastAcq = c.Now()
	waited := c.Now() - reqAt

	c.WaitTime(b.TransferDuration(words))

	b.busy = false
	b.owner = ""
	b.busyTime += c.Now() - b.lastAcq
	b.totalWords += int64(words)
	b.perMaster[master] += int64(words)
	e := float64(words) * b.cfg.EnergyPerWord
	b.energy += e
	if b.onEnergy != nil && e > 0 {
		b.onEnergy(e)
	}
	b.released.NotifyDelta()
	return waited
}

// Occupancy returns the fraction of simulated time the bus was held, so
// far.
func (b *Bus) Occupancy() float64 {
	now := b.k.Now()
	if now == 0 {
		return 0
	}
	busy := b.busyTime
	if b.busy {
		busy += now - b.lastAcq
	}
	return busy.Seconds() / now.Seconds()
}

// head returns the next request the arbitration would grant.
func (b *Bus) head() *pending {
	if len(b.queue) == 0 {
		return nil
	}
	best := b.queue[0]
	for _, p := range b.queue[1:] {
		switch b.cfg.Arbitration {
		case PriorityOrder:
			if p.priority < best.priority || (p.priority == best.priority && p.seq < best.seq) {
				best = p
			}
		default: // FIFO
			if p.seq < best.seq {
				best = p
			}
		}
	}
	return best
}

// dequeue removes a granted request.
func (b *Bus) dequeue(me *pending) {
	for i, p := range b.queue {
		if p == me {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return
		}
	}
}

// QueueLength returns the number of masters currently waiting.
func (b *Bus) QueueLength() int { return len(b.queue) }

// Busy reports whether a transaction is in flight.
func (b *Bus) Busy() bool { return b.busy }

// Owner returns the current holder ("" when idle).
func (b *Bus) Owner() string { return b.owner }

// TotalWords returns the number of words transferred.
func (b *Bus) TotalWords() int64 { return b.totalWords }

// WordsByMaster returns the words transferred by one master.
func (b *Bus) WordsByMaster(master string) int64 { return b.perMaster[master] }

// EnergyJ returns the total bus energy dissipated.
func (b *Bus) EnergyJ() float64 { return b.energy }
