package bus

import (
	"math"
	"testing"

	"godpm/internal/sim"
)

func TestTransferDuration(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "bus", DefaultConfig()) // 100 MHz → 10ns/word
	if got := b.TransferDuration(32); got != 320*sim.Ns {
		t.Fatalf("TransferDuration(32) = %v, want 320ns", got)
	}
	if b.TransferDuration(0) != 0 {
		t.Fatal("zero words should take no time")
	}
}

func TestSingleTransfer(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "bus", DefaultConfig())
	var waited, done sim.Time
	k.Thread("m0", func(c *sim.Ctx) {
		waited = b.Transfer(c, "m0", 100) // 1us
		done = c.Now()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if waited != 0 {
		t.Fatalf("uncontended transfer waited %v", waited)
	}
	if done != 1*sim.Us {
		t.Fatalf("transfer completed at %v, want 1us", done)
	}
	if b.TotalWords() != 100 || b.WordsByMaster("m0") != 100 {
		t.Fatal("word accounting wrong")
	}
}

func TestContentionSerializes(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "bus", DefaultConfig())
	var doneA, doneB sim.Time
	k.Thread("a", func(c *sim.Ctx) {
		b.Transfer(c, "a", 100) // holds 0..1us
		doneA = c.Now()
	})
	k.Thread("b", func(c *sim.Ctx) {
		c.WaitTime(100 * sim.Ns) // arrives mid-transfer
		w := b.Transfer(c, "b", 100)
		doneB = c.Now()
		if w <= 0 {
			t.Error("contended transfer reported zero wait")
		}
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if doneA != 1*sim.Us {
		t.Fatalf("a done at %v", doneA)
	}
	if doneB != 2*sim.Us {
		t.Fatalf("b done at %v, want serialized 2us", doneB)
	}
}

func TestOccupancy(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "bus", DefaultConfig())
	k.Thread("m", func(c *sim.Ctx) {
		b.Transfer(c, "m", 100) // busy 1us
		c.WaitTime(1 * sim.Us)  // idle 1us
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if occ := b.Occupancy(); math.Abs(occ-0.5) > 0.01 {
		t.Fatalf("Occupancy = %v, want 0.5", occ)
	}
}

func TestEnergyAccounting(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	b := New(k, "bus", cfg)
	var sunk float64
	b.OnEnergy(func(j float64) { sunk += j })
	k.Thread("m", func(c *sim.Ctx) { b.Transfer(c, "m", 1000) })
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	want := 1000 * cfg.EnergyPerWord
	if math.Abs(b.EnergyJ()-want) > 1e-18 || math.Abs(sunk-want) > 1e-18 {
		t.Fatalf("energy %v / sunk %v, want %v", b.EnergyJ(), sunk, want)
	}
}

func TestQueueLength(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "bus", DefaultConfig())
	var maxQ int
	for i := 0; i < 4; i++ {
		k.Thread("m", func(c *sim.Ctx) {
			b.Transfer(c, "m", 500)
		})
	}
	k.Method("watch", func() {
		if b.QueueLength() > maxQ {
			maxQ = b.QueueLength()
		}
	}).Sensitive(b.released).DontInitialize()
	probe := k.NewEvent("probe")
	k.Method("p", func() {
		if b.QueueLength() > maxQ {
			maxQ = b.QueueLength()
		}
		if b.Busy() {
			probe.Notify(sim.Us)
		}
	}).Sensitive(probe)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if maxQ < 2 {
		t.Fatalf("max queue length %d, want >= 2 under contention", maxQ)
	}
}

func TestBadConfigPanics(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(k, "bus", Config{FreqHz: 0})
}

func TestZeroWordTransferNoop(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "bus", DefaultConfig())
	k.Thread("m", func(c *sim.Ctx) {
		if w := b.Transfer(c, "m", 0); w != 0 {
			t.Error("zero transfer waited")
		}
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if b.TotalWords() != 0 {
		t.Fatal("zero transfer counted words")
	}
}

func TestOwnerReported(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "bus", DefaultConfig())
	var ownerSeen string
	k.Thread("m0", func(c *sim.Ctx) { b.Transfer(c, "m0", 1000) })
	k.Thread("probe", func(c *sim.Ctx) {
		c.WaitTime(1 * sim.Us)
		ownerSeen = b.Owner()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if ownerSeen != "m0" {
		t.Fatalf("owner %q, want m0", ownerSeen)
	}
	if b.Owner() != "" {
		t.Fatal("owner not cleared after release")
	}
}

func TestPriorityArbitration(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Arbitration = PriorityOrder
	b := New(k, "bus", cfg)
	var order []string
	// m0 holds the bus; a low- then a high-priority master queue up while
	// it transfers. The high-priority one must win despite arriving later.
	k.Thread("m0", func(c *sim.Ctx) {
		b.TransferPri(c, "m0", 200, 1) // holds 0..2us
		order = append(order, "m0")
	})
	k.Thread("low", func(c *sim.Ctx) {
		c.WaitTime(100 * sim.Ns)
		b.TransferPri(c, "low", 100, 9)
		order = append(order, "low")
	})
	k.Thread("high", func(c *sim.Ctx) {
		c.WaitTime(200 * sim.Ns) // arrives after "low"
		b.TransferPri(c, "high", 100, 2)
		order = append(order, "high")
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	want := []string{"m0", "high", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOIgnoresPriority(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "bus", DefaultConfig()) // FIFO
	var order []string
	k.Thread("m0", func(c *sim.Ctx) {
		b.TransferPri(c, "m0", 200, 5)
		order = append(order, "m0")
	})
	k.Thread("first", func(c *sim.Ctx) {
		c.WaitTime(100 * sim.Ns)
		b.TransferPri(c, "first", 100, 9) // worse priority, earlier request
		order = append(order, "first")
	})
	k.Thread("second", func(c *sim.Ctx) {
		c.WaitTime(200 * sim.Ns)
		b.TransferPri(c, "second", 100, 1)
		order = append(order, "second")
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	want := []string{"m0", "first", "second"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityTieBreaksFIFO(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Arbitration = PriorityOrder
	b := New(k, "bus", cfg)
	var order []string
	k.Thread("m0", func(c *sim.Ctx) { b.TransferPri(c, "m0", 200, 1) })
	for _, name := range []string{"a", "b", "c"} {
		name := name
		delay := sim.Time(100+len(order)) * sim.Ns
		k.Thread(name, func(c *sim.Ctx) {
			c.WaitTime(delay + sim.Time(len(name))) // stagger registrations
			b.TransferPri(c, name, 10, 3)
			order = append(order, name)
		})
	}
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
}
