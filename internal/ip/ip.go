// Package ip implements the functional IP block: a traffic generator (as in
// the paper's evaluation) that walks a workload sequence, requests
// permission from its energy manager before each task, executes the task at
// the granted operating point, and reports idleness back so the manager can
// power it down. Execution power is metered exactly and every task is
// recorded in the delay ledger.
package ip

import (
	"godpm/internal/acpi"
	"godpm/internal/bus"
	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/stats"
	"godpm/internal/task"
	"godpm/internal/workload"
)

// Manager is the energy-management interface the IP talks to: the paper's
// LEM, or one of the baseline policies.
type Manager interface {
	// AcquireOn blocks until the IP may execute t and returns the
	// operating point to run at.
	AcquireOn(c *sim.Ctx, t task.Task) power.OperatingPoint
	// ReleaseIdle tells the manager the IP just became idle. hint is the
	// actual upcoming idle duration (known to traffic generators); honest
	// managers ignore it — except for the sentinel sim.MaxTime, which
	// means "no further work ever" and asks for the deepest power-down.
	ReleaseIdle(c *sim.Ctx, hint sim.Time)
}

// Config assembles one IP block.
type Config struct {
	Name    string
	Profile *power.Profile
	// Sequence is the closed-loop workload to execute (the paper's model:
	// run a task, then idle for a gap). Mutually exclusive with Arrivals.
	Sequence workload.Sequence
	// Arrivals is the open-loop workload: service requests with absolute
	// arrival times that queue up when the IP runs slowly.
	Arrivals workload.ArrivalSequence
	// Manager grants execution; required.
	Manager Manager
	// PSM is the IP's power state machine (for residual-power metering).
	PSM *acpi.PSM
	// Meter receives the IP's power level; required.
	Meter *stats.EnergyMeter
	// Ledger records task timings; required.
	Ledger *stats.Ledger
	// Bus, when non-nil, delivers each task's service request as a
	// BusWords-word transaction before the task may start. BusPriority
	// orders contending masters when the bus arbitrates by priority.
	Bus         *bus.Bus
	BusWords    int
	BusPriority int
	// OnTask, when non-nil, observes every completed task right after its
	// ledger record is written. The record is passed by value so the nil
	// case costs nothing (no escape to the heap on the execute path).
	OnTask func(rec stats.TaskRecord)
}

// IP is the functional block component.
type IP struct {
	cfg       Config
	k         *sim.Kernel
	executing bool
	tasksDone int
	finished  bool
	doneEv    *sim.Event
}

// New creates the IP and registers its thread process on the kernel.
func New(k *sim.Kernel, cfg Config) *IP {
	if cfg.Manager == nil || cfg.Meter == nil || cfg.Ledger == nil || cfg.PSM == nil {
		panic("ip: Manager, PSM, Meter and Ledger are required")
	}
	if (len(cfg.Sequence) > 0) == (len(cfg.Arrivals) > 0) {
		panic("ip: exactly one of Sequence and Arrivals must be set")
	}
	if cfg.Profile == nil {
		cfg.Profile = power.DefaultProfile()
	}
	b := &IP{cfg: cfg, k: k, doneEv: k.NewEvent(cfg.Name + ".done")}

	// Residual power tracking: whenever the PSM lands in a new state while
	// the IP is not executing, the meter follows the state's power.
	k.Method(cfg.Name+".power", func() {
		if !b.executing {
			b.cfg.Meter.SetPower(b.cfg.PSM.StatePower())
		}
	}).Sensitive(cfg.PSM.StateSignal().Changed()).DontInitialize()

	// Transition energy goes to the same meter as discrete quanta.
	cfg.PSM.OnEnergy(cfg.Meter.AddEnergy)

	k.Thread(cfg.Name+".thread", b.run)
	return b
}

// run dispatches to the configured workload mode.
func (b *IP) run(c *sim.Ctx) {
	b.cfg.Meter.SetPower(b.cfg.PSM.StatePower())
	if len(b.cfg.Sequence) > 0 {
		b.runClosedLoop(c)
	} else {
		b.runOpenLoop(c)
	}
	// Final release: no further work will ever arrive. The sim.MaxTime
	// hint tells the manager to power the IP down as deeply as it can
	// (otherwise a finished IP would burn ON-idle power for the rest of
	// the simulation, starving the battery for everyone else).
	b.cfg.Manager.ReleaseIdle(c, sim.MaxTime)
	b.finished = true
	b.doneEv.NotifyDelta()
}

// runClosedLoop walks the Sequence: execute, then idle for the item's gap.
func (b *IP) runClosedLoop(c *sim.Ctx) {
	for _, item := range b.cfg.Sequence {
		b.executeTask(c, item.Task, c.Now())
		b.cfg.Manager.ReleaseIdle(c, item.IdleAfter)
		if item.IdleAfter > 0 {
			c.WaitTime(item.IdleAfter)
		}
	}
}

// runOpenLoop serves the Arrivals: when the next request is in the future
// the IP goes idle until it arrives; when the IP falls behind, requests
// queue and are served back-to-back (the service time then includes the
// queueing delay).
func (b *IP) runOpenLoop(c *sim.Ctx) {
	for i, a := range b.cfg.Arrivals {
		if wait := a.At - c.Now(); wait > 0 {
			b.cfg.Manager.ReleaseIdle(c, wait)
			c.WaitTime(wait)
		}
		b.executeTask(c, a.Task, a.At)
		// Hint at the remaining slack before the next arrival (0 when
		// already behind), so predictive managers see the queue pressure.
		if i+1 < len(b.cfg.Arrivals) {
			if slack := b.cfg.Arrivals[i+1].At - c.Now(); slack <= 0 {
				continue // next request already pending: no idle period
			}
		}
	}
}

// executeTask performs the bus handshake, manager acquisition and the timed
// execution of one task, recording it in the ledger. request is the
// service-time origin (arrival time for open-loop, readiness time for
// closed-loop).
func (b *IP) executeTask(c *sim.Ctx, t task.Task, request sim.Time) {
	prof := b.cfg.Profile

	// The service request arrives over the bus (Fig. 1).
	if b.cfg.Bus != nil && b.cfg.BusWords > 0 {
		b.cfg.Bus.TransferPri(c, b.cfg.Name, b.cfg.BusWords, b.cfg.BusPriority)
	}

	op := b.cfg.Manager.AcquireOn(c, t)
	start := c.Now()

	// Execute: active power for the task's instruction class.
	b.executing = true
	pActive := prof.InstrWeight[t.Class]*prof.DynamicPower(op) + prof.LeakagePower(op.Vdd)
	b.cfg.Meter.SetPower(pActive)
	c.WaitTime(prof.TaskDuration(t.Instructions, op))
	b.executing = false
	b.cfg.Meter.SetPower(b.cfg.PSM.StatePower())

	rec := stats.TaskRecord{
		IP:      b.cfg.Name,
		TaskID:  t.ID,
		Request: request,
		Start:   start,
		Done:    c.Now(),
		State:   b.cfg.PSM.State().String(),
	}
	b.cfg.Ledger.Add(rec)
	if b.cfg.OnTask != nil {
		b.cfg.OnTask(rec)
	}
	b.tasksDone++
}

// Name returns the IP name.
func (b *IP) Name() string { return b.cfg.Name }

// TasksDone returns the number of completed tasks.
func (b *IP) TasksDone() int { return b.tasksDone }

// Finished reports whether the whole sequence completed.
func (b *IP) Finished() bool { return b.finished }

// Done fires (delta-notified) when the sequence completes.
func (b *IP) Done() *sim.Event { return b.doneEv }

// Executing reports whether a task is currently running.
func (b *IP) Executing() bool { return b.executing }
