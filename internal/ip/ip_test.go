package ip

import (
	"math"
	"testing"

	"godpm/internal/acpi"
	"godpm/internal/bus"
	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/stats"
	"godpm/internal/task"
	"godpm/internal/workload"
)

// grantAll is a Manager that grants everything at a fixed ON state.
type grantAll struct {
	psm   *acpi.PSM
	state acpi.State

	acquires int
	releases int
	lastHint sim.Time
	taskHint sim.Time
}

func (m *grantAll) AcquireOn(c *sim.Ctx, _ task.Task) power.OperatingPoint {
	m.acquires++
	for m.psm.Transitioning().Read() {
		c.Wait(m.psm.Done())
	}
	if m.psm.State() != m.state {
		if _, err := m.psm.Request(m.state); err != nil {
			panic(err)
		}
		c.Wait(m.psm.Done())
	}
	return m.psm.Profile().On[m.state.OnIndex()]
}

func (m *grantAll) ReleaseIdle(_ *sim.Ctx, hint sim.Time) {
	m.releases++
	m.lastHint = hint
	if hint != sim.MaxTime {
		m.taskHint = hint
	}
}

func fixedSeq(n int, instr int64, idle sim.Time) workload.Sequence {
	seq := make(workload.Sequence, n)
	for i := range seq {
		seq[i] = workload.Item{
			Task:      task.Task{ID: i, Instructions: instr, Class: power.InstrALU, Priority: task.Medium},
			IdleAfter: idle,
		}
	}
	return seq
}

type ipRig struct {
	k      *sim.Kernel
	psm    *acpi.PSM
	mgr    *grantAll
	meter  *stats.EnergyMeter
	ledger *stats.Ledger
	ip     *IP
}

func newIPRig(t *testing.T, seq workload.Sequence, state acpi.State) *ipRig {
	t.Helper()
	k := sim.NewKernel()
	prof := power.DefaultProfile()
	psm := acpi.NewPSM(k, "ip0", prof, acpi.ON1)
	mgr := &grantAll{psm: psm, state: state}
	meter := stats.NewEnergyMeter(k, "ip0")
	ledger := &stats.Ledger{}
	b := New(k, Config{
		Name: "ip0", Profile: prof, Sequence: seq,
		Manager: mgr, PSM: psm, Meter: meter, Ledger: ledger,
	})
	return &ipRig{k: k, psm: psm, mgr: mgr, meter: meter, ledger: ledger, ip: b}
}

func TestIPExecutesWholeSequence(t *testing.T) {
	r := newIPRig(t, fixedSeq(5, 200_000, sim.Ms), acpi.ON1)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if !r.ip.Finished() || r.ip.TasksDone() != 5 {
		t.Fatalf("Finished=%v TasksDone=%d", r.ip.Finished(), r.ip.TasksDone())
	}
	// Five per-task releases plus the final "no further work" release.
	if r.mgr.acquires != 5 || r.mgr.releases != 6 {
		t.Fatalf("acquires=%d releases=%d", r.mgr.acquires, r.mgr.releases)
	}
	if r.ledger.Len() != 5 {
		t.Fatalf("ledger %d records", r.ledger.Len())
	}
}

func TestIPTaskTiming(t *testing.T) {
	// 200k instructions at ON1 (200 MHz, 1 cycle/instr) = 1 ms exactly.
	r := newIPRig(t, fixedSeq(2, 200_000, 3*sim.Ms), acpi.ON1)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	recs := r.ledger.Records()
	if recs[0].Done-recs[0].Start != sim.Ms {
		t.Fatalf("task 0 exec %v, want 1ms", recs[0].Done-recs[0].Start)
	}
	// Second task starts after 1ms exec + 3ms idle.
	if recs[1].Request != 4*sim.Ms {
		t.Fatalf("task 1 requested at %v, want 4ms", recs[1].Request)
	}
}

func TestIPSlowerStateStretchesExecution(t *testing.T) {
	fast := newIPRig(t, fixedSeq(1, 400_000, 0), acpi.ON1)
	slow := newIPRig(t, fixedSeq(1, 400_000, 0), acpi.ON4)
	if err := fast.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if err := slow.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	fd := fast.ledger.Records()[0].Service()
	sd := slow.ledger.Records()[0].Service()
	ratio := float64(sd) / float64(fd)
	// ON4 runs 4× slower, plus the ON1→ON4 transition (3 scaling steps).
	if ratio < 3.9 {
		t.Fatalf("ON4/ON1 service ratio %v, want ≈4+", ratio)
	}
}

func TestIPEnergyMatchesProfile(t *testing.T) {
	prof := power.DefaultProfile()
	r := newIPRig(t, fixedSeq(1, 1_000_000, 0), acpi.ON1)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	got := r.meter.EnergyJ()
	want := prof.TaskEnergy(1_000_000, power.InstrALU, prof.On[0])
	// The meter also integrates idle power before/after, but with zero
	// idle gaps that's negligible here.
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("energy %v, want ≈%v", got, want)
	}
}

func TestIPInstructionClassWeighting(t *testing.T) {
	alu := fixedSeq(1, 1_000_000, 0)
	io := fixedSeq(1, 1_000_000, 0)
	io[0].Task.Class = power.InstrIO
	ra := newIPRig(t, alu, acpi.ON1)
	rb := newIPRig(t, io, acpi.ON1)
	if err := ra.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if err := rb.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if rb.meter.EnergyJ() <= ra.meter.EnergyJ() {
		t.Fatalf("IO-class task energy %v not above ALU's %v",
			rb.meter.EnergyJ(), ra.meter.EnergyJ())
	}
}

func TestIPIdleHintPassedToManager(t *testing.T) {
	r := newIPRig(t, fixedSeq(1, 1000, 9*sim.Ms), acpi.ON1)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if r.mgr.lastHint != sim.MaxTime {
		t.Fatalf("final hint %v, want the no-more-work sentinel", r.mgr.lastHint)
	}
	if r.mgr.taskHint != 9*sim.Ms {
		t.Fatalf("per-task hint %v, want 9ms", r.mgr.taskHint)
	}
}

func TestIPDoneEventFires(t *testing.T) {
	r := newIPRig(t, fixedSeq(1, 1000, 0), acpi.ON1)
	fired := false
	r.k.Method("w", func() { fired = true }).Sensitive(r.ip.Done()).DontInitialize()
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("Done event never fired")
	}
}

func TestIPBusTransferDelaysStart(t *testing.T) {
	k := sim.NewKernel()
	prof := power.DefaultProfile()
	psm := acpi.NewPSM(k, "ip0", prof, acpi.ON1)
	mgr := &grantAll{psm: psm, state: acpi.ON1}
	meter := stats.NewEnergyMeter(k, "ip0")
	ledger := &stats.Ledger{}
	theBus := bus.New(k, "bus", bus.DefaultConfig())
	New(k, Config{
		Name: "ip0", Profile: prof, Sequence: fixedSeq(1, 1000, 0),
		Manager: mgr, PSM: psm, Meter: meter, Ledger: ledger,
		Bus: theBus, BusWords: 100, // 1 µs at 100 MHz
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	rec := ledger.Records()[0]
	if rec.Start-rec.Request < sim.Us {
		t.Fatalf("start delay %v, want >= 1µs bus transfer", rec.Start-rec.Request)
	}
	if theBus.TotalWords() != 100 {
		t.Fatalf("bus words %d", theBus.TotalWords())
	}
}

func TestIPRequiredFieldsPanic(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(k, Config{Name: "x"})
}

func TestIPRecordsExecutionState(t *testing.T) {
	r := newIPRig(t, fixedSeq(1, 1000, 0), acpi.ON3)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if got := r.ledger.Records()[0].State; got != "ON3" {
		t.Fatalf("recorded state %q, want ON3", got)
	}
}

func arrivalsOf(times []sim.Time, instr int64) workload.ArrivalSequence {
	var arr workload.ArrivalSequence
	for i, at := range times {
		arr = append(arr, workload.Arrival{
			Task: task.Task{ID: i, Instructions: instr, Class: power.InstrALU, Priority: task.Medium},
			At:   at,
		})
	}
	return arr
}

func newOpenLoopRig(t *testing.T, arr workload.ArrivalSequence, state acpi.State) *ipRig {
	t.Helper()
	k := sim.NewKernel()
	prof := power.DefaultProfile()
	psm := acpi.NewPSM(k, "ip0", prof, acpi.ON1)
	mgr := &grantAll{psm: psm, state: state}
	meter := stats.NewEnergyMeter(k, "ip0")
	ledger := &stats.Ledger{}
	b := New(k, Config{
		Name: "ip0", Profile: prof, Arrivals: arr,
		Manager: mgr, PSM: psm, Meter: meter, Ledger: ledger,
	})
	return &ipRig{k: k, psm: psm, mgr: mgr, meter: meter, ledger: ledger, ip: b}
}

func TestOpenLoopIdlesUntilArrival(t *testing.T) {
	// 1 ms tasks arriving every 5 ms: the IP is idle between requests and
	// each service time is exactly the execution time.
	arr := arrivalsOf([]sim.Time{0, 5 * sim.Ms, 10 * sim.Ms}, 200_000)
	r := newOpenLoopRig(t, arr, acpi.ON1)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if !r.ip.Finished() || r.ip.TasksDone() != 3 {
		t.Fatalf("Finished=%v TasksDone=%d", r.ip.Finished(), r.ip.TasksDone())
	}
	for i, rec := range r.ledger.Records() {
		if rec.Service() != sim.Ms {
			t.Fatalf("task %d service %v, want 1ms", i, rec.Service())
		}
	}
	// Two gaps between the three spaced arrivals, plus the final
	// "no further work" release.
	if r.mgr.releases != 3 {
		t.Fatalf("releases = %d, want 3", r.mgr.releases)
	}
}

func TestOpenLoopQueuesWhenSlow(t *testing.T) {
	// 4 ms of work (at ON4) arriving every 1 ms: the queue builds and
	// service times grow linearly.
	arr := arrivalsOf([]sim.Time{0, sim.Ms, 2 * sim.Ms}, 200_000) // 1ms at ON1 = 4ms at ON4
	r := newOpenLoopRig(t, arr, acpi.ON4)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	recs := r.ledger.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Service() <= recs[i-1].Service() {
			t.Fatalf("service times not growing under overload: %v then %v",
				recs[i-1].Service(), recs[i].Service())
		}
	}
	// The manager never sees an idle period while the queue is backed up;
	// the single release is the final "no further work" one.
	if r.mgr.releases != 1 || r.mgr.lastHint != sim.MaxTime {
		t.Fatalf("releases = %d (hint %v) during overload, want only the final one",
			r.mgr.releases, r.mgr.lastHint)
	}
}

func TestOpenLoopRecordsArrivalAsRequest(t *testing.T) {
	arr := arrivalsOf([]sim.Time{3 * sim.Ms}, 200_000)
	r := newOpenLoopRig(t, arr, acpi.ON1)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if got := r.ledger.Records()[0].Request; got != 3*sim.Ms {
		t.Fatalf("Request = %v, want the 3ms arrival", got)
	}
}

func TestBothWorkloadsPanics(t *testing.T) {
	k := sim.NewKernel()
	prof := power.DefaultProfile()
	psm := acpi.NewPSM(k, "ip0", prof, acpi.ON1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(k, Config{
		Name: "ip0", Profile: prof,
		Sequence: fixedSeq(1, 100, 0),
		Arrivals: arrivalsOf([]sim.Time{0}, 100),
		Manager:  &grantAll{psm: psm, state: acpi.ON1},
		PSM:      psm, Meter: stats.NewEnergyMeter(k, "m"), Ledger: &stats.Ledger{},
	})
}
