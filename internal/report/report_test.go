package report

import (
	"strings"
	"testing"

	"godpm/internal/experiments"
	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/stats"
)

// fakeRow builds a Row with plausible results without running a simulation.
func fakeRow(id string, saving, temp, delay float64) experiments.Row {
	return experiments.Row{
		ID:               id,
		EnergySavingPct:  saving,
		TempReductionPct: temp,
		DelayOverheadPct: delay,
		DPM: &soc.Result{EnergyJ: 1, Ledger: &stats.Ledger{}, Duration: sim.Sec,
			Completed: true, TasksDone: 10, AvgTempC: 50, PeakTempC: 60, AmbientC: 45},
		Base: &soc.Result{EnergyJ: 2, Ledger: &stats.Ledger{}, Duration: sim.Sec,
			AvgTempC: 60, PeakTempC: 75, AmbientC: 45},
	}
}

func goodRows() []experiments.Row {
	return []experiments.Row{
		fakeRow("A1", 39, 11, 38),
		fakeRow("A2", 80, 21, 320),
		fakeRow("A3", 38, 11, 37),
		fakeRow("A4", 80, 21, 320),
		fakeRow("B", 86, 41, 170),
		fakeRow("C", 71, 47, 172),
	}
}

func TestWriteContainsTableAndChecks(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, goodRows(), Options{Title: "test report"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# test report",
		"## Table 2",
		"| A1 | 39 | **39.0** |",
		"## Shape checks",
		"✓",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "✗") {
		t.Errorf("good rows produced a failing check:\n%s", out)
	}
}

func TestWriteDetailsSection(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, goodRows()[:1], Options{Details: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## Per-scenario details", "### A1", "baseline:", "temperature:"} {
		if !strings.Contains(out, want) {
			t.Errorf("details missing %q", want)
		}
	}
}

func TestShapeChecksDetectViolations(t *testing.T) {
	rows := goodRows()
	// Break A2: make it save less than A1.
	rows[1].EnergySavingPct = 10
	checks := ShapeChecks(rows)
	if AllPass(checks) {
		t.Fatal("violated ordering not detected")
	}
	failing := 0
	for _, c := range checks {
		if !c.Pass {
			failing++
		}
	}
	if failing == 0 {
		t.Fatal("no failing check reported")
	}
}

func TestShapeChecksSkipMissingScenarios(t *testing.T) {
	checks := ShapeChecks([]experiments.Row{fakeRow("A1", 39, 11, 38)})
	for _, c := range checks {
		if strings.Contains(c.Description, "A2") || strings.Contains(c.Description, "B") {
			t.Fatalf("check %q requires missing scenarios", c.Description)
		}
	}
	if !AllPass(checks) {
		t.Fatal("single positive row should pass its checks")
	}
}

func TestUnknownScenarioGetsDashPaperColumns(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, []experiments.Row{fakeRow("X9", 1, 1, 1)}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| X9 | — |") {
		t.Fatalf("missing dash columns:\n%s", sb.String())
	}
}

func TestFormatCounts(t *testing.T) {
	if got := formatCounts(map[string]int{"ON1": 2, "": 1}); got != "stay-on×1 ON1×2" {
		t.Fatalf("formatCounts = %q", got)
	}
	if got := formatCounts(nil); got != "-" {
		t.Fatalf("formatCounts(nil) = %q", got)
	}
}
