// Package report renders experiment results as Markdown: the Table 2
// paper-vs-measured comparison, per-scenario detail sections and the shape
// checks the README documents — so the whole comparison document can be
// regenerated mechanically (cmd/dpmreport).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"godpm/internal/experiments"
)

// Options controls rendering.
type Options struct {
	// Title heads the document.
	Title string
	// Details adds a per-scenario section with energies, durations,
	// temperatures and LEM/GEM statistics.
	Details bool
}

// Write renders the report for the measured rows.
func Write(w io.Writer, rows []experiments.Row, opt Options) error {
	title := opt.Title
	if title == "" {
		title = "DPM reproduction report"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", title)

	b.WriteString("## Table 2 — paper vs measured\n\n")
	b.WriteString("| Sim | Energy saving % (paper) | (measured) | Temp reduction % (paper) | (measured) | Delay overhead % (paper) | (measured) |\n")
	b.WriteString("|-----|------:|------:|------:|------:|------:|------:|\n")
	for _, r := range rows {
		p, hasPaper := experiments.PaperTable2[r.ID]
		paperCol := func(v float64) string {
			if !hasPaper {
				return "—"
			}
			return fmt.Sprintf("%.0f", v)
		}
		fmt.Fprintf(&b, "| %s | %s | **%.1f** | %s | **%.1f** | %s | **%.1f** |\n",
			r.ID,
			paperCol(p.EnergySavingPct), r.EnergySavingPct,
			paperCol(p.TempReductionPct), r.TempReductionPct,
			paperCol(p.DelayOverheadPct), r.DelayOverheadPct)
	}
	b.WriteString("\n")

	if checks := ShapeChecks(rows); len(checks) > 0 {
		b.WriteString("## Shape checks\n\n")
		for _, c := range checks {
			mark := "✓"
			if !c.Pass {
				mark = "✗"
			}
			fmt.Fprintf(&b, "- %s %s\n", mark, c.Description)
		}
		b.WriteString("\n")
	}

	if opt.Details {
		b.WriteString("## Per-scenario details\n\n")
		for _, r := range rows {
			writeDetails(&b, r)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeDetails(b *strings.Builder, r experiments.Row) {
	d, base := r.DPM, r.Base
	fmt.Fprintf(b, "### %s\n\n", r.ID)
	fmt.Fprintf(b, "- DPM: %.4f J over %v (%d tasks, completed=%v)\n",
		d.EnergyJ, d.Duration, d.TasksDone, d.Completed)
	fmt.Fprintf(b, "- baseline: %.4f J over %v\n", base.EnergyJ, base.Duration)
	fmt.Fprintf(b, "- temperature: DPM avg %.1f °C peak %.1f °C; baseline avg %.1f °C peak %.1f °C\n",
		d.AvgTempC, d.PeakTempC, base.AvgTempC, base.PeakTempC)
	fmt.Fprintf(b, "- battery: final SoC %.3f (%v)\n", d.FinalSoC, d.FinalBatteryStatus)
	names := make([]string, 0, len(d.LEMStats))
	for n := range d.LEMStats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := d.LEMStats[n]
		fmt.Fprintf(b, "- %s: on=%v sleeps=%v parks=%d parked=%v\n",
			n, formatCounts(st.OnDecisions), formatCounts(st.SleepEntries), st.ParkEvents, st.ParkedTime)
	}
	if d.GEMEvaluations > 0 {
		fmt.Fprintf(b, "- GEM: %d evaluations, %d fan switches\n", d.GEMEvaluations, d.FanSwitches)
	}
	b.WriteString("\n")
}

func formatCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		name := k
		if name == "" {
			name = "stay-on"
		}
		parts = append(parts, fmt.Sprintf("%s×%d", name, m[k]))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// Check is one verified property of the measured rows.
type Check struct {
	Description string
	Pass        bool
}

// ShapeChecks evaluates the orderings the paper's conclusions rest on
// against the measured rows (only checks whose scenarios are present are
// emitted).
func ShapeChecks(rows []experiments.Row) []Check {
	by := map[string]experiments.Row{}
	for _, r := range rows {
		by[r.ID] = r
	}
	var out []Check
	add := func(ids []string, desc string, pred func() bool) {
		for _, id := range ids {
			if _, ok := by[id]; !ok {
				return
			}
		}
		out = append(out, Check{Description: desc, Pass: pred()})
	}
	add([]string{"A1", "A2"}, "A2 saves more energy than A1 (battery Low forces frugal states)", func() bool {
		return by["A2"].EnergySavingPct > by["A1"].EnergySavingPct
	})
	add([]string{"A1", "A2"}, "A2 pays far more delay than A1 (ON4's 4× slower clock)", func() bool {
		return by["A2"].DelayOverheadPct > 2*by["A1"].DelayOverheadPct
	})
	add([]string{"A2"}, "A2 shows the ≈300% ON4 delay signature", func() bool {
		return by["A2"].DelayOverheadPct > 200
	})
	add([]string{"A1", "A3"}, "A3 (hot start) costs only a few extra delay points over A1", func() bool {
		diff := by["A3"].DelayOverheadPct - by["A1"].DelayOverheadPct
		return diff > -15 && diff < 30
	})
	add([]string{"A2", "A4"}, "A4 tracks A2 (temperature control is nearly free at ON4)", func() bool {
		diff := by["A4"].DelayOverheadPct - by["A2"].DelayOverheadPct
		return diff > -30 && diff < 30
	})
	add([]string{"A1", "B"}, "B (GEM, 4 IPs) reaches a larger saving than A1", func() bool {
		return by["B"].EnergySavingPct > by["A1"].EnergySavingPct
	})
	add([]string{"A2", "B"}, "B's delay stays below A2's (GEM throttles selectively)", func() bool {
		return by["B"].DelayOverheadPct < by["A2"].DelayOverheadPct
	})
	for _, id := range []string{"A1", "A2", "A3", "A4", "B", "C"} {
		id := id
		add([]string{id}, fmt.Sprintf("%s reduces the average temperature", id), func() bool {
			return by[id].TempReductionPct > 0
		})
	}
	return out
}

// AllPass reports whether every check passed.
func AllPass(checks []Check) bool {
	for _, c := range checks {
		if !c.Pass {
			return false
		}
	}
	return true
}
