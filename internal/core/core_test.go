package core

import (
	"strings"
	"testing"

	"godpm/internal/workload"
)

func TestRunThroughFacade(t *testing.T) {
	seq := workload.HighActivity(9, 10).MustGenerate()
	res, err := Run(Config{
		IPs:     []IPSpec{{Name: "cpu", Sequence: seq}},
		Policy:  PolicyDPM,
		Battery: DefaultBattery(0.95),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.TasksDone != 10 {
		t.Fatalf("Completed=%v TasksDone=%d", res.Completed, res.TasksDone)
	}
}

func TestScenarioAccess(t *testing.T) {
	tn := DefaultTuning()
	if got := len(Scenarios(tn)); got != 6 {
		t.Fatalf("Scenarios = %d, want 6", got)
	}
	s, err := ScenarioByID("A1", tn)
	if err != nil || s.ID != "A1" {
		t.Fatalf("ScenarioByID = %v,%v", s.ID, err)
	}
	base := Baseline(s)
	if base.Policy != PolicyAlwaysOn {
		t.Fatal("Baseline policy wrong")
	}
	if out := Topology(s); !strings.Contains(out, "PSM") {
		t.Fatalf("Topology output: %q", out)
	}
}

func TestTable1Facade(t *testing.T) {
	tbl := Table1()
	if !tbl.Total() {
		t.Fatal("Table1 not total")
	}
	parsed, err := ParseRules(Table1DSL)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != tbl.Len() {
		t.Fatalf("parsed %d rules, want %d", parsed.Len(), tbl.Len())
	}
	if _, err := ParseRules("nonsense"); err == nil {
		t.Fatal("bad script accepted")
	}
}

func TestFormatTable2Facade(t *testing.T) {
	out := FormatTable2([]Row{{ID: "A1"}})
	if !strings.Contains(out, "A1") || !strings.Contains(out, "Energy saving") {
		t.Fatalf("FormatTable2 output: %q", out)
	}
}

func TestVersionSet(t *testing.T) {
	if Version == "" {
		t.Fatal("empty version")
	}
}
