// Package core is the high-level façade of godpm, the Go reproduction of
// "SystemC Analysis of a New Dynamic Power Management Architecture"
// (M. Conti, DATE 2005). It re-exports the types needed to assemble and run
// a DPM-managed SoC and the paper's experiments, so applications can depend
// on a single package:
//
//	cfg := core.Config{
//	    IPs:    []core.IPSpec{{Name: "cpu", Sequence: seq}},
//	    Policy: core.PolicyDPM,
//	}
//	res, err := core.Run(cfg)
//
// The underlying packages remain available for fine-grained use:
// internal/sim (the SystemC-like kernel), internal/acpi (PSM),
// internal/lem, internal/gem, internal/battery, internal/thermal,
// internal/rules, internal/workload, internal/bus, internal/policy,
// internal/soc and internal/experiments.
package core

import (
	"context"

	"godpm/internal/engine"
	"godpm/internal/experiments"
	"godpm/internal/rules"
	"godpm/internal/soc"
)

// Version identifies the library release.
const Version = "1.0.0"

// Re-exported configuration and result types.
type (
	// Config describes a complete SoC simulation.
	Config = soc.Config
	// IPSpec describes one IP block.
	IPSpec = soc.IPSpec
	// Result carries measurements of one run.
	Result = soc.Result
	// BatteryConfig selects the battery model.
	BatteryConfig = soc.BatteryConfig
	// LEMOptions tunes the local energy managers.
	LEMOptions = soc.LEMOptions
	// Scenario is one of the paper's experiments.
	Scenario = experiments.Scenario
	// Row is one measured Table 2 line.
	Row = experiments.Row
	// Tuning sets experiment-wide workload knobs.
	Tuning = experiments.Tuning
)

// Policy kinds.
const (
	PolicyDPM      = soc.PolicyDPM
	PolicyAlwaysOn = soc.PolicyAlwaysOn
	PolicyTimeout  = soc.PolicyTimeout
	PolicyGreedy   = soc.PolicyGreedy
	PolicyOracle   = soc.PolicyOracle
)

// Run simulates the configured SoC.
func Run(cfg Config) (*Result, error) { return soc.Run(cfg) }

// DefaultBattery returns the experiments' battery at the given state of
// charge.
func DefaultBattery(initialSoC float64) BatteryConfig { return soc.DefaultBattery(initialSoC) }

// Scenarios returns the paper's six Table 2 experiments.
func Scenarios(t Tuning) []Scenario { return experiments.All(t) }

// Extensions returns the beyond-the-paper scenarios (per-IP thermal
// network, open-loop arrivals, regulator losses).
func Extensions(t Tuning) []Scenario { return experiments.Extensions(t) }

// ScenarioByID returns one named experiment (A1..A4, B, C).
func ScenarioByID(id string, t Tuning) (Scenario, error) { return experiments.ByID(id, t) }

// DefaultTuning returns the experiment knobs used in EXPERIMENTS.md.
func DefaultTuning() Tuning { return experiments.DefaultTuning() }

// RunScenario executes a scenario and its always-on baseline and computes
// the Table 2 row.
func RunScenario(s Scenario) (Row, error) { return experiments.RunScenario(s) }

// Baseline derives the always-on reference configuration of a scenario.
func Baseline(s Scenario) Config { return experiments.Baseline(s) }

// FormatTable2 renders measured rows next to the paper's numbers.
func FormatTable2(rows []Row) string { return experiments.FormatTable2(rows) }

// Topology renders a scenario's Fig. 1 component graph.
func Topology(s Scenario) string { return experiments.Topology(s) }

// Batch-engine re-exports: the concurrent, cached execution layer
// (internal/engine) for scenario grids, sweeps and replicated runs.
type (
	// Engine shards simulation jobs across a worker pool with result
	// caching.
	Engine = engine.Engine
	// EngineOptions configures workers, cache and progress callbacks.
	EngineOptions = engine.Options
	// Plan is an ordered list of simulation jobs.
	Plan = engine.Plan
	// JobResult is one job's outcome (result, cache hit, error).
	JobResult = engine.JobResult
)

// NewEngine builds a batch engine (Workers == 0 means NumCPU).
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// NewDiskCache opens a directory-backed result cache for EngineOptions.
func NewDiskCache(dir string) (engine.Cache, error) { return engine.NewDisk(dir) }

// ScenarioPlan lays scenarios out as dpm/baseline job pairs.
func ScenarioPlan(scenarios []Scenario) Plan { return experiments.Plan(scenarios) }

// RunScenarios executes scenarios on the engine and returns Table 2 rows.
func RunScenarios(ctx context.Context, eng *Engine, scenarios []Scenario) ([]Row, error) {
	return experiments.RunScenarios(ctx, eng, scenarios)
}

// Fingerprint returns the canonical content hash of a configuration (the
// engine's cache key).
func Fingerprint(cfg Config) (string, error) { return engine.Fingerprint(cfg) }

// Table1 returns the paper's power-state selection policy (completed with
// the documented default; see DESIGN.md).
func Table1() *rules.Table { return rules.Table1() }

// Table1DSL is the same policy in the natural-language rule form.
const Table1DSL = rules.Table1DSL

// ParseRules parses a policy script in the natural-language rule form.
func ParseRules(script string) (*rules.Table, error) { return rules.Parse(script) }
