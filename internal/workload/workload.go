// Package workload generates the task sequences the functional IPs execute.
// The paper's IPs are "pure traffic generators" running sequences in which
// "the IP is often busy" or "often in idle state"; this package produces
// such sequences deterministically from a seed, with configurable task
// sizes, instruction mixes, priorities and idle-gap statistics, and can
// export/import sequences as text for replay.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/task"
)

// Distribution selects the idle-gap distribution.
type Distribution int

// Supported idle-gap distributions.
const (
	// Fixed uses the mean verbatim ("remains in idle state for a fixed
	// time", as in the paper).
	Fixed Distribution = iota
	// Exponential draws exponentially distributed gaps around the mean.
	Exponential
	// Pareto draws heavy-tailed gaps (shape 1.5) scaled to the mean; it
	// stresses idle-time predictors.
	Pareto
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Fixed:
		return "Fixed"
	case Exponential:
		return "Exponential"
	case Pareto:
		return "Pareto"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Item is one step of a sequence: execute the task, then stay idle for
// IdleAfter.
type Item struct {
	Task      task.Task
	IdleAfter sim.Time
}

// Sequence is an IP's complete workload.
type Sequence []Item

// TotalInstructions sums the instruction counts of all tasks.
func (s Sequence) TotalInstructions() int64 {
	var n int64
	for _, it := range s {
		n += it.Task.Instructions
	}
	return n
}

// TotalIdle sums the idle gaps.
func (s Sequence) TotalIdle() sim.Time {
	var t sim.Time
	for _, it := range s {
		t += it.IdleAfter
	}
	return t
}

// Validate checks every task in the sequence.
func (s Sequence) Validate() error {
	for i, it := range s {
		if err := it.Task.Validate(); err != nil {
			return fmt.Errorf("workload: item %d: %w", i, err)
		}
		if it.IdleAfter < 0 {
			return fmt.Errorf("workload: item %d: negative idle gap", i)
		}
	}
	return nil
}

// Profile parameterises a generator.
type Profile struct {
	// Seed makes generation deterministic; two Profiles with equal fields
	// produce identical sequences.
	Seed int64
	// NumTasks is the sequence length.
	NumTasks int
	// MeanInstructions is the average task size; individual tasks are
	// uniform in [Mean·(1−Jitter), Mean·(1+Jitter)].
	MeanInstructions int64
	InstrJitter      float64
	// ClassWeights weights the instruction classes; zero-value uses ALU
	// only.
	ClassWeights [power.NumInstrClasses]float64
	// PriorityWeights weights task priorities; zero-value uses Medium only.
	PriorityWeights [task.NumPriorities]float64
	// MeanIdle and IdleDist shape the idle gaps after each task. High
	// activity = short gaps, low activity = long gaps.
	MeanIdle sim.Time
	IdleDist Distribution
}

// HighActivity returns a profile whose IP is busy about half the time:
// idle gaps average the nominal task duration.
func HighActivity(seed int64, numTasks int) Profile {
	return Profile{
		Seed:             seed,
		NumTasks:         numTasks,
		MeanInstructions: 2_000_000, // 10 ms at 200 MHz
		InstrJitter:      0.5,
		ClassWeights:     [power.NumInstrClasses]float64{4, 2, 1, 1},
		PriorityWeights:  [task.NumPriorities]float64{1, 2, 2, 1},
		MeanIdle:         10 * sim.Ms,
		IdleDist:         Exponential,
	}
}

// LowActivity returns a profile whose IP idles most of the time: gaps
// average five times the nominal task duration.
func LowActivity(seed int64, numTasks int) Profile {
	p := HighActivity(seed, numTasks)
	p.MeanIdle = 50 * sim.Ms
	return p
}

// Validate checks the profile parameters.
func (p Profile) Validate() error {
	if p.NumTasks <= 0 {
		return fmt.Errorf("workload: NumTasks must be positive")
	}
	if p.MeanInstructions <= 0 {
		return fmt.Errorf("workload: MeanInstructions must be positive")
	}
	if p.InstrJitter < 0 || p.InstrJitter >= 1 {
		return fmt.Errorf("workload: InstrJitter %v outside [0,1)", p.InstrJitter)
	}
	if p.MeanIdle < 0 {
		return fmt.Errorf("workload: negative MeanIdle")
	}
	for _, w := range p.ClassWeights {
		if w < 0 {
			return fmt.Errorf("workload: negative class weight")
		}
	}
	for _, w := range p.PriorityWeights {
		if w < 0 {
			return fmt.Errorf("workload: negative priority weight")
		}
	}
	return nil
}

// Generate produces the deterministic sequence for the profile.
func (p Profile) Generate() (Sequence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	classes := p.ClassWeights
	if sumWeights(classes[:]) == 0 {
		classes[power.InstrALU] = 1
	}
	prios := p.PriorityWeights
	if sumWeights(prios[:]) == 0 {
		prios[task.Medium] = 1
	}
	seq := make(Sequence, p.NumTasks)
	for i := range seq {
		jitter := 1 + p.InstrJitter*(2*rng.Float64()-1)
		instr := int64(float64(p.MeanInstructions) * jitter)
		if instr < 1 {
			instr = 1
		}
		seq[i] = Item{
			Task: task.Task{
				ID:           i,
				Instructions: instr,
				Class:        power.InstructionClass(weightedPick(rng, classes[:])),
				Priority:     task.Priority(weightedPick(rng, prios[:])),
			},
			IdleAfter: p.drawIdle(rng),
		}
	}
	return seq, nil
}

// MustGenerate is Generate that panics on error, for tests and examples.
func (p Profile) MustGenerate() Sequence {
	s, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return s
}

func (p Profile) drawIdle(rng *rand.Rand) sim.Time {
	if p.MeanIdle == 0 {
		return 0
	}
	mean := float64(p.MeanIdle)
	switch p.IdleDist {
	case Fixed:
		return p.MeanIdle
	case Exponential:
		return sim.Time(rng.ExpFloat64() * mean)
	case Pareto:
		// Pareto with shape a=1.5, scaled so the mean is MeanIdle:
		// mean = a·xm/(a−1) → xm = mean·(a−1)/a.
		const a = 1.5
		xm := mean * (a - 1) / a
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		v := xm / math.Pow(u, 1/a)
		// Clamp the heavy tail at 50× the mean to keep runs bounded.
		if v > 50*mean {
			v = 50 * mean
		}
		return sim.Time(v)
	default:
		return p.MeanIdle
	}
}

func sumWeights(ws []float64) float64 {
	var s float64
	for _, w := range ws {
		s += w
	}
	return s
}

func weightedPick(rng *rand.Rand, ws []float64) int {
	total := sumWeights(ws)
	x := rng.Float64() * total
	for i, w := range ws {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(ws) - 1
}

// Export writes the sequence as text, one "id instructions class priority
// idle_ps" line per item, suitable for Import.
func Export(w io.Writer, s Sequence) error {
	for _, it := range s {
		_, err := fmt.Fprintf(w, "%d %d %s %s %d\n",
			it.Task.ID, it.Task.Instructions, it.Task.Class, it.Task.Priority, int64(it.IdleAfter))
		if err != nil {
			return err
		}
	}
	return nil
}

// Import reads a sequence written by Export.
func Import(r io.Reader) (Sequence, error) {
	var seq Sequence
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var id int
		var instr, idle int64
		var classStr, prioStr string
		if _, err := fmt.Sscanf(line, "%d %d %s %s %d", &id, &instr, &classStr, &prioStr, &idle); err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
		}
		class, err := parseClass(classStr)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
		}
		prio, err := task.ParsePriority(prioStr)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
		}
		seq = append(seq, Item{
			Task:      task.Task{ID: id, Instructions: instr, Class: class, Priority: prio},
			IdleAfter: sim.Time(idle),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	return seq, nil
}

func parseClass(s string) (power.InstructionClass, error) {
	for c := power.InstructionClass(0); c < power.NumInstrClasses; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown instruction class %q", s)
}
