package workload

import (
	"fmt"
	"math/rand"

	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/task"
)

// BurstProfile generates Markov-modulated ON/OFF workloads: the source
// alternates between a busy phase (several tasks with short gaps) and a
// quiet phase (one long gap), matching the paper's description that "in
// some sequences the IP is often busy, in some it is often in idle state" —
// within a single sequence. Bursty idle statistics are the hardest case
// for the LEM's idle predictor: the short intra-burst gaps teach it to
// stay awake exactly when the long inter-burst gap would pay for deep
// sleep.
type BurstProfile struct {
	Seed int64
	// NumTasks is the total task count across all bursts.
	NumTasks int
	// TasksPerBurst is the mean burst length (geometric distribution).
	TasksPerBurst float64
	// MeanInstructions / InstrJitter size the tasks as in Profile.
	MeanInstructions int64
	InstrJitter      float64
	// ShortIdle is the mean gap inside a burst, LongIdle between bursts
	// (both exponential).
	ShortIdle sim.Time
	LongIdle  sim.Time
	// PriorityWeights as in Profile (zero value → Medium only).
	PriorityWeights [task.NumPriorities]float64
	// ClassWeights as in Profile (zero value → ALU only).
	ClassWeights [power.NumInstrClasses]float64
}

// DefaultBurst returns a bursty workload: ~6-task bursts of 10 ms tasks
// separated by 2 ms gaps, with 100 ms quiet phases.
func DefaultBurst(seed int64, numTasks int) BurstProfile {
	return BurstProfile{
		Seed:             seed,
		NumTasks:         numTasks,
		TasksPerBurst:    6,
		MeanInstructions: 2_000_000,
		InstrJitter:      0.5,
		ShortIdle:        2 * sim.Ms,
		LongIdle:         100 * sim.Ms,
		PriorityWeights:  [task.NumPriorities]float64{1, 2, 2, 1},
		ClassWeights:     [power.NumInstrClasses]float64{4, 2, 1, 1},
	}
}

// Validate checks the parameters.
func (p BurstProfile) Validate() error {
	if p.NumTasks <= 0 {
		return fmt.Errorf("workload: NumTasks must be positive")
	}
	if p.TasksPerBurst < 1 {
		return fmt.Errorf("workload: TasksPerBurst must be >= 1")
	}
	if p.MeanInstructions <= 0 {
		return fmt.Errorf("workload: MeanInstructions must be positive")
	}
	if p.InstrJitter < 0 || p.InstrJitter >= 1 {
		return fmt.Errorf("workload: InstrJitter %v outside [0,1)", p.InstrJitter)
	}
	if p.ShortIdle < 0 || p.LongIdle <= p.ShortIdle {
		return fmt.Errorf("workload: want 0 <= ShortIdle < LongIdle")
	}
	return nil
}

// Generate produces the deterministic bursty sequence.
func (p BurstProfile) Generate() (Sequence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	classes := p.ClassWeights
	if sumWeights(classes[:]) == 0 {
		classes[power.InstrALU] = 1
	}
	prios := p.PriorityWeights
	if sumWeights(prios[:]) == 0 {
		prios[task.Medium] = 1
	}
	// Geometric continuation probability for a mean burst length L:
	// P(continue) = 1 − 1/L.
	pCont := 1 - 1/p.TasksPerBurst

	seq := make(Sequence, p.NumTasks)
	for i := range seq {
		jitter := 1 + p.InstrJitter*(2*rng.Float64()-1)
		instr := int64(float64(p.MeanInstructions) * jitter)
		if instr < 1 {
			instr = 1
		}
		var gap sim.Time
		if rng.Float64() < pCont {
			gap = sim.Time(rng.ExpFloat64() * float64(p.ShortIdle))
		} else {
			gap = sim.Time(rng.ExpFloat64() * float64(p.LongIdle))
		}
		seq[i] = Item{
			Task: task.Task{
				ID:           i,
				Instructions: instr,
				Class:        power.InstructionClass(weightedPick(rng, classes[:])),
				Priority:     task.Priority(weightedPick(rng, prios[:])),
			},
			IdleAfter: gap,
		}
	}
	return seq, nil
}

// MustGenerate is Generate that panics on error.
func (p BurstProfile) MustGenerate() Sequence {
	s, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return s
}
