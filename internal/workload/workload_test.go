package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/task"
)

func TestGenerateDeterministic(t *testing.T) {
	p := HighActivity(42, 100)
	a := p.MustGenerate()
	b := p.MustGenerate()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := HighActivity(1, 50).MustGenerate()
	b := HighActivity(2, 50).MustGenerate()
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestGenerateValidates(t *testing.T) {
	s := HighActivity(7, 200).MustGenerate()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s) != 200 {
		t.Fatalf("len = %d", len(s))
	}
}

func TestInstructionJitterBounds(t *testing.T) {
	p := HighActivity(3, 500)
	s := p.MustGenerate()
	lo := float64(p.MeanInstructions) * (1 - p.InstrJitter)
	hi := float64(p.MeanInstructions) * (1 + p.InstrJitter)
	for _, it := range s {
		n := float64(it.Task.Instructions)
		if n < lo-1 || n > hi+1 {
			t.Fatalf("instructions %v outside [%v,%v]", n, lo, hi)
		}
	}
}

func TestActivityLevels(t *testing.T) {
	hi := HighActivity(5, 300).MustGenerate()
	lo := LowActivity(5, 300).MustGenerate()
	if lo.TotalIdle() <= hi.TotalIdle() {
		t.Fatalf("low-activity idle %v not greater than high-activity %v",
			lo.TotalIdle(), hi.TotalIdle())
	}
	// Same seed and task parameters: the busy work is identical.
	if hi.TotalInstructions() != lo.TotalInstructions() {
		t.Fatal("activity level changed the task work")
	}
}

func TestFixedDistribution(t *testing.T) {
	p := HighActivity(1, 50)
	p.IdleDist = Fixed
	for _, it := range p.MustGenerate() {
		if it.IdleAfter != p.MeanIdle {
			t.Fatalf("fixed idle gap %v, want %v", it.IdleAfter, p.MeanIdle)
		}
	}
}

func TestExponentialMeanApproximate(t *testing.T) {
	p := HighActivity(11, 4000)
	s := p.MustGenerate()
	mean := float64(s.TotalIdle()) / float64(len(s))
	want := float64(p.MeanIdle)
	if math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("empirical mean idle %v deviates >10%% from %v", mean, want)
	}
}

func TestParetoBoundedAndPositive(t *testing.T) {
	p := HighActivity(13, 2000)
	p.IdleDist = Pareto
	for _, it := range p.MustGenerate() {
		if it.IdleAfter <= 0 {
			t.Fatal("non-positive Pareto gap")
		}
		if it.IdleAfter > 50*p.MeanIdle {
			t.Fatalf("Pareto gap %v beyond clamp", it.IdleAfter)
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Fixed.String() != "Fixed" || Exponential.String() != "Exponential" || Pareto.String() != "Pareto" {
		t.Fatal("distribution names wrong")
	}
	if !strings.Contains(Distribution(9).String(), "9") {
		t.Fatal("unknown distribution string")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	mut := []func(*Profile){
		func(p *Profile) { p.NumTasks = 0 },
		func(p *Profile) { p.MeanInstructions = 0 },
		func(p *Profile) { p.InstrJitter = 1.0 },
		func(p *Profile) { p.MeanIdle = -1 },
		func(p *Profile) { p.ClassWeights[0] = -1 },
		func(p *Profile) { p.PriorityWeights[0] = -1 },
	}
	for i, m := range mut {
		p := HighActivity(1, 10)
		m(&p)
		if _, err := p.Generate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestZeroWeightsDefaults(t *testing.T) {
	p := Profile{Seed: 1, NumTasks: 10, MeanInstructions: 1000, MeanIdle: sim.Ms}
	s := p.MustGenerate()
	for _, it := range s {
		if it.Task.Class != power.InstrALU {
			t.Fatalf("default class should be ALU, got %v", it.Task.Class)
		}
		if it.Task.Priority != task.Medium {
			t.Fatalf("default priority should be Medium, got %v", it.Task.Priority)
		}
	}
}

func TestPriorityMixCoversClasses(t *testing.T) {
	s := HighActivity(17, 2000).MustGenerate()
	var seen [task.NumPriorities]int
	for _, it := range s {
		seen[it.Task.Priority]++
	}
	for p, n := range seen {
		if n == 0 {
			t.Errorf("priority %v never generated", task.Priority(p))
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := HighActivity(23, 100).MustGenerate()
	var sb strings.Builder
	if err := Export(&sb, s); err != nil {
		t.Fatal(err)
	}
	got, err := Import(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("len %d vs %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("item %d differs after round trip: %+v vs %+v", i, got[i], s[i])
		}
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	bad := []string{
		"1 1000 ALU",          // short line
		"x 1000 ALU Medium 5", // bad id
		"1 1000 FPU Medium 5", // bad class
		"1 1000 ALU Urgent 5", // bad priority
		"1 0 ALU Medium 5",    // zero instructions (fails Validate)
		"1 100 ALU Medium -5", // negative idle
	}
	for _, src := range bad {
		if _, err := Import(strings.NewReader(src)); err == nil {
			t.Errorf("Import(%q) succeeded", src)
		}
	}
}

func TestImportSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\n0 100 ALU Low 5000\n"
	s, err := Import(strings.NewReader(src))
	if err != nil || len(s) != 1 {
		t.Fatalf("Import = %v,%v", s, err)
	}
}

// Property: generation never produces invalid sequences for any seed.
func TestGenerateAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		p := HighActivity(seed, int(n%50)+1)
		s, err := p.Generate()
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateArrivalsOrderedAndDeterministic(t *testing.T) {
	p := HighActivity(31, 100)
	a := p.MustGenerateArrivals(200e6)
	b := p.MustGenerateArrivals(200e6)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrivals not deterministic")
		}
	}
	if a[0].At != 0 {
		t.Fatalf("first arrival at %v, want 0", a[0].At)
	}
}

func TestGenerateArrivalsMatchesClosedLoopWork(t *testing.T) {
	p := HighActivity(31, 200)
	closed := p.MustGenerate()
	open := p.MustGenerateArrivals(200e6)
	if closed.TotalInstructions() != open.TotalInstructions() {
		t.Fatalf("work differs: %d vs %d",
			closed.TotalInstructions(), open.TotalInstructions())
	}
}

func TestGenerateArrivalsBadFreq(t *testing.T) {
	if _, err := HighActivity(1, 5).GenerateArrivals(0); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

func TestArrivalSequenceValidateRejectsDisorder(t *testing.T) {
	good := HighActivity(1, 5).MustGenerateArrivals(200e6)
	bad := append(ArrivalSequence{}, good...)
	bad[0], bad[1] = bad[1], bad[0]
	if err := bad.Validate(); err == nil {
		t.Fatal("disordered arrivals accepted")
	}
	neg := ArrivalSequence{{Task: good[0].Task, At: -1}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative arrival accepted")
	}
}

func TestBurstProfileGenerates(t *testing.T) {
	p := DefaultBurst(5, 300)
	s := p.MustGenerate()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s) != 300 {
		t.Fatalf("len = %d", len(s))
	}
	// Deterministic.
	s2 := p.MustGenerate()
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("bursty generation not deterministic")
		}
	}
}

func TestBurstProfileBimodalGaps(t *testing.T) {
	p := DefaultBurst(7, 2000)
	s := p.MustGenerate()
	short, long := 0, 0
	for _, it := range s {
		if it.IdleAfter < 10*p.ShortIdle {
			short++
		} else if it.IdleAfter > p.LongIdle/4 {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("gaps not bimodal: short=%d long=%d", short, long)
	}
	// Bursts dominate: most gaps are short.
	if short < 3*long {
		t.Fatalf("expected mostly short gaps: short=%d long=%d", short, long)
	}
}

func TestBurstProfileValidation(t *testing.T) {
	mut := []func(*BurstProfile){
		func(p *BurstProfile) { p.NumTasks = 0 },
		func(p *BurstProfile) { p.TasksPerBurst = 0.5 },
		func(p *BurstProfile) { p.MeanInstructions = 0 },
		func(p *BurstProfile) { p.InstrJitter = 1 },
		func(p *BurstProfile) { p.LongIdle = p.ShortIdle },
	}
	for i, m := range mut {
		p := DefaultBurst(1, 10)
		m(&p)
		if _, err := p.Generate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
