package workload

import (
	"fmt"
	"math/rand"

	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/task"
)

// Arrival is an open-loop service request: a task plus the absolute time it
// arrives at the IP. Unlike the closed-loop Sequence (where the next task
// is generated only after the previous one finishes plus an idle gap),
// arrivals keep coming regardless of how slowly the IP runs — a slow power
// state builds up a queue, exactly what an external request source does to
// the paper's IPs.
type Arrival struct {
	Task task.Task
	At   sim.Time
}

// ArrivalSequence is a time-ordered open-loop workload.
type ArrivalSequence []Arrival

// Validate checks ordering and task validity.
func (s ArrivalSequence) Validate() error {
	last := sim.Time(-1)
	for i, a := range s {
		if err := a.Task.Validate(); err != nil {
			return fmt.Errorf("workload: arrival %d: %w", i, err)
		}
		if a.At < 0 {
			return fmt.Errorf("workload: arrival %d: negative time", i)
		}
		if a.At < last {
			return fmt.Errorf("workload: arrival %d: not time-ordered", i)
		}
		last = a.At
	}
	return nil
}

// TotalInstructions sums the work across all arrivals.
func (s ArrivalSequence) TotalInstructions() int64 {
	var n int64
	for _, a := range s {
		n += a.Task.Instructions
	}
	return n
}

// GenerateArrivals produces an open-loop workload from the profile: the
// inter-arrival gap after each task is the task's nominal duration at the
// reference frequency plus the profile's idle-gap draw, so the offered
// load matches what the closed-loop sequence generates when the IP runs at
// full speed. refFreqHz is the frequency the nominal durations assume
// (typically the profile's ON1 clock).
func (p Profile) GenerateArrivals(refFreqHz float64) (ArrivalSequence, error) {
	if refFreqHz <= 0 {
		return nil, fmt.Errorf("workload: refFreqHz must be positive")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	classes := p.ClassWeights
	if sumWeights(classes[:]) == 0 {
		classes[power.InstrALU] = 1
	}
	prios := p.PriorityWeights
	if sumWeights(prios[:]) == 0 {
		prios[task.Medium] = 1
	}
	arr := make(ArrivalSequence, p.NumTasks)
	at := sim.Time(0)
	for i := range arr {
		jitter := 1 + p.InstrJitter*(2*rng.Float64()-1)
		instr := int64(float64(p.MeanInstructions) * jitter)
		if instr < 1 {
			instr = 1
		}
		arr[i] = Arrival{
			Task: task.Task{
				ID:           i,
				Instructions: instr,
				Class:        power.InstructionClass(weightedPick(rng, classes[:])),
				Priority:     task.Priority(weightedPick(rng, prios[:])),
				Release:      at,
			},
			At: at,
		}
		nominal := sim.Time(float64(instr)/refFreqHz*float64(sim.Sec) + 0.5)
		at += nominal + p.drawIdle(rng)
	}
	return arr, nil
}

// MustGenerateArrivals is GenerateArrivals that panics on error.
func (p Profile) MustGenerateArrivals(refFreqHz float64) ArrivalSequence {
	s, err := p.GenerateArrivals(refFreqHz)
	if err != nil {
		panic(err)
	}
	return s
}
