package workload

import (
	"fmt"
	"math/rand"
)

// Seed is a splittable deterministic PRNG seed: the root of a scenario's
// entire randomness. Instead of threading one linear random stream through
// every generator (where inserting a draw anywhere perturbs everything
// after it), a Seed is split into independent child seeds by label or
// index — one per IP, one per random stream inside a generator — so
// changing one parameter of one stream never disturbs the draws of any
// other. Two equal Seeds produce bit-identical workloads, which is what
// makes generated scenarios fingerprintable by the engine's cache.
//
// Splitting uses the SplitMix64 finalizer over the parent seed mixed with
// a hash of the label (or index), the standard construction for
// splittable streams.
type Seed uint64

// NewSeed wraps a raw seed value.
func NewSeed(n uint64) Seed { return Seed(n) }

// String renders the seed as a decimal, as job IDs embed it.
func (s Seed) String() string { return fmt.Sprintf("%d", uint64(s)) }

// mix64 is the SplitMix64 finalizer: a bijective avalanche over uint64.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv64 is FNV-1a over the label bytes.
func fnv64(label string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return h
}

// Split derives the labelled child seed. Children of distinct labels are
// statistically independent of each other and of the parent.
func (s Seed) Split(label string) Seed {
	return Seed(mix64(uint64(s) ^ fnv64(label)))
}

// SplitN derives the i-th indexed child seed (replicate fan-outs).
func (s Seed) SplitN(i int) Seed {
	return Seed(mix64(uint64(s) ^ mix64(uint64(i)+1)))
}

// RNG returns a fresh deterministic random stream for the seed. Every call
// returns an identical stream; split first when independent streams are
// needed.
func (s Seed) RNG() *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(s)))))
}
