package workload

import (
	"bytes"
	"reflect"
	"testing"

	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/task"
)

func TestSeedSplitIndependence(t *testing.T) {
	root := NewSeed(42)
	a, b := root.Split("gap"), root.Split("size")
	if a == b {
		t.Fatalf("Split(gap) == Split(size) == %v", a)
	}
	if a == root || b == root {
		t.Fatal("child seed equals parent")
	}
	if root.Split("gap") != a {
		t.Fatal("Split is not deterministic")
	}
	if root.SplitN(1) == root.SplitN(2) {
		t.Fatal("SplitN collision on adjacent indices")
	}
	// Distinct roots must split to distinct children.
	if NewSeed(1).Split("x") == NewSeed(2).Split("x") {
		t.Fatal("same child from different parents")
	}
	// The RNG stream is reproducible.
	r1, r2 := a.RNG(), a.RNG()
	for i := 0; i < 16; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("RNG stream not reproducible")
		}
	}
}

// TestSeedSplitStreamsIndependent pins the splittable property the
// generators rely on: changing one stream's label (or draws) leaves a
// sibling stream untouched.
func TestSeedSplitStreamsIndependent(t *testing.T) {
	root := NewSeed(7)
	want := root.Split("size").RNG().Uint64()
	// Drawing any amount from a sibling stream cannot change "size".
	other := root.Split("gap").RNG()
	for i := 0; i < 100; i++ {
		other.Uint64()
	}
	if got := root.Split("size").RNG().Uint64(); got != want {
		t.Fatalf("sibling stream perturbed: %v != %v", got, want)
	}
}

func TestMMPPGenerateDeterministic(t *testing.T) {
	p := DefaultMMPP(NewSeed(9), 200)
	a := p.MustGenerate()
	b := p.MustGenerate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same MMPP profile generated different arrivals")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.Seed = NewSeed(10)
	if reflect.DeepEqual(a, p2.MustGenerate()) {
		t.Fatal("different seeds generated identical arrivals")
	}
	// The modulation must actually produce both dense and sparse regions:
	// with Busy at 20× Quiet rate, the max gap dwarfs the median gap.
	var gapMax sim.Time
	var gaps []sim.Time
	for i := 1; i < len(a); i++ {
		g := a[i].At - a[i-1].At
		gaps = append(gaps, g)
		if g > gapMax {
			gapMax = g
		}
	}
	var small int
	for _, g := range gaps {
		if g < 10*sim.Ms {
			small++
		}
	}
	if small == 0 || gapMax < 50*sim.Ms {
		t.Errorf("no ON/OFF structure: %d small gaps, max gap %v", small, gapMax)
	}
	// Busy phases dominate the arrival count (~8 of every ~9.6 arrivals
	// with the default rates), so intra-burst gaps must be the majority —
	// this fails if quiet-rate draws swallow the busy phases they span.
	if small <= len(gaps)/2 {
		t.Errorf("bursts underpopulated: %d of %d gaps are intra-burst", small, len(gaps))
	}
}

func TestPeriodicGenerateOrderedAndJittered(t *testing.T) {
	p := DefaultPeriodic(NewSeed(3), 100)
	a := p.MustGenerate()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, p.MustGenerate()) {
		t.Fatal("periodic generation not deterministic")
	}
	offNominal := 0
	for i, ar := range a {
		nominal := sim.Time(i) * p.Period
		d := ar.At - nominal
		if d < 0 {
			d = -d
		}
		if d > sim.Time(float64(p.Period)*p.JitterFrac/2)+1 {
			t.Fatalf("arrival %d jitter %v exceeds bound", i, d)
		}
		if d != 0 {
			offNominal++
		}
	}
	if offNominal == 0 {
		t.Error("no arrival was jittered at all")
	}
}

func TestHeavyTailGenerate(t *testing.T) {
	p := DefaultHeavyTail(NewSeed(5), 400)
	s := p.MustGenerate()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, p.MustGenerate()) {
		t.Fatal("heavy-tail generation not deterministic")
	}
	// Pareto(1.5): the max gap should dominate the median, and the cap
	// must hold.
	var gapMax sim.Time
	for _, it := range s {
		if it.IdleAfter > gapMax {
			gapMax = it.IdleAfter
		}
		if it.IdleAfter > sim.Time(p.TailCap*float64(p.MeanIdle)) {
			t.Fatalf("gap %v exceeds TailCap", it.IdleAfter)
		}
	}
	if gapMax < 5*p.MeanIdle {
		t.Errorf("tail too light: max gap %v with mean %v", gapMax, p.MeanIdle)
	}
}

// TestZeroWeightsDefault pins the weight defaulting: all-zero class and
// priority weights fall back to ALU / Medium across every new generator.
func TestZeroWeightsDefault(t *testing.T) {
	mm := DefaultMMPP(NewSeed(1), 40)
	mm.ClassWeights = [power.NumInstrClasses]float64{}
	mm.PriorityWeights = [task.NumPriorities]float64{}
	for _, a := range mm.MustGenerate() {
		if a.Task.Class != power.InstrALU || a.Task.Priority != task.Medium {
			t.Fatalf("zero weights drew %v/%v", a.Task.Class, a.Task.Priority)
		}
	}
	ht := DefaultHeavyTail(NewSeed(1), 40)
	ht.ClassWeights = [power.NumInstrClasses]float64{}
	ht.PriorityWeights = [task.NumPriorities]float64{}
	for _, it := range ht.MustGenerate() {
		if it.Task.Class != power.InstrALU || it.Task.Priority != task.Medium {
			t.Fatalf("zero weights drew %v/%v", it.Task.Class, it.Task.Priority)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []Spec{
		MMPPSpec(MMPPProfile{NumTasks: 0, MeanInstructions: 1, BusyRate: 2, QuietRate: 1, MeanBusy: 1, MeanQuiet: 1}),
		MMPPSpec(MMPPProfile{NumTasks: 1, MeanInstructions: 0, BusyRate: 2, QuietRate: 1, MeanBusy: 1, MeanQuiet: 1}),
		MMPPSpec(MMPPProfile{NumTasks: 1, MeanInstructions: 1, InstrJitter: 1, BusyRate: 2, QuietRate: 1, MeanBusy: 1, MeanQuiet: 1}),
		MMPPSpec(MMPPProfile{NumTasks: 1, MeanInstructions: 1, BusyRate: 1, QuietRate: 2, MeanBusy: 1, MeanQuiet: 1}),
		MMPPSpec(MMPPProfile{NumTasks: 1, MeanInstructions: 1, BusyRate: 2, QuietRate: 1}),
		PeriodicSpec(PeriodicProfile{NumTasks: 1, MeanInstructions: 1, Period: 0}),
		PeriodicSpec(PeriodicProfile{NumTasks: 1, MeanInstructions: 1, Period: sim.Ms, JitterFrac: 1}),
		HeavyTailSpec(HeavyTailProfile{NumTasks: 1, MeanInstructions: 1, MeanIdle: sim.Ms, Shape: 0.5}),
		HeavyTailSpec(HeavyTailProfile{NumTasks: 1, MeanInstructions: 1, MeanIdle: 0}),
		TraceSpec(nil),
		{Kind: "nope"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated but should not: %+v", i, s)
		}
		if _, _, err := s.Materialize(); err == nil {
			t.Errorf("spec %d materialized but should not", i)
		}
	}
}

func TestSpecMaterializeAndReseed(t *testing.T) {
	specs := []Spec{
		ClosedSpec(HighActivity(1, 10)),
		BurstSpec(DefaultBurst(1, 10)),
		MMPPSpec(DefaultMMPP(NewSeed(1), 10)),
		PeriodicSpec(DefaultPeriodic(NewSeed(1), 10)),
		HeavyTailSpec(DefaultHeavyTail(NewSeed(1), 10)),
		TraceSpec(HighActivity(1, 10).MustGenerate()),
	}
	for _, s := range specs {
		seq, arr, err := s.Materialize()
		if err != nil {
			t.Fatalf("%s: %v", s.Kind, err)
		}
		if (len(seq) > 0) == (len(arr) > 0) {
			t.Fatalf("%s: want exactly one of seq/arr, got %d/%d", s.Kind, len(seq), len(arr))
		}
		// Reseeding changes the workload for every random generator and is
		// a no-op for traces.
		rs := s.Reseed(NewSeed(999))
		seq2, arr2, err := rs.Materialize()
		if err != nil {
			t.Fatalf("%s reseeded: %v", s.Kind, err)
		}
		same := reflect.DeepEqual(seq, seq2) && reflect.DeepEqual(arr, arr2)
		if s.Kind == GenTrace && !same {
			t.Errorf("trace spec changed under Reseed")
		}
		if s.Kind != GenTrace && same {
			t.Errorf("%s: reseed produced an identical workload", s.Kind)
		}
	}
	var none Spec
	if seq, arr, err := none.Materialize(); err != nil || seq != nil || arr != nil {
		t.Fatalf("GenNone materialized to %v/%v (%v)", seq, arr, err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	seq := DefaultHeavyTail(NewSeed(11), 50).MustGenerate()
	var buf bytes.Buffer
	if err := ExportCSV(&buf, seq); err != nil {
		t.Fatal(err)
	}
	got, err := ImportCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, got) {
		t.Fatal("CSV round trip altered the sequence")
	}
	// Replay through a trace spec is byte-identical as well.
	rseq, _, err := TraceSpec(got).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, rseq) {
		t.Fatal("trace replay altered the sequence")
	}
}

func TestCSVImportRejectsGarbage(t *testing.T) {
	cases := []string{
		"id,instructions,class,priority,idle_ns\nx,1,ALU,Medium,0\n",
		"0,notanumber,ALU,Medium,0\n",
		"0,1,NoSuchClass,Medium,0\n",
		"0,1,ALU,NoSuchPriority,0\n",
		"0,1,ALU,Medium,nope\n",
		"0,1,ALU,Medium\n",
		"0,-5,ALU,Medium,0\n", // fails sequence validation
	}
	for i, c := range cases {
		if _, err := ImportCSV(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: garbage CSV imported without error", i)
		}
	}
}

// TestGeneratedTasksValid runs every generator long enough to exercise the
// samplers and validates every produced task.
func TestGeneratedTasksValid(t *testing.T) {
	seed := NewSeed(123)
	seqs := []Sequence{
		DefaultHeavyTail(seed, 300).MustGenerate(),
	}
	arrs := []ArrivalSequence{
		DefaultMMPP(seed, 300).MustGenerate(),
		DefaultPeriodic(seed, 300).MustGenerate(),
	}
	prios := map[task.Priority]int{}
	for _, s := range seqs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, it := range s {
			prios[it.Task.Priority]++
		}
	}
	for _, a := range arrs {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, ar := range a {
			prios[ar.Task.Priority]++
		}
	}
	// The default weights cover all four priority classes; with 900 draws
	// each class must appear.
	for p := task.Priority(0); int(p) < task.NumPriorities; p++ {
		if prios[p] == 0 {
			t.Errorf("priority %v never drawn", p)
		}
	}
}
