package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/task"
)

// taskSampler draws task bodies (size, instruction class, priority) from
// two independent random streams, so the size jitter and the class/priority
// mix can be perturbed independently of the timing streams.
type taskSampler struct {
	size, mix *rand.Rand
	mean      int64
	jitter    float64
	classes   [power.NumInstrClasses]float64
	prios     [task.NumPriorities]float64
}

func newTaskSampler(seed Seed, mean int64, jitter float64,
	classes [power.NumInstrClasses]float64, prios [task.NumPriorities]float64) taskSampler {
	if sumWeights(classes[:]) == 0 {
		classes[power.InstrALU] = 1
	}
	if sumWeights(prios[:]) == 0 {
		prios[task.Medium] = 1
	}
	return taskSampler{
		size:    seed.Split("size").RNG(),
		mix:     seed.Split("mix").RNG(),
		mean:    mean,
		jitter:  jitter,
		classes: classes,
		prios:   prios,
	}
}

func (ts *taskSampler) draw(id int) task.Task {
	jitter := 1 + ts.jitter*(2*ts.size.Float64()-1)
	instr := int64(float64(ts.mean) * jitter)
	if instr < 1 {
		instr = 1
	}
	return task.Task{
		ID:           id,
		Instructions: instr,
		Class:        power.InstructionClass(weightedPick(ts.mix, ts.classes[:])),
		Priority:     task.Priority(weightedPick(ts.mix, ts.prios[:])),
	}
}

func validateTaskParams(numTasks int, mean int64, jitter float64) error {
	if numTasks <= 0 {
		return fmt.Errorf("workload: NumTasks must be positive")
	}
	if mean <= 0 {
		return fmt.Errorf("workload: MeanInstructions must be positive")
	}
	if jitter < 0 || jitter >= 1 {
		return fmt.Errorf("workload: InstrJitter %v outside [0,1)", jitter)
	}
	return nil
}

// MMPPProfile generates open-loop arrivals from a two-state Markov-
// modulated Poisson process: the source alternates between a Busy phase
// (high arrival rate) and a Quiet phase (low rate), with exponentially
// distributed phase sojourns. Unlike BurstProfile's closed-loop bursts,
// MMPP arrivals keep coming while the IP is still serving — a slow power
// state builds a queue during a busy phase, exactly the overload/recovery
// pattern that separates timeout policies from predictive LEMs.
//
// Phase changes, inter-arrival gaps and task bodies draw from independent
// split streams of Seed, so tuning one rate never perturbs the others.
type MMPPProfile struct {
	Seed     Seed
	NumTasks int
	// MeanInstructions / InstrJitter size the tasks as in Profile.
	MeanInstructions int64
	InstrJitter      float64
	ClassWeights     [power.NumInstrClasses]float64
	PriorityWeights  [task.NumPriorities]float64
	// BusyRate / QuietRate are the mean arrival rates (tasks per second)
	// in each phase; BusyRate must exceed QuietRate.
	BusyRate  float64
	QuietRate float64
	// MeanBusy / MeanQuiet are the mean phase sojourn times.
	MeanBusy  sim.Time
	MeanQuiet sim.Time
}

// DefaultMMPP returns an ON/OFF source: 200 req/s bursts of ~40 ms
// separated by ~160 ms lulls at 10 req/s.
func DefaultMMPP(seed Seed, numTasks int) MMPPProfile {
	return MMPPProfile{
		Seed:             seed,
		NumTasks:         numTasks,
		MeanInstructions: 2_000_000,
		InstrJitter:      0.5,
		ClassWeights:     [power.NumInstrClasses]float64{4, 2, 1, 1},
		PriorityWeights:  [task.NumPriorities]float64{1, 2, 2, 1},
		BusyRate:         200,
		QuietRate:        10,
		MeanBusy:         40 * sim.Ms,
		MeanQuiet:        160 * sim.Ms,
	}
}

// Validate checks the parameters.
func (p MMPPProfile) Validate() error {
	if err := validateTaskParams(p.NumTasks, p.MeanInstructions, p.InstrJitter); err != nil {
		return err
	}
	if p.QuietRate <= 0 || p.BusyRate <= p.QuietRate {
		return fmt.Errorf("workload: want 0 < QuietRate < BusyRate")
	}
	if p.MeanBusy <= 0 || p.MeanQuiet <= 0 {
		return fmt.Errorf("workload: MeanBusy and MeanQuiet must be positive")
	}
	return nil
}

// Generate produces the deterministic arrival sequence.
func (p MMPPProfile) Generate() (ArrivalSequence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ts := newTaskSampler(p.Seed, p.MeanInstructions, p.InstrJitter, p.ClassWeights, p.PriorityWeights)
	phase := p.Seed.Split("phase").RNG()
	gaps := p.Seed.Split("gap").RNG()

	arr := make(ArrivalSequence, p.NumTasks)
	busy := true
	now := sim.Time(0)
	phaseEnd := sim.Time(phase.ExpFloat64() * float64(p.MeanBusy))
	for i := range arr {
		// A doubly-stochastic Poisson process: draw one unit-rate
		// exponential and consume it at the phase rate in effect, so a
		// gap that spans a phase boundary is rescaled to the new rate for
		// its remainder (memorylessness makes this exact) — busy phases
		// inside a long quiet gap still burst instead of being skipped.
		e := gaps.ExpFloat64()
		for {
			rate := p.BusyRate
			if !busy {
				rate = p.QuietRate
			}
			dt := sim.Time(e / rate * float64(sim.Sec))
			if now+dt < phaseEnd {
				now += dt
				break
			}
			e -= (phaseEnd - now).Seconds() * rate
			if e < 0 {
				e = 0
			}
			now = phaseEnd
			busy = !busy
			mean := p.MeanBusy
			if !busy {
				mean = p.MeanQuiet
			}
			phaseEnd += sim.Time(phase.ExpFloat64() * float64(mean))
		}
		tk := ts.draw(i)
		tk.Release = now
		arr[i] = Arrival{Task: tk, At: now}
	}
	return arr, nil
}

// MustGenerate is Generate that panics on error.
func (p MMPPProfile) MustGenerate() ArrivalSequence {
	s, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return s
}

// PeriodicProfile generates open-loop arrivals on a fixed period with
// bounded uniform jitter — the sensor-sampling / media-frame workload
// class. Arrival i lands at i·Period + U(−Jitter, +Jitter)·Period/2, so
// for JitterFrac < 1 arrivals never reorder. Periodic gaps are the
// best case for history predictors and the worst case for policies that
// pay a wake-up penalty every period.
type PeriodicProfile struct {
	Seed             Seed
	NumTasks         int
	MeanInstructions int64
	InstrJitter      float64
	ClassWeights     [power.NumInstrClasses]float64
	PriorityWeights  [task.NumPriorities]float64
	// Period is the nominal inter-arrival spacing.
	Period sim.Time
	// JitterFrac in [0,1) bounds the uniform arrival jitter to
	// ±JitterFrac·Period/2 around each nominal instant.
	JitterFrac float64
}

// DefaultPeriodic returns a 25 ms period (40 Hz frame rate) with 20%
// arrival jitter.
func DefaultPeriodic(seed Seed, numTasks int) PeriodicProfile {
	return PeriodicProfile{
		Seed:             seed,
		NumTasks:         numTasks,
		MeanInstructions: 2_000_000,
		InstrJitter:      0.3,
		ClassWeights:     [power.NumInstrClasses]float64{4, 2, 1, 1},
		PriorityWeights:  [task.NumPriorities]float64{1, 2, 2, 1},
		Period:           25 * sim.Ms,
		JitterFrac:       0.2,
	}
}

// Validate checks the parameters.
func (p PeriodicProfile) Validate() error {
	if err := validateTaskParams(p.NumTasks, p.MeanInstructions, p.InstrJitter); err != nil {
		return err
	}
	if p.Period <= 0 {
		return fmt.Errorf("workload: Period must be positive")
	}
	if p.JitterFrac < 0 || p.JitterFrac >= 1 {
		return fmt.Errorf("workload: JitterFrac %v outside [0,1)", p.JitterFrac)
	}
	return nil
}

// Generate produces the deterministic arrival sequence.
func (p PeriodicProfile) Generate() (ArrivalSequence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ts := newTaskSampler(p.Seed, p.MeanInstructions, p.InstrJitter, p.ClassWeights, p.PriorityWeights)
	jit := p.Seed.Split("jitter").RNG()

	arr := make(ArrivalSequence, p.NumTasks)
	half := p.JitterFrac * float64(p.Period) / 2
	for i := range arr {
		at := sim.Time(i)*p.Period + sim.Time(half*(2*jit.Float64()-1))
		if at < 0 {
			at = 0
		}
		tk := ts.draw(i)
		tk.Release = at
		arr[i] = Arrival{Task: tk, At: at}
	}
	return arr, nil
}

// MustGenerate is Generate that panics on error.
func (p PeriodicProfile) MustGenerate() ArrivalSequence {
	s, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return s
}

// HeavyTailProfile generates a closed-loop sequence whose idle gaps are
// Pareto distributed with a configurable tail exponent — the self-similar
// "mostly short gaps, occasionally enormous ones" statistic measured on
// real interactive traffic. The heavy tail is the adversarial case for
// break-even gating: most gaps don't pay for sleeping, but the rare long
// ones dominate the idle energy.
type HeavyTailProfile struct {
	Seed             Seed
	NumTasks         int
	MeanInstructions int64
	InstrJitter      float64
	ClassWeights     [power.NumInstrClasses]float64
	PriorityWeights  [task.NumPriorities]float64
	// MeanIdle is the (clamped) mean idle gap.
	MeanIdle sim.Time
	// Shape is the Pareto tail exponent; must exceed 1 so the mean exists
	// (0 selects the default 1.5 — lower means a heavier tail).
	Shape float64
	// TailCap clamps draws at TailCap×MeanIdle to keep runs bounded
	// (0 selects the default 50).
	TailCap float64
}

// DefaultHeavyTail returns a Pareto(1.5) gap source with 20 ms mean idle.
func DefaultHeavyTail(seed Seed, numTasks int) HeavyTailProfile {
	return HeavyTailProfile{
		Seed:             seed,
		NumTasks:         numTasks,
		MeanInstructions: 2_000_000,
		InstrJitter:      0.5,
		ClassWeights:     [power.NumInstrClasses]float64{4, 2, 1, 1},
		PriorityWeights:  [task.NumPriorities]float64{1, 2, 2, 1},
		MeanIdle:         20 * sim.Ms,
		Shape:            1.5,
		TailCap:          50,
	}
}

// Validate checks the parameters.
func (p HeavyTailProfile) Validate() error {
	if err := validateTaskParams(p.NumTasks, p.MeanInstructions, p.InstrJitter); err != nil {
		return err
	}
	if p.MeanIdle <= 0 {
		return fmt.Errorf("workload: MeanIdle must be positive")
	}
	if p.Shape != 0 && p.Shape <= 1 {
		return fmt.Errorf("workload: Pareto Shape %v must exceed 1", p.Shape)
	}
	if p.TailCap < 0 {
		return fmt.Errorf("workload: negative TailCap")
	}
	return nil
}

// Generate produces the deterministic heavy-tailed sequence.
func (p HeavyTailProfile) Generate() (Sequence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ts := newTaskSampler(p.Seed, p.MeanInstructions, p.InstrJitter, p.ClassWeights, p.PriorityWeights)
	gaps := p.Seed.Split("gap").RNG()
	shape := p.Shape
	if shape == 0 {
		shape = 1.5
	}
	tailCap := p.TailCap
	if tailCap == 0 {
		tailCap = 50
	}
	mean := float64(p.MeanIdle)
	xm := mean * (shape - 1) / shape

	seq := make(Sequence, p.NumTasks)
	for i := range seq {
		u := gaps.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		v := xm / math.Pow(u, 1/shape)
		if v > tailCap*mean {
			v = tailCap * mean
		}
		seq[i] = Item{Task: ts.draw(i), IdleAfter: sim.Time(v)}
	}
	return seq, nil
}

// MustGenerate is Generate that panics on error.
func (p HeavyTailProfile) MustGenerate() Sequence {
	s, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return s
}

// ExportCSV writes the sequence as CSV with a header:
// id,instructions,class,priority,idle_ps. The format round-trips through
// ImportCSV, so measured traces can be replayed as scenarios.
func ExportCSV(w io.Writer, s Sequence) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "instructions", "class", "priority", "idle_ps"}); err != nil {
		return err
	}
	for _, it := range s {
		rec := []string{
			strconv.Itoa(it.Task.ID),
			strconv.FormatInt(it.Task.Instructions, 10),
			it.Task.Class.String(),
			it.Task.Priority.String(),
			strconv.FormatInt(int64(it.IdleAfter), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads a sequence written by ExportCSV (the header row is
// optional). The result validates like any generated sequence.
func ImportCSV(r io.Reader) (Sequence, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	var seq Sequence
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: csv: %v", err)
		}
		line++
		if line == 1 && rec[0] == "id" {
			continue // header
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("workload: csv line %d: bad id %q", line, rec[0])
		}
		instr, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: csv line %d: bad instructions %q", line, rec[1])
		}
		class, err := parseClass(rec[2])
		if err != nil {
			return nil, fmt.Errorf("workload: csv line %d: %v", line, err)
		}
		prio, err := task.ParsePriority(rec[3])
		if err != nil {
			return nil, fmt.Errorf("workload: csv line %d: %v", line, err)
		}
		idle, err := strconv.ParseInt(rec[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: csv line %d: bad idle %q", line, rec[4])
		}
		seq = append(seq, Item{
			Task:      task.Task{ID: id, Instructions: instr, Class: class, Priority: prio},
			IdleAfter: sim.Time(idle),
		})
	}
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	return seq, nil
}

// GenKind tags the generator variant a Spec selects.
type GenKind string

// Generator kinds.
const (
	// GenNone marks an unset Spec (the IP carries an explicit workload).
	GenNone GenKind = ""
	// GenClosed is the seed's Profile: closed-loop with Fixed /
	// Exponential / Pareto idle gaps.
	GenClosed GenKind = "closed"
	// GenBurst is BurstProfile: closed-loop geometric ON/OFF bursts.
	GenBurst GenKind = "burst"
	// GenMMPP is MMPPProfile: open-loop Markov-modulated arrivals.
	GenMMPP GenKind = "mmpp"
	// GenPeriodic is PeriodicProfile: open-loop period-with-jitter.
	GenPeriodic GenKind = "periodic"
	// GenHeavyTail is HeavyTailProfile: closed-loop Pareto idle gaps.
	GenHeavyTail GenKind = "heavytail"
	// GenTrace replays an inline sequence (e.g. loaded with ImportCSV).
	GenTrace GenKind = "trace"
)

// Spec is a workload generator as pure value data: a tagged union of the
// generator profiles, holding only scalars, weight arrays and (for traces)
// the literal sequence. A Spec placed on a soc.IPSpec is materialized
// during config normalization and — because it is value data — folds into
// the engine's content-addressed cache key: two configs with equal Specs
// are the same simulation, bit for bit.
type Spec struct {
	Kind GenKind
	// Exactly the field matching Kind is consulted; the rest stay zero.
	Closed    Profile
	Burst     BurstProfile
	MMPP      MMPPProfile
	Periodic  PeriodicProfile
	HeavyTail HeavyTailProfile
	// Trace is the inline sequence for GenTrace.
	Trace Sequence
}

// ClosedSpec wraps a Profile.
func ClosedSpec(p Profile) Spec { return Spec{Kind: GenClosed, Closed: p} }

// BurstSpec wraps a BurstProfile.
func BurstSpec(p BurstProfile) Spec { return Spec{Kind: GenBurst, Burst: p} }

// MMPPSpec wraps an MMPPProfile.
func MMPPSpec(p MMPPProfile) Spec { return Spec{Kind: GenMMPP, MMPP: p} }

// PeriodicSpec wraps a PeriodicProfile.
func PeriodicSpec(p PeriodicProfile) Spec { return Spec{Kind: GenPeriodic, Periodic: p} }

// HeavyTailSpec wraps a HeavyTailProfile.
func HeavyTailSpec(p HeavyTailProfile) Spec { return Spec{Kind: GenHeavyTail, HeavyTail: p} }

// TraceSpec wraps a literal sequence for replay.
func TraceSpec(s Sequence) Spec { return Spec{Kind: GenTrace, Trace: s} }

// Validate checks the selected generator's parameters.
func (s Spec) Validate() error {
	switch s.Kind {
	case GenNone:
		return nil
	case GenClosed:
		return s.Closed.Validate()
	case GenBurst:
		return s.Burst.Validate()
	case GenMMPP:
		return s.MMPP.Validate()
	case GenPeriodic:
		return s.Periodic.Validate()
	case GenHeavyTail:
		return s.HeavyTail.Validate()
	case GenTrace:
		if len(s.Trace) == 0 {
			return fmt.Errorf("workload: empty trace")
		}
		return s.Trace.Validate()
	default:
		return fmt.Errorf("workload: unknown generator kind %q", s.Kind)
	}
}

// Materialize runs the generator: closed-loop kinds fill seq, open-loop
// kinds fill arr. A GenNone spec returns nothing.
func (s Spec) Materialize() (seq Sequence, arr ArrivalSequence, err error) {
	switch s.Kind {
	case GenNone:
		return nil, nil, nil
	case GenClosed:
		seq, err = s.Closed.Generate()
	case GenBurst:
		seq, err = s.Burst.Generate()
	case GenMMPP:
		arr, err = s.MMPP.Generate()
	case GenPeriodic:
		arr, err = s.Periodic.Generate()
	case GenHeavyTail:
		seq, err = s.HeavyTail.Generate()
	case GenTrace:
		if err = s.Validate(); err == nil {
			seq = s.Trace
		}
	default:
		err = fmt.Errorf("workload: unknown generator kind %q", s.Kind)
	}
	return seq, arr, err
}

// Normalized returns the spec with every defaultable parameter filled in
// exactly as generation will interpret it: all-zero class/priority
// weights become the documented ALU-only/Medium-only defaults, and the
// heavy-tail Shape/TailCap zero values become 1.5/50. A field left zero
// and the same field set to its default therefore describe the identical
// workload AND hash identically — soc.Config normalization applies this
// before the engine fingerprints the spec.
func (s Spec) Normalized() Spec {
	defaultWeights := func(classes *[power.NumInstrClasses]float64, prios *[task.NumPriorities]float64) {
		if sumWeights(classes[:]) == 0 {
			classes[power.InstrALU] = 1
		}
		if sumWeights(prios[:]) == 0 {
			prios[task.Medium] = 1
		}
	}
	switch s.Kind {
	case GenClosed:
		defaultWeights(&s.Closed.ClassWeights, &s.Closed.PriorityWeights)
	case GenBurst:
		defaultWeights(&s.Burst.ClassWeights, &s.Burst.PriorityWeights)
	case GenMMPP:
		defaultWeights(&s.MMPP.ClassWeights, &s.MMPP.PriorityWeights)
	case GenPeriodic:
		defaultWeights(&s.Periodic.ClassWeights, &s.Periodic.PriorityWeights)
	case GenHeavyTail:
		defaultWeights(&s.HeavyTail.ClassWeights, &s.HeavyTail.PriorityWeights)
		if s.HeavyTail.Shape == 0 {
			s.HeavyTail.Shape = 1.5
		}
		if s.HeavyTail.TailCap == 0 {
			s.HeavyTail.TailCap = 50
		}
	}
	return s
}

// Reseed returns a copy of the spec with the generator's seed replaced —
// the replicate fan-out primitive. Traces have no randomness, so a trace
// spec reseeds to itself.
func (s Spec) Reseed(seed Seed) Spec {
	switch s.Kind {
	case GenClosed:
		s.Closed.Seed = int64(seed)
	case GenBurst:
		s.Burst.Seed = int64(seed)
	case GenMMPP:
		s.MMPP.Seed = seed
	case GenPeriodic:
		s.Periodic.Seed = seed
	case GenHeavyTail:
		s.HeavyTail.Seed = seed
	}
	return s
}
