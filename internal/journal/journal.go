// Package journal is the serving layer's append-only request journal: one
// NDJSON record per handled request, written as traffic arrives, so an
// incident's exact request mix — endpoints, configurations, arrival
// spacing, outcomes, latencies — survives the incident and can be replayed
// later as a reproducible benchmark input (the dpmserve loadgen's -replay
// mode consumes a journal through Reader).
//
// The format is deliberately boring: a header line naming the schema
// version and the journal's start time, then one JSON object per line.
// Boring buys crash tolerance — a process killed mid-append leaves at
// worst one torn final line, which Reader detects and skips — and
// greppability: `jq` and `grep` work on an incident journal as-is.
//
// Writers rotate: when the active file would exceed the size cap, it is
// renamed to <path>.1 (replacing the previous rotation) and a fresh file
// is started, so a journaling server's disk footprint is bounded at about
// twice the cap no matter how long it serves.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Version is the journal schema version, written in the header line and
// checked by Reader.
const Version = 1

// Endpoint names used in Record.Endpoint by the serving layer.
const (
	EndpointSimulate   = "simulate"
	EndpointTournament = "tournament"
)

// Outcome labels used in Record.Outcome.
const (
	OutcomeHit      = "hit"      // served from cache or singleflight dedup
	OutcomeRun      = "run"      // a fresh simulation was executed
	OutcomeError    = "error"    // the request failed
	OutcomeCanceled = "canceled" // the client went away mid-request
	// OutcomeThrottled marks a request refused by admission control
	// (429). It is journaled — the refusals are part of the incident's
	// traffic shape — but carries no fingerprint (the work never ran).
	OutcomeThrottled = "throttled"
)

// header is the first line of every journal file.
type header struct {
	Journal     string `json:"journal"`
	Version     int    `json:"version"`
	StartUnixMs int64  `json:"start_unix_ms"`
}

// Record is one journaled request. T is the wall-clock offset from the
// journal's start time — relative, so replay needs no clock alignment and
// journals diff cleanly across runs.
type Record struct {
	// T is seconds since the journal's start.
	T float64 `json:"t"`
	// Endpoint names the request class (EndpointSimulate, ...).
	Endpoint string `json:"endpoint"`
	// Scenario/Tasks/Seed reconstruct a catalog-scenario simulate request
	// exactly; ConfigDigest instead fingerprints an inline-config request
	// (reproducible as a cache key, but not re-issuable from the journal
	// alone).
	Scenario     string `json:"scenario,omitempty"`
	Tasks        int    `json:"tasks,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	ConfigDigest string `json:"config_digest,omitempty"`
	// Fingerprint is the engine cache key the request resolved to — the
	// identity replay verifies against.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Outcome classifies how the request ended (OutcomeHit, ...).
	Outcome string `json:"outcome"`
	// Status is the HTTP status served.
	Status int `json:"status,omitempty"`
	// LatencyMs is the server-side handling latency in milliseconds.
	LatencyMs float64 `json:"latency_ms"`
}

// Replayable reports whether the record carries enough to re-issue the
// request (catalog scenario records do; inline-config records only carry
// a digest).
func (r Record) Replayable() bool {
	return r.Endpoint == EndpointSimulate && r.Scenario != ""
}

// Options configures a Writer.
type Options struct {
	// MaxBytes rotates the active file when an append would push it past
	// this size; ≤0 selects 64 MiB. At most one rotated file (<path>.1)
	// is kept.
	MaxBytes int64
	// Start anchors Record.T offsets; the zero value means time.Now().
	Start time.Time
}

const defaultMaxBytes = 64 << 20

// Writer appends records to an NDJSON journal file. Appends are
// mutex-serialised and flushed per record — a journal is an audit
// artifact; buffering whole pages would trade away exactly the tail the
// next incident needs. Safe for concurrent use.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	path     string
	maxBytes int64
	size     int64
	start    time.Time
	appended int64
	rotated  int64
	closed   bool
}

// Open creates (or truncates) the journal at path and writes the header.
func Open(path string, opts Options) (*Writer, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = defaultMaxBytes
	}
	if opts.Start.IsZero() {
		opts.Start = time.Now()
	}
	w := &Writer{path: path, maxBytes: opts.MaxBytes, start: opts.Start}
	if err := w.openFile(); err != nil {
		return nil, err
	}
	return w, nil
}

// openFile starts a fresh journal file with a header line; callers hold
// w.mu (or are the constructor).
func (w *Writer) openFile() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	w.size = 0
	hdr, err := json.Marshal(header{Journal: "godpm", Version: Version, StartUnixMs: w.start.UnixMilli()})
	if err != nil {
		return err
	}
	return w.writeLine(hdr)
}

// writeLine appends one line and flushes; callers hold w.mu.
func (w *Writer) writeLine(line []byte) error {
	if _, err := w.w.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.size += int64(len(line)) + 1
	return nil
}

// Start returns the journal's anchor time (Record.T offsets are relative
// to it).
func (w *Writer) Start() time.Time { return w.start }

// Path returns the active journal file's path.
func (w *Writer) Path() string { return w.path }

// Offset converts an absolute time to the journal's T offset.
func (w *Writer) Offset(t time.Time) float64 { return t.Sub(w.start).Seconds() }

// Append journals one record, rotating first if the append would breach
// the size cap.
func (w *Writer) Append(r Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("journal: writer closed")
	}
	if w.size+int64(len(line))+1 > w.maxBytes && w.size > 0 {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if err := w.writeLine(line); err != nil {
		return err
	}
	w.appended++
	return nil
}

// rotateLocked closes the active file, moves it to <path>.1 (replacing
// any previous rotation) and opens a fresh file; callers hold w.mu.
func (w *Writer) rotateLocked() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	w.rotated++
	return w.openFile()
}

// Stats reports the writer's counters: records appended and rotations
// performed over its lifetime.
func (w *Writer) Stats() (appended, rotated int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended, w.rotated
}

// Close flushes and closes the journal.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Reader iterates a journal's records, skipping (and counting) torn or
// malformed lines instead of failing — the file may have been written by
// a process that died mid-append, and everything before the tear is still
// good data.
type Reader struct {
	sc      *bufio.Scanner
	start   time.Time
	version int
	skipped int
	readHdr bool
}

// NewReader wraps an NDJSON journal stream.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &Reader{sc: sc}
}

// Next returns the next record, or io.EOF when the journal is exhausted.
// The header line (consumed transparently) and any undecodable lines are
// skipped; the latter increment Skipped.
func (r *Reader) Next() (Record, error) {
	for r.sc.Scan() {
		line := bytes.TrimSpace(r.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !r.readHdr {
			r.readHdr = true
			var h header
			if err := json.Unmarshal(line, &h); err == nil && h.Journal == "godpm" {
				if h.Version != Version {
					return Record{}, fmt.Errorf("journal: unsupported version %d (reader speaks %d)", h.Version, Version)
				}
				r.version = h.Version
				r.start = time.UnixMilli(h.StartUnixMs)
				continue
			}
			// No header (hand-built journal): fall through and try the
			// line as a record.
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Endpoint == "" {
			// Torn tail from a crashed writer, or junk. Skip, count,
			// keep reading — the tear may not be the last line if the
			// file was concatenated from rotations.
			r.skipped++
			continue
		}
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, fmt.Errorf("journal: %w", err)
	}
	return Record{}, io.EOF
}

// Start returns the journal's header start time (zero when the stream had
// no header).
func (r *Reader) Start() time.Time { return r.start }

// Skipped counts undecodable lines passed over so far.
func (r *Reader) Skipped() int { return r.skipped }

// ReadFile loads every record of the journal at path. The skipped count
// reports torn/malformed lines that were passed over.
func ReadFile(path string) (recs []Record, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	r := NewReader(f)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, r.Skipped(), nil
		}
		if err != nil {
			return recs, r.Skipped(), err
		}
		recs = append(recs, rec)
	}
}
