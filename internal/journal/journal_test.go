package journal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "requests.ndjson")
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	w, err := Open(path, Options{Start: start})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{T: 0.001, Endpoint: EndpointSimulate, Scenario: "A1", Tasks: 20, Seed: 1, Fingerprint: "abc", Outcome: OutcomeRun, Status: 200, LatencyMs: 12.5},
		{T: 0.250, Endpoint: EndpointSimulate, Scenario: "A1", Tasks: 20, Seed: 1, Fingerprint: "abc", Outcome: OutcomeHit, Status: 200, LatencyMs: 0.8},
		{T: 0.900, Endpoint: EndpointSimulate, ConfigDigest: "deadbeef", Fingerprint: "def", Outcome: OutcomeError, Status: 422, LatencyMs: 3.0},
		{T: 1.500, Endpoint: EndpointTournament, Outcome: OutcomeRun, Status: 200, LatencyMs: 420.0},
	}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, skipped, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("clean journal reported %d skipped lines", skipped)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// The header carries the start time.
	f, _ := os.Open(path)
	defer f.Close()
	r := NewReader(f)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if !r.Start().Equal(start) {
		t.Fatalf("header start %v, want %v", r.Start(), start)
	}
	// Replayability classification.
	if !got[0].Replayable() || !got[1].Replayable() {
		t.Fatal("scenario simulate records must be replayable")
	}
	if got[2].Replayable() || got[3].Replayable() {
		t.Fatal("inline-config and tournament records must not claim replayability")
	}
}

// TestTornTailSkipped is the crash-tolerance contract: a process killed
// mid-append leaves a torn final line; every record before it must still
// read back, and the tear is counted, not fatal.
func TestTornTailSkipped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.ndjson")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(Record{T: float64(i), Endpoint: EndpointSimulate, Scenario: "A1", Seed: int64(i), Outcome: OutcomeRun}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":10.0,"endpoint":"simu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, skipped, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records, want the 10 intact ones", len(recs))
	}
	if skipped != 1 {
		t.Fatalf("skipped %d lines, want exactly the torn tail", skipped)
	}
	for i, r := range recs {
		if r.Seed != int64(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}

// TestTornMiddleLineSkipped: a journal assembled by concatenating a
// rotation with the active file can carry a tear mid-stream; reading
// continues past it.
func TestTornMiddleLineSkipped(t *testing.T) {
	in := `{"journal":"godpm","version":1,"start_unix_ms":0}
{"t":0.1,"endpoint":"simulate","scenario":"A1","outcome":"run","latency_ms":1}
{"t":0.2,"endpoint":"simu
{"t":0.3,"endpoint":"simulate","scenario":"A2","outcome":"hit","latency_ms":0.5}
`
	r := NewReader(strings.NewReader(in))
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 || recs[0].Scenario != "A1" || recs[1].Scenario != "A2" {
		t.Fatalf("got %+v, want the two intact records", recs)
	}
	if r.Skipped() != 1 {
		t.Fatalf("skipped %d, want 1", r.Skipped())
	}
}

func TestUnsupportedVersionRefused(t *testing.T) {
	in := `{"journal":"godpm","version":99,"start_unix_ms":0}
{"t":0.1,"endpoint":"simulate","scenario":"A1","outcome":"run","latency_ms":1}
`
	r := NewReader(strings.NewReader(in))
	if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version journal read without error: %v", err)
	}
}

func TestHeaderlessJournalStillReads(t *testing.T) {
	in := `{"t":0.1,"endpoint":"simulate","scenario":"A1","outcome":"run","latency_ms":1}`
	r := NewReader(strings.NewReader(in))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Scenario != "A1" {
		t.Fatalf("got %+v", rec)
	}
}

// TestRotationBoundsDiskUse: the active file never exceeds the cap, one
// rotated sibling is kept, and the newest records are always readable.
func TestRotationBoundsDiskUse(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rot.ndjson")
	const maxBytes = 2048
	w, err := Open(path, Options{MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		if err := w.Append(Record{T: float64(i), Endpoint: EndpointSimulate, Scenario: "A1", Seed: int64(i), Outcome: OutcomeRun, LatencyMs: 1}); err != nil {
			t.Fatal(err)
		}
		if fi, err := os.Stat(path); err == nil && fi.Size() > maxBytes {
			t.Fatalf("active journal %d bytes exceeds cap %d", fi.Size(), maxBytes)
		}
	}
	appended, rotated := w.Stats()
	if appended != total {
		t.Fatalf("appended %d, want %d", appended, total)
	}
	if rotated == 0 {
		t.Fatal("no rotation despite tiny cap")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Exactly the active file and one rotation exist.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("want active + one rotation, got %v", names)
	}
	// Both generations read, both start with a valid header, and the
	// tail of the active file is the last record appended.
	recs, skipped, err := ReadFile(path)
	if err != nil || skipped != 0 {
		t.Fatalf("active: err=%v skipped=%d", err, skipped)
	}
	if recs[len(recs)-1].Seed != total-1 {
		t.Fatalf("active tail seed %d, want %d", recs[len(recs)-1].Seed, total-1)
	}
	prev, skipped, err := ReadFile(path + ".1")
	if err != nil || skipped != 0 {
		t.Fatalf("rotation: err=%v skipped=%d", err, skipped)
	}
	if prev[len(prev)-1].Seed+1 != recs[0].Seed {
		t.Fatalf("rotation tail %d and active head %d are not contiguous", prev[len(prev)-1].Seed, recs[0].Seed)
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "conc.ndjson")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Append(Record{T: 1, Endpoint: EndpointSimulate, Scenario: fmt.Sprintf("S%d", g), Seed: int64(i), Outcome: OutcomeHit}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != goroutines*per {
		t.Fatalf("read %d records (%d skipped), want %d clean", len(recs), skipped, goroutines*per)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w, err := Open(filepath.Join(t.TempDir(), "x.ndjson"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Endpoint: EndpointSimulate, Outcome: OutcomeHit}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
