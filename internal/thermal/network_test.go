package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"godpm/internal/sim"
)

func newNet(t *testing.T, names ...string) *Network {
	t.Helper()
	k := sim.NewKernel()
	return NewNetwork(k, "net", DefaultNetworkParams(), names, 45)
}

func TestNetworkParamsValidate(t *testing.T) {
	if err := DefaultNetworkParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*NetworkParams){
		func(p *NetworkParams) { p.NodeRthKperW = 0 },
		func(p *NetworkParams) { p.NodeCthJperK = -1 },
		func(p *NetworkParams) { p.SpreaderRthKperW = 0 },
		func(p *NetworkParams) { p.SpreaderCthJperK = 0 },
		func(p *NetworkParams) { p.FanFactor = 1 },
	}
	for i, m := range mut {
		p := DefaultNetworkParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNetworkConstructionErrors(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero nodes")
		}
	}()
	NewNetwork(k, "net", DefaultNetworkParams(), nil, 45)
}

func TestNetworkSteadyState(t *testing.T) {
	n := newNet(t, "a", "b")
	powers := []float64{0.5, 0.1}
	want0 := n.SteadyStateC(0, powers)
	want1 := n.SteadyStateC(1, powers)
	for i := 0; i < 500; i++ {
		n.Step(powers, sim.Ms)
	}
	if math.Abs(n.NodeTempC(0)-want0) > 0.5 {
		t.Fatalf("node 0 at %v, want ≈%v", n.NodeTempC(0), want0)
	}
	if math.Abs(n.NodeTempC(1)-want1) > 0.5 {
		t.Fatalf("node 1 at %v, want ≈%v", n.NodeTempC(1), want1)
	}
	// The loaded node must be hotter.
	idx, hot := n.Hottest()
	if idx != 0 || hot != n.NodeTempC(0) {
		t.Fatalf("Hottest = %d,%v", idx, hot)
	}
}

func TestNetworkNeighbourHeating(t *testing.T) {
	// An unloaded node must still heat up through the spreader when its
	// neighbour burns power — the effect the single-node model can't show.
	n := newNet(t, "hot", "cold")
	for i := 0; i < 300; i++ {
		n.Step([]float64{1.0, 0}, sim.Ms)
	}
	cold := n.NodeTempC(1)
	if cold <= 46 {
		t.Fatalf("cold node stayed at %v despite neighbour load", cold)
	}
	if cold >= n.NodeTempC(0) {
		t.Fatalf("cold node %v not cooler than loaded node %v", cold, n.NodeTempC(0))
	}
	// The cold node settles at the spreader temperature (no own load).
	if math.Abs(cold-n.SpreaderTempC()) > 0.5 {
		t.Fatalf("cold node %v far from spreader %v", cold, n.SpreaderTempC())
	}
}

func TestNetworkFanCoolsEverything(t *testing.T) {
	a := newNet(t, "x", "y")
	b := newNet(t, "x", "y")
	b.SetFan(true)
	if !b.FanOn() {
		t.Fatal("fan not reported")
	}
	powers := []float64{0.5, 0.5}
	for i := 0; i < 300; i++ {
		a.Step(powers, sim.Ms)
		b.Step(powers, sim.Ms)
	}
	if b.NodeTempC(0) >= a.NodeTempC(0) {
		t.Fatalf("fan did not cool: %v vs %v", b.NodeTempC(0), a.NodeTempC(0))
	}
}

func TestNetworkCoolsToAmbient(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, "net", DefaultNetworkParams(), []string{"a"}, 90)
	for i := 0; i < 1000; i++ {
		n.Step([]float64{0}, sim.Ms)
	}
	if math.Abs(n.NodeTempC(0)-45) > 0.5 || math.Abs(n.SpreaderTempC()-45) > 0.5 {
		t.Fatalf("did not cool to ambient: node %v spreader %v", n.NodeTempC(0), n.SpreaderTempC())
	}
}

func TestNetworkNodeLookup(t *testing.T) {
	n := newNet(t, "cpu", "dsp")
	if _, ok := n.NodeTempByName("cpu"); !ok {
		t.Fatal("cpu not found")
	}
	if _, ok := n.NodeTempByName("gpu"); ok {
		t.Fatal("phantom node found")
	}
	if n.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
}

func TestNetworkStepPowerCountMismatchPanics(t *testing.T) {
	n := newNet(t, "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Step([]float64{1}, sim.Ms)
}

func TestNetworkHottestSignalUpdates(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, "net", DefaultNetworkParams(), []string{"a"}, 45)
	e := k.NewEvent("tick")
	i := 0
	k.Method("drv", func() {
		n.Step([]float64{2.0}, sim.Ms)
		i++
		if i < 50 {
			e.Notify(sim.Ms)
		}
	}).Sensitive(e)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if n.HottestSignal().Read() <= 46 {
		t.Fatalf("hottest signal %v did not track heating", n.HottestSignal().Read())
	}
}

// Property: node temperatures stay within [ambient, steady-state] bounds
// under constant load from an ambient start.
func TestNetworkBoundedProperty(t *testing.T) {
	f := func(p1, p2 uint8) bool {
		k := sim.NewKernel()
		n := NewNetwork(k, "net", DefaultNetworkParams(), []string{"a", "b"}, 45)
		powers := []float64{float64(p1%30) / 10, float64(p2%30) / 10}
		hi0 := n.SteadyStateC(0, powers) + 1e-6
		hi1 := n.SteadyStateC(1, powers) + 1e-6
		for i := 0; i < 100; i++ {
			n.Step(powers, sim.Ms)
			if n.NodeTempC(0) < 45-1e-6 || n.NodeTempC(0) > hi0 {
				return false
			}
			if n.NodeTempC(1) < 45-1e-6 || n.NodeTempC(1) > hi1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
