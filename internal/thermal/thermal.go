// Package thermal models the chip's temperature and the quantised thermal
// sensor the energy managers observe. The paper codes temperature in three
// classes (Low, Medium, High) and lets the GEM "switch on a supplementary
// fan" when resources run out; we model the die as a first-order RC thermal
// network whose resistance to ambient drops when the fan runs, and a sensor
// with hysteresis so the class signal does not chatter at a threshold.
package thermal

import (
	"fmt"
	"math"

	"godpm/internal/sim"
)

// Class is the quantised temperature level.
type Class int

// Temperature classes.
const (
	LowTemp Class = iota
	MediumTemp
	HighTemp
	NumClasses = int(HighTemp) + 1
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case LowTemp:
		return "Low"
	case MediumTemp:
		return "Medium"
	case HighTemp:
		return "High"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass converts a name back to a Class.
func ParseClass(name string) (Class, error) {
	for c := Class(0); int(c) < NumClasses; c++ {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("thermal: unknown class %q", name)
}

// Params describes the RC thermal network and the sensor.
type Params struct {
	AmbientC float64 // ambient temperature, °C
	RthKperW float64 // junction-to-ambient thermal resistance, K/W
	CthJperK float64 // thermal capacitance, J/K
	// FanFactor multiplies Rth while the fan runs (0 < FanFactor < 1).
	FanFactor float64
	// MediumAboveC / HighAboveC are the rising class thresholds in °C.
	MediumAboveC float64
	HighAboveC   float64
	// HysteresisC is subtracted from a threshold when falling back.
	HysteresisC float64
}

// DefaultParams returns the characterisation used in the experiments: a die
// that settles ≈0.65 W of sustained load around 61 °C over a 45 °C ambient
// (comfortably "Low"), crosses into "Medium" under the hottest
// single-IP instruction mixes, and reaches "High" only under multi-IP
// load or an externally heated start. The time constant of a few
// milliseconds lets the temperature track the workload at the simulated
// time scales.
func DefaultParams() Params {
	return Params{
		AmbientC:     45,
		RthKperW:     25,
		CthJperK:     1e-4, // tau = Rth·Cth = 2.5 ms
		FanFactor:    0.4,
		MediumAboveC: 68,
		HighAboveC:   80,
		HysteresisC:  2,
	}
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	if p.RthKperW <= 0 || p.CthJperK <= 0 {
		return fmt.Errorf("thermal: non-positive Rth or Cth")
	}
	if p.FanFactor <= 0 || p.FanFactor >= 1 {
		return fmt.Errorf("thermal: FanFactor %v outside (0,1)", p.FanFactor)
	}
	if p.MediumAboveC <= p.AmbientC || p.HighAboveC <= p.MediumAboveC {
		return fmt.Errorf("thermal: thresholds must satisfy ambient < medium < high")
	}
	if p.HysteresisC < 0 || p.HysteresisC >= p.HighAboveC-p.MediumAboveC {
		return fmt.Errorf("thermal: hysteresis %v out of range", p.HysteresisC)
	}
	return nil
}

// Node is the simulation component: die temperature plus the quantised
// sensor class exposed as a signal.
type Node struct {
	p     Params
	th    SensorThresholds
	tempC float64
	fanOn bool
	class *sim.Signal[Class]

	// Per-fan-state integration constants, precomputed so the accountant's
	// per-sample Step costs no divisions for them. The values are the
	// exact same expressions Step historically evaluated per call, so
	// results are bit-identical.
	tau, tauFan         float64 // Rth·Cth and Rth·FanFactor·Cth
	maxStep, maxStepFan float64 // tau/10 Euler stability bounds
}

// NewNode creates a thermal node at the given initial temperature.
func NewNode(k *sim.Kernel, name string, p Params, initialC float64) *Node {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	th := SensorThresholds{MediumAboveC: p.MediumAboveC, HighAboveC: p.HighAboveC, HysteresisC: p.HysteresisC}
	n := &Node{p: p, th: th, tempC: initialC}
	n.tau = p.RthKperW * p.CthJperK
	n.tauFan = p.RthKperW * p.FanFactor * p.CthJperK
	n.maxStep = n.tau / 10
	n.maxStepFan = n.tauFan / 10
	n.class = sim.NewSignal(k, name+".class", th.classify(initialC, LowTemp))
	return n
}

// integrate runs the explicit-Euler sub-stepped solution of
// dT/dt = P/Cth − (T − Tamb)/tau from `from` over dt and returns the end
// temperature. Shared by Step and PeekStepTempC so the mutating and
// non-mutating paths cannot drift apart.
func (n *Node) integrate(from, power float64, dt sim.Time) float64 {
	if power < 0 {
		power = 0
	}
	tau, maxStep := n.tau, n.maxStep
	if n.fanOn {
		tau, maxStep = n.tauFan, n.maxStepFan
	}
	remaining := dt.Seconds()
	t := from
	for remaining > 1e-15 {
		h := remaining
		if h > maxStep {
			h = maxStep
		}
		dT := (power/n.p.CthJperK - (t-n.p.AmbientC)/tau) * h
		t += dT
		remaining -= h
	}
	return t
}

// Step integrates dT/dt = P/Cth − (T − Tamb)/(Rth·Cth) over dt with the
// given dissipated power, then refreshes the sensor class.
func (n *Node) Step(power float64, dt sim.Time) {
	n.tempC = n.integrate(n.tempC, power, dt)
	n.class.Write(n.th.classify(n.tempC, n.class.Read()))
}

// PeekStepTempC returns the temperature Step(power, dt) would reach,
// without mutating the node or its sensor signal — the identical
// sub-stepped arithmetic on a local copy. Run snapshots close the final
// partial interval through it.
func (n *Node) PeekStepTempC(power float64, dt sim.Time) float64 {
	return n.integrate(n.tempC, power, dt)
}

// TempC returns the current die temperature.
func (n *Node) TempC() float64 { return n.tempC }

// Class returns the current sensor class.
func (n *Node) Class() Class { return n.class.Read() }

// ClassSignal exposes the sensor class for sensitivity and tracing.
func (n *Node) ClassSignal() *sim.Signal[Class] { return n.class }

// SetFan switches the supplementary fan (GEM control).
func (n *Node) SetFan(on bool) { n.fanOn = on }

// FanOn reports the fan state.
func (n *Node) FanOn() bool { return n.fanOn }

// Params returns the node's characterisation.
func (n *Node) Params() Params { return n.p }

// SteadyStateC returns the temperature the node would settle at under a
// constant power draw (with the current fan setting) — used by the LEM to
// predict the temperature at the end of a task.
func (n *Node) SteadyStateC(power float64) float64 {
	rth := n.p.RthKperW
	if n.fanOn {
		rth *= n.p.FanFactor
	}
	return n.p.AmbientC + power*rth
}

// PredictClass estimates the sensor class after running at `power` for dt,
// without mutating the node — the LEM's end-of-task temperature estimate.
// It uses the exact exponential solution of the RC ODE.
func (n *Node) PredictClass(power float64, dt sim.Time) Class {
	rth := n.p.RthKperW
	if n.fanOn {
		rth *= n.p.FanFactor
	}
	tau := rth * n.p.CthJperK
	tInf := n.p.AmbientC + power*rth
	x := dt.Seconds() / tau
	t := tInf + (n.tempC-tInf)*math.Exp(-x)
	return n.th.classify(t, n.class.Read())
}
