package thermal

import (
	"fmt"
	"math"

	"godpm/internal/sim"
)

// NetworkParams describes a star-shaped compact thermal model: one die
// node per IP block, each coupled through its own resistance to a shared
// heat spreader, which couples to ambient (the fan reduces the
// spreader-to-ambient resistance). This is the natural extension of the
// paper's single sensor once per-IP temperatures matter — neighbouring
// blocks heat each other through the spreader.
type NetworkParams struct {
	AmbientC float64
	// NodeRthKperW / NodeCthJperK characterise each die node's coupling
	// to the spreader.
	NodeRthKperW float64
	NodeCthJperK float64
	// SpreaderRthKperW / SpreaderCthJperK characterise the spreader's
	// coupling to ambient.
	SpreaderRthKperW float64
	SpreaderCthJperK float64
	// FanFactor multiplies the spreader-to-ambient resistance while the
	// fan runs (0 < FanFactor < 1).
	FanFactor float64
}

// DefaultNetworkParams matches DefaultParams in aggregate: with all nodes
// equally loaded the total junction-to-ambient resistance is comparable to
// the single-node model's 25 K/W.
func DefaultNetworkParams() NetworkParams {
	return NetworkParams{
		AmbientC:         45,
		NodeRthKperW:     15,
		NodeCthJperK:     2.5e-5,
		SpreaderRthKperW: 10,
		SpreaderCthJperK: 4e-4,
		FanFactor:        0.4,
	}
}

// Validate checks the parameters.
func (p NetworkParams) Validate() error {
	if p.NodeRthKperW <= 0 || p.NodeCthJperK <= 0 ||
		p.SpreaderRthKperW <= 0 || p.SpreaderCthJperK <= 0 {
		return fmt.Errorf("thermal: network resistances and capacitances must be positive")
	}
	if p.FanFactor <= 0 || p.FanFactor >= 1 {
		return fmt.Errorf("thermal: FanFactor %v outside (0,1)", p.FanFactor)
	}
	return nil
}

// Network is the multi-node thermal component.
type Network struct {
	p        NetworkParams
	names    []string
	nodes    []float64
	spreader float64
	fanOn    bool
	hottest  *sim.Signal[float64]

	// onStep, when set (AttachSensors), refreshes the quantising sensors
	// after every integration step.
	onStep func()
}

// NewNetwork creates a network with one node per name, all starting at
// initialC (as is the spreader).
func NewNetwork(k *sim.Kernel, name string, p NetworkParams, names []string, initialC float64) *Network {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if len(names) == 0 {
		panic("thermal: network needs at least one node")
	}
	n := &Network{
		p:        p,
		names:    append([]string(nil), names...),
		nodes:    make([]float64, len(names)),
		spreader: initialC,
		hottest:  sim.NewSignal(k, name+".hottest", initialC),
	}
	for i := range n.nodes {
		n.nodes[i] = initialC
	}
	return n
}

// integrate runs the sub-stepped Euler solution over dt, mutating the
// given node/spreader state in place. Step passes the live state;
// PeekStepHottest passes copies — sharing the core keeps the two paths
// bit-identical.
func (n *Network) integrate(nodes []float64, spreader *float64, powers []float64, dt sim.Time) {
	rsa := n.p.SpreaderRthKperW
	if n.fanOn {
		rsa *= n.p.FanFactor
	}
	// Sub-step at a tenth of the fastest time constant for stability.
	tauNode := n.p.NodeRthKperW * n.p.NodeCthJperK
	tauSpreader := rsa * n.p.SpreaderCthJperK
	maxStep := math.Min(tauNode, tauSpreader) / 10
	remaining := dt.Seconds()
	for remaining > 1e-15 {
		h := remaining
		if h > maxStep {
			h = maxStep
		}
		var intoSpreader float64
		for i := range nodes {
			p := powers[i]
			if p < 0 {
				p = 0
			}
			flow := (nodes[i] - *spreader) / n.p.NodeRthKperW
			nodes[i] += (p - flow) / n.p.NodeCthJperK * h
			intoSpreader += flow
		}
		out := (*spreader - n.p.AmbientC) / rsa
		*spreader += (intoSpreader - out) / n.p.SpreaderCthJperK * h
		remaining -= h
	}
}

// Step integrates the network for dt with the given per-node powers (one
// entry per node, watts).
func (n *Network) Step(powers []float64, dt sim.Time) {
	if len(powers) != len(n.nodes) {
		panic(fmt.Sprintf("thermal: Step with %d powers for %d nodes", len(powers), len(n.nodes)))
	}
	n.integrate(n.nodes, &n.spreader, powers, dt)
	_, hot := n.Hottest()
	n.hottest.Write(hot)
	if n.onStep != nil {
		n.onStep()
	}
}

// PeekStepHottest returns the hottest node temperature Step(powers, dt)
// would reach, without mutating the network, its sensors or signals: the
// identical sub-stepped arithmetic on copies. Run snapshots close the
// final partial interval through it. It allocates (one copy of the node
// state) and so belongs on snapshot paths, not the per-tick one.
func (n *Network) PeekStepHottest(powers []float64, dt sim.Time) float64 {
	if len(powers) != len(n.nodes) {
		panic(fmt.Sprintf("thermal: PeekStepHottest with %d powers for %d nodes", len(powers), len(n.nodes)))
	}
	nodes := append([]float64(nil), n.nodes...)
	spreader := n.spreader
	n.integrate(nodes, &spreader, powers, dt)
	hot := nodes[0]
	for _, t := range nodes {
		if t > hot {
			hot = t
		}
	}
	return hot
}

// NodeTempC returns a node's temperature by index.
func (n *Network) NodeTempC(i int) float64 { return n.nodes[i] }

// NodeTempByName returns a node's temperature by name.
func (n *Network) NodeTempByName(name string) (float64, bool) {
	for i, nm := range n.names {
		if nm == name {
			return n.nodes[i], true
		}
	}
	return 0, false
}

// SpreaderTempC returns the spreader temperature.
func (n *Network) SpreaderTempC() float64 { return n.spreader }

// Hottest returns the hottest node's index and temperature.
func (n *Network) Hottest() (int, float64) {
	idx, hot := 0, n.nodes[0]
	for i, t := range n.nodes {
		if t > hot {
			idx, hot = i, t
		}
	}
	return idx, hot
}

// HottestSignal carries the hottest node temperature (updated each Step);
// quantise it with a Node-style sensor or trace it directly.
func (n *Network) HottestSignal() *sim.Signal[float64] { return n.hottest }

// SetFan switches the spreader fan.
func (n *Network) SetFan(on bool) { n.fanOn = on }

// FanOn reports the fan state.
func (n *Network) FanOn() bool { return n.fanOn }

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// SteadyStateC returns the steady-state temperature of node i under the
// given constant per-node powers (with the current fan setting):
// Ts = Tamb + Rsa·ΣP, Ti = Ts + Ri·Pi.
func (n *Network) SteadyStateC(i int, powers []float64) float64 {
	if len(powers) != len(n.nodes) {
		panic("thermal: SteadyStateC power count mismatch")
	}
	rsa := n.p.SpreaderRthKperW
	if n.fanOn {
		rsa *= n.p.FanFactor
	}
	var total float64
	for _, p := range powers {
		if p > 0 {
			total += p
		}
	}
	pi := powers[i]
	if pi < 0 {
		pi = 0
	}
	return n.p.AmbientC + rsa*total + n.p.NodeRthKperW*pi
}
