package thermal

import (
	"fmt"
	"math"

	"godpm/internal/sim"
)

// Source is what the energy managers observe: a quantised temperature
// class, its change signal, and an end-of-task prediction. The single-die
// Node implements it directly; NetworkSensor adapts one node of a thermal
// Network.
type Source interface {
	// Class returns the current sensor class.
	Class() Class
	// ClassSignal exposes the class for sensitivity and tracing.
	ClassSignal() *sim.Signal[Class]
	// PredictClass estimates the class after running at power for dt,
	// without mutating the model.
	PredictClass(power float64, dt sim.Time) Class
	// TempC returns the current temperature.
	TempC() float64
}

// FanSource is a Source with a controllable fan (what the GEM needs).
type FanSource interface {
	Source
	SetFan(on bool)
	FanOn() bool
}

// Compile-time checks.
var (
	_ FanSource = (*Node)(nil)
	_ Source    = (*NetworkSensor)(nil)
	_ FanSource = (*NetworkHottest)(nil)
)

// SensorThresholds quantise a temperature for the network sensors, reusing
// the Node parameterisation's threshold fields.
type SensorThresholds struct {
	MediumAboveC float64
	HighAboveC   float64
	HysteresisC  float64
}

// DefaultSensorThresholds matches DefaultParams.
func DefaultSensorThresholds() SensorThresholds {
	p := DefaultParams()
	return SensorThresholds{MediumAboveC: p.MediumAboveC, HighAboveC: p.HighAboveC, HysteresisC: p.HysteresisC}
}

// classify applies thresholds with hysteresis relative to the current
// class (shared by all sensors).
func (th SensorThresholds) classify(t float64, cur Class) Class {
	med, high := th.MediumAboveC, th.HighAboveC
	switch cur {
	case HighTemp:
		if t >= high-th.HysteresisC {
			return HighTemp
		}
		if t >= med {
			return MediumTemp
		}
		return LowTemp
	case MediumTemp:
		if t >= high {
			return HighTemp
		}
		if t >= med-th.HysteresisC {
			return MediumTemp
		}
		return LowTemp
	default:
		if t >= high {
			return HighTemp
		}
		if t >= med {
			return MediumTemp
		}
		return LowTemp
	}
}

// NetworkSensor is the per-IP view of one node of a thermal Network.
type NetworkSensor struct {
	net   *Network
	index int
	th    SensorThresholds
	class *sim.Signal[Class]
}

// NewNetworkSensor attaches a quantising sensor to node `index` of net.
// refresh() must be called after each network Step (the Network does this
// for sensors created via AttachSensors).
func NewNetworkSensor(k *sim.Kernel, name string, net *Network, index int, th SensorThresholds) *NetworkSensor {
	if index < 0 || index >= net.NumNodes() {
		panic(fmt.Sprintf("thermal: sensor index %d out of range", index))
	}
	s := &NetworkSensor{net: net, index: index, th: th}
	s.class = sim.NewSignal(k, name+".class", th.classify(net.NodeTempC(index), LowTemp))
	return s
}

// refresh reclassifies after a network step.
func (s *NetworkSensor) refresh() {
	s.class.Write(s.th.classify(s.net.NodeTempC(s.index), s.class.Read()))
}

// Class implements Source.
func (s *NetworkSensor) Class() Class { return s.class.Read() }

// ClassSignal implements Source.
func (s *NetworkSensor) ClassSignal() *sim.Signal[Class] { return s.class }

// TempC implements Source.
func (s *NetworkSensor) TempC() float64 { return s.net.NodeTempC(s.index) }

// PredictClass implements Source. The prediction treats the spreader
// temperature as frozen over the horizon — a first-order local view: the
// node relaxes towards spreader + Rnode·P with time constant Rnode·Cnode.
func (s *NetworkSensor) PredictClass(power float64, dt sim.Time) Class {
	if power < 0 {
		power = 0
	}
	p := s.net.p
	tau := p.NodeRthKperW * p.NodeCthJperK
	tInf := s.net.SpreaderTempC() + p.NodeRthKperW*power
	x := dt.Seconds() / tau
	t := tInf + (s.TempC()-tInf)*expNeg(x)
	return s.th.classify(t, s.class.Read())
}

// NetworkHottest is the SoC-level view a GEM observes when per-IP sensors
// are in use: the class of the hottest node, with fan control forwarded to
// the network.
type NetworkHottest struct {
	net     *Network
	sensors []*NetworkSensor
	th      SensorThresholds
	class   *sim.Signal[Class]
}

// AttachSensors builds one sensor per network node plus the hottest-node
// aggregate, and hooks them so every Network.Step refreshes all classes.
func AttachSensors(k *sim.Kernel, name string, net *Network, th SensorThresholds) (*NetworkHottest, []*NetworkSensor) {
	sensors := make([]*NetworkSensor, net.NumNodes())
	for i := range sensors {
		sensors[i] = NewNetworkSensor(k, fmt.Sprintf("%s.node%d", name, i), net, i, th)
	}
	_, hot := net.Hottest()
	h := &NetworkHottest{
		net: net, sensors: sensors, th: th,
		class: sim.NewSignal(k, name+".hottest_class", th.classify(hot, LowTemp)),
	}
	net.onStep = func() {
		for _, s := range sensors {
			s.refresh()
		}
		_, hotNow := net.Hottest()
		h.class.Write(h.th.classify(hotNow, h.class.Read()))
	}
	return h, sensors
}

// Class implements Source.
func (h *NetworkHottest) Class() Class { return h.class.Read() }

// ClassSignal implements Source.
func (h *NetworkHottest) ClassSignal() *sim.Signal[Class] { return h.class }

// TempC implements Source (the hottest node's temperature).
func (h *NetworkHottest) TempC() float64 {
	_, hot := h.net.Hottest()
	return hot
}

// PredictClass implements Source: the aggregate prediction applies the
// power to the currently hottest node's sensor.
func (h *NetworkHottest) PredictClass(power float64, dt sim.Time) Class {
	idx, _ := h.net.Hottest()
	return h.sensors[idx].PredictClass(power, dt)
}

// SetFan implements FanSource.
func (h *NetworkHottest) SetFan(on bool) { h.net.SetFan(on) }

// FanOn implements FanSource.
func (h *NetworkHottest) FanOn() bool { return h.net.FanOn() }

// expNeg is a clamped e^(-x) for x >= 0.
func expNeg(x float64) float64 {
	if x > 700 {
		return 0
	}
	return math.Exp(-x)
}
