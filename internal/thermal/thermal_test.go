package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"godpm/internal/sim"
)

func TestClassStringsAndParse(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("round trip failed for %v", c)
		}
	}
	if _, err := ParseClass("Scorching"); err == nil {
		t.Error("bogus class parsed")
	}
}

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mut := []func(*Params){
		func(p *Params) { p.RthKperW = 0 },
		func(p *Params) { p.CthJperK = -1 },
		func(p *Params) { p.FanFactor = 1.0 },
		func(p *Params) { p.MediumAboveC = p.AmbientC },
		func(p *Params) { p.HighAboveC = p.MediumAboveC },
		func(p *Params) { p.HysteresisC = 100 },
	}
	for i, m := range mut {
		p := DefaultParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestHeatingTowardsSteadyState(t *testing.T) {
	k := sim.NewKernel()
	n := NewNode(k, "die", DefaultParams(), 45)
	want := n.SteadyStateC(0.648) // ≈ 45 + 0.648·50 = 77.4
	for i := 0; i < 100; i++ {
		n.Step(0.648, sim.Ms) // 100 ms >> tau of 5 ms
	}
	if math.Abs(n.TempC()-want) > 0.5 {
		t.Fatalf("TempC = %v, want ≈%v", n.TempC(), want)
	}
}

func TestCoolingTowardsAmbient(t *testing.T) {
	k := sim.NewKernel()
	n := NewNode(k, "die", DefaultParams(), 90)
	for i := 0; i < 100; i++ {
		n.Step(0, sim.Ms)
	}
	if math.Abs(n.TempC()-45) > 0.5 {
		t.Fatalf("TempC = %v, want ambient 45", n.TempC())
	}
}

func TestFanLowersSteadyState(t *testing.T) {
	k := sim.NewKernel()
	n := NewNode(k, "die", DefaultParams(), 45)
	noFan := n.SteadyStateC(1.0)
	n.SetFan(true)
	withFan := n.SteadyStateC(1.0)
	if withFan >= noFan {
		t.Fatalf("fan did not lower steady state: %v vs %v", withFan, noFan)
	}
	if !n.FanOn() {
		t.Fatal("FanOn not reported")
	}
}

func TestFanSpeedsCooling(t *testing.T) {
	k := sim.NewKernel()
	a := NewNode(k, "a", DefaultParams(), 90)
	b := NewNode(k, "b", DefaultParams(), 90)
	b.SetFan(true)
	for i := 0; i < 3; i++ {
		a.Step(0, sim.Ms)
		b.Step(0, sim.Ms)
	}
	if b.TempC() >= a.TempC() {
		t.Fatalf("fan-cooled node %v not cooler than %v", b.TempC(), a.TempC())
	}
}

func TestSensorClasses(t *testing.T) {
	k := sim.NewKernel()
	cases := []struct {
		temp float64
		want Class
	}{
		{45, LowTemp}, {67.9, LowTemp}, {68, MediumTemp},
		{79.9, MediumTemp}, {80, HighTemp}, {120, HighTemp},
	}
	for _, c := range cases {
		n := NewNode(k, "die", DefaultParams(), c.temp)
		if got := n.Class(); got != c.want {
			t.Errorf("class at %v°C = %v, want %v", c.temp, got, c.want)
		}
	}
}

// settle applies pending signal updates (Step called outside a process
// schedules the class write; the kernel must run to apply it).
func settle(t *testing.T, k *sim.Kernel) {
	t.Helper()
	if err := k.Run(k.Now() + 1); err != nil {
		t.Fatal(err)
	}
}

func TestSensorHysteresis(t *testing.T) {
	k := sim.NewKernel()
	n := NewNode(k, "die", DefaultParams(), 85) // High
	if n.Class() != HighTemp {
		t.Fatal("setup: want HighTemp")
	}
	// Cool to just below the High threshold but within hysteresis: stays High.
	n.tempC = 79
	n.Step(0, sim.Time(1)) // negligible dt, just to reclassify
	settle(t, k)
	if n.Class() != HighTemp {
		t.Fatalf("class at 79°C falling = %v, want HighTemp (hysteresis)", n.Class())
	}
	// Below threshold minus hysteresis: drops to Medium.
	n.tempC = 77
	n.Step(0, sim.Time(1))
	settle(t, k)
	if n.Class() != MediumTemp {
		t.Fatalf("class at 77°C falling = %v, want MediumTemp", n.Class())
	}
	// Rising again needs to reach the full threshold.
	n.tempC = 79
	n.Step(0, sim.Time(1))
	settle(t, k)
	if n.Class() != MediumTemp {
		t.Fatalf("class at 79°C rising = %v, want MediumTemp", n.Class())
	}
}

func TestClassSignalFiresOnChange(t *testing.T) {
	k := sim.NewKernel()
	n := NewNode(k, "die", DefaultParams(), 45)
	var classes []Class
	n.ClassSignal().OnChange(func(_ sim.Time, c Class) { classes = append(classes, c) })
	e := k.NewEvent("tick")
	i := 0
	k.Method("heat", func() {
		n.Step(2.0, sim.Ms) // strong heating
		i++
		if i < 20 {
			e.Notify(sim.Ms)
		}
	}).Sensitive(e)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(classes) < 2 {
		t.Fatalf("classes observed %v, want Low→Medium→High ramp", classes)
	}
	if classes[len(classes)-1] != HighTemp {
		t.Fatalf("final class %v, want HighTemp", classes[len(classes)-1])
	}
}

func TestPredictClassMatchesStepping(t *testing.T) {
	k := sim.NewKernel()
	n := NewNode(k, "die", DefaultParams(), 50)
	predicted := n.PredictClass(1.5, 20*sim.Ms)
	// Actually run it.
	m := NewNode(k, "die2", DefaultParams(), 50)
	for i := 0; i < 20; i++ {
		m.Step(1.5, sim.Ms)
	}
	settle(t, k)
	if got := m.Class(); got != predicted {
		t.Fatalf("predicted %v, stepping gave %v (T=%v)", predicted, got, m.TempC())
	}
	// Prediction must not mutate.
	if n.TempC() != 50 {
		t.Fatalf("prediction mutated temperature to %v", n.TempC())
	}
}

func TestNegativePowerIgnored(t *testing.T) {
	k := sim.NewKernel()
	n := NewNode(k, "die", DefaultParams(), 45)
	n.Step(-10, sim.Ms)
	if n.TempC() < 44.9 {
		t.Fatalf("negative power cooled below ambient: %v", n.TempC())
	}
}

// Property: temperature never overshoots the band spanned by the initial
// temperature and the steady state, for any power level.
func TestTemperatureBoundedProperty(t *testing.T) {
	f := func(p uint8, t0 uint8) bool {
		k := sim.NewKernel()
		power := float64(p) / 100 // 0..2.55 W
		start := 45 + float64(t0%60)
		n := NewNode(k, "die", DefaultParams(), start)
		ss := n.SteadyStateC(power)
		lo, hi := math.Min(start, ss)-1e-6, math.Max(start, ss)+1e-6
		for i := 0; i < 50; i++ {
			n.Step(power, sim.Ms)
			if n.TempC() < lo || n.TempC() > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
