package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"godpm/internal/sim"
)

// advance moves kernel time without other side effects.
func advance(t *testing.T, k *sim.Kernel, by sim.Time) {
	t.Helper()
	e := k.NewEvent("adv")
	e.Notify(by)
	if err := k.Run(k.Now() + by); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyMeterPiecewise(t *testing.T) {
	k := sim.NewKernel()
	m := NewEnergyMeter(k, "total")
	m.SetPower(2.0)
	advance(t, k, 3*sim.Sec) // 6 J
	m.SetPower(0.5)
	advance(t, k, 4*sim.Sec) // 2 J
	m.SetPower(0)
	advance(t, k, 10*sim.Sec) // 0 J
	if got := m.EnergyJ(); math.Abs(got-8.0) > 1e-9 {
		t.Fatalf("EnergyJ = %v, want 8", got)
	}
}

func TestEnergyMeterAddPowerAndEnergy(t *testing.T) {
	k := sim.NewKernel()
	m := NewEnergyMeter(k, "m")
	m.AddPower(1.0)
	m.AddPower(0.5)
	if m.Power() != 1.5 {
		t.Fatalf("Power = %v", m.Power())
	}
	advance(t, k, 2*sim.Sec) // 3 J
	m.AddPower(-1.5)
	m.AddEnergy(0.25)
	if got := m.EnergyJ(); math.Abs(got-3.25) > 1e-9 {
		t.Fatalf("EnergyJ = %v, want 3.25", got)
	}
}

func TestEnergyMeterIdempotentRead(t *testing.T) {
	k := sim.NewKernel()
	m := NewEnergyMeter(k, "m")
	m.SetPower(1)
	advance(t, k, sim.Sec)
	a := m.EnergyJ()
	b := m.EnergyJ()
	if a != b {
		t.Fatalf("consecutive reads differ: %v vs %v", a, b)
	}
}

func TestSeriesTimeWeightedMean(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(2*sim.Sec, 20)          // 10 holds for 2 s
	s.Add(3*sim.Sec, 0)           // 20 holds for 1 s
	m := s.MeanUntil(4 * sim.Sec) // 0 holds for 1 s
	want := (10*2 + 20*1 + 0*1) / 4.0
	if math.Abs(m-want) > 1e-9 {
		t.Fatalf("MeanUntil = %v, want %v", m, want)
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Min() != 0 || s.Last() != 0 {
		t.Fatal("empty series stats should be 0")
	}
	s.Add(0, 5)
	s.Add(sim.Sec, -2)
	s.Add(2*sim.Sec, 7)
	if s.Max() != 7 || s.Min() != -2 || s.Last() != 7 || s.Len() != 3 {
		t.Fatalf("Max=%v Min=%v Last=%v Len=%d", s.Max(), s.Min(), s.Last(), s.Len())
	}
}

func TestSeriesRejectsTimeTravel(t *testing.T) {
	var s Series
	s.Add(sim.Sec, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Add(0, 2)
}

func TestSeriesSingleSample(t *testing.T) {
	var s Series
	s.Add(5*sim.Sec, 42)
	if got := s.MeanUntil(5 * sim.Sec); got != 42 {
		t.Fatalf("MeanUntil with zero span = %v, want the value itself", got)
	}
	if got := s.MeanUntil(10 * sim.Sec); math.Abs(got-42) > 1e-9 {
		t.Fatalf("MeanUntil = %v, want 42", got)
	}
}

func TestDelayOverhead(t *testing.T) {
	var base, dpm Ledger
	// Task 1: base 10ms, dpm 40ms → +300%. Task 2: base 10ms, dpm 10ms → 0%.
	base.Add(TaskRecord{IP: "ip0", TaskID: 1, Request: 0, Done: 10 * sim.Ms})
	base.Add(TaskRecord{IP: "ip0", TaskID: 2, Request: 0, Done: 10 * sim.Ms})
	dpm.Add(TaskRecord{IP: "ip0", TaskID: 1, Request: 0, Done: 40 * sim.Ms})
	dpm.Add(TaskRecord{IP: "ip0", TaskID: 2, Request: 0, Done: 10 * sim.Ms})
	got, err := DelayOverheadPct(&base, &dpm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-150) > 1e-9 {
		t.Fatalf("DelayOverheadPct = %v, want 150", got)
	}
}

func TestDelayOverheadUnmatchedTasksIgnored(t *testing.T) {
	var base, dpm Ledger
	base.Add(TaskRecord{IP: "ip0", TaskID: 1, Request: 0, Done: 10 * sim.Ms})
	dpm.Add(TaskRecord{IP: "ip0", TaskID: 1, Request: 0, Done: 20 * sim.Ms})
	dpm.Add(TaskRecord{IP: "ip1", TaskID: 9, Request: 0, Done: 99 * sim.Ms}) // no base twin
	got, err := DelayOverheadPct(&base, &dpm)
	if err != nil || math.Abs(got-100) > 1e-9 {
		t.Fatalf("got %v,%v want 100", got, err)
	}
}

func TestDelayOverheadErrors(t *testing.T) {
	var a, b Ledger
	if _, err := DelayOverheadPct(&a, &b); err == nil {
		t.Fatal("empty ledgers accepted")
	}
	a.Add(TaskRecord{IP: "x", TaskID: 1, Request: 5 * sim.Ms, Done: 5 * sim.Ms})
	b.Add(TaskRecord{IP: "x", TaskID: 1, Request: 0, Done: sim.Ms})
	if _, err := DelayOverheadPct(&a, &b); err == nil {
		t.Fatal("zero baseline service accepted")
	}
}

func TestEnergySaving(t *testing.T) {
	got, err := EnergySavingPct(10, 4.5)
	if err != nil || math.Abs(got-55) > 1e-9 {
		t.Fatalf("EnergySavingPct = %v,%v want 55", got, err)
	}
	if _, err := EnergySavingPct(0, 1); err == nil {
		t.Fatal("zero baseline accepted")
	}
	// Negative saving (DPM worse) is legal and reported as such.
	got, _ = EnergySavingPct(10, 12)
	if got >= 0 {
		t.Fatalf("worse DPM should yield negative saving, got %v", got)
	}
}

func TestTempReduction(t *testing.T) {
	// base 80 °C, dpm 60 °C → (80−60)/80 = 25 % on the absolute scale.
	got, err := TempReductionPct(80, 60, 45)
	if err != nil || math.Abs(got-25) > 1e-9 {
		t.Fatalf("TempReductionPct = %v,%v want 25", got, err)
	}
	if _, err := TempReductionPct(45, 50, 45); err == nil {
		t.Fatal("baseline at ambient accepted")
	}
	// A hotter DPM run yields a negative reduction, reported as such.
	got, _ = TempReductionPct(60, 72, 45)
	if got >= 0 {
		t.Fatalf("hotter DPM should yield negative reduction, got %v", got)
	}
}

func TestTaskRecordService(t *testing.T) {
	r := TaskRecord{Request: 2 * sim.Ms, Start: 3 * sim.Ms, Done: 7 * sim.Ms}
	if r.Service() != 5*sim.Ms {
		t.Fatalf("Service = %v, want 5ms", r.Service())
	}
}

// Property: meter energy equals the hand-computed sum for random power
// schedules.
func TestEnergyMeterProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		if len(steps) == 0 || len(steps) > 40 {
			return true
		}
		k := sim.NewKernel()
		m := NewEnergyMeter(k, "m")
		var want float64
		for _, s := range steps {
			p := float64(s%50) / 10
			d := sim.Time(s%7+1) * sim.Ms
			m.SetPower(p)
			e := k.NewEvent("a")
			e.Notify(d)
			if err := k.Run(k.Now() + d); err != nil {
				return false
			}
			want += p * d.Seconds()
		}
		return math.Abs(m.EnergyJ()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// ---- TimeWeighted (streaming accumulator) ----

// TestTimeWeightedMatchesSeries feeds identical random samples to the
// streaming accumulator and the retained Series and requires bit-identical
// statistics: the accountant rewrite in internal/soc leans on this
// equivalence to keep simulation results byte-stable.
func TestTimeWeightedMatchesSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var s Series
		var w TimeWeighted
		now := sim.Time(0)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			v := rng.Float64()*100 - 20
			s.Add(now, v)
			w.Add(now, v)
			now += sim.Time(rng.Intn(3)) * sim.Us // sometimes zero: repeated instants
		}
		end := now + sim.Time(rng.Intn(5))*sim.Us
		if got, want := w.MeanUntil(end), s.MeanUntil(end); got != want {
			t.Fatalf("trial %d: streaming mean %v != series mean %v", trial, got, want)
		}
		if got, want := w.Max(), s.Max(); got != want {
			t.Fatalf("trial %d: streaming max %v != series max %v", trial, got, want)
		}
		if got, want := w.Min(), s.Min(); got != want {
			t.Fatalf("trial %d: streaming min %v != series min %v", trial, got, want)
		}
		if got, want := w.Last(), s.Last(); got != want {
			t.Fatalf("trial %d: streaming last %v != series last %v", trial, got, want)
		}
		if w.Len() != s.Len() {
			t.Fatalf("trial %d: streaming len %d != series len %d", trial, w.Len(), s.Len())
		}
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.MeanUntil(sim.Sec) != 0 || w.Max() != 0 || w.Min() != 0 || w.Last() != 0 || w.Len() != 0 {
		t.Errorf("empty accumulator must report zeros, got mean=%v max=%v min=%v last=%v len=%d",
			w.MeanUntil(sim.Sec), w.Max(), w.Min(), w.Last(), w.Len())
	}
}

func TestTimeWeightedSingleInstant(t *testing.T) {
	var w TimeWeighted
	w.Add(sim.Us, 3)
	w.Add(sim.Us, 9) // same instant: first value defines the zero-span mean
	if got := w.MeanUntil(sim.Us); got != 3 {
		t.Errorf("zero-span mean = %v, want first value 3", got)
	}
	if got := w.MeanUntil(2 * sim.Us); got != 9 {
		t.Errorf("extended mean = %v, want last value 9", got)
	}
}

func TestTimeWeightedNonDecreasing(t *testing.T) {
	var w TimeWeighted
	w.Add(sim.Ms, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on decreasing time")
		}
	}()
	w.Add(sim.Us, 2)
}
