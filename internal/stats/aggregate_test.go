package stats

import (
	"math"
	"strings"
	"testing"

	"godpm/internal/sim"
)

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{3}); s.N != 1 || s.Mean != 3 || s.StdDev != 0 || s.CI95 != 0 {
		t.Fatalf("singleton summary = %+v", s)
	}
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample stddev sqrt(32/7).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	wantSD := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, wantSD)
	}
	// df=7 → t=2.365.
	wantCI := 2.365 * wantSD / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("ci95 = %v, want %v", s.CI95, wantCI)
	}
	// Above 30 observations the normal quantile applies.
	big := make([]float64, 40)
	for i := range big {
		big[i] = float64(i % 2)
	}
	bs := Summarize(big)
	if want := 1.96 * bs.StdDev / math.Sqrt(40); math.Abs(bs.CI95-want) > 1e-12 {
		t.Errorf("large-n ci95 = %v, want %v", bs.CI95, want)
	}
}

func TestSummaryString(t *testing.T) {
	if got := Summarize(nil).String(); got != "n/a" {
		t.Errorf("empty summary renders %q", got)
	}
	s := Summarize([]float64{1, 2, 3}).String()
	if !strings.Contains(s, "±") || !strings.Contains(s, "n=3") {
		t.Errorf("summary renders %q", s)
	}
}

func TestPairedDelta(t *testing.T) {
	d, err := PairedDelta([]float64{3, 5, 7}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean != 4 || d.N != 3 || d.Min != 2 || d.Max != 6 {
		t.Fatalf("paired delta = %+v", d)
	}
	if _, err := PairedDelta([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PairedDelta(nil, nil); err == nil {
		t.Error("empty pairs accepted")
	}
}

func TestPairedPct(t *testing.T) {
	p, err := PairedPct([]float64{50, 150}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean != 0 || p.Min != -50 || p.Max != 50 {
		t.Fatalf("paired pct = %+v", p)
	}
	if _, err := PairedPct([]float64{1}, []float64{0}); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestMissedDeadlines(t *testing.T) {
	l := &Ledger{}
	l.Add(TaskRecord{IP: "a", TaskID: 0, Request: 0, Done: 5 * sim.Ms})
	l.Add(TaskRecord{IP: "a", TaskID: 1, Request: 0, Done: 20 * sim.Ms})
	l.Add(TaskRecord{IP: "b", TaskID: 0, Request: 10 * sim.Ms, Done: 12 * sim.Ms})
	if got := MissedDeadlines(l, 10*sim.Ms); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := MissedDeadlines(l, sim.Ms); got != 3 {
		t.Errorf("misses = %d, want 3", got)
	}
	if got := MissedDeadlines(l, 0); got != 0 {
		t.Errorf("disabled deadline counted %d misses", got)
	}
	if got := MissedDeadlines(nil, sim.Ms); got != 0 {
		t.Errorf("nil ledger counted %d misses", got)
	}
}
