package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refQuantile is the sorted-slice reference the sketch is bound against:
// the smallest sample whose rank reaches ⌈p·n⌉ — the same rank definition
// HistSnapshot.Quantile uses.
func refQuantile(sorted []int64, p float64) int64 {
	n := len(sorted)
	rank := int64(p * float64(n))
	if float64(rank) < p*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > int64(n) {
		rank = int64(n)
	}
	return sorted[rank-1]
}

// distributions is the adversarial input zoo: each returns one sample.
var distributions = map[string]func(r *rand.Rand) int64{
	"constant":  func(r *rand.Rand) int64 { return 1234 },
	"uniform":   func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
	"small":     func(r *rand.Rand) int64 { return r.Int63n(histSubCount) }, // exact-bucket region
	"two-point": func(r *rand.Rand) int64 { return [2]int64{3, 30_000_000}[r.Intn(2)] },
	"pareto": func(r *rand.Rand) int64 {
		// Heavy tail: x = x_m / U^(1/α), α=1.2 — p99 and max live far
		// from the body, the regime histograms usually butcher.
		return int64(100 * math.Pow(1-r.Float64(), -1/1.2))
	},
	"exponential": func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
	"pow2-edges": func(r *rand.Rand) int64 {
		// Values hugging bucket boundaries: 2^k−1, 2^k, 2^k+1.
		k := uint(5 + r.Intn(40))
		return int64(1)<<k + int64(r.Intn(3)) - 1
	},
	"zero-heavy": func(r *rand.Rand) int64 {
		if r.Intn(4) > 0 {
			return 0
		}
		return r.Int63n(10_000)
	},
}

// TestQuantileRankErrorBound is the sketch's accuracy contract: for every
// distribution and quantile, the sketch answer is ≥ the sorted-slice
// reference and within the documented relative error above it.
func TestQuantileRankErrorBound(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			for trial := 0; trial < 5; trial++ {
				n := 1 + r.Intn(5000)
				var h Histogram
				samples := make([]int64, n)
				for i := range samples {
					samples[i] = gen(r)
					h.Record(samples[i])
				}
				sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
				snap := h.Snapshot()
				if err := snap.Validate(); err != nil {
					t.Fatal(err)
				}
				if snap.Count != int64(n) {
					t.Fatalf("count %d, recorded %d", snap.Count, n)
				}
				if snap.Max != samples[n-1] {
					t.Fatalf("max %d, want exact %d", snap.Max, samples[n-1])
				}
				for _, p := range quantiles {
					got := snap.Quantile(p)
					ref := refQuantile(samples, p)
					if got < ref {
						t.Fatalf("%s n=%d p=%g: sketch %d < reference %d (quantiles must never understate)", name, n, p, got, ref)
					}
					bound := int64(math.Ceil(float64(ref)*(1+HistRelError))) + 1
					// Max clamping can only tighten the answer.
					if m := samples[n-1]; bound > m && got == m {
						continue
					}
					if got > bound {
						t.Fatalf("%s n=%d p=%g: sketch %d > bound %d (reference %d, rel err %g)", name, n, p, got, bound, ref, HistRelError)
					}
				}
			}
		})
	}
}

// TestMergeAssociativeCommutative: merging is exact bucket addition, so
// any grouping and order of replica sketches yields the identical sketch.
func TestMergeAssociativeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	mk := func(gen func(*rand.Rand) int64, n int) HistSnapshot {
		var h Histogram
		for i := 0; i < n; i++ {
			h.Record(gen(r))
		}
		return h.Snapshot()
	}
	a := mk(distributions["pareto"], 700)
	b := mk(distributions["uniform"], 1300)
	c := mk(distributions["two-point"], 50)

	merge := func(x, y HistSnapshot) HistSnapshot {
		t.Helper()
		out, err := x.Merge(y)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	eq := func(x, y HistSnapshot) bool {
		xb, _ := json.Marshal(x)
		yb, _ := json.Marshal(y)
		return string(xb) == string(yb)
	}
	if !eq(merge(a, b), merge(b, a)) {
		t.Fatal("merge is not commutative")
	}
	if !eq(merge(merge(a, b), c), merge(a, merge(b, c))) {
		t.Fatal("merge is not associative")
	}
	// The merged sketch equals the sketch of the pooled samples' counts.
	abc := merge(merge(a, b), c)
	if abc.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d, want %d", abc.Count, a.Count+b.Count+c.Count)
	}
	if abc.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatalf("merged sum %d, want %d", abc.Sum, a.Sum+b.Sum+c.Sum)
	}
	if err := abc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Merging with an empty sketch is the identity.
	if got := merge(a, HistSnapshot{}); !eq(got, a) {
		t.Fatal("merge with empty sketch is not the identity")
	}
}

// TestMergeEqualsPooledRecording: recording a stream into two sketches and
// merging equals recording the whole stream into one — the property that
// makes fleet aggregation honest.
func TestMergeEqualsPooledRecording(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var pooled, left, right Histogram
	for i := 0; i < 4000; i++ {
		v := distributions["exponential"](r)
		pooled.Record(v)
		if i%2 == 0 {
			left.Record(v)
		} else {
			right.Record(v)
		}
	}
	merged, err := left.Snapshot().Merge(right.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := json.Marshal(pooled.Snapshot())
	mb, _ := json.Marshal(merged)
	if string(pb) != string(mb) {
		t.Fatalf("merged halves != pooled recording\npooled: %s\nmerged: %s", pb, mb)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		h.Record(distributions["pareto"](r))
	}
	snap := h.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back HistSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 1} {
		if snap.Quantile(p) != back.Quantile(p) {
			t.Fatalf("p=%g: %d != %d after round trip", p, snap.Quantile(p), back.Quantile(p))
		}
	}
}

func TestValidateRejectsCorruptSnapshots(t *testing.T) {
	bad := []HistSnapshot{
		{Bucket: []int32{1}, N: []int64{1, 2}, Count: 3},        // misaligned
		{Bucket: []int32{5, 5}, N: []int64{1, 1}, Count: 2},     // duplicate bucket
		{Bucket: []int32{9, 2}, N: []int64{1, 1}, Count: 2},     // out of order
		{Bucket: []int32{histBuckets}, N: []int64{1}, Count: 1}, // out of range
		{Bucket: []int32{1}, N: []int64{0}, Count: 0},           // zero count
		{Bucket: []int32{1, 2}, N: []int64{1, 1}, Count: 5},     // header mismatch
		{Bucket: []int32{-1}, N: []int64{1}, Count: 1},          // negative bucket
		{Bucket: []int32{3}, N: []int64{-2}, Count: -2},         // negative n
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: corrupt snapshot validated", i)
		}
		if _, err := (HistSnapshot{}).Merge(s); err == nil {
			t.Errorf("case %d: merge accepted corrupt operand", i)
		}
	}
}

// TestHistogramConcurrentRecord: the sketch's whole point is lock-free hot
// path recording; run under -race and check nothing is lost.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Record(r.Int63n(1_000_000))
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("count %d, want %d", snap.Count, goroutines*per)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordClamping(t *testing.T) {
	var h Histogram
	h.Record(-5)
	h.Record(math.MaxInt64)
	snap := h.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("count %d, want 2", snap.Count)
	}
	if got := snap.Quantile(0); got != 0 {
		t.Fatalf("negative record should clamp to 0, got quantile %d", got)
	}
	if snap.Max != histMaxValue {
		t.Fatalf("overflow record should clamp to %d, got max %d", histMaxValue, snap.Max)
	}
}

func TestLatencySummaryUnits(t *testing.T) {
	var h Histogram
	h.RecordDuration(1500 * time.Microsecond)
	h.RecordDuration(2 * time.Millisecond)
	sum := h.Snapshot().Summary()
	if sum.Count != 2 {
		t.Fatalf("count %d", sum.Count)
	}
	if sum.MaxMs != 2.0 {
		t.Fatalf("max %gms, want 2ms", sum.MaxMs)
	}
	if sum.P50Ms < 1.4 || sum.P50Ms > 1.6 {
		t.Fatalf("p50 %gms, want ≈1.5ms", sum.P50Ms)
	}
	if sum.MeanMs < 1.7 || sum.MeanMs > 1.8 {
		t.Fatalf("mean %gms, want 1.75ms", sum.MeanMs)
	}
}

func TestRateWindow(t *testing.T) {
	w := NewRateWindow(10 * time.Second)
	t0 := time.Unix(1000, 0)
	if got := w.Rate(); got != 0 {
		t.Fatalf("empty rate %g", got)
	}
	w.Observe(t0, 0)
	if got := w.Rate(); got != 0 {
		t.Fatalf("single-sample rate %g", got)
	}
	w.Observe(t0.Add(2*time.Second), 100)
	if got := w.Rate(); got != 50 {
		t.Fatalf("rate %g, want 50/s", got)
	}
	// Old samples age out: after a long quiet gap the rate reflects the
	// retained span only.
	w.Observe(t0.Add(20*time.Second), 100)
	w.Observe(t0.Add(21*time.Second), 110)
	got := w.Rate()
	if got < 9 || got > 11 {
		t.Fatalf("post-prune rate %g, want ≈10/s", got)
	}
	// Counter reset (process restart) restarts the window instead of
	// reporting a huge negative rate.
	w.Observe(t0.Add(22*time.Second), 5)
	if got := w.Rate(); got != 0 {
		t.Fatalf("post-reset rate %g, want 0", got)
	}
	// Out-of-order observations are dropped.
	w.Observe(t0, 99)
	if got := w.Rate(); got != 0 {
		t.Fatalf("out-of-order observation changed rate to %g", got)
	}
}
