package stats

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram's bucket layout is HDR-style log-linear: values below
// subCount land in exact unit-width buckets; above that, every power-of-two
// range is split into subCount linear sub-buckets. The widest bucket a
// value v can land in is therefore v/subCount wide, which bounds the
// relative quantile value error at 1/subCount (HistRelError) — independent
// of the distribution, with fixed memory, forever.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32 → ≤ 3.125% relative error
	// histBuckets covers non-negative int64s up to histMaxValue:
	// subCount exact buckets + subCount per power-of-two range above.
	histBuckets  = histSubCount + (63-histSubBits)*histSubCount
	histMaxValue = int64(1)<<62 - 1
)

// HistRelError is the histogram's worst-case relative value error for any
// quantile: Quantile(p) is never below the true p-quantile and never more
// than a factor (1+HistRelError) above it (plus one unit, for the exact
// low range).
const HistRelError = 1.0 / histSubCount

// Histogram is a fixed-memory, log-bucketed latency/size sketch safe for
// concurrent use: Record is one atomic add on a bucket counter (plus a max
// CAS), so hot serving paths can record every request. Values are
// non-negative int64s in the caller's unit (the serving layer records
// microseconds; RecordDuration does that conversion). The zero value is
// ready to use.
//
// Read sides take a Snapshot — a mergeable value with Quantile and JSON
// encoding — so /statsz, dpmbench and dpmtop all compute percentiles from
// the identical definition, and a fleet aggregator can Merge replica
// sketches exactly instead of averaging pre-computed percentiles.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// histIndex maps a value to its bucket. Exact for v < histSubCount;
// log-linear above.
func histIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // k ≥ histSubBits
	// The leading 1+histSubBits bits: in [histSubCount, 2·histSubCount).
	sub := int(v>>(uint(k)-histSubBits)) - histSubCount
	return histSubCount + (k-histSubBits)*histSubCount + sub
}

// histUpper is the largest value mapping to bucket i — the value Quantile
// reports, so reported quantiles never understate the true one.
func histUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	b := i - histSubCount
	k := histSubBits + b/histSubCount
	sub := int64(b%histSubCount) + histSubCount
	shift := uint(k) - histSubBits
	return (sub+1)<<shift - 1
}

// Record adds one observation. Negative values clamp to zero, values above
// the representable ceiling clamp to it (counted, never dropped).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if v > histMaxValue {
		v = histMaxValue
	}
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordDuration records d in microseconds — the unit every latency
// histogram in the repo shares (LatencySummary converts to milliseconds
// for display).
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Microseconds()) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures the current state as a mergeable value. Concurrent
// Records may straddle the capture (the snapshot is not a single atomic
// cut), so Count is re-derived from the bucket sum for internal
// consistency.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			s.Bucket = append(s.Bucket, int32(i))
			s.N = append(s.N, c)
			s.Count += c
		}
	}
	return s
}

// Quantile is Snapshot().Quantile(p) — convenient for single readers; use
// a Snapshot when reading several quantiles, or when merging.
func (h *Histogram) Quantile(p float64) int64 { return h.Snapshot().Quantile(p) }

// HistSnapshot is a point-in-time histogram: sparse parallel arrays of
// occupied bucket indices and their counts, plus the exact observation
// count, sum and max. It is the JSON wire form /statsz exposes and the
// merge unit dpmtop aggregates replicas with.
type HistSnapshot struct {
	Bucket []int32 `json:"b,omitempty"`
	N      []int64 `json:"n,omitempty"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Max    int64   `json:"max"`
}

// Validate checks the sparse arrays are well-formed: aligned, strictly
// ascending in-range buckets, positive counts summing to Count. Merge and
// the JSON decoder use it so a corrupt peer snapshot cannot poison an
// aggregation.
func (s HistSnapshot) Validate() error {
	if len(s.Bucket) != len(s.N) {
		return fmt.Errorf("stats: histogram snapshot arrays misaligned (%d buckets, %d counts)", len(s.Bucket), len(s.N))
	}
	var total int64
	prev := int32(-1)
	for i, b := range s.Bucket {
		if b <= prev || int(b) >= histBuckets {
			return fmt.Errorf("stats: histogram snapshot bucket %d out of order or range", b)
		}
		if s.N[i] <= 0 {
			return fmt.Errorf("stats: histogram snapshot bucket %d has non-positive count", b)
		}
		total += s.N[i]
		prev = b
	}
	if total != s.Count {
		return fmt.Errorf("stats: histogram snapshot counts sum to %d, header says %d", total, s.Count)
	}
	return nil
}

// Quantile returns the value at quantile p (0 ≤ p ≤ 1) by the rank
// definition "smallest recorded bucket upper bound whose cumulative count
// reaches ⌈p·Count⌉". The result is never below the true sample quantile
// and never above it by more than a factor 1+HistRelError (plus one unit);
// p=1 returns the exact recorded max. An empty snapshot returns 0.
func (s HistSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(s.Count))
	if float64(rank) < p*float64(s.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Bucket {
		cum += s.N[i]
		if cum >= rank {
			v := histUpper(int(b))
			// The top occupied bucket's upper bound can overshoot the
			// exact recorded max; clamp so p→1 converges to it.
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// UpperBound returns the largest value mapping to the snapshot's i-th
// occupied bucket — the bar edges a renderer (dpmtop) draws. Out-of-range
// i returns 0.
func (s HistSnapshot) UpperBound(i int) int64 {
	if i < 0 || i >= len(s.Bucket) {
		return 0
	}
	return histUpper(int(s.Bucket[i]))
}

// Mean returns the exact arithmetic mean of the recorded values (0 when
// empty) — exact because Sum is tracked outside the buckets.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds other into s and returns the result (inputs are not
// mutated). Merging is exact — bucket counts add — so it is associative
// and commutative: any fleet aggregation order yields the same sketch. An
// invalid operand is an error; s is returned unchanged alongside it.
func (s HistSnapshot) Merge(other HistSnapshot) (HistSnapshot, error) {
	if err := s.Validate(); err != nil {
		return s, err
	}
	if err := other.Validate(); err != nil {
		return s, err
	}
	out := HistSnapshot{
		Count: s.Count + other.Count,
		Sum:   s.Sum + other.Sum,
		Max:   s.Max,
	}
	if other.Max > out.Max {
		out.Max = other.Max
	}
	i, j := 0, 0
	for i < len(s.Bucket) || j < len(other.Bucket) {
		switch {
		case j >= len(other.Bucket) || (i < len(s.Bucket) && s.Bucket[i] < other.Bucket[j]):
			out.Bucket = append(out.Bucket, s.Bucket[i])
			out.N = append(out.N, s.N[i])
			i++
		case i >= len(s.Bucket) || other.Bucket[j] < s.Bucket[i]:
			out.Bucket = append(out.Bucket, other.Bucket[j])
			out.N = append(out.N, other.N[j])
			j++
		default:
			out.Bucket = append(out.Bucket, s.Bucket[i])
			out.N = append(out.N, s.N[i]+other.N[j])
			i++
			j++
		}
	}
	return out, nil
}

// LatencySummary is the headline-quantile shape shared by /statsz on both
// servers, the loadgen report, dpmbench and dpmtop: percentiles computed
// by HistSnapshot.Quantile over microsecond observations, reported in
// milliseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary computes the shared headline quantiles, treating recorded
// values as microseconds.
func (s HistSnapshot) Summary() LatencySummary {
	const usPerMs = 1000.0
	return LatencySummary{
		Count:  s.Count,
		MeanMs: s.Mean() / usPerMs,
		P50Ms:  float64(s.Quantile(0.50)) / usPerMs,
		P90Ms:  float64(s.Quantile(0.90)) / usPerMs,
		P99Ms:  float64(s.Quantile(0.99)) / usPerMs,
		MaxMs:  float64(s.Max) / usPerMs,
	}
}

// String renders "p50=1.2ms p90=3.4ms p99=5.6ms max=7.8ms (n=42)".
func (l LatencySummary) String() string {
	return fmt.Sprintf("p50=%.3gms p90=%.3gms p99=%.3gms max=%.3gms (n=%d)",
		l.P50Ms, l.P90Ms, l.P99Ms, l.MaxMs, l.Count)
}

// Latency is the per-endpoint latency shape in /statsz: the headline
// summary plus the mergeable sketch it was computed from, so aggregators
// merge replica sketches exactly instead of averaging percentiles (which
// is statistically meaningless).
type Latency struct {
	LatencySummary
	Hist HistSnapshot `json:"hist"`
}

// LatencyOf pairs a snapshot with its summary.
func LatencyOf(s HistSnapshot) Latency {
	return Latency{LatencySummary: s.Summary(), Hist: s}
}
