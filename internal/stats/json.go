package stats

import "encoding/json"

// MarshalJSON serialises the ledger as its record array, so results that
// embed a Ledger (soc.Result) survive a JSON round trip — the on-disk
// result cache in internal/engine depends on this.
func (l Ledger) MarshalJSON() ([]byte, error) {
	if l.records == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(l.records)
}

// UnmarshalJSON restores a ledger serialised by MarshalJSON.
func (l *Ledger) UnmarshalJSON(b []byte) error {
	l.records = nil
	return json.Unmarshal(b, &l.records)
}
