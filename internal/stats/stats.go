// Package stats collects the measurements behind the paper's Table 2:
// exact (piecewise-constant) energy integration, time-weighted temperature
// statistics, and a per-task delay ledger from which the energy-saving,
// temperature-reduction and delay-overhead percentages are computed.
package stats

import (
	"fmt"
	"math"

	"godpm/internal/sim"
)

// EnergyMeter integrates power over time exactly, assuming power is
// piecewise constant between SetPower calls. Discrete energy quanta
// (state-transition costs) are added with AddEnergy.
type EnergyMeter struct {
	k      *sim.Kernel
	name   string
	lastAt sim.Time
	power  float64
	energy float64
}

// NewEnergyMeter creates a meter starting at zero power at the current time.
func NewEnergyMeter(k *sim.Kernel, name string) *EnergyMeter {
	return &EnergyMeter{k: k, name: name, lastAt: k.Now()}
}

// Name returns the meter name.
func (m *EnergyMeter) Name() string { return m.name }

// settle accumulates energy up to the current simulation time.
func (m *EnergyMeter) settle() {
	now := m.k.Now()
	if now > m.lastAt {
		m.energy += m.power * (now - m.lastAt).Seconds()
		m.lastAt = now
	}
}

// SetPower changes the current power level (watts) as of the current
// simulation time.
func (m *EnergyMeter) SetPower(w float64) {
	m.settle()
	m.power = w
}

// AddPower adjusts the current power level by a delta (used when a
// component contributes several independent terms).
func (m *EnergyMeter) AddPower(dw float64) {
	m.settle()
	m.power += dw
}

// AddEnergy records an instantaneous energy quantum (joules).
func (m *EnergyMeter) AddEnergy(j float64) {
	m.energy += j
}

// Power returns the current power level.
func (m *EnergyMeter) Power() float64 { return m.power }

// EnergyJ returns the energy accumulated up to the current simulation time.
func (m *EnergyMeter) EnergyJ() float64 {
	m.settle()
	return m.energy
}

// PeekEnergyJ returns the energy accumulated up to the current simulation
// time without settling the meter. The value is bit-identical to EnergyJ
// (settle computes `energy += power·dt` then returns energy; Peek returns
// `energy + power·dt`), but the meter's accumulation points are left
// untouched — snapshotting a live run through Peek does not perturb how
// later settles split the integral, which a mutating read would.
func (m *EnergyMeter) PeekEnergyJ() float64 {
	now := m.k.Now()
	if now > m.lastAt {
		return m.energy + m.power*(now-m.lastAt).Seconds()
	}
	return m.energy
}

// Series is a time-weighted scalar series (e.g. die temperature): each Add
// declares the value holding from that time until the next Add. Statistics
// treat the value as piecewise constant.
type Series struct {
	times []sim.Time
	vals  []float64
}

// Add appends a sample; times must be non-decreasing.
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.times); n > 0 && t < s.times[n-1] {
		panic(fmt.Sprintf("stats: series times must be non-decreasing (%v after %v)", t, s.times[n-1]))
	}
	s.times = append(s.times, t)
	s.vals = append(s.vals, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.times) }

// Last returns the most recent value (0 when empty).
func (s *Series) Last() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.vals[len(s.vals)-1]
}

// Max returns the maximum value (0 when empty).
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.vals {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the minimum value (0 when empty).
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.vals {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// MeanUntil returns the time-weighted mean over [first sample, end]. With
// fewer than one sample it returns 0.
func (s *Series) MeanUntil(end sim.Time) float64 {
	n := len(s.times)
	if n == 0 {
		return 0
	}
	if end < s.times[n-1] {
		end = s.times[n-1]
	}
	span := end - s.times[0]
	if span <= 0 {
		return s.vals[0]
	}
	var area float64
	for i := 0; i < n; i++ {
		var until sim.Time
		if i+1 < n {
			until = s.times[i+1]
		} else {
			until = end
		}
		area += s.vals[i] * (until - s.times[i]).Seconds()
	}
	return area / span.Seconds()
}

// TimeWeighted is a streaming time-weighted accumulator: the O(1) memory
// replacement for collecting a Series and calling MeanUntil/Max at the end.
// Each Add declares the value holding from that time until the next Add
// (piecewise constant, like Series). The accumulation order matches
// Series.MeanUntil exactly — one area term per sample, added left to right
// — so for identical samples the two produce bit-identical means.
type TimeWeighted struct {
	t0     sim.Time // time of the first sample
	v0     float64  // first value (degenerate zero-span mean)
	lastAt sim.Time
	lastV  float64
	area   float64 // ∫v dt up to lastAt, in value·seconds
	peak   float64
	min    float64
	n      int
}

// Add appends a sample; times must be non-decreasing.
func (w *TimeWeighted) Add(t sim.Time, v float64) {
	if w.n == 0 {
		w.t0, w.lastAt, w.lastV = t, t, v
		w.v0 = v
		w.peak, w.min = v, v
		w.n = 1
		return
	}
	if t < w.lastAt {
		panic(fmt.Sprintf("stats: series times must be non-decreasing (%v after %v)", t, w.lastAt))
	}
	w.area += w.lastV * (t - w.lastAt).Seconds()
	w.lastAt, w.lastV = t, v
	w.n++
	if v > w.peak {
		w.peak = v
	}
	if v < w.min {
		w.min = v
	}
}

// Len returns the number of samples accumulated.
func (w *TimeWeighted) Len() int { return w.n }

// Last returns the most recent value (0 when empty).
func (w *TimeWeighted) Last() float64 { return w.lastV }

// Max returns the maximum sample seen (0 when empty).
func (w *TimeWeighted) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.peak
}

// Min returns the minimum sample seen (0 when empty).
func (w *TimeWeighted) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Advance integrates the held value over an arbitrary gap: the area
// lastV·(t − lastAt) is folded into the accumulator and the hold point
// moves to t, without recording a new sample. Statistics after
// Advance(t) are bit-identical to not having advanced at all (MeanUntil
// extends the hold with exactly the same term) — Advance exists so gap
// integrators can fold provably-constant stretches into the accumulator
// eagerly and so snapshots can close their copy's integral at a cut
// point. Note that Advance(t) is NOT equivalent to re-Adding the held
// value at intermediate points: splitting an interval changes the
// floating-point summation. It is a no-op with no samples or t <= lastAt.
func (w *TimeWeighted) Advance(t sim.Time) {
	if w.n == 0 || t <= w.lastAt {
		return
	}
	w.area += w.lastV * (t - w.lastAt).Seconds()
	w.lastAt = t
}

// MeanUntil returns the time-weighted mean over [first sample, end],
// extending the last value to end; with no samples it returns 0. Unlike
// Series, the accumulator keeps only O(1) state, so MeanUntil may be called
// with any end >= the last sample time (earlier ends clamp to it, exactly
// as Series.MeanUntil does).
func (w *TimeWeighted) MeanUntil(end sim.Time) float64 {
	if w.n == 0 {
		return 0
	}
	if end < w.lastAt {
		end = w.lastAt
	}
	span := end - w.t0
	if span <= 0 {
		// All samples at one instant: the first value holds, exactly as
		// Series.MeanUntil returns vals[0].
		return w.v0
	}
	area := w.area + w.lastV*(end-w.lastAt).Seconds()
	return area / span.Seconds()
}

// TaskRecord is the ledger entry for one executed task.
type TaskRecord struct {
	IP     string
	TaskID int
	// Request is when the IP wanted to start (after its idle gap).
	Request sim.Time
	// Start is when execution actually began (post wake-up/GEM stalls).
	Start sim.Time
	// Done is when execution completed.
	Done sim.Time
	// State names the ON state the task executed in.
	State string
}

// Service returns the task's total service time (request to completion).
func (r TaskRecord) Service() sim.Time { return r.Done - r.Request }

// Ledger accumulates task records across all IPs.
type Ledger struct {
	records []TaskRecord
}

// Add appends a record.
func (l *Ledger) Add(r TaskRecord) { l.records = append(l.records, r) }

// Records returns the ledger contents (not a copy; callers must not mutate).
func (l *Ledger) Records() []TaskRecord { return l.records }

// Len returns the number of records.
func (l *Ledger) Len() int { return len(l.records) }

// Clone returns an independent copy of the ledger. Snapshots of a live run
// clone it so records appended after the cut point do not leak into the
// snapshot's view.
func (l *Ledger) Clone() *Ledger {
	return &Ledger{records: append([]TaskRecord(nil), l.records...)}
}

// key identifies a task across two runs of the same workload.
type key struct {
	ip string
	id int
}

// DelayOverheadPct computes the paper's "average delay overhead": for every
// task present in both ledgers, the relative service-time increase of dpm
// over base, averaged over tasks, in percent. An error is returned when the
// ledgers share no tasks or a base service time is zero.
func DelayOverheadPct(base, dpm *Ledger) (float64, error) {
	baseBy := make(map[key]TaskRecord, len(base.records))
	for _, r := range base.records {
		baseBy[key{r.IP, r.TaskID}] = r
	}
	var sum float64
	var n int
	for _, r := range dpm.records {
		b, ok := baseBy[key{r.IP, r.TaskID}]
		if !ok {
			continue
		}
		bs := b.Service()
		if bs <= 0 {
			return 0, fmt.Errorf("stats: task %s/%d has non-positive baseline service", r.IP, r.TaskID)
		}
		sum += float64(r.Service()-bs) / float64(bs)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("stats: ledgers share no tasks")
	}
	return 100 * sum / float64(n), nil
}

// EnergySavingPct returns (base−dpm)/base·100.
func EnergySavingPct(baseJ, dpmJ float64) (float64, error) {
	if baseJ <= 0 {
		return 0, fmt.Errorf("stats: non-positive baseline energy %v", baseJ)
	}
	return 100 * (baseJ - dpmJ) / baseJ, nil
}

// TempReductionPct compares the time-weighted average die temperatures on
// the absolute Celsius scale, as the paper's Table 2 does:
// (baseAvg − dpmAvg)/baseAvg·100. The baseline must be above ambient (a
// baseline that never heats makes the ratio meaningless).
func TempReductionPct(baseAvgC, dpmAvgC, ambientC float64) (float64, error) {
	if baseAvgC <= ambientC {
		return 0, fmt.Errorf("stats: baseline average %v not above ambient %v", baseAvgC, ambientC)
	}
	if baseAvgC <= 0 {
		return 0, fmt.Errorf("stats: non-positive baseline average %v", baseAvgC)
	}
	return 100 * (baseAvgC - dpmAvgC) / baseAvgC, nil
}
