package stats

import (
	"fmt"
	"math"

	"godpm/internal/sim"
)

// Summary describes a sample of replicate measurements: the aggregation
// unit of seed-replication studies and policy tournaments. StdDev is the
// sample (n−1) standard deviation; CI95 is the half-width of the 95%
// confidence interval of the mean, using the Student t quantile for small
// samples (so a 5-seed tournament gets honest error bars, not the normal
// approximation).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// String renders "mean ± ci95 (n=N)".
func (s Summary) String() string {
	if s.N == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.6g ± %.3g (n=%d)", s.Mean, s.CI95, s.N)
}

// t95 holds two-sided 95% Student t quantiles by degrees of freedom 1..30;
// above 30 the normal quantile 1.96 is used (within 2% of exact).
var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tQuantile95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.96
}

// Summarize aggregates the sample. With one observation the spread
// statistics are zero; with none, everything is.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(n-1))
	s.CI95 = tQuantile95(n-1) * s.StdDev / math.Sqrt(float64(n))
	return s
}

// PairedDelta summarizes the per-replicate differences policy[i]−base[i]:
// the paired design that cancels workload-seed variance when two policies
// run the identical generated scenarios. The slices must align by seed.
func PairedDelta(policy, base []float64) (Summary, error) {
	if len(policy) != len(base) {
		return Summary{}, fmt.Errorf("stats: paired samples differ in length (%d vs %d)", len(policy), len(base))
	}
	if len(policy) == 0 {
		return Summary{}, fmt.Errorf("stats: empty paired sample")
	}
	ds := make([]float64, len(policy))
	for i := range policy {
		ds[i] = policy[i] - base[i]
	}
	return Summarize(ds), nil
}

// PairedPct summarizes the per-replicate percent changes
// (policy[i]−base[i])/base[i]·100 — the tournament's "energy vs baseline"
// column. Every baseline observation must be nonzero.
func PairedPct(policy, base []float64) (Summary, error) {
	if len(policy) != len(base) {
		return Summary{}, fmt.Errorf("stats: paired samples differ in length (%d vs %d)", len(policy), len(base))
	}
	if len(policy) == 0 {
		return Summary{}, fmt.Errorf("stats: empty paired sample")
	}
	ds := make([]float64, len(policy))
	for i := range policy {
		if base[i] == 0 {
			return Summary{}, fmt.Errorf("stats: zero baseline in pair %d", i)
		}
		ds[i] = 100 * (policy[i] - base[i]) / base[i]
	}
	return Summarize(ds), nil
}

// MissedDeadlines counts ledger tasks whose service time (request to
// completion) exceeds the deadline. A non-positive deadline disables the
// check and reports zero.
func MissedDeadlines(l *Ledger, deadline sim.Time) int {
	if l == nil || deadline <= 0 {
		return 0
	}
	var n int
	for _, r := range l.records {
		if r.Service() > deadline {
			n++
		}
	}
	return n
}
