package stats

import (
	"sync"
	"time"
)

// RateWindow turns a cumulative counter into a rolling rate: feed it
// periodic observations of the counter's running total and it reports the
// per-second rate over the retained window. This is how /statsz exposes
// "hits per second right now" next to "hits since process start" — the
// servers sample their counters once a second into a RateWindow per
// counter, and the handler reads Rate.
//
// Memory is bounded by the window: samples older than it are pruned, so
// the reported rate always describes at most the last window's span. Safe
// for concurrent use.
type RateWindow struct {
	mu      sync.Mutex
	window  time.Duration
	times   []time.Time
	totals  []float64
	started bool
}

// DefaultRateWindow is the rolling span the serving layers use.
const DefaultRateWindow = 60 * time.Second

// NewRateWindow builds a window of the given span (≤0 selects
// DefaultRateWindow).
func NewRateWindow(window time.Duration) *RateWindow {
	if window <= 0 {
		window = DefaultRateWindow
	}
	return &RateWindow{window: window}
}

// Observe records the counter's cumulative total at now. Out-of-order
// observations (now before the last sample) are dropped; a total below
// the previous one (counter reset) clears the window and restarts.
func (w *RateWindow) Observe(now time.Time, total float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.times); n > 0 {
		if now.Before(w.times[n-1]) {
			return
		}
		if total < w.totals[n-1] {
			w.times = w.times[:0]
			w.totals = w.totals[:0]
		}
	}
	w.times = append(w.times, now)
	w.totals = append(w.totals, total)
	w.pruneLocked(now)
}

// pruneLocked drops samples that fell out of the window.
func (w *RateWindow) pruneLocked(now time.Time) {
	cutoff := now.Add(-w.window)
	keepFrom := 0
	for keepFrom < len(w.times) && w.times[keepFrom].Before(cutoff) {
		keepFrom++
	}
	if keepFrom > 0 {
		w.times = append(w.times[:0], w.times[keepFrom:]...)
		w.totals = append(w.totals[:0], w.totals[keepFrom:]...)
	}
}

// RateSet rolls a named family of cumulative counters — the servers keep
// one, feed it a counter snapshot once a second (Sample starts that
// goroutine), and surface Rates() as the /statsz "rates_per_s" object.
type RateSet struct {
	mu      sync.Mutex
	window  time.Duration
	windows map[string]*RateWindow
}

// NewRateSet builds a set whose windows span the given duration (≤0
// selects DefaultRateWindow).
func NewRateSet(window time.Duration) *RateSet {
	if window <= 0 {
		window = DefaultRateWindow
	}
	return &RateSet{window: window, windows: make(map[string]*RateWindow)}
}

// Observe records one snapshot of the counters' running totals at now.
func (s *RateSet) Observe(now time.Time, totals map[string]float64) {
	for name, v := range totals {
		s.mu.Lock()
		w := s.windows[name]
		if w == nil {
			w = NewRateWindow(s.window)
			s.windows[name] = w
		}
		s.mu.Unlock()
		w.Observe(now, v)
	}
}

// Rates returns every counter's current per-second rate.
func (s *RateSet) Rates() map[string]float64 {
	s.mu.Lock()
	names := make([]string, 0, len(s.windows))
	wins := make([]*RateWindow, 0, len(s.windows))
	for name, w := range s.windows {
		names = append(names, name)
		wins = append(wins, w)
	}
	s.mu.Unlock()
	out := make(map[string]float64, len(names))
	for i, name := range names {
		out[name] = wins[i].Rate()
	}
	return out
}

// Sample starts a goroutine observing totals() every interval (≤0 selects
// one second), beginning immediately, and returns a stop function (safe
// to call more than once).
func (s *RateSet) Sample(interval time.Duration, totals func() map[string]float64) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		s.Observe(time.Now(), totals())
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				s.Observe(now, totals())
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Rate returns the counter's per-second rate over the retained span
// ((newest−oldest)/(t_newest−t_oldest)); 0 with fewer than two samples.
func (w *RateWindow) Rate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.times)
	if n < 2 {
		return 0
	}
	span := w.times[n-1].Sub(w.times[0]).Seconds()
	if span <= 0 {
		return 0
	}
	return (w.totals[n-1] - w.totals[0]) / span
}
