package lem

import (
	"testing"
	"testing/quick"

	"godpm/internal/sim"
)

func TestLastValuePredictor(t *testing.T) {
	var p LastValue
	if p.Predict(99*sim.Ms) != 0 {
		t.Fatal("unseen last-value predictor should predict 0")
	}
	p.Observe(5 * sim.Ms)
	if p.Predict(0) != 5*sim.Ms {
		t.Fatalf("Predict = %v, want 5ms", p.Predict(0))
	}
	p.Observe(7 * sim.Ms)
	if p.Predict(0) != 7*sim.Ms {
		t.Fatalf("Predict = %v, want 7ms", p.Predict(0))
	}
	if p.Name() != "last-value" {
		t.Fatal("name wrong")
	}
}

func TestEWMAPredictor(t *testing.T) {
	p := NewEWMA(0.5)
	if p.Predict(0) != 0 {
		t.Fatal("unseen EWMA should predict 0")
	}
	p.Observe(10 * sim.Ms)
	if p.Predict(0) != 10*sim.Ms {
		t.Fatalf("first observation should seed: %v", p.Predict(0))
	}
	p.Observe(20 * sim.Ms)
	if got := p.Predict(0); got != 15*sim.Ms {
		t.Fatalf("Predict = %v, want 15ms (0.5 blend)", got)
	}
	p.Observe(20 * sim.Ms)
	if got := p.Predict(0); got != sim.Time(17.5*float64(sim.Ms)) {
		t.Fatalf("Predict = %v, want 17.5ms", got)
	}
}

func TestEWMAAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v accepted", a)
				}
			}()
			NewEWMA(a)
		}()
	}
	NewEWMA(1) // boundary is legal
}

func TestEWMAIgnoresHint(t *testing.T) {
	p := NewEWMA(0.5)
	p.Observe(10 * sim.Ms)
	if p.Predict(123*sim.Sec) != p.Predict(0) {
		t.Fatal("honest predictor used the hint")
	}
}

func TestPerfectPredictor(t *testing.T) {
	var p Perfect
	if p.Predict(42*sim.Us) != 42*sim.Us {
		t.Fatal("oracle must return the hint")
	}
	p.Observe(1 * sim.Sec) // no-op
	if p.Predict(1*sim.Ns) != 1*sim.Ns {
		t.Fatal("oracle ignores observations")
	}
	if p.Name() != "perfect" {
		t.Fatal("name wrong")
	}
}

// Property: EWMA prediction always lies within the range of observations
// seen so far.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(obs []uint16) bool {
		if len(obs) == 0 {
			return true
		}
		p := NewEWMA(0.3)
		min, max := sim.Time(obs[0]), sim.Time(obs[0])
		for _, o := range obs {
			d := sim.Time(o)
			p.Observe(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		got := p.Predict(0)
		return got >= min && got <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
