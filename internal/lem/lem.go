package lem

import (
	"fmt"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/gem"
	"godpm/internal/power"
	"godpm/internal/rules"
	"godpm/internal/sim"
	"godpm/internal/task"
	"godpm/internal/thermal"
)

// Config parameterises a LEM.
type Config struct {
	// Table is the power-state selection policy (default: rules.Table1).
	Table *rules.Table
	// Predictor estimates idle durations (default: EWMA 0.5).
	Predictor Predictor
	// BreakEvenGating, when true (the default via NewConfig), only enters
	// a sleep state if the predicted idle time exceeds its break-even
	// time; when false the LEM always picks the deepest allowed state —
	// the ablation benchmarks quantify the difference.
	BreakEvenGating bool
	// AllowSoftOff permits the soft-off state as an idle target.
	AllowSoftOff bool
}

// NewConfig returns the defaults used in the experiments.
func NewConfig() Config {
	return Config{
		Table:           rules.Table1(),
		Predictor:       NewEWMA(0.5),
		BreakEvenGating: true,
	}
}

func (c *Config) fillDefaults() {
	if c.Table == nil {
		c.Table = rules.Table1()
	}
	if c.Predictor == nil {
		c.Predictor = NewEWMA(0.5)
	}
}

// Stats aggregates the LEM's decisions for reports and tests.
type Stats struct {
	// OnDecisions counts tasks executed per ON state name.
	OnDecisions map[string]int
	// SleepEntries counts idle periods per sleep state name ("" = stayed
	// in the ON state because no sleep paid off).
	SleepEntries map[string]int
	// ParkEvents counts times a task was parked (policy selected a sleep
	// state or the GEM disabled the IP) before eventually executing.
	ParkEvents int
	// ParkedTime totals time spent parked while a task was pending.
	ParkedTime sim.Time
}

// LEM is the local energy manager of one IP block.
type LEM struct {
	k    *sim.Kernel
	name string
	psm  *acpi.PSM
	pack *battery.Pack
	node thermal.Source
	cfg  Config

	// Optional GEM attachment.
	gem   *gem.GEM
	gemID int

	idleSince   sim.Time
	idleValid   bool
	lastPredict sim.Time

	stats Stats
}

// New creates a LEM controlling psm, observing the battery pack and thermal
// node. Attach a GEM with AttachGEM before the simulation starts.
func New(k *sim.Kernel, name string, psm *acpi.PSM, pack *battery.Pack, node thermal.Source, cfg Config) *LEM {
	cfg.fillDefaults()
	return &LEM{
		k: k, name: name, psm: psm, pack: pack, node: node, cfg: cfg,
		stats: Stats{OnDecisions: map[string]int{}, SleepEntries: map[string]int{}},
	}
}

// AttachGEM puts the LEM under global control: tasks execute only while the
// GEM enables this IP.
func (l *LEM) AttachGEM(g *gem.GEM, id int) {
	l.gem = g
	l.gemID = id
}

// Name returns the LEM name.
func (l *LEM) Name() string { return l.name }

// Stats returns the decision statistics collected so far.
func (l *LEM) Stats() Stats { return l.stats }

// PSM returns the controlled power state machine.
func (l *LEM) PSM() *acpi.PSM { return l.psm }

// Predictor returns the configured idle predictor.
func (l *LEM) Predictor() Predictor { return l.cfg.Predictor }

// AcquireOn is called by the IP thread when a task is ready to execute. It
// blocks until the PSM reaches the ON state the policy selects for the task
// under the current (and predicted end-of-task) battery and temperature
// classes, and returns that operating point. When the policy selects a
// sleep state (empty battery, overheated chip) or the GEM has disabled the
// IP, the task is parked until conditions change.
func (l *LEM) AcquireOn(c *sim.Ctx, t task.Task) power.OperatingPoint {
	// Close the idle-period observation for the predictor.
	if l.idleValid {
		l.cfg.Predictor.Observe(c.Now() - l.idleSince)
		l.idleValid = false
	}
	if l.gem != nil {
		l.gem.NotifyRequest(l.gemID)
	}
	parkedAt := sim.Time(-1)
	for {
		if l.gem != nil && !l.gem.Enabled(l.gemID) {
			// Forced to Sleep1 by the GEM while disabled.
			parkedAt = l.parkIn(c, acpi.SL1, parkedAt)
			c.WaitAny(l.gem.Changed(), l.pack.StatusSignal().Changed(), l.node.ClassSignal().Changed())
			continue
		}
		state := l.selectState(t)
		if !state.IsOn() {
			// Policy says sleep (battery empty / chip hot): park and wait
			// for a class change.
			parkedAt = l.parkIn(c, state, parkedAt)
			evs := []*sim.Event{l.pack.StatusSignal().Changed(), l.node.ClassSignal().Changed()}
			if l.gem != nil {
				evs = append(evs, l.gem.Changed())
			}
			c.WaitAny(evs...)
			continue
		}
		if parkedAt >= 0 {
			l.stats.ParkedTime += c.Now() - parkedAt
		}
		l.transition(c, state)
		l.stats.OnDecisions[state.String()]++
		return l.psm.Profile().On[state.OnIndex()]
	}
}

// selectState runs the Table 1 policy with the LEM's end-of-task
// prediction: a first pass with the current classes picks a candidate ON
// state; the battery and temperature classes are then predicted at the end
// of the task executed in that state (folding in the other IPs' power when
// a GEM is attached) and the policy is re-evaluated with the predicted
// classes.
func (l *LEM) selectState(t task.Task) acpi.State {
	battNow := l.pack.Status()
	tempNow := l.node.Class()
	state, _, ok := l.cfg.Table.Select(t.Priority, battNow, tempNow)
	if !ok {
		panic(fmt.Sprintf("lem: %s: policy table not total", l.name))
	}
	if !state.IsOn() {
		return state
	}
	prof := l.psm.Profile()
	op := prof.On[state.OnIndex()]
	dur := prof.TaskDuration(t.Instructions, op)
	pSelf := prof.InstrWeight[t.Class]*prof.DynamicPower(op) + prof.LeakagePower(op.Vdd)
	pTotal := pSelf
	if l.gem != nil {
		pTotal += l.gem.OtherPower(l.gemID)
	}
	battEnd := l.pack.PredictStatus(pTotal, dur)
	tempEnd := l.node.PredictClass(pTotal, dur)
	refined, _, ok := l.cfg.Table.Select(t.Priority, battEnd, tempEnd)
	if !ok {
		panic(fmt.Sprintf("lem: %s: policy table not total", l.name))
	}
	if refined.IsOn() {
		return refined
	}
	// Prediction guard: the *current* classes permit execution; parking on
	// a merely *predicted* degradation would deadlock (nothing changes
	// while the IP is parked, so the prediction never improves). Instead
	// the task runs in the most frugal execution state, which minimises
	// the predicted drift.
	return acpi.ON4
}

// parkIn moves the PSM to the given sleep state (if not already there) and
// returns the park start time (unchanged if already parked).
func (l *LEM) parkIn(c *sim.Ctx, state acpi.State, parkedAt sim.Time) sim.Time {
	if parkedAt < 0 {
		parkedAt = c.Now()
		l.stats.ParkEvents++
	}
	if l.psm.State() != state && !l.psm.Transitioning().Read() {
		l.transition(c, state)
	}
	return parkedAt
}

// transition requests a PSM transition and blocks until it completes.
func (l *LEM) transition(c *sim.Ctx, target acpi.State) {
	for l.psm.Transitioning().Read() {
		c.Wait(l.psm.Done())
	}
	if l.psm.State() == target {
		return
	}
	if _, err := l.psm.Request(target); err != nil {
		panic(fmt.Sprintf("lem: %s: %v", l.name, err))
	}
	c.Wait(l.psm.Done())
}

// ReleaseIdle is called by the IP thread when it becomes inactive. The LEM
// predicts the idle duration and moves the PSM into the deepest sleep (or
// off) state whose break-even time the prediction exceeds; with no
// profitable state the IP stays clocked in its current ON state. hint is
// the actual upcoming idle time, consumed only by the Perfect predictor.
func (l *LEM) ReleaseIdle(c *sim.Ctx, hint sim.Time) {
	if hint == sim.MaxTime {
		// "No further work ever": skip the predictor (there is no next
		// idle period to learn for) and power down as deeply as allowed.
		l.idleValid = false
		if target, ok := l.chooseSleep(sim.MaxTime); ok {
			l.transition(c, target)
			l.stats.SleepEntries[target.String()]++
		}
		return
	}
	l.idleSince = c.Now()
	l.idleValid = true
	predicted := l.cfg.Predictor.Predict(hint)
	l.lastPredict = predicted

	target, ok := l.chooseSleep(predicted)
	if !ok {
		l.stats.SleepEntries[""]++
		return
	}
	l.transition(c, target)
	l.stats.SleepEntries[target.String()]++
}

// chooseSleep returns the deepest allowed sleep state whose break-even time
// is within the predicted idle duration.
func (l *LEM) chooseSleep(predicted sim.Time) (acpi.State, bool) {
	prof := l.psm.Profile()
	var pIdle float64
	if s := l.psm.State(); s.IsOn() {
		pIdle = prof.IdlePower(prof.On[s.OnIndex()])
	} else {
		// Already asleep (e.g. GEM parked us): nothing to do.
		return 0, false
	}
	deepest := 3 // SL4
	if l.cfg.AllowSoftOff {
		deepest = 4
	}
	if !l.cfg.BreakEvenGating {
		return acpi.SleepStateByIndex(deepest), true
	}
	for i := deepest; i >= 0; i-- {
		tbe, ok := prof.BreakEven(pIdle, prof.Sleep[i])
		if ok && predicted >= tbe {
			return acpi.SleepStateByIndex(i), true
		}
	}
	return 0, false
}

// LastPrediction returns the most recent idle-time prediction (for tests).
func (l *LEM) LastPrediction() sim.Time { return l.lastPredict }
