package lem

import (
	"testing"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/task"
	"godpm/internal/thermal"
)

// rig bundles a minimal single-IP environment for LEM tests.
type rig struct {
	k     *sim.Kernel
	psm   *acpi.PSM
	pack  *battery.Pack
	node  *thermal.Node
	lem   *LEM
	model *battery.Linear
}

// newRig builds a LEM over a linear battery at the given SoC and a thermal
// node at the given temperature.
func newRig(t *testing.T, soc float64, tempC float64, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	prof := power.DefaultProfile()
	psm := acpi.NewPSM(k, "ip", prof, acpi.ON1)
	model := battery.NewLinear(1e6, soc)
	pack := battery.NewPack(k, "bat", model, battery.DefaultThresholds(), false)
	node := thermal.NewNode(k, "die", thermal.DefaultParams(), tempC)
	l := New(k, "ip.lem", psm, pack, node, cfg)
	return &rig{k: k, psm: psm, pack: pack, node: node, lem: l, model: model}
}

func smallTask(prio task.Priority) task.Task {
	return task.Task{ID: 1, Instructions: 200_000, Class: power.InstrALU, Priority: prio}
}

func TestAcquireOnSelectsByPriorityFullBattery(t *testing.T) {
	// Battery Full (rows 11/12): V/H/M → ON1, L → ON2.
	cases := []struct {
		prio task.Priority
		want string
	}{
		{task.VeryHigh, "ON1"},
		{task.High, "ON1"},
		{task.Medium, "ON1"},
		{task.Low, "ON2"},
	}
	for _, c := range cases {
		r := newRig(t, 0.95, 50, NewConfig())
		var got power.OperatingPoint
		r.k.Thread("drv", func(ctx *sim.Ctx) {
			got = r.lem.AcquireOn(ctx, smallTask(c.prio))
		})
		if err := r.k.Run(sim.MaxTime); err != nil {
			t.Fatal(err)
		}
		r.k.Shutdown()
		if got.Name != c.want {
			t.Errorf("priority %v: op %q, want %q", c.prio, got.Name, c.want)
		}
	}
}

func TestAcquireOnLowBatterySlowsEveryone(t *testing.T) {
	r := newRig(t, 0.2, 50, NewConfig()) // battery Low
	var got power.OperatingPoint
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		got = r.lem.AcquireOn(ctx, smallTask(task.VeryHigh))
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if got.Name != "ON4" {
		t.Fatalf("low battery should force ON4, got %q", got.Name)
	}
}

func TestAcquireOnParksOnEmptyBatteryUntilCharge(t *testing.T) {
	// Battery Empty parks non-VeryHigh tasks in SL1; when the battery
	// class improves (here: faked by an external recharge), the task runs.
	r := newRig(t, 0.03, 50, NewConfig())
	var acquired sim.Time = -1
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		acquired = ctx.Now()
	})
	// External event: a charger lifts the battery to 50% at 5 ms.
	recharge := r.k.NewEvent("recharge")
	r.k.Method("charger", func() {
		r.model.Recharge(0.5)
		r.pack.Step(0, sim.Time(1)) // refresh the status signal
	}).Sensitive(recharge).DontInitialize()
	recharge.Notify(5 * sim.Ms)
	if err := r.k.Run(100 * sim.Ms); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if acquired < 5*sim.Ms {
		t.Fatalf("task acquired at %v, want parked until the 5ms recharge", acquired)
	}
	st := r.lem.Stats()
	if st.ParkEvents != 1 || st.ParkedTime <= 0 {
		t.Fatalf("park stats: %+v", st)
	}
	// Battery Medium + temp Low → ON3 for Medium priority (row 9).
	if r.psm.State() != acpi.ON3 {
		t.Fatalf("final state %v, want ON3", r.psm.State())
	}
}

func TestVeryHighPriorityRunsEvenOnEmptyBattery(t *testing.T) {
	r := newRig(t, 0.03, 50, NewConfig())
	var got power.OperatingPoint
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		got = r.lem.AcquireOn(ctx, smallTask(task.VeryHigh))
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if got.Name != "ON4" {
		t.Fatalf("row 1 violated: got %q, want ON4", got.Name)
	}
}

func TestHighTemperatureParksUntilCool(t *testing.T) {
	// Die at 90 °C (High): Medium-priority task parks in SL1; the chip
	// cools (the test steps the node), the class drops, the task runs.
	r := newRig(t, 0.95, 90, NewConfig())
	var acquired sim.Time = -1
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		acquired = ctx.Now()
	})
	cool := r.k.NewEvent("cool")
	r.k.Method("cooler", func() {
		r.node.Step(0, 2*sim.Ms) // strong cooling per tick
		if r.node.Class() == thermal.HighTemp {
			cool.Notify(sim.Ms)
		}
	}).Sensitive(cool).DontInitialize()
	cool.Notify(sim.Ms)
	if err := r.k.Run(200 * sim.Ms); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if acquired <= 0 {
		t.Fatal("task never acquired despite cooling")
	}
	if r.lem.Stats().ParkEvents == 0 {
		t.Fatal("no park recorded at high temperature")
	}
}

func TestReleaseIdleEntersSleepWhenPredictedLongIdle(t *testing.T) {
	cfg := NewConfig()
	cfg.Predictor = Perfect{}
	r := newRig(t, 0.95, 50, cfg)
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		r.lem.ReleaseIdle(ctx, 500*sim.Ms) // plenty for SL4
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if r.psm.State() != acpi.SL4 {
		t.Fatalf("state %v after long predicted idle, want SL4", r.psm.State())
	}
	if r.lem.Stats().SleepEntries["SL4"] != 1 {
		t.Fatalf("sleep stats %v", r.lem.Stats().SleepEntries)
	}
}

func TestReleaseIdleStaysOnForShortIdle(t *testing.T) {
	cfg := NewConfig()
	cfg.Predictor = Perfect{}
	r := newRig(t, 0.95, 50, cfg)
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		r.lem.ReleaseIdle(ctx, 1*sim.Us) // below every break-even
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if !r.psm.State().IsOn() {
		t.Fatalf("state %v, want to stay ON for a tiny idle", r.psm.State())
	}
	if r.lem.Stats().SleepEntries[""] != 1 {
		t.Fatalf("sleep stats %v", r.lem.Stats().SleepEntries)
	}
}

func TestReleaseIdlePicksIntermediateState(t *testing.T) {
	cfg := NewConfig()
	cfg.Predictor = Perfect{}
	r := newRig(t, 0.95, 50, cfg)
	prof := power.DefaultProfile()
	pIdle := prof.IdlePower(prof.On[0])
	// Pick an idle length between SL2's and SL3's break-even times.
	tbe2, _ := prof.BreakEven(pIdle, prof.Sleep[1])
	tbe3, _ := prof.BreakEven(pIdle, prof.Sleep[2])
	idle := tbe2 + (tbe3-tbe2)/2
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		r.lem.ReleaseIdle(ctx, idle)
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if r.psm.State() != acpi.SL2 {
		t.Fatalf("state %v for idle %v, want SL2 (tbe2=%v tbe3=%v)",
			r.psm.State(), idle, tbe2, tbe3)
	}
}

func TestBreakEvenGatingDisabledGoesDeepest(t *testing.T) {
	cfg := NewConfig()
	cfg.Predictor = Perfect{}
	cfg.BreakEvenGating = false
	r := newRig(t, 0.95, 50, cfg)
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		r.lem.ReleaseIdle(ctx, 1*sim.Us) // would stay ON with gating
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if r.psm.State() != acpi.SL4 {
		t.Fatalf("ungated sleep went to %v, want SL4", r.psm.State())
	}
}

func TestAllowSoftOffReachesSoftOff(t *testing.T) {
	cfg := NewConfig()
	cfg.Predictor = Perfect{}
	cfg.AllowSoftOff = true
	r := newRig(t, 0.95, 50, cfg)
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		r.lem.ReleaseIdle(ctx, 10*sim.Sec)
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if r.psm.State() != acpi.SoftOff {
		t.Fatalf("state %v, want SoftOff", r.psm.State())
	}
}

func TestPredictorObservesActualIdle(t *testing.T) {
	cfg := NewConfig()
	lv := &LastValue{}
	cfg.Predictor = lv
	r := newRig(t, 0.95, 50, cfg)
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		r.lem.ReleaseIdle(ctx, 0)
		ctx.WaitTime(7 * sim.Ms) // actual idle
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if got := lv.Predict(0); got != 7*sim.Ms {
		t.Fatalf("observed idle = %v, want 7ms", got)
	}
}

func TestPredictionRefinesWithinOnStates(t *testing.T) {
	// Die at 50 °C (Low), battery Full: the first pass picks ON1 for a
	// Medium-priority task, but a hot-running (IO-class) long task is
	// predicted to push the temperature class to Medium by its end — the
	// refined selection lands on the completion default ON3.
	r := newRig(t, 0.95, 50, NewConfig())
	hot := task.Task{ID: 1, Instructions: 5_000_000, Class: power.InstrIO, Priority: task.Medium}
	var got power.OperatingPoint
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		got = r.lem.AcquireOn(ctx, hot)
	})
	if err := r.k.Run(sim.Sec); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if got.Name != "ON3" {
		t.Fatalf("hot task got %q, want the refined ON3", got.Name)
	}
}

func TestPredictionGuardAvoidsParkingOnForecast(t *testing.T) {
	// Battery barely above the Empty threshold: the current class (Low)
	// permits execution but the task would drain it to Empty, for which
	// Table 1 selects SL1. Parking on that forecast would deadlock, so the
	// guard must run the task at ON4 instead.
	k := sim.NewKernel()
	prof := power.DefaultProfile()
	psm := acpi.NewPSM(k, "ip", prof, acpi.ON1)
	model := battery.NewLinear(0.02, 0.06) // 20 mJ pack at 6% — one task drains it
	pack := battery.NewPack(k, "bat", model, battery.DefaultThresholds(), false)
	node := thermal.NewNode(k, "die", thermal.DefaultParams(), 50)
	l := New(k, "ip.lem", psm, pack, node, NewConfig())
	big := task.Task{ID: 1, Instructions: 5_000_000, Class: power.InstrALU, Priority: task.Medium}
	var got power.OperatingPoint
	k.Thread("drv", func(ctx *sim.Ctx) {
		got = l.AcquireOn(ctx, big)
	})
	if err := k.Run(sim.Sec); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got.Name != "ON4" {
		t.Fatalf("battery-draining task got %q, want the ON4 guard", got.Name)
	}
}

func TestStatsCountDecisions(t *testing.T) {
	r := newRig(t, 0.95, 50, NewConfig())
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		for i := 0; i < 3; i++ {
			r.lem.AcquireOn(ctx, smallTask(task.Medium))
			r.lem.ReleaseIdle(ctx, 0)
			ctx.WaitTime(sim.Ms)
		}
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if r.lem.Stats().OnDecisions["ON1"] != 3 {
		t.Fatalf("decisions %v, want 3×ON1", r.lem.Stats().OnDecisions)
	}
}

func TestFinalReleasePowersDownDeepest(t *testing.T) {
	// ReleaseIdle with the sim.MaxTime sentinel ("no further work") must
	// bypass the predictor and reach the deepest allowed sleep state.
	cfg := NewConfig()
	cfg.Predictor = &LastValue{} // has never observed anything: predicts 0
	r := newRig(t, 0.95, 50, cfg)
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		r.lem.ReleaseIdle(ctx, sim.MaxTime)
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	if r.psm.State() != acpi.SL4 {
		t.Fatalf("final state %v, want SL4", r.psm.State())
	}
}

func TestFinalReleaseDoesNotPolluteAdaptivePredictor(t *testing.T) {
	cfg := NewConfig()
	lv := &LastValue{}
	cfg.Predictor = lv
	r := newRig(t, 0.95, 50, cfg)
	r.k.Thread("drv", func(ctx *sim.Ctx) {
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		r.lem.ReleaseIdle(ctx, 0)
		ctx.WaitTime(3 * sim.Ms)
		r.lem.AcquireOn(ctx, smallTask(task.Medium))
		r.lem.ReleaseIdle(ctx, sim.MaxTime)
	})
	if err := r.k.Run(sim.Sec); err != nil {
		t.Fatal(err)
	}
	r.k.Shutdown()
	// The observed idle is the real 3 ms, not an artefact of the final
	// power-down.
	if lv.Predict(0) != 3*sim.Ms {
		t.Fatalf("predictor remembers %v, want 3ms", lv.Predict(0))
	}
}
