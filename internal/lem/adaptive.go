package lem

import (
	"fmt"
	"sort"

	"godpm/internal/sim"
)

// Adaptive implements the paper's remark that the LEM's "parameters can be
// adapted to the single IP": it runs a fast and a slow EWMA side by side,
// tracks each one's exponentially decayed absolute prediction error, and
// predicts with whichever has recently been more accurate. Bursty idle
// patterns favour the fast filter, stationary ones the slow filter.
type Adaptive struct {
	fast, slow         *EWMA
	errFast, errSlow   float64
	decay              float64
	lastFast, lastSlow sim.Time
	seen               bool
}

// NewAdaptive creates an adaptive predictor from a fast and a slow
// smoothing factor (fastAlpha > slowAlpha) and an error-decay factor in
// (0,1].
func NewAdaptive(fastAlpha, slowAlpha, decay float64) *Adaptive {
	if fastAlpha <= slowAlpha {
		panic(fmt.Sprintf("lem: adaptive fastAlpha %v must exceed slowAlpha %v", fastAlpha, slowAlpha))
	}
	if decay <= 0 || decay > 1 {
		panic(fmt.Sprintf("lem: adaptive decay %v outside (0,1]", decay))
	}
	return &Adaptive{fast: NewEWMA(fastAlpha), slow: NewEWMA(slowAlpha), decay: decay}
}

// Predict implements Predictor.
func (p *Adaptive) Predict(sim.Time) sim.Time {
	if !p.seen {
		return 0
	}
	if p.errFast <= p.errSlow {
		return p.fast.Predict(0)
	}
	return p.slow.Predict(0)
}

// Observe implements Predictor: it scores both filters against the actual
// value before updating them.
func (p *Adaptive) Observe(actual sim.Time) {
	if p.seen {
		p.errFast = p.decay*absTime(p.lastFast-actual) + (1-p.decay)*p.errFast
		p.errSlow = p.decay*absTime(p.lastSlow-actual) + (1-p.decay)*p.errSlow
	}
	p.fast.Observe(actual)
	p.slow.Observe(actual)
	p.lastFast = p.fast.Predict(0)
	p.lastSlow = p.slow.Predict(0)
	p.seen = true
}

// Name implements Predictor.
func (p *Adaptive) Name() string {
	return fmt.Sprintf("adaptive(%.2f/%.2f)", p.fast.Alpha, p.slow.Alpha)
}

// UsingFast reports which filter would currently be used (for tests).
func (p *Adaptive) UsingFast() bool { return p.errFast <= p.errSlow }

func absTime(t sim.Time) float64 {
	if t < 0 {
		t = -t
	}
	return float64(t)
}

// WindowQuantile predicts a low quantile of the last N observed idle
// durations. Predicting e.g. the 25th percentile is deliberately
// conservative: it under-promises idle time, so break-even gating only
// picks deep sleep states when even a pessimistic view of history supports
// them — a common safeguard against heavy-tailed idle distributions.
type WindowQuantile struct {
	Window   int
	Quantile float64
	hist     []sim.Time
	next     int
}

// NewWindowQuantile creates a sliding-window quantile predictor.
func NewWindowQuantile(window int, quantile float64) *WindowQuantile {
	if window < 1 {
		panic("lem: window must be >= 1")
	}
	if quantile < 0 || quantile > 1 {
		panic("lem: quantile outside [0,1]")
	}
	return &WindowQuantile{Window: window, Quantile: quantile, hist: make([]sim.Time, 0, window)}
}

// Predict implements Predictor.
func (p *WindowQuantile) Predict(sim.Time) sim.Time {
	n := len(p.hist)
	if n == 0 {
		return 0
	}
	sorted := make([]sim.Time, n)
	copy(sorted, p.hist)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p.Quantile * float64(n-1))
	return sorted[idx]
}

// Observe implements Predictor.
func (p *WindowQuantile) Observe(actual sim.Time) {
	if len(p.hist) < p.Window {
		p.hist = append(p.hist, actual)
		return
	}
	p.hist[p.next] = actual
	p.next = (p.next + 1) % p.Window
}

// Name implements Predictor.
func (p *WindowQuantile) Name() string {
	return fmt.Sprintf("quantile(%d,%.2f)", p.Window, p.Quantile)
}
