package lem

import (
	"testing"

	"godpm/internal/sim"
)

func TestAdaptiveUnseenPredictsZero(t *testing.T) {
	p := NewAdaptive(0.8, 0.2, 0.3)
	if p.Predict(99*sim.Sec) != 0 {
		t.Fatal("unseen adaptive predictor should predict 0")
	}
}

func TestAdaptiveTracksStepChange(t *testing.T) {
	// After a regime change, the fast filter's error shrinks faster and
	// the adaptive predictor must converge towards the new level quicker
	// than the slow filter alone.
	p := NewAdaptive(0.9, 0.1, 0.5)
	slow := NewEWMA(0.1)
	for i := 0; i < 20; i++ {
		p.Observe(10 * sim.Ms)
		slow.Observe(10 * sim.Ms)
	}
	for i := 0; i < 5; i++ {
		p.Observe(100 * sim.Ms)
		slow.Observe(100 * sim.Ms)
	}
	ad := p.Predict(0)
	sl := slow.Predict(0)
	if ad <= sl {
		t.Fatalf("adaptive %v not faster than slow filter %v after step change", ad, sl)
	}
	if !p.UsingFast() {
		t.Fatal("adaptive should have switched to the fast filter")
	}
}

func TestAdaptivePrefersSlowOnNoise(t *testing.T) {
	// Alternating extremes punish the fast filter (it chases every sample),
	// while the slow filter sits near the mean.
	p := NewAdaptive(0.99, 0.05, 0.3)
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			p.Observe(2 * sim.Ms)
		} else {
			p.Observe(18 * sim.Ms)
		}
	}
	if p.UsingFast() {
		t.Fatal("adaptive should prefer the slow filter on alternating noise")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewAdaptive(0.2, 0.8, 0.5) }, // fast <= slow
		func() { NewAdaptive(0.8, 0.2, 0) },   // decay
		func() { NewAdaptive(0.8, 0.2, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAdaptiveName(t *testing.T) {
	if NewAdaptive(0.8, 0.2, 0.5).Name() != "adaptive(0.80/0.20)" {
		t.Fatal("name format changed")
	}
}

func TestWindowQuantileBasics(t *testing.T) {
	p := NewWindowQuantile(4, 0.25)
	if p.Predict(0) != 0 {
		t.Fatal("empty window should predict 0")
	}
	for _, d := range []sim.Time{40 * sim.Ms, 10 * sim.Ms, 30 * sim.Ms, 20 * sim.Ms} {
		p.Observe(d)
	}
	// Sorted: 10,20,30,40; idx = 0.25*3 = 0 → 10ms.
	if got := p.Predict(0); got != 10*sim.Ms {
		t.Fatalf("Predict = %v, want 10ms", got)
	}
}

func TestWindowQuantileSlides(t *testing.T) {
	p := NewWindowQuantile(3, 1.0) // max of window
	for _, d := range []sim.Time{1 * sim.Ms, 2 * sim.Ms, 3 * sim.Ms} {
		p.Observe(d)
	}
	if p.Predict(0) != 3*sim.Ms {
		t.Fatalf("max = %v", p.Predict(0))
	}
	// Push out the 1ms sample; new window {9,2,3}ms (ring replaces oldest).
	p.Observe(9 * sim.Ms)
	if p.Predict(0) != 9*sim.Ms {
		t.Fatalf("max after slide = %v", p.Predict(0))
	}
}

func TestWindowQuantileMedian(t *testing.T) {
	p := NewWindowQuantile(5, 0.5)
	for _, d := range []sim.Time{50, 10, 30, 20, 40} {
		p.Observe(d * sim.Ms)
	}
	if got := p.Predict(0); got != 30*sim.Ms {
		t.Fatalf("median = %v, want 30ms", got)
	}
}

func TestWindowQuantileConservative(t *testing.T) {
	// A low quantile must never exceed the mean of a spread-out history.
	p := NewWindowQuantile(10, 0.25)
	var sum sim.Time
	for i := 1; i <= 10; i++ {
		d := sim.Time(i) * sim.Ms
		p.Observe(d)
		sum += d
	}
	mean := sum / 10
	if p.Predict(0) >= mean {
		t.Fatalf("quantile %v not below mean %v", p.Predict(0), mean)
	}
}

func TestWindowQuantileValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewWindowQuantile(0, 0.5) },
		func() { NewWindowQuantile(5, -0.1) },
		func() { NewWindowQuantile(5, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestWindowQuantileIgnoresHint(t *testing.T) {
	p := NewWindowQuantile(3, 0.5)
	p.Observe(5 * sim.Ms)
	if p.Predict(123*sim.Sec) != p.Predict(0) {
		t.Fatal("honest predictor used the hint")
	}
}
