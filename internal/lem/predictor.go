// Package lem implements the Local Energy Manager: the per-IP controller
// that selects the ON state for each task from the Table 1 policy (with
// end-of-task battery/temperature prediction), and decides — via idle-time
// prediction compared against per-state break-even times — whether to put
// the idle IP into a sleep or off state.
package lem

import (
	"fmt"

	"godpm/internal/sim"
)

// Predictor estimates the duration of the idle period that is about to
// start. The LEM compares the prediction with each sleep state's break-even
// time. Observe feeds back the actual duration once the idle period ends.
type Predictor interface {
	// Predict returns the estimated upcoming idle duration. The hint is
	// the actual upcoming idle time when the caller knows it (traffic
	// generators do); honest predictors must ignore it.
	Predict(hint sim.Time) sim.Time
	// Observe records the actual duration of the idle period that just
	// ended.
	Observe(actual sim.Time)
	// Name identifies the predictor in reports.
	Name() string
}

// LastValue predicts that the next idle period lasts exactly as long as
// the previous one.
type LastValue struct {
	last sim.Time
	seen bool
}

// Predict implements Predictor.
func (p *LastValue) Predict(sim.Time) sim.Time {
	if !p.seen {
		return 0 // conservative before any observation
	}
	return p.last
}

// Observe implements Predictor.
func (p *LastValue) Observe(actual sim.Time) {
	p.last = actual
	p.seen = true
}

// Name implements Predictor.
func (p *LastValue) Name() string { return "last-value" }

// EWMA predicts with an exponentially weighted moving average:
// pred ← α·actual + (1−α)·pred. This is the predictor the experiments use
// by default.
type EWMA struct {
	Alpha float64
	pred  float64
	seen  bool
}

// NewEWMA creates an EWMA predictor; alpha must lie in (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("lem: EWMA alpha %v outside (0,1]", alpha))
	}
	return &EWMA{Alpha: alpha}
}

// Predict implements Predictor.
func (p *EWMA) Predict(sim.Time) sim.Time {
	if !p.seen {
		return 0
	}
	return sim.Time(p.pred)
}

// Observe implements Predictor.
func (p *EWMA) Observe(actual sim.Time) {
	if !p.seen {
		p.pred = float64(actual)
		p.seen = true
		return
	}
	p.pred = p.Alpha*float64(actual) + (1-p.Alpha)*p.pred
}

// Name implements Predictor.
func (p *EWMA) Name() string { return fmt.Sprintf("ewma(%.2f)", p.Alpha) }

// Perfect is the oracle predictor: it returns the caller's hint verbatim.
// It bounds how much better any idle predictor could make the policy.
type Perfect struct{}

// Predict implements Predictor.
func (Perfect) Predict(hint sim.Time) sim.Time { return hint }

// Observe implements Predictor.
func (Perfect) Observe(sim.Time) {}

// Name implements Predictor.
func (Perfect) Name() string { return "perfect" }
