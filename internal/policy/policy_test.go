package policy

import (
	"testing"

	"godpm/internal/acpi"
	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/task"
)

func newPSM(k *sim.Kernel) *acpi.PSM {
	return acpi.NewPSM(k, "ip", power.DefaultProfile(), acpi.ON1)
}

func someTask() task.Task {
	return task.Task{ID: 1, Instructions: 1000, Class: power.InstrALU, Priority: task.Medium}
}

func TestAlwaysOnStaysOn(t *testing.T) {
	k := sim.NewKernel()
	psm := newPSM(k)
	m := NewAlwaysOn(psm)
	k.Thread("drv", func(c *sim.Ctx) {
		op := m.AcquireOn(c, someTask())
		if op.Name != "ON1" {
			t.Errorf("op %q, want ON1", op.Name)
		}
		m.ReleaseIdle(c, 10*sim.Sec)
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if psm.State() != acpi.ON1 {
		t.Fatalf("state %v, want ON1 forever", psm.State())
	}
	if psm.TransitionCount() != 0 {
		t.Fatalf("baseline made %d transitions", psm.TransitionCount())
	}
}

func TestAlwaysOnWakesFromSleepStart(t *testing.T) {
	k := sim.NewKernel()
	psm := acpi.NewPSM(k, "ip", power.DefaultProfile(), acpi.SL3)
	m := NewAlwaysOn(psm)
	var woke sim.Time
	k.Thread("drv", func(c *sim.Ctx) {
		m.AcquireOn(c, someTask())
		woke = c.Now()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	want := power.DefaultProfile().Sleep[2].WakeLatency
	if woke != want {
		t.Fatalf("woke at %v, want wake latency %v", woke, want)
	}
}

func TestFixedTimeoutSleepsAfterTimeout(t *testing.T) {
	k := sim.NewKernel()
	psm := newPSM(k)
	m := NewFixedTimeout(k, psm, 2*sim.Ms, acpi.SL2)
	k.Thread("drv", func(c *sim.Ctx) {
		m.AcquireOn(c, someTask())
		m.ReleaseIdle(c, 0)
		c.WaitTime(10 * sim.Ms) // idle long enough for the timer
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if psm.State() != acpi.SL2 {
		t.Fatalf("state %v after timeout, want SL2", psm.State())
	}
	if m.Timeouts() != 1 {
		t.Fatalf("Timeouts = %d", m.Timeouts())
	}
}

func TestFixedTimeoutCancelledByEarlyRequest(t *testing.T) {
	k := sim.NewKernel()
	psm := newPSM(k)
	m := NewFixedTimeout(k, psm, 5*sim.Ms, acpi.SL2)
	k.Thread("drv", func(c *sim.Ctx) {
		m.AcquireOn(c, someTask())
		m.ReleaseIdle(c, 0)
		c.WaitTime(1 * sim.Ms) // back before the timeout
		m.AcquireOn(c, someTask())
		c.WaitTime(20 * sim.Ms)
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if m.Timeouts() != 0 {
		t.Fatalf("timer fired %d times despite early request", m.Timeouts())
	}
	if psm.State() != acpi.ON1 {
		t.Fatalf("state %v, want ON1", psm.State())
	}
}

func TestFixedTimeoutWakeupDelaysNextTask(t *testing.T) {
	k := sim.NewKernel()
	psm := newPSM(k)
	m := NewFixedTimeout(k, psm, 1*sim.Ms, acpi.SL2)
	var startedAt sim.Time
	k.Thread("drv", func(c *sim.Ctx) {
		m.AcquireOn(c, someTask())
		m.ReleaseIdle(c, 0)
		c.WaitTime(10 * sim.Ms)
		m.AcquireOn(c, someTask())
		startedAt = c.Now()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	wake := power.DefaultProfile().Sleep[1].WakeLatency
	if startedAt < 10*sim.Ms+wake {
		t.Fatalf("second task at %v, want wake latency %v after 10ms", startedAt, wake)
	}
}

func TestFixedTimeoutValidation(t *testing.T) {
	k := sim.NewKernel()
	psm := newPSM(k)
	for _, fn := range []func(){
		func() { NewFixedTimeout(k, psm, 0, acpi.SL1) },
		func() { NewFixedTimeout(k, psm, sim.Ms, acpi.ON2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGreedySleepsImmediately(t *testing.T) {
	k := sim.NewKernel()
	psm := newPSM(k)
	m := NewGreedy(psm, acpi.SL1)
	var sleptAt sim.Time
	k.Thread("drv", func(c *sim.Ctx) {
		m.AcquireOn(c, someTask())
		m.ReleaseIdle(c, 0)
		sleptAt = c.Now()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if psm.State() != acpi.SL1 {
		t.Fatalf("state %v, want SL1", psm.State())
	}
	enter := power.DefaultProfile().Sleep[0].EnterLatency
	if sleptAt != enter {
		t.Fatalf("slept at %v, want immediately after %v enter", sleptAt, enter)
	}
}

func TestGreedyValidation(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGreedy(newPSM(k), acpi.ON1)
}

func TestOracleSleepsByActualIdle(t *testing.T) {
	prof := power.DefaultProfile()
	pIdle := prof.IdlePower(prof.On[0])
	tbe4, _ := prof.BreakEven(pIdle, prof.Sleep[3])
	tbe1, _ := prof.BreakEven(pIdle, prof.Sleep[0])

	cases := []struct {
		idle sim.Time
		want acpi.State
	}{
		{tbe4 * 2, acpi.SL4},
		{tbe1 + (tbe1 / 2), acpi.SL1},
		{tbe1 / 2, acpi.ON1}, // too short: stay on
	}
	for _, c := range cases {
		k := sim.NewKernel()
		psm := newPSM(k)
		m := NewOracle(psm)
		k.Thread("drv", func(ctx *sim.Ctx) {
			m.AcquireOn(ctx, someTask())
			m.ReleaseIdle(ctx, c.idle)
		})
		if err := k.Run(sim.MaxTime); err != nil {
			t.Fatal(err)
		}
		if psm.State() != c.want {
			t.Errorf("idle %v: state %v, want %v", c.idle, psm.State(), c.want)
		}
	}
}

func TestOracleSoftOffOption(t *testing.T) {
	k := sim.NewKernel()
	psm := newPSM(k)
	m := NewOracle(psm)
	m.AllowSoftOff = true
	k.Thread("drv", func(c *sim.Ctx) {
		m.AcquireOn(c, someTask())
		m.ReleaseIdle(c, 100*sim.Sec)
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if psm.State() != acpi.SoftOff {
		t.Fatalf("state %v, want SoftOff", psm.State())
	}
}
