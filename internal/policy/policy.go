// Package policy provides the baseline energy managers the paper's DPM
// architecture is compared against (and a few classics for ablations):
//
//   - AlwaysOn — the Table 2 reference: run every task at maximum speed,
//     never sleep;
//   - FixedTimeout — classic timeout DPM: after a fixed inactivity period,
//     drop into a fixed sleep state;
//   - Greedy — sleep immediately on idleness, always into the same state;
//   - Oracle — like the LEM's sleep selection but with a perfect idle-time
//     prediction (upper bound for predictor quality).
//
// All satisfy ip.Manager.
package policy

import (
	"fmt"

	"godpm/internal/acpi"
	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/task"
)

// transition requests target on the PSM and waits for completion, first
// draining any in-flight transition.
func transition(c *sim.Ctx, psm *acpi.PSM, target acpi.State) {
	for psm.Transitioning().Read() {
		c.Wait(psm.Done())
	}
	if psm.State() == target {
		return
	}
	if _, err := psm.Request(target); err != nil {
		panic(fmt.Sprintf("policy: %v", err))
	}
	c.Wait(psm.Done())
}

// AlwaysOn runs everything at ON1 and never sleeps. Table 2's percentages
// are computed against this manager.
type AlwaysOn struct {
	psm *acpi.PSM
}

// NewAlwaysOn creates the baseline manager for psm.
func NewAlwaysOn(psm *acpi.PSM) *AlwaysOn { return &AlwaysOn{psm: psm} }

// AcquireOn implements ip.Manager.
func (m *AlwaysOn) AcquireOn(c *sim.Ctx, _ task.Task) power.OperatingPoint {
	transition(c, m.psm, acpi.ON1)
	return m.psm.Profile().On[0]
}

// ReleaseIdle implements ip.Manager (the baseline stays clocked).
func (m *AlwaysOn) ReleaseIdle(*sim.Ctx, sim.Time) {}

// FixedTimeout is the classic timeout policy: when the IP has been idle for
// Timeout, the PSM drops into SleepState. Tasks always execute at ON1.
type FixedTimeout struct {
	k          *sim.Kernel
	psm        *acpi.PSM
	Timeout    sim.Time
	SleepState acpi.State

	idle     bool
	idleGen  int
	timerEv  *sim.Event
	timeouts int
}

// NewFixedTimeout creates a timeout manager (classic DPM reference).
func NewFixedTimeout(k *sim.Kernel, psm *acpi.PSM, timeout sim.Time, sleepState acpi.State) *FixedTimeout {
	if timeout <= 0 {
		panic("policy: timeout must be positive")
	}
	if sleepState.IsOn() {
		panic("policy: timeout sleep state must not be an ON state")
	}
	m := &FixedTimeout{k: k, psm: psm, Timeout: timeout, SleepState: sleepState,
		timerEv: k.NewEvent("timeout.timer")}
	k.Method("timeout.policy", m.onTimer).Sensitive(m.timerEv).DontInitialize()
	return m
}

// onTimer fires when the inactivity timer expires; if the IP is still idle
// and the PSM is stable in an ON state, start the sleep transition.
func (m *FixedTimeout) onTimer() {
	if m.idle && !m.psm.Transitioning().Read() && m.psm.State().IsOn() {
		m.timeouts++
		if _, err := m.psm.Request(m.SleepState); err != nil {
			panic(fmt.Sprintf("policy: timeout: %v", err))
		}
	}
}

// AcquireOn implements ip.Manager.
func (m *FixedTimeout) AcquireOn(c *sim.Ctx, _ task.Task) power.OperatingPoint {
	m.idle = false
	m.timerEv.Cancel()
	transition(c, m.psm, acpi.ON1)
	return m.psm.Profile().On[0]
}

// ReleaseIdle implements ip.Manager: it arms the inactivity timer.
func (m *FixedTimeout) ReleaseIdle(c *sim.Ctx, _ sim.Time) {
	m.idle = true
	m.timerEv.Notify(m.Timeout)
}

// Timeouts returns how many times the timer put the IP to sleep.
func (m *FixedTimeout) Timeouts() int { return m.timeouts }

// Greedy sleeps immediately whenever the IP goes idle, always into
// SleepState; tasks execute at ON1.
type Greedy struct {
	psm        *acpi.PSM
	SleepState acpi.State
}

// NewGreedy creates a greedy manager.
func NewGreedy(psm *acpi.PSM, sleepState acpi.State) *Greedy {
	if sleepState.IsOn() {
		panic("policy: greedy sleep state must not be an ON state")
	}
	return &Greedy{psm: psm, SleepState: sleepState}
}

// AcquireOn implements ip.Manager.
func (m *Greedy) AcquireOn(c *sim.Ctx, _ task.Task) power.OperatingPoint {
	transition(c, m.psm, acpi.ON1)
	return m.psm.Profile().On[0]
}

// ReleaseIdle implements ip.Manager.
func (m *Greedy) ReleaseIdle(c *sim.Ctx, _ sim.Time) {
	transition(c, m.psm, m.SleepState)
}

// Oracle executes at ON1 and, on idleness, picks the deepest sleep state
// whose break-even time fits the *actual* upcoming idle duration (it trusts
// the hint). It is the upper bound for any timeout/predictive sleeping
// policy that keeps tasks at full speed.
type Oracle struct {
	psm *acpi.PSM
	// AllowSoftOff permits soft-off as a target.
	AllowSoftOff bool
}

// NewOracle creates an oracle manager.
func NewOracle(psm *acpi.PSM) *Oracle { return &Oracle{psm: psm} }

// AcquireOn implements ip.Manager.
func (m *Oracle) AcquireOn(c *sim.Ctx, _ task.Task) power.OperatingPoint {
	transition(c, m.psm, acpi.ON1)
	return m.psm.Profile().On[0]
}

// ReleaseIdle implements ip.Manager.
func (m *Oracle) ReleaseIdle(c *sim.Ctx, hint sim.Time) {
	prof := m.psm.Profile()
	s := m.psm.State()
	if !s.IsOn() {
		return
	}
	pIdle := prof.IdlePower(prof.On[s.OnIndex()])
	deepest := 3
	if m.AllowSoftOff {
		deepest = 4
	}
	for i := deepest; i >= 0; i-- {
		tbe, ok := prof.BreakEven(pIdle, prof.Sleep[i])
		if ok && hint >= tbe {
			transition(c, m.psm, acpi.SleepStateByIndex(i))
			return
		}
	}
}
