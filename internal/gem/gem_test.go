package gem

import (
	"testing"

	"godpm/internal/battery"
	"godpm/internal/sim"
	"godpm/internal/thermal"
)

// rig bundles a GEM with a controllable battery and thermal node.
type rig struct {
	k     *sim.Kernel
	model *battery.Linear
	pack  *battery.Pack
	node  *thermal.Node
	gem   *GEM
	ids   []int
}

func newRig(t *testing.T, soc, tempC float64, prios ...int) *rig {
	t.Helper()
	k := sim.NewKernel()
	model := battery.NewLinear(100, soc)
	pack := battery.NewPack(k, "bat", model, battery.DefaultThresholds(), false)
	node := thermal.NewNode(k, "die", thermal.DefaultParams(), tempC)
	g := New(k, "gem", DefaultConfig(), pack, node)
	r := &rig{k: k, model: model, pack: pack, node: node, gem: g}
	for i, p := range prios {
		id, err := g.Register(nameOf(i), p, nil)
		if err != nil {
			t.Fatal(err)
		}
		r.ids = append(r.ids, id)
	}
	return r
}

func nameOf(i int) string { return string(rune('a' + i)) }

// settle runs the kernel one instant so pending evaluations apply.
func (r *rig) settle(t *testing.T) {
	t.Helper()
	if err := r.k.Run(r.k.Now() + 1); err != nil {
		t.Fatal(err)
	}
}

func TestEnableAllWhenHealthy(t *testing.T) {
	r := newRig(t, 0.95, 50, 1, 2, 3, 4)
	r.settle(t)
	for _, id := range r.ids {
		if !r.gem.Enabled(id) {
			t.Fatalf("IP %d disabled despite full battery and low temp", id)
		}
	}
	if r.node.FanOn() {
		t.Fatal("fan on in the healthy branch")
	}
}

func TestEnableHighPriorityOnlyWhenBatteryLow(t *testing.T) {
	r := newRig(t, 0.2, 50, 1, 2, 3, 4)
	r.settle(t)
	want := []bool{true, true, false, false} // cutoff 2
	for i, id := range r.ids {
		if r.gem.Enabled(id) != want[i] {
			t.Fatalf("IP prio %d enabled=%v, want %v", i+1, r.gem.Enabled(id), want[i])
		}
	}
}

func TestDisableAllAndFanWhenHot(t *testing.T) {
	r := newRig(t, 0.95, 90, 1, 2)
	r.settle(t)
	for _, id := range r.ids {
		if r.gem.Enabled(id) {
			t.Fatal("IP enabled despite high temperature")
		}
	}
	if !r.node.FanOn() {
		t.Fatal("fan not switched on in the limited-resources branch")
	}
	if r.gem.FanSwitches() != 1 {
		t.Fatalf("FanSwitches = %d", r.gem.FanSwitches())
	}
}

func TestMainsTreatedAsHealthy(t *testing.T) {
	k := sim.NewKernel()
	pack := battery.NewPack(k, "psu", battery.NewLinear(100, 0.1), battery.DefaultThresholds(), true)
	node := thermal.NewNode(k, "die", thermal.DefaultParams(), 50)
	g := New(k, "gem", DefaultConfig(), pack, node)
	id, err := g.Register("a", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if !g.Enabled(id) {
		t.Fatal("mains-powered SoC should enable everyone")
	}
}

func TestReevaluationOnClassChange(t *testing.T) {
	r := newRig(t, 0.95, 50, 1, 4)
	r.settle(t)
	if !r.gem.Enabled(r.ids[1]) {
		t.Fatal("setup: all enabled")
	}
	changes := 0
	r.k.Method("watch", func() { changes++ }).Sensitive(r.gem.Changed()).DontInitialize()

	// Battery collapses to Low: the pack steps and the class change must
	// re-run the GEM policy, disabling priority 4.
	drain := r.k.NewEvent("drain")
	r.k.Method("drainer", func() {
		r.model.Recharge(0.2)
		r.pack.Step(0, sim.Time(1))
	}).Sensitive(drain).DontInitialize()
	drain.Notify(sim.Ms)
	if err := r.k.Run(10 * sim.Ms); err != nil {
		t.Fatal(err)
	}
	if r.gem.Enabled(r.ids[1]) {
		t.Fatal("priority 4 still enabled after battery dropped to Low")
	}
	if !r.gem.Enabled(r.ids[0]) {
		t.Fatal("priority 1 must stay enabled")
	}
	if changes != 1 {
		t.Fatalf("Changed fired %d times, want 1", changes)
	}
	if r.gem.Evaluations() < 2 {
		t.Fatalf("Evaluations = %d, want >= 2", r.gem.Evaluations())
	}
}

func TestFanRecoveryReenables(t *testing.T) {
	r := newRig(t, 0.95, 90, 1)
	r.settle(t)
	if r.gem.Enabled(r.ids[0]) {
		t.Fatal("setup: disabled when hot")
	}
	// The fan (now on) cools the die below the hysteresis band.
	cool := r.k.NewEvent("cool")
	r.k.Method("cooler", func() {
		r.node.Step(0, 5*sim.Ms)
		if r.node.Class() == thermal.HighTemp {
			cool.Notify(sim.Ms)
		}
	}).Sensitive(cool).DontInitialize()
	cool.Notify(sim.Ms)
	if err := r.k.Run(100 * sim.Ms); err != nil {
		t.Fatal(err)
	}
	if !r.gem.Enabled(r.ids[0]) {
		t.Fatal("IP not re-enabled after cooling")
	}
	if r.node.FanOn() {
		t.Fatal("fan still on after recovery")
	}
}

func TestOtherPowerExcludesSelf(t *testing.T) {
	k := sim.NewKernel()
	pack := battery.NewPack(k, "bat", battery.NewLinear(100, 0.95), battery.DefaultThresholds(), false)
	node := thermal.NewNode(k, "die", thermal.DefaultParams(), 50)
	g := New(k, "gem", DefaultConfig(), pack, node)
	p0, p1 := 0.5, 0.25
	id0, _ := g.Register("a", 1, func() float64 { return p0 })
	id1, _ := g.Register("b", 2, func() float64 { return p1 })
	if got := g.OtherPower(id0); got != p1 {
		t.Fatalf("OtherPower(0) = %v, want %v", got, p1)
	}
	if got := g.OtherPower(id1); got != p0 {
		t.Fatalf("OtherPower(1) = %v, want %v", got, p0)
	}
	if got := g.TotalPower(); got != p0+p1 {
		t.Fatalf("TotalPower = %v", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := newRig(t, 0.95, 50, 1)
	if _, err := r.gem.Register("bad", 0, nil); err == nil {
		t.Fatal("priority 0 accepted")
	}
	r.settle(t)
	if _, err := r.gem.Register("late", 1, nil); err == nil {
		t.Fatal("registration after start accepted")
	}
}

func TestRequestsCounted(t *testing.T) {
	r := newRig(t, 0.95, 50, 1)
	r.gem.NotifyRequest(r.ids[0])
	r.gem.NotifyRequest(r.ids[0])
	if r.gem.Requests(r.ids[0]) != 2 {
		t.Fatalf("Requests = %d", r.gem.Requests(r.ids[0]))
	}
	if r.gem.NumIPs() != 1 || r.gem.Priority(r.ids[0]) != 1 {
		t.Fatal("registry accessors wrong")
	}
}

func TestCutoffConfigurable(t *testing.T) {
	k := sim.NewKernel()
	pack := battery.NewPack(k, "bat", battery.NewLinear(100, 0.2), battery.DefaultThresholds(), false)
	node := thermal.NewNode(k, "die", thermal.DefaultParams(), 50)
	g := New(k, "gem", Config{HighPriorityCutoff: 3}, pack, node)
	id3, _ := g.Register("c", 3, nil)
	id4, _ := g.Register("d", 4, nil)
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if !g.Enabled(id3) || g.Enabled(id4) {
		t.Fatalf("cutoff 3: enabled(3)=%v enabled(4)=%v", g.Enabled(id3), g.Enabled(id4))
	}
}

func TestBusCongestionLimitsEnables(t *testing.T) {
	k := sim.NewKernel()
	pack := battery.NewPack(k, "bat", battery.NewLinear(100, 0.95), battery.DefaultThresholds(), false)
	node := thermal.NewNode(k, "die", thermal.DefaultParams(), 50)
	cfg := DefaultConfig()
	cfg.BusOccupancyLimit = 0.5
	g := New(k, "gem", cfg, pack, node)
	occupancy := 0.2
	g.SetBusProbe(func() float64 { return occupancy })
	id1, _ := g.Register("a", 1, nil)
	id4, _ := g.Register("d", 4, nil)
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if !g.Enabled(id1) || !g.Enabled(id4) {
		t.Fatal("uncongested bus should enable everyone")
	}
	// Congest the bus and force a re-evaluation.
	occupancy = 0.9
	g.Reevaluate()
	if !g.Enabled(id1) {
		t.Fatal("high priority must survive congestion")
	}
	if g.Enabled(id4) {
		t.Fatal("low priority should be disabled under congestion")
	}
	// Clearing congestion restores everyone.
	occupancy = 0.1
	g.Reevaluate()
	if !g.Enabled(id4) {
		t.Fatal("low priority not restored after congestion cleared")
	}
}

func TestBusLimitWithoutProbeIgnored(t *testing.T) {
	k := sim.NewKernel()
	pack := battery.NewPack(k, "bat", battery.NewLinear(100, 0.95), battery.DefaultThresholds(), false)
	node := thermal.NewNode(k, "die", thermal.DefaultParams(), 50)
	cfg := DefaultConfig()
	cfg.BusOccupancyLimit = 0.5
	g := New(k, "gem", cfg, pack, node)
	id, _ := g.Register("a", 4, nil)
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if !g.Enabled(id) {
		t.Fatal("limit without probe must not disable anyone")
	}
}
