// Package gem implements the Global Energy Manager: it receives resource
// requests from every IP block, assigns each a static priority, grants or
// revokes execution permission from the SoC-level view (battery status and
// chip temperature), reports to each LEM the power requested by the other
// IPs, can force low-priority PSMs into Sleep1 when resources are limited,
// and switches the supplementary fan when the chip overheats.
//
// The algorithm is the paper's, verbatim:
//
//	if (battery is Medium or High or Full) and (temperature is Low or Medium):
//	    enable every IP
//	else if (battery is Empty or Low) and (temperature is Low or Medium):
//	    enable IPs with high priority
//	else:
//	    do not enable any IP; switch on a supplementary fan
//
// Mains power is treated like a full battery. "High priority" means a
// static priority of at most HighPriorityCutoff (1 = highest).
package gem

import (
	"fmt"

	"godpm/internal/battery"
	"godpm/internal/sim"
	"godpm/internal/thermal"
)

// Config parameterises the GEM.
type Config struct {
	// HighPriorityCutoff: IPs with static priority <= cutoff count as
	// "high priority" in the limited-resources branch. Default 2.
	HighPriorityCutoff int
	// BusOccupancyLimit, when positive, adds the paper's "bus occupation"
	// resource: while the observed occupancy exceeds the limit, the GEM
	// treats the SoC as resource-limited (only high-priority IPs run)
	// even with a healthy battery. Requires SetBusProbe.
	BusOccupancyLimit float64
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() Config { return Config{HighPriorityCutoff: 2} }

type ipEntry struct {
	name     string
	priority int // static, 1 = highest
	powerNow func() float64
	enabled  bool
	requests int
}

// GEM is the global energy manager component.
type GEM struct {
	k       *sim.Kernel
	name    string
	cfg     Config
	pack    *battery.Pack
	node    thermal.FanSource
	ips     []*ipEntry
	changed *sim.Event
	sealed  bool

	evaluations int
	fanSwitches int

	busProbe func() float64
}

// New creates a GEM observing the given battery pack and thermal node. IPs
// are registered before the simulation starts; the GEM re-evaluates its
// enable decisions whenever the battery or temperature class changes.
func New(k *sim.Kernel, name string, cfg Config, pack *battery.Pack, node thermal.FanSource) *GEM {
	if cfg.HighPriorityCutoff <= 0 {
		cfg.HighPriorityCutoff = DefaultConfig().HighPriorityCutoff
	}
	g := &GEM{
		k: k, name: name, cfg: cfg, pack: pack, node: node,
		changed: k.NewEvent(name + ".changed"),
	}
	k.Method(name+".policy", g.evaluate).
		Sensitive(pack.StatusSignal().Changed(), node.ClassSignal().Changed())
	return g
}

// Register adds an IP with its static priority (1 = highest) and a probe
// returning the IP's current power draw. It returns the IP's GEM id.
// Registration must precede the first evaluation (simulation start).
func (g *GEM) Register(name string, staticPriority int, powerNow func() float64) (int, error) {
	if g.sealed {
		return 0, fmt.Errorf("gem: %s: registration after simulation start", g.name)
	}
	if staticPriority < 1 {
		return 0, fmt.Errorf("gem: %s: static priority must be >= 1", g.name)
	}
	if powerNow == nil {
		powerNow = func() float64 { return 0 }
	}
	g.ips = append(g.ips, &ipEntry{name: name, priority: staticPriority, powerNow: powerNow})
	return len(g.ips) - 1, nil
}

// evaluate recomputes the enable set; it runs once at simulation start and
// then on every battery/temperature class change.
func (g *GEM) evaluate() {
	g.sealed = true
	g.evaluations++
	batt := g.pack.Status()
	temp := g.node.Class()

	battOK := batt == battery.Medium || batt == battery.High || batt == battery.Full || batt == battery.Mains
	battLow := batt == battery.Empty || batt == battery.Low
	tempOK := temp == thermal.LowTemp || temp == thermal.MediumTemp
	busCongested := g.cfg.BusOccupancyLimit > 0 && g.busProbe != nil &&
		g.busProbe() > g.cfg.BusOccupancyLimit

	wantFan := false
	decide := func(e *ipEntry) bool {
		switch {
		case battOK && tempOK && !busCongested:
			return true
		case (battLow || busCongested) && tempOK:
			return e.priority <= g.cfg.HighPriorityCutoff
		default:
			wantFan = true
			return false
		}
	}
	anyChange := false
	for _, e := range g.ips {
		en := decide(e)
		if en != e.enabled {
			e.enabled = en
			anyChange = true
		}
	}
	if g.node.FanOn() != wantFan {
		g.node.SetFan(wantFan)
		g.fanSwitches++
	}
	if anyChange {
		g.changed.NotifyDelta()
	}
}

// SetBusProbe attaches the bus-occupancy source for Config.
// BusOccupancyLimit. The probe is read on every policy evaluation.
func (g *GEM) SetBusProbe(probe func() float64) { g.busProbe = probe }

// Reevaluate forces a policy evaluation outside the class-change
// sensitivity, e.g. from a periodic process when a bus probe is attached
// (occupancy changes continuously, not via class events).
func (g *GEM) Reevaluate() { g.evaluate() }

// Enabled reports whether the IP may execute. LEMs consult this before
// granting a task and park their PSM in SL1 when disabled.
func (g *GEM) Enabled(id int) bool { return g.ips[id].enabled }

// Changed fires whenever at least one IP's enable decision flips.
func (g *GEM) Changed() *sim.Event { return g.changed }

// NotifyRequest records that an IP's LEM forwarded a task request (the
// paper's "the LEM forwards the request to the GEM").
func (g *GEM) NotifyRequest(id int) { g.ips[id].requests++ }

// Requests returns how many task requests the IP forwarded.
func (g *GEM) Requests(id int) int { return g.ips[id].requests }

// OtherPower returns the current total power drawn by all IPs except id —
// the "energy requested by the other IP blocks" the LEM folds into its
// battery/temperature predictions.
func (g *GEM) OtherPower(id int) float64 {
	var sum float64
	for i, e := range g.ips {
		if i != id {
			sum += e.powerNow()
		}
	}
	return sum
}

// TotalPower returns the current total power of all registered IPs.
func (g *GEM) TotalPower() float64 {
	var sum float64
	for _, e := range g.ips {
		sum += e.powerNow()
	}
	return sum
}

// NumIPs returns the number of registered IPs.
func (g *GEM) NumIPs() int { return len(g.ips) }

// Evaluations returns how many times the policy ran.
func (g *GEM) Evaluations() int { return g.evaluations }

// FanSwitches returns how many times the fan was toggled.
func (g *GEM) FanSwitches() int { return g.fanSwitches }

// Priority returns the static priority of the IP.
func (g *GEM) Priority(id int) int { return g.ips[id].priority }
