package experiments

import (
	"testing"

	"godpm/internal/soc"
)

func TestExtensionsListAndLookup(t *testing.T) {
	tn := DefaultTuning()
	exts := Extensions(tn)
	if len(exts) != 3 {
		t.Fatalf("got %d extensions", len(exts))
	}
	for _, s := range exts {
		if s.Description == "" {
			t.Errorf("%s: empty description", s.ID)
		}
		if _, err := ExtensionByID(s.ID, tn); err != nil {
			t.Errorf("ExtensionByID(%s): %v", s.ID, err)
		}
	}
	if _, err := ExtensionByID("nope", tn); err == nil {
		t.Fatal("unknown extension accepted")
	}
}

func TestBPerIPRuns(t *testing.T) {
	tn := quickTuning()
	row, err := RunScenario(BPerIP(tn))
	if err != nil {
		t.Fatal(err)
	}
	if !row.DPM.Completed {
		t.Fatal("B-perip did not complete")
	}
	if row.EnergySavingPct <= 0 {
		t.Fatalf("saving %v", row.EnergySavingPct)
	}
}

func TestBOpenLoopRuns(t *testing.T) {
	tn := quickTuning()
	s := BOpenLoop(tn)
	for _, spec := range s.Config.IPs {
		if len(spec.Sequence) != 0 || len(spec.Arrivals) == 0 {
			t.Fatal("open-loop conversion incomplete")
		}
	}
	row, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if !row.DPM.Completed {
		t.Fatal("B-openloop did not complete")
	}
	// Open-loop queueing makes the delay overhead at least as large as a
	// trivial floor.
	if row.DelayOverheadPct <= 0 {
		t.Fatalf("delay overhead %v", row.DelayOverheadPct)
	}
}

func TestA1RegulatorDrainsMore(t *testing.T) {
	tn := quickTuning()
	plain, err := RunScenario(A1(tn))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := RunScenario(A1Regulator(tn))
	if err != nil {
		t.Fatal(err)
	}
	if reg.DPM.FinalSoC >= plain.DPM.FinalSoC {
		t.Fatalf("regulator losses missing: %v vs %v", reg.DPM.FinalSoC, plain.DPM.FinalSoC)
	}
}

func TestAblationsWellFormed(t *testing.T) {
	tn := DefaultTuning()
	abls := Ablations(tn)
	want := map[string]int{"predictor": 5, "breakeven": 2, "battery": 2, "gem": 2}
	if len(abls) != len(want) {
		t.Fatalf("got %d ablations", len(abls))
	}
	for _, a := range abls {
		n, ok := want[a.Name]
		if !ok {
			t.Errorf("unexpected ablation %q", a.Name)
			continue
		}
		if len(a.Variants) != n {
			t.Errorf("%s has %d variants, want %d", a.Name, len(a.Variants), n)
		}
		for _, v := range a.Variants {
			if v.Label == "" || len(v.Config.IPs) == 0 {
				t.Errorf("%s: malformed variant %+v", a.Name, v.Label)
			}
		}
	}
}

func TestAblationVariantsRunnable(t *testing.T) {
	// One cheap variant per ablation actually executes.
	tn := quickTuning()
	tn.NumTasks = 10
	for _, a := range Ablations(tn) {
		v := a.Variants[len(a.Variants)-1]
		res, err := soc.Run(v.Config)
		if err != nil {
			t.Fatalf("%s/%s: %v", a.Name, v.Label, err)
		}
		if res.TasksDone == 0 {
			t.Fatalf("%s/%s: nothing ran", a.Name, v.Label)
		}
	}
}
