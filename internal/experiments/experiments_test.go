package experiments

import (
	"strings"
	"testing"

	"godpm/internal/soc"
)

// quickTuning keeps unit-test runtime low; the benchmarks use DefaultTuning.
func quickTuning() Tuning {
	t := DefaultTuning()
	t.NumTasks = 40
	return t
}

func TestAllScenarioIDs(t *testing.T) {
	want := []string{"A1", "A2", "A3", "A4", "B", "C"}
	all := All(DefaultTuning())
	if len(all) != len(want) {
		t.Fatalf("got %d scenarios", len(all))
	}
	for i, s := range all {
		if s.ID != want[i] {
			t.Errorf("scenario %d = %q, want %q", i, s.ID, want[i])
		}
		if s.Description == "" {
			t.Errorf("%s has no description", s.ID)
		}
	}
}

func TestByID(t *testing.T) {
	s, err := ByID("B", DefaultTuning())
	if err != nil || s.ID != "B" {
		t.Fatalf("ByID(B) = %v,%v", s.ID, err)
	}
	if _, err := ByID("Z9", DefaultTuning()); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestScenarioStructure(t *testing.T) {
	tn := DefaultTuning()
	for _, s := range []Scenario{A1(tn), A2(tn), A3(tn), A4(tn)} {
		if len(s.Config.IPs) != 1 || s.Config.UseGEM {
			t.Errorf("%s: single-IP scenario misconfigured", s.ID)
		}
	}
	for _, s := range []Scenario{B(tn), C(tn)} {
		if len(s.Config.IPs) != 4 || !s.Config.UseGEM {
			t.Errorf("%s: multi-IP scenario misconfigured", s.ID)
		}
		for i, spec := range s.Config.IPs {
			if spec.StaticPriority != i+1 {
				t.Errorf("%s: IP %d priority %d", s.ID, i, spec.StaticPriority)
			}
		}
	}
	// B gives the high-activity workloads to the high-priority IPs; C
	// inverts that. High activity = less total idle.
	b, c := B(tn), C(tn)
	bIdle1 := b.Config.IPs[0].Sequence.TotalIdle()
	bIdle4 := b.Config.IPs[3].Sequence.TotalIdle()
	if bIdle1 >= bIdle4 {
		t.Errorf("B: IP1 idle %v not below IP4 idle %v", bIdle1, bIdle4)
	}
	cIdle1 := c.Config.IPs[0].Sequence.TotalIdle()
	cIdle4 := c.Config.IPs[3].Sequence.TotalIdle()
	if cIdle1 <= cIdle4 {
		t.Errorf("C: IP1 idle %v not above IP4 idle %v", cIdle1, cIdle4)
	}
}

func TestBaselineDerivation(t *testing.T) {
	s := B(DefaultTuning())
	base := Baseline(s)
	if base.Policy != soc.PolicyAlwaysOn || base.UseGEM {
		t.Fatal("baseline must be always-on without GEM")
	}
	// Same workloads, same environment.
	if len(base.IPs) != len(s.Config.IPs) {
		t.Fatal("baseline changed the IP set")
	}
	for i := range base.IPs {
		if len(base.IPs[i].Sequence) != len(s.Config.IPs[i].Sequence) {
			t.Fatal("baseline changed a workload")
		}
	}
	if base.InitialTempC != s.Config.InitialTempC {
		t.Fatal("baseline changed the thermal start")
	}
	// Deriving the baseline must not mutate the scenario.
	if s.Config.Policy != soc.PolicyDPM || !s.Config.UseGEM {
		t.Fatal("Baseline mutated the scenario config")
	}
}

func TestPaperTable2Complete(t *testing.T) {
	for _, s := range All(DefaultTuning()) {
		if _, ok := PaperTable2[s.ID]; !ok {
			t.Errorf("PaperTable2 missing %s", s.ID)
		}
	}
	if len(PaperTable2) != 6 {
		t.Errorf("PaperTable2 has %d rows", len(PaperTable2))
	}
}

func TestRunScenarioA1Shape(t *testing.T) {
	row, err := RunScenario(A1(quickTuning()))
	if err != nil {
		t.Fatal(err)
	}
	if !row.DPM.Completed || !row.Base.Completed {
		t.Fatal("runs did not complete")
	}
	if row.EnergySavingPct <= 0 {
		t.Fatalf("A1 energy saving %v, want positive", row.EnergySavingPct)
	}
	if row.DelayOverheadPct <= 0 || row.DelayOverheadPct > 150 {
		t.Fatalf("A1 delay overhead %v, want moderate positive", row.DelayOverheadPct)
	}
	if row.TempReductionPct <= 0 {
		t.Fatalf("A1 temp reduction %v, want positive", row.TempReductionPct)
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	// The headline claim: low-battery runs (A2) save much more energy than
	// full-battery runs (A1) at drastically higher delay; temperature
	// control stays positive everywhere.
	tn := quickTuning()
	a1, err := RunScenario(A1(tn))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RunScenario(A2(tn))
	if err != nil {
		t.Fatal(err)
	}
	if a2.EnergySavingPct <= a1.EnergySavingPct {
		t.Errorf("A2 saving %v not above A1 %v", a2.EnergySavingPct, a1.EnergySavingPct)
	}
	if a2.DelayOverheadPct <= 2*a1.DelayOverheadPct {
		t.Errorf("A2 delay %v not well above A1 %v", a2.DelayOverheadPct, a1.DelayOverheadPct)
	}
	if a2.DelayOverheadPct < 200 {
		t.Errorf("A2 delay %v, want the ≈300%% ON4 signature", a2.DelayOverheadPct)
	}
}

func TestScenarioBRunsWithGEM(t *testing.T) {
	// The GEM's hold-back of low-priority IPs needs the battery to be
	// pinned at the Low/Medium boundary, which takes a longer run than the
	// other tests: 80 tasks per IP.
	tn := DefaultTuning()
	tn.NumTasks = 80
	row, err := RunScenario(B(tn))
	if err != nil {
		t.Fatal(err)
	}
	if !row.DPM.Completed {
		t.Fatal("B did not complete")
	}
	if row.DPM.GEMEvaluations == 0 {
		t.Fatal("GEM never evaluated in B")
	}
	if row.EnergySavingPct < 30 {
		t.Fatalf("B saving %v, want the large multi-IP saving", row.EnergySavingPct)
	}
	// Low-priority IPs must actually have been held back at least once.
	parked := 0
	for _, st := range row.DPM.LEMStats {
		parked += st.ParkEvents
	}
	if parked == 0 {
		t.Fatal("no IP was ever parked in B")
	}
}

func TestFormatTable2(t *testing.T) {
	rows := []Row{{ID: "A1", EnergySavingPct: 40.7, TempReductionPct: 11.7, DelayOverheadPct: 38.7}}
	out := FormatTable2(rows)
	for _, want := range []string{"A1", "Energy saving", "paper", "measured", "40.7", "39"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable2 missing %q:\n%s", want, out)
		}
	}
}

func TestTopology(t *testing.T) {
	out := Topology(B(DefaultTuning()))
	for _, want := range []string{"GEM", "battery", "thermal", "BUS", "ip1", "ip4", "PSM", "LEM"} {
		if !strings.Contains(out, want) {
			t.Errorf("Topology missing %q:\n%s", want, out)
		}
	}
	single := Topology(A1(DefaultTuning()))
	if strings.Contains(single, "GEM") {
		t.Error("single-IP topology should not mention a GEM")
	}
}

func TestScenariosAreDeterministic(t *testing.T) {
	tn := quickTuning()
	r1, err := RunScenario(A2(tn))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(A2(tn))
	if err != nil {
		t.Fatal(err)
	}
	if r1.EnergySavingPct != r2.EnergySavingPct || r1.DelayOverheadPct != r2.DelayOverheadPct {
		t.Fatalf("non-deterministic rows: %+v vs %+v", r1, r2)
	}
}
