// Package experiments defines the paper's six SystemC experiments (Table 2
// rows A1–A4, B and C), pairs each DPM run with its always-on baseline on
// the identical workload, and computes the energy-saving, temperature-
// reduction and delay-overhead percentages. It also regenerates the
// structural artefacts: Fig. 1 (the component topology) and Table 1 (the
// selection policy).
package experiments

import (
	"fmt"
	"strings"

	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/stats"
	"godpm/internal/task"
	"godpm/internal/workload"
)

// Scenario is one experiment: a DPM configuration plus its description.
type Scenario struct {
	ID          string
	Description string
	Config      soc.Config
}

// Tuning collects the knobs shared by all scenarios, so ablations can vary
// them coherently.
type Tuning struct {
	// NumTasks per IP.
	NumTasks int
	// Seed bases the per-IP workload seeds.
	Seed int64
	// BusWords per service request.
	BusWords int
	// Horizon bounds every run.
	Horizon sim.Time
}

// DefaultTuning returns the experiments' default workload knobs.
func DefaultTuning() Tuning {
	return Tuning{NumTasks: 120, Seed: 1, BusWords: 32, Horizon: 300 * sim.Sec}
}

// batteryFull / batteryLow / batteryLowShared choose the battery for the
// scenario classes. The single-IP scenarios use a small pack whose class
// barely moves; the multi-IP GEM scenarios use a pack sized so the KiBaM
// recovery effect swings the class across the Low/Medium boundary — that
// swing is what lets low-priority IPs make progress.
func batteryFull() soc.BatteryConfig { return soc.DefaultBattery(0.95) }
func batteryLow() soc.BatteryConfig  { return soc.DefaultBattery(0.25) }
func batteryLowShared() soc.BatteryConfig {
	// Sized so that (a) the full-SoC load dips the sensed charge below the
	// Low/Medium boundary (P/(k·capacity) > boundary−initial), while (b)
	// the whole run's energy leaves the recovery ceiling above it
	// (E_total/capacity < initial−boundary).
	return soc.BatteryConfig{
		Kind: "kibam", CapacityJ: 1600, InitialSoC: 0.303,
		KiBaMC: 0.10, KiBaMK: 0.05,
	}
}

const (
	tempLowC  = 50.0
	tempHighC = 90.0
)

// mixedPriorities weights the single-IP scenarios' task priorities so all
// four classes of Table 1 are exercised.
func mixedPriorities(p workload.Profile) workload.Profile {
	p.PriorityWeights = [task.NumPriorities]float64{1, 2, 2, 1}
	return p
}

// singleIP builds the A-series scenarios: one IP, one LEM/PSM, no GEM.
func singleIP(id, desc string, batt soc.BatteryConfig, initialTempC float64, t Tuning) Scenario {
	seq := mixedPriorities(workload.HighActivity(t.Seed, t.NumTasks)).MustGenerate()
	return Scenario{
		ID:          id,
		Description: desc,
		Config: soc.Config{
			IPs:          []soc.IPSpec{{Name: "ip0", Sequence: seq}},
			Policy:       soc.PolicyDPM,
			Battery:      batt,
			InitialTempC: initialTempC,
			BusWords:     t.BusWords,
			Horizon:      t.Horizon,
		},
	}
}

// A1 — battery Full, temperature Low.
func A1(t Tuning) Scenario {
	return singleIP("A1", "Battery Full, Temperature Low", batteryFull(), tempLowC, t)
}

// A2 — battery Low, temperature Low.
func A2(t Tuning) Scenario {
	return singleIP("A2", "Battery Low, Temperature Low", batteryLow(), tempLowC, t)
}

// A3 — battery Full, temperature High.
func A3(t Tuning) Scenario {
	return singleIP("A3", "Battery Full, Temperature High", batteryFull(), tempHighC, t)
}

// A4 — battery Low, temperature High.
func A4(t Tuning) Scenario {
	return singleIP("A4", "Battery Low, Temperature High", batteryLow(), tempHighC, t)
}

// multiIP builds the B/C scenarios: four IPs with a GEM, battery Low,
// temperature Low. highFirst selects whether the high-priority IPs carry
// the high-activity workloads (B) or the low-activity ones (C).
func multiIP(id, desc string, highFirst bool, t Tuning) Scenario {
	specs := make([]soc.IPSpec, 4)
	for i := 0; i < 4; i++ {
		var prof workload.Profile
		isHigh := (i < 2) == highFirst
		if isHigh {
			prof = workload.HighActivity(t.Seed+int64(i), t.NumTasks)
		} else {
			prof = workload.LowActivity(t.Seed+int64(i), t.NumTasks)
		}
		specs[i] = soc.IPSpec{
			Name:           fmt.Sprintf("ip%d", i+1),
			Sequence:       mixedPriorities(prof).MustGenerate(),
			StaticPriority: i + 1,
		}
	}
	return Scenario{
		ID:          id,
		Description: desc,
		Config: soc.Config{
			IPs:          specs,
			Policy:       soc.PolicyDPM,
			UseGEM:       true,
			Battery:      batteryLowShared(),
			InitialTempC: tempLowC,
			BusWords:     t.BusWords,
			Horizon:      t.Horizon,
		},
	}
}

// B — battery Low, temperature Low; IP1/IP2 (priorities 1–2) high activity,
// IP3/IP4 low activity.
func B(t Tuning) Scenario {
	return multiIP("B", "Battery Low, Temp Low: high-priority IPs busy", true, t)
}

// C — battery Low, temperature Low; IP1/IP2 low activity, IP3/IP4
// (priorities 3–4) high activity.
func C(t Tuning) Scenario {
	return multiIP("C", "Battery Low, Temp Low: low-priority IPs busy", false, t)
}

// All returns the six Table 2 scenarios.
func All(t Tuning) []Scenario {
	return []Scenario{A1(t), A2(t), A3(t), A4(t), B(t), C(t)}
}

// ByID returns the named scenario.
func ByID(id string, t Tuning) (Scenario, error) {
	for _, s := range All(t) {
		if s.ID == id {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("experiments: unknown scenario %q", id)
}

// Baseline derives the always-on reference configuration: same IPs, same
// workloads, same environment, no DPM and no GEM.
func Baseline(s Scenario) soc.Config {
	cfg := s.Config
	cfg.Policy = soc.PolicyAlwaysOn
	cfg.UseGEM = false
	return cfg
}

// Row is one line of Table 2.
type Row struct {
	ID               string
	EnergySavingPct  float64
	TempReductionPct float64
	DelayOverheadPct float64

	DPM  *soc.Result
	Base *soc.Result
}

// RunScenario executes the baseline and the DPM run and computes the row.
// It is a convenience over the batch engine (see RunScenarios in batch.go);
// the two runs share a two-worker pool.
func RunScenario(s Scenario) (Row, error) {
	rows, err := runScenariosDefault([]Scenario{s})
	if err != nil {
		return Row{}, err
	}
	return rows[0], nil
}

// computeRow derives the Table 2 columns from a scenario's paired runs.
func computeRow(id string, base, dpm *soc.Result) (Row, error) {
	row := Row{ID: id, DPM: dpm, Base: base}
	var err error
	if row.EnergySavingPct, err = stats.EnergySavingPct(base.EnergyJ, dpm.EnergyJ); err != nil {
		return Row{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	if row.TempReductionPct, err = stats.TempReductionPct(base.AvgTempC, dpm.AvgTempC, base.AmbientC); err != nil {
		return Row{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	if row.DelayOverheadPct, err = stats.DelayOverheadPct(base.Ledger, dpm.Ledger); err != nil {
		return Row{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return row, nil
}

// PaperRow holds the values the paper reports.
type PaperRow struct {
	EnergySavingPct  float64
	TempReductionPct float64
	DelayOverheadPct float64
}

// PaperTable2 is the paper's Table 2, for side-by-side reporting.
var PaperTable2 = map[string]PaperRow{
	"A1": {39, 31, 30},
	"A2": {55, 21, 339},
	"A3": {39, 18, 37},
	"A4": {55, 18, 339},
	"B":  {65, 19, 242},
	"C":  {64, 18, 253},
}

// FormatTable2 renders measured rows next to the paper's numbers.
func FormatTable2(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %22s %22s %22s\n", "", "Energy saving (%)", "Temp reduction (%)", "Avg delay overhead (%)")
	fmt.Fprintf(&sb, "%-4s %10s %11s %10s %11s %10s %11s\n", "", "paper", "measured", "paper", "measured", "paper", "measured")
	for _, r := range rows {
		p := PaperTable2[r.ID]
		fmt.Fprintf(&sb, "%-4s %10.0f %11.1f %10.0f %11.1f %10.0f %11.1f\n",
			r.ID, p.EnergySavingPct, r.EnergySavingPct,
			p.TempReductionPct, r.TempReductionPct,
			p.DelayOverheadPct, r.DelayOverheadPct)
	}
	return sb.String()
}

// Topology renders the Fig. 1 component graph of a scenario's SoC: which
// managers, PSMs and IPs are instantiated and how they connect.
func Topology(s Scenario) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SoC %q (Fig. 1 architecture)\n", s.ID)
	if s.Config.UseGEM {
		sb.WriteString("  GEM <- battery status, temperature sensor, fan control\n")
	}
	sb.WriteString("  battery pack -> status classes {Empty,Low,Medium,High,Full}\n")
	sb.WriteString("  thermal sensor -> classes {Low,Medium,High}\n")
	if s.Config.BusWords > 0 {
		sb.WriteString("  shared BUS (service requests)\n")
	}
	for _, ipSpec := range s.Config.IPs {
		fmt.Fprintf(&sb, "  IP %-6s prio=%d tasks=%d <-> PSM <-> LEM", ipSpec.Name,
			ipSpec.StaticPriority, len(ipSpec.Sequence))
		if s.Config.UseGEM {
			sb.WriteString(" <-> GEM")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
