package experiments

import (
	"context"
	"fmt"

	"godpm/internal/engine"
)

// Plan lays the scenarios out as an engine plan: each scenario contributes
// its DPM configuration and its always-on baseline as an adjacent job pair
// ("<ID>/dpm", "<ID>/base"). Feeding the plan to an engine.Engine runs the
// whole grid concurrently and content-addressed — a cached Table 2
// regeneration costs zero simulations.
func Plan(scenarios []Scenario) engine.Plan {
	var p engine.Plan
	for _, s := range scenarios {
		p.AddPair(s.ID, s.Config, Baseline(s))
	}
	return p
}

// ReplicatedPlan fans each scenario out over seed replicates: rebuild
// regenerates the scenario for a seed (typically by setting Tuning.Seed),
// and every replicate contributes its dpm/base pair. With a single seed
// the job IDs stay plain ("<ID>/dpm"); with several they carry the seed
// ("<ID>@<seed>/dpm").
func ReplicatedPlan(scenarios []Scenario, seeds []int64, rebuild func(s Scenario, seed int64) Scenario) engine.Plan {
	var p engine.Plan
	for _, s := range scenarios {
		for _, seed := range seeds {
			r := rebuild(s, seed)
			id := s.ID
			if len(seeds) > 1 {
				id = fmt.Sprintf("%s@%d", s.ID, seed)
			}
			p.AddPair(id, r.Config, Baseline(r))
		}
	}
	return p
}

// RowsFromResults pairs a Plan's results back into Table 2 rows. The
// results must be index-aligned with Plan(scenarios) — which engine.Run
// guarantees regardless of worker count.
func RowsFromResults(scenarios []Scenario, results []engine.JobResult) ([]Row, error) {
	if len(results) != 2*len(scenarios) {
		return nil, fmt.Errorf("experiments: %d results for %d scenarios", len(results), len(scenarios))
	}
	rows := make([]Row, 0, len(scenarios))
	for i, s := range scenarios {
		dpm, base := results[2*i], results[2*i+1]
		if dpm.Err != nil {
			return nil, fmt.Errorf("experiments: %s dpm: %w", s.ID, dpm.Err)
		}
		if base.Err != nil {
			return nil, fmt.Errorf("experiments: %s baseline: %w", s.ID, base.Err)
		}
		row, err := computeRow(s.ID, base.Result, dpm.Result)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunScenarios executes the scenarios (DPM plus baseline each) on the
// engine and returns their Table 2 rows in scenario order.
func RunScenarios(ctx context.Context, eng *engine.Engine, scenarios []Scenario) ([]Row, error) {
	results, err := eng.Run(ctx, Plan(scenarios))
	if err != nil {
		return nil, err
	}
	return RowsFromResults(scenarios, results)
}

// runScenariosDefault runs on a throwaway pool sized to the paired-run
// shape (the historic serial path, now two-wide).
func runScenariosDefault(scenarios []Scenario) ([]Row, error) {
	eng := engine.New(engine.Options{Workers: 2, NoCache: true})
	return RunScenarios(context.Background(), eng, scenarios)
}
