package experiments

import (
	"fmt"

	"godpm/internal/power"
	"godpm/internal/soc"
	"godpm/internal/workload"
)

// defaultRegulator builds the converter model the regulator extension uses.
func defaultRegulator() *power.Regulator { return power.DefaultRegulator() }

// Extensions returns scenarios beyond the paper's six, exercising the
// features the paper sketches but does not evaluate:
//
//   - "B-perip": scenario B with one thermal node per IP on a shared
//     spreader (each LEM sees its own sensor, the GEM the hottest node);
//   - "B-openloop": scenario B with open-loop service-request arrivals
//     (queues build when the GEM throttles low-priority IPs);
//   - "A1-regulator": scenario A1 with the DC-DC converter between battery
//     and SoC (the battery sees the converter's losses).
func Extensions(t Tuning) []Scenario {
	return []Scenario{BPerIP(t), BOpenLoop(t), A1Regulator(t)}
}

// BPerIP is scenario B with the per-IP thermal network.
func BPerIP(t Tuning) Scenario {
	s := B(t)
	s.ID = "B-perip"
	s.Description = s.Description + " (per-IP thermal network)"
	s.Config.PerIPThermal = true
	return s
}

// BOpenLoop is scenario B with open-loop arrivals: the same per-IP offered
// load, but service requests keep arriving regardless of the IP's state.
func BOpenLoop(t Tuning) Scenario {
	s := B(t)
	s.ID = "B-openloop"
	s.Description = s.Description + " (open-loop arrivals)"
	for i := range s.Config.IPs {
		spec := &s.Config.IPs[i]
		var prof workload.Profile
		if i < 2 {
			prof = workload.HighActivity(t.Seed+int64(i), t.NumTasks)
		} else {
			prof = workload.LowActivity(t.Seed+int64(i), t.NumTasks)
		}
		prof = mixedPriorities(prof)
		spec.Sequence = nil
		// Offered load sized to the ON4 service rate: with battery Low the
		// whole SoC runs at ON4, and a faster arrival process would grow
		// the queues without bound (the IPs would never idle, so the KiBaM
		// recovery that re-enables low-priority IPs could never happen).
		spec.Arrivals = prof.MustGenerateArrivals(power.DefaultProfile().On[3].FreqHz)
	}
	return s
}

// A1Regulator is scenario A1 with the default DC-DC converter model.
func A1Regulator(t Tuning) Scenario {
	s := A1(t)
	s.ID = "A1-regulator"
	s.Description = s.Description + " (with DC-DC regulator losses)"
	s.Config.Regulator = defaultRegulator()
	return s
}

// ExtensionByID returns the named extension scenario.
func ExtensionByID(id string, t Tuning) (Scenario, error) {
	for _, s := range Extensions(t) {
		if s.ID == id {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("experiments: unknown extension %q", id)
}

// Ablation is one design-choice study: variants of a base scenario that
// differ in exactly one knob.
type Ablation struct {
	Name     string
	Variants []AblationVariant
}

// AblationVariant is one point of an ablation.
type AblationVariant struct {
	Label  string
	Config soc.Config
}

// Ablations returns the design-choice studies, built over the given
// tuning:
//
//   - "predictor": EWMA vs last-value vs perfect vs adaptive vs quantile
//     idle prediction (on A1);
//   - "breakeven": break-even-gated vs always-deepest sleep (on A1);
//   - "battery": KiBaM vs linear battery (on B — the recovery effect);
//   - "gem": with vs without global management (on B).
func Ablations(t Tuning) []Ablation {
	var out []Ablation

	pred := Ablation{Name: "predictor"}
	for _, kind := range []soc.PredictorKind{
		soc.PredictorEWMA, soc.PredictorLast, soc.PredictorPerfect,
		soc.PredictorAdaptive, soc.PredictorQuantile,
	} {
		cfg := A1(t).Config
		cfg.LEM.Predictor = kind
		pred.Variants = append(pred.Variants, AblationVariant{Label: string(kind), Config: cfg})
	}
	out = append(out, pred)

	be := Ablation{Name: "breakeven"}
	for _, gated := range []bool{true, false} {
		cfg := A1(t).Config
		cfg.LEM.DisableBreakEven = !gated
		label := "gated"
		if !gated {
			label = "ungated"
		}
		be.Variants = append(be.Variants, AblationVariant{Label: label, Config: cfg})
	}
	out = append(out, be)

	batt := Ablation{Name: "battery"}
	kibam := B(t).Config
	linear := B(t).Config
	linear.Battery = soc.BatteryConfig{
		Kind: "linear", CapacityJ: linear.Battery.CapacityJ, InitialSoC: linear.Battery.InitialSoC,
	}
	batt.Variants = []AblationVariant{
		{Label: "kibam", Config: kibam},
		{Label: "linear", Config: linear},
	}
	out = append(out, batt)

	gemAb := Ablation{Name: "gem"}
	withGem := B(t).Config
	withoutGem := B(t).Config
	withoutGem.UseGEM = false
	gemAb.Variants = []AblationVariant{
		{Label: "with", Config: withGem},
		{Label: "without", Config: withoutGem},
	}
	out = append(out, gemAb)

	return out
}
