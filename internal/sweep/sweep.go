// Package sweep runs one-dimensional parameter sweeps over SoC
// configurations and reports energy/latency/temperature series — the
// "figure generator" companion to the Table 2 harness, used for the
// ablation studies (timeout length, workload activity, predictor
// smoothing, sleep-state depth) and by cmd/dpmsweep.
package sweep

import (
	"context"
	"fmt"
	"io"

	"godpm/internal/engine"
	"godpm/internal/soc"
	"godpm/internal/stats"
)

// Point is one sweep sample: the parameter value and the measured outcome.
type Point struct {
	Value     float64
	EnergyJ   float64
	DurationS float64
	AvgTempC  float64
	Completed bool
	// EnergySavingPct / DelayOverheadPct are filled when the sweep builds
	// baselines.
	EnergySavingPct  float64
	DelayOverheadPct float64
}

// Sweep describes a one-dimensional study.
type Sweep struct {
	// Name identifies the study; Param names the swept quantity (CSV
	// column header).
	Name  string
	Param string
	// Values are the parameter samples, in presentation order.
	Values []float64
	// Build returns the configuration under test for a value.
	Build func(v float64) soc.Config
	// BuildBaseline, when non-nil, returns the reference configuration
	// for a value; saving/overhead columns are computed against it.
	BuildBaseline func(v float64) soc.Config
}

// Validate checks the sweep is runnable.
func (s Sweep) Validate() error {
	if s.Name == "" || s.Param == "" {
		return fmt.Errorf("sweep: missing Name or Param")
	}
	if len(s.Values) == 0 {
		return fmt.Errorf("sweep %s: no values", s.Name)
	}
	if s.Build == nil {
		return fmt.Errorf("sweep %s: nil Build", s.Name)
	}
	return nil
}

// Run executes the sweep on a default batch engine (one worker per CPU,
// fresh in-memory cache). Results are identical to a serial run: points
// come back in Values order and every simulation is deterministic.
func (s Sweep) Run() ([]Point, error) {
	return s.RunWith(context.Background(), engine.New(engine.Options{}))
}

// Plan lays the sweep out as engine jobs: per value the config under test
// and, when BuildBaseline is set, its reference config as the adjacent job.
func (s Sweep) Plan() engine.Plan {
	var p engine.Plan
	for _, v := range s.Values {
		p.Add(fmt.Sprintf("%s[%s=%g]", s.Name, s.Param, v), s.Build(v))
		if s.BuildBaseline != nil {
			p.Add(fmt.Sprintf("%s[%s=%g]/base", s.Name, s.Param, v), s.BuildBaseline(v))
		}
	}
	return p
}

// RunWith executes the sweep's plan on the given engine, sharing its
// worker pool, cache and counters with other batches.
func (s Sweep) RunWith(ctx context.Context, eng *engine.Engine) ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	results, err := eng.Run(ctx, s.Plan())
	if err != nil {
		return nil, fmt.Errorf("sweep %s: %w", s.Name, err)
	}
	stride := 1
	if s.BuildBaseline != nil {
		stride = 2
	}
	pts := make([]Point, 0, len(s.Values))
	for i, v := range s.Values {
		res := results[stride*i].Result
		p := Point{
			Value:     v,
			EnergyJ:   res.EnergyJ,
			DurationS: res.Duration.Seconds(),
			AvgTempC:  res.AvgTempC,
			Completed: res.Completed,
		}
		if s.BuildBaseline != nil {
			base := results[stride*i+1].Result
			if p.EnergySavingPct, err = stats.EnergySavingPct(base.EnergyJ, res.EnergyJ); err != nil {
				return nil, fmt.Errorf("sweep %s at %v: %w", s.Name, v, err)
			}
			if p.DelayOverheadPct, err = stats.DelayOverheadPct(base.Ledger, res.Ledger); err != nil {
				return nil, fmt.Errorf("sweep %s at %v: %w", s.Name, v, err)
			}
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// WriteCSV renders points as CSV with the given parameter column name.
func WriteCSV(w io.Writer, param string, pts []Point, withBaseline bool) error {
	hdr := param + ",energy_j,duration_s,avg_temp_c,completed"
	if withBaseline {
		hdr += ",energy_saving_pct,delay_overhead_pct"
	}
	if _, err := fmt.Fprintln(w, hdr); err != nil {
		return err
	}
	for _, p := range pts {
		line := fmt.Sprintf("%g,%.6g,%.6g,%.4g,%v", p.Value, p.EnergyJ, p.DurationS, p.AvgTempC, p.Completed)
		if withBaseline {
			line += fmt.Sprintf(",%.4g,%.4g", p.EnergySavingPct, p.DelayOverheadPct)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
