package sweep

import (
	"godpm/internal/acpi"
	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/task"
	"godpm/internal/workload"
)

// workloadFor builds the common single-IP workload the studies share.
func workloadFor(seed int64, numTasks int, meanIdle sim.Time) workload.Sequence {
	p := workload.HighActivity(seed, numTasks)
	p.MeanIdle = meanIdle
	p.PriorityWeights = [task.NumPriorities]float64{1, 2, 2, 1}
	return p.MustGenerate()
}

// baseConfig is the shared single-IP scaffold.
func baseConfig(seq workload.Sequence) soc.Config {
	return soc.Config{
		IPs:     []soc.IPSpec{{Name: "ip0", Sequence: seq}},
		Battery: soc.DefaultBattery(0.95),
		Horizon: 120 * sim.Sec,
	}
}

// TimeoutStudy sweeps the classic fixed-timeout policy's timeout (in
// milliseconds): too short wastes wake-ups, too long wastes idle power —
// the curve the break-even analysis sidesteps.
func TimeoutStudy(seed int64, numTasks int) Sweep {
	seq := workloadFor(seed, numTasks, 10*sim.Ms)
	return Sweep{
		Name:   "timeout",
		Param:  "timeout_ms",
		Values: []float64{0.5, 1, 2, 5, 10, 20, 50},
		Build: func(v float64) soc.Config {
			cfg := baseConfig(seq)
			cfg.Policy = soc.PolicyTimeout
			cfg.Timeout = sim.Time(v * float64(sim.Ms))
			cfg.TimeoutSleepState = acpi.SL2
			return cfg
		},
		BuildBaseline: func(float64) soc.Config {
			cfg := baseConfig(seq)
			cfg.Policy = soc.PolicyAlwaysOn
			return cfg
		},
	}
}

// ActivityStudy sweeps the workload's mean idle gap (milliseconds): DPM
// savings grow with idleness while the always-on baseline burns idle power.
func ActivityStudy(seed int64, numTasks int) Sweep {
	build := func(v float64, policy soc.PolicyKind) soc.Config {
		seq := workloadFor(seed, numTasks, sim.Time(v*float64(sim.Ms)))
		cfg := baseConfig(seq)
		cfg.Policy = policy
		return cfg
	}
	return Sweep{
		Name:   "activity",
		Param:  "mean_idle_ms",
		Values: []float64{1, 2, 5, 10, 20, 50, 100},
		Build: func(v float64) soc.Config {
			return build(v, soc.PolicyDPM)
		},
		BuildBaseline: func(v float64) soc.Config {
			return build(v, soc.PolicyAlwaysOn)
		},
	}
}

// AlphaStudy sweeps the LEM's EWMA smoothing factor.
func AlphaStudy(seed int64, numTasks int) Sweep {
	seq := workloadFor(seed, numTasks, 10*sim.Ms)
	return Sweep{
		Name:   "alpha",
		Param:  "ewma_alpha",
		Values: []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0},
		Build: func(v float64) soc.Config {
			cfg := baseConfig(seq)
			cfg.Policy = soc.PolicyDPM
			cfg.LEM = soc.LEMOptions{Predictor: soc.PredictorEWMA, Alpha: v}
			return cfg
		},
		BuildBaseline: func(float64) soc.Config {
			cfg := baseConfig(seq)
			cfg.Policy = soc.PolicyAlwaysOn
			return cfg
		},
	}
}

// HorizonStudy sweeps the simulation horizon (seconds) under an open-loop
// MMPP arrival stream: energy and temperature as functions of how long the
// SoC runs. Every point shares the full configuration except Horizon, so
// the batch engine collapses the study into one forked session (sweep
// warm-start) — the shared trajectory prefix simulates once and each point
// is snapshotted at its own cut, bit-identical to solo runs.
func HorizonStudy(seed int64, numTasks int) Sweep {
	gen := workload.DefaultMMPP(workload.NewSeed(uint64(seed)), numTasks)
	arr := gen.MustGenerate()
	build := func(v float64, policy soc.PolicyKind) soc.Config {
		cfg := soc.Config{
			IPs:     []soc.IPSpec{{Name: "ip0", Arrivals: arr}},
			Battery: soc.DefaultBattery(0.95),
			Policy:  policy,
			Horizon: sim.Time(v * float64(sim.Sec)),
		}
		return cfg
	}
	return Sweep{
		Name:   "horizon",
		Param:  "horizon_s",
		Values: []float64{0.5, 1, 2, 5, 10, 20, 60},
		Build: func(v float64) soc.Config {
			return build(v, soc.PolicyDPM)
		},
		BuildBaseline: func(v float64) soc.Config {
			return build(v, soc.PolicyAlwaysOn)
		},
	}
}

// Studies returns every built-in study by name.
func Studies(seed int64, numTasks int) map[string]Sweep {
	return map[string]Sweep{
		"timeout":  TimeoutStudy(seed, numTasks),
		"activity": ActivityStudy(seed, numTasks),
		"alpha":    AlphaStudy(seed, numTasks),
		"horizon":  HorizonStudy(seed, numTasks),
	}
}
