package sweep

import (
	"context"
	"strings"
	"testing"

	"godpm/internal/engine"

	"godpm/internal/soc"
	"godpm/internal/workload"
)

func TestSweepValidate(t *testing.T) {
	bad := []Sweep{
		{},
		{Name: "x", Param: "p"},
		{Name: "x", Param: "p", Values: []float64{1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("sweep %d accepted", i)
		}
	}
	if _, err := (Sweep{}).Run(); err == nil {
		t.Error("invalid sweep ran")
	}
}

func TestSweepRunsAndOrdersPoints(t *testing.T) {
	seq := workload.HighActivity(3, 10).MustGenerate()
	s := Sweep{
		Name:   "test",
		Param:  "dummy",
		Values: []float64{1, 2, 3},
		Build: func(v float64) soc.Config {
			cfg := baseConfig(seq)
			cfg.Policy = soc.PolicyDPM
			return cfg
		},
	}
	pts, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.Value != float64(i+1) {
			t.Fatalf("point order wrong: %v", pts)
		}
		if p.EnergyJ <= 0 || !p.Completed {
			t.Fatalf("point %d: %+v", i, p)
		}
	}
}

func TestTimeoutStudyShape(t *testing.T) {
	s := TimeoutStudy(1, 15)
	s.Values = []float64{1, 50} // keep the test fast: short vs long timeout
	pts, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// A 50 ms timeout on ~10 ms idle gaps almost never sleeps: its saving
	// must be below the 1 ms timeout's.
	if pts[1].EnergySavingPct >= pts[0].EnergySavingPct {
		t.Fatalf("long timeout saved more than short: %+v", pts)
	}
	for _, p := range pts {
		if !p.Completed {
			t.Fatal("study run incomplete")
		}
	}
}

func TestActivityStudyShape(t *testing.T) {
	s := ActivityStudy(1, 15)
	s.Values = []float64{1, 50}
	pts, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// More idleness → more DPM saving.
	if pts[1].EnergySavingPct <= pts[0].EnergySavingPct {
		t.Fatalf("idle-heavy workload saved less: %+v", pts)
	}
}

func TestStudiesRegistry(t *testing.T) {
	st := Studies(1, 10)
	for _, name := range []string{"timeout", "activity", "alpha"} {
		s, ok := st[name]
		if !ok {
			t.Fatalf("missing study %q", name)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	pts := []Point{
		{Value: 1, EnergyJ: 0.5, DurationS: 2, AvgTempC: 50, Completed: true, EnergySavingPct: 30, DelayOverheadPct: 10},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, "timeout_ms", pts, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"timeout_ms,energy_j", "energy_saving_pct", "1,0.5,2,50,true,30,10"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	if err := WriteCSV(&sb2, "x", pts, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "saving") {
		t.Error("baseline columns present without baselines")
	}
}

// TestHorizonStudyWarmStarts pins the horizon study to the engine's fork
// groups: all points of one policy share a forked session (Forked > 0)
// and the points are identical to a cold solo-run engine's.
func TestHorizonStudyWarmStarts(t *testing.T) {
	s := HorizonStudy(1, 40)
	s.Values = []float64{0.05, 0.1, 0.5} // keep the test quick

	eng := engine.New(engine.Options{})
	warm, err := s.RunWith(context.Background(), eng)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Forked == 0 {
		t.Fatalf("horizon study did not fork: %+v", st)
	}
	// One shared session per policy (DPM points + baseline points).
	if st.Runs != 2 {
		t.Fatalf("Runs = %d, want 2 shared sessions", st.Runs)
	}

	cold, err := s.RunWith(context.Background(), engine.New(engine.Options{NoCache: true}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if warm[i].EnergyJ != cold[i].EnergyJ || warm[i].AvgTempC != cold[i].AvgTempC ||
			warm[i].DurationS != cold[i].DurationS {
			t.Errorf("point %d: warm %+v != cold %+v", i, warm[i], cold[i])
		}
	}
}
