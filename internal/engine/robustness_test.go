package engine_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"godpm/internal/engine"
	"godpm/internal/soc"
)

// TestDiskConcurrentCorruptHealing: two goroutines race a Get on the
// same corrupt disk slot. Both must miss without error, the delete must
// happen exactly once (occupancy reaches zero, not minus one), and a
// subsequent Put must re-fill the slot. Run under -race.
func TestDiskConcurrentCorruptHealing(t *testing.T) {
	dir := t.TempDir()
	key := strings.Repeat("ab", 16)
	if err := os.WriteFile(filepath.Join(dir, key+".rec"), []byte("}{ not a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := engine.NewDiskWith(dir, engine.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := d.CacheStats(); st.Entries != 1 {
		t.Fatalf("open scan found %d entries, want 1", st.Entries)
	}

	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
	)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, ok := d.Get(key); ok {
				t.Error("Get hit on a corrupt entry")
			}
		}()
	}
	close(start)
	wg.Wait()

	if st := d.CacheStats(); st.Entries != 0 {
		t.Fatalf("occupancy after racing heals = %d entries, want exactly 0 (exactly-once delete)", st.Entries)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".rec")); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still present (stat err %v)", err)
	}

	res := &soc.Result{EnergyJ: 7.5, Completed: true}
	if err := d.Put(key, mustRecord(t, key, res)); err != nil {
		t.Fatalf("healing Put failed: %v", err)
	}
	got, ok := d.Get(key)
	if !ok || got.Digest() != engine.ResultDigest(res) {
		t.Fatal("slot did not re-fill after healing")
	}
	if st := d.CacheStats(); st.Entries != 1 {
		t.Fatalf("occupancy after re-fill = %d entries, want 1", st.Entries)
	}
}

// TestDiskSyncRoundtrip exercises the crash-consistent write path on the
// real filesystem: fsync'd temp, rename, directory sync.
func TestDiskSyncRoundtrip(t *testing.T) {
	d, err := engine.NewDiskWith(t.TempDir(), engine.DiskOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("cd", 16)
	res := &soc.Result{EnergyJ: 2.25, TasksDone: 4, Completed: true}
	if err := d.Put(key, mustRecord(t, key, res)); err != nil {
		t.Fatalf("synced Put: %v", err)
	}
	got, ok := d.Get(key)
	if !ok || got.Digest() != engine.ResultDigest(res) {
		t.Fatal("synced entry did not round-trip")
	}
}

// TestRemoteRejectsDigestMismatch: a body that decodes fine but does not
// match the digest the server vouched for is dropped, counted, and never
// returned — the end-to-end anti-poisoning check.
func TestRemoteRejectsDigestMismatch(t *testing.T) {
	key, res := computeResult(t, 5)
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Result-Digest", strings.Repeat("00", 32))
		w.Write(blob)
	}))
	defer ts.Close()

	remote := newRemote(t, engine.RemoteOptions{BaseURL: ts.URL, Timeout: time.Second, Retries: -1})
	if _, ok := remote.Get(key); ok {
		t.Fatal("Get returned a result whose digest the server contradicted")
	}
	st := remote.TierStats()[0]
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	if st.Errors == 0 || st.Misses == 0 {
		t.Fatalf("mismatch not booked as error+miss: %+v", st)
	}
}

// TestBlobServerDigests: GET responses carry the entry's digest, and a
// PUT whose body contradicts its claimed digest is refused with 422
// before it can poison the shared store.
func TestBlobServerDigests(t *testing.T) {
	ts, blob, store := blobServerForTest(t)
	key, res := computeResult(t, 6)
	if err := store.Put(key, mustRecord(t, key, res)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/blob/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Result-Digest"); got != engine.ResultDigest(res) {
		t.Fatalf("GET digest header = %q, want the entry's digest", got)
	}

	// A corrupted upload: valid JSON, wrong claimed digest.
	body, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	other := strings.Repeat("ef", 16)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/blob/"+other, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Result-Digest", strings.Repeat("11", 32))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("mismatched PUT got status %d, want 422", resp.StatusCode)
	}
	if _, ok := store.Get(other); ok {
		t.Fatal("mismatched PUT reached the store")
	}
	if blob.Stats().PutRejects == 0 {
		t.Fatal("rejected PUT not counted")
	}

	// The honest client path (claimed digest matches) still works.
	remote := newRemote(t, engine.RemoteOptions{BaseURL: ts.URL})
	if err := remote.Put(other, mustRecord(t, other, res)); err != nil {
		t.Fatalf("honest Put refused: %v", err)
	}
	if _, ok := store.Get(other); !ok {
		t.Fatal("honest Put did not reach the store")
	}
}

// TestRemoteBreakerStateSurfaced: TierStats exposes the breaker's
// condition — closed while healthy, open with trips/skips/time-to-retry
// once the threshold is crossed.
func TestRemoteBreakerStateSurfaced(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	remote := newRemote(t, engine.RemoteOptions{
		BaseURL: ts.URL, Timeout: time.Second, Retries: -1,
		FailureThreshold: 2, Cooldown: time.Hour,
	})
	if st := remote.TierStats()[0]; st.Breaker != "closed" || st.BreakerTrips != 0 {
		t.Fatalf("fresh client breaker = %+v, want closed with 0 trips", st)
	}

	key := strings.Repeat("ab", 32)
	for i := 0; i < 4; i++ {
		remote.Get(key)
	}
	st := remote.TierStats()[0]
	if st.Breaker != "open" {
		t.Fatalf("breaker = %q after threshold failures, want open", st.Breaker)
	}
	if st.BreakerTrips != 1 || st.BreakerFails < 2 || st.BreakerSkips == 0 {
		t.Fatalf("breaker counters = %+v, want 1 trip, >=2 fails, >0 skips", st)
	}
	if st.BreakerWaitMs <= 0 {
		t.Fatalf("BreakerWaitMs = %d while open, want > 0", st.BreakerWaitMs)
	}
}

// TestRemoteCloseAbortsBackoff: a draining client does not sit out its
// retry schedule — Close aborts in-flight backoff waits immediately.
func TestRemoteCloseAbortsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "try later", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	remote := newRemote(t, engine.RemoteOptions{
		BaseURL: ts.URL, Timeout: time.Second,
		Retries: 3, RetryBackoff: time.Minute,
	})
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		remote.Get(strings.Repeat("ab", 32))
	}()
	time.Sleep(50 * time.Millisecond)
	remote.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Get still blocked 5s after Close; backoff wait was not aborted")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Get took %v, want prompt return after Close", elapsed)
	}
}
