package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"godpm/internal/soc"
)

// BlobServerOptions bounds the server side of the dpmremote protocol.
// The zero value selects the defaults.
type BlobServerOptions struct {
	// MaxBlobBytes caps a PUT body; default 32 MiB. Oversized uploads
	// are refused with 413 before touching the store.
	MaxBlobBytes int64
	// MaxStatKeys caps one batched stat request; default 4096. Larger
	// batches are refused with 400 — clients chunk.
	MaxStatKeys int
}

const defaultMaxStatKeys = 4096

// BlobServerStats are the server's cumulative request counters plus the
// backing store's occupancy.
type BlobServerStats struct {
	Gets       int64      `json:"gets"`
	GetHits    int64      `json:"get_hits"`
	Heads      int64      `json:"heads"`
	HeadHits   int64      `json:"head_hits"`
	Puts       int64      `json:"puts"`
	PutRejects int64      `json:"put_rejects"`
	StatBatch  int64      `json:"stat_batches"`
	StatKeys   int64      `json:"stat_keys"`
	Store      CacheStats `json:"store"`
	// Tiers splits the store's counters per layer when it reports them
	// (the canonical Disk store reports memory front + files).
	Tiers []TierStats `json:"tiers,omitempty"`
}

// BlobServer serves the dpmremote hash-addressed protocol over a result
// store (canonically a size-capped engine Disk cache, so admission is
// bounded twice: per-request body caps here, total occupancy by the
// store's LRU GC):
//
//	HEAD /v1/blob/{fingerprint}
//	GET  /v1/blob/{fingerprint}
//	PUT  /v1/blob/{fingerprint}
//	POST /v1/stat
//
// Fingerprints are validated before they address the store, so request
// paths can never escape it. GET bodies are content-negotiated: a client
// accepting application/x-gdpm-record gets the stored binary container
// verbatim — an io.Copy of pre-encoded bytes, no per-GET marshal — and a
// legacy client gets canonical JSON. PUT accepts either format, and the
// body must fully decode as a result whichever it is — an undecodable
// or digest-mismatched upload is refused with 422 rather than stored,
// so one misbehaving client cannot poison the fleet's shared entries.
//
// BlobServer is an http.Handler; liveness, stats surfacing and drain
// orchestration belong to the embedding command (see cmd/dpmremote).
type BlobServer struct {
	store   Cache
	has     func(string) bool
	maxBlob int64
	maxStat int

	gets, getHits, heads, headHits atomic.Int64
	puts, putRejects               atomic.Int64
	statBatch, statKeys            atomic.Int64
}

// NewBlobServer builds the protocol handler over store.
func NewBlobServer(store Cache, opts BlobServerOptions) *BlobServer {
	if opts.MaxBlobBytes <= 0 {
		opts.MaxBlobBytes = defaultMaxBlobBytes
	}
	if opts.MaxStatKeys <= 0 {
		opts.MaxStatKeys = defaultMaxStatKeys
	}
	s := &BlobServer{store: store, maxBlob: opts.MaxBlobBytes, maxStat: opts.MaxStatKeys}
	if h, ok := store.(haser); ok {
		s.has = h.Has
	} else {
		s.has = func(key string) bool { _, ok := store.Get(key); return ok }
	}
	return s
}

// Stats snapshots the request counters and store occupancy.
func (s *BlobServer) Stats() BlobServerStats {
	st := BlobServerStats{
		Gets:       s.gets.Load(),
		GetHits:    s.getHits.Load(),
		Heads:      s.heads.Load(),
		HeadHits:   s.headHits.Load(),
		Puts:       s.puts.Load(),
		PutRejects: s.putRejects.Load(),
		StatBatch:  s.statBatch.Load(),
		StatKeys:   s.statKeys.Load(),
	}
	if r, ok := s.store.(StatsReporter); ok {
		st.Store = r.CacheStats()
	}
	if r, ok := s.store.(TierStatsReporter); ok {
		st.Tiers = r.TierStats()
	}
	return st
}

func (s *BlobServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, blobPathPrefix):
		key := r.URL.Path[len(blobPathPrefix):]
		if !validKey(key) {
			http.Error(w, "invalid fingerprint", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodHead:
			s.handleHead(w, key)
		case http.MethodGet:
			s.handleGet(w, r, key)
		case http.MethodPut:
			s.handlePut(w, r, key)
		default:
			http.Error(w, "HEAD, GET or PUT", http.StatusMethodNotAllowed)
		}
	case r.URL.Path == statPath:
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.handleStat(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *BlobServer) handleHead(w http.ResponseWriter, key string) {
	s.heads.Add(1)
	if !s.has(key) {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	s.headHits.Add(1)
	w.WriteHeader(http.StatusOK)
}

func (s *BlobServer) handleGet(w http.ResponseWriter, r *http.Request, key string) {
	s.gets.Add(1)
	rec, ok := s.store.Get(key)
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	s.getHits.Add(1)
	var (
		data  []byte
		err   error
		ctype string
	)
	if strings.Contains(r.Header.Get("Accept"), RecordContentType) {
		// Record-speaking client: the stored container is the response —
		// already compressed, already checksummed, encoded at most once in
		// this process's lifetime.
		data, err = rec.Encode(CodecFlate)
		ctype = RecordContentType
	} else {
		// Legacy client: canonical JSON, inflated lazily and cached on the
		// record.
		data, err = rec.JSON()
		ctype = "application/json"
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	// The digest lets the client verify the body end-to-end: a flipped
	// byte in flight that still decodes cleanly is caught at the client
	// instead of promoted into its local tiers. It comes straight from
	// the record header — vouching costs no decode.
	w.Header().Set(digestHeader, rec.Digest())
	w.Write(data)
}

func (s *BlobServer) handlePut(w http.ResponseWriter, r *http.Request, key string) {
	s.puts.Add(1)
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBlob))
	if err != nil {
		s.putRejects.Add(1)
		http.Error(w, "body exceeds max blob size", http.StatusRequestEntityTooLarge)
		return
	}
	var (
		rec    *Record
		decErr error
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), RecordContentType) ||
		(len(data) >= 4 && string(data[:4]) == recordMagic) {
		rec, decErr = DecodeRecord(data)
		if decErr == nil && rec.Key() != key {
			decErr = fmt.Errorf("record keyed %q", rec.Key())
		}
	} else {
		rec, decErr = RecordFromJSON(key, data)
	}
	var res *soc.Result
	if decErr == nil {
		// Decode all the way: a container whose header checks out but
		// whose body does not inflate and unmarshal must be refused, not
		// stored for the fleet.
		res, decErr = rec.Result()
	}
	if decErr != nil {
		s.putRejects.Add(1)
		http.Error(w, "body is not a result record", http.StatusUnprocessableEntity)
		return
	}
	// Hold the decoded body to the digests claimed for it — the request
	// header's and the container's own: an upload corrupted in flight
	// (or carrying a lying header) is refused here instead of stored as
	// a poisoned entry the whole fleet would then share.
	claimed := r.Header.Get(digestHeader)
	if want := ResultDigest(res); (claimed != "" && want != claimed) || want != rec.Digest() {
		s.putRejects.Add(1)
		http.Error(w, "body does not match claimed digest", http.StatusUnprocessableEntity)
		return
	}
	if err := s.store.Put(key, rec); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *BlobServer) handleStat(w http.ResponseWriter, r *http.Request) {
	var req statRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBlob)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad stat body", http.StatusBadRequest)
		return
	}
	if len(req.Keys) > s.maxStat {
		http.Error(w, fmt.Sprintf("too many keys (max %d per batch)", s.maxStat), http.StatusBadRequest)
		return
	}
	s.statBatch.Add(1)
	s.statKeys.Add(int64(len(req.Keys)))
	resp := statResponse{Present: make([]string, 0, len(req.Keys))}
	for _, k := range req.Keys {
		if validKey(k) && s.has(k) {
			resp.Present = append(resp.Present, k)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
