package engine

import (
	"sync"
	"sync/atomic"
)

// LRUOptions bounds an LRU cache. The zero value selects the defaults,
// which is what Engine uses when Options.Cache is nil.
type LRUOptions struct {
	// MaxEntries caps the total number of cached results across all
	// shards; 0 means DefaultLRUEntries. Len() never exceeds it; when
	// MaxEntries is not divisible by the shard count the effective
	// capacity is the floor per shard × shards, slightly below the cap.
	MaxEntries int
	// MaxBytes caps the cache's retained record memory. Accounting is
	// exact in record terms: each entry is charged Record.MemSize (a
	// deterministic function of the encoded size), and the cache's
	// accounted bytes always equal the sum of live entries' sizes.
	// 0 means unbounded by size.
	MaxBytes int64
	// Shards is the lock-striping factor; 0 means defaultLRUShards.
	// More shards means less contention under concurrent workers; keys
	// are distributed by fingerprint prefix, which is uniform because
	// fingerprints are cryptographic hashes.
	Shards int
}

// DefaultLRUEntries is the entry cap of a zero-valued LRUOptions — sized
// so a long-lived process (dpmserve) holds a working set of grids without
// growing unboundedly.
const DefaultLRUEntries = 4096

const (
	defaultLRUShards = 16
	// minShardEntries is the smallest per-shard capacity auto-sharding
	// will produce; smaller caps use fewer shards instead.
	minShardEntries = 8
)

// LRU is a sharded, bounded, least-recently-used record cache: the
// replacement for the unbounded Memory map. Each shard owns an
// independent mutex, hash map and intrusive recency list, so concurrent
// workers rarely contend on the same lock. When an insert overflows a
// shard's entry or byte budget, the least-recently-used entries of that
// shard are evicted (counted in CacheStats.Evictions).
//
// Records handed out by Get are shared with every other caller of the
// same key — treat them (and their decoded Results) as immutable.
type LRU struct {
	shards       []lruShard
	evictions    atomic.Int64
	hits, misses atomic.Int64
}

type lruShard struct {
	mu         sync.Mutex
	m          map[string]*lruEntry
	head, tail *lruEntry // intrusive recency list; head = most recent
	bytes      int64
	maxEntries int
	maxBytes   int64
}

type lruEntry struct {
	key        string
	rec        *Record
	size       int64
	prev, next *lruEntry
}

// NewLRU builds a sharded LRU cache. See LRUOptions for the defaults.
func NewLRU(opts LRUOptions) *LRU {
	maxEntries := opts.MaxEntries
	if maxEntries <= 0 {
		maxEntries = DefaultLRUEntries
	}
	shards := opts.Shards
	if shards <= 0 {
		// Auto-sharding keeps at least minShardEntries per shard: a small
		// cap over many shards would both undershoot the configured total
		// (floor division) and thrash whenever two hot keys share a
		// near-empty shard.
		shards = defaultLRUShards
		if s := maxEntries / minShardEntries; s < shards {
			shards = s
		}
		if shards < 1 {
			shards = 1
		}
	}
	if shards > maxEntries {
		// Explicitly-set shard counts shrink too, so the per-shard floor
		// of one entry cannot overshoot the configured total.
		shards = maxEntries
	}
	if shards > 256 {
		// The fingerprint-prefix router addresses 256 values; more shards
		// would be unreachable and silently strip capacity.
		shards = 256
	}
	perEntries := maxEntries / shards
	if perEntries < 1 {
		perEntries = 1
	}
	var perBytes int64
	if opts.MaxBytes > 0 {
		perBytes = opts.MaxBytes / int64(shards)
		if perBytes < 1 {
			perBytes = 1
		}
	}
	c := &LRU{shards: make([]lruShard, shards)}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*lruEntry)
		c.shards[i].maxEntries = perEntries
		c.shards[i].maxBytes = perBytes
	}
	return c
}

// shard maps a key to its shard by fingerprint prefix: the leading two
// hex digits give a uniform value in 0..255 because fingerprints are
// SHA-256 hex. Non-hex keys fall back to an FNV-1a hash of the whole key.
func (c *LRU) shard(key string) *lruShard {
	n := uint32(len(c.shards))
	if len(key) >= 2 {
		hi, ok1 := hexVal(key[0])
		lo, ok2 := hexVal(key[1])
		if ok1 && ok2 {
			return &c.shards[(hi<<4|lo)%n]
		}
	}
	const (
		fnvOffset = 2166136261
		fnvPrime  = 16777619
	)
	h := uint32(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime
	}
	return &c.shards[h%n]
}

func hexVal(b byte) (uint32, bool) {
	switch {
	case b >= '0' && b <= '9':
		return uint32(b - '0'), true
	case b >= 'a' && b <= 'f':
		return uint32(b-'a') + 10, true
	case b >= 'A' && b <= 'F':
		return uint32(b-'A') + 10, true
	}
	return 0, false
}

// Get returns the cached record for key, if any, marking it most
// recently used.
func (c *LRU) Get(key string) (*Record, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	s.moveToFront(e)
	return e.rec, true
}

// Has probes for key without promoting it or touching the hit/miss
// counters — the side-effect-free existence check warm-up uses.
func (c *LRU) Has(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	return ok
}

// Put stores a record, evicting least-recently-used entries if the
// shard's entry or byte budget overflows. Updating an existing key
// adjusts the shard's accounted bytes by the signed size delta — an
// entry that shrinks credits bytes back, and because every entry's
// charge is its own MemSize the running sum can never underflow: it
// always equals the (non-negative) sum over live entries.
func (c *LRU) Put(key string, rec *Record) error {
	size := rec.MemSize()
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		s.bytes += size - e.size
		e.rec, e.size = rec, size
		s.moveToFront(e)
	} else {
		e := &lruEntry{key: key, rec: rec, size: size}
		s.m[key] = e
		s.pushFront(e)
		s.bytes += size
	}
	for len(s.m) > s.maxEntries || (s.maxBytes > 0 && s.bytes > s.maxBytes && len(s.m) > 1) {
		c.evictions.Add(1)
		s.evictTail()
	}
	return nil
}

// Len returns the number of cached entries across all shards.
func (c *LRU) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// CacheStats returns occupancy and eviction counters; Engine.Stats folds
// them into its snapshot.
func (c *LRU) CacheStats() CacheStats {
	st := CacheStats{Evictions: c.evictions.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.m))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// TierStats reports the cache as one memory tier.
func (c *LRU) TierStats() []TierStats {
	cs := c.CacheStats()
	return []TierStats{{
		Tier:      TierMemory,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Entries:   cs.Entries,
		Bytes:     cs.Bytes,
		Evictions: cs.Evictions,
	}}
}

func (s *lruShard) pushFront(e *lruEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *lruShard) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *lruShard) moveToFront(e *lruEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *lruShard) evictTail() {
	e := s.tail
	if e == nil {
		return
	}
	s.unlink(e)
	delete(s.m, e.key)
	s.bytes -= e.size
	e.rec = nil
}
