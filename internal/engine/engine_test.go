package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"godpm/internal/engine"
	"godpm/internal/rules"
	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/task"
	"godpm/internal/workload"
)

// testConfig builds a quick single-IP simulation parameterised by seed and
// policy, cheap enough to fan out under -race.
func testConfig(seed int64, policy soc.PolicyKind, numTasks int) soc.Config {
	p := workload.HighActivity(seed, numTasks)
	p.PriorityWeights = [task.NumPriorities]float64{1, 2, 2, 1}
	return soc.Config{
		IPs:      []soc.IPSpec{{Name: "ip0", Sequence: p.MustGenerate()}},
		Policy:   policy,
		Battery:  soc.DefaultBattery(0.95),
		BusWords: 16,
		Horizon:  60 * sim.Sec,
	}
}

// testPlan fans three seeds out over DPM and the always-on baseline.
func testPlan(numTasks int) engine.Plan {
	var p engine.Plan
	for _, seed := range []int64{1, 2, 3} {
		p.AddFan("dpm", []int64{seed}, func(s int64) soc.Config {
			return testConfig(s, soc.PolicyDPM, numTasks)
		})
		p.AddFan("base", []int64{seed}, func(s int64) soc.Config {
			return testConfig(s, soc.PolicyAlwaysOn, numTasks)
		})
	}
	return p
}

func TestFingerprintStable(t *testing.T) {
	a, err := engine.Fingerprint(testConfig(1, soc.PolicyDPM, 10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.Fingerprint(testConfig(1, soc.PolicyDPM, 10))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical configs hash differently: %s vs %s", a, b)
	}

	// Normalization: leaving a defaultable field zero and setting it to
	// its documented default is the same configuration.
	explicit := testConfig(1, soc.PolicyDPM, 10)
	explicit.SampleInterval = 100 * sim.Us
	explicit.Timeout = 5 * sim.Ms
	explicit.LEM = soc.LEMOptions{Predictor: soc.PredictorEWMA, Alpha: 0.5, Table: rules.Table1()}
	c, err := engine.Fingerprint(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Fatal("explicitly-set defaults changed the fingerprint")
	}

	// Options that cannot influence the run don't influence the key:
	// GEM settings without a GEM, LEM settings under a non-DPM policy.
	unusedGEM := testConfig(1, soc.PolicyDPM, 10)
	unusedGEM.GEM.HighPriorityCutoff = 7
	unusedGEM.Timeout = 7 * sim.Ms // only read by the timeout policy
	d, err := engine.Fingerprint(unusedGEM)
	if err != nil {
		t.Fatal(err)
	}
	if a != d {
		t.Fatal("unused GEM/timeout options changed the fingerprint")
	}
	lastA := testConfig(1, soc.PolicyDPM, 10)
	lastA.LEM.Predictor = soc.PredictorLast
	lastA.LEM.Alpha = 0.3
	lastB := testConfig(1, soc.PolicyDPM, 10)
	lastB.LEM.Predictor = soc.PredictorLast
	lastB.LEM.Alpha = 0.7
	ga, err := engine.Fingerprint(lastA)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := engine.Fingerprint(lastB)
	if err != nil {
		t.Fatal(err)
	}
	if ga != gb {
		t.Fatal("Alpha changed the fingerprint of a non-EWMA predictor config")
	}
	to := testConfig(1, soc.PolicyTimeout, 10)
	toLEM := testConfig(1, soc.PolicyTimeout, 10)
	toLEM.LEM.Alpha = 0.9
	e, err := engine.Fingerprint(to)
	if err != nil {
		t.Fatal(err)
	}
	f, err := engine.Fingerprint(toLEM)
	if err != nil {
		t.Fatal(err)
	}
	if e != f {
		t.Fatal("LEM options changed the fingerprint of a non-DPM config")
	}

	for name, mutate := range map[string]func(*soc.Config){
		"seed":    func(c *soc.Config) { c.IPs[0].Sequence = workload.HighActivity(99, 10).MustGenerate() },
		"policy":  func(c *soc.Config) { c.Policy = soc.PolicyTimeout },
		"alpha":   func(c *soc.Config) { c.LEM.Alpha = 0.9 },
		"horizon": func(c *soc.Config) { c.Horizon = 30 * sim.Sec },
		"battery": func(c *soc.Config) { c.Battery.InitialSoC = 0.25 },
	} {
		cfg := testConfig(1, soc.PolicyDPM, 10)
		mutate(&cfg)
		d, err := engine.Fingerprint(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d == a {
			t.Fatalf("changing %s did not change the fingerprint", name)
		}
	}
}

// TestDeterminismAcrossWorkerCounts is the engine's core guarantee: the
// same plan produces digest-identical results at every worker count.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	plan := testPlan(15)
	var digests [][]string
	for _, workers := range []int{1, 4} {
		eng := engine.New(engine.Options{Workers: workers, NoCache: true})
		results, err := eng.Run(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		ds := make([]string, len(results))
		for i, jr := range results {
			if jr.Job.ID != plan.Jobs[i].ID {
				t.Fatalf("results not order-stable: slot %d holds %s, want %s", i, jr.Job.ID, plan.Jobs[i].ID)
			}
			if jr.CacheHit {
				t.Fatalf("%s: cache hit with caching disabled", jr.Job.ID)
			}
			ds[i] = engine.ResultDigest(jr.Result)
		}
		digests = append(digests, ds)
	}
	for i := range digests[0] {
		if digests[0][i] != digests[1][i] {
			t.Fatalf("job %s: digest differs between 1 and 4 workers", plan.Jobs[i].ID)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	plan := testPlan(10)
	eng := engine.New(engine.Options{Workers: 4})

	first, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Hits != 0 || st.Misses != int64(plan.Len()) || st.Runs != int64(plan.Len()) {
		t.Fatalf("cold run counters: %+v", st)
	}

	second, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Hits != int64(plan.Len()) || st.Runs != int64(plan.Len()) {
		t.Fatalf("warm run counters: %+v (want %d hits, no new runs)", st, plan.Len())
	}
	for i := range second {
		if !second[i].CacheHit {
			t.Fatalf("%s: expected cache hit", second[i].Job.ID)
		}
		if engine.ResultDigest(second[i].Result) != engine.ResultDigest(first[i].Result) {
			t.Fatalf("%s: cached result differs", second[i].Job.ID)
		}
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plan := testPlan(10)

	c1, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng1 := engine.New(engine.Options{Workers: 2, Cache: c1})
	first, err := eng1.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	// A separate engine over the same directory — as a fresh process would
	// see it — must serve every job from disk, digest-identically.
	c2, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := engine.New(engine.Options{Workers: 2, Cache: c2})
	second, err := eng2.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	st := eng2.Stats()
	if st.Runs != 0 || st.Hits != int64(plan.Len()) {
		t.Fatalf("disk-warm counters: %+v", st)
	}
	for i := range second {
		if !second[i].CacheHit {
			t.Fatalf("%s: expected disk cache hit", second[i].Job.ID)
		}
		if engine.ResultDigest(second[i].Result) != engine.ResultDigest(first[i].Result) {
			t.Fatalf("%s: disk round trip changed the result", second[i].Job.ID)
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.Options{Workers: 2})
	results, err := eng.Run(ctx, testPlan(10))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, jr := range results {
		if jr.Err == nil {
			t.Fatalf("%s: expected abandoned job", jr.Job.ID)
		}
	}
	if st := eng.Stats(); st.Runs != 0 {
		t.Fatalf("ran %d jobs under a cancelled context", st.Runs)
	}
}

func TestJobErrorsAreCollected(t *testing.T) {
	var p engine.Plan
	p.Add("ok", testConfig(1, soc.PolicyDPM, 5))
	p.Add("bad", soc.Config{}) // no IPs — soc.Run rejects it
	eng := engine.New(engine.Options{Workers: 2})
	results, err := eng.Run(context.Background(), p)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want job 'bad' failure", err)
	}
	if results[0].Err != nil || results[0].Result == nil {
		t.Fatalf("healthy job damaged by sibling failure: %+v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("bad job reported no error")
	}
}

func TestOnResultObservesEveryJob(t *testing.T) {
	plan := testPlan(5)
	seen := make(map[int]bool)
	eng := engine.New(engine.Options{
		Workers: 4,
		OnResult: func(i int, jr engine.JobResult) {
			if seen[i] {
				t.Errorf("job %d observed twice", i)
			}
			seen[i] = true
		},
	})
	if _, err := eng.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if len(seen) != plan.Len() {
		t.Fatalf("observed %d of %d jobs", len(seen), plan.Len())
	}
}
