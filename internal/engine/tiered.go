package engine

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
)

// Tier names used by the built-in caches' TierStats.
const (
	TierMemory = "memory"
	TierDisk   = "disk"
	TierRemote = "remote"
)

// TierStats are one cache tier's lookup and occupancy counters. The
// hit/miss split per tier is what makes fleet-wide dedup observable
// rather than inferred: a serving replica whose remote tier shows hits
// is provably being served simulations another replica ran.
type TierStats struct {
	Tier   string `json:"tier"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
	// Errors counts failed operations against the tier (remote transport
	// failures, corrupt bodies); local tiers don't fail, they miss.
	Errors int64 `json:"errors,omitempty"`
	// Puts counts store attempts against the tier (surfaced for the
	// remote tier, whose write-behind PUTs are asynchronous and would
	// otherwise be invisible).
	Puts int64 `json:"puts,omitempty"`
	// PutDrops counts write-behind Puts dropped because the queue was
	// full — lost replication opportunities, never lost results.
	PutDrops  int64 `json:"put_drops,omitempty"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Evictions int64 `json:"evictions"`
	// Rejected counts responses dropped because their bytes did not match
	// the digest the peer vouched for — corruption caught end-to-end.
	Rejected int64 `json:"rejected,omitempty"`
	// Breaker is the remote tier's circuit-breaker state, "open" or
	// "closed"; empty for tiers without a breaker. The companion fields
	// say why it is where it is: consecutive failures feeding it, how
	// many times it has tripped, how many operations an open breaker
	// short-circuited, and (while open) milliseconds until the next probe.
	Breaker       string `json:"breaker,omitempty"`
	BreakerFails  int64  `json:"breaker_fails,omitempty"`
	BreakerTrips  int64  `json:"breaker_trips,omitempty"`
	BreakerSkips  int64  `json:"breaker_skips,omitempty"`
	BreakerWaitMs int64  `json:"breaker_wait_ms,omitempty"`
}

// Breaker state labels used in TierStats.Breaker.
const (
	breakerOpen   = "open"
	breakerClosed = "closed"
)

// TierStatsReporter is implemented by caches that can split their
// counters per tier; Engine.Stats surfaces the slice when present.
// Layered caches (Disk = memory front + files, Tiered = its children)
// report one entry per layer.
type TierStatsReporter interface {
	TierStats() []TierStats
}

// Warmer is implemented by caches that can pre-populate themselves for
// a set of keys about to be looked up (see Tiered.Warm); Engine.Run
// invokes it with the plan's fingerprints before dispatching, so a
// batched remote stat replaces per-job round-trips.
type Warmer interface {
	Warm(ctx context.Context, keys []string) int
}

// haser is an optional probe without side effects (no promotion, no
// recency bump, no hit/miss accounting).
type haser interface {
	Has(key string) bool
}

// localProber is implemented by caches that can probe their cheap local
// tiers separately from expensive (network) ones; the engine uses it
// for the pre-singleflight probe so only flight leaders pay the network
// round-trip.
type localProber interface {
	GetLocal(key string) (*Record, bool)
}

// blobStater is the batched existence probe a remote tier offers for
// plan warm-up.
type blobStater interface {
	Stat(ctx context.Context, keys []string) (map[string]bool, error)
}

// Tier is one layer of a Tiered cache.
type Tier struct {
	// Name labels the tier in TierStats when its Cache does not report
	// its own (the built-in LRU, Disk and Remote caches all do).
	Name  string
	Cache Cache
	// AsyncPut selects write-behind: Put enqueues to a bounded queue
	// drained by a background writer instead of blocking the caller on
	// the tier's (typically network) latency. When the queue is full the
	// Put is dropped and counted, never waited for.
	AsyncPut bool
}

// TieredOptions tunes a Tiered cache. The zero value selects defaults.
type TieredOptions struct {
	// QueueLen bounds the shared write-behind queue feeding the AsyncPut
	// tiers; 0 means defaultWriteBehindQueue. A full queue drops Puts
	// (counted per tier in TierStats.PutDrops) rather than blocking the
	// simulation path.
	QueueLen int
	// WarmConcurrency bounds the parallel fetches Warm issues for
	// remotely-present entries; 0 means defaultWarmConcurrency.
	WarmConcurrency int
}

const (
	defaultWriteBehindQueue = 256
	defaultWarmConcurrency  = 8
)

// Tiered composes caches into a read-through hierarchy: Get probes the
// tiers in order and promotes a deeper hit into every faster synchronous
// tier, so a result fetched from the shared remote store is served from
// local memory on the next probe. Put writes through the synchronous
// tiers and write-behind to the AsyncPut ones, so the network hop never
// sits on the simulation path.
//
// The canonical fleet composition is memory→disk→remote:
//
//	NewTiered(
//		Tier{Cache: disk},                        // Disk = memory front + files
//		Tier{Cache: remote, AsyncPut: true},      // shared dpmremote store
//	)
//
// A down or slow remote tier degrades Gets to the local tiers (the
// Remote cache itself fails open), so composing a remote in never makes
// a request fail that would have succeeded locally. Safe for concurrent
// use. Call Close when done to flush the write-behind queue.
type Tiered struct {
	tiers      []Tier
	queue      chan wbPut
	closed     chan struct{}
	closeOnce  sync.Once
	wg         sync.WaitGroup
	drops      []atomic.Int64 // per-tier write-behind drops
	promotions atomic.Int64
	warmConc   int
}

type wbPut struct {
	tier int
	key  string
	rec  *Record
}

// NewTiered builds a tiered cache with default options over the given
// tiers, ordered fastest first.
func NewTiered(tiers ...Tier) *Tiered {
	return NewTieredWith(TieredOptions{}, tiers...)
}

// NewTieredWith builds a tiered cache with explicit options.
func NewTieredWith(opts TieredOptions, tiers ...Tier) *Tiered {
	qlen := opts.QueueLen
	if qlen <= 0 {
		qlen = defaultWriteBehindQueue
	}
	wc := opts.WarmConcurrency
	if wc <= 0 {
		wc = defaultWarmConcurrency
	}
	c := &Tiered{
		tiers:    tiers,
		queue:    make(chan wbPut, qlen),
		closed:   make(chan struct{}),
		drops:    make([]atomic.Int64, len(tiers)),
		warmConc: wc,
	}
	for _, t := range tiers {
		if t.AsyncPut {
			c.wg.Add(1)
			go c.writeBehind()
			break
		}
	}
	return c
}

// writeBehind drains the queue until Close, then flushes what is left.
func (c *Tiered) writeBehind() {
	defer c.wg.Done()
	for {
		select {
		case p := <-c.queue:
			_ = c.tiers[p.tier].Cache.Put(p.key, p.rec)
		case <-c.closed:
			for {
				select {
				case p := <-c.queue:
					_ = c.tiers[p.tier].Cache.Put(p.key, p.rec)
				default:
					return
				}
			}
		}
	}
}

// Get probes the tiers fastest-first; a hit in a deeper tier is promoted
// into every faster synchronous tier before returning.
func (c *Tiered) Get(key string) (*Record, bool) {
	return c.get(key, len(c.tiers))
}

// GetLocal probes only the tiers before the first remote one (the first
// offering a batched stat — see blobStater). The engine uses it for the
// pre-singleflight probe, so a stampede of identical jobs costs one
// network round-trip (the flight leader's full Get) instead of one per
// job: the network hop collapses into the singleflight exactly like the
// simulation itself.
func (c *Tiered) GetLocal(key string) (*Record, bool) {
	n := len(c.tiers)
	for i := range c.tiers {
		if _, remote := c.tiers[i].Cache.(blobStater); remote {
			n = i
			break
		}
	}
	return c.get(key, n)
}

func (c *Tiered) get(key string, n int) (*Record, bool) {
	for i := 0; i < n; i++ {
		rec, ok := c.tiers[i].Cache.Get(key)
		if !ok {
			continue
		}
		c.promote(key, rec, i)
		return rec, true
	}
	return nil, false
}

// promote writes a tier-i hit into the faster synchronous tiers.
func (c *Tiered) promote(key string, rec *Record, i int) {
	if i == 0 {
		return
	}
	for j := 0; j < i; j++ {
		if !c.tiers[j].AsyncPut {
			_ = c.tiers[j].Cache.Put(key, rec)
		}
	}
	c.promotions.Add(1)
}

// Put writes through the synchronous tiers and enqueues write-behind
// Puts for the asynchronous ones. A full write-behind queue drops the
// Put (counted) instead of blocking: the local tiers already hold the
// result, so the only cost is a replication opportunity.
func (c *Tiered) Put(key string, rec *Record) error {
	var firstErr error
	for i := range c.tiers {
		if c.tiers[i].AsyncPut {
			select {
			case c.queue <- wbPut{tier: i, key: key, rec: rec}:
			default:
				c.drops[i].Add(1)
			}
			continue
		}
		if err := c.tiers[i].Cache.Put(key, rec); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Promotions counts Gets served from a deeper tier and copied forward.
func (c *Tiered) Promotions() int64 { return c.promotions.Load() }

// Close flushes the write-behind queue, stops the background writer,
// then closes any tier cache that is itself a Closer (the Remote client
// aborts in-flight backoff waits and releases its connections). Puts
// after Close still reach the synchronous tiers; their write-behind
// copies are dropped.
func (c *Tiered) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	c.wg.Wait()
	for i := range c.tiers {
		if cl, ok := c.tiers[i].Cache.(io.Closer); ok {
			_ = cl.Close()
		}
	}
	return nil
}

// Warm pre-populates the faster tiers for keys about to be looked up:
// for every tier offering a batched existence probe (the remote), it
// stats the keys missing from the faster tiers in one round-trip and
// fetches the present ones concurrently, promoting them forward. It
// returns the number of entries fetched. Failures degrade to a cold
// start — the per-key Get path still works without warm-up.
func (c *Tiered) Warm(ctx context.Context, keys []string) int {
	fetched := 0
	for i := range c.tiers {
		st, ok := c.tiers[i].Cache.(blobStater)
		if !ok {
			continue
		}
		missing := c.missingBefore(keys, i)
		if len(missing) == 0 {
			continue
		}
		present, err := st.Stat(ctx, missing)
		if err != nil {
			continue
		}
		var (
			wg  sync.WaitGroup
			sem = make(chan struct{}, c.warmConc)
			n   atomic.Int64
		)
		for _, k := range missing {
			if !present[k] || ctx.Err() != nil {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(k string) {
				defer wg.Done()
				defer func() { <-sem }()
				if rec, ok := c.tiers[i].Cache.Get(k); ok {
					c.promote(k, rec, i)
					n.Add(1)
				}
			}(k)
		}
		wg.Wait()
		fetched += int(n.Load())
	}
	return fetched
}

// missingBefore filters keys to those absent from every tier faster
// than tier i, probing without promotion where the tier supports it.
func (c *Tiered) missingBefore(keys []string, i int) []string {
	missing := make([]string, 0, len(keys))
next:
	for _, k := range keys {
		for j := 0; j < i; j++ {
			if h, ok := c.tiers[j].Cache.(haser); ok {
				if h.Has(k) {
					continue next
				}
			} else if _, ok := c.tiers[j].Cache.Get(k); ok {
				continue next
			}
		}
		missing = append(missing, k)
	}
	return missing
}

// CacheStats sums the occupancy of the tiers that report it. The
// built-in Remote tier reports zero occupancy (the blobs live on the
// server), so for the canonical local+remote composition this is the
// local occupancy, comparable to a bare Disk or LRU cache's.
func (c *Tiered) CacheStats() CacheStats {
	var st CacheStats
	for i := range c.tiers {
		if r, ok := c.tiers[i].Cache.(StatsReporter); ok {
			cs := r.CacheStats()
			st.Entries += cs.Entries
			st.Bytes += cs.Bytes
			st.Evictions += cs.Evictions
		}
	}
	return st
}

// TierStats flattens the per-tier counters of every layer: a tier that
// reports its own layers (Disk reports memory+disk, Remote reports
// itself) contributes those entries; others contribute a named stub.
// Write-behind drops are attributed to the dropping tier's last entry.
func (c *Tiered) TierStats() []TierStats {
	out := make([]TierStats, 0, len(c.tiers)+1)
	for i := range c.tiers {
		var ts []TierStats
		if r, ok := c.tiers[i].Cache.(TierStatsReporter); ok {
			ts = r.TierStats()
		} else {
			name := c.tiers[i].Name
			if name == "" {
				name = "tier"
			}
			ts = []TierStats{{Tier: name}}
		}
		if d := c.drops[i].Load(); d > 0 && len(ts) > 0 {
			ts[len(ts)-1].PutDrops += d
		}
		out = append(out, ts...)
	}
	return out
}
