package engine_test

import (
	"context"
	"testing"
	"time"

	"godpm/internal/engine"
	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/stats"
)

// tallyObserver counts task completions across runs.
type tallyObserver struct {
	soc.NopObserver
	tasks int
}

func (o *tallyObserver) TaskDone(t sim.Time, rec *stats.TaskRecord) { o.tasks++ }

// TestObservedJobCacheServed is the contract that motivated the observer
// redesign: instrumentation no longer makes a job uncacheable. The first
// run simulates (observer sees the tasks); the rerun of the same plan is
// cache-served — and, being unsimulated, is silent to the observer.
func TestObservedJobCacheServed(t *testing.T) {
	obs := &tallyObserver{}
	var plan engine.Plan
	plan.AddWith("watched", testConfig(1, soc.PolicyDPM, 10),
		soc.RunOptions{Observers: []soc.Observer{obs}})

	eng := engine.New(engine.Options{Workers: 1})
	first, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].CacheHit {
		t.Fatal("first run cannot be a cache hit")
	}
	if obs.tasks == 0 {
		t.Fatal("observer saw no tasks on the simulated run")
	}
	seen := obs.tasks

	second, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !second[0].CacheHit {
		t.Fatal("observed job was not cache-served on rerun")
	}
	if engine.ResultDigest(second[0].Result) != engine.ResultDigest(first[0].Result) {
		t.Fatal("cache returned a different result")
	}
	if obs.tasks != seen {
		t.Errorf("observer fired on a cache-served job (%d -> %d)", seen, obs.tasks)
	}
	if st := eng.Stats(); st.Runs != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 run / 1 hit", st)
	}
}

// TestStopConditionsPartitionTheCache: a job with a stop condition must not
// share a cache slot with the bare job of the same Config — stopping early
// changes the Result — but reruns of the same stopped job are cache-served.
func TestStopConditionsPartitionTheCache(t *testing.T) {
	cfg := testConfig(2, soc.PolicyDPM, 40)
	stop := soc.RunOptions{StopWhen: []soc.StopCondition{soc.StopOnEnergyBudget(1e-3)}}
	var plan engine.Plan
	plan.Add("bare", cfg)
	plan.AddWith("stopped", cfg, stop)

	eng := engine.New(engine.Options{Workers: 1})
	results, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Key == results[1].Key {
		t.Fatal("stopped job shares the bare job's cache key")
	}
	if results[1].CacheHit {
		t.Fatal("stopped job hit the bare job's cache entry")
	}
	if results[1].Result.StopReason == "" {
		t.Fatal("stop condition never fired")
	}
	if results[1].Result.Duration >= results[0].Result.Duration {
		t.Fatal("stopped run did not end early")
	}

	rerun, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rerun[0].CacheHit || !rerun[1].CacheHit {
		t.Fatalf("rerun not cache-served: bare=%v stopped=%v", rerun[0].CacheHit, rerun[1].CacheHit)
	}
	if rerun[1].Result.StopReason != results[1].Result.StopReason {
		t.Fatal("cached stopped result lost its StopReason")
	}
}

// TestVolatileJobsNeverCached: wall-clock stop conditions depend on host
// timing, so their jobs must simulate every time.
func TestVolatileJobsNeverCached(t *testing.T) {
	var plan engine.Plan
	plan.AddWith("volatile", testConfig(3, soc.PolicyDPM, 5),
		soc.RunOptions{StopWhen: []soc.StopCondition{soc.StopOnWallClock(time.Hour)}})
	eng := engine.New(engine.Options{Workers: 1})
	for i := 0; i < 2; i++ {
		if _, err := eng.Run(context.Background(), plan); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.Stats(); st.Runs != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 runs / 0 hits", st)
	}
}

// TestOnStartStreamsProgress: OnStart fires exactly once per job before its
// OnResult, giving CLIs a live start/finish stream.
func TestOnStartStreamsProgress(t *testing.T) {
	plan := testPlan(5)
	started := make(map[int]bool)
	eng := engine.New(engine.Options{
		Workers: 4,
		OnStart: func(i int, job engine.Job) {
			if started[i] {
				t.Errorf("job %d started twice", i)
			}
			started[i] = true
		},
		OnResult: func(i int, jr engine.JobResult) {
			if !started[i] {
				t.Errorf("job %d finished before OnStart", i)
			}
		},
	})
	if _, err := eng.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if len(started) != plan.Len() {
		t.Fatalf("started %d of %d jobs", len(started), plan.Len())
	}
}
