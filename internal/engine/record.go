package engine

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"godpm/internal/soc"
)

// Record is the unit every cache tier stores and every server serves: the
// canonical encoded bytes of one soc.Result plus its lazily-decoded value.
// Building a Record marshals the result exactly once; after that, a cache
// hit — whether served from memory, disk, the remote store, or an HTTP
// response — is a copy of pre-encoded bytes, never a re-marshal, and the
// decoded Result is materialised at most once per record per process, only
// when a consumer actually asks for it.
//
// On disk and on the wire a record travels as a compact versioned binary
// container (see Encode): a fixed header carrying the fingerprint, the
// result's content digest and a checksum, followed by the body —
// canonical JSON, compressed per the header's codec. Records are immutable
// after construction (the lazy fields fill monotonically), so one record
// may safely back many concurrent jobs and HTTP responses.
type Record struct {
	key    string
	digest string
	rawLen int

	mu        sync.Mutex
	codec     Codec
	body      []byte // stored/wire body (compressed per codec); nil until first Encode of a fresh record
	raw       []byte // canonical JSON; nil until inflated for a decoded container
	container []byte // cached full container encoding (codec `codec`)

	res atomic.Pointer[soc.Result]
	aux atomic.Pointer[[]byte]
}

// Codec identifies a record body's compression. The byte values are part
// of the on-disk/wire format — never renumber them.
type Codec uint8

const (
	// CodecRaw stores the canonical JSON body uncompressed.
	CodecRaw Codec = 0
	// CodecFlate compresses the body with DEFLATE (stdlib compress/flate).
	// This is the default: ledger-heavy result JSON shrinks 5-10x.
	CodecFlate Codec = 1
	// CodecZstd is reserved for zstd-compressed bodies, following rcc's
	// holotree zstd spec. The codec byte is allocated so stores written by
	// a zstd-enabled build stay identifiable, but this build has no zstd
	// implementation compiled in: encoding with it is refused, and a
	// container carrying it decodes with ErrCodecUnavailable.
	CodecZstd Codec = 2
)

// ParseCodec maps a codec knob ("", "flate", "none"/"raw", "zstd") to its
// Codec. The empty string selects the default (flate). Codecs the binary
// cannot encode (zstd) are refused here, at configuration time.
func ParseCodec(name string) (Codec, error) {
	switch name {
	case "", "flate":
		return CodecFlate, nil
	case "none", "raw":
		return CodecRaw, nil
	case "zstd":
		return 0, fmt.Errorf("engine: %w", ErrCodecUnavailable)
	default:
		return 0, fmt.Errorf("engine: unknown record codec %q (have: flate, none)", name)
	}
}

func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "none"
	case CodecFlate:
		return "flate"
	case CodecZstd:
		return "zstd"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// ErrCodecUnavailable reports a record whose codec this binary cannot
// process (e.g. zstd, whose slot is reserved but not compiled in).
var ErrCodecUnavailable = fmt.Errorf("zstd codec not built into this binary")

// The binary container layout, little-endian:
//
//	offset  size  field
//	     0     4  magic "GDPM"
//	     4     1  format version (recordVersion)
//	     5     1  codec
//	     6     2  flags (reserved, 0)
//	     8     2  key length
//	    10     2  digest length
//	    12     4  raw (uncompressed body) length
//	    16     4  body length
//	    20    32  SHA-256 of the body bytes as stored
//	    52     …  key | digest | body
//
// The checksum covers the stored body, so corruption — a torn disk write,
// a flipped wire bit — is caught at decode time without decompressing.
// The key and digest live in the header so a server can vouch a blob's
// identity and content digest without touching the body at all.
const (
	recordMagic    = "GDPM"
	recordVersion  = 1
	recordHdrLen   = 52
	maxRecordField = 1 << 10 // sanity bound on key/digest lengths
	maxRecordBody  = 1 << 30 // sanity bound on raw/body lengths

	// recordOverhead is the fixed per-record share of MemSize: the struct,
	// its entry bookkeeping in a cache, and slack for the lazy fields.
	recordOverhead = 512
)

// RecordContentType is the HTTP media type of an encoded record container,
// used by the dpmremote protocol's content negotiation.
const RecordContentType = "application/x-gdpm-record"

// NewRecord builds a record from a freshly-computed result: the canonical
// JSON is marshalled once, here, and the content digest is computed from
// the result's deterministic fields (see ResultDigest). Host timing
// (WallSeconds) is zeroed in the canonical body, mirroring the digest's
// exclusion of it: equal simulations produce byte-identical records, so
// record sizes — and the exact byte accounting built on them — are
// deterministic across runs, hosts and worker counts.
func NewRecord(key string, r *soc.Result) (*Record, error) {
	canon := *r
	canon.WallSeconds = 0
	raw, err := json.Marshal(&canon)
	if err != nil {
		return nil, fmt.Errorf("engine: encode result: %w", err)
	}
	rec := &Record{key: key, digest: ResultDigest(&canon), rawLen: len(raw), raw: raw}
	rec.res.Store(&canon)
	return rec, nil
}

// RecordFromJSON builds a record from legacy canonical-JSON bytes (the
// pre-binary wire format). The bytes are decoded eagerly — callers use
// this at trust boundaries, where an undecodable body must be refused —
// and the digest is computed from the decoded result.
func RecordFromJSON(key string, raw []byte) (*Record, error) {
	var r soc.Result
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("engine: decode result: %w", err)
	}
	rec := &Record{key: key, digest: ResultDigest(&r), rawLen: len(raw), raw: raw}
	rec.res.Store(&r)
	return rec, nil
}

// DecodeRecord parses a binary container. The header is validated
// (magic, version, lengths) and the body checksum is verified, so a
// decoded record's bytes are known-intact — but the body is NOT
// decompressed or unmarshalled here; that happens lazily on the first
// JSON()/Result() call. A record with an unknown codec decodes only far
// enough to report ErrCodecUnavailable.
func DecodeRecord(data []byte) (*Record, error) {
	if len(data) < recordHdrLen || string(data[:4]) != recordMagic {
		return nil, fmt.Errorf("engine: not a record container")
	}
	if v := data[4]; v != recordVersion {
		return nil, fmt.Errorf("engine: record version %d not supported (want %d)", v, recordVersion)
	}
	codec := Codec(data[5])
	switch codec {
	case CodecRaw, CodecFlate:
	case CodecZstd:
		return nil, fmt.Errorf("engine: record: %w", ErrCodecUnavailable)
	default:
		return nil, fmt.Errorf("engine: record: unknown codec %d", codec)
	}
	keyLen := int(binary.LittleEndian.Uint16(data[8:10]))
	digestLen := int(binary.LittleEndian.Uint16(data[10:12]))
	rawLen := int(binary.LittleEndian.Uint32(data[12:16]))
	bodyLen := int(binary.LittleEndian.Uint32(data[16:20]))
	if keyLen > maxRecordField || digestLen > maxRecordField ||
		rawLen > maxRecordBody || bodyLen > maxRecordBody {
		return nil, fmt.Errorf("engine: record header lengths out of range")
	}
	if len(data) != recordHdrLen+keyLen+digestLen+bodyLen {
		return nil, fmt.Errorf("engine: record length %d does not match header (want %d)",
			len(data), recordHdrLen+keyLen+digestLen+bodyLen)
	}
	var sum [32]byte
	copy(sum[:], data[20:52])
	key := string(data[recordHdrLen : recordHdrLen+keyLen])
	digest := string(data[recordHdrLen+keyLen : recordHdrLen+keyLen+digestLen])
	body := data[recordHdrLen+keyLen+digestLen:]
	if sha256.Sum256(body) != sum {
		return nil, fmt.Errorf("engine: record body checksum mismatch")
	}
	rec := &Record{key: key, digest: digest, rawLen: rawLen, codec: codec, body: body, container: data}
	if codec == CodecRaw {
		if len(body) != rawLen {
			return nil, fmt.Errorf("engine: raw record body length %d != header raw length %d", len(body), rawLen)
		}
		rec.raw = body
	}
	return rec, nil
}

// Key returns the fingerprint the record was stored under ("" for records
// built before their key was known).
func (r *Record) Key() string { return r.key }

// Digest returns the result's content digest (see ResultDigest). For a
// decoded container it comes straight from the header — vouching a blob's
// digest costs no decode.
func (r *Record) Digest() string { return r.digest }

// RawLen is the canonical JSON length in bytes — the record's logical
// size, independent of codec.
func (r *Record) RawLen() int { return r.rawLen }

// MemSize is the record's in-memory accounting size: a deterministic
// function of the header fields (fixed overhead + key + digest + raw
// length), so a cache's byte accounting is exact by construction —
// accounted bytes always equal the sum of live records' MemSize — and
// independent of which lazy fields happen to be materialised.
func (r *Record) MemSize() int64 {
	return recordOverhead + int64(len(r.key)) + int64(len(r.digest)) + int64(r.rawLen)
}

// JSON returns the canonical JSON bytes, inflating the stored body on
// first call. The returned slice is shared — treat it as immutable.
func (r *Record) JSON() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jsonLocked()
}

func (r *Record) jsonLocked() ([]byte, error) {
	if r.raw != nil {
		return r.raw, nil
	}
	switch r.codec {
	case CodecFlate:
		raw, err := inflate(r.body, r.rawLen)
		if err != nil {
			return nil, fmt.Errorf("engine: record body: %w", err)
		}
		r.raw = raw
		return raw, nil
	default:
		return nil, fmt.Errorf("engine: record has no body (codec %s)", r.codec)
	}
}

// Result returns the decoded result, unmarshalling the canonical JSON on
// first call. Results handed out are shared — treat them as strictly
// immutable, exactly like Cache.Get's contract.
func (r *Record) Result() (*soc.Result, error) {
	if res := r.res.Load(); res != nil {
		return res, nil
	}
	raw, err := r.JSON()
	if err != nil {
		return nil, err
	}
	var res soc.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("engine: decode record: %w", err)
	}
	// A concurrent decoder may have won; either pointer is the same value.
	r.res.CompareAndSwap(nil, &res)
	return r.res.Load(), nil
}

// Encode returns the record's binary container for the codec, compressing
// the body on first use and caching the encoding (so a record stored to
// disk and replicated to a remote store with the same codec compresses
// once). The returned slice is shared — treat it as immutable.
func (r *Record) Encode(codec Codec) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.container != nil && r.codec == codec {
		return r.container, nil
	}
	raw, err := r.jsonLocked()
	if err != nil {
		return nil, err
	}
	var body []byte
	switch codec {
	case CodecRaw:
		body = raw
	case CodecFlate:
		if r.body != nil && r.codec == CodecFlate {
			body = r.body
		} else {
			body, err = deflate(raw)
			if err != nil {
				return nil, fmt.Errorf("engine: compress record: %w", err)
			}
		}
	default:
		return nil, fmt.Errorf("engine: encode record: %w", ErrCodecUnavailable)
	}
	out := make([]byte, recordHdrLen, recordHdrLen+len(r.key)+len(r.digest)+len(body))
	copy(out[0:4], recordMagic)
	out[4] = recordVersion
	out[5] = byte(codec)
	binary.LittleEndian.PutUint16(out[6:8], 0)
	binary.LittleEndian.PutUint16(out[8:10], uint16(len(r.key)))
	binary.LittleEndian.PutUint16(out[10:12], uint16(len(r.digest)))
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(raw)))
	binary.LittleEndian.PutUint32(out[16:20], uint32(len(body)))
	sum := sha256.Sum256(body)
	copy(out[20:52], sum[:])
	out = append(out, r.key...)
	out = append(out, r.digest...)
	out = append(out, body...)
	r.codec, r.body, r.container = codec, body, out
	return out, nil
}

// Aux returns the serving-layer artifact attached with SetAux (nil if
// none). It lets a server cache one derived encoding — e.g. dpmserve's
// pre-encoded response fragment — on the record itself, so the artifact
// is computed once per record and evicted with it.
func (r *Record) Aux() []byte {
	if p := r.aux.Load(); p != nil {
		return *p
	}
	return nil
}

// SetAux attaches a serving-layer artifact (see Aux). Last write wins;
// the artifact must be derived from the record alone so racing writers
// are interchangeable.
func (r *Record) SetAux(b []byte) { r.aux.Store(&b) }

// flate writer/reader pools: a flate.Writer is ~700 KiB of window state,
// far too heavy to allocate per Put.
var (
	flateWriters = sync.Pool{New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	}}
	flateReaders = sync.Pool{New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	}}
)

// deflate compresses raw with DEFLATE at BestSpeed — result JSON is
// highly redundant (repeated ledger field names), so even the fastest
// level lands the 5-10x shrink the format exists for.
func deflate(raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(raw)/4 + 64)
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(raw); err != nil {
		flateWriters.Put(w)
		return nil, err
	}
	if err := w.Close(); err != nil {
		flateWriters.Put(w)
		return nil, err
	}
	flateWriters.Put(w)
	return buf.Bytes(), nil
}

// inflate decompresses a DEFLATE body, requiring the exact raw length the
// header promised — a short or long stream is corruption.
func inflate(body []byte, rawLen int) ([]byte, error) {
	fr := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(body), nil); err != nil {
		return nil, err
	}
	raw := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, fmt.Errorf("inflate: %w", err)
	}
	// The stream must end exactly here.
	var extra [1]byte
	if n, _ := fr.Read(extra[:]); n != 0 {
		return nil, fmt.Errorf("inflate: body longer than header's raw length %d", rawLen)
	}
	return raw, nil
}
