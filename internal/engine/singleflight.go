package engine

import (
	"sync"

	"godpm/internal/soc"
)

// flight is one in-progress simulation shared by every job with the same
// cache key: the leader runs it, waiters block on done and read the
// outcome. The record travels alongside the decoded result so waiters
// are served the same pre-encoded bytes a cache hit would be.
type flight struct {
	done chan struct{}
	r    *soc.Result
	rec  *Record
	err  error
}

// flightGroup deduplicates concurrent identical work (singleflight): at
// most one flight exists per key at a time, so a stampede of jobs with
// the same fingerprint collapses to one simulation.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the live flight for key and whether the caller became its
// leader (created it). Leaders must call finish exactly once.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome to the waiters and retires the
// flight, so later jobs with the same key probe the cache (which the
// leader populated before calling finish) instead of a spent flight.
func (g *flightGroup) finish(key string, f *flight, r *soc.Result, rec *Record, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.r, f.rec, f.err = r, rec, err
	close(f.done)
}
