package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"godpm/internal/engine"
	"godpm/internal/soc"
)

// blobServerForTest wires a BlobServer over a fresh in-memory store and
// serves it over loopback HTTP, returning the test server and the store.
func blobServerForTest(t *testing.T) (*httptest.Server, *engine.BlobServer, *engine.LRU) {
	t.Helper()
	store := engine.NewLRU(engine.LRUOptions{})
	blob := engine.NewBlobServer(store, engine.BlobServerOptions{})
	ts := httptest.NewServer(blob)
	t.Cleanup(ts.Close)
	return ts, blob, store
}

func newRemote(t *testing.T, opts engine.RemoteOptions) *engine.Remote {
	t.Helper()
	r, err := engine.NewRemote(opts)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	return r
}

// computeResult runs one simulation and returns its fingerprint and result.
func computeResult(t *testing.T, seed int64) (string, *soc.Result) {
	t.Helper()
	cfg := testConfig(seed, soc.PolicyDPM, 12)
	key, err := engine.Fingerprint(cfg)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	r, err := soc.Run(cfg)
	if err != nil {
		t.Fatalf("soc.Run: %v", err)
	}
	return key, r
}

func TestRemoteBlobServerRoundtrip(t *testing.T) {
	ts, blob, _ := blobServerForTest(t)
	remote := newRemote(t, engine.RemoteOptions{BaseURL: ts.URL})

	key, want := computeResult(t, 1)
	if remote.Has(key) {
		t.Fatalf("Has(%s) = true before Put", key)
	}
	if err := remote.Put(key, mustRecord(t, key, want)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !remote.Has(key) {
		t.Fatalf("Has(%s) = false after Put", key)
	}
	got, ok := remote.Get(key)
	if !ok {
		t.Fatalf("Get(%s) missed after Put", key)
	}
	if got.Digest() != engine.ResultDigest(want) {
		t.Fatalf("roundtripped result differs: %s != %s",
			got.Digest(), engine.ResultDigest(want))
	}

	absent := strings.Repeat("0f", 32)
	if _, ok := remote.Get(absent); ok {
		t.Fatalf("Get(%s) hit for a key never stored", absent)
	}
	present, err := remote.Stat(context.Background(), []string{key, absent})
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if !present[key] || present[absent] {
		t.Fatalf("Stat = %v, want only %s present", present, key)
	}

	st := blob.Stats()
	if st.GetHits != 1 || st.Puts != 1 || st.StatBatch != 1 || st.StatKeys != 2 {
		t.Fatalf("server stats = %+v, want 1 get hit, 1 put, 1 stat batch of 2 keys", st)
	}
	tiers := remote.TierStats()
	if len(tiers) != 1 || tiers[0].Tier != engine.TierRemote {
		t.Fatalf("TierStats = %+v, want one %q entry", tiers, engine.TierRemote)
	}
	if tiers[0].Hits != 1 || tiers[0].Puts != 1 {
		t.Fatalf("TierStats = %+v, want 1 hit and 1 put", tiers[0])
	}
}

func TestRemoteRejectsInvalidKeys(t *testing.T) {
	ts, _, _ := blobServerForTest(t)
	remote := newRemote(t, engine.RemoteOptions{BaseURL: ts.URL})
	for _, key := range []string{"", "short", strings.Repeat("A", 64), "../../etc/passwd"} {
		if _, ok := remote.Get(key); ok {
			t.Fatalf("Get(%q) hit for an invalid key", key)
		}
		if err := remote.Put(key, mustRecord(t, key, &soc.Result{})); err == nil {
			t.Fatalf("Put(%q) accepted an invalid key", key)
		}
	}
	// The server enforces the same bound independently of the client.
	resp, err := http.Get(ts.URL + "/v1/blob/not-a-fingerprint")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("server accepted invalid fingerprint: status %d", resp.StatusCode)
	}
}

// TestFleetDedupAcrossEngines is the subsystem's core promise in one
// process: two engines sharing nothing but a dpmremote store, and the
// second runs zero simulations.
func TestFleetDedupAcrossEngines(t *testing.T) {
	ts, blob, _ := blobServerForTest(t)
	plan := testPlan(12)

	tieredA := engine.NewTiered(
		engine.Tier{Cache: engine.NewLRU(engine.LRUOptions{}), Name: "local"},
		engine.Tier{Cache: newRemote(t, engine.RemoteOptions{BaseURL: ts.URL}), AsyncPut: true},
	)
	engA := engine.New(engine.Options{Workers: 4, Cache: tieredA})
	resA, err := engA.Run(context.Background(), plan)
	if err != nil {
		t.Fatalf("engine A: %v", err)
	}
	// Close flushes the write-behind queue, so every result reaches the
	// shared store before the "second replica" starts.
	if err := tieredA.Close(); err != nil {
		t.Fatalf("close A: %v", err)
	}
	distinct := int64(engA.Stats().Runs)
	if got := blob.Stats().Store.Entries; got != distinct {
		t.Fatalf("store holds %d entries after flush, want %d", got, distinct)
	}

	remoteB := newRemote(t, engine.RemoteOptions{BaseURL: ts.URL})
	tieredB := engine.NewTiered(
		engine.Tier{Cache: engine.NewLRU(engine.LRUOptions{}), Name: "local"},
		engine.Tier{Cache: remoteB, AsyncPut: true},
	)
	engB := engine.New(engine.Options{Workers: 4, Cache: tieredB})
	resB, err := engB.Run(context.Background(), plan)
	if err != nil {
		t.Fatalf("engine B: %v", err)
	}
	defer tieredB.Close()

	stB := engB.Stats()
	if stB.Runs != 0 {
		t.Fatalf("engine B ran %d simulations, want 0 (all served by the fleet store)", stB.Runs)
	}
	if stB.Hits != int64(len(plan.Jobs)) {
		t.Fatalf("engine B hits = %d, want %d", stB.Hits, len(plan.Jobs))
	}
	var remoteHits int64
	for _, tier := range stB.Tiers {
		if tier.Tier == engine.TierRemote {
			remoteHits += tier.Hits
		}
	}
	if remoteHits == 0 {
		t.Fatalf("engine B shows no remote-tier hits: %+v", stB.Tiers)
	}
	for i := range resA {
		if engine.ResultDigest(resA[i].Result) != engine.ResultDigest(resB[i].Result) {
			t.Fatalf("job %d: remote-served result differs from computed one", i)
		}
	}
}

// runWithRemote runs the standard plan through a tiered cache whose
// remote tier points at base, and asserts the run itself is unharmed.
func runWithRemote(t *testing.T, base string, opts engine.RemoteOptions) (*engine.Engine, *engine.LRU, *engine.Remote) {
	t.Helper()
	opts.BaseURL = base
	remote := newRemote(t, opts)
	local := engine.NewLRU(engine.LRUOptions{})
	tiered := engine.NewTiered(
		engine.Tier{Cache: local, Name: "local"},
		engine.Tier{Cache: remote, AsyncPut: true},
	)
	t.Cleanup(func() { tiered.Close() })
	eng := engine.New(engine.Options{Workers: 4, Cache: tiered})
	plan := testPlan(12)
	results, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatalf("Run with remote %s: %v", base, err)
	}
	for i := range results {
		if results[i].Err != nil || results[i].Result == nil {
			t.Fatalf("job %d failed: %v", i, results[i].Err)
		}
	}
	st := eng.Stats()
	if st.Errors != 0 {
		t.Fatalf("engine booked %d errors, want 0 (remote must fail open)", st.Errors)
	}
	return eng, local, remote
}

func TestRemoteDownFailsOpen(t *testing.T) {
	// A listener that is closed immediately: connections are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ln.Close()

	eng, _, _ := runWithRemote(t, base, engine.RemoteOptions{
		Timeout: 200 * time.Millisecond, Retries: -1, // -1 → no retries
	})
	if st := eng.Stats(); st.Runs == 0 {
		t.Fatalf("no simulations ran; the dead remote should degrade to local compute")
	}
}

func TestRemoteServerErrorFailsOpen(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	_, _, remote := runWithRemote(t, ts.URL, engine.RemoteOptions{
		Timeout: 200 * time.Millisecond, Retries: -1, RetryBackoff: time.Millisecond,
	})
	tiers := remote.TierStats()
	if tiers[0].Errors == 0 {
		t.Fatalf("remote tier reports no errors against an always-500 server: %+v", tiers[0])
	}
}

func TestRemoteTimeoutFailsOpen(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(250 * time.Millisecond)
	}))
	defer ts.Close()

	runWithRemote(t, ts.URL, engine.RemoteOptions{
		Timeout: 50 * time.Millisecond, Retries: -1,
	})
}

// TestCorruptRemoteDoesNotPoison serves garbage for every blob and
// claims every key is present, the worst case for promotion: the local
// tiers must end the run holding only genuinely computed results.
func TestCorruptRemoteDoesNotPoison(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost: // stat: claim everything exists
			var req struct {
				Keys []string `json:"keys"`
			}
			json.NewDecoder(r.Body).Decode(&req)
			json.NewEncoder(w).Encode(map[string]any{"present": req.Keys})
		case r.Method == http.MethodGet:
			w.Write([]byte("}{ this is not a result record"))
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer ts.Close()

	eng, local, remote := runWithRemote(t, ts.URL, engine.RemoteOptions{
		Timeout: time.Second, Retries: -1,
	})
	st := eng.Stats()
	if st.Runs == 0 {
		t.Fatalf("no simulations ran; corrupt remote entries must degrade to compute")
	}
	// Every locally cached entry must digest-match a fresh simulation of
	// its job — promotion never wrote remote garbage into the local tier.
	for _, job := range testPlan(12).Jobs {
		key, err := engine.Fingerprint(job.Config)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := local.Get(key)
		if !ok {
			continue
		}
		want, err := soc.Run(job.Config)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest() != engine.ResultDigest(want) {
			t.Fatalf("local cache poisoned for %s", job.ID)
		}
	}
	if tiers := remote.TierStats(); tiers[0].Errors == 0 {
		t.Fatalf("corrupt bodies were not counted as remote errors: %+v", tiers[0])
	}
}

func TestRemoteBreakerTrips(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	remote := newRemote(t, engine.RemoteOptions{
		BaseURL:          ts.URL,
		Timeout:          time.Second,
		Retries:          -1,
		FailureThreshold: 3,
		Cooldown:         time.Hour, // stays open for the whole test
	})
	key := strings.Repeat("ab", 32)
	for i := 0; i < 10; i++ {
		if _, ok := remote.Get(key); ok {
			t.Fatalf("Get hit against an always-500 server")
		}
	}
	if got := requests.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly 3 (threshold) before the breaker opened", got)
	}
	if remote.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", remote.Trips())
	}
	if remote.Skipped() != 7 {
		t.Fatalf("Skipped = %d, want 7 (10 gets - 3 real attempts)", remote.Skipped())
	}
}

func TestRemoteRetriesTransientFailures(t *testing.T) {
	key, want := computeResult(t, 3)
	blob, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) <= 2 {
			http.Error(w, "try again", http.StatusServiceUnavailable)
			return
		}
		w.Write(blob)
	}))
	defer ts.Close()

	remote := newRemote(t, engine.RemoteOptions{
		BaseURL: ts.URL, Timeout: time.Second, Retries: 2, RetryBackoff: time.Millisecond,
	})
	got, ok := remote.Get(key)
	if !ok {
		t.Fatalf("Get missed; two 503s should have been retried away")
	}
	if got.Digest() != engine.ResultDigest(want) {
		t.Fatalf("retried Get returned a different result")
	}
	if requests.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + 1 success)", requests.Load())
	}
}

func TestRemoteStatChunks(t *testing.T) {
	var batches, keys atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Keys []string `json:"keys"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		batches.Add(1)
		keys.Add(int64(len(req.Keys)))
		present := make([]string, 0, len(req.Keys)/2)
		for i, k := range req.Keys {
			if i%2 == 0 {
				present = append(present, k)
			}
		}
		json.NewEncoder(w).Encode(map[string]any{"present": present})
	}))
	defer ts.Close()

	remote := newRemote(t, engine.RemoteOptions{BaseURL: ts.URL})
	all := make([]string, 1500)
	for i := range all {
		all[i] = fmt.Sprintf("%064x", i)
	}
	present, err := remote.Stat(context.Background(), all)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if batches.Load() != 2 || keys.Load() != 1500 {
		t.Fatalf("server saw %d batches of %d keys total, want 2 batches / 1500 keys",
			batches.Load(), keys.Load())
	}
	if len(present) != 750 {
		t.Fatalf("Stat returned %d present keys, want 750", len(present))
	}
}

// TestEngineWarmPrefetchesPlan proves Engine.Run's warm-up turns a cold
// local start against a warm fleet store into one batched stat plus one
// GET per distinct fingerprint — and zero simulations.
func TestEngineWarmPrefetchesPlan(t *testing.T) {
	ts, blob, _ := blobServerForTest(t)
	plan := testPlan(12)

	// Seed the store synchronously (AsyncPut off → Put writes through).
	seeder := engine.New(engine.Options{Workers: 4, Cache: engine.NewTiered(
		engine.Tier{Cache: engine.NewLRU(engine.LRUOptions{}), Name: "local"},
		engine.Tier{Cache: newRemote(t, engine.RemoteOptions{BaseURL: ts.URL})},
	)})
	if _, err := seeder.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	distinct := seeder.Stats().Runs

	eng, _, _ := runWithRemote(t, ts.URL, engine.RemoteOptions{Timeout: 2 * time.Second})
	st := eng.Stats()
	if st.Runs != 0 {
		t.Fatalf("warmed engine ran %d simulations, want 0", st.Runs)
	}
	bs := blob.Stats()
	if bs.StatBatch == 0 {
		t.Fatalf("warm-up issued no batched stat")
	}
	if bs.GetHits != distinct {
		t.Fatalf("store served %d GETs, want %d (one per distinct fingerprint)", bs.GetHits, distinct)
	}
}

// TestSingleflightCollapsesRemoteProbe runs a stampede of identical
// jobs: the pre-flight probe stays local, so the remote sees one GET
// from the flight leader, not one per job.
func TestSingleflightCollapsesRemoteProbe(t *testing.T) {
	var gets atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			gets.Add(1)
			http.NotFound(w, r)
		case http.MethodPost:
			json.NewEncoder(w).Encode(map[string]any{"present": []string{}})
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer ts.Close()

	tiered := engine.NewTiered(
		engine.Tier{Cache: engine.NewLRU(engine.LRUOptions{}), Name: "local"},
		engine.Tier{Cache: newRemote(t, engine.RemoteOptions{BaseURL: ts.URL}), AsyncPut: true},
	)
	defer tiered.Close()
	eng := engine.New(engine.Options{Workers: 8, Cache: tiered})

	var plan engine.Plan
	cfg := testConfig(1, soc.PolicyDPM, 12)
	for i := 0; i < 16; i++ {
		plan.Add(fmt.Sprintf("dup%d", i), cfg)
	}
	if _, err := eng.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Runs != 1 {
		t.Fatalf("stampede ran %d simulations, want 1", st.Runs)
	}
	// One flight leader probes the remote; every other job either waits
	// on the flight or hits the already-promoted local tier. Allow one
	// extra probe for a flight retired between a waiter's local miss and
	// its join.
	if got := gets.Load(); got > 2 {
		t.Fatalf("remote saw %d GETs for one distinct fingerprint, want ≤ 2", got)
	}
}

// TestRemoteWireFormatNegotiation pins the mixed-version interop matrix:
// a current client and server speak the binary record container; a legacy
// JSON body (old server) and a JSON GET/PUT (old client) both still work.
func TestRemoteWireFormatNegotiation(t *testing.T) {
	ts, _, store := blobServerForTest(t)
	key, want := computeResult(t, 8)

	// New client → new server: PUT ships a record container, GET asks for
	// one back and the server honours the Accept header.
	remote := newRemote(t, engine.RemoteOptions{BaseURL: ts.URL})
	if err := remote.Put(key, mustRecord(t, key, want)); err != nil {
		t.Fatalf("record Put: %v", err)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/blob/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", engine.RecordContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, engine.RecordContentType) {
		t.Fatalf("record-accepting GET got Content-Type %q", ct)
	}
	rec, err := engine.DecodeRecord(body)
	if err != nil {
		t.Fatalf("served container does not decode: %v", err)
	}
	if rec.Key() != key || rec.Digest() != engine.ResultDigest(want) {
		t.Fatal("served container carries the wrong identity")
	}

	// Old client → new server: a bare JSON GET still returns JSON.
	resp, err = http.Get(ts.URL + "/v1/blob/" + key)
	if err != nil {
		t.Fatal(err)
	}
	var viaJSON soc.Result
	err = json.NewDecoder(resp.Body).Decode(&viaJSON)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("JSON GET fallback: %v", err)
	}
	if engine.ResultDigest(&viaJSON) != engine.ResultDigest(want) {
		t.Fatal("JSON fallback served a different result")
	}

	// Old client → new server: a bare JSON PUT (no record container, no
	// record content type) is accepted and digest-verified.
	otherKey, otherRes := computeResult(t, 9)
	legacyBody, err := json.Marshal(otherRes)
	if err != nil {
		t.Fatal(err)
	}
	putReq, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/blob/"+otherKey, bytes.NewReader(legacyBody))
	if err != nil {
		t.Fatal(err)
	}
	putReq.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		t.Fatalf("legacy JSON PUT refused: status %d", resp.StatusCode)
	}
	if got, ok := store.Get(otherKey); !ok || got.Digest() != engine.ResultDigest(otherRes) {
		t.Fatal("legacy JSON PUT did not land in the store intact")
	}

	// New client → old server is covered by TestRemoteRetriesTransientFailures
	// (raw JSON body, no record content type) — both halves of the matrix hold.
}
