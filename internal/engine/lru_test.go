package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"godpm/internal/soc"
)

// fakeKey builds a realistic (hex, uniformly distributed) cache key.
func fakeKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

// fakeRecord builds a record whose MemSize is controlled by the number
// of per-IP energy entries (they grow the canonical JSON).
func fakeRecord(t testing.TB, key string, id float64, mapEntries int) *Record {
	t.Helper()
	r := &soc.Result{EnergyJ: id}
	if mapEntries > 0 {
		r.EnergyByIP = make(map[string]float64, mapEntries)
		for i := 0; i < mapEntries; i++ {
			r.EnergyByIP[fmt.Sprintf("ip%d", i)] = id
		}
	}
	rec, err := NewRecord(key, r)
	if err != nil {
		t.Fatalf("NewRecord: %v", err)
	}
	return rec
}

// energyOf reads the decoded result's EnergyJ (the test's value tag).
func energyOf(t testing.TB, rec *Record) float64 {
	t.Helper()
	r, err := rec.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return r.EnergyJ
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(LRUOptions{MaxEntries: 4, Shards: 1})
	for i := 1; i <= 4; i++ {
		c.Put(fakeKey(i), fakeRecord(t, fakeKey(i), float64(i), 0))
	}
	// Refresh key 1: key 2 becomes the least recently used.
	if _, ok := c.Get(fakeKey(1)); !ok {
		t.Fatal("key 1 missing before overflow")
	}
	c.Put(fakeKey(5), fakeRecord(t, fakeKey(5), 5, 0))

	if _, ok := c.Get(fakeKey(2)); ok {
		t.Fatal("key 2 survived: eviction did not pick the least recently used")
	}
	for _, want := range []int{1, 3, 4, 5} {
		if _, ok := c.Get(fakeKey(want)); !ok {
			t.Fatalf("key %d evicted, want only key 2 gone", want)
		}
	}
	if st := c.CacheStats(); st.Evictions != 1 || st.Entries != 4 {
		t.Fatalf("stats %+v, want 1 eviction, 4 entries", st)
	}
}

// TestLRUHoldsEntryCapUnderDistinctStream is the unbounded-growth fix
// pinned at cache level: a stream of 10k distinct fingerprints against a
// 256-entry cache must stay at ≤256 entries with the overflow evicted.
func TestLRUHoldsEntryCapUnderDistinctStream(t *testing.T) {
	const capN, stream = 256, 10_000
	c := NewLRU(LRUOptions{MaxEntries: capN})
	for i := 0; i < stream; i++ {
		c.Put(fakeKey(i), fakeRecord(t, fakeKey(i), float64(i), 2))
		if n := c.Len(); n > capN {
			t.Fatalf("after %d puts: %d entries > cap %d", i+1, n, capN)
		}
	}
	st := c.CacheStats()
	if st.Entries > capN {
		t.Fatalf("final occupancy %d > cap %d", st.Entries, capN)
	}
	if st.Evictions < stream-capN {
		t.Fatalf("evictions %d, want ≥ %d", st.Evictions, stream-capN)
	}
	// The survivors are a suffix of the stream (all keys distinct, so
	// recency order is insertion order).
	for i := stream - 64; i < stream; i++ {
		if _, ok := c.Get(fakeKey(i)); !ok {
			t.Fatalf("recently inserted key %d was evicted", i)
		}
	}
}

// modelLRU is a naive reference implementation: a recency-ordered slice
// with the same entry/byte budgets as a single-shard LRU. Its byte
// accounting is exact by construction — a sum over live entries'
// Record.MemSize — which is precisely the invariant the real cache now
// claims.
type modelLRU struct {
	keys       []string // most recent first
	vals       map[string]*Record
	maxEntries int
	maxBytes   int64
	evictions  int64
}

// bytes recomputes the accounted total from scratch: the sum of live
// records' sizes, never an incrementally-maintained counter — so any
// drift in the real cache's running sum (e.g. shrink underflow in the
// update path) diverges from this immediately.
func (m *modelLRU) bytes() int64 {
	var n int64
	for _, rec := range m.vals {
		n += rec.MemSize()
	}
	return n
}

func (m *modelLRU) touch(key string) {
	for i, k := range m.keys {
		if k == key {
			m.keys = append(m.keys[:i], m.keys[i+1:]...)
			break
		}
	}
	m.keys = append([]string{key}, m.keys...)
}

func (m *modelLRU) get(key string) (*Record, bool) {
	r, ok := m.vals[key]
	if ok {
		m.touch(key)
	}
	return r, ok
}

func (m *modelLRU) put(key string, rec *Record) {
	m.vals[key] = rec
	m.touch(key)
	for len(m.keys) > m.maxEntries || (m.maxBytes > 0 && m.bytes() > m.maxBytes && len(m.keys) > 1) {
		last := m.keys[len(m.keys)-1]
		m.keys = m.keys[:len(m.keys)-1]
		delete(m.vals, last)
		m.evictions++
	}
}

// TestLRUMatchesModel drives a single-shard LRU and a naive reference
// through the same random op stream (gets, puts of varying sizes,
// re-puts that grow AND shrink entries) and requires identical
// membership, occupancy, byte accounting and eviction counts after every
// op. Because the model recomputes bytes as Σ MemSize over live records
// each step, equality here is the "accounted bytes == sum of live record
// sizes" invariant — exact accounting, no drift, no shrink underflow.
func TestLRUMatchesModel(t *testing.T) {
	const (
		maxEntries = 16
		maxBytes   = 24 * 1024
		keySpace   = 64
		ops        = 3_000
	)
	c := NewLRU(LRUOptions{MaxEntries: maxEntries, MaxBytes: maxBytes, Shards: 1})
	m := &modelLRU{
		vals:       make(map[string]*Record),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < ops; op++ {
		key := fakeKey(rng.Intn(keySpace))
		if rng.Intn(3) == 0 {
			gr, gok := c.Get(key)
			mr, mok := m.get(key)
			if gok != mok {
				t.Fatalf("op %d: Get(%s…) ok=%v, model says %v", op, key[:8], gok, mok)
			}
			if gok && energyOf(t, gr) != energyOf(t, mr) {
				t.Fatalf("op %d: Get returned wrong value", op)
			}
		} else {
			rec := fakeRecord(t, key, float64(op), rng.Intn(40))
			c.Put(key, rec)
			m.put(key, rec)
		}
		st := c.CacheStats()
		if st.Entries != int64(len(m.vals)) || st.Bytes != m.bytes() || st.Evictions != m.evictions {
			t.Fatalf("op %d: stats %+v diverge from model entries=%d bytes=%d evictions=%d",
				op, st, len(m.vals), m.bytes(), m.evictions)
		}
		if st.Bytes > maxBytes && st.Entries > 1 {
			t.Fatalf("op %d: byte cap violated: %d > %d with %d entries", op, st.Bytes, maxBytes, st.Entries)
		}
	}
}

// TestLRUUpdateAccountingShrink audits the update path's signed delta
// (bytes += size - old.size): re-putting a key with a much smaller
// record must credit the difference back exactly — never underflow,
// never leak — across many grow/shrink cycles.
func TestLRUUpdateAccountingShrink(t *testing.T) {
	c := NewLRU(LRUOptions{MaxEntries: 8, Shards: 1})
	key := fakeKey(1)
	small := fakeRecord(t, key, 1, 0)
	big := fakeRecord(t, key, 1, 200)
	if big.MemSize() <= small.MemSize() {
		t.Fatalf("test setup: big record (%d) not bigger than small (%d)", big.MemSize(), small.MemSize())
	}
	for i := 0; i < 100; i++ {
		c.Put(key, big)
		c.Put(key, small)
		if st := c.CacheStats(); st.Bytes != small.MemSize() {
			t.Fatalf("cycle %d: accounted %d bytes, want exactly the live record's %d", i, st.Bytes, small.MemSize())
		}
		if st := c.CacheStats(); st.Bytes < 0 {
			t.Fatalf("cycle %d: accounting underflowed to %d", i, st.Bytes)
		}
	}
	// Drop the only entry via entry-cap pressure and the account returns
	// to the exact sum over live records.
	var sum int64
	for i := 2; i <= 9; i++ {
		rec := fakeRecord(t, fakeKey(i), float64(i), i)
		c.Put(fakeKey(i), rec)
		sum += rec.MemSize()
	}
	if st := c.CacheStats(); st.Bytes != sum {
		t.Fatalf("after churn: accounted %d, want Σ live sizes %d", st.Bytes, sum)
	}
}

// TestLRUConcurrent exercises the shard locking under -race: concurrent
// readers and writers over a shared key space, with the bound holding
// throughout.
func TestLRUConcurrent(t *testing.T) {
	const capN = 64
	c := NewLRU(LRUOptions{MaxEntries: capN, MaxBytes: 256 * 1024})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 1_000; i++ {
				key := fakeKey(rng.Intn(256))
				if rng.Intn(2) == 0 {
					c.Get(key)
				} else {
					c.Put(key, fakeRecord(t, key, float64(i), rng.Intn(8)))
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > capN {
		t.Fatalf("%d entries > cap %d after concurrent churn", n, capN)
	}
}

// TestLRUSmallCapAutoShards pins the auto-sharding floor: a small entry
// cap must not be silently diluted across 16 near-empty shards — a
// working set that fits the configured cap stays resident.
func TestLRUSmallCapAutoShards(t *testing.T) {
	const capN = 20 // auto-sharding: 2 shards × 10 entries
	c := NewLRU(LRUOptions{MaxEntries: capN})
	if got := len(c.shards); got != 2 {
		t.Fatalf("cap %d split over %d shards, want 2", capN, got)
	}
	for i := 0; i < capN; i++ {
		// Alternate the hex prefix so the working set splits evenly
		// across the two shards.
		key := fmt.Sprintf("%02x%060x", i%2, i)
		c.Put(key, fakeRecord(t, key, float64(i), 0))
	}
	if n := c.Len(); n != capN {
		t.Fatalf("%d of %d entries resident under an exact-fit working set", n, capN)
	}
	if st := c.CacheStats(); st.Evictions != 0 {
		t.Fatalf("%d evictions while under the cap", st.Evictions)
	}
}

// TestLRUShardByPrefix pins the shard-selection contract: hex keys route
// by their leading byte, and every shard of a well-fed cache ends up
// populated (the prefixes of cryptographic fingerprints are uniform).
func TestLRUShardByPrefix(t *testing.T) {
	c := NewLRU(LRUOptions{MaxEntries: 1 << 14, Shards: 16})
	for i := 0; i < 4_096; i++ {
		c.Put(fakeKey(i), fakeRecord(t, fakeKey(i), float64(i), 0))
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n := len(s.m)
		s.mu.Unlock()
		if n == 0 {
			t.Fatalf("shard %d empty after 4096 uniform inserts", i)
		}
	}
	// Non-hex keys must still route (FNV fallback), not panic.
	c.Put("not-a-fingerprint", fakeRecord(t, "not-a-fingerprint", 1, 0))
	if _, ok := c.Get("not-a-fingerprint"); !ok {
		t.Fatal("non-hex key lost")
	}
}
