package engine_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"godpm/internal/engine"
	"godpm/internal/soc"
)

func listFiles(t *testing.T, dir, pattern string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// mustRecord wraps a result into a cache record or fails the test.
func mustRecord(t testing.TB, key string, r *soc.Result) *engine.Record {
	t.Helper()
	rec, err := engine.NewRecord(key, r)
	if err != nil {
		t.Fatalf("NewRecord: %v", err)
	}
	return rec
}

// energyHit decodes a fetched record and returns its EnergyJ.
func energyHit(t testing.TB, rec *engine.Record) float64 {
	t.Helper()
	r, err := rec.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return r.EnergyJ
}

// TestDiskSweepsStaleTempFiles pins the crash-leak fix: temp files
// abandoned between CreateTemp and the atomic rename are removed when the
// cache is opened, and committed entries are untouched.
func TestDiskSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	seed, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put("abc123", mustRecord(t, "abc123", &soc.Result{EnergyJ: 1})); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"abc123.tmp42", "def456.tmp", "ghi789.tmp999"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := engine.NewDisk(dir); err != nil {
		t.Fatal(err)
	}
	if left := listFiles(t, dir, "*.tmp*"); len(left) != 0 {
		t.Fatalf("stale temp files survived the janitor: %v", left)
	}
	if left := listFiles(t, dir, "*.rec"); len(left) != 1 {
		t.Fatalf("janitor touched committed entries: %v", left)
	}
}

// TestDiskDeletesCorruptEntry pins the re-miss fix: a corrupt entry is a
// miss AND is deleted, so the next Put heals the slot permanently.
func TestDiskDeletesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const key = "deadbeef"
	path := filepath.Join(dir, key+".rec")
	if err := os.WriteFile(path, []byte("GDPMgarbage-that-is-not-a-record"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not deleted on failed decode")
	}

	// The slot heals: a Put stores a decodable entry that hits from a
	// fresh cache over the same directory.
	if err := c.Put(key, mustRecord(t, key, &soc.Result{EnergyJ: 42})); err != nil {
		t.Fatal(err)
	}
	c2, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := c2.Get(key)
	if !ok || energyHit(t, rec) != 42 {
		t.Fatalf("healed entry not served: ok=%v rec=%v", ok, rec)
	}
}

// TestDiskKeyMismatchIsMiss pins the container/key cross-check: a record
// renamed onto another key's slot (or a hash collision in the filename)
// must not serve the wrong payload.
func TestDiskKeyMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("aaaa", mustRecord(t, "aaaa", &soc.Result{EnergyJ: 7})); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "aaaa.rec"), filepath.Join(dir, "bbbb.rec")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("bbbb"); ok {
		t.Fatal("record stored under key aaaa served for key bbbb")
	}
	if _, err := os.Stat(filepath.Join(dir, "bbbb.rec")); !os.IsNotExist(err) {
		t.Fatal("mismatched entry not deleted")
	}
}

// TestDiskSizeCapGC pins the size-capped disk cache: overflow deletes the
// least-recently-modified entries first, both at open and after Put.
// Codec "none" keeps every entry byte-for-byte the same size so the GC
// arithmetic is exact.
func TestDiskSizeCapGC(t *testing.T) {
	dir := t.TempDir()
	unbounded, err := engine.NewDiskWith(dir, engine.DiskOptions{Codec: "none"})
	if err != nil {
		t.Fatal(err)
	}
	var entrySize int64
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 8; i++ {
		key := fakeDiskKey(i)
		if err := unbounded.Put(key, mustRecord(t, key, &soc.Result{EnergyJ: float64(i)})); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, key+".rec")
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		entrySize = fi.Size()
		// Deterministic mtime order: key i is older than key i+1.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen with room for 4 entries: GC runs at open and — with the 10%
	// hysteresis — evicts oldest-first down to ≤ 0.9×cap, keeping the 3
	// newest (3 entries fit under 3.6 entries' worth of budget).
	maxBytes := 4 * entrySize
	capped, err := engine.NewDiskWith(dir, engine.DiskOptions{MaxBytes: maxBytes, Codec: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(listFiles(t, dir, "*.rec")); n != 3 {
		t.Fatalf("%d entries after open-time GC, want 3", n)
	}
	for i := 0; i < 5; i++ {
		if _, ok := capped.Get(fakeDiskKey(i)); ok {
			t.Fatalf("old entry %d survived GC", i)
		}
	}
	for i := 5; i < 8; i++ {
		if rec, ok := capped.Get(fakeDiskKey(i)); !ok || energyHit(t, rec) != float64(i) {
			t.Fatalf("recent entry %d lost by GC", i)
		}
	}

	// The freed headroom absorbs the next Put without re-scanning, and
	// the cap holds. The payload matches the others byte-for-byte so the
	// arithmetic stays exact.
	if err := capped.Put(fakeDiskKey(100), mustRecord(t, fakeDiskKey(100), &soc.Result{EnergyJ: 9})); err != nil {
		t.Fatal(err)
	}
	st := capped.CacheStats()
	if st.Bytes > maxBytes {
		t.Fatalf("size cap violated after Put: %d > %d", st.Bytes, maxBytes)
	}
	if st.Entries != 4 {
		t.Fatalf("entries counter = %d, want 4", st.Entries)
	}
	if st.Evictions != 5 {
		t.Fatalf("evictions %d, want 5 (the oldest five, at open)", st.Evictions)
	}
	if _, err := os.Stat(filepath.Join(dir, fakeDiskKey(100)+".rec")); err != nil {
		t.Fatal("newest entry GCed instead of the oldest")
	}
}

// TestDiskLegacyJSONMigration pins the format migration: a directory
// seeded with old-format JSON entries opens cleanly, the legacy files are
// removed (keys heal by re-simulation), old keys are misses — never
// poison — and fresh Puts land in the new record format only.
func TestDiskLegacyJSONMigration(t *testing.T) {
	dir := t.TempDir()
	legacy := map[string]string{
		"0a0a": `{"EnergyJ":12.5,"TasksDone":3}`,
		"0b0b": `{"EnergyJ":99,"Completed":true}`,
		"0c0c": `{truncated garbage`,
	}
	for key, body := range legacy {
		if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatalf("open over legacy dir: %v", err)
	}
	if left := listFiles(t, dir, "*.json"); len(left) != 0 {
		t.Fatalf("legacy entries survived migration sweep: %v", left)
	}
	for key := range legacy {
		if _, ok := c.Get(key); ok {
			t.Fatalf("legacy key %s served as a hit after migration", key)
		}
	}
	if st := c.CacheStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("migrated cache not empty: %+v", st)
	}

	// The keys heal: re-simulated results Put in the new format and
	// round-trip across a reopen.
	for key := range legacy {
		if err := c.Put(key, mustRecord(t, key, &soc.Result{EnergyJ: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(listFiles(t, dir, "*.rec")); n != len(legacy) {
		t.Fatalf("%d .rec entries after heal, want %d", n, len(legacy))
	}
	if n := len(listFiles(t, dir, "*.json")); n != 0 {
		t.Fatal("a Put wrote a legacy-format entry")
	}
	c2, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for key := range legacy {
		if rec, ok := c2.Get(key); !ok || energyHit(t, rec) != 1 {
			t.Fatalf("healed key %s not served after reopen", key)
		}
	}
}

// TestDiskCodecRoundTrip pins both supported codecs end to end through
// the disk store, and the zstd gate.
func TestDiskCodecRoundTrip(t *testing.T) {
	for _, codec := range []string{"", "flate", "none", "raw"} {
		dir := t.TempDir()
		c, err := engine.NewDiskWith(dir, engine.DiskOptions{Codec: codec})
		if err != nil {
			t.Fatalf("codec %q: %v", codec, err)
		}
		r := &soc.Result{EnergyJ: 3.25, TasksDone: 9, Completed: true,
			EnergyByIP: map[string]float64{"cpu": 2, "dsp": 1.25}}
		if err := c.Put("k1", mustRecord(t, "k1", r)); err != nil {
			t.Fatalf("codec %q: %v", codec, err)
		}
		c2, err := engine.NewDiskWith(dir, engine.DiskOptions{}) // default decodes any codec
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := c2.Get("k1")
		if !ok {
			t.Fatalf("codec %q: stored entry missed", codec)
		}
		got, err := rec.Result()
		if err != nil {
			t.Fatalf("codec %q: %v", codec, err)
		}
		if got.EnergyJ != r.EnergyJ || got.TasksDone != r.TasksDone || got.EnergyByIP["dsp"] != 1.25 {
			t.Fatalf("codec %q: round-trip mangled result: %+v", codec, got)
		}
	}
	if _, err := engine.NewDiskWith(t.TempDir(), engine.DiskOptions{Codec: "zstd"}); err == nil {
		t.Fatal("zstd codec accepted despite not being built in")
	}
}

// fakeDiskKey builds a distinct hex cache key per index.
func fakeDiskKey(i int) string {
	return fmt.Sprintf("%032x", i)
}
