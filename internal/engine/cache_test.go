package engine_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"godpm/internal/engine"
	"godpm/internal/soc"
)

func listFiles(t *testing.T, dir, pattern string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestDiskSweepsStaleTempFiles pins the crash-leak fix: temp files
// abandoned between CreateTemp and the atomic rename are removed when the
// cache is opened, and committed entries are untouched.
func TestDiskSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"abc123.tmp42", "def456.tmp", "ghi789.tmp999"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "live.json"), []byte(`{"EnergyJ":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := engine.NewDisk(dir); err != nil {
		t.Fatal(err)
	}
	if left := listFiles(t, dir, "*.tmp*"); len(left) != 0 {
		t.Fatalf("stale temp files survived the janitor: %v", left)
	}
	if left := listFiles(t, dir, "*.json"); len(left) != 1 {
		t.Fatalf("janitor touched committed entries: %v", left)
	}
}

// TestDiskDeletesCorruptEntry pins the re-miss fix: a corrupt entry is a
// miss AND is deleted, so the next Put heals the slot permanently.
func TestDiskDeletesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const key = "deadbeef"
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not deleted on failed decode")
	}

	// The slot heals: a Put stores a decodable entry that hits from a
	// fresh cache over the same directory.
	if err := c.Put(key, &soc.Result{EnergyJ: 42}); err != nil {
		t.Fatal(err)
	}
	c2, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := c2.Get(key)
	if !ok || r.EnergyJ != 42 {
		t.Fatalf("healed entry not served: ok=%v r=%+v", ok, r)
	}
}

// TestDiskSizeCapGC pins the size-capped disk cache: overflow deletes the
// least-recently-modified entries first, both at open and after Put.
func TestDiskSizeCapGC(t *testing.T) {
	dir := t.TempDir()
	unbounded, err := engine.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var entrySize int64
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 8; i++ {
		key := fakeKey(i)
		if err := unbounded.Put(key, &soc.Result{EnergyJ: float64(i)}); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, key+".json")
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		entrySize = fi.Size()
		// Deterministic mtime order: key i is older than key i+1.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen with room for 4 entries: GC runs at open and — with the 10%
	// hysteresis — evicts oldest-first down to ≤ 0.9×cap, keeping the 3
	// newest (3 entries fit under 3.6 entries' worth of budget).
	maxBytes := 4 * entrySize
	capped, err := engine.NewDiskWith(dir, engine.DiskOptions{MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(listFiles(t, dir, "*.json")); n != 3 {
		t.Fatalf("%d entries after open-time GC, want 3", n)
	}
	for i := 0; i < 5; i++ {
		if _, ok := capped.Get(fakeKey(i)); ok {
			t.Fatalf("old entry %d survived GC", i)
		}
	}
	for i := 5; i < 8; i++ {
		if r, ok := capped.Get(fakeKey(i)); !ok || r.EnergyJ != float64(i) {
			t.Fatalf("recent entry %d lost by GC", i)
		}
	}

	// The freed headroom absorbs the next Put without re-scanning, and
	// the cap holds. The payload matches the others byte-for-byte so the
	// arithmetic stays exact.
	if err := capped.Put(fakeKey(100), &soc.Result{EnergyJ: 9}); err != nil {
		t.Fatal(err)
	}
	st := capped.CacheStats()
	if st.Bytes > maxBytes {
		t.Fatalf("size cap violated after Put: %d > %d", st.Bytes, maxBytes)
	}
	if st.Entries != 4 {
		t.Fatalf("entries counter = %d, want 4", st.Entries)
	}
	if st.Evictions != 5 {
		t.Fatalf("evictions %d, want 5 (the oldest five, at open)", st.Evictions)
	}
	if _, err := os.Stat(filepath.Join(dir, fakeKey(100)+".json")); err != nil {
		t.Fatal("newest entry GCed instead of the oldest")
	}
}

// fakeKey builds a distinct hex cache key per index.
func fakeKey(i int) string {
	return fmt.Sprintf("%032x", i)
}
