package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/workload"
)

// richResult builds a result with every size-relevant field populated so
// the compressed/uncompressed paths both carry real payload.
func richResult() *soc.Result {
	return &soc.Result{
		EnergyJ:    12.345,
		BusEnergyJ: 0.5,
		Duration:   3 * sim.Sec,
		AvgTempC:   55.5,
		PeakTempC:  71.25,
		TasksDone:  42,
		Completed:  true,
		FinalSoC:   0.875,
		EnergyByIP: map[string]float64{
			"cpu": 8.0, "dsp": 2.345, "wlan": 2.0,
		},
		WallSeconds: 1.5, // volatile: must NOT reach the canonical body
	}
}

func testRecord(t *testing.T) *Record {
	t.Helper()
	rec, err := NewRecord(fakeKey(1), richResult())
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestRecordRoundTrip encodes with each supported codec and decodes the
// container back: key, digest, canonical bytes and decoded value must all
// survive, and repeated Encode calls on one record return the identical
// cached container.
func TestRecordRoundTrip(t *testing.T) {
	for _, codec := range []Codec{CodecRaw, CodecFlate} {
		rec := testRecord(t)
		enc, err := rec.Encode(codec)
		if err != nil {
			t.Fatalf("%v: Encode: %v", codec, err)
		}
		again, err := rec.Encode(codec)
		if err != nil || !bytes.Equal(enc, again) {
			t.Fatalf("%v: second Encode not the cached container", codec)
		}

		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("%v: DecodeRecord: %v", codec, err)
		}
		if got.Key() != rec.Key() || got.Digest() != rec.Digest() {
			t.Fatalf("%v: identity mangled: key %q digest %q", codec, got.Key(), got.Digest())
		}
		wantJSON, _ := rec.JSON()
		gotJSON, err := got.JSON()
		if err != nil || !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("%v: canonical bytes differ after round trip (err %v)", codec, err)
		}
		r, err := got.Result()
		if err != nil {
			t.Fatalf("%v: Result: %v", codec, err)
		}
		if r.EnergyJ != 12.345 || r.EnergyByIP["dsp"] != 2.345 || !r.Completed {
			t.Fatalf("%v: decoded result mangled: %+v", codec, r)
		}
		if r.WallSeconds != 0 {
			t.Fatalf("%v: volatile WallSeconds leaked into the canonical body", codec)
		}
		if ResultDigest(r) != rec.Digest() {
			t.Fatalf("%v: decoded result does not reproduce the stored digest", codec)
		}
	}
}

// TestRecordDeterministicBytes: two simulations of the same config differ
// only in host timing, and the record hides that — byte-identical
// containers, identical MemSize. Exact cache accounting rests on this.
func TestRecordDeterministicBytes(t *testing.T) {
	a, b := richResult(), richResult()
	b.WallSeconds = 99.75 // a slower host, same simulation
	ra, err := NewRecord(fakeKey(2), a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRecord(fakeKey(2), b)
	if err != nil {
		t.Fatal(err)
	}
	ea, _ := ra.Encode(CodecFlate)
	eb, _ := rb.Encode(CodecFlate)
	if !bytes.Equal(ea, eb) {
		t.Fatal("containers differ across hosts with different wall times")
	}
	if ra.MemSize() != rb.MemSize() {
		t.Fatalf("MemSize differs: %d vs %d", ra.MemSize(), rb.MemSize())
	}
}

// TestRecordMemSize: the accounted size is derived from header fields
// only — the same before and after the lazy fields materialise.
func TestRecordMemSize(t *testing.T) {
	rec := testRecord(t)
	enc, err := rec.Encode(CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	before := dec.MemSize()
	if _, err := dec.JSON(); err != nil { // inflate
		t.Fatal(err)
	}
	if _, err := dec.Result(); err != nil { // unmarshal
		t.Fatal(err)
	}
	if after := dec.MemSize(); after != before {
		t.Fatalf("MemSize moved %d → %d when lazy fields materialised", before, after)
	}
	raw, _ := rec.JSON()
	want := int64(recordOverhead + len(rec.Key()) + len(rec.Digest()) + len(raw))
	if got := rec.MemSize(); got != want {
		t.Fatalf("MemSize = %d, want overhead+key+digest+rawLen = %d", got, want)
	}
}

// TestRecordLazyDecode: decoding a container does NOT unmarshal the body;
// the Result materialises on first use and is then shared.
func TestRecordLazyDecode(t *testing.T) {
	enc, err := testRecord(t).Encode(CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.res.Load() != nil {
		t.Fatal("DecodeRecord eagerly unmarshalled the body")
	}
	r1, err := dec.Result()
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := dec.Result()
	if r1 != r2 {
		t.Fatal("Result() rebuilt the value instead of sharing it")
	}
}

// TestRecordCorruptionRejected flips, truncates and forges containers:
// every mutation must fail DecodeRecord — or, for body tampering caught
// by the checksum, fail before any JSON reaches a consumer.
func TestRecordCorruptionRejected(t *testing.T) {
	enc, err := testRecord(t).Encode(CodecFlate)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), enc...))
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("%s: corrupt container decoded cleanly", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("future version", func(b []byte) []byte { b[4] = recordVersion + 1; return b })
	mutate("unknown codec", func(b []byte) []byte { b[5] = 7; return b })
	mutate("flipped body byte", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	mutate("flipped checksum byte", func(b []byte) []byte { b[20] ^= 0x01; return b })
	mutate("truncated body", func(b []byte) []byte { return b[:len(b)-3] })
	mutate("truncated header", func(b []byte) []byte { return b[:recordHdrLen-1] })
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("oversized key length", func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[8:], maxRecordField+1)
		return b
	})
	mutate("body length past buffer", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[16:], uint32(len(b))) // > actual remainder
		return b
	})

	// A zstd container: identifiable, refused with the gate error.
	z := append([]byte(nil), enc...)
	z[5] = byte(CodecZstd)
	if _, err := DecodeRecord(z); !errors.Is(err, ErrCodecUnavailable) {
		t.Fatalf("zstd container error = %v, want ErrCodecUnavailable", err)
	}

	// Inflated-body mismatch: a body that checksums fine but inflates to
	// the wrong length (rawLen forged) must be rejected at JSON() time.
	forged := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(forged[12:], binary.LittleEndian.Uint32(forged[12:])+1)
	rec, err := DecodeRecord(forged)
	if err != nil {
		t.Fatalf("header-only forge rejected too early: %v", err)
	}
	if _, err := rec.JSON(); err == nil {
		t.Fatal("forged rawLen not caught at inflate time")
	}
}

// TestRecordEncodeZstdGated: encoding with the reserved codec is refused
// by Encode and by the configuration-time knob parser.
func TestRecordEncodeZstdGated(t *testing.T) {
	if _, err := testRecord(t).Encode(CodecZstd); !errors.Is(err, ErrCodecUnavailable) {
		t.Fatalf("Encode(CodecZstd) error = %v, want ErrCodecUnavailable", err)
	}
	if _, err := ParseCodec("zstd"); !errors.Is(err, ErrCodecUnavailable) {
		t.Fatalf("ParseCodec(zstd) error = %v, want ErrCodecUnavailable", err)
	}
	if _, err := ParseCodec("lzma"); err == nil {
		t.Fatal("unknown codec name accepted")
	}
	for name, want := range map[string]Codec{"": CodecFlate, "flate": CodecFlate, "none": CodecRaw, "raw": CodecRaw} {
		got, err := ParseCodec(name)
		if err != nil || got != want {
			t.Fatalf("ParseCodec(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
}

// TestRecordFlateShrinksLedgerHeavyResults pins the headline compression
// claim on a realistic payload: a simulated result with its ledger and
// per-IP maps compresses well past 2x (observed ~5-10x on Table 1 runs).
func TestRecordFlateShrinksLedgerHeavyResults(t *testing.T) {
	cfg := soc.Config{
		IPs: []soc.IPSpec{{
			Name:     "ip0",
			Sequence: workload.HighActivity(7, 64).MustGenerate(),
		}},
		Policy:   soc.PolicyDPM,
		Battery:  soc.DefaultBattery(0.95),
		BusWords: 16,
		Horizon:  60 * sim.Sec,
	}
	r, err := soc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecord(key, r)
	if err != nil {
		t.Fatal(err)
	}
	flated, err := rec.Encode(CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RawLen() < 1024 {
		t.Fatalf("payload too small to exercise compression: %d bytes", rec.RawLen())
	}
	if ratio := float64(rec.RawLen()) / float64(len(flated)); ratio < 2 {
		t.Fatalf("flate ratio %.2fx on a ledger-heavy result, want ≥ 2x", ratio)
	}
}

// TestRecordFromJSONRejectsGarbage: the trust-boundary constructor
// decodes eagerly and refuses non-result bodies.
func TestRecordFromJSONRejectsGarbage(t *testing.T) {
	if _, err := RecordFromJSON("k", []byte("}{ nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := RecordFromJSON("k", []byte(strings.Repeat("[", 4))); err == nil {
		t.Fatal("non-object accepted")
	}
	rec, err := RecordFromJSON("k", []byte(`{"EnergyJ":3}`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := rec.Result()
	if err != nil || r.EnergyJ != 3 {
		t.Fatalf("legacy JSON round trip: %+v, %v", r, err)
	}
}
