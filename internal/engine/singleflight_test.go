package engine_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"godpm/internal/engine"
	"godpm/internal/soc"
)

// TestStampedeCollapsesToOneRun is the acceptance pin for the cache
// stampede fix: a plan of 64 jobs over 4 distinct configs on 8 workers
// yields exactly one simulation per distinct config — the waiters are
// served the winner's result as cache hits, and Misses is not
// double-counted. Run under -race in CI.
func TestStampedeCollapsesToOneRun(t *testing.T) {
	const (
		jobs     = 64
		distinct = 4
	)
	var plan engine.Plan
	for i := 0; i < jobs; i++ {
		seed := int64(1 + i%distinct)
		plan.Add(fmt.Sprintf("dup%02d@%d", i, seed), testConfig(seed, soc.PolicyDPM, 10))
	}
	eng := engine.New(engine.Options{Workers: 8})
	results, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.Runs != distinct {
		t.Fatalf("stampede: %d simulations for %d distinct configs", st.Runs, distinct)
	}
	if st.Misses != distinct {
		t.Fatalf("misses double-counted: %d, want %d (waiters must count as hits)", st.Misses, distinct)
	}
	if st.Hits != jobs-distinct {
		t.Fatalf("hits = %d, want %d", st.Hits, jobs-distinct)
	}
	if st.Deduped > st.Hits {
		t.Fatalf("deduped %d exceeds hits %d", st.Deduped, st.Hits)
	}
	if st.Errors != 0 || st.Canceled != 0 {
		t.Fatalf("stats %+v, want no errors/cancellations", st)
	}

	// Every duplicate of a config shares the winner's result verbatim.
	bySeed := make(map[string]string)
	for i, jr := range results {
		if jr.Err != nil || jr.Result == nil {
			t.Fatalf("job %s failed: %v", jr.Job.ID, jr.Err)
		}
		seed := plan.Jobs[i].ID[len(plan.Jobs[i].ID)-1:]
		d := engine.ResultDigest(jr.Result)
		if prev, ok := bySeed[seed]; ok && prev != d {
			t.Fatalf("job %s: digest differs from its duplicate", jr.Job.ID)
		}
		bySeed[seed] = d
	}
	if len(bySeed) != distinct {
		t.Fatalf("%d distinct digests, want %d", len(bySeed), distinct)
	}
}

// TestDedupAcrossEngineRunCalls drives concurrent Run calls (the dpmserve
// pattern: one call per HTTP request) at the same engine and asserts the
// singleflight collapses them too.
func TestDedupAcrossEngineRunCalls(t *testing.T) {
	const callers = 8
	eng := engine.New(engine.Options{Workers: 8})
	cfg := testConfig(7, soc.PolicyDPM, 10)
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var p engine.Plan
			p.Add(fmt.Sprintf("req%d", i), cfg)
			_, errs[i] = eng.Run(context.Background(), p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	st := eng.Stats()
	if st.Runs != 1 {
		t.Fatalf("%d concurrent identical requests simulated %d times, want 1", callers, st.Runs)
	}
	if st.Hits != callers-1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want %d hits / 1 miss", st, callers-1)
	}
}

// TestCanceledJobsAreNotErrors pins the Canceled counter satellite:
// ctx-abandoned jobs must not inflate Stats.Errors.
func TestCanceledJobsAreNotErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.Options{Workers: 2})
	plan := testPlan(10)
	if _, err := eng.Run(ctx, plan); err == nil {
		t.Fatal("expected a joined cancellation error")
	}
	st := eng.Stats()
	if st.Errors != 0 {
		t.Fatalf("cancellation inflated Errors: %+v", st)
	}
	if st.Canceled != int64(plan.Len()) {
		t.Fatalf("Canceled = %d, want %d", st.Canceled, plan.Len())
	}
	if st.Runs != 0 {
		t.Fatalf("ran %d jobs under a cancelled context", st.Runs)
	}
}

// TestGenuineFailuresStayErrors guards the other side of the split: a
// failing config still counts under Errors, not Canceled, and a stampede
// of waiters on a failing leader all observe the failure.
func TestGenuineFailuresStayErrors(t *testing.T) {
	var plan engine.Plan
	for i := 0; i < 6; i++ {
		plan.Add(fmt.Sprintf("bad%d", i), soc.Config{}) // no IPs: rejected
	}
	eng := engine.New(engine.Options{Workers: 4})
	results, err := eng.Run(context.Background(), plan)
	if err == nil {
		t.Fatal("expected a joined job error")
	}
	for _, jr := range results {
		if jr.Err == nil {
			t.Fatalf("job %s did not observe the failure", jr.Job.ID)
		}
	}
	st := eng.Stats()
	if st.Canceled != 0 {
		t.Fatalf("failures booked as cancellations: %+v", st)
	}
	if st.Errors != int64(plan.Len()) {
		t.Fatalf("Errors = %d, want %d (every failed job counts)", st.Errors, plan.Len())
	}
	if st.Runs > int64(plan.Len()) {
		t.Fatalf("runs %d exceed plan", st.Runs)
	}
}
