package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/stats"
	"godpm/internal/workload"
)

// NamedConfig is one tournament scenario: a configuration template whose
// IPs carry workload generator specs (soc.IPSpec.Gen), so each replicate
// seed can regenerate the workload deterministically.
type NamedConfig struct {
	Name   string
	Config soc.Config
}

// PolicyVariant is one tournament entrant: a named transformation applied
// on top of every scenario configuration (select the policy, tune its
// parameters).
type PolicyVariant struct {
	Name string
	// Apply derives the entrant's configuration from the scenario template.
	Apply func(soc.Config) soc.Config
}

// StandardPolicies returns the paper's policy lineup as tournament
// entrants: the DPM architecture, the always-on baseline, fixed-timeout,
// greedy and oracle.
func StandardPolicies() []PolicyVariant {
	return []PolicyVariant{
		{Name: "dpm", Apply: func(c soc.Config) soc.Config { c.Policy = soc.PolicyDPM; return c }},
		{Name: "alwayson", Apply: func(c soc.Config) soc.Config {
			c.Policy = soc.PolicyAlwaysOn
			c.UseGEM = false
			return c
		}},
		{Name: "timeout", Apply: func(c soc.Config) soc.Config {
			c.Policy = soc.PolicyTimeout
			c.UseGEM = false
			return c
		}},
		{Name: "greedy", Apply: func(c soc.Config) soc.Config {
			c.Policy = soc.PolicyGreedy
			c.UseGEM = false
			return c
		}},
		{Name: "oracle", Apply: func(c soc.Config) soc.Config {
			c.Policy = soc.PolicyOracle
			c.UseGEM = false
			return c
		}},
	}
}

// ArenaScenarios returns the built-in scenario catalog: one single-IP
// scenario per workload generator family, each driven by a Gen spec so
// tournament seeds regenerate it. numTasks sizes every workload.
func ArenaScenarios(numTasks int) []NamedConfig {
	single := func(name string, gen workload.Spec) NamedConfig {
		return NamedConfig{
			Name: name,
			Config: soc.Config{
				IPs:    []soc.IPSpec{{Name: "ip0", Gen: gen}},
				Policy: soc.PolicyDPM,
			},
		}
	}
	seed := workload.NewSeed(0) // overwritten by the tournament's reseed
	return []NamedConfig{
		single("steady", workload.ClosedSpec(workload.HighActivity(0, numTasks))),
		single("bursty", workload.BurstSpec(workload.DefaultBurst(0, numTasks))),
		single("mmpp", workload.MMPPSpec(workload.DefaultMMPP(seed, numTasks))),
		single("periodic", workload.PeriodicSpec(workload.DefaultPeriodic(seed, numTasks))),
		single("heavytail", workload.HeavyTailSpec(workload.DefaultHeavyTail(seed, numTasks))),
	}
}

// Tournament crosses policies × scenarios × seeds into one plan and
// aggregates the results into per-cell statistics and a ranked
// leaderboard. For every (scenario, seed) pair all policies run the
// bit-identical generated workload — the paired design that cancels
// workload variance out of the policy comparison.
type Tournament struct {
	// Scenarios are the configuration templates. IPs carrying Gen specs
	// are reseeded per replicate; IPs with explicit workloads repeat them.
	Scenarios []NamedConfig
	// Policies are the entrants; every policy runs every scenario × seed.
	Policies []PolicyVariant
	// Seeds are the replicate roots. Each (scenario, IP) derives its
	// generator seed by splitting: seed.Split(scenario).Split(ip name).
	Seeds []workload.Seed
	// Baseline names the Policies entry paired deltas are computed
	// against ("" selects the first policy).
	Baseline string
	// Deadline is the per-task service-time budget for the deadline-miss
	// column (0 disables the column).
	Deadline sim.Time
	// Progress, when non-nil, observes every finished job: done/total are
	// plan-cell counts and leader is the provisional leaderboard head —
	// the policy with the lowest mean energy over the replicates finished
	// so far ("" until the first success). Calls are serialised by the
	// engine; keep the callback cheap (it runs on a worker's path).
	Progress func(done, total int, leader string)
}

// Validate checks the tournament is runnable.
func (t Tournament) Validate() error {
	if len(t.Scenarios) == 0 {
		return fmt.Errorf("engine: tournament has no scenarios")
	}
	if len(t.Policies) == 0 {
		return fmt.Errorf("engine: tournament has no policies")
	}
	if len(t.Seeds) == 0 {
		return fmt.Errorf("engine: tournament has no seeds")
	}
	names := make(map[string]bool, len(t.Policies))
	for _, p := range t.Policies {
		if p.Name == "" || p.Apply == nil {
			return fmt.Errorf("engine: tournament policy with empty name or nil Apply")
		}
		if names[p.Name] {
			return fmt.Errorf("engine: duplicate tournament policy %q", p.Name)
		}
		names[p.Name] = true
	}
	seen := make(map[string]bool, len(t.Scenarios))
	for _, s := range t.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("engine: tournament scenario with empty name")
		}
		if seen[s.Name] {
			return fmt.Errorf("engine: duplicate tournament scenario %q", s.Name)
		}
		seen[s.Name] = true
	}
	if t.Baseline != "" && !names[t.Baseline] {
		return fmt.Errorf("engine: baseline policy %q is not an entrant", t.Baseline)
	}
	return nil
}

// baseline resolves the baseline policy name.
func (t Tournament) baseline() string {
	if t.Baseline != "" {
		return t.Baseline
	}
	return t.Policies[0].Name
}

// Plan lays the tournament out scenario-major, then seed, then policy —
// job ID "scenario/policy@seed" — so all entrants of one (scenario, seed)
// replicate are adjacent and results stay index-computable.
func (t Tournament) Plan() (Plan, error) {
	if err := t.Validate(); err != nil {
		return Plan{}, err
	}
	var plan Plan
	for _, sc := range t.Scenarios {
		for _, seed := range t.Seeds {
			scSeed := seed.Split(sc.Name)
			base := sc.Config
			base.IPs = append([]soc.IPSpec(nil), base.IPs...)
			for i := range base.IPs {
				spec := &base.IPs[i]
				if spec.Gen.Kind != workload.GenNone {
					name := spec.Name
					if name == "" {
						name = fmt.Sprintf("ip%d", i)
					}
					spec.Gen = spec.Gen.Reseed(scSeed.Split(name))
				}
			}
			for _, pol := range t.Policies {
				plan.Add(fmt.Sprintf("%s/%s@%s", sc.Name, pol.Name, seed), pol.Apply(base))
			}
		}
	}
	return plan, nil
}

// Cell is one (scenario, policy) aggregate over the tournament's seeds.
type Cell struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	// EnergyJ / AvgTempC / Misses / DurationS summarize the replicates.
	EnergyJ   stats.Summary `json:"energy_j"`
	AvgTempC  stats.Summary `json:"avg_temp_c"`
	Misses    stats.Summary `json:"deadline_misses"`
	DurationS stats.Summary `json:"duration_s"`
	// EnergyVsBasePct is the paired per-seed percent energy delta against
	// the baseline policy (negative = saves energy). Zero-valued for the
	// baseline itself or when pairs are incomplete.
	EnergyVsBasePct stats.Summary `json:"energy_vs_base_pct"`
	// Errors counts failed replicates (excluded from the summaries).
	Errors int `json:"errors"`
}

// Standing is one leaderboard row: a policy aggregated over every
// scenario × seed run, ranked by mean energy (ascending), deadline misses
// and average temperature breaking ties.
type Standing struct {
	Rank   int    `json:"rank"`
	Policy string `json:"policy"`
	// EnergyJ / AvgTempC / Misses summarize all scenario×seed runs.
	EnergyJ  stats.Summary `json:"energy_j"`
	AvgTempC stats.Summary `json:"avg_temp_c"`
	Misses   stats.Summary `json:"deadline_misses"`
	// EnergyVsBasePct pairs every run against the baseline policy on the
	// identical (scenario, seed) workload.
	EnergyVsBasePct stats.Summary `json:"energy_vs_base_pct"`
	Errors          int           `json:"errors"`
}

// TournamentResult is the aggregated outcome.
type TournamentResult struct {
	// Baseline is the resolved baseline policy name.
	Baseline string `json:"baseline"`
	// Cells are scenario-major, policy-minor (len = scenarios × policies).
	Cells []Cell `json:"cells"`
	// Leaderboard is ranked best-first.
	Leaderboard []Standing `json:"leaderboard"`
	// Stats snapshots the engine counters after the run.
	Stats Stats `json:"stats"`
}

// RunTournament executes the tournament plan on the engine and aggregates
// the leaderboard. Failed jobs are excluded from the statistics (and
// counted per cell); the joined job error is returned alongside the
// partial result when at least one aggregate could be formed.
func RunTournament(ctx context.Context, eng *Engine, t Tournament) (*TournamentResult, error) {
	plan, err := t.Plan()
	if err != nil {
		return nil, err
	}
	results, runErr := eng.RunObserved(ctx, plan, t.progressObserver(plan.Len()))

	nPol, nSeed := len(t.Policies), len(t.Seeds)
	baseName := t.baseline()
	baseIdx := 0
	for i, p := range t.Policies {
		if p.Name == baseName {
			baseIdx = i
		}
	}

	// value extracts one replicate column from the plan-ordered results.
	at := func(si, ki, pi int) JobResult {
		return results[(si*nSeed+ki)*nPol+pi]
	}

	res := &TournamentResult{Baseline: baseName}
	perPolicy := make(map[string]*policyAccum, nPol)
	for _, p := range t.Policies {
		perPolicy[p.Name] = &policyAccum{}
	}

	for si, sc := range t.Scenarios {
		for pi, pol := range t.Policies {
			cell := Cell{Scenario: sc.Name, Policy: pol.Name}
			var energy, temp, misses, dur []float64
			var pairPol, pairBase []float64
			for ki := 0; ki < nSeed; ki++ {
				jr := at(si, ki, pi)
				if jr.Err != nil || jr.Result == nil {
					cell.Errors++
					continue
				}
				r := jr.Result
				m := float64(stats.MissedDeadlines(r.Ledger, t.Deadline))
				energy = append(energy, r.EnergyJ)
				temp = append(temp, r.AvgTempC)
				misses = append(misses, m)
				dur = append(dur, r.Duration.Seconds())
				if bj := at(si, ki, baseIdx); bj.Err == nil && bj.Result != nil && bj.Result.EnergyJ != 0 {
					pairPol = append(pairPol, r.EnergyJ)
					pairBase = append(pairBase, bj.Result.EnergyJ)
				}
				acc := perPolicy[pol.Name]
				acc.energy = append(acc.energy, r.EnergyJ)
				acc.temp = append(acc.temp, r.AvgTempC)
				acc.misses = append(acc.misses, m)
			}
			cell.EnergyJ = stats.Summarize(energy)
			cell.AvgTempC = stats.Summarize(temp)
			cell.Misses = stats.Summarize(misses)
			cell.DurationS = stats.Summarize(dur)
			if pol.Name != baseName && len(pairPol) > 0 {
				if d, err := stats.PairedPct(pairPol, pairBase); err == nil {
					cell.EnergyVsBasePct = d
				}
			}
			acc := perPolicy[pol.Name]
			acc.errors += cell.Errors
			acc.pairPol = append(acc.pairPol, pairPol...)
			acc.pairBase = append(acc.pairBase, pairBase...)
			res.Cells = append(res.Cells, cell)
		}
	}

	for _, pol := range t.Policies {
		acc := perPolicy[pol.Name]
		st := Standing{
			Policy:   pol.Name,
			EnergyJ:  stats.Summarize(acc.energy),
			AvgTempC: stats.Summarize(acc.temp),
			Misses:   stats.Summarize(acc.misses),
			Errors:   acc.errors,
		}
		if pol.Name != baseName && len(acc.pairPol) > 0 {
			if d, err := stats.PairedPct(acc.pairPol, acc.pairBase); err == nil {
				st.EnergyVsBasePct = d
			}
		}
		res.Leaderboard = append(res.Leaderboard, st)
	}
	sort.SliceStable(res.Leaderboard, func(i, j int) bool {
		a, b := res.Leaderboard[i], res.Leaderboard[j]
		if a.EnergyJ.Mean != b.EnergyJ.Mean {
			return a.EnergyJ.Mean < b.EnergyJ.Mean
		}
		if a.Misses.Mean != b.Misses.Mean {
			return a.Misses.Mean < b.Misses.Mean
		}
		if a.AvgTempC.Mean != b.AvgTempC.Mean {
			return a.AvgTempC.Mean < b.AvgTempC.Mean
		}
		return a.Policy < b.Policy
	})
	for i := range res.Leaderboard {
		res.Leaderboard[i].Rank = i + 1
	}
	res.Stats = eng.Stats()
	// Wall-clock latency is volatile — two identical tournaments time
	// differently — and a TournamentResult's renderings are pinned
	// byte-identical across worker counts and reruns, so the latency
	// sketch stays out of the snapshot (servers surface it via /statsz).
	res.Stats.RunLatency = nil
	return res, runErr
}

// progressObserver adapts Progress into an engine result observer,
// tracking the provisional energy leader incrementally. Plans are laid
// out scenario-major, seed, policy, so a job's policy is its plan index
// modulo the policy count. Returns nil when no Progress is registered.
func (t Tournament) progressObserver(total int) func(i int, jr JobResult) {
	if t.Progress == nil {
		return nil
	}
	nPol := len(t.Policies)
	sums := make([]float64, nPol)
	counts := make([]int, nPol)
	done := 0
	return func(i int, jr JobResult) {
		done++
		if jr.Err == nil && jr.Result != nil {
			pi := i % nPol
			sums[pi] += jr.Result.EnergyJ
			counts[pi]++
		}
		leader := ""
		best := math.Inf(1)
		for pi, p := range t.Policies {
			if counts[pi] == 0 {
				continue
			}
			if m := sums[pi] / float64(counts[pi]); m < best {
				best, leader = m, p.Name
			}
		}
		t.Progress(done, total, leader)
	}
}

// policyAccum collects one policy's runs across all scenarios × seeds.
type policyAccum struct {
	energy, temp, misses []float64
	pairPol, pairBase    []float64
	errors               int
}

// WriteLeaderboardCSV renders the ranked leaderboard as CSV.
func (r *TournamentResult) WriteLeaderboardCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "rank,policy,runs,energy_j_mean,energy_j_ci95,energy_vs_base_pct,avg_temp_c_mean,deadline_misses_mean,errors"); err != nil {
		return err
	}
	for _, s := range r.Leaderboard {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%.6g,%.4g,%.4g,%.4g,%.4g,%d\n",
			s.Rank, s.Policy, s.EnergyJ.N, s.EnergyJ.Mean, s.EnergyJ.CI95,
			s.EnergyVsBasePct.Mean, s.AvgTempC.Mean, s.Misses.Mean, s.Errors); err != nil {
			return err
		}
	}
	return nil
}

// WriteCellsCSV renders the per-(scenario, policy) aggregates as CSV.
func (r *TournamentResult) WriteCellsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scenario,policy,seeds,energy_j_mean,energy_j_stddev,energy_j_ci95,energy_vs_base_pct,avg_temp_c_mean,deadline_misses_mean,duration_s_mean,errors"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.6g,%.4g,%.4g,%.4g,%.4g,%.4g,%.6g,%d\n",
			c.Scenario, c.Policy, c.EnergyJ.N, c.EnergyJ.Mean, c.EnergyJ.StdDev, c.EnergyJ.CI95,
			c.EnergyVsBasePct.Mean, c.AvgTempC.Mean, c.Misses.Mean, c.DurationS.Mean, c.Errors); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the full result (cells, leaderboard, engine counters).
func (r *TournamentResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FormatLeaderboard renders the ranked table for humans.
func (r *TournamentResult) FormatLeaderboard() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-10s %6s %22s %14s %12s %10s\n",
		"rank", "policy", "runs", "energy (J, ±95% CI)", "vs "+r.Baseline+" (%)", "avg temp °C", "misses")
	for _, s := range r.Leaderboard {
		vsBase := "-"
		if s.Policy != r.Baseline && s.EnergyVsBasePct.N > 0 {
			vsBase = fmt.Sprintf("%+.1f", s.EnergyVsBasePct.Mean)
		}
		fmt.Fprintf(&sb, "%-4d %-10s %6d %14.4g ± %-7.3g %14s %12.2f %10.2f\n",
			s.Rank, s.Policy, s.EnergyJ.N, s.EnergyJ.Mean, s.EnergyJ.CI95,
			vsBase, s.AvgTempC.Mean, s.Misses.Mean)
	}
	return sb.String()
}
