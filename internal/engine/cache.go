package engine

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Cache stores simulation records by configuration fingerprint. Every
// tier deals in *Record — the encoded canonical bytes plus the lazily
// decoded Result — so a value crosses tiers (memory → disk → remote)
// and reaches a socket without ever being re-marshalled. Records handed
// out by Get are shared — with singleflight dedup and a serving layer
// on top, one entry may back many concurrent jobs and HTTP responses,
// so callers must treat them as strictly immutable: never mutate a
// Record, or a Result (or its Ledger/maps) obtained from one.
// Implementations must be safe for concurrent use.
type Cache interface {
	Get(key string) (*Record, bool)
	Put(key string, rec *Record) error
}

// CacheStats are a cache's occupancy and eviction counters.
type CacheStats struct {
	// Entries and Bytes are the current occupancy. Bytes is exact in
	// record terms: for the LRU it is the sum of live records' MemSize,
	// for Disk the total encoded container size on disk.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Evictions counts entries dropped to enforce a bound.
	Evictions int64 `json:"evictions"`
}

// StatsReporter is implemented by caches that track occupancy;
// Engine.Stats folds the counters into its snapshot when present.
type StatsReporter interface {
	CacheStats() CacheStats
}

// DiskOptions bounds a disk cache. The zero value means: default
// front-memory bounds, no on-disk size cap, no fsync, real filesystem.
type DiskOptions struct {
	// MaxBytes caps the total size of the cached *.rec containers; when
	// an insert overflows it, the least-recently-modified entries are
	// deleted until the cache fits under 90% of the cap (the hysteresis
	// amortises the GC's directory scan). 0 means unbounded.
	MaxBytes int64
	// Codec selects the record body compression for new entries: "" or
	// "flate" (the default, DEFLATE via stdlib), "none"/"raw"
	// (uncompressed). "zstd" has a reserved slot in the format but is not
	// built into this binary and is refused at open time. Entries written
	// with any supported codec remain readable regardless of this knob.
	Codec string
	// Memory bounds the in-process front cache (see LRUOptions); the
	// zero value selects the LRU defaults.
	Memory LRUOptions
	// Sync makes Put crash-consistent against power loss, not just
	// process death: the temp file is fsynced before the atomic rename
	// publishes it (so a crash can never expose a torn final entry) and
	// the directory is fsynced after (so a completed rename is durable).
	// Without Sync a crash at the wrong moment can leave a torn entry —
	// still healable (Get deletes undecodable entries) but a lost slot.
	// Turn it on for shared stores (dpmremote); leave it off for
	// per-process scratch caches where re-simulation is cheaper than an
	// fsync per insert.
	Sync bool
	// FS overrides the filesystem seam Put/GC go through (fault
	// injection, crash testing); nil means the real filesystem.
	FS FS
}

// Disk is a directory-backed record cache: one binary record container
// (`<fingerprint>.rec`, see Record) per entry. It layers a bounded LRU in
// front of the files, so within one process each entry is read and
// checksummed at most once while hot — and thanks to the record's lazy
// decode, only ever unmarshalled if a consumer needs the decoded Result.
// Safe for concurrent use within a process; concurrent writers in
// separate processes are harmless because writes are atomic
// (write-to-temp + rename) and entries are content-addressed.
//
// Opening the cache sweeps temp files abandoned by crashed writers and
// deletes legacy pre-record `*.json` entries (the old format); those keys
// heal by re-simulation on their next miss and are rewritten in the new
// format — stale bytes can never poison a result. A Get that finds a
// corrupt or stale-format entry deletes it so the slot heals with the
// next Put instead of re-missing every process lifetime.
type Disk struct {
	dir   string
	mem   *LRU
	fs    FS
	sync  bool
	codec Codec

	diskHits, diskMisses atomic.Int64
	// touchBroken latches after the first failed mtime refresh (e.g. a
	// read-only cache directory): recency tracking degrades to write
	// order, logged once, and hits keep being served without paying a
	// doomed Chtimes per Get.
	touchBroken atomic.Bool

	gcMu      sync.Mutex
	bytes     int64 // total size of *.rec containers
	entries   int64 // count of *.rec entries
	maxBytes  int64
	evictions int64
}

// recExt is the on-disk extension of binary record containers; the
// pre-record format used legacyExt and is swept at open time.
const (
	recExt    = ".rec"
	legacyExt = ".json"
)

// NewDisk opens (creating if needed) an unbounded disk cache rooted at
// dir, sweeping stale temp files left by crashed writers.
func NewDisk(dir string) (*Disk, error) {
	return NewDiskWith(dir, DiskOptions{})
}

// NewDiskWith opens a disk cache with explicit bounds.
func NewDiskWith(dir string, opts DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: cache dir: %w", err)
	}
	fs := opts.FS
	if fs == nil {
		fs = OSFS
	}
	codec, err := ParseCodec(opts.Codec)
	if err != nil {
		return nil, err
	}
	c := &Disk{dir: dir, mem: NewLRU(opts.Memory), fs: fs, sync: opts.Sync, codec: codec, maxBytes: opts.MaxBytes}
	c.sweepTemp()
	c.sweepLegacy()
	c.bytes, c.entries = c.scan()
	if c.maxBytes > 0 {
		c.gc()
	}
	return c, nil
}

func (c *Disk) path(key string) string {
	return filepath.Join(c.dir, key+recExt)
}

// sweepTemp removes temp files abandoned by writers that crashed between
// CreateTemp and the atomic rename. Any live writer's temp file is at
// most seconds old and will be renamed away or re-created; deleting it
// costs one redundant simulation, never correctness.
func (c *Disk) sweepTemp() {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.tmp*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		c.fs.Remove(m)
	}
}

// sweepLegacy deletes pre-record `*.json` entries: the old format cannot
// be trusted to round-trip through the current decoder, so migration is
// by re-simulation — each swept key serves one miss, the engine
// recomputes it, and the slot is rewritten as a `*.rec` container.
// Content addressing makes this safe (a fingerprint's result is
// recomputable by construction), and it guarantees stale-format bytes
// can never poison a response.
func (c *Disk) sweepLegacy() {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*"+legacyExt))
	if err != nil || len(matches) == 0 {
		return
	}
	swept := 0
	for _, m := range matches {
		if c.fs.Remove(m) == nil {
			swept++
		}
	}
	if swept > 0 {
		log.Printf("engine: disk cache %s: removed %d legacy JSON entries (format migration; keys heal by re-simulation)", c.dir, swept)
	}
}

// scan counts the current *.rec containers and their total size.
func (c *Disk) scan() (bytes, entries int64) {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*"+recExt))
	if err != nil {
		return 0, 0
	}
	for _, m := range matches {
		if fi, err := os.Stat(m); err == nil {
			bytes += fi.Size()
			entries++
		}
	}
	return bytes, entries
}

// Get returns the cached record for key from memory or disk. A disk load
// validates the container header and body checksum (cheap — no
// decompression) before promoting to the front memory, so a torn or
// bit-rotted file is deleted and reported as a miss, never served.
func (c *Disk) Get(key string) (*Record, bool) {
	if rec, ok := c.mem.Get(key); ok {
		return rec, true
	}
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.diskMisses.Add(1)
		return nil, false
	}
	rec, err := DecodeRecord(data)
	if err != nil || rec.Key() != key {
		// A corrupt, mis-keyed or stale-format entry can never hit again;
		// delete it so the next Put heals the slot instead of the key
		// re-missing every process lifetime.
		c.remove(path, int64(len(data)))
		c.diskMisses.Add(1)
		return nil, false
	}
	c.touch(path)
	c.diskHits.Add(1)
	c.mem.Put(key, rec)
	return rec, true
}

// touch refreshes the entry's mtime so the size-cap GC's recency order
// reflects access, not just write order (a hit loads from disk at most
// once per process lifetime — after this the front memory serves it).
// A failing touch (read-only directory, exotic filesystem) is a
// degraded recency signal, not a degraded cache: log it once, stop
// retrying, and keep serving hits.
func (c *Disk) touch(path string) {
	if c.touchBroken.Load() {
		return
	}
	now := time.Now()
	if err := os.Chtimes(path, now, now); err != nil {
		if c.touchBroken.CompareAndSwap(false, true) {
			log.Printf("engine: disk cache %s: mtime refresh failed (%v); eviction recency degrades to write order", c.dir, err)
		}
	}
}

// Has probes for key in memory or on disk without loading, decoding or
// promoting the entry — the side-effect-free existence check the blob
// server's HEAD/stat endpoints and warm-up use.
func (c *Disk) Has(key string) bool {
	if c.mem.Has(key) {
		return true
	}
	_, err := os.Stat(c.path(key))
	return err == nil
}

// Put stores a record in memory and on disk, then enforces the size cap.
// The on-disk payload is the record's binary container (compressed per
// DiskOptions.Codec) — encoding is cached on the record, so a record
// replicated to several stores compresses once. The write is atomic
// (temp + rename); with DiskOptions.Sync it is additionally
// crash-consistent: the payload is fsynced before the rename publishes
// it, so a crash at any point leaves the slot holding the old entry, the
// complete new entry, or nothing — never a torn file.
func (c *Disk) Put(key string, rec *Record) error {
	c.mem.Put(key, rec)
	data, err := rec.Encode(c.codec)
	if err != nil {
		return fmt.Errorf("engine: encode record: %w", err)
	}
	tmp, err := c.fs.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("engine: cache write: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		c.fs.Remove(name)
		return fmt.Errorf("engine: cache write: %w", err)
	}
	if c.sync {
		// Data must be stable before the rename makes it addressable:
		// rename-then-sync can expose a torn final entry after power loss.
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			c.fs.Remove(name)
			return fmt.Errorf("engine: cache sync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(name)
		return fmt.Errorf("engine: cache write: %w", err)
	}
	// Stat + rename + accounting happen under gcMu so a concurrent gc()
	// snapshot cannot interleave and double-count the entry.
	path := c.path(key)
	c.gcMu.Lock()
	var old int64
	existed := false
	if fi, err := os.Stat(path); err == nil {
		old, existed = fi.Size(), true
	}
	if err := c.fs.Rename(name, path); err != nil {
		c.gcMu.Unlock()
		c.fs.Remove(name)
		return fmt.Errorf("engine: cache write: %w", err)
	}
	c.bytes += int64(len(data)) - old
	if !existed {
		c.entries++
	}
	over := c.maxBytes > 0 && c.bytes > c.maxBytes
	c.gcMu.Unlock()
	if c.sync {
		// The rename is data-safe already; the directory sync makes it
		// durable. The entry is visible either way, so a failing sync
		// degrades durability, not correctness — but report it, the
		// caller asked for crash consistency.
		if err := c.fs.SyncDir(c.dir); err != nil {
			return fmt.Errorf("engine: cache sync: %w", err)
		}
	}
	if over {
		c.gc()
	}
	return nil
}

// remove deletes one entry file and adjusts the occupancy accounting.
func (c *Disk) remove(path string, size int64) {
	if c.fs.Remove(path) == nil {
		c.gcMu.Lock()
		c.bytes -= size
		c.entries--
		c.gcMu.Unlock()
	}
}

// gc deletes least-recently-used entries until the cache fits under
// 90% of MaxBytes — LRU by mtime, which Put's atomic rename sets and a
// disk-layer Get refreshes. The 10% hysteresis amortises the directory
// scan: at steady
// state each gc buys ~MaxBytes/10 of writes before the next one, so Put
// is not O(directory) per insert. Entries evicted here are only files:
// the front memory keeps serving its own (bounded) working set.
func (c *Disk) gc() {
	c.gcMu.Lock()
	defer c.gcMu.Unlock()
	matches, err := filepath.Glob(filepath.Join(c.dir, "*"+recExt))
	if err != nil {
		return
	}
	target := c.maxBytes - c.maxBytes/10
	type entry struct {
		path  string
		size  int64
		mtime int64
	}
	entries := make([]entry, 0, len(matches))
	var total int64
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		entries = append(entries, entry{m, fi.Size(), fi.ModTime().UnixNano()})
		total += fi.Size()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	kept := int64(len(entries))
	for _, e := range entries {
		if total <= target {
			break
		}
		if c.fs.Remove(e.path) == nil {
			total -= e.size
			kept--
			c.evictions++
		}
	}
	c.bytes, c.entries = total, kept
}

// CacheStats reports the on-disk occupancy from the maintained counters —
// O(1), so a serving layer can scrape it per request without re-listing
// the cache directory (counters are approximate when separate processes
// share the directory). Entries/Bytes are the persistent layer; the
// eviction count sums both layers — size-cap GC deletions plus the
// bounded front memory's evictions — so pressure on either bound is
// observable.
func (c *Disk) CacheStats() CacheStats {
	memEvictions := c.mem.CacheStats().Evictions
	c.gcMu.Lock()
	defer c.gcMu.Unlock()
	return CacheStats{Entries: c.entries, Bytes: c.bytes, Evictions: c.evictions + memEvictions}
}

// TierStats splits the layered counters: the front memory and the
// persistent files report as separate tiers (the disk tier's evictions
// are the size-cap GC's alone; CacheStats sums both layers).
func (c *Disk) TierStats() []TierStats {
	ts := c.mem.TierStats()
	c.gcMu.Lock()
	disk := TierStats{
		Tier:      TierDisk,
		Hits:      c.diskHits.Load(),
		Misses:    c.diskMisses.Load(),
		Entries:   c.entries,
		Bytes:     c.bytes,
		Evictions: c.evictions,
	}
	c.gcMu.Unlock()
	return append(ts, disk)
}
