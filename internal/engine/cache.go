package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"godpm/internal/soc"
)

// Cache stores simulation results by configuration fingerprint. Results
// handed out by Get are shared — callers must treat them as immutable.
// Implementations must be safe for concurrent use.
type Cache interface {
	Get(key string) (*soc.Result, bool)
	Put(key string, r *soc.Result) error
}

// Memory is an in-process result cache.
type Memory struct {
	mu sync.RWMutex
	m  map[string]*soc.Result
}

// NewMemory returns an empty in-memory cache.
func NewMemory() *Memory {
	return &Memory{m: make(map[string]*soc.Result)}
}

// Get returns the cached result for key, if any.
func (c *Memory) Get(key string) (*soc.Result, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.m[key]
	return r, ok
}

// Put stores a result.
func (c *Memory) Put(key string, r *soc.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
	return nil
}

// Len returns the number of cached entries.
func (c *Memory) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Disk is a directory-backed result cache: one JSON file per fingerprint.
// It layers an in-memory cache in front of the files, so within one
// process each entry is deserialised at most once. Safe for concurrent
// use within a process; concurrent writers in separate processes are
// harmless because writes are atomic (write-to-temp + rename) and entries
// are content-addressed.
type Disk struct {
	dir string
	mem *Memory
}

// NewDisk opens (creating if needed) a disk cache rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: cache dir: %w", err)
	}
	return &Disk{dir: dir, mem: NewMemory()}, nil
}

func (c *Disk) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached result for key from memory or disk.
func (c *Disk) Get(key string) (*soc.Result, bool) {
	if r, ok := c.mem.Get(key); ok {
		return r, true
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var r soc.Result
	if err := json.Unmarshal(data, &r); err != nil {
		// A corrupt or stale-format entry is a miss, not an error; the
		// fresh run will overwrite it.
		return nil, false
	}
	c.mem.Put(key, &r)
	return &r, true
}

// Put stores a result in memory and on disk.
func (c *Disk) Put(key string, r *soc.Result) error {
	c.mem.Put(key, r)
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("engine: encode result: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("engine: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: cache write: %w", err)
	}
	return nil
}
