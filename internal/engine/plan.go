package engine

import (
	"fmt"

	"godpm/internal/soc"
)

// Job is one unit of work: a complete simulation configuration plus a
// human-readable identifier (unique within a plan by convention; the
// cache key is the config fingerprint, not the ID).
type Job struct {
	ID     string
	Config soc.Config
	// Options are the run-time options the job simulates with. Observers
	// are pure instrumentation and do not affect caching — but a
	// cache-served job never simulates, so its observers see nothing.
	// StopWhen conditions change the Result; their Reason strings are
	// folded into the cache key, and jobs with Volatile (host-timing)
	// conditions are never cached.
	Options soc.RunOptions
}

// Plan is an ordered list of jobs. Order is significant: the engine's
// results come back index-aligned with the plan regardless of execution
// order, so builders can lay out grids however downstream aggregation
// wants to read them.
type Plan struct {
	Jobs []Job
}

// Add appends one job and returns the plan for chaining.
func (p *Plan) Add(id string, cfg soc.Config) *Plan {
	p.Jobs = append(p.Jobs, Job{ID: id, Config: cfg})
	return p
}

// AddWith appends one job carrying run-time options (observers and/or stop
// conditions) and returns the plan for chaining.
func (p *Plan) AddWith(id string, cfg soc.Config, opts soc.RunOptions) *Plan {
	p.Jobs = append(p.Jobs, Job{ID: id, Config: cfg, Options: opts})
	return p
}

// AddPair appends a run and its reference configuration as two adjacent
// jobs (`id/dpm`, `id/base`) — the layout the Table 2 harness consumes.
func (p *Plan) AddPair(id string, cfg, baseline soc.Config) *Plan {
	p.Add(id+"/dpm", cfg)
	p.Add(id+"/base", baseline)
	return p
}

// AddFan appends one job per seed (`id@seed`), for seed-replication
// fan-outs: build regenerates the workload for each seed.
func (p *Plan) AddFan(id string, seeds []int64, build func(seed int64) soc.Config) *Plan {
	for _, s := range seeds {
		p.Add(fmt.Sprintf("%s@%d", id, s), build(s))
	}
	return p
}

// Len returns the number of jobs.
func (p *Plan) Len() int { return len(p.Jobs) }
