package engine_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"godpm/internal/engine"
	"godpm/internal/soc"
)

// gatedCache wraps an LRU whose Puts block until released, to hold the
// write-behind writer still while a test fills the queue.
type gatedCache struct {
	inner *engine.LRU
	gate  chan struct{}
	once  sync.Once
}

func newGatedCache() *gatedCache {
	return &gatedCache{inner: engine.NewLRU(engine.LRUOptions{}), gate: make(chan struct{})}
}

func (g *gatedCache) release() { g.once.Do(func() { close(g.gate) }) }

func (g *gatedCache) Get(key string) (*engine.Record, bool) { return g.inner.Get(key) }

func (g *gatedCache) Put(key string, rec *engine.Record) error {
	<-g.gate
	return g.inner.Put(key, rec)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func testKey(b byte) string { return strings.Repeat(string([]byte{b}), 64) }

// recFor wraps a result into a record, panicking on the (impossible)
// marshal failure — usable from non-test goroutines.
func recFor(key string, r *soc.Result) *engine.Record {
	rec, err := engine.NewRecord(key, r)
	if err != nil {
		panic(err)
	}
	return rec
}

func TestTieredPromotesDeeperHits(t *testing.T) {
	fast := engine.NewLRU(engine.LRUOptions{})
	slow := engine.NewLRU(engine.LRUOptions{})
	tiered := engine.NewTiered(
		engine.Tier{Cache: fast, Name: "fast"},
		engine.Tier{Cache: slow, Name: "slow"},
	)
	defer tiered.Close()

	key := testKey('a')
	if err := slow.Put(key, recFor(key, &soc.Result{EnergyJ: 42})); err != nil {
		t.Fatal(err)
	}
	got, ok := tiered.Get(key)
	if !ok || energyHit(t, got) != 42 {
		t.Fatalf("Get = %v, %v; want the slow tier's entry", got, ok)
	}
	if !fast.Has(key) {
		t.Fatalf("deeper hit was not promoted into the fast tier")
	}
	if tiered.Promotions() != 1 {
		t.Fatalf("Promotions = %d, want 1", tiered.Promotions())
	}
	// A fast-tier hit does not count as a promotion.
	if _, ok := tiered.Get(key); !ok {
		t.Fatal("second Get missed")
	}
	if tiered.Promotions() != 1 {
		t.Fatalf("Promotions = %d after fast hit, want still 1", tiered.Promotions())
	}
}

func TestTieredWriteBehindDelivers(t *testing.T) {
	local := engine.NewLRU(engine.LRUOptions{})
	behind := engine.NewLRU(engine.LRUOptions{})
	tiered := engine.NewTiered(
		engine.Tier{Cache: local, Name: "local"},
		engine.Tier{Cache: behind, Name: "behind", AsyncPut: true},
	)
	defer tiered.Close()

	key := testKey('b')
	if err := tiered.Put(key, recFor(key, &soc.Result{EnergyJ: 1})); err != nil {
		t.Fatal(err)
	}
	if !local.Has(key) {
		t.Fatalf("synchronous tier missing the entry immediately after Put")
	}
	waitFor(t, "write-behind delivery", func() bool { return behind.Has(key) })
}

func TestTieredWriteBehindDropsWhenFull(t *testing.T) {
	gated := newGatedCache()
	tiered := engine.NewTieredWith(engine.TieredOptions{QueueLen: 1},
		engine.Tier{Cache: engine.NewLRU(engine.LRUOptions{}), Name: "local"},
		engine.Tier{Cache: gated, Name: "gated", AsyncPut: true},
	)

	// First Put is picked up by the writer and blocks on the gate; the
	// second fills the queue; the rest must be dropped without blocking.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			k := testKey(byte('a' + i))
			tiered.Put(k, recFor(k, &soc.Result{}))
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("Put blocked on a full write-behind queue")
	}
	waitFor(t, "drops recorded", func() bool {
		for _, ts := range tiered.TierStats() {
			if ts.Tier == "gated" && ts.PutDrops >= 3 {
				return true
			}
		}
		return false
	})
	gated.release()
	tiered.Close()
}

func TestTieredCloseFlushesQueue(t *testing.T) {
	gated := newGatedCache()
	tiered := engine.NewTieredWith(engine.TieredOptions{QueueLen: 16},
		engine.Tier{Cache: engine.NewLRU(engine.LRUOptions{}), Name: "local"},
		engine.Tier{Cache: gated, Name: "gated", AsyncPut: true},
	)
	keys := []string{testKey('1'), testKey('2'), testKey('3'), testKey('4')}
	for _, k := range keys {
		if err := tiered.Put(k, recFor(k, &soc.Result{})); err != nil {
			t.Fatal(err)
		}
	}
	gated.release()
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok := gated.Get(k); !ok {
			t.Fatalf("entry %s... not flushed by Close", k[:8])
		}
	}
}

func TestTieredWarmPromotesPresentKeys(t *testing.T) {
	local := engine.NewLRU(engine.LRUOptions{})
	deep := engine.NewLRU(engine.LRUOptions{})
	// statingCache gives the deep tier a batched existence probe, as the
	// remote tier would.
	tiered := engine.NewTiered(
		engine.Tier{Cache: local, Name: "local"},
		engine.Tier{Cache: statingCache{deep}, Name: "deep"},
	)
	defer tiered.Close()

	present := []string{testKey('a'), testKey('b'), testKey('c')}
	for _, k := range present {
		if err := deep.Put(k, recFor(k, &soc.Result{EnergyJ: 7})); err != nil {
			t.Fatal(err)
		}
	}
	absent := testKey('d')
	fetched := tiered.Warm(context.Background(), append(append([]string{}, present...), absent))
	if fetched != len(present) {
		t.Fatalf("Warm fetched %d entries, want %d", fetched, len(present))
	}
	for _, k := range present {
		if !local.Has(k) {
			t.Fatalf("warmed key %s... not promoted into the local tier", k[:8])
		}
	}
	if local.Has(absent) {
		t.Fatalf("absent key appeared in the local tier")
	}
	// A second warm has nothing left to do.
	if again := tiered.Warm(context.Background(), present); again != 0 {
		t.Fatalf("second Warm fetched %d entries, want 0", again)
	}
}

// statingCache adds a Stat method to an LRU so Warm treats it as a
// remote-style tier.
type statingCache struct{ *engine.LRU }

func (s statingCache) Stat(_ context.Context, keys []string) (map[string]bool, error) {
	out := make(map[string]bool)
	for _, k := range keys {
		if s.LRU.Has(k) {
			out[k] = true
		}
	}
	return out, nil
}

func TestTieredGetLocalSkipsRemoteStyleTiers(t *testing.T) {
	local := engine.NewLRU(engine.LRUOptions{})
	deep := engine.NewLRU(engine.LRUOptions{})
	tiered := engine.NewTiered(
		engine.Tier{Cache: local, Name: "local"},
		engine.Tier{Cache: statingCache{deep}, Name: "deep"},
	)
	defer tiered.Close()

	key := testKey('e')
	if err := deep.Put(key, recFor(key, &soc.Result{})); err != nil {
		t.Fatal(err)
	}
	if _, ok := tiered.GetLocal(key); ok {
		t.Fatalf("GetLocal hit through the remote-style tier")
	}
	if _, ok := tiered.Get(key); !ok {
		t.Fatalf("full Get missed the deep entry")
	}
	if _, ok := tiered.GetLocal(key); !ok {
		t.Fatalf("GetLocal missed after promotion")
	}
}

func TestTieredStatsFlatten(t *testing.T) {
	disk, err := engine.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stub := newGatedCache() // not a TierStatsReporter → named stub entry
	stub.release()
	tiered := engine.NewTiered(
		engine.Tier{Cache: disk},
		engine.Tier{Cache: stub, Name: "stub"},
	)
	defer tiered.Close()

	key := testKey('f')
	if err := tiered.Put(key, recFor(key, &soc.Result{})); err != nil {
		t.Fatal(err)
	}
	if _, ok := tiered.Get(key); !ok {
		t.Fatal("Get missed")
	}
	var names []string
	for _, ts := range tiered.TierStats() {
		names = append(names, ts.Tier)
	}
	want := []string{engine.TierMemory, engine.TierDisk, "stub"}
	if len(names) != len(want) {
		t.Fatalf("TierStats tiers = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("TierStats tiers = %v, want %v", names, want)
		}
	}
	st := tiered.CacheStats()
	if st.Entries != 1 {
		t.Fatalf("CacheStats.Entries = %d, want 1 (the disk tier's)", st.Entries)
	}
}
