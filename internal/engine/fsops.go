package engine

import (
	"io"
	"os"
)

// FS is the filesystem seam the Disk cache's mutating path goes through:
// every operation that can leave the cache directory in an intermediate
// state (temp creation, payload writes, fsyncs, the atomic rename, entry
// deletion) is routed here, so fault-injection harnesses can wrap the
// real filesystem with torn writes, transient errors and crash points
// and prove the recovery story instead of assuming it. Read paths stay
// on the real filesystem: a reader can at worst observe a state some
// writer legitimately produced.
type FS interface {
	// CreateTemp creates a new temp file in dir (os.CreateTemp pattern
	// semantics) and returns a writable handle to it.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically moves oldpath over newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes one file.
	Remove(name string) error
	// SyncDir fsyncs a directory, making a completed rename durable
	// against power loss (a rename is metadata; without the directory
	// sync it can be lost even though the file's data was fsynced).
	SyncDir(dir string) error
}

// File is the writable handle FS.CreateTemp returns.
type File interface {
	io.Writer
	// Name returns the file's path (the rename source).
	Name() string
	// Sync flushes the written payload to stable storage.
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
