package engine_test

import (
	"context"
	"fmt"
	"testing"

	"godpm/internal/engine"
	"godpm/internal/sim"
	"godpm/internal/soc"
)

// horizonPlan lays out one config at several horizons — the shape the
// fork-group warm-start exists for.
func horizonPlan(seed int64, horizons []sim.Time) engine.Plan {
	var p engine.Plan
	for _, h := range horizons {
		cfg := testConfig(seed, soc.PolicyDPM, 25)
		cfg.Horizon = h
		p.Add(fmt.Sprintf("h=%s", h), cfg)
	}
	return p
}

// TestForkGroupSharesPrefix pins the warm-start end to end: a horizon
// sweep runs as one shared session (Stats.Forked counts the avoided
// simulations), every member's Result is bit-identical to a solo run of
// the same config, and each member still gets its own cache entry.
func TestForkGroupSharesPrefix(t *testing.T) {
	horizons := []sim.Time{30 * sim.Ms, 75 * sim.Ms, 60 * sim.Sec}
	plan := horizonPlan(7, horizons)

	eng := engine.New(engine.Options{Workers: 4})
	results, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Runs != 1 {
		t.Fatalf("horizon sweep ran %d simulations, want 1 shared session", st.Runs)
	}
	if want := int64(len(horizons) - 1); st.Forked != want {
		t.Fatalf("Stats.Forked = %d, want %d", st.Forked, want)
	}
	if st.Misses != int64(len(horizons)) {
		t.Fatalf("Stats.Misses = %d, want %d", st.Misses, len(horizons))
	}

	for i := range plan.Jobs {
		if results[i].Err != nil {
			t.Fatalf("job %s: %v", plan.Jobs[i].ID, results[i].Err)
		}
		solo, err := soc.Run(plan.Jobs[i].Config)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := engine.ResultDigest(results[i].Result), engine.ResultDigest(solo); got != want {
			t.Errorf("job %s: forked digest %s != solo %s", plan.Jobs[i].ID, got, want)
		}
	}

	// A second invocation is all cache hits: the group stored per-member
	// entries.
	again, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].CacheHit {
			t.Errorf("job %s: not cache-served on rerun", plan.Jobs[i].ID)
		}
	}
	if st2 := eng.Stats(); st2.Runs != 1 {
		t.Fatalf("rerun simulated again: Runs = %d", st2.Runs)
	}
}

// TestForkGroupStopConditions covers groups cut by stop conditions rather
// than horizons, mixed with a horizon member.
func TestForkGroupStopConditions(t *testing.T) {
	cfg := testConfig(3, soc.PolicyAlwaysOn, 25)
	solo, err := soc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := solo.EnergyJ / 3

	var plan engine.Plan
	plan.AddWith("budget", cfg, soc.RunOptions{StopWhen: []soc.StopCondition{soc.StopOnEnergyBudget(budget)}})
	plan.Add("full", cfg)

	eng := engine.New(engine.Options{Workers: 2})
	results, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Runs != 1 || st.Forked != 1 {
		t.Fatalf("Runs=%d Forked=%d, want 1/1", st.Runs, st.Forked)
	}
	if results[0].Result.StopReason == "" {
		t.Error("budget member did not stop early")
	}
	soloStopped, err := soc.RunWith(context.Background(), cfg,
		soc.RunOptions{StopWhen: []soc.StopCondition{soc.StopOnEnergyBudget(budget)}})
	if err != nil {
		t.Fatal(err)
	}
	if engine.ResultDigest(results[0].Result) != engine.ResultDigest(soloStopped) {
		t.Error("stopped member digest differs from solo stopped run")
	}
	if engine.ResultDigest(results[1].Result) != engine.ResultDigest(solo) {
		t.Error("full member digest differs from solo run")
	}
}

// TestForkGroupIneligible pins the jobs that must NOT fork: volatile
// stops, observed jobs, NoFastForward, and NoCache engines.
func TestForkGroupIneligible(t *testing.T) {
	cfg := testConfig(5, soc.PolicyDPM, 10)
	cfg2 := cfg
	cfg2.Horizon = 10 * sim.Ms

	// NoCache engine: two forkable-shaped jobs still run solo.
	eng := engine.New(engine.Options{Workers: 2, NoCache: true})
	var plan engine.Plan
	plan.Add("a", cfg).Add("b", cfg2)
	if _, err := eng.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Forked != 0 || st.Runs != 2 {
		t.Fatalf("NoCache engine forked: Runs=%d Forked=%d", st.Runs, st.Forked)
	}

	// NoFastForward jobs keep their solo ticked runs.
	eng2 := engine.New(engine.Options{Workers: 2})
	var plan2 engine.Plan
	plan2.AddWith("a", cfg, soc.RunOptions{NoFastForward: true})
	plan2.AddWith("b", cfg2, soc.RunOptions{NoFastForward: true})
	if _, err := eng2.Run(context.Background(), plan2); err != nil {
		t.Fatal(err)
	}
	if st := eng2.Stats(); st.Forked != 0 || st.Runs != 2 {
		t.Fatalf("NoFastForward jobs forked: Runs=%d Forked=%d", st.Runs, st.Forked)
	}
}
