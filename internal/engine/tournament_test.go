package engine

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/workload"
)

// smallTournament is the test fixture: 3 policies × 5 generated scenarios
// × 3 seeds of tiny workloads.
func smallTournament(numSeeds int) Tournament {
	pols := StandardPolicies()
	seeds := make([]workload.Seed, numSeeds)
	for i := range seeds {
		seeds[i] = workload.NewSeed(uint64(100 + i))
	}
	return Tournament{
		Scenarios: ArenaScenarios(6),
		Policies:  []PolicyVariant{pols[1], pols[0], pols[3]}, // alwayson, dpm, greedy
		Seeds:     seeds,
		Baseline:  "alwayson",
		Deadline:  30 * sim.Ms,
	}
}

func TestTournamentValidate(t *testing.T) {
	ok := smallTournament(2)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Tournament){
		func(t *Tournament) { t.Scenarios = nil },
		func(t *Tournament) { t.Policies = nil },
		func(t *Tournament) { t.Seeds = nil },
		func(t *Tournament) { t.Baseline = "nosuch" },
		func(t *Tournament) { t.Policies = append(t.Policies, t.Policies[0]) },
		func(t *Tournament) { t.Scenarios = append(t.Scenarios, t.Scenarios[0]) },
		func(t *Tournament) { t.Policies = []PolicyVariant{{Name: "x"}} },
		func(t *Tournament) { t.Scenarios[0].Name = "" },
	}
	for i, mutate := range cases {
		bad := smallTournament(2)
		bad.Scenarios = append([]NamedConfig(nil), bad.Scenarios...)
		bad.Policies = append([]PolicyVariant(nil), bad.Policies...)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d validated but should not", i)
		}
	}
}

func TestTournamentPlanLayout(t *testing.T) {
	tour := smallTournament(2)
	plan, err := tour.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want := len(tour.Scenarios) * len(tour.Policies) * len(tour.Seeds)
	if plan.Len() != want {
		t.Fatalf("plan has %d jobs, want %d", plan.Len(), want)
	}
	// Scenario-major, seed, policy-minor; IDs carry all three coordinates.
	if got := plan.Jobs[0].ID; got != "steady/alwayson@100" {
		t.Errorf("job 0 ID = %q", got)
	}
	if got := plan.Jobs[1].ID; got != "steady/dpm@100" {
		t.Errorf("job 1 ID = %q", got)
	}
	if got := plan.Jobs[3].ID; got != "steady/alwayson@101" {
		t.Errorf("job 3 ID = %q", got)
	}
	// All policies of one (scenario, seed) replicate share the identical
	// generated workload: the paired design.
	n0, err := plan.Jobs[0].Config.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	n1, err := plan.Jobs[1].Config.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n0.IPs[0].Sequence, n1.IPs[0].Sequence) {
		t.Error("policies of the same replicate run different workloads")
	}
	// Different seeds produce different workloads.
	n3, err := plan.Jobs[3].Config.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(n0.IPs[0].Sequence, n3.IPs[0].Sequence) {
		t.Error("different seeds produced the identical workload")
	}
}

// TestTournamentLeaderboardDeterministic pins the acceptance contract:
// identical seeds reproduce identical leaderboards on fresh engines with
// different worker counts, and a rerun on the same engine is fully
// cache-served.
func TestTournamentLeaderboardDeterministic(t *testing.T) {
	tour := smallTournament(3)
	ctx := context.Background()

	eng1 := New(Options{Workers: 1})
	r1, err := RunTournament(ctx, eng1, tour)
	if err != nil {
		t.Fatal(err)
	}
	eng8 := New(Options{Workers: 8})
	r8, err := RunTournament(ctx, eng8, tour)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Leaderboard, r8.Leaderboard) {
		t.Fatalf("leaderboards differ across worker counts:\n1: %+v\n8: %+v", r1.Leaderboard, r8.Leaderboard)
	}
	if !reflect.DeepEqual(r1.Cells, r8.Cells) {
		t.Fatal("cells differ across worker counts")
	}
	// Every rendering of the two results is byte-identical too.
	for _, render := range []func(*TournamentResult) string{
		func(r *TournamentResult) string {
			var b strings.Builder
			_ = r.WriteLeaderboardCSV(&b)
			return b.String()
		},
		func(r *TournamentResult) string { var b strings.Builder; _ = r.WriteCellsCSV(&b); return b.String() },
		func(r *TournamentResult) string { var b strings.Builder; _ = r.WriteJSON(&b); return b.String() },
		(*TournamentResult).FormatLeaderboard,
	} {
		a, b := render(r1), render(r8)
		if a == "" || a != b {
			t.Fatalf("rendering differs or is empty:\n%s\nvs\n%s", a, b)
		}
	}

	// Rerun on the same engine: every job must be cache-served and the
	// leaderboard identical.
	before := eng8.Stats()
	r8b, err := RunTournament(ctx, eng8, tour)
	if err != nil {
		t.Fatal(err)
	}
	after := eng8.Stats()
	plan, _ := tour.Plan()
	if hits := after.Hits - before.Hits; hits != int64(plan.Len()) {
		t.Errorf("rerun produced %d cache hits, want %d", hits, plan.Len())
	}
	if after.Runs != before.Runs {
		t.Errorf("rerun simulated %d extra jobs, want 0", after.Runs-before.Runs)
	}
	if !reflect.DeepEqual(r8.Leaderboard, r8b.Leaderboard) {
		t.Fatal("cache-served rerun changed the leaderboard")
	}

	// Sanity on the rankings themselves: every policy appears once, ranks
	// are 1..n, and the paired column is absent only for the baseline.
	if len(r1.Leaderboard) != len(tour.Policies) {
		t.Fatalf("leaderboard has %d rows, want %d", len(r1.Leaderboard), len(tour.Policies))
	}
	for i, s := range r1.Leaderboard {
		if s.Rank != i+1 {
			t.Errorf("row %d has rank %d", i, s.Rank)
		}
		wantRuns := len(tour.Scenarios) * len(tour.Seeds)
		if s.EnergyJ.N != wantRuns {
			t.Errorf("%s aggregated %d runs, want %d", s.Policy, s.EnergyJ.N, wantRuns)
		}
		if s.Policy == "alwayson" && s.EnergyVsBasePct.N != 0 {
			t.Error("baseline has a paired delta against itself")
		}
		if s.Policy != "alwayson" && s.EnergyVsBasePct.N != wantRuns {
			t.Errorf("%s paired %d runs, want %d", s.Policy, s.EnergyVsBasePct.N, wantRuns)
		}
	}
	// DPM and greedy must beat always-on on energy: paired mean negative
	// and leaderboard not led by alwayson.
	for _, s := range r1.Leaderboard {
		if s.Policy != "alwayson" && s.EnergyVsBasePct.Mean >= 0 {
			t.Errorf("%s does not save energy vs alwayson: %+v", s.Policy, s.EnergyVsBasePct)
		}
	}
	if r1.Leaderboard[len(r1.Leaderboard)-1].Policy != "alwayson" {
		t.Errorf("alwayson is not last: %+v", r1.Leaderboard)
	}
}

// countingObserver counts RunEnd callbacks; one instance per observed job.
type countingObserver struct {
	soc.NopObserver
	ends *atomic.Int64
}

func (o *countingObserver) RunEnd(*soc.Result) { o.ends.Add(1) }

// TestTournamentStress is the engine stress satellite: a tournament plan
// with mixed cached / uncached / observed jobs on 8 workers (run under
// -race in CI), asserting order-stable results and exact hit/miss
// counters.
func TestTournamentStress(t *testing.T) {
	tour := smallTournament(2)
	plan, err := tour.Plan()
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Workers: 8})
	ctx := context.Background()

	// Pre-warm the cache with the first third of the plan.
	warm := Plan{Jobs: append([]Job(nil), plan.Jobs[:plan.Len()/3]...)}
	if _, err := eng.Run(ctx, warm); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Misses != int64(warm.Len()) || st.Runs != int64(warm.Len()) {
		t.Fatalf("warm-up stats %+v, want %d misses/runs", st, warm.Len())
	}

	// Attach observers to every third job: observed jobs are still
	// cache-served when warm (their observers then see nothing).
	var ends atomic.Int64
	observed := 0
	for i := range plan.Jobs {
		if i%3 == 0 {
			plan.Jobs[i].Options.Observers = []soc.Observer{&countingObserver{ends: &ends}}
			observed++
		}
	}

	results, err := eng.Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Order stability: result i belongs to job i.
	for i := range results {
		if results[i].Job.ID != plan.Jobs[i].ID {
			t.Fatalf("result %d is %q, want %q", i, results[i].Job.ID, plan.Jobs[i].ID)
		}
		if results[i].Err != nil {
			t.Fatalf("job %s failed: %v", results[i].Job.ID, results[i].Err)
		}
		wantHit := i < warm.Len()
		if results[i].CacheHit != wantHit {
			t.Errorf("job %s cache hit = %v, want %v", results[i].Job.ID, results[i].CacheHit, wantHit)
		}
	}
	st = eng.Stats()
	wantHits := int64(warm.Len())
	wantRuns := int64(plan.Len()) // warm-up + the uncached remainder
	if st.Hits != wantHits || st.Runs != wantRuns || st.Misses != wantRuns || st.Errors != 0 {
		t.Errorf("stats %+v, want hits=%d runs=misses=%d errors=0", st, wantHits, wantRuns)
	}
	// Only observed jobs that actually simulated invoked RunEnd.
	var wantEnds int64
	for i := range plan.Jobs {
		if i%3 == 0 && i >= warm.Len() {
			wantEnds++
		}
	}
	if got := ends.Load(); got != wantEnds {
		t.Errorf("observers saw %d RunEnds, want %d", got, wantEnds)
	}

	// A repeat of the fully-warmed plan (observers still attached) is
	// 100%% cache-served and bit-identical.
	before := eng.Stats()
	again, err := eng.Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].CacheHit {
			t.Fatalf("job %s not cache-served on rerun", again[i].Job.ID)
		}
		if ResultDigest(again[i].Result) != ResultDigest(results[i].Result) {
			t.Fatalf("job %s digest changed on rerun", again[i].Job.ID)
		}
	}
	if d := eng.Stats().Runs - before.Runs; d != 0 {
		t.Errorf("rerun simulated %d jobs", d)
	}
}

// TestGeneratedWorkloadDigestsAcrossWorkers pins bit-identical results for
// generated workloads across worker counts with caching disabled: every
// job re-simulates and must reproduce the same ResultDigest.
func TestGeneratedWorkloadDigestsAcrossWorkers(t *testing.T) {
	tour := smallTournament(2)
	plan, err := tour.Plan()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	digest := func(workers int) []string {
		eng := New(Options{Workers: workers, NoCache: true})
		results, err := eng.Run(ctx, plan)
		if err != nil {
			t.Fatal(err)
		}
		ds := make([]string, len(results))
		for i, jr := range results {
			ds[i] = ResultDigest(jr.Result)
		}
		return ds
	}
	d1, d8 := digest(1), digest(8)
	if !reflect.DeepEqual(d1, d8) {
		t.Fatal("generated-workload digests differ across worker counts")
	}
}

// TestGenSpecFingerprint pins the cache-key contract for generator specs:
// equal specs share a fingerprint, different seeds or parameters do not,
// and a generated config does not collide with its hand-materialized
// expansion (the spec itself is folded into the key).
func TestGenSpecFingerprint(t *testing.T) {
	mk := func(seed uint64, tasks int) soc.Config {
		return soc.Config{IPs: []soc.IPSpec{{
			Name: "ip0",
			Gen:  workload.HeavyTailSpec(workload.DefaultHeavyTail(workload.NewSeed(seed), tasks)),
		}}}
	}
	a1, err := Fingerprint(mk(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Fingerprint(mk(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("equal generator specs produced different fingerprints")
	}
	b, err := Fingerprint(mk(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b {
		t.Fatal("different seeds share a fingerprint")
	}
	c, err := Fingerprint(mk(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if a1 == c {
		t.Fatal("different generator parameters share a fingerprint")
	}
	// A spec field left zero and the same field set to its documented
	// default describe the identical simulation and must share one key.
	zeroed := mk(1, 8)
	zeroed.IPs[0].Gen.HeavyTail.Shape = 0
	zeroed.IPs[0].Gen.HeavyTail.TailCap = 0
	zeroed.IPs[0].Gen.HeavyTail.ClassWeights = [4]float64{}
	zeroed.IPs[0].Gen.HeavyTail.PriorityWeights = [4]float64{}
	explicit := mk(1, 8)
	explicit.IPs[0].Gen.HeavyTail.Shape = 1.5
	explicit.IPs[0].Gen.HeavyTail.TailCap = 50
	explicit.IPs[0].Gen.HeavyTail.ClassWeights = [4]float64{1, 0, 0, 0} // ALU only
	explicit.IPs[0].Gen.HeavyTail.PriorityWeights = [4]float64{0, 1, 0, 0}
	fz, err := Fingerprint(zeroed)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := Fingerprint(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if fz != fe {
		t.Fatal("zero-valued and explicitly-defaulted generator specs hash differently")
	}
}
