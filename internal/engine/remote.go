package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The dpmremote wire protocol, shared by this client and BlobServer:
//
//	HEAD /v1/blob/{fingerprint}   →  200 | 404
//	GET  /v1/blob/{fingerprint}   →  200 (record container or JSON) | 404
//	PUT  /v1/blob/{fingerprint}   →  204 | 400/413/422
//	POST /v1/stat {"keys":[...]}  →  200 {"present":[...]}
//
// Blob bodies are content-negotiated: a client that sends
// `Accept: application/x-gdpm-record` receives the stored binary record
// container verbatim — an io.Copy of pre-encoded compressed bytes, no
// per-GET marshal — while a legacy client gets the canonical JSON it
// always got. PUT likewise accepts either a record container
// (Content-Type: application/x-gdpm-record) or legacy JSON, so mixed
// fleet versions interoperate: each side speaks the best format both
// understand.
//
// Fingerprints are the engine's cache keys (lowercase SHA-256 hex), so
// the protocol is content-addressed: a PUT can never overwrite an entry
// with a result for a different configuration, and concurrent writers
// racing on one key are idempotent.
const (
	blobPathPrefix = "/v1/blob/"
	statPath       = "/v1/stat"
	// digestHeader carries the result's content digest end-to-end: the
	// server sends it on GET responses and verifies it on PUT requests,
	// the client verifies it on GET and claims it on PUT. It is what
	// catches a byte flip that keeps the JSON valid — decode-level checks
	// alone cannot.
	digestHeader = "X-Result-Digest"
)

// statRequest is the batched existence probe's body.
type statRequest struct {
	Keys []string `json:"keys"`
}

// statResponse lists which of the requested keys the store holds.
type statResponse struct {
	Present []string `json:"present"`
}

// validKey reports whether key is a plausible content fingerprint:
// lowercase hex, bounded length. Both sides enforce it — the server so
// arbitrary paths can't address its store, the client so it never emits
// a request the server will reject.
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

// RemoteOptions configures a Remote cache client. The zero value (plus
// BaseURL) selects the documented defaults.
type RemoteOptions struct {
	// BaseURL is the dpmremote server root, e.g. "http://10.0.0.5:8081".
	BaseURL string
	// Timeout bounds each attempt of each operation; default 2s. Keep it
	// small: a slow remote should lose to re-simulating locally, not
	// stall the request.
	Timeout time.Duration
	// Retries is how many extra attempts transient failures (network
	// errors, 5xx, 429) get before the operation fails open; default 2.
	Retries int
	// RetryBackoff is the first retry's delay, doubled per attempt;
	// default 50ms.
	RetryBackoff time.Duration
	// MaxConns bounds the connection pool to the server; default 32.
	MaxConns int
	// FailureThreshold is how many consecutive failed operations trip
	// the breaker; default 5.
	FailureThreshold int
	// Cooldown is how long a tripped breaker skips the remote before
	// probing it again; default 2s.
	Cooldown time.Duration
	// MaxBlobBytes bounds a GET response body; default 32 MiB.
	MaxBlobBytes int64
	// JitterSeed seeds the deterministic ±20% retry-backoff jitter that
	// keeps a fleet's retries from synchronizing; 0 derives a seed from
	// BaseURL so distinct replicas pointing at one store still spread.
	JitterSeed uint64
	// WrapTransport, when non-nil, wraps the client's HTTP transport —
	// the seam fault-injection harnesses (chaos.Plan.WrapTransport) use
	// to corrupt, delay or fail the wire without touching the server.
	WrapTransport func(http.RoundTripper) http.RoundTripper
	// Logf, when non-nil, receives one line per breaker trip/recovery
	// (e.g. log.Printf). The client is otherwise silent.
	Logf func(format string, args ...any)
}

const (
	defaultRemoteTimeout   = 2 * time.Second
	defaultRemoteRetries   = 2
	defaultRemoteBackoff   = 50 * time.Millisecond
	defaultRemoteMaxConns  = 32
	defaultRemoteThreshold = 5
	defaultRemoteCooldown  = 2 * time.Second
	defaultMaxBlobBytes    = 32 << 20
	statChunkSize          = 1024
)

// Remote is a client-side cache tier backed by a dpmremote server: a
// shared hash-addressed result store that lets a fleet of processes
// deduplicate simulations fleet-wide. It implements Cache with strict
// fail-open semantics — a down, slow or corrupt remote turns Gets into
// misses and Puts into no-ops, never into request failures — so it is
// always safe to layer behind local tiers (see Tiered).
//
// Failure handling: each operation retries transient errors with
// exponential backoff; after FailureThreshold consecutive failed
// operations a breaker trips and the remote is skipped entirely for
// Cooldown, so a dead server costs one connection attempt per cooldown
// window instead of per lookup. A response that fails to decode counts
// as an error and a miss — corrupt remote bytes are never handed to
// callers, so they can never poison a local tier through promotion.
type Remote struct {
	base   string
	client *http.Client

	timeout   time.Duration
	retries   int
	backoff   time.Duration
	threshold int64
	cooldown  time.Duration
	maxBlob   int64
	logf      func(format string, args ...any)

	hits, misses, errors atomic.Int64
	puts, putErrs        atomic.Int64
	skipped, trips       atomic.Int64
	rejected             atomic.Int64 // digest-mismatched bodies dropped
	fails                atomic.Int64 // consecutive op failures
	downUntil            atomic.Int64 // unix nanos the breaker stays open until

	// closed aborts backoff waits when the client is shut down, so a
	// draining process never sits out a full retry schedule against a
	// dead server.
	closed    chan struct{}
	closeOnce sync.Once

	jmu  sync.Mutex
	jrng *rand.Rand // seeded backoff jitter
}

// NewRemote builds a remote cache client for a dpmremote server.
func NewRemote(opts RemoteOptions) (*Remote, error) {
	u, err := url.Parse(opts.BaseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("engine: remote cache: invalid base URL %q", opts.BaseURL)
	}
	if opts.Timeout <= 0 {
		opts.Timeout = defaultRemoteTimeout
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = defaultRemoteRetries
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = defaultRemoteBackoff
	}
	if opts.MaxConns <= 0 {
		opts.MaxConns = defaultRemoteMaxConns
	}
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = defaultRemoteThreshold
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = defaultRemoteCooldown
	}
	if opts.MaxBlobBytes <= 0 {
		opts.MaxBlobBytes = defaultMaxBlobBytes
	}
	var transport http.RoundTripper = &http.Transport{
		MaxConnsPerHost:     opts.MaxConns,
		MaxIdleConnsPerHost: opts.MaxConns,
		IdleConnTimeout:     90 * time.Second,
	}
	if opts.WrapTransport != nil {
		transport = opts.WrapTransport(transport)
	}
	jseed := opts.JitterSeed
	if jseed == 0 {
		jseed = fnvHash(opts.BaseURL)
	}
	return &Remote{
		base:      strings.TrimRight(opts.BaseURL, "/"),
		client:    &http.Client{Transport: transport},
		timeout:   opts.Timeout,
		retries:   opts.Retries,
		backoff:   opts.RetryBackoff,
		threshold: int64(opts.FailureThreshold),
		cooldown:  opts.Cooldown,
		maxBlob:   opts.MaxBlobBytes,
		logf:      opts.Logf,
		closed:    make(chan struct{}),
		jrng:      rand.New(rand.NewSource(int64(jseed))),
	}, nil
}

// fnvHash is FNV-1a over s, for deriving a default jitter seed.
func fnvHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Close shuts the client down: in-progress backoff waits abort, and idle
// pooled connections are released. Operations after Close still work —
// they just stop retrying patiently, which is what a draining process
// wants.
func (c *Remote) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	c.client.CloseIdleConnections()
	return nil
}

// admit reports whether the breaker allows an operation right now.
func (c *Remote) admit() bool {
	return time.Now().UnixNano() >= c.downUntil.Load()
}

// opOK resets the consecutive-failure count after a successful op.
func (c *Remote) opOK() {
	if c.fails.Swap(0) >= c.threshold && c.logf != nil {
		c.logf("remote cache %s: recovered", c.base)
	}
}

// opFailed books one failed op; crossing the threshold trips the
// breaker for a cooldown window.
func (c *Remote) opFailed() {
	if c.fails.Add(1) == c.threshold {
		c.downUntil.Store(time.Now().Add(c.cooldown).UnixNano())
		c.trips.Add(1)
		if c.logf != nil {
			c.logf("remote cache %s: unreachable, skipping for %s", c.base, c.cooldown)
		}
	}
}

// transientStatus reports whether an HTTP status is worth retrying.
func transientStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// retry runs op up to 1+Retries times with exponential backoff, giving
// each attempt its own deadline. op returns (done, err): done stops the
// retry loop regardless of err (e.g. a definitive 404). Backoff waits
// carry ±20% seeded jitter — a fleet of replicas retrying against one
// flapping store must not synchronize into request storms — and abort
// immediately when the client is closed, so drains never sit out the
// full backoff schedule.
func (c *Remote) retry(op func(ctx context.Context) (bool, error)) error {
	var err error
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
		var done bool
		done, err = op(ctx)
		cancel()
		if done || err == nil {
			return err
		}
		if attempt >= c.retries {
			return err
		}
		if !c.backoffWait(c.backoff << attempt) {
			return err
		}
	}
}

// backoffWait sleeps d scaled by a seeded jitter factor in [0.8, 1.2),
// returning false if the client was closed before the wait elapsed.
func (c *Remote) backoffWait(d time.Duration) bool {
	c.jmu.Lock()
	f := 0.8 + 0.4*c.jrng.Float64()
	c.jmu.Unlock()
	t := time.NewTimer(time.Duration(float64(d) * f))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closed:
		return false
	}
}

// Get fetches the record for key from the remote store. Any failure —
// network, server error, oversized or undecodable body — is a miss.
// The fetched bytes are fully verified here (container checksum, body
// decode, content digest) before the record is returned, so a caller
// promoting remote hits into local tiers can never be poisoned by a bad
// server entry or an in-flight byte flip.
func (c *Remote) Get(key string) (*Record, bool) {
	if !validKey(key) {
		c.misses.Add(1)
		return nil, false
	}
	if !c.admit() {
		c.skipped.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	var (
		data     []byte
		digest   string
		ctype    string
		notFound bool
	)
	err := c.retry(func(ctx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+blobPathPrefix+key, nil)
		if err != nil {
			return true, err
		}
		req.Header.Set("Accept", RecordContentType+", application/json")
		resp, err := c.client.Do(req)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			digest = resp.Header.Get(digestHeader)
			ctype = resp.Header.Get("Content-Type")
			data, err = io.ReadAll(io.LimitReader(resp.Body, c.maxBlob+1))
			if err != nil {
				return false, err
			}
			if int64(len(data)) > c.maxBlob {
				return true, fmt.Errorf("blob for %s exceeds %d bytes", key, c.maxBlob)
			}
			return true, nil
		case resp.StatusCode == http.StatusNotFound:
			io.Copy(io.Discard, resp.Body)
			notFound = true
			return true, nil
		default:
			io.Copy(io.Discard, resp.Body)
			err = fmt.Errorf("GET %s: status %d", key, resp.StatusCode)
			return !transientStatus(resp.StatusCode), err
		}
	})
	if err != nil {
		c.opFailed()
		c.errors.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.opOK()
	if notFound {
		c.misses.Add(1)
		return nil, false
	}
	var (
		rec    *Record
		decErr error
	)
	if strings.HasPrefix(ctype, RecordContentType) {
		rec, decErr = DecodeRecord(data)
		if decErr == nil && rec.Key() != key {
			decErr = fmt.Errorf("record keyed %q, want %q", rec.Key(), key)
		}
	} else {
		rec, decErr = RecordFromJSON(key, data)
	}
	if decErr == nil {
		// Decode eagerly: a record must prove its body inflates and
		// unmarshals before it may cross into the local tiers.
		_, decErr = rec.Result()
	}
	if decErr != nil {
		// Corrupt remote bytes: counted, dropped, never returned — so a
		// caller promoting remote hits into local tiers cannot be
		// poisoned by a bad server entry.
		c.errors.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	r, _ := rec.Result()
	if want := ResultDigest(r); (digest != "" && want != digest) || want != rec.Digest() {
		// The body decoded but does not match the digest the peer vouched
		// for (the header on the wire, or the container's own digest
		// field): bytes were flipped in a way that kept the encoding
		// valid. Decode-level checks cannot catch this — the end-to-end
		// digest is what makes "no poisoned result is ever served" a
		// mechanical guarantee rather than a parsing accident.
		c.rejected.Add(1)
		c.errors.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return rec, true
}

// Put stores a record in the remote store, uploading its compressed
// binary container (encoded once per record, shared with the disk
// tier's copy). Failures are counted and swallowed into the returned
// error; callers (Tiered write-behind, the engine) treat a failed Put
// as a lost replication opportunity, not a job failure.
func (c *Remote) Put(key string, rec *Record) error {
	if !validKey(key) {
		return fmt.Errorf("engine: remote cache: invalid key %q", key)
	}
	if !c.admit() {
		c.skipped.Add(1)
		return nil
	}
	data, err := rec.Encode(CodecFlate)
	if err != nil {
		return fmt.Errorf("engine: remote cache: encode record: %w", err)
	}
	c.puts.Add(1)
	err = c.retry(func(ctx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+blobPathPrefix+key, bytes.NewReader(data))
		if err != nil {
			return true, err
		}
		req.Header.Set("Content-Type", RecordContentType)
		// The claimed digest lets the server refuse an upload whose bytes
		// were corrupted in flight instead of storing it for the fleet.
		req.Header.Set(digestHeader, rec.Digest())
		resp, err := c.client.Do(req)
		if err != nil {
			return false, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return true, nil
		}
		err = fmt.Errorf("PUT %s: status %d", key, resp.StatusCode)
		return !transientStatus(resp.StatusCode), err
	})
	if err != nil {
		c.opFailed()
		c.putErrs.Add(1)
		return fmt.Errorf("engine: remote cache: %w", err)
	}
	c.opOK()
	return nil
}

// Stat asks the store which of the keys it holds, batched (one POST per
// statChunkSize keys). It is the plan warm-up primitive: one round-trip
// replaces len(keys) HEADs. Fails open with the error; the result maps
// only present keys to true.
func (c *Remote) Stat(ctx context.Context, keys []string) (map[string]bool, error) {
	if !c.admit() {
		c.skipped.Add(1)
		return nil, fmt.Errorf("engine: remote cache: breaker open")
	}
	present := make(map[string]bool, len(keys))
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > statChunkSize {
			chunk = chunk[:statChunkSize]
		}
		keys = keys[len(chunk):]
		body, err := json.Marshal(statRequest{Keys: chunk})
		if err != nil {
			return nil, err
		}
		reqCtx, cancel := context.WithTimeout(ctx, c.timeout)
		req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, c.base+statPath, bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		if err != nil {
			cancel()
			c.opFailed()
			c.errors.Add(1)
			return nil, fmt.Errorf("engine: remote cache: stat: %w", err)
		}
		var sr statResponse
		err = json.NewDecoder(io.LimitReader(resp.Body, c.maxBlob)).Decode(&sr)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			c.opFailed()
			c.errors.Add(1)
			return nil, fmt.Errorf("engine: remote cache: stat: status %d, %v", resp.StatusCode, err)
		}
		for _, k := range sr.Present {
			present[k] = true
		}
	}
	c.opOK()
	return present, nil
}

// Has probes without fetching (a single HEAD; no retry — it is an
// optimisation, not a correctness path).
func (c *Remote) Has(key string) bool {
	if !validKey(key) || !c.admit() {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.base+blobPathPrefix+key, nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.opFailed()
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.opOK()
	return resp.StatusCode == http.StatusOK
}

// CacheStats reports zero occupancy: the blobs live on the server, and
// a client cannot cheaply know their count. Lookup counters are in
// TierStats.
func (c *Remote) CacheStats() CacheStats { return CacheStats{} }

// BreakerState reports the circuit breaker's current condition: whether
// it is open (skipping the remote), the consecutive-failure count
// feeding it, and — when open — how long until the next probe.
func (c *Remote) BreakerState() (open bool, consecutiveFails int64, retryIn time.Duration) {
	until := c.downUntil.Load()
	now := time.Now().UnixNano()
	if now < until {
		return true, c.fails.Load(), time.Duration(until - now)
	}
	return false, c.fails.Load(), 0
}

// TierStats reports the remote tier's lookup/transport counters plus
// the breaker's state, so an operator reading /statsz can see not just
// that the remote tier went quiet but why and for how long.
func (c *Remote) TierStats() []TierStats {
	open, fails, retryIn := c.BreakerState()
	state := breakerClosed
	if open {
		state = breakerOpen
	}
	return []TierStats{{
		Tier:          TierRemote,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Errors:        c.errors.Load() + c.putErrs.Load(),
		Puts:          c.puts.Load(),
		Rejected:      c.rejected.Load(),
		Breaker:       state,
		BreakerFails:  fails,
		BreakerTrips:  c.trips.Load(),
		BreakerSkips:  c.skipped.Load(),
		BreakerWaitMs: retryIn.Milliseconds(),
	}}
}

// Skipped counts operations the open breaker short-circuited; Trips
// counts how many times the breaker opened.
func (c *Remote) Skipped() int64 { return c.skipped.Load() }

// Trips counts breaker openings.
func (c *Remote) Trips() int64 { return c.trips.Load() }
