package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"time"

	"godpm/internal/soc"
)

// Fork groups — the engine end of the sweep warm-start. Jobs whose
// configurations are identical except for Horizon (and stop conditions,
// which live in RunOptions) simulate the same trajectory up to their
// respective cut points, so the engine batches them into one
// soc.RunForked session: the shared prefix runs once and each member's
// Result is snapshotted at its cut, bit-identical to a solo run (the soc
// fork-equivalence tests pin this). Each member keeps its own cache key,
// so a later solo run of any member is still a hit.

// forkable reports whether a job may join a fork group. Observed jobs run
// solo (a shared session has nowhere to attach per-member observers),
// volatile jobs are not pure functions of their config, NoFastForward is
// a benchmarking knob asking for untouched solo scheduling, and per-tick
// GEM bus polling is rejected by soc.RunForked. Cold-run engines
// (NoCache) never fork: their benchmarks price solo simulations.
func (e *Engine) forkable(job Job) bool {
	if e.cache == nil {
		return false
	}
	if len(job.Options.Observers) > 0 || job.Options.Volatile() || job.Options.NoFastForward {
		return false
	}
	return !(job.Config.UseGEM && job.Config.GEM.BusOccupancyLimit > 0)
}

// forkPrefixKey is the grouping key: the fingerprint of the normalized
// config with Horizon zeroed. Normalized horizons are never zero, so the
// zero marks "any horizon" — two jobs share a prefix key iff their
// configs are identical modulo Horizon, which is exactly when they share
// a trajectory prefix.
func forkPrefixKey(cfg soc.Config) (string, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return "", err
	}
	norm.Horizon = 0
	h := sha256.New()
	io.WriteString(h, fingerprintVersion)
	io.WriteString(h, "|forkprefix")
	writeConfig(h, &norm)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// workUnit is one dispatchable unit of a plan: a single job, or a fork
// group that one worker runs as a shared session.
type workUnit struct {
	indices []int // plan positions; len > 1 means a fork group
}

// planUnits partitions the plan into work units, preserving plan order by
// first occurrence. Unforkable jobs (and jobs whose prefix key cannot be
// computed — their runJob will surface the error) become solo units;
// forkable jobs sharing a prefix key collapse into one group unit.
func (e *Engine) planUnits(plan Plan) []workUnit {
	// A group needs at least two forkable jobs; below that, skip the
	// prefix-key hashing entirely — it keeps the single-job serving path
	// (a cache hit plus nothing else) free of per-request config copies.
	nForkable := 0
	for _, job := range plan.Jobs {
		if e.forkable(job) {
			nForkable++
		}
	}
	if nForkable < 2 {
		units := make([]workUnit, len(plan.Jobs))
		for i := range plan.Jobs {
			units[i] = workUnit{indices: []int{i}}
		}
		return units
	}

	var units []workUnit
	slot := make(map[string]int)
	for i, job := range plan.Jobs {
		key := ""
		if e.forkable(job) {
			if k, err := forkPrefixKey(job.Config); err == nil {
				key = k
			}
		}
		if key == "" {
			units = append(units, workUnit{indices: []int{i}})
			continue
		}
		if u, ok := slot[key]; ok {
			units[u].indices = append(units[u].indices, i)
			continue
		}
		slot[key] = len(units)
		units = append(units, workUnit{indices: []int{i}})
	}
	return units
}

// runGroup executes one fork group: members already cached are served as
// ordinary hits, members led elsewhere (a concurrent identical job holds
// the flight) fall back to the solo path, and everything else runs as ONE
// shared soc.RunForked session whose per-member snapshots are stored
// under the members' individual cache keys. Results land in out at each
// member's plan position.
func (e *Engine) runGroup(ctx context.Context, jobs []Job, indices []int, out []JobResult) {
	type liveMember struct {
		i      int
		key    string
		flight *flight
	}
	var live []liveMember
	var fallback []int
	for _, i := range indices {
		job := jobs[i]
		if err := ctx.Err(); err != nil {
			e.canceled.Add(1)
			out[i] = JobResult{Job: job, Err: err}
			continue
		}
		key, err := jobKey(job)
		if err != nil {
			e.errs.Add(1)
			out[i] = JobResult{Job: job, Err: err}
			continue
		}
		out[i] = JobResult{Job: job, Key: key}
		// Same probe protocol as runJob: a cheap local-tier look first, a
		// full (remote-included) probe only for flight leaders — a group
		// of N members then costs at most N remote round-trips, exactly
		// like N solo leaders, not N per-member probes.
		if rec, ok := e.probe(key, true); ok {
			if r, derr := rec.Result(); derr == nil {
				e.hits.Add(1)
				out[i].Result, out[i].Record, out[i].CacheHit = r, rec, true
				continue
			}
		}
		f, leader := e.flights.join(key)
		if !leader {
			fallback = append(fallback, i)
			continue
		}
		if rec, ok := e.probe(key, false); ok {
			if r, derr := rec.Result(); derr == nil {
				e.flights.finish(key, f, r, rec, nil)
				e.hits.Add(1)
				out[i].Result, out[i].Record, out[i].CacheHit = r, rec, true
				continue
			}
		}
		live = append(live, liveMember{i: i, key: key, flight: f})
	}

	if len(live) > 0 {
		members := make([]soc.ForkMember, len(live))
		for j, m := range live {
			members[j] = soc.ForkMember{
				Horizon:  jobs[m.i].Config.Horizon,
				StopWhen: jobs[m.i].Options.StopWhen,
			}
		}
		e.misses.Add(int64(len(live)))
		e.runs.Add(1)
		t0 := time.Now()
		rs, err := soc.RunForked(ctx, jobs[live[0].i].Config, members)
		e.runLat.RecordDuration(time.Since(t0))
		if err != nil {
			for _, m := range live {
				e.countFailure(err)
				e.flights.finish(m.key, m.flight, nil, nil, err)
				out[m.i].Err = err
			}
		} else {
			e.forked.Add(int64(len(live) - 1))
			for j, m := range live {
				r := rs[j]
				var rec *Record
				if rec, _ = NewRecord(m.key, r); rec != nil {
					_ = e.cache.Put(m.key, rec)
				}
				e.flights.finish(m.key, m.flight, r, rec, nil)
				out[m.i].Result, out[m.i].Record = r, rec
			}
		}
	}

	// Members whose flight is led by a concurrent identical job take the
	// ordinary path: wait on that flight, or hit whatever the cache holds
	// by now.
	for _, i := range fallback {
		out[i] = e.runJob(ctx, jobs[i])
	}
}
