package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"godpm/internal/soc"
	"godpm/internal/workload"
)

// fingerprintVersion is folded into every key so a change to the encoding
// (or to the meaning of a config field) invalidates old cache entries.
// Bump it whenever soc.Config grows a result-affecting field, or when
// soc.Result grows a field (stale disk entries would otherwise deserialise
// with the zero value and masquerade as computed results).
//
// v3: soc.Config lost its TraceVCD/TraceCSV writer fields (instrumentation
// moved to observers, which never affect the Result) and soc.Result gained
// StopReason.
//
// v4: soc.IPSpec gained Gen (a workload generator spec materialized during
// normalization). The spec's parameters are folded into the key alongside
// the expanded workload.
const fingerprintVersion = "godpm-config-v4"

// Fingerprint returns the canonical content hash of a simulation
// configuration, usable as a cache key: two configs hash equally iff they
// describe the same simulation. The config is normalized first, so a field
// left zero and the same field set to its documented default are the same
// key. Config is pure value data — every field affects the Result, so all
// of them are hashed.
func Fingerprint(cfg soc.Config) (string, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	io.WriteString(h, fingerprintVersion)
	writeConfig(h, &norm)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// jobKey is the cache key of one job: the config fingerprint, extended
// with the stop conditions' Reason strings when the job carries any —
// stopping early changes the Result, so `A1` and `A1 until battery death`
// must never share a cache slot. Observers are deliberately excluded: they
// do not affect the Result.
func jobKey(job Job) (string, error) {
	key, err := Fingerprint(job.Config)
	if err != nil || len(job.Options.StopWhen) == 0 {
		return key, err
	}
	h := sha256.New()
	io.WriteString(h, fingerprintVersion)
	field(h, "base", key)
	field(h, "nstops", len(job.Options.StopWhen))
	for _, c := range job.Options.StopWhen {
		field(h, "stop", c.Reason)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// writeConfig streams a deterministic encoding of every result-affecting
// field. All leaf types reached here are value types (scalars, arrays,
// structs of scalars), so fmt's rendering is stable across runs and
// worker counts.
func writeConfig(w io.Writer, c *soc.Config) {
	field(w, "policy", c.Policy)
	field(w, "usegem", c.UseGEM)
	field(w, "gem", c.GEM)
	field(w, "battery", c.Battery)
	field(w, "thermal", c.Thermal)
	field(w, "initialtempc", c.InitialTempC)
	field(w, "periptherm", c.PerIPThermal)
	field(w, "thermalnet", c.ThermalNetwork)
	field(w, "bus", c.Bus)
	field(w, "buswords", c.BusWords)
	field(w, "timeout", c.Timeout)
	field(w, "timeoutsleep", int(c.TimeoutSleepState))
	field(w, "greedysleep", int(c.GreedySleepState))
	field(w, "sample", c.SampleInterval)
	field(w, "horizon", c.Horizon)
	field(w, "baseclock", c.BaseClockHz)
	if c.Regulator != nil {
		field(w, "regulator", *c.Regulator)
	}

	field(w, "lem.predictor", c.LEM.Predictor)
	field(w, "lem.alpha", c.LEM.Alpha)
	field(w, "lem.nobreakeven", c.LEM.DisableBreakEven)
	field(w, "lem.softoff", c.LEM.AllowSoftOff)
	if c.LEM.Table != nil {
		// Format renders every rule row plus the default state; the table
		// has no other behaviour-bearing state.
		field(w, "lem.table", c.LEM.Table.Format())
	}

	field(w, "nips", len(c.IPs))
	for i := range c.IPs {
		spec := &c.IPs[i]
		field(w, "ip.name", spec.Name)
		field(w, "ip.prio", spec.StaticPriority)
		field(w, "ip.init", int(spec.InitialState))
		field(w, "ip.profile", *spec.Profile)
		if spec.Gen.Kind != workload.GenNone {
			// The generator spec is pure value data (scalars, weight
			// arrays, an inline trace of value structs), so %+v renders it
			// deterministically. The materialized Sequence/Arrivals below
			// are derived from it, but hashing both keeps the key honest
			// if a generator's algorithm ever changes under fixed
			// parameters.
			field(w, "ip.gen", spec.Gen)
		}
		field(w, "ip.nseq", len(spec.Sequence))
		for _, it := range spec.Sequence {
			field(w, "s", it)
		}
		field(w, "ip.narr", len(spec.Arrivals))
		for _, a := range spec.Arrivals {
			field(w, "a", a)
		}
	}
}

// field writes one labelled value. The label prevents adjacent fields from
// aliasing ("ab"+"c" vs "a"+"bc").
func field(w io.Writer, name string, v any) {
	fmt.Fprintf(w, "|%s=%+v", name, v)
}

// ResultDigest hashes the deterministic content of a Result: everything
// the simulation computed, excluding host-timing fields (WallSeconds).
// Two runs of configs with equal Fingerprints must produce equal digests
// regardless of worker count, host load or cache state — the engine's
// determinism tests are phrased in terms of this digest.
func ResultDigest(r *soc.Result) string {
	h := sha256.New()
	io.WriteString(h, "godpm-result-v3")
	field(h, "energy", r.EnergyJ)
	field(h, "deltas", r.Deltas)
	field(h, "stopreason", r.StopReason)
	writeFloatMap(h, "energyby", r.EnergyByIP)
	field(h, "busenergy", r.BusEnergyJ)
	field(h, "avgtemp", r.AvgTempC)
	field(h, "peaktemp", r.PeakTempC)
	field(h, "ambient", r.AmbientC)
	field(h, "duration", r.Duration)
	field(h, "completed", r.Completed)
	field(h, "tasks", r.TasksDone)
	field(h, "cycles", r.Cycles)
	field(h, "soc", r.FinalSoC)
	field(h, "batt", int(r.FinalBatteryStatus))
	field(h, "gemev", r.GEMEvaluations)
	field(h, "fan", r.FanSwitches)
	field(h, "busocc", r.BusOccupancy)
	if r.Ledger != nil {
		field(h, "nledger", r.Ledger.Len())
		for _, rec := range r.Ledger.Records() {
			field(h, "l", rec)
		}
	}
	names := make([]string, 0, len(r.LEMStats))
	for name := range r.LEMStats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.LEMStats[name]
		writeIntMap(h, name+".on", s.OnDecisions)
		writeIntMap(h, name+".sleep", s.SleepEntries)
		field(h, name+".park", s.ParkEvents)
		field(h, name+".parked", s.ParkedTime)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeFloatMap(w io.Writer, name string, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		field(w, name+"."+k, m[k])
	}
}

func writeIntMap(w io.Writer, name string, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		field(w, name+"."+k, m[k])
	}
}
