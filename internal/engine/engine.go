// Package engine executes batches of SoC simulations concurrently: it
// shards a Plan of soc.Config jobs across a bounded worker pool, runs each
// job on its own discrete-event kernel (soc.Run is single-goroutine and
// deterministic, so parallelism across jobs is free), and aggregates the
// results order-stably — the result slice is index-aligned with the plan
// no matter which worker finished first.
//
// Every job is content-addressed: Fingerprint hashes the normalized
// soc.Config, and a Cache (a sharded bounded LRU in memory, or layered
// over a directory of binary record containers) short-circuits jobs
// whose fingerprint has already been computed. Concurrent jobs with the same fingerprint
// additionally collapse to one simulation (singleflight): the waiters are
// served the winner's result as cache hits. Repeated invocations of the
// same experiment grid — the paper's Table 2 scenarios, ablation sweeps,
// seed-replication fan-outs — therefore cost one simulation per distinct
// configuration, ever, when a disk cache is shared between runs.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"godpm/internal/soc"
	"godpm/internal/stats"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the worker pool; 0 means runtime.NumCPU().
	Workers int
	// Cache stores results by fingerprint; nil means a fresh in-memory
	// cache (use NewDisk to persist across processes).
	Cache Cache
	// NoCache disables caching entirely (every job simulates), used by
	// benchmarks that need cold runs. It takes precedence over Cache.
	NoCache bool
	// OnStart, when non-nil, observes every job as a worker picks it up.
	// Calls are serialised with OnResult; the index is the job's plan
	// position. Together they let a CLI stream live grid progress.
	OnStart func(i int, job Job)
	// OnResult, when non-nil, observes every finished job in completion
	// order. Calls are serialised; the index is the job's plan position.
	OnResult func(i int, jr JobResult)
}

// JobResult is the outcome of one job.
type JobResult struct {
	Job Job
	// Key is the config fingerprint ("" when fingerprinting failed).
	Key string
	// Result is nil iff Err is non-nil. Cached results are shared across
	// jobs and invocations — treat them as immutable.
	Result *soc.Result
	// Record carries Result's cache record — the pre-encoded canonical
	// bytes plus cached content digest — when the job went through the
	// cache (hit or stored miss). Serving layers write Record bytes
	// instead of re-marshalling Result. Nil for uncached (volatile or
	// NoCache) jobs and failures; shared and immutable like Result.
	Record *Record
	Err    error
	// CacheHit reports that Result came from the cache.
	CacheHit bool
}

// Stats are the engine's cumulative counters.
type Stats struct {
	// Hits and Misses count cache lookups; Runs counts simulations
	// actually executed (== Misses unless caching is disabled); Errors
	// counts failed jobs. Jobs served by waiting on a concurrent
	// identical simulation (singleflight) count as Hits.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Runs   int64 `json:"runs"`
	Errors int64 `json:"errors"`
	// Canceled counts jobs abandoned or aborted by context cancellation —
	// kept apart from Errors so progress reporting and /statsz don't
	// present cancellations as failures.
	Canceled int64 `json:"canceled"`
	// Deduped counts the singleflight waiters: jobs served the result of
	// a concurrent identical simulation without probing the cache. They
	// are included in Hits.
	Deduped int64 `json:"deduped"`
	// Forked counts the simulations avoided by fork groups (sweep
	// warm-start): jobs served from a shared soc.RunForked session beyond
	// the first member. They are included in Misses but not in Runs, so
	// Runs == Misses - Forked when caching is enabled.
	Forked int64 `json:"forked"`
	// Evictions, CacheEntries and CacheBytes mirror the cache's counters
	// when the configured cache reports them (see StatsReporter); zero
	// otherwise.
	Evictions    int64 `json:"evictions"`
	CacheEntries int64 `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	// Tiers splits the cache counters per tier (memory/disk/remote hits
	// and misses) when the cache reports them (see TierStatsReporter);
	// nil otherwise. This is how fleet-wide dedup is observed rather
	// than inferred: remote-tier hits are simulations another process
	// ran.
	Tiers []TierStats `json:"tiers,omitempty"`
	// RunLatency is the wall-clock distribution of executed simulations
	// (cache hits excluded — they are the serving layer's latency, not
	// the engine's), as a mergeable sketch plus headline quantiles; nil
	// until the first simulation completes.
	RunLatency *stats.Latency `json:"run_latency,omitempty"`
}

// Engine runs plans. It is safe for concurrent use; counters and cache
// accumulate across Run calls, which is what makes a second invocation of
// the same plan observably cache-served.
type Engine struct {
	workers  int
	cache    Cache
	flights  flightGroup
	onStart  func(i int, job Job)
	onResult func(i int, jr JobResult)
	cbMu     sync.Mutex

	hits, misses, runs, errs, canceled, deduped, forked atomic.Int64
	runLat                                              stats.Histogram
}

// New builds an engine.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	c := opts.Cache
	if opts.NoCache {
		c = nil
	} else if c == nil {
		c = NewLRU(LRUOptions{})
	}
	return &Engine{workers: w, cache: c, onStart: opts.OnStart, onResult: opts.OnResult}
}

// Workers returns the pool bound.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the cumulative counters, including the
// cache's occupancy and eviction counters when the cache reports them.
func (e *Engine) Stats() Stats {
	st := Stats{
		Hits:     e.hits.Load(),
		Misses:   e.misses.Load(),
		Runs:     e.runs.Load(),
		Errors:   e.errs.Load(),
		Canceled: e.canceled.Load(),
		Deduped:  e.deduped.Load(),
		Forked:   e.forked.Load(),
	}
	if r, ok := e.cache.(StatsReporter); ok {
		cs := r.CacheStats()
		st.Evictions = cs.Evictions
		st.CacheEntries = cs.Entries
		st.CacheBytes = cs.Bytes
	}
	if r, ok := e.cache.(TierStatsReporter); ok {
		st.Tiers = r.TierStats()
	}
	if snap := e.runLat.Snapshot(); snap.Count > 0 {
		l := stats.LatencyOf(snap)
		st.RunLatency = &l
	}
	return st
}

// simulate runs the job's simulation, recording its wall-clock cost in
// the run-latency sketch.
func (e *Engine) simulate(ctx context.Context, job Job) (*soc.Result, error) {
	t0 := time.Now()
	r, err := soc.RunWith(ctx, job.Config, job.Options)
	e.runLat.RecordDuration(time.Since(t0))
	return r, err
}

// Run executes every job of the plan and returns the results index-aligned
// with plan.Jobs. It always returns a full-length slice; jobs that failed
// (or were abandoned on cancellation) carry their error in their slot, and
// the joined error of all failed jobs — including ctx.Err() if the context
// ended the run early — is returned alongside.
//
// Cancellation is sample-granular: in-flight simulations poll ctx at every
// sample tick and abort with ctx.Err(); queued jobs are abandoned with
// ctx.Err() without starting.
//
// Jobs whose configs differ only in Horizon (or stop conditions) are
// batched into fork groups and run as one shared soc.RunForked session —
// the common trajectory prefix simulates once; see fork.go. Each member
// still gets its own cache entry and its Result is bit-identical to a
// solo run's.
func (e *Engine) Run(ctx context.Context, plan Plan) ([]JobResult, error) {
	return e.RunObserved(ctx, plan, nil)
}

// RunObserved is Run with a per-invocation result observer: onResult
// (when non-nil) sees every finished job in completion order, serialised
// with the engine-wide Options callbacks. It exists for callers that
// stream progress of one plan (e.g. tournament progress reporting) on a
// shared long-lived engine.
func (e *Engine) RunObserved(ctx context.Context, plan Plan, onResult func(i int, jr JobResult)) ([]JobResult, error) {
	n := len(plan.Jobs)
	results := make([]JobResult, n)
	e.warm(ctx, plan)
	units := e.planUnits(plan)

	workers := e.workers
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}

	notify := func(i int, jr JobResult) {
		if e.onResult == nil && onResult == nil {
			return
		}
		e.cbMu.Lock()
		if e.onResult != nil {
			e.onResult(i, jr)
		}
		if onResult != nil {
			onResult(i, jr)
		}
		e.cbMu.Unlock()
	}

	uidx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range uidx {
				unit := units[u]
				if e.onStart != nil {
					e.cbMu.Lock()
					for _, i := range unit.indices {
						e.onStart(i, plan.Jobs[i])
					}
					e.cbMu.Unlock()
				}
				if len(unit.indices) == 1 {
					i := unit.indices[0]
					jr := e.runJob(ctx, plan.Jobs[i])
					results[i] = jr
					notify(i, jr)
					continue
				}
				e.runGroup(ctx, plan.Jobs, unit.indices, results)
				for _, i := range unit.indices {
					notify(i, results[i])
				}
			}
		}()
	}
feed:
	for u := 0; u < len(units); u++ {
		select {
		case uidx <- u:
		case <-ctx.Done():
			// Mark everything not yet handed to a worker as abandoned.
			// Abandonment is cancellation, not failure.
			for j := u; j < len(units); j++ {
				for _, i := range units[j].indices {
					results[i] = JobResult{Job: plan.Jobs[i], Err: ctx.Err()}
					e.canceled.Add(1)
				}
			}
			break feed
		}
	}
	close(uidx)
	wg.Wait()

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("engine: job %s: %w", results[i].Job.ID, results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// warm pre-populates a Warmer cache (a Tiered one with a remote tier)
// with the plan's distinct fingerprints before dispatch: one batched
// stat against the shared store replaces per-job remote round-trips,
// and every entry the fleet already computed arrives in the local tiers
// before a worker would have simulated it. Single-job plans skip it —
// the per-job Get covers them.
func (e *Engine) warm(ctx context.Context, plan Plan) {
	if len(plan.Jobs) < 2 || e.cache == nil {
		return
	}
	w, ok := e.cache.(Warmer)
	if !ok {
		return
	}
	seen := make(map[string]struct{}, len(plan.Jobs))
	keys := make([]string, 0, len(plan.Jobs))
	for _, job := range plan.Jobs {
		if job.Options.Volatile() {
			continue
		}
		k, err := jobKey(job)
		if err != nil {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	if len(keys) > 0 {
		w.Warm(ctx, keys)
	}
}

// runJob executes one job: fingerprint, cache probe, singleflight join,
// simulate, store. Concurrent jobs with the same key collapse to one
// simulation — the waiters are served the winner's result as cache hits,
// so a stampede of identical jobs costs one run and never double-counts
// Misses.
func (e *Engine) runJob(ctx context.Context, job Job) JobResult {
	if err := ctx.Err(); err != nil {
		e.canceled.Add(1)
		return JobResult{Job: job, Err: err}
	}
	jr := JobResult{Job: job}
	var err error
	jr.Key, err = jobKey(job)
	if err != nil {
		e.errs.Add(1)
		jr.Err = err
		return jr
	}
	// Observers are pure instrumentation (an observed run's Result is
	// bit-identical to a bare run), so they never block caching — though a
	// cache-served job does not simulate and its observers see nothing.
	// Stop conditions are part of the key; only Volatile (host-timing)
	// conditions make a job uncacheable. Uncacheable jobs also skip
	// dedup: NoCache benchmarks want cold runs, and volatile jobs are
	// not interchangeable.
	if e.cache == nil || job.Options.Volatile() {
		e.runs.Add(1)
		jr.Result, jr.Err = e.simulate(ctx, job)
		if jr.Err != nil {
			e.countFailure(jr.Err)
		}
		return jr
	}
	for {
		// The pre-flight probe skips expensive remote tiers when the cache
		// distinguishes them: a stampede of identical jobs then costs one
		// network round-trip (the flight leader's full probe below), not
		// one per job. A record that fails to decode — corrupt bytes that
		// survived the container checksum — is NOT a hit: fall through to
		// the flight, whose leader re-simulates and overwrites the entry.
		if rec, ok := e.probe(jr.Key, true); ok {
			if r, derr := rec.Result(); derr == nil {
				e.hits.Add(1)
				jr.Result, jr.Record, jr.CacheHit = r, rec, true
				return jr
			}
		}
		f, leader := e.flights.join(jr.Key)
		if !leader {
			select {
			case <-f.done:
				if f.err != nil {
					if isCancellation(f.err) && ctx.Err() == nil {
						// The winner's context died, not the work — retake
						// the flight (or hit the cache, if a sibling won).
						continue
					}
					e.countFailure(f.err)
					jr.Err = f.err
					return jr
				}
				e.hits.Add(1)
				e.deduped.Add(1)
				jr.Result, jr.Record, jr.CacheHit = f.r, f.rec, true
				return jr
			case <-ctx.Done():
				e.canceled.Add(1)
				jr.Err = ctx.Err()
				return jr
			}
		}
		// Leader. A sibling may have populated the cache between our miss
		// and the join; re-probe — this time through every tier, remote
		// included — before paying for a simulation. An undecodable record
		// is treated as a miss, so the simulation below heals the slot.
		if rec, ok := e.probe(jr.Key, false); ok {
			if r, derr := rec.Result(); derr == nil {
				e.flights.finish(jr.Key, f, r, rec, nil)
				e.hits.Add(1)
				jr.Result, jr.Record, jr.CacheHit = r, rec, true
				return jr
			}
		}
		e.misses.Add(1)
		e.runs.Add(1)
		r, runErr := e.simulate(ctx, job)
		var rec *Record
		if runErr == nil {
			// Build the record (the one marshal this result will ever pay)
			// and Put before finish: retired flights send latecomers to the
			// cache, so it must already hold the result. A cache-write
			// failure degrades caching, not correctness.
			if rec, _ = NewRecord(jr.Key, r); rec != nil {
				_ = e.cache.Put(jr.Key, rec)
			}
		} else {
			e.countFailure(runErr)
		}
		e.flights.finish(jr.Key, f, r, rec, runErr)
		jr.Result, jr.Record, jr.Err = r, rec, runErr
		return jr
	}
}

// probe looks the key up in the cache; localOnly restricts the lookup
// to the cheap local tiers when the cache can tell them apart.
func (e *Engine) probe(key string, localOnly bool) (*Record, bool) {
	if localOnly {
		if lp, ok := e.cache.(localProber); ok {
			return lp.GetLocal(key)
		}
	}
	return e.cache.Get(key)
}

// countFailure books a failed job under Canceled or Errors.
func (e *Engine) countFailure(err error) {
	if isCancellation(err) {
		e.canceled.Add(1)
	} else {
		e.errs.Add(1)
	}
}

// isCancellation reports whether err is a context cancellation rather
// than a simulation failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
