// Package chaos is a deterministic, seed-driven fault-injection layer
// for the engine's cache fleet. A Plan is a pure value derived from a
// workload.Seed — reproducible and hashable exactly like a workload
// Spec — that schedules faults per operation class: injected latency,
// transient and permanent errors, corrupt payloads, torn writes and
// crash points. It is applied through three seams:
//
//   - Tier wraps any engine.Cache (faults become misses and Put errors),
//   - RoundTripper wraps engine.Remote's HTTP transport (faults become
//     network errors, error statuses, corrupt or truncated bodies),
//   - FaultFS wraps the engine.FS seam the Disk cache writes through
//     (faults become torn writes and failed syncs/renames); CrashFS is
//     the companion page-cache model for crash-point recovery sweeps.
//
// Determinism is the point: the decision for the k-th operation of a
// class is a pure function of (seed, spec, k), independent of goroutine
// interleaving, so a failing chaos run is re-runnable from its seed and
// an invariant suite can assert contracts hold under the exact same
// fault schedule every time.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"godpm/internal/engine"
	"godpm/internal/workload"
)

// ErrInjected marks every error the chaos layer fabricates, so tests and
// logs can tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// ErrCrashed is returned by every CrashFS operation at and after its
// crash point: the simulated machine has lost power.
var ErrCrashed = errors.New("chaos: crashed")

// Fault is one scheduled fault kind.
type Fault int

const (
	// FaultNone leaves the operation untouched (latency may still apply).
	FaultNone Fault = iota
	// FaultTransient fails the operation with a retryable error.
	FaultTransient
	// FaultPermanent fails the operation definitively (a 4xx on the
	// wire; a plain error elsewhere).
	FaultPermanent
	// FaultCorrupt flips a byte of the payload where the seam carries
	// bytes; at value-level seams it degrades to FaultTransient, because
	// a wrapper handing out decoded values cannot corrupt one without
	// poisoning callers by construction.
	FaultCorrupt
	// FaultTorn truncates the payload (a partial write or response).
	FaultTorn
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultCorrupt:
		return "corrupt"
	case FaultTorn:
		return "torn"
	}
	return "unknown"
}

// Decision is the fault schedule's verdict for one operation.
type Decision struct {
	Fault   Fault
	Latency time.Duration
	// Frac positions payload faults: the corrupted byte (or tear point)
	// sits at Frac of the payload length. In [0, 1).
	Frac float64
}

// Spec sets one seam's fault probabilities. The zero value injects
// nothing. Probabilities are per operation and drawn independently;
// fault kinds are mutually exclusive per op (cumulative draw in the
// order transient, permanent, corrupt, torn).
type Spec struct {
	// PLatency is the probability an op is delayed; the delay is uniform
	// in (0, MaxLatency].
	PLatency   float64       `json:"p_latency,omitempty"`
	MaxLatency time.Duration `json:"max_latency,omitempty"`
	// PTransient / PPermanent / PCorrupt / PTorn select the fault kinds.
	PTransient float64 `json:"p_transient,omitempty"`
	PPermanent float64 `json:"p_permanent,omitempty"`
	PCorrupt   float64 `json:"p_corrupt,omitempty"`
	PTorn      float64 `json:"p_torn,omitempty"`
	// OutageStart/OutageLen schedule a deterministic total outage: ops
	// with index in [OutageStart, OutageStart+OutageLen) all fail
	// transiently regardless of the probability draws. This is what
	// makes breaker trips testable rather than probabilistic. OutageLen
	// 0 means no outage.
	OutageStart int `json:"outage_start,omitempty"`
	OutageLen   int `json:"outage_len,omitempty"`
}

// enabled reports whether the spec can ever inject anything.
func (s Spec) enabled() bool {
	return s.PLatency > 0 || s.PTransient > 0 || s.PPermanent > 0 ||
		s.PCorrupt > 0 || s.PTorn > 0 || s.OutageLen > 0
}

// Plan is a complete seeded fault schedule for a process: one Spec per
// seam, all derived decisions rooted at Seed. It is a pure value — two
// equal Plans inject bit-identical schedules — and hashes like a
// workload Spec, so a chaos run is citable by a short string.
type Plan struct {
	Seed      workload.Seed `json:"seed"`
	Tier      Spec          `json:"tier"`
	Transport Spec          `json:"transport"`
	FS        Spec          `json:"fs"`
}

// DefaultPlan is the stock schedule the -chaos-seed flags apply: enough
// latency, flapping, corruption and torn writes to exercise every
// fail-open path, plus a deterministic transport outage long enough to
// trip the default breaker, while staying sparse enough that a loadgen
// run completes with zero client-visible failures.
func DefaultPlan(seed workload.Seed) Plan {
	return Plan{
		Seed: seed,
		Tier: Spec{
			PLatency: 0.05, MaxLatency: 2 * time.Millisecond,
			PTransient: 0.02,
		},
		Transport: Spec{
			PLatency: 0.10, MaxLatency: 5 * time.Millisecond,
			PTransient: 0.05, PPermanent: 0.01,
			PCorrupt: 0.05, PTorn: 0.02,
			OutageStart: 40, OutageLen: 12,
		},
		FS: Spec{
			PTransient: 0.02, PTorn: 0.02,
		},
	}
}

// Hash is the plan's content fingerprint (SHA-256 over the canonical
// JSON encoding) — the reproduction handle logged by the serving
// commands and recorded by CI.
func (p Plan) Hash() string {
	data, err := json.Marshal(p)
	if err != nil {
		// Plan is plain scalars; Marshal cannot fail. Keep the signature
		// ergonomic for logging.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// WrapCache applies the plan's Tier spec to a cache.
func (p Plan) WrapCache(inner engine.Cache) *Tier {
	return NewTier(inner, p.Seed.Split("tier"), p.Tier)
}

// WrapTransport applies the plan's Transport spec to an HTTP transport
// (the shape engine.RemoteOptions.WrapTransport wants).
func (p Plan) WrapTransport(inner http.RoundTripper) http.RoundTripper {
	return NewRoundTripper(inner, p.Seed.Split("transport"), p.Transport)
}

// WrapFS applies the plan's FS spec to a filesystem seam (the shape
// engine.DiskOptions.FS wants).
func (p Plan) WrapFS(inner engine.FS) *FaultFS {
	return NewFaultFS(inner, p.Seed.Split("fs"), p.FS)
}

// InjectorStats count what one injector actually did.
type InjectorStats struct {
	Ops        int64 `json:"ops"`
	Delayed    int64 `json:"delayed,omitempty"`
	Transients int64 `json:"transients,omitempty"`
	Permanents int64 `json:"permanents,omitempty"`
	Corrupts   int64 `json:"corrupts,omitempty"`
	Torn       int64 `json:"torn,omitempty"`
	// Outage counts ops failed by the deterministic outage window
	// (included in Transients).
	Outage int64 `json:"outage,omitempty"`
}

// Injector turns a (seed, Spec) pair into a deterministic per-operation
// fault schedule. The decision for the k-th Next call is a pure function
// of (seed, spec, k): each op draws from its own split of the seed, so
// schedules do not depend on which goroutine asks first — only on the
// order ops are admitted, which the caller's seam serialises. Safe for
// concurrent use.
type Injector struct {
	seed workload.Seed
	spec Spec

	mu    sync.Mutex
	n     int
	stats InjectorStats
}

// NewInjector builds an injector for one seam.
func NewInjector(seed workload.Seed, spec Spec) *Injector {
	return &Injector{seed: seed, spec: spec}
}

// Next admits one operation and returns its scheduled decision.
func (in *Injector) Next() Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	k := in.n
	in.n++
	in.stats.Ops++
	d := decide(in.seed, in.spec, k)
	switch d.Fault {
	case FaultTransient:
		in.stats.Transients++
		if inOutage(in.spec, k) {
			in.stats.Outage++
		}
	case FaultPermanent:
		in.stats.Permanents++
	case FaultCorrupt:
		in.stats.Corrupts++
	case FaultTorn:
		in.stats.Torn++
	}
	if d.Latency > 0 {
		in.stats.Delayed++
	}
	return d
}

// Stats snapshots the injector's counters.
func (in *Injector) Stats() InjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Ops reports how many operations the injector has admitted.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

func inOutage(spec Spec, k int) bool {
	return spec.OutageLen > 0 && k >= spec.OutageStart && k < spec.OutageStart+spec.OutageLen
}

// decide computes op k's decision: a pure function of its inputs. The
// draw order (latency, fault, frac) is fixed — part of the schedule's
// definition, so reordering it would silently change every seeded run.
func decide(seed workload.Seed, spec Spec, k int) Decision {
	rng := seed.SplitN(k).RNG()
	var d Decision
	if u := rng.Float64(); spec.PLatency > 0 && u < spec.PLatency {
		d.Latency = time.Duration(rng.Float64() * float64(spec.MaxLatency))
		if d.Latency <= 0 {
			d.Latency = 1
		}
	} else {
		// Burn the latency-magnitude draw so the fault draw's position in
		// the stream does not depend on whether latency fired.
		_ = rng.Float64()
	}
	u := rng.Float64()
	switch {
	case inOutage(spec, k):
		d.Fault = FaultTransient
	case u < spec.PTransient:
		d.Fault = FaultTransient
	case u < spec.PTransient+spec.PPermanent:
		d.Fault = FaultPermanent
	case u < spec.PTransient+spec.PPermanent+spec.PCorrupt:
		d.Fault = FaultCorrupt
	case u < spec.PTransient+spec.PPermanent+spec.PCorrupt+spec.PTorn:
		d.Fault = FaultTorn
	}
	d.Frac = rng.Float64()
	return d
}
