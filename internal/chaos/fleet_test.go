package chaos

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"godpm/internal/engine"
	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/task"
	"godpm/internal/workload"
)

// fleetConfig builds a quick single-IP simulation, cheap enough to fan
// out under -race (mirrors the engine tests' testConfig).
func fleetConfig(seed int64, policy soc.PolicyKind) soc.Config {
	p := workload.HighActivity(seed, 8)
	p.PriorityWeights = [task.NumPriorities]float64{1, 2, 2, 1}
	return soc.Config{
		IPs:      []soc.IPSpec{{Name: "ip0", Sequence: p.MustGenerate()}},
		Policy:   policy,
		Battery:  soc.DefaultBattery(0.95),
		BusWords: 16,
		Horizon:  60 * sim.Sec,
	}
}

func fleetPlan() engine.Plan {
	var p engine.Plan
	for seed := int64(1); seed <= 8; seed++ {
		p.AddFan("dpm", []int64{seed}, func(s int64) soc.Config {
			return fleetConfig(s, soc.PolicyDPM)
		})
		p.AddFan("base", []int64{seed}, func(s int64) soc.Config {
			return fleetConfig(s, soc.PolicyAlwaysOn)
		})
	}
	return p
}

// fleetChaosPlan is the suite's schedule: latency, flapping, wire
// corruption, truncation, filesystem faults, and a deterministic
// transport outage wide enough to trip a threshold-3 breaker with
// retries disabled.
func fleetChaosPlan(seed workload.Seed) Plan {
	return Plan{
		Seed: seed,
		Tier: Spec{
			PLatency: 0.05, MaxLatency: 200 * time.Microsecond,
			PTransient: 0.05,
		},
		Transport: Spec{
			PLatency: 0.05, MaxLatency: time.Millisecond,
			PTransient: 0.06, PCorrupt: 0.05, PTorn: 0.03,
			OutageStart: 30, OutageLen: 12,
		},
		FS: Spec{
			PTransient: 0.03, PTorn: 0.03,
		},
	}
}

// TestFleetInvariantsUnderChaos runs a two-replica fleet against a
// shared blob store with faults injected at every seam — cache tier,
// HTTP transport, store filesystem — and asserts the contracts PR 5/6
// claimed, mechanically:
//
//   - zero client-visible job failures while everything flaps,
//   - no poisoned result is ever served: every job result and every
//     store entry digest-matches a clean engine's run,
//   - the breaker trips on the scheduled outage and recovers,
//   - counters reconcile: hits+misses == jobs, runs == misses,
//   - a replica is served remote hits (fleet dedup survives chaos).
func TestFleetInvariantsUnderChaos(t *testing.T) {
	root := workload.NewSeed(2026)
	basePlan := fleetChaosPlan(root)
	ctx := context.Background()
	jobs := fleetPlan()

	// The oracle: a clean engine's digests for every job.
	cleanEng := engine.New(engine.Options{})
	cleanResults, err := cleanEng.Run(ctx, jobs)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	wantDigest := make([]string, len(cleanResults))
	keyDigest := make(map[string]string, len(cleanResults))
	for i, jr := range cleanResults {
		wantDigest[i] = engine.ResultDigest(jr.Result)
		keyDigest[jr.Key] = wantDigest[i]
	}

	// Shared store: crash-safe Disk over the fault-injecting filesystem.
	storeDir := t.TempDir()
	storeFS := basePlan.WrapFS(engine.OSFS)
	store, err := engine.NewDiskWith(storeDir, engine.DiskOptions{Sync: true, FS: storeFS})
	if err != nil {
		t.Fatal(err)
	}
	blob := engine.NewBlobServer(store, engine.BlobServerOptions{})
	ts := httptest.NewServer(blob)
	defer ts.Close()

	trips := int64(0)
	remoteHits := int64(0)
	for rep := 0; rep < 2; rep++ {
		rplan := basePlan
		rplan.Seed = root.SplitN(rep)

		inner := engine.NewLRU(engine.LRUOptions{})
		local := rplan.WrapCache(inner)
		var rt *RoundTripper
		remote, err := engine.NewRemote(engine.RemoteOptions{
			BaseURL:          ts.URL,
			Timeout:          2 * time.Second,
			Retries:          -1, // every round-trip is one op: the outage maps 1:1 onto op failures
			FailureThreshold: 3,
			Cooldown:         30 * time.Millisecond,
			JitterSeed:       uint64(rep) + 1,
			WrapTransport: func(base http.RoundTripper) http.RoundTripper {
				rt = NewRoundTripper(base, rplan.Seed.Split("transport"), rplan.Transport)
				return rt
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tiered := engine.NewTiered(
			engine.Tier{Cache: local},
			engine.Tier{Cache: remote, AsyncPut: true},
		)
		eng := engine.New(engine.Options{Workers: 4, Cache: tiered})

		const rounds = 3
		for round := 0; round < rounds; round++ {
			results, err := eng.Run(ctx, jobs)
			if err != nil {
				t.Fatalf("replica %d round %d: client-visible failure: %v", rep, round, err)
			}
			for i, jr := range results {
				if jr.Err != nil {
					t.Fatalf("replica %d round %d job %d: %v", rep, round, i, jr.Err)
				}
				if engine.ResultDigest(jr.Result) != wantDigest[i] {
					t.Fatalf("replica %d round %d job %d: poisoned result served", rep, round, i)
				}
			}
		}

		st := eng.Stats()
		total := int64(rounds * jobs.Len())
		if st.Hits+st.Misses != total {
			t.Fatalf("replica %d: hits(%d)+misses(%d) != %d jobs", rep, st.Hits, st.Misses, total)
		}
		if st.Runs != st.Misses {
			t.Fatalf("replica %d: runs(%d) != misses(%d)", rep, st.Runs, st.Misses)
		}
		if st.Errors != 0 || st.Canceled != 0 {
			t.Fatalf("replica %d: errors=%d canceled=%d, want 0", rep, st.Errors, st.Canceled)
		}
		if gs := local.GetStats(); gs.Ops == 0 {
			t.Fatalf("replica %d: chaos tier saw no ops — the schedule was not applied", rep)
		}
		if rt == nil || rt.Stats().Ops == 0 {
			t.Fatalf("replica %d: chaos transport saw no ops — the seam was not wired", rep)
		}

		// The local tier must hold only oracle-digest entries: promotion
		// never laundered a corrupt remote body into the replica.
		for key, want := range keyDigest {
			if got, ok := inner.Get(key); ok && got.Digest() != want {
				t.Fatalf("replica %d: local tier poisoned for %s", rep, key)
			}
		}

		if err := tiered.Close(); err != nil {
			t.Fatal(err)
		}
		trips += remote.Trips()
		for _, tier := range remote.TierStats() {
			remoteHits += tier.Hits
		}
	}

	if trips == 0 {
		t.Fatal("no breaker trips despite the scheduled transport outage")
	}
	if remoteHits == 0 {
		t.Fatal("no remote hits: fleet-wide dedup did not survive chaos")
	}

	// The shared store, behind its own faulted filesystem, must hold only
	// oracle-digest entries (crash-safe writes + PUT digest verification).
	storeEntries := 0
	for key, want := range keyDigest {
		got, ok := store.Get(key)
		if !ok {
			continue
		}
		storeEntries++
		if got.Digest() != want {
			t.Fatalf("shared store poisoned for %s", key)
		}
	}
	if storeEntries == 0 {
		t.Fatal("no entries reached the shared store")
	}
	if st := storeFS.Stats(); st.Ops == 0 {
		t.Fatal("store filesystem chaos saw no ops — the seam was not wired")
	}

	// Reproducibility: the same chaos plan replays the identical
	// transport schedule (decision-for-decision), so this whole suite is
	// re-runnable from its seed.
	want := NewInjector(root.SplitN(0).Split("transport").Split("roundtrip"), basePlan.Transport)
	got := NewInjector(root.SplitN(0).Split("transport").Split("roundtrip"), basePlan.Transport)
	for i := 0; i < 64; i++ {
		if want.Next() != got.Next() {
			t.Fatalf("transport schedule not reproducible at op %d", i)
		}
	}
}
