package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"godpm/internal/workload"
)

// RoundTripper wraps an http.RoundTripper with a deterministic fault
// schedule — the seam engine.RemoteOptions.WrapTransport exists for.
// This seam carries bytes, so the full fault vocabulary applies:
//
//   - FaultTransient: the request fails with a network-shaped error
//     (retryable, feeds the client's breaker),
//   - FaultPermanent: the request gets a definitive 400 response,
//   - FaultCorrupt: the real response's body has one byte flipped at the
//     scheduled position — sometimes breaking the JSON, sometimes not,
//     which is precisely what end-to-end digest checks must catch,
//   - FaultTorn: the real response's body is truncated at the scheduled
//     position.
//
// Injected latency honours the request's context, so a cancelled or
// timed-out request never sits out a chaos delay.
type RoundTripper struct {
	inner http.RoundTripper
	inj   *Injector
}

// NewRoundTripper wraps inner with the spec's schedule rooted at seed.
func NewRoundTripper(inner http.RoundTripper, seed workload.Seed, spec Spec) *RoundTripper {
	return &RoundTripper{inner: inner, inj: NewInjector(seed.Split("roundtrip"), spec)}
}

// Stats snapshots the transport schedule's counters.
func (rt *RoundTripper) Stats() InjectorStats { return rt.inj.Stats() }

// drain satisfies the RoundTripper contract on fabricated outcomes: the
// request body must always be consumed and closed.
func drain(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	d := rt.inj.Next()
	if d.Latency > 0 {
		t := time.NewTimer(d.Latency)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			drain(req)
			return nil, req.Context().Err()
		}
	}
	switch d.Fault {
	case FaultTransient:
		drain(req)
		return nil, fmt.Errorf("chaos: network error: %w", ErrInjected)
	case FaultPermanent:
		drain(req)
		return &http.Response{
			Status:        "400 Bad Request",
			StatusCode:    http.StatusBadRequest,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        make(http.Header),
			Body:          io.NopCloser(strings.NewReader("chaos: injected permanent error")),
			ContentLength: -1,
			Request:       req,
		}, nil
	}
	resp, err := rt.inner.RoundTrip(req)
	if err != nil || (d.Fault != FaultCorrupt && d.Fault != FaultTorn) {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if len(body) > 0 {
		i := int(d.Frac * float64(len(body)))
		if i >= len(body) {
			i = len(body) - 1
		}
		if d.Fault == FaultCorrupt {
			// A single bit flip: the least destructive corruption, so the
			// payload often stays structurally valid and only an
			// end-to-end digest check can reject it.
			body[i] ^= 0x01
		} else {
			body = body[:i]
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return resp, nil
}
