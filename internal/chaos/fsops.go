package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"godpm/internal/engine"
	"godpm/internal/workload"
)

// FaultFS wraps an engine.FS with a deterministic fault schedule: the
// live-injection filesystem a chaos'd disk store runs on. Torn writes
// write a scheduled prefix of the payload and then fail; transient and
// permanent faults fail the operation outright. Reads are not on the FS
// seam (see engine.FS), so a faulted write can at worst cost the entry —
// never hand corrupt bytes to a reader that the Disk cache's
// decode-and-heal path won't catch.
type FaultFS struct {
	inner engine.FS
	inj   *Injector
}

// NewFaultFS wraps inner with the spec's schedule rooted at seed.
func NewFaultFS(inner engine.FS, seed workload.Seed, spec Spec) *FaultFS {
	return &FaultFS{inner: inner, inj: NewInjector(seed.Split("fs"), spec)}
}

// Stats snapshots the filesystem schedule's counters.
func (f *FaultFS) Stats() InjectorStats { return f.inj.Stats() }

// fail maps a decision onto an error, applying latency; nil means the
// operation may proceed.
func (f *FaultFS) fail(op string, d Decision) error {
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	switch d.Fault {
	case FaultNone:
		return nil
	default:
		return fmt.Errorf("chaos: %s: %s: %w", op, d.Fault, ErrInjected)
	}
}

func (f *FaultFS) CreateTemp(dir, pattern string) (engine.File, error) {
	d := f.inj.Next()
	// Torn/corrupt make no sense for creation; only hard faults apply.
	if d.Fault == FaultTorn || d.Fault == FaultCorrupt {
		d.Fault = FaultNone
	}
	if err := f.fail("createtemp", d); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	d := f.inj.Next()
	if d.Fault == FaultTorn || d.Fault == FaultCorrupt {
		d.Fault = FaultNone
	}
	if err := f.fail("rename", d); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	d := f.inj.Next()
	// Only transient faults: a Remove that "permanently" fails while the
	// file persists would wedge healing paths in ways no real filesystem
	// exhibits.
	if d.Fault != FaultTransient {
		d.Fault = FaultNone
	}
	if err := f.fail("remove", d); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	d := f.inj.Next()
	if d.Fault == FaultTorn || d.Fault == FaultCorrupt {
		d.Fault = FaultNone
	}
	if err := f.fail("syncdir", d); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile applies the schedule to writes and syncs on one open file.
type faultFile struct {
	engine.File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	d := ff.fs.inj.Next()
	if d.Fault == FaultTorn {
		// The torn write: a scheduled prefix reaches the file, then the
		// write fails — the classic partial-write hazard.
		n := int(d.Frac * float64(len(p)))
		if n > 0 {
			ff.File.Write(p[:n])
		}
		return n, fmt.Errorf("chaos: write: torn: %w", ErrInjected)
	}
	if d.Fault == FaultCorrupt {
		d.Fault = FaultTransient
	}
	if err := ff.fs.fail("write", d); err != nil {
		return 0, err
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	d := ff.fs.inj.Next()
	if d.Fault == FaultTorn || d.Fault == FaultCorrupt {
		d.Fault = FaultTransient
	}
	if err := ff.fs.fail("sync", d); err != nil {
		return err
	}
	return ff.File.Sync()
}

// CrashFS is a page-cache model of a filesystem for crash-point
// recovery sweeps. Written bytes are buffered in memory ("the page
// cache") and reach the real file only on Sync — or partially at the
// crash, where a deterministic, seed-derived prefix of each file's
// unsynced bytes is flushed, modelling the arbitrary subset of dirty
// pages that made it to the platter before power loss.
//
// Every mutating operation (CreateTemp, Write, Sync, Rename, Remove,
// SyncDir) is one indexed op. Constructing the model with CrashAt=k
// executes ops 0..k-1 normally and fails op k and everything after with
// ErrCrashed; sweeping k over Ops() (measured on a no-crash run) visits
// every intermediate state one Put can crash in. Crash() forces the
// crash immediately — the "power loss right after Put returned" case,
// which is where an unsynced store exhibits torn final entries. Settle
// flushes everything, for runs that survive.
//
// The model covers data-path durability, not directory-metadata
// reordering: a completed Rename is visible after the crash. Safe for
// concurrent use, though crash sweeps are by nature single-writer.
type CrashFS struct {
	seed    workload.Seed
	crashAt int // op index that crashes; <0 = never

	mu      sync.Mutex
	ops     int
	crashed bool
	files   map[string]*crashFile // keyed by current path
}

type crashFile struct {
	content []byte // everything written
	synced  int    // prefix durably on the real file
}

// NewCrashFS builds the model. crashAt < 0 means no scheduled crash
// (use Crash to force one, or Settle to finish cleanly).
func NewCrashFS(seed workload.Seed, crashAt int) *CrashFS {
	return &CrashFS{seed: seed, crashAt: crashAt, files: make(map[string]*crashFile)}
}

// op admits one mutating operation, crashing if the schedule says so.
func (f *CrashFS) op() error {
	k := f.ops
	f.ops++
	if f.crashed || (f.crashAt >= 0 && k >= f.crashAt) {
		if !f.crashed {
			f.crashLocked()
		}
		return ErrCrashed
	}
	return nil
}

// Ops reports how many mutating operations were admitted (including the
// crashing one) — the sweep bound for the next run.
func (f *CrashFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash has happened.
func (f *CrashFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Crash forces the crash now: unsynced bytes partially flush, every
// later operation returns ErrCrashed.
func (f *CrashFS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		f.crashLocked()
	}
}

// crashLocked flushes a deterministic prefix of each file's unsynced
// bytes — the dirty pages that happened to reach the disk.
func (f *CrashFS) crashLocked() {
	f.crashed = true
	for path, cf := range f.files {
		if cf.synced >= len(cf.content) {
			continue
		}
		// Keyed by base name, not full path, so the flushed fraction for a
		// given entry does not depend on which scratch directory the test
		// ran in.
		frac := f.seed.Split("crash:" + filepath.Base(path)).RNG().Float64()
		n := cf.synced + int(frac*float64(len(cf.content)-cf.synced))
		os.WriteFile(path, cf.content[:n], 0o644)
		cf.synced = n
	}
}

// Settle flushes every buffer fully — the end of a run that did not
// crash. The model stays usable afterwards.
func (f *CrashFS) Settle() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for path, cf := range f.files {
		if cf.synced >= len(cf.content) {
			continue
		}
		if err := os.WriteFile(path, cf.content, 0o644); err != nil {
			return err
		}
		cf.synced = len(cf.content)
	}
	return nil
}

func (f *CrashFS) CreateTemp(dir, pattern string) (engine.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return nil, err
	}
	// Reserve the real name (empty file) exactly like the OS would; the
	// payload stays in the buffer until a sync or the crash flush.
	real, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	name := real.Name()
	real.Close()
	f.files[name] = &crashFile{}
	return &crashHandle{fs: f, path: name}, nil
}

func (f *CrashFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return err
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	if cf, ok := f.files[oldpath]; ok {
		delete(f.files, oldpath)
		f.files[newpath] = cf
	}
	return nil
}

func (f *CrashFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return err
	}
	delete(f.files, name)
	return os.Remove(name)
}

func (f *CrashFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Directory metadata ordering is not modelled; the op still counts so
	// sweeps visit the same indices in both Sync modes.
	return f.op()
}

// crashHandle is one open file in the model.
type crashHandle struct {
	fs   *CrashFS
	path string
}

func (h *crashHandle) Name() string { return h.path }

func (h *crashHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.op(); err != nil {
		return 0, err
	}
	cf, ok := h.fs.files[h.path]
	if !ok {
		return 0, os.ErrClosed
	}
	cf.content = append(cf.content, p...)
	return len(p), nil
}

func (h *crashHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.op(); err != nil {
		return err
	}
	cf, ok := h.fs.files[h.path]
	if !ok {
		return os.ErrClosed
	}
	if err := os.WriteFile(h.path, cf.content, 0o644); err != nil {
		return err
	}
	cf.synced = len(cf.content)
	return nil
}

// Close is not a durability point (the page cache outlives the fd) and
// not an op; it never fails in the model.
func (h *crashHandle) Close() error { return nil }
