package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"

	"godpm/internal/engine"
	"godpm/internal/soc"
	"godpm/internal/workload"
)

var busySpec = Spec{
	PLatency: 0.2, MaxLatency: time.Millisecond,
	PTransient: 0.15, PPermanent: 0.05, PCorrupt: 0.1, PTorn: 0.1,
	OutageStart: 20, OutageLen: 5,
}

// TestInjectorDeterministic: the schedule is a pure function of
// (seed, spec) — two injectors replay it identically, and a different
// seed produces a different one.
func TestInjectorDeterministic(t *testing.T) {
	seed := workload.NewSeed(42)
	a := NewInjector(seed, busySpec)
	b := NewInjector(seed, busySpec)
	other := NewInjector(seed.Split("other"), busySpec)
	const n = 200
	diff := 0
	for i := 0; i < n; i++ {
		da, db, do := a.Next(), b.Next(), other.Next()
		if da != db {
			t.Fatalf("op %d: same seed diverged: %+v vs %+v", i, da, db)
		}
		if da != do {
			diff++
		}
	}
	if diff == 0 {
		t.Fatalf("distinct seeds produced identical %d-op schedules", n)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestInjectorConcurrentDecisionsMatchSerial: under concurrency the set
// of decisions handed out is exactly the serial schedule — op k's
// decision depends only on k, never on which goroutine drew it.
func TestInjectorConcurrentDecisionsMatchSerial(t *testing.T) {
	seed := workload.NewSeed(7)
	const n = 256
	want := make(map[Decision]int)
	serial := NewInjector(seed, busySpec)
	for i := 0; i < n; i++ {
		want[serial.Next()]++
	}

	conc := NewInjector(seed, busySpec)
	var (
		mu  sync.Mutex
		got = make(map[Decision]int)
		wg  sync.WaitGroup
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				d := conc.Next()
				mu.Lock()
				got[d]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(got) != len(want) {
		t.Fatalf("decision multisets differ: %d vs %d distinct", len(got), len(want))
	}
	for d, c := range want {
		if got[d] != c {
			t.Fatalf("decision %+v drawn %d times concurrently, %d serially", d, got[d], c)
		}
	}
}

// TestOutageWindow: ops inside [OutageStart, OutageStart+OutageLen) all
// fail transiently, unconditionally — the deterministic window breaker
// tests rely on.
func TestOutageWindow(t *testing.T) {
	spec := Spec{OutageStart: 3, OutageLen: 4}
	in := NewInjector(workload.NewSeed(1), spec)
	for k := 0; k < 10; k++ {
		d := in.Next()
		inWindow := k >= 3 && k < 7
		if inWindow && d.Fault != FaultTransient {
			t.Fatalf("op %d inside outage got %v, want transient", k, d.Fault)
		}
		if !inWindow && d.Fault != FaultNone {
			t.Fatalf("op %d outside outage got %v (zero probabilities)", k, d.Fault)
		}
	}
	if st := in.Stats(); st.Outage != 4 || st.Transients != 4 {
		t.Fatalf("stats = %+v, want 4 outage transients", st)
	}
}

// TestPlanHash: equal plans hash equal; any field change moves the hash.
func TestPlanHash(t *testing.T) {
	a := DefaultPlan(workload.NewSeed(9))
	if a.Hash() != DefaultPlan(workload.NewSeed(9)).Hash() {
		t.Fatal("equal plans hash differently")
	}
	b := DefaultPlan(workload.NewSeed(10))
	if a.Hash() == b.Hash() {
		t.Fatal("different seeds hash equal")
	}
	c := a
	c.FS.PTorn = 0.5
	if a.Hash() == c.Hash() {
		t.Fatal("changed spec hashes equal")
	}
}

// TestTierFaultsAreMissesAndErrors: the cache wrapper maps every fault
// onto the Cache contract — Get misses, Put errors — and never lets a
// fault fabricate or mutate a value.
func TestTierFaultsAreMissesAndErrors(t *testing.T) {
	inner := engine.NewLRU(engine.LRUOptions{})
	key := "00112233445566778899aabbccddeeff"
	res := &soc.Result{EnergyJ: 1.5, Completed: true}
	rec, err := engine.NewRecord(key, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Put(key, rec); err != nil {
		t.Fatal(err)
	}

	// A spec that always faults: every op lands in the outage window.
	always := Spec{OutageStart: 0, OutageLen: 1 << 30}
	tier := NewTier(inner, workload.NewSeed(5), always)
	if _, ok := tier.Get(key); ok {
		t.Fatal("faulted Get hit")
	}
	if err := tier.Put(key, rec); err == nil {
		t.Fatal("faulted Put returned nil")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted Put error %v does not wrap ErrInjected", err)
	}
	// Faults never reached the inner cache's contents.
	if got, ok := inner.Get(key); !ok || got.Digest() != engine.ResultDigest(res) {
		t.Fatal("inner cache entry disturbed by faulted ops")
	}

	// A zero spec is transparent.
	clear := NewTier(inner, workload.NewSeed(5), Spec{})
	if got, ok := clear.Get(key); !ok || got.Digest() != engine.ResultDigest(res) {
		t.Fatal("clear tier did not pass the entry through")
	}
	if !clear.Has(key) {
		t.Fatal("Has not forwarded")
	}
	if clear.CacheStats().Entries != 1 {
		t.Fatalf("CacheStats not forwarded: %+v", clear.CacheStats())
	}
	if ts := clear.TierStats(); len(ts) == 0 {
		t.Fatal("TierStats not forwarded")
	}

	gs, ps := tier.GetStats(), tier.PutStats()
	if gs.Ops != 1 || ps.Ops != 1 || gs.Transients != 1 || ps.Transients != 1 {
		t.Fatalf("injector stats = get %+v put %+v, want 1 transient op each", gs, ps)
	}
}
